package perfpredict

import (
	"perfpredict/internal/resultcache"
)

// ResultBackend is the pluggable store behind the content-addressed
// result cache: finished answers keyed by what they are a function of
// (program structure × machine content × options), not by request
// identity. Implementations must be safe for concurrent use. The
// serving layer fronts every endpoint with one; OptimizeCtx accepts
// one directly (OptimizeOptions.Results).
type ResultBackend = resultcache.Backend

// ResultCache is the in-process ResultBackend: a sharded LRU with
// byte-size accounting. One instance may front every machine and
// request kind — keys are content fingerprints, so distinct inputs
// cannot alias. See NewResultCache.
type ResultCache = resultcache.Cache

// ResultCacheStats is a point-in-time counter snapshot of a
// ResultCache (hits, misses, evictions, occupancy).
type ResultCacheStats = resultcache.Stats

// NewResultCache creates a result cache bounded to roughly maxBytes
// of stored values; maxBytes <= 0 selects the 64 MiB default.
func NewResultCache(maxBytes int64) *ResultCache { return resultcache.New(maxBytes) }
