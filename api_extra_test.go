package perfpredict

import (
	"strings"
	"testing"

	"perfpredict/internal/lower"
	"perfpredict/internal/tetris"
)

const quadVariant = `
subroutine work(n)
  integer i, j, n
  real a(64,64), out(64)
  do i = 1, n
    do j = 1, n
      out(i) = out(i) + a(i,j)
    end do
  end do
end
`

const heavyLinearVariant = `
subroutine work(n)
  integer i, n
  real a(64,64), out(64)
  do i = 1, n
    out(i) = sqrt(a(i,1)) / 3.0 + a(i,2) * 3.0
  end do
end
`

func TestMultiVersionDepends(t *testing.T) {
	res, err := MultiVersion(quadVariant, heavyLinearVariant, POWER1(),
		map[string]Bound{"n": {Lo: 1, Hi: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictDepends {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	if res.Variable != "n" || res.Threshold <= 0 {
		t.Fatalf("test: %q %v", res.Variable, res.Threshold)
	}
	if !strings.Contains(res.Source, ".lt.") {
		t.Fatalf("no run-time test in:\n%s", res.Source)
	}
	// The versioned program must be valid F-lite and simulate on both
	// sides of the crossover, tracking the better variant.
	for _, n := range []float64{2, 60} {
		sv, err := Simulate(res.Source, POWER1(), map[string]float64{"n": n})
		if err != nil {
			t.Fatalf("versioned sim at n=%v: %v", n, err)
		}
		sa, _ := Simulate(quadVariant, POWER1(), map[string]float64{"n": n})
		sb, _ := Simulate(heavyLinearVariant, POWER1(), map[string]float64{"n": n})
		best := sa
		if sb < best {
			best = sb
		}
		if float64(sv) > 1.15*float64(best)+25 {
			t.Errorf("n=%v: versioned %d vs best %d (a=%d b=%d)", n, sv, best, sa, sb)
		}
	}
}

func TestMultiVersionOneSided(t *testing.T) {
	fast := "subroutine w(n)\n integer i, n\n real a(4096)\n do i = 1, n\n a(i) = 1.0\n end do\nend\n"
	slow := "subroutine w(n)\n integer i, n\n real a(4096)\n do i = 1, n\n a(i) = sqrt(a(i)) / 3.0\n end do\nend\n"
	res, err := MultiVersion(fast, slow, POWER1(), map[string]Bound{"n": {Lo: 1, Hi: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictFirstBetter {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	if res.Source != fast {
		t.Error("one-sided result should return the winning variant unmodified")
	}
}

func TestPredictMemorySymbolic(t *testing.T) {
	src := `
subroutine sweep(n)
  integer i, j, n
  real a(512,512), b(512,512)
  do j = 1, n
    do i = 1, n
      a(i,j) = b(i,j) * 2.0
    end do
  end do
end
`
	ests, err := PredictMemory(src, DefaultCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 {
		t.Fatalf("nests: %d", len(ests))
	}
	e := ests[0]
	if len(e.Loops) != 2 || e.Loops[0] != "j" {
		t.Errorf("loops: %v", e.Loops)
	}
	// Two arrays, n²/16 lines each.
	lines, err := e.Lines.Eval(map[Var]float64{"n": 64})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 2*64*64/16 {
		t.Errorf("lines at n=64: %v, want 512", lines)
	}
	cycles, _ := e.Cycles.Eval(map[Var]float64{"n": 64})
	if cycles != lines*15 {
		t.Errorf("cycles: %v", cycles)
	}
	if e.Lines.Degree("n") != 2 {
		t.Errorf("symbolic shape: %v", e.Lines)
	}
}

func TestPredictMemoryMultipleNests(t *testing.T) {
	src := `
program p
  integer i, j, n
  parameter (n = 32)
  real a(32,32), v(1024)
  do j = 1, n
    do i = 1, n
      a(i,j) = 1.0
    end do
  end do
  do i = 1, 1024
    v(i) = 2.0
  end do
end
`
	ests, err := PredictMemory(src, DefaultCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 {
		t.Fatalf("nests: %d", len(ests))
	}
	// Constant bounds fold to constants.
	if _, ok := ests[0].Lines.IsConst(); !ok {
		t.Errorf("first nest not constant: %v", ests[0].Lines)
	}
	v1, _ := ests[1].Lines.IsConst()
	if v1 != 1024/16 {
		t.Errorf("vector nest lines: %v", v1)
	}
}

func TestCrossMachinePredictions(t *testing.T) {
	// One source, three architecture descriptions: predictions must
	// order Scalar1 ≥ POWER1 ≥ SuperScalar2 on overlap-rich code.
	src := `
program p
  integer i, n
  parameter (n = 256)
  real a(256), b(256), c(256)
  do i = 1, n
    c(i) = a(i) * 2.0 + b(i) * 3.0 + 1.0
  end do
end
`
	var preds []float64
	for _, target := range []*Target{Scalar1(), POWER1(), SuperScalar2()} {
		p, err := Predict(src, target)
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.EvalAt(nil)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(src, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratio := v / float64(sim)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: pred %v vs sim %d", target.Name, v, sim)
		}
		preds = append(preds, v)
	}
	if !(preds[0] > preds[1] && preds[1] > preds[2]) {
		t.Errorf("machine ordering: %v", preds)
	}
}

func TestAnalyzeBlockAblationOptions(t *testing.T) {
	k := daxpySrc
	full, err := AnalyzeInnermostBlock(k, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	lopt := lower.DefaultOptions()
	lopt.FuseFMA = false
	ablated, err := AnalyzeInnermostBlockWithOptions(k, POWER1(), lopt, tetris.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Instructions <= full.Instructions {
		t.Errorf("no-FMA block should have more ops: %d vs %d", ablated.Instructions, full.Instructions)
	}
	nodeps, err := AnalyzeInnermostBlockWithOptions(k, POWER1(), lower.DefaultOptions(), tetris.Options{IgnoreDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	if nodeps.Predicted > full.Predicted {
		t.Errorf("ignoring dependences cannot increase the estimate: %d vs %d", nodeps.Predicted, full.Predicted)
	}
}

func TestNoLoopProgramBlock(t *testing.T) {
	src := "program p\n real x, y\n x = 1.0\n y = x * 2.0\nend\n"
	rep, err := AnalyzeInnermostBlock(src, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions == 0 {
		t.Error("loop-free program should analyze its body")
	}
	if _, err := AnalyzeInnermostBlock("program p\nend\n", POWER1()); err == nil {
		t.Error("empty program should report no block")
	}
}
