module perfpredict

go 1.22
