package perfpredict

import (
	"math"
	"reflect"
	"testing"
)

const explainMatmul = `
subroutine mm(n)
  integer i, j, k, n
  real a(100,100), b(100,100), c(100,100)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`

// The report's Cycles must be Predict's EvalAt at the explainer's
// nominal point — explanation diagnoses the same prediction, it does
// not produce a second model.
func TestExplainAgreesWithPredict(t *testing.T) {
	target := POWER1()
	nominal := map[string]float64{"n": 64}
	rep, err := Explain(explainMatmul, target)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(explainMatmul, target)
	if err != nil {
		t.Fatal(err)
	}
	// Explain defaults every non-probability unknown to 100.
	want, err := pred.EvalAt(map[string]float64{"n": 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Cycles-want) > 1e-6*want {
		t.Errorf("Explain cycles %v, Predict at n=100 gives %v", rep.Cycles, want)
	}
	if rep.Bottleneck == "" {
		t.Error("no bottleneck named for a matmul")
	}
	if rep.WhatIf == nil || rep.WhatIf.Speedup < 1 {
		t.Errorf("what-if = %+v, want a present, non-slowing experiment", rep.WhatIf)
	}

	repN, err := ExplainCtx(t.Context(), explainMatmul, target, ExplainOptions{Nominal: nominal, SkipWhatIf: true})
	if err != nil {
		t.Fatal(err)
	}
	wantN, err := pred.EvalAt(nominal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(repN.Cycles-wantN) > 1e-6*wantN {
		t.Errorf("Explain cycles %v at n=64, Predict gives %v", repN.Cycles, wantN)
	}
}

// Enabling explanation must not perturb prediction: Predict output is
// byte-identical whether or not an Explain ran before, between, after.
func TestExplainInertOnPredict(t *testing.T) {
	target := POWER1()
	before, err := Predict(explainMatmul, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Explain(explainMatmul, target); err != nil {
		t.Fatal(err)
	}
	after, err := Predict(explainMatmul, target)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cost.String() != after.Cost.String() ||
		before.Memory.String() != after.Memory.String() ||
		!reflect.DeepEqual(before.Unknowns, after.Unknowns) {
		t.Errorf("Predict changed after Explain:\nbefore %s\nafter  %s", before.Cost, after.Cost)
	}
}

// Optimize must report the winning variant's bottleneck without
// changing what it picks.
func TestOptimizeReportsBottleneck(t *testing.T) {
	res, err := Optimize(explainMatmul, POWER1(), map[string]float64{"n": 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck == "" {
		t.Fatal("optimize reported no bottleneck for a completed search")
	}
	if res.BottleneckUtil <= 0 || res.BottleneckUtil > 1 {
		t.Errorf("bottleneck utilization %v outside (0,1]", res.BottleneckUtil)
	}
}
