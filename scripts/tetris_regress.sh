#!/bin/sh
# Non-gating Tetris kernel regression report: reruns the Tetris
# microbenchmarks and compares fresh min-of-N ns/op against the floor
# committed in BENCH_tetris.json. Prints a per-benchmark verdict
# (slower runs are flagged, not failed — single-core CI boxes jitter
# ±15%, so this is a trend report, not a gate) and ALWAYS exits 0.
#
# Usage: scripts/tetris_regress.sh [benchtime] [count]   (defaults 200x, 3)
set -u

cd "$(dirname "$0")/.."

floor="BENCH_tetris.json"
if [ ! -f "$floor" ]; then
	echo "tetris_regress: no committed $floor; run scripts/bench.sh first" >&2
	exit 0
fi

benchtime="${1:-200x}"
count="${2:-3}"
fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

if ! go test -run '^$' -bench 'BenchmarkTetris' -benchtime "$benchtime" \
	-count "$count" ./internal/tetris >"$fresh" 2>&1; then
	echo "tetris_regress: bench run failed (non-gating):" >&2
	cat "$fresh" >&2
	exit 0
fi

# Fold the fresh run to min ns/op per name, join with the committed
# floor, and report the ratio. >1.25x over floor is flagged as a
# possible regression.
awk -v floor="$floor" '
BEGIN {
	while ((getline line <floor) > 0) {
		if (match(line, /"name":"[^"]+"/)) {
			name = substr(line, RSTART + 8, RLENGTH - 9)
			if (match(line, /"ns\/op":[0-9.]+/))
				base[name] = substr(line, RSTART + 8, RLENGTH - 8) + 0
		}
	}
	close(floor)
}
/^Benchmark/ {
	v = $3 + 0
	if (!($1 in min) || v < min[$1]) min[$1] = v
	if (!($1 in seen)) { order[n++] = $1; seen[$1] = 1 }
}
END {
	flagged = 0
	for (i = 0; i < n; i++) {
		name = order[i]
		if (!(name in base)) {
			printf "  %-60s %12.0f ns/op  (no committed floor)\n", name, min[name]
			continue
		}
		r = min[name] / base[name]
		tag = (r > 1.25) ? "  <-- possible regression" : ""
		if (r > 1.25) flagged++
		printf "  %-60s %12.0f ns/op  floor %12.0f  x%.2f%s\n", name, min[name], base[name], r, tag
	}
	if (flagged)
		printf "tetris_regress: %d benchmark(s) above 1.25x floor (non-gating)\n", flagged
	else
		print "tetris_regress: all benchmarks within 1.25x of committed floor"
}
' "$fresh"

exit 0
