#!/bin/sh
# CI gate: formatting, static checks, build, race-enabled tests, and a
# single pass over every benchmark (correctness smoke — the benchmarks
# double as the experiment table generators).
#
# Usage: scripts/ci.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== machine specs"
# Every embedded builtin spec plus every spec file shipped in the tree
# must parse, validate, cover the lowering op set, and round-trip.
go run ./cmd/speccheck examples/custom-machine/power2f.json

echo "== go test -race"
go test -race ./...

echo "== differential fuzz corpus"
# Fixed-seed metamorphic/differential gating corpus: the estimators
# vs the exact oracle and the harness's equivalence invariants. Any
# violation (or an approx/exact ratio above the pinned bound) fails.
go run ./cmd/fuzzcheck -n 300 -seed 1

echo "== benchmarks (1 iteration each)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "== tetris kernel smoke (1 iteration each)"
# Both slot implementations priced once through every suite: catches
# panics/divergence in the hot path without paying for a real run.
go test -run '^$' -bench 'Tetris' -benchtime 1x ./internal/tetris

echo "== tetris kernel regression report (non-gating)"
sh scripts/tetris_regress.sh || echo "tetris_regress.sh failed (non-gating)" >&2

echo "== perf trajectory (non-gating)"
sh scripts/bench.sh || echo "bench.sh failed (non-gating)" >&2

echo "== service load test (non-gating)"
sh scripts/loadtest.sh || echo "loadtest.sh failed (non-gating)" >&2

echo "CI OK"
