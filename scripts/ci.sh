#!/bin/sh
# CI gate: formatting, static checks, build, race-enabled tests, and a
# single pass over every benchmark (correctness smoke — the benchmarks
# double as the experiment table generators).
#
# Usage: scripts/ci.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== machine specs"
# Every embedded builtin spec plus every spec file shipped in the tree
# must parse, validate, cover the lowering op set, and round-trip.
go run ./cmd/speccheck examples/custom-machine/power2f.json examples/custom-machine/power1mem.json

echo "== go test -race"
go test -race ./...

echo "== memory model smoke"
# With the POWER1 hierarchy attached, a streaming (memory-bound)
# kernel must report a memory cost component and a scalar
# (compute-bound) kernel must not.
memdir=$(mktemp -d)
cat >"$memdir/stream.f" <<'EOF'
program stream
  integer i, n
  parameter (n = 1024)
  real a(1025), b(1025)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
end
EOF
cat >"$memdir/scalar.f" <<'EOF'
program scalar
  integer i, n
  parameter (n = 1024)
  real s
  s = 1.0
  do i = 1, n
    s = s * 0.5 + 1.0
  end do
end
EOF
if ! go run ./cmd/predict -machine examples/custom-machine/power1mem.json "$memdir/stream.f" | grep -q "memory:"; then
	echo "memory-bound kernel reported no memory term" >&2
	rm -rf "$memdir"
	exit 1
fi
if go run ./cmd/predict -machine examples/custom-machine/power1mem.json "$memdir/scalar.f" | grep -q "memory:"; then
	echo "compute-bound kernel reported a memory term" >&2
	rm -rf "$memdir"
	exit 1
fi
rm -rf "$memdir"

echo "== differential fuzz corpus"
# Fixed-seed metamorphic/differential gating corpus: the estimators
# vs the exact oracle and the harness's equivalence invariants. Any
# violation (or an approx/exact ratio above the pinned bound) fails.
go run ./cmd/fuzzcheck -n 300 -seed 1

echo "== benchmarks (1 iteration each)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "== tetris kernel smoke (1 iteration each)"
# Both slot implementations priced once through every suite: catches
# panics/divergence in the hot path without paying for a real run.
go test -run '^$' -bench 'Tetris' -benchtime 1x ./internal/tetris

echo "== tetris kernel regression report (non-gating)"
sh scripts/tetris_regress.sh || echo "tetris_regress.sh failed (non-gating)" >&2

echo "== perf trajectory (non-gating)"
sh scripts/bench.sh || echo "bench.sh failed (non-gating)" >&2

echo "== service load test (non-gating)"
sh scripts/loadtest.sh || echo "loadtest.sh failed (non-gating)" >&2

echo "CI OK"
