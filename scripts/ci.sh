#!/bin/sh
# CI gate: formatting, static checks, build, race-enabled tests, and a
# single pass over every benchmark (correctness smoke — the benchmarks
# double as the experiment table generators).
#
# Usage: scripts/ci.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== machine specs"
# Every embedded builtin spec plus every spec file shipped in the tree
# must parse, validate, cover the lowering op set, and round-trip.
go run ./cmd/speccheck examples/custom-machine/power2f.json examples/custom-machine/power1mem.json

echo "== go test -race"
go test -race ./...

echo "== memory model smoke"
# With the POWER1 hierarchy attached, a streaming (memory-bound)
# kernel must report a memory cost component and a scalar
# (compute-bound) kernel must not.
memdir=$(mktemp -d)
cat >"$memdir/stream.f" <<'EOF'
program stream
  integer i, n
  parameter (n = 1024)
  real a(1025), b(1025)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
end
EOF
cat >"$memdir/scalar.f" <<'EOF'
program scalar
  integer i, n
  parameter (n = 1024)
  real s
  s = 1.0
  do i = 1, n
    s = s * 0.5 + 1.0
  end do
end
EOF
if ! go run ./cmd/predict -machine examples/custom-machine/power1mem.json "$memdir/stream.f" | grep -q "memory:"; then
	echo "memory-bound kernel reported no memory term" >&2
	rm -rf "$memdir"
	exit 1
fi
if go run ./cmd/predict -machine examples/custom-machine/power1mem.json "$memdir/scalar.f" | grep -q "memory:"; then
	echo "compute-bound kernel reported a memory term" >&2
	rm -rf "$memdir"
	exit 1
fi
rm -rf "$memdir"

echo "== explain smoke"
# The diagnosis must name a bottleneck on the builtin matmul kernel,
# and the one-more-pipe what-if on the 4x4-unrolled multiply must
# reproduce the POWER2F result documented in DESIGN.md: a second FPU
# pipe helps (1.71x there) exactly because the FPU is critical.
exdir=$(mktemp -d)
if ! go run ./cmd/predict -explain -kernel matmul | grep -q "bottleneck:"; then
	echo "explain reported no bottleneck for matmul" >&2
	rm -rf "$exdir"
	exit 1
fi
cat >"$exdir/mm44.f" <<'EOF'
program matmul44
  integer i, j, k, n
  parameter (n = 32)
  real a(32,32), b(32,32), c(32,32)
  do i = 1, n, 4
    do j = 1, n, 4
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
        c(i+1,j) = c(i+1,j) + a(i+1,k) * b(k,j)
        c(i+2,j) = c(i+2,j) + a(i+2,k) * b(k,j)
        c(i+3,j) = c(i+3,j) + a(i+3,k) * b(k,j)
        c(i,j+1) = c(i,j+1) + a(i,k) * b(k,j+1)
        c(i+1,j+1) = c(i+1,j+1) + a(i+1,k) * b(k,j+1)
        c(i+2,j+1) = c(i+2,j+1) + a(i+2,k) * b(k,j+1)
        c(i+3,j+1) = c(i+3,j+1) + a(i+3,k) * b(k,j+1)
        c(i,j+2) = c(i,j+2) + a(i,k) * b(k,j+2)
        c(i+1,j+2) = c(i+1,j+2) + a(i+1,k) * b(k,j+2)
        c(i+2,j+2) = c(i+2,j+2) + a(i+2,k) * b(k,j+2)
        c(i+3,j+2) = c(i+3,j+2) + a(i+3,k) * b(k,j+2)
        c(i,j+3) = c(i,j+3) + a(i,k) * b(k,j+3)
        c(i+1,j+3) = c(i+1,j+3) + a(i+1,k) * b(k,j+3)
        c(i+2,j+3) = c(i+2,j+3) + a(i+2,k) * b(k,j+3)
        c(i+3,j+3) = c(i+3,j+3) + a(i+3,k) * b(k,j+3)
      end do
    end do
  end do
end
EOF
mm44=$(go run ./cmd/predict -explain "$exdir/mm44.f")
if ! echo "$mm44" | grep -q "bottleneck:   FPU"; then
	echo "4x4-unrolled matmul bottleneck is not the FPU:" >&2
	echo "$mm44" >&2
	exit 1
fi
speedup=$(echo "$mm44" | sed -n 's/.*one more FPU pipe.*: .* cycles, \([0-9.]*\)x speedup/\1/p')
if [ -z "$speedup" ] || ! awk "BEGIN { exit !($speedup > 1.0) }"; then
	echo "one-more-FPU what-if did not predict a speedup (got '${speedup:-none}'):" >&2
	echo "$mm44" >&2
	exit 1
fi

echo "== explore smoke"
# Sweeping the POWER1→POWER2F design space over the same 4x4-unrolled
# multiply must rediscover the paper's result: the second FPU pipe is
# worth ~1.71x, so the sweep's cost span across the lattice must
# clear 1.5x. Guards the whole explore path (template expansion,
# batch evaluation, frontier) end to end from the CLI.
cat >"$exdir/template.json" <<'EOF'
{"base_machine": "POWER1", "dispatch": [4, 5], "pipes": {"FPU": [1, 2]}}
EOF
sweep=$(go run ./cmd/predict -explore "$exdir/template.json" "$exdir/mm44.f")
rm -rf "$exdir"
span=$(echo "$sweep" | sed -n 's/^span: *\([0-9.]*\)x.*/\1/p')
if [ -z "$span" ] || ! awk "BEGIN { exit !($span > 1.5) }"; then
	echo "design-space sweep did not rediscover the POWER2F speedup (span '${span:-none}'):" >&2
	echo "$sweep" >&2
	exit 1
fi

echo "== explain overhead guard (1 iteration)"
# BenchmarkExplainGuard self-measures EstimateExplained against plain
# Estimate and fails above its pinned overhead budget.
go test -run '^$' -bench 'Explain' -benchtime 1x ./internal/tetris

echo "== differential fuzz corpus"
# Fixed-seed metamorphic/differential gating corpus: the estimators
# vs the exact oracle and the harness's equivalence invariants. Any
# violation (or an approx/exact ratio above the pinned bound) fails.
go run ./cmd/fuzzcheck -n 300 -seed 1

echo "== benchmarks (1 iteration each)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "== tetris kernel smoke (1 iteration each)"
# Both slot implementations priced once through every suite: catches
# panics/divergence in the hot path without paying for a real run.
go test -run '^$' -bench 'Tetris' -benchtime 1x ./internal/tetris

echo "== tetris kernel regression report (non-gating)"
sh scripts/tetris_regress.sh || echo "tetris_regress.sh failed (non-gating)" >&2

echo "== perf trajectory (non-gating)"
sh scripts/bench.sh || echo "bench.sh failed (non-gating)" >&2

echo "== service load test (non-gating)"
sh scripts/loadtest.sh || echo "loadtest.sh failed (non-gating)" >&2

echo "CI OK"
