#!/bin/sh
# Perf-trajectory recorder: runs the search/batch benchmarks with
# -benchmem and writes BENCH_optimize.json (one JSON object per
# benchmark line, plus the raw go-test output next to it in
# BENCH_optimize.txt). Non-gating — failures here should not fail CI,
# only lose a data point.
#
# Usage: scripts/bench.sh [benchtime]   (from anywhere; default 1x)
set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-1x}"
out_json="BENCH_optimize.json"
out_txt="BENCH_optimize.txt"

go test -run '^$' -bench 'BenchmarkOptimize|BenchmarkPredictBatch' \
	-benchtime "$benchtime" -benchmem . | tee "$out_txt"

# Convert `BenchmarkName  N  value unit  value unit ...` lines to JSON.
awk '
BEGIN { print "[" }
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "  {\"name\":\"%s\",\"iterations\":%s", $1, $2
	for (i = 3; i + 1 <= NF; i += 2)
		printf ",\"%s\":%s", $(i + 1), $i
	printf "}"
}
END { print "\n]" }
' "$out_txt" >"$out_json"

echo "wrote $out_json"
