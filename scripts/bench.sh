#!/bin/sh
# Perf-trajectory recorder: runs the search/batch benchmarks, the
# design-space sweep benchmarks, and the Tetris kernel
# microbenchmarks with -benchmem and writes BENCH_optimize.json /
# BENCH_explore.json / BENCH_tetris.json (one JSON object per
# benchmark, plus the raw go-test output next to each in a .txt).
# Non-gating — failures here should not fail CI, only lose a data
# point.
#
# The Tetris suite runs -count times and records the MINIMUM of each
# metric across runs: on a noisy single-core box the minimum is the
# robust "how fast can this code go" statistic, and it is what
# scripts/tetris_regress.sh compares fresh runs against.
#
# Usage: scripts/bench.sh [benchtime] [tetris_benchtime] [tetris_count]
#        (from anywhere; defaults 1x, 500x, 6)
set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-1x}"
tetris_benchtime="${2:-500x}"
tetris_count="${3:-6}"

# to_json FILE: convert `BenchmarkName N value unit ...` lines to a
# JSON array, folding repeated names (from -count) to the per-metric
# minimum. iterations reports the max seen.
to_json() {
	awk '
	/^Benchmark/ {
		name = $1
		if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
		if ($2 + 0 > iters[name]) iters[name] = $2 + 0
		for (i = 3; i + 1 <= NF; i += 2) {
			unit = $(i + 1); v = $i + 0
			key = name SUBSEP unit
			if (!(key in val) || v < val[key]) val[key] = v
			if (!(name SUBSEP unit in useen)) {
				units[name] = units[name] (units[name] ? SUBSEP : "") unit
				useen[name, unit] = 1
			}
		}
	}
	END {
		print "["
		for (j = 0; j < n; j++) {
			name = order[j]
			printf "  {\"name\":\"%s\",\"iterations\":%d", name, iters[name]
			m = split(units[name], us, SUBSEP)
			for (k = 1; k <= m; k++)
				printf ",\"%s\":%s", us[k], val[name SUBSEP us[k]]
			printf "}%s\n", (j < n - 1) ? "," : ""
		}
		print "]"
	}
	' "$1"
}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkOptimize|BenchmarkPredictBatch' \
	-benchtime "$benchtime" -benchmem . | tee "$tmp"
to_json "$tmp" >BENCH_optimize.json
echo "wrote BENCH_optimize.json"

go test -run '^$' -bench 'BenchmarkExplore' -benchtime "$benchtime" \
	-benchmem ./internal/explore | tee "$tmp"
to_json "$tmp" >BENCH_explore.json
echo "wrote BENCH_explore.json"

go test -run '^$' -bench 'BenchmarkTetris' -benchtime "$tetris_benchtime" \
	-count "$tetris_count" -benchmem ./internal/tetris | tee "$tmp"
to_json "$tmp" >BENCH_tetris.json
echo "wrote BENCH_tetris.json"
