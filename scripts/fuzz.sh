#!/bin/sh
# Long-fuzz trajectory recorder: a deep fuzzcheck pass (default 5000
# seeds) plus a short native go-fuzz burst on each fuzz target, writing
# BENCH_fuzz.json (corpus size, oracle-proven counts, max approx/exact
# ratio, violation counts). Non-gating — failures here should not fail
# CI, only lose a data point; the gating corpus runs in scripts/ci.sh.
#
# Usage: scripts/fuzz.sh [n] [seed] [fuzztime]   (from anywhere)
set -eu

cd "$(dirname "$0")/.."

n="${1:-5000}"
seed="${2:-1}"
fuzztime="${3:-20s}"

go run ./cmd/fuzzcheck -n "$n" -seed "$seed" -v -json BENCH_fuzz.json

for target in FuzzBlockInvariants FuzzSpecJSON; do
	go test ./internal/invariants/ -run "$target" -fuzz "$target" \
		-fuzztime "$fuzztime" || echo "fuzz.sh: $target found a failure (see testdata/fuzz)" >&2
done
