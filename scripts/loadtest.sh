#!/bin/sh
# Load test for the prediction service: runs the in-process load
# generator at 2x the admission capacity for a fixed duration and
# writes latency/throughput/shed-rate figures — plus the cold/warm
# result-cache split (cold_rps/warm_rps/warm_speedup: the same
# uniquely keyed requests driven as all-misses, then as all-hits) —
# to BENCH_serve.json.
# Non-gating in CI — the numbers are a trajectory, not a threshold.
#
# Usage: scripts/loadtest.sh [extra loadgen flags]
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/predictd/loadgen -duration 2s -inflight 8 -mult 2 \
	-out BENCH_serve.json "$@"

cat BENCH_serve.json
