#!/bin/sh
# Load test for the prediction service: runs the in-process load
# generator at 2x the admission capacity for a fixed duration and
# writes latency/throughput/shed-rate figures to BENCH_serve.json.
# Non-gating in CI — the numbers are a trajectory, not a threshold.
#
# Usage: scripts/loadtest.sh [extra loadgen flags]
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/predictd/loadgen -duration 2s -inflight 8 -mult 2 \
	-out BENCH_serve.json "$@"

cat BENCH_serve.json
