package perfpredict

import (
	"math"
	"strings"
	"testing"

	"perfpredict/internal/kernels"
)

const daxpySrc = `
subroutine daxpy(n, alpha)
  integer i, n
  real alpha, x(4000), y(4000)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
`

func TestPredictAndEval(t *testing.T) {
	pred, err := Predict(daxpySrc, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Cost.Degree("n") != 1 {
		t.Errorf("cost not linear in n: %v", pred.Cost)
	}
	c1000, err := pred.EvalAt(map[string]float64{"n": 1000})
	if err != nil {
		t.Fatal(err)
	}
	c2000, err := pred.EvalAt(map[string]float64{"n": 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !(c2000 > c1000 && c1000 > 0) {
		t.Errorf("eval: %v, %v", c1000, c2000)
	}
	foundN := false
	for _, u := range pred.Unknowns {
		if u.Name == "n" && u.Kind == "bound" {
			foundN = true
		}
	}
	if !foundN {
		t.Errorf("unknowns: %+v", pred.Unknowns)
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := Predict("not fortran", POWER1()); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Predict("program p\n real a(10,10)\n a(1) = 0.0\nend\n", POWER1()); err == nil {
		t.Error("semantic error accepted")
	}
}

func TestPredictionTracksSimulation(t *testing.T) {
	pred, err := Predict(daxpySrc, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{200, 2000} {
		p, err := pred.EvalAt(map[string]float64{"n": n})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Simulate(daxpySrc, POWER1(), map[string]float64{"n": n, "alpha": 2.0})
		if err != nil {
			t.Fatal(err)
		}
		ratio := p / float64(s)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("n=%v: pred %v vs sim %d", n, p, s)
		}
	}
}

func TestSensitivityAPI(t *testing.T) {
	src := `
subroutine p(n, k)
  integer i, j, n, k
  real a(100,100), b(1000)
  do i = 1, n
    do j = 1, n
      a(i,j) = a(i,j) + 1.0
    end do
  end do
  do i = 1, k
    b(i) = 2.0
  end do
end
`
	pred, err := Predict(src, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	sens, err := pred.Sensitivity(map[string]float64{"n": 100, "k": 100}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) < 2 || sens[0].Name != "n" {
		t.Errorf("sensitivity ranking: %+v", sens)
	}
	// Missing nominal for a bound variable errors.
	if _, err := pred.Sensitivity(map[string]float64{"n": 100}, 0.05); err == nil {
		t.Error("missing nominal accepted")
	}
}

func TestCompareAPI(t *testing.T) {
	// Quadratic vs linear: crossover within bounds → Depends.
	quad := `
subroutine p(n)
  integer i, j, n
  real a(64,64)
  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0
    end do
  end do
end
`
	linear := `
subroutine q(n)
  integer i, n
  real b(4096)
  do i = 1, n
    b(i) = b(i) * 2.0 + 1.0
    b(i) = b(i) * 3.0 + 2.0
    b(i) = sqrt(b(i))
  end do
end
`
	p1, err := Predict(quad, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Predict(linear, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(p1, p2, map[string]Bound{"n": {Lo: 1, Hi: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != VerdictDepends {
		t.Fatalf("verdict = %v (diff %v)", cmp.Verdict, cmp.Difference)
	}
	if len(cmp.Crossovers) == 0 {
		t.Fatal("no crossover found")
	}
	// Validate against simulation: find the actual crossover by
	// scanning n, then require the predicted crossover to land within
	// a factor of ~2 of it (the shape claim, not exact cycles).
	x := cmp.Crossovers[0]
	actual := -1.0
	for n := 1.0; n <= 64; n++ {
		sQuad, _ := Simulate(quad, POWER1(), map[string]float64{"n": n})
		sLin, _ := Simulate(linear, POWER1(), map[string]float64{"n": n})
		if sQuad > sLin {
			actual = n
			break
		}
	}
	if actual < 0 {
		t.Fatal("no simulated crossover in range")
	}
	if x < actual/2.5 || x > actual*2.5 {
		t.Errorf("predicted crossover %v vs simulated %v", x, actual)
	}
}

func TestCompareAlwaysBetter(t *testing.T) {
	fast := "subroutine p(n)\n integer i, n\n real a(4096)\n do i = 1, n\n a(i) = 1.0\n end do\nend\n"
	slow := "subroutine q(n)\n integer i, n\n real a(4096)\n do i = 1, n\n a(i) = sqrt(a(i)) / 3.0\n end do\nend\n"
	p1, _ := Predict(fast, POWER1())
	p2, _ := Predict(slow, POWER1())
	cmp, err := Compare(p1, p2, map[string]Bound{"n": {Lo: 1, Hi: 100000}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != VerdictFirstBetter {
		t.Errorf("verdict = %v", cmp.Verdict)
	}
	if cmp.FirstShare != 1 {
		t.Errorf("share = %v", cmp.FirstShare)
	}
}

func TestAnalyzeInnermostBlockFig7(t *testing.T) {
	for _, k := range kernels.Figure7Set() {
		t.Run(k.Name, func(t *testing.T) {
			rep, err := AnalyzeInnermostBlock(k.Src, POWER1())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Instructions == 0 || rep.Predicted == 0 || rep.Reference == 0 {
				t.Fatalf("report: %+v", rep)
			}
			// Figure 7's claim: straight-line predictions are accurate.
			if e := math.Abs(rep.ErrorPct()); e > 35 {
				t.Errorf("prediction error %.1f%% (pred %d, ref %d)", e, rep.Predicted, rep.Reference)
			}
			// The op-count baseline overestimates (no overlap).
			if rep.Baseline < rep.Reference {
				t.Errorf("baseline %d below reference %d?", rep.Baseline, rep.Reference)
			}
		})
	}
}

func TestMatmul44SixteenFMAs(t *testing.T) {
	k, _ := kernels.Get("matmul44")
	ops, err := CountOps(k.Src, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	if ops["fma"] != 16 {
		t.Errorf("FMA count = %d, want 16 (paper: 'a total of 16 FMA operations')", ops["fma"])
	}
}

func TestOptimizeAPI(t *testing.T) {
	res, err := Optimize(daxpySrc, POWER1(), map[string]float64{"n": 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedAfter > res.PredictedBefore {
		t.Errorf("optimize worsened: %v → %v", res.PredictedBefore, res.PredictedAfter)
	}
	if res.Source == "" || res.Explored == 0 {
		t.Errorf("result: %+v", res)
	}
	if !strings.Contains(res.Source, "do i") {
		t.Errorf("transformed source:\n%s", res.Source)
	}
}

func TestBlockReportHelpers(t *testing.T) {
	r := BlockReport{Predicted: 11, Reference: 10, Baseline: 40}
	if math.Abs(r.ErrorPct()-10) > 1e-9 {
		t.Errorf("error pct: %v", r.ErrorPct())
	}
	if r.BaselineFactor() != 4 {
		t.Errorf("baseline factor: %v", r.BaselineFactor())
	}
	z := BlockReport{}
	if z.ErrorPct() != 0 || z.BaselineFactor() != 0 {
		t.Error("zero-reference helpers")
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[ComparisonVerdict]string{
		VerdictUnknown: "unknown", VerdictFirstBetter: "first better",
		VerdictEqual: "equal", VerdictSecondBetter: "second better",
		VerdictDepends: "depends on unknowns",
	} {
		if v.String() != want {
			t.Errorf("%d: %q", v, v.String())
		}
	}
}

func TestLibraryAPI(t *testing.T) {
	lib, err := BuildLibrary(map[string]string{"daxpy": daxpySrc}, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	caller := `
subroutine caller(m)
  integer i, m
  real a
  a = 2.0
  do i = 1, m
    call daxpy(128, a)
  end do
end
`
	pred, err := PredictWithLibrary(caller, POWER1(), lib)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Cost.Degree("m") != 1 {
		t.Fatalf("cost: %v", pred.Cost)
	}
	// The library cost dominates: per-iteration ≈ C_daxpy(128) ≈ 450+.
	at10, err := pred.EvalAt(map[string]float64{"m": 10})
	if err != nil {
		t.Fatal(err)
	}
	if at10 < 10*400 {
		t.Errorf("library call cost not applied: %v at m=10", at10)
	}
	// Without the library, the same caller costs only linkage per call.
	bare, err := Predict(caller, POWER1())
	if err != nil {
		t.Fatal(err)
	}
	bareAt10, _ := bare.EvalAt(map[string]float64{"m": 10})
	if bareAt10 >= at10 {
		t.Errorf("library should add cost: %v vs %v", bareAt10, at10)
	}
}
