package perfpredict

import (
	"sync"
	"testing"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/kernels"
)

// TestPredictConcurrent checks the concurrency contract of the
// prediction pipeline: many goroutines predicting through one shared
// segment cache produce results byte-identical to serial runs. Run
// under `go test -race` (scripts/ci.sh does) this also exercises the
// sharded cache, the tetris/pipesim scratch pools and the symexpr
// intern table for data races.
func TestPredictConcurrent(t *testing.T) {
	target := POWER1()
	ks := kernels.All()
	srcs := make([]string, len(ks))
	for i, k := range ks {
		srcs[i] = k.Src
	}

	// Serial ground truth, private caches.
	wantCost := make([]string, len(srcs))
	wantOne := make([]string, len(srcs))
	for i, src := range srcs {
		pred, err := Predict(src, target)
		if err != nil {
			t.Fatalf("serial predict %s: %v", ks[i].Name, err)
		}
		wantCost[i] = pred.Cost.String()
		wantOne[i] = pred.OneTime.String()
	}

	check := func(t *testing.T, i int, pred *Prediction, err error) {
		t.Helper()
		if err != nil {
			t.Errorf("%s: %v", ks[i].Name, err)
			return
		}
		if got := pred.Cost.String(); got != wantCost[i] {
			t.Errorf("%s: concurrent cost %q != serial %q", ks[i].Name, got, wantCost[i])
		}
		if got := pred.OneTime.String(); got != wantOne[i] {
			t.Errorf("%s: concurrent one-time %q != serial %q", ks[i].Name, got, wantOne[i])
		}
	}

	t.Run("predict-shared-cache", func(t *testing.T) {
		cache := NewSegmentCache()
		const goroutines = 8
		var wg sync.WaitGroup
		results := make([][]*Prediction, goroutines)
		errors := make([][]error, goroutines)
		for g := 0; g < goroutines; g++ {
			results[g] = make([]*Prediction, len(srcs))
			errors[g] = make([]error, len(srcs))
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i, src := range srcs {
					results[g][i], errors[g][i] = predictWithCache(src, target, aggregate.DefaultOptions(), cache)
				}
			}(g)
		}
		wg.Wait()
		for g := 0; g < goroutines; g++ {
			for i := range srcs {
				check(t, i, results[g][i], errors[g][i])
			}
		}
		if hits, misses := cache.Stats(); hits == 0 || misses == 0 {
			t.Errorf("shared cache saw hits=%d misses=%d; want both nonzero", hits, misses)
		}
	})

	t.Run("predict-batch", func(t *testing.T) {
		cache := NewSegmentCache()
		for _, workers := range []int{1, 8} {
			preds, errs := PredictBatch(srcs, target, BatchOptions{Workers: workers, Cache: cache})
			for i := range srcs {
				check(t, i, preds[i], errs[i])
			}
		}
	})
}
