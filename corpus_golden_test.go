package perfpredict

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// The generated corpus under testdata/corpus pins the symbolic cost
// of 50 generated programs on every builtin target and 5 generated
// machine descriptions. A mismatch means a pricing change: if
// intentional, regenerate with
//
//	go run ./cmd/fuzzcheck -emit-corpus testdata/corpus
func TestCorpusGoldenPredictions(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "corpus", "golden.json"))
	if err != nil {
		t.Fatalf("reading goldens (regenerate with fuzzcheck -emit-corpus): %v", err)
	}
	var golden map[string]map[string]string
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("empty golden table")
	}

	targets := map[string]*Target{}
	target := func(name string) *Target {
		if m, ok := targets[name]; ok {
			return m
		}
		ref := name
		if _, err := os.Stat(filepath.Join("testdata", "corpus", "specs", name+".json")); err == nil {
			ref = filepath.Join("testdata", "corpus", "specs", name+".json")
		}
		m, err := LoadTarget(ref)
		if err != nil {
			t.Fatalf("target %s: %v", name, err)
		}
		targets[name] = m
		return m
	}

	progs := make([]string, 0, len(golden))
	for p := range golden {
		progs = append(progs, p)
	}
	sort.Strings(progs)
	for _, prog := range progs {
		src, err := os.ReadFile(filepath.Join("testdata", "corpus", "programs", prog))
		if err != nil {
			t.Fatalf("corpus program %s missing: %v", prog, err)
		}
		names := make([]string, 0, len(golden[prog]))
		for n := range golden[prog] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			p, err := Predict(string(src), target(name))
			if err != nil {
				t.Errorf("%s on %s: %v", prog, name, err)
				continue
			}
			if got := p.Cost.String(); got != golden[prog][name] {
				t.Errorf("%s on %s: cost %q, golden %q", prog, name, got, golden[prog][name])
			}
		}
	}
}

// TestCorpusGoldenExplain pins the explain digest — bottleneck unit,
// dominant-nest critical-path span, top-3 utilizations — of every
// corpus program on every target. A mismatch means the diagnosis
// changed: if intentional, regenerate with
//
//	go run ./cmd/fuzzcheck -emit-corpus testdata/corpus
func TestCorpusGoldenExplain(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "corpus", "golden_explain.json"))
	if err != nil {
		t.Fatalf("reading explain goldens (regenerate with fuzzcheck -emit-corpus): %v", err)
	}
	var golden map[string]map[string]string
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("empty explain golden table")
	}

	targets := map[string]*Target{}
	target := func(name string) *Target {
		if m, ok := targets[name]; ok {
			return m
		}
		ref := name
		if _, err := os.Stat(filepath.Join("testdata", "corpus", "specs", name+".json")); err == nil {
			ref = filepath.Join("testdata", "corpus", "specs", name+".json")
		}
		m, err := LoadTarget(ref)
		if err != nil {
			t.Fatalf("target %s: %v", name, err)
		}
		targets[name] = m
		return m
	}

	progs := make([]string, 0, len(golden))
	for p := range golden {
		progs = append(progs, p)
	}
	sort.Strings(progs)
	for _, prog := range progs {
		src, err := os.ReadFile(filepath.Join("testdata", "corpus", "programs", prog))
		if err != nil {
			t.Fatalf("corpus program %s missing: %v", prog, err)
		}
		names := make([]string, 0, len(golden[prog]))
		for n := range golden[prog] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			rep, err := ExplainCtx(context.Background(), string(src), target(name),
				ExplainOptions{SkipWhatIf: true})
			if err != nil {
				t.Errorf("%s on %s: %v", prog, name, err)
				continue
			}
			if got := rep.Summary(); got != golden[prog][name] {
				t.Errorf("%s on %s: digest %q, golden %q", prog, name, got, golden[prog][name])
			}
		}
	}
}
