package perfpredict

import (
	"fmt"

	"perfpredict/internal/cachemodel"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/xform"
)

// MultiVersionResult is the outcome of MultiVersion.
type MultiVersionResult struct {
	// Source is the combined program: a run-time test selecting the
	// variant that is cheaper on its side of the crossover. Empty when
	// no versioning is warranted.
	Source string
	// Variable and Threshold define the emitted test
	// `if (Variable < Threshold+1)`.
	Variable  string
	Threshold float64
	// Verdict explains the decision: VerdictDepends produced a
	// versioned program; a one-sided verdict means one variant wins
	// everywhere and Source holds that variant unmodified.
	Verdict ComparisonVerdict
}

// MultiVersion compares two variants of the same program unit over the
// given bounds and, when the winner depends on an unknown (§3.4),
// emits a two-version program guarded by the run-time test at the
// predicted crossover. The variant that is cheaper below the crossover
// is placed on the then-branch.
func MultiVersion(srcA, srcB string, target *Target, bounds map[string]Bound) (MultiVersionResult, error) {
	pa, err := Predict(srcA, target)
	if err != nil {
		return MultiVersionResult{}, fmt.Errorf("first variant: %w", err)
	}
	pb, err := Predict(srcB, target)
	if err != nil {
		return MultiVersionResult{}, fmt.Errorf("second variant: %w", err)
	}
	cmp, err := Compare(pa, pb, bounds)
	if err != nil {
		return MultiVersionResult{}, err
	}
	out := MultiVersionResult{Verdict: cmp.Verdict}
	switch cmp.Verdict {
	case VerdictFirstBetter, VerdictEqual:
		out.Source = srcA
		return out, nil
	case VerdictSecondBetter:
		out.Source = srcB
		return out, nil
	case VerdictDepends:
		if len(cmp.Crossovers) == 0 || cmp.Variable == "" {
			return out, fmt.Errorf("perfpredict: winner depends on unknowns but no univariate crossover was found")
		}
	default:
		return out, fmt.Errorf("perfpredict: comparison inconclusive")
	}
	progA, err := source.Parse(srcA)
	if err != nil {
		return out, err
	}
	progB, err := source.Parse(srcB)
	if err != nil {
		return out, err
	}
	threshold := cmp.Crossovers[0]
	// Which variant is cheaper below the crossover? Evaluate the
	// difference just below it.
	at := threshold - 1
	if lo, ok := bounds[cmp.Variable]; ok && at < lo.Lo {
		at = lo.Lo
	}
	diffBelow, err := cmp.Difference.Eval(map[symexpr.Var]float64{symexpr.Var(cmp.Variable): at})
	if err != nil {
		return out, err
	}
	first, second := progA, progB
	if diffBelow > 0 { // second is cheaper below the crossover
		first, second = progB, progA
	}
	v, err := xform.Versioned(first, second, xform.ThresholdGuard(cmp.Variable, threshold))
	if err != nil {
		return out, err
	}
	out.Source = source.PrintProgram(v)
	out.Variable = cmp.Variable
	out.Threshold = threshold
	return out, nil
}

// MemoryEstimate is the memory-access cost of one loop nest (§2.3).
type MemoryEstimate struct {
	// Lines is the symbolic distinct-cache-line count of the nest.
	Lines Expression
	// Cycles is Lines × miss penalty (plus TLB terms are omitted in
	// the symbolic form).
	Cycles Expression
	// Loops names the nest's loop variables, outermost first.
	Loops []string
}

// PredictMemory estimates, per top-level perfect loop nest, the number
// of distinct cache lines the nest touches and the resulting memory
// cycles — the §2.3 cost category, symbolic in the loop bounds. The
// estimate is the interference-free (cold-miss) count; capacity
// effects need concrete sizes (see internal/cachemodel.EstimateNest).
func PredictMemory(src string, cfg CacheConfig) ([]MemoryEstimate, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	mcfg := cachemodel.Config{
		SizeBytes: cfg.SizeBytes, LineBytes: cfg.LineBytes,
		ElemBytes: 8, MissPenalty: cfg.MissPenalty,
	}
	var out []MemoryEstimate
	for _, s := range prog.Body {
		loop, ok := s.(*source.DoLoop)
		if !ok {
			continue
		}
		var vars []string
		trips := map[string]symexpr.Poly{}
		body := []source.Stmt{}
		cur := loop
		for {
			vars = append(vars, cur.Var)
			trips[cur.Var] = tripPoly(tbl, cur)
			body = cur.Body
			if len(cur.Body) == 1 {
				if inner, ok := cur.Body[0].(*source.DoLoop); ok {
					cur = inner
					continue
				}
			}
			break
		}
		lines, err := cachemodel.SymbolicLines(tbl, vars, trips, body, mcfg)
		if err != nil {
			return nil, err
		}
		out = append(out, MemoryEstimate{
			Lines:  lines,
			Cycles: lines.Scale(float64(cfg.MissPenalty)),
			Loops:  vars,
		})
	}
	return out, nil
}

// CacheConfig describes the cache the memory model prices against.
type CacheConfig struct {
	SizeBytes   int64
	LineBytes   int64
	MissPenalty int64
}

// DefaultCache is the POWER1-class data cache (64 KiB, 128-byte lines,
// 15-cycle fill), derived from the same hierarchy spec the machine
// model uses so the two can never drift apart.
func DefaultCache() CacheConfig {
	l := machine.POWER1Memory().Levels[0]
	return CacheConfig{SizeBytes: l.SizeBytes, LineBytes: l.LineBytes, MissPenalty: l.MissPenalty}
}

// tripPoly converts a loop's trip count to a symbolic polynomial.
func tripPoly(tbl *sem.Table, l *source.DoLoop) symexpr.Poly {
	lb := boundPoly(tbl, l.Lb)
	ub := boundPoly(tbl, l.Ub)
	step := 1
	if l.Step != nil {
		if c, ok := tbl.IntConst(l.Step); ok && c > 0 {
			step = int(c)
		}
	}
	return symexpr.TripCount(lb, ub, step)
}

func boundPoly(tbl *sem.Table, e source.Expr) symexpr.Poly {
	if c, ok := tbl.FoldConst(e); ok {
		return symexpr.Const(c)
	}
	switch x := e.(type) {
	case *source.VarRef:
		return symexpr.NewVar(symexpr.Var(x.Name))
	case *source.BinExpr:
		l := boundPoly(tbl, x.L)
		r := boundPoly(tbl, x.R)
		switch x.Kind {
		case source.BinAdd:
			return l.Add(r)
		case source.BinSub:
			return l.Sub(r)
		case source.BinMul:
			return l.Mul(r)
		}
	case *source.UnExpr:
		if x.Neg {
			return boundPoly(tbl, x.X).Neg()
		}
	}
	return symexpr.Const(1)
}
