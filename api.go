// Package perfpredict is a compile-time performance prediction
// framework for superscalar processors, reproducing Ko-Yang Wang,
// "Precise Compile-Time Performance Prediction for Superscalar-Based
// Computers" (PLDI 1994).
//
// The library predicts the execution cost of Fortran-like (F-lite)
// programs without running them:
//
//   - straight-line code is priced by a detailed, portable cost model
//     that packs per-unit "cost objects" (noncoverable + coverable
//     cycles) into functional-unit time slots, honoring data
//     dependences — capturing the instruction-level parallelism of
//     superscalar machines;
//   - an instruction-translation module imitates back-end
//     optimizations (CSE, code motion, FMA fusion, dead-store
//     elimination) so source-level predictions match generated code;
//   - loops and conditionals aggregate symbolically: the result is a
//     polynomial over program unknowns (loop bounds, branching
//     probabilities), so guesses are delayed or avoided;
//   - symbolic comparison of two variants finds the parameter regions
//     where each wins, feeding automatic, performance-guided program
//     restructuring (unroll/interchange/tile/fuse chosen by search).
//
// Ground truth for validation comes from a cycle-level in-order
// pipeline simulator and an interpreter that replays whole programs
// through it.
//
// Quick start:
//
//	pred, err := perfpredict.Predict(src, perfpredict.POWER1())
//	cycles, err := pred.EvalAt(map[string]float64{"n": 1000})
//	actual, err := perfpredict.Simulate(src, perfpredict.POWER1(),
//	    map[string]float64{"n": 1000})
package perfpredict

import (
	"context"
	"fmt"
	"os"
	"strings"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/interp"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// Expression is a symbolic performance expression: a polynomial over
// program unknowns, in cycles.
type Expression = symexpr.Poly

// Var names a symbolic unknown in an Expression.
type Var = symexpr.Var

// Target describes the machine being predicted for.
type Target = machine.Machine

// mustTarget resolves a builtin target through the machine registry;
// builtins are embedded spec files, so failure is a build bug.
func mustTarget(name string) *Target {
	m, err := machine.Lookup(name)
	if err != nil {
		panic("perfpredict: builtin target: " + err.Error())
	}
	return m
}

// POWER1 returns the IBM RS/6000 POWER-like target of the paper's
// examples (FXU/FPU/branch/CR units, fused multiply-add), loaded from
// its registered machine spec.
func POWER1() *Target { return mustTarget("POWER1") }

// SuperScalar2 returns a wider hypothetical machine with two
// fixed-point and two floating-point pipes.
func SuperScalar2() *Target { return mustTarget("SuperScalar2") }

// Scalar1 returns a conventional single-issue machine with no
// overlap; on it the framework degenerates to an operation-count cost
// model (the baseline the paper improves upon).
func Scalar1() *Target { return mustTarget("Scalar1") }

// TargetNames lists every registered target machine, sorted — the
// valid names LoadTarget resolves without touching the filesystem.
func TargetNames() []string { return machine.Names() }

// LoadTarget resolves a target from a registered machine name
// (case-insensitive) or, failing that, from a machine-spec file at the
// given path. Retargeting the predictor is exactly the paper's §2.2
// claim — "defining the atomic operation mapping and the atomic
// operation cost table" — and a spec file is that definition as data:
// it is parsed, strictly validated (unknown units, malformed or
// overlapping cost segments, and missing basic-operation mappings are
// load-time errors), and built into a fresh Target. Every mapping the
// lowering layer requires (internal/lower.RequiredOps) is guaranteed
// present on success.
func LoadTarget(nameOrPath string) (*Target, error) {
	if m, err := machine.Lookup(nameOrPath); err == nil {
		return m, nil
	}
	data, rerr := os.ReadFile(nameOrPath)
	if rerr != nil {
		return nil, fmt.Errorf("perfpredict: unknown machine %q (registered: %s), and no spec file there: %v",
			nameOrPath, strings.Join(machine.Names(), ", "), rerr)
	}
	spec, err := machine.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("perfpredict: %s: %w", nameOrPath, err)
	}
	m, err := spec.Machine()
	if err != nil {
		return nil, fmt.Errorf("perfpredict: %s: %w", nameOrPath, err)
	}
	return m, nil
}

// Unknown describes one symbolic variable of a prediction.
type Unknown struct {
	Name string
	// Kind is "bound" (loop bound / problem size), "probability"
	// (branching probability), or "opaque" (unanalyzable expression).
	Kind string
	// Source is the program text the variable stands for.
	Source string
}

// Prediction is a compile-time cost estimate.
type Prediction struct {
	// Cost is the total predicted cycles as a symbolic expression.
	Cost Expression
	// OneTime is the hoisted loop-invariant part, included in Cost.
	OneTime Expression
	// Memory is the cache/TLB miss share of Cost (§2.3: distinct-line
	// counts × the spec's miss penalties), included in Cost. It is
	// zero unless the target declares a memory hierarchy with nonzero
	// penalties; Cost − Memory is the in-core (scheduling) term.
	Memory Expression
	// Unknowns lists Cost's variables.
	Unknowns []Unknown

	prog *source.Program
	tbl  *sem.Table
	mach *Target
}

// Predict parses, analyzes and prices an F-lite program.
func Predict(src string, target *Target) (*Prediction, error) {
	return PredictWithOptions(src, target, aggregate.DefaultOptions())
}

// PredictWithOptions exposes the aggregation knobs (back-end
// imitation flags, focus span, steady-state drops, branch heuristics).
func PredictWithOptions(src string, target *Target, opt aggregate.Options) (*Prediction, error) {
	return predictWithCache(src, target, opt, nil)
}

// EvalAt substitutes concrete values for the unknowns and returns
// predicted cycles. Probability unknowns default to 0.5 when absent;
// other missing unknowns are an error.
func (p *Prediction) EvalAt(values map[string]float64) (float64, error) {
	return p.Cost.Eval(p.assignFor(values))
}

// EvalMemoryAt evaluates the memory-hierarchy component of the
// prediction at the same point (and with the same probability
// defaulting) as EvalAt. Zero for hierarchy-less targets.
func (p *Prediction) EvalMemoryAt(values map[string]float64) (float64, error) {
	return p.Memory.Eval(p.assignFor(values))
}

func (p *Prediction) assignFor(values map[string]float64) map[symexpr.Var]float64 {
	assign := map[symexpr.Var]float64{}
	for k, v := range values {
		assign[symexpr.Var(k)] = v
	}
	for _, u := range p.Unknowns {
		if _, ok := assign[symexpr.Var(u.Name)]; ok {
			continue
		}
		if u.Kind == "probability" {
			assign[symexpr.Var(u.Name)] = 0.5
		}
	}
	return assign
}

// Sensitivity ranks the unknowns by how strongly a ±delta relative
// perturbation around the nominal point moves the prediction — the
// basis for choosing run-time tests (§3.4 of the paper).
func (p *Prediction) Sensitivity(nominal map[string]float64, delta float64) ([]VarSensitivity, error) {
	assign := map[symexpr.Var]float64{}
	for k, v := range nominal {
		assign[symexpr.Var(k)] = v
	}
	for _, u := range p.Unknowns {
		if _, ok := assign[symexpr.Var(u.Name)]; !ok {
			if u.Kind == "probability" {
				assign[symexpr.Var(u.Name)] = 0.5
			} else {
				return nil, fmt.Errorf("perfpredict: no nominal value for unknown %q", u.Name)
			}
		}
	}
	raw, err := symexpr.Sensitivity(p.Cost, assign, delta)
	if err != nil {
		return nil, err
	}
	out := make([]VarSensitivity, len(raw))
	for i, s := range raw {
		out[i] = VarSensitivity{Name: string(s.Var), Swing: s.Perturbation, Relative: s.Relative}
	}
	return out, nil
}

// VarSensitivity is one variable's influence on the prediction.
type VarSensitivity struct {
	Name string
	// Swing is the absolute change of the prediction under a ±delta
	// perturbation.
	Swing float64
	// Relative is Swing divided by the nominal prediction.
	Relative float64
}

// Simulate executes the program on the cycle-level reference pipeline
// (the reproduction's stand-in for hardware runs) and returns dynamic
// cycles. args provides dummy-argument values.
func Simulate(src string, target *Target, args map[string]float64) (int64, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return 0, err
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		return 0, err
	}
	r := interp.New(prog, tbl, interp.Options{Machine: target})
	for k, v := range args {
		r.SetScalar(k, v)
	}
	if err := r.Run(); err != nil {
		return 0, err
	}
	return r.Cycles(), nil
}

// Bound is a closed interval of values an unknown can take.
type Bound struct{ Lo, Hi float64 }

// ComparisonVerdict mirrors the symbolic-comparison outcomes of §3.1.
type ComparisonVerdict int

const (
	VerdictUnknown ComparisonVerdict = iota
	VerdictFirstBetter
	VerdictEqual
	VerdictSecondBetter
	VerdictDepends
)

func (v ComparisonVerdict) String() string {
	return [...]string{"unknown", "first better", "equal", "second better", "depends on unknowns"}[v]
}

// Comparison is the result of comparing two predictions symbolically.
type Comparison struct {
	Verdict ComparisonVerdict
	// Difference is C(first) − C(second).
	Difference Expression
	// Crossovers are the parameter values (in Variable) where the
	// winner changes, when the difference is univariate.
	Variable   string
	Crossovers []float64
	// FirstShare is the fraction of the bounded region where the first
	// program is at least as cheap.
	FirstShare float64
}

// Compare decides which of two programs is faster over the given
// bounds on their unknowns, without guessing values when the answer is
// uniform (§3.1). Probability unknowns default to [0, 1] bounds.
func Compare(first, second *Prediction, bounds map[string]Bound) (Comparison, error) {
	b := symexpr.Bounds{}
	for k, v := range bounds {
		b[symexpr.Var(k)] = symexpr.Interval{Lo: v.Lo, Hi: v.Hi}
	}
	for _, pred := range []*Prediction{first, second} {
		for _, u := range pred.Unknowns {
			if _, ok := b[symexpr.Var(u.Name)]; !ok && u.Kind == "probability" {
				b[symexpr.Var(u.Name)] = symexpr.Interval{Lo: 0, Hi: 1}
			}
		}
	}
	cmp, err := symexpr.Compare(first.Cost, second.Cost, b)
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{
		Difference: cmp.Diff,
		Variable:   string(cmp.Var),
		FirstShare: cmp.FirstShare,
	}
	switch cmp.Verdict {
	case symexpr.VerdictFirstBetter:
		out.Verdict = VerdictFirstBetter
	case symexpr.VerdictEqual:
		out.Verdict = VerdictEqual
	case symexpr.VerdictSecondBetter:
		out.Verdict = VerdictSecondBetter
	case symexpr.VerdictDepends:
		out.Verdict = VerdictDepends
		if rt, ok := symexpr.DeriveRuntimeTest(cmp); ok {
			out.Crossovers = rt.Thresholds
		}
	}
	return out, nil
}

// OptimizeResult reports a performance-guided restructuring.
type OptimizeResult struct {
	// Source is the transformed program text.
	Source string
	// Transformations applied, in order (e.g. "unroll4@[0]").
	Transformations []string
	// PredictedBefore and PredictedAfter are cycles at the nominal
	// point.
	PredictedBefore, PredictedAfter float64
	// MemoryBefore and MemoryAfter are the memory-hierarchy share of
	// the respective predictions at the same nominal point — how much
	// of the cost (and of the win) came from cache behavior. Zero for
	// targets without an active hierarchy.
	MemoryBefore, MemoryAfter float64
	// Explored counts search states expanded.
	Explored int
	// SegCacheHits/SegCacheMisses count straight-line segment lookups
	// in the search's shared segment cache; NestCacheHits and
	// NestsRepriced count whole loop nests spliced from, respectively
	// priced into, the nest-level cost cache that makes candidate
	// re-pricing incremental.
	SegCacheHits, SegCacheMisses int
	NestCacheHits, NestsRepriced int
	// Bottleneck names the first-saturating functional-unit kind of the
	// chosen variant, with its utilization — the explain-mode diagnosis
	// run once on the winner. Empty when the search was cancelled or the
	// diagnosis could not run; the ranking never depends on it.
	Bottleneck     string
	BottleneckUtil float64
}

// Optimize searches transformation sequences (unroll, interchange,
// tile, fuse) for the cheapest predicted variant (§3.2). nominal
// assigns values to unknowns for ranking.
func Optimize(src string, target *Target, nominal map[string]float64) (OptimizeResult, error) {
	return OptimizeCtx(context.Background(), src, target, nominal, OptimizeOptions{})
}

// Library is an external-routine cost table (§3.5 of the paper):
// performance expressions parameterized by formal parameters,
// substituted with the actual parameters at each call site.
type Library = aggregate.LibraryTable

// BuildLibrary computes cost-table entries from routine sources,
// keyed by routine name.
func BuildLibrary(routines map[string]string, target *Target) (Library, error) {
	lib := Library{}
	for name, src := range routines {
		entry, err := aggregate.BuildLibraryEntry(src, target, aggregate.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("library routine %s: %w", name, err)
		}
		lib[name] = entry
	}
	return lib, nil
}

// PredictWithLibrary predicts a program whose CALL statements resolve
// through the given library cost table.
func PredictWithLibrary(src string, target *Target, lib Library) (*Prediction, error) {
	opt := aggregate.DefaultOptions()
	opt.Library = lib
	return PredictWithOptions(src, target, opt)
}
