// Benchmarks: one per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark runs the computation that generates
// the corresponding experiment row set; `go run ./cmd/figures` prints
// the actual tables. Custom metrics report the experiment's headline
// quality numbers alongside the usual ns/op.
package perfpredict

import (
	"fmt"
	"math"
	"testing"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/cachemodel"
	"perfpredict/internal/cachesim"
	"perfpredict/internal/comm"
	"perfpredict/internal/interp"
	"perfpredict/internal/ir"
	"perfpredict/internal/kernels"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/pipesim"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/tetris"
	"perfpredict/internal/xform"
)

// BenchmarkFig7StraightLine (E1): the Figure 7 block set — prediction,
// reference, baseline per kernel block.
func BenchmarkFig7StraightLine(b *testing.B) {
	b.ReportAllocs()
	target := POWER1()
	set := kernels.Figure7Set()
	var meanErr float64
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, k := range set {
			rep, err := AnalyzeInnermostBlock(k.Src, target)
			if err != nil {
				b.Fatal(err)
			}
			sum += math.Abs(rep.ErrorPct())
		}
		meanErr = sum / float64(len(set))
	}
	b.ReportMetric(meanErr, "mean|err|%")
}

// BenchmarkFig9Overlap (E2): shape concatenation vs full re-placement
// over all kernel-block pairs.
func BenchmarkFig9Overlap(b *testing.B) {
	b.ReportAllocs()
	m := machine.NewPOWER1()
	var blocks []*ir.Block
	var shapes []tetris.CostBlock
	for _, k := range kernels.Figure7Set() {
		p, tbl, err := k.Parse()
		if err != nil {
			b.Fatal(err)
		}
		body, vars, ok := innermostBlock(p.Body, nil)
		if !ok {
			continue
		}
		tr := lower.New(tbl, m, lower.DefaultOptions())
		lw, err := tr.Body(body, vars)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tetris.Estimate(m, lw.Body, tetris.Options{})
		if err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, lw.Body)
		shapes = append(shapes, res.Shape)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := range shapes {
			for y := range shapes {
				tetris.Concat(shapes[x], shapes[y])
			}
		}
	}
}

// BenchmarkTetrisScaling (E3): placement cost per operation at two
// block sizes — the linear-time claim.
func BenchmarkTetrisScaling(b *testing.B) {
	b.ReportAllocs()
	m := machine.NewPOWER1()
	for _, n := range []int{256, 4096} {
		blk := syntheticBlock(n)
		b.Run(fmt.Sprintf("ops%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tetris.Estimate(m, blk, tetris.Options{FocusSpan: 64}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/ir-op")
		})
	}
}

func syntheticBlock(n int) *ir.Block {
	blk := &ir.Block{}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			blk.Append(ir.Instr{Op: ir.OpFLoad, Dst: ir.Reg(i), Addr: fmt.Sprintf("x(%d)", i), Base: "x"})
		case 1:
			blk.Append(ir.Instr{Op: ir.OpFMul, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(i - 1), 100000}})
		case 2:
			blk.Append(ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(i - 1), 100001}})
		default:
			blk.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{ir.Reg(i - 1)}, Addr: fmt.Sprintf("y(%d)", i), Base: "y"})
		}
	}
	return blk
}

// BenchmarkUnrollChoice (E4): predict the best unroll factor for the
// Jacobi kernel.
func BenchmarkUnrollChoice(b *testing.B) {
	b.ReportAllocs()
	k, err := kernels.Get("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	prog, _, err := k.Parse()
	if err != nil {
		b.Fatal(err)
	}
	var path xform.Path
	for _, site := range xform.FindLoops(prog) {
		if site.Innermost {
			path = site.Path
		}
	}
	target := POWER1()
	best := 0
	for i := 0; i < b.N; i++ {
		bestCost := math.MaxFloat64
		for _, f := range []int{1, 2, 4, 8} {
			variant := prog
			if f > 1 {
				var err error
				variant, err = xform.Unroll(prog, path, f)
				if err != nil {
					b.Fatal(err)
				}
			}
			pred, err := Predict(source.PrintProgram(variant), target)
			if err != nil {
				b.Fatal(err)
			}
			pv, err := pred.EvalAt(nil)
			if err != nil {
				b.Fatal(err)
			}
			if pv < bestCost {
				bestCost, best = pv, f
			}
		}
	}
	b.ReportMetric(float64(best), "chosen-factor")
}

// BenchmarkSymbolicCompare (E5): sign-region comparison of two
// performance expressions including root isolation.
func BenchmarkSymbolicCompare(b *testing.B) {
	b.ReportAllocs()
	n := symexpr.Var("n")
	quad := symexpr.NewVar(n).Pow(2).Scale(2.25).Add(symexpr.NewVar(n)).AddConst(8)
	lin := symexpr.NewVar(n).Scale(34.75).AddConst(7)
	bounds := symexpr.Bounds{n: {Lo: 1, Hi: 64}}
	var crossover float64
	for i := 0; i < b.N; i++ {
		cmp, err := symexpr.Compare(quad, lin, bounds)
		if err != nil {
			b.Fatal(err)
		}
		if rt, ok := symexpr.DeriveRuntimeTest(cmp); ok && len(rt.Thresholds) > 0 {
			crossover = rt.Thresholds[0]
		}
	}
	b.ReportMetric(crossover, "crossover-n")
}

// BenchmarkCondSimplify (E6): aggregation of the §3.3.2 loop-index
// conditional, reporting the prediction error vs simulation at k=1000.
func BenchmarkCondSimplify(b *testing.B) {
	b.ReportAllocs()
	k, err := kernels.Get("condsplit")
	if err != nil {
		b.Fatal(err)
	}
	target := POWER1()
	sim, err := Simulate(k.Src, target, map[string]float64{"n": 2000, "k": 1000})
	if err != nil {
		b.Fatal(err)
	}
	var errPct float64
	for i := 0; i < b.N; i++ {
		pred, err := Predict(k.Src, target)
		if err != nil {
			b.Fatal(err)
		}
		pv, err := pred.EvalAt(map[string]float64{"n": 2000, "k": 1000})
		if err != nil {
			b.Fatal(err)
		}
		errPct = 100 * math.Abs(pv-float64(sim)) / float64(sim)
	}
	b.ReportMetric(errPct, "|err|%")
}

// BenchmarkCacheModel (E7): FST line counting for the matmul nest,
// reporting the model/simulator miss ratio at n=64.
func BenchmarkCacheModel(b *testing.B) {
	b.ReportAllocs()
	src := `
program matmul
  integer i, j, k, n
  parameter (n = 64)
  real a(64,64), b(64,64), c(64,64)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`
	p, err := source.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		b.Fatal(err)
	}
	body := p.Body
	for len(body) == 1 {
		l, ok := body[0].(*source.DoLoop)
		if !ok {
			break
		}
		body = l.Body
	}
	cfg := cachemodel.DefaultConfig()
	cfg.TLBPageBytes = 0
	loops := []cachemodel.Loop{{Var: "i", Trips: 64}, {Var: "j", Trips: 64}, {Var: "k", Trips: 64}}
	// Ground truth once.
	cache := cachesim.MustNew(cachesim.Config{Size: cfg.SizeBytes, LineSize: cfg.LineBytes, Assoc: 0})
	bases := map[string]int64{}
	var next int64
	r := interp.New(p, tbl, interp.Options{MemTrace: func(base string, idx int64, write bool) {
		bb, ok := bases[base]
		if !ok {
			bb = next
			bases[base] = bb
			next += (1 << 24) + 8*1013*cfg.LineBytes
		}
		cache.Access(bb + idx*8)
	}})
	if err := r.Run(); err != nil {
		b.Fatal(err)
	}
	_, simMisses := cache.Stats()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		est, err := cachemodel.EstimateNest(tbl, loops, body, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(est.LineMisses) / float64(simMisses)
	}
	b.ReportMetric(ratio, "model/sim")
}

// BenchmarkWholeProgram (E8): aggregated prediction of every kernel,
// reporting the mean pred/sim ratio.
func BenchmarkWholeProgram(b *testing.B) {
	b.ReportAllocs()
	target := POWER1()
	type pair struct {
		k   kernels.Kernel
		sim float64
	}
	var set []pair
	for _, k := range kernels.All() {
		if k.Name == "stencil_dist" {
			continue
		}
		sim, err := Simulate(k.Src, target, k.Args)
		if err != nil {
			b.Fatal(err)
		}
		set = append(set, pair{k, float64(sim)})
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, pr := range set {
			pred, err := Predict(pr.k.Src, target)
			if err != nil {
				b.Fatal(err)
			}
			pv, err := pred.EvalAt(pr.k.Args)
			if err != nil {
				b.Fatal(err)
			}
			sum += pv / pr.sim
		}
		mean = sum / float64(len(set))
	}
	b.ReportMetric(mean, "mean-pred/sim")
}

// BenchmarkAStarSearch (E9): best-first transformation search on the
// matmul nest.
func BenchmarkAStarSearch(b *testing.B) {
	b.ReportAllocs()
	k, err := kernels.Get("matmul")
	if err != nil {
		b.Fatal(err)
	}
	prog, _, err := k.Parse()
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := xform.Search(prog, xform.SearchOptions{
			Machine: machine.NewPOWER1(), MaxNodes: 15, MaxDepth: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		gain = res.InitialCost / res.BestCost
	}
	b.ReportMetric(gain, "predicted-gain")
}

// BenchmarkOptimize measures the transformation search's incremental
// re-pricing on the EXPERIMENTS.md figure programs: "full" disables
// the nest-level cost cache (every candidate re-prices every nest —
// the pre-incremental behavior, counted), "incremental" enables it.
// Custom metrics report nests re-priced and tetris invocations per
// Optimize call; the incremental/full tetris ratio is the headline
// (target ≥3× fewer).
func BenchmarkOptimize(b *testing.B) {
	for _, kn := range []string{"f2", "f6", "matmul"} {
		k, err := kernels.Get(kn)
		if err != nil {
			b.Fatal(err)
		}
		prog, _, err := k.Parse()
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"full", true}, {"incremental", false}} {
			b.Run(kn+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				var repriced, tet float64
				for i := 0; i < b.N; i++ {
					res, err := xform.Search(prog, xform.SearchOptions{
						Machine:          machine.NewPOWER1(),
						DisableNestCache: mode.disable,
					})
					if err != nil {
						b.Fatal(err)
					}
					repriced = float64(res.NestMisses)
					tet = float64(res.TetrisCalls)
				}
				b.ReportMetric(repriced, "nests-repriced/op")
				b.ReportMetric(tet, "tetris-calls/op")
			})
		}
	}
}

// BenchmarkBaselineError (E10): the op-count model's factor over the
// reference, worst case across the Figure 7 set.
func BenchmarkBaselineError(b *testing.B) {
	b.ReportAllocs()
	target := POWER1()
	set := kernels.Figure7Set()
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, k := range set {
			rep, err := AnalyzeInnermostBlock(k.Src, target)
			if err != nil {
				b.Fatal(err)
			}
			worst = math.Max(worst, rep.BaselineFactor())
		}
	}
	b.ReportMetric(worst, "worst-factor")
}

// BenchmarkSensitivity (E11): ranking the unknowns of a three-loop
// program.
func BenchmarkSensitivity(b *testing.B) {
	b.ReportAllocs()
	src := `
subroutine p(n, k, m)
  integer i, j, n, k, m
  real a(128,128), b(4000), c(4000)
  do i = 1, n
    do j = 1, n
      a(i,j) = a(i,j) + 1.0
    end do
  end do
  do i = 1, k
    b(i) = b(i) * 2.0
  end do
  do i = 1, m
    c(i) = sqrt(c(i))
  end do
end
`
	pred, err := Predict(src, POWER1())
	if err != nil {
		b.Fatal(err)
	}
	nominal := map[string]float64{"n": 100, "k": 2000, "m": 200}
	b.ResetTimer()
	rankedN := 0.0
	for i := 0; i < b.N; i++ {
		sens, err := pred.Sensitivity(nominal, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		if sens[0].Name == "n" {
			rankedN = 1
		}
	}
	b.ReportMetric(rankedN, "top-is-n")
}

// BenchmarkPartitioning (E12): block-vs-cyclic communication estimate
// plus the symbolic comparison over P.
func BenchmarkPartitioning(b *testing.B) {
	b.ReportAllocs()
	k, err := kernels.Get("stencil_dist")
	if err != nil {
		b.Fatal(err)
	}
	p, tbl, err := k.Parse()
	if err != nil {
		b.Fatal(err)
	}
	loop := p.Body[0].(*source.DoLoop)
	assign := loop.Body[0].(*source.Assign)
	loops := []comm.Loop{{Var: loop.Var, Trips: symexpr.Const(62)}}
	model := comm.DefaultModel()
	for i := 0; i < b.N; i++ {
		cost, err := comm.EstimateAssign(tbl, assign, loops)
		if err != nil {
			b.Fatal(err)
		}
		_ = model.Cycles(cost)
	}
}

// BenchmarkIncrementalUpdate (E13): prediction of transformation
// variants with a shared segment cache.
func BenchmarkIncrementalUpdate(b *testing.B) {
	b.ReportAllocs()
	k, err := kernels.Get("matmul")
	if err != nil {
		b.Fatal(err)
	}
	prog, _, err := k.Parse()
	if err != nil {
		b.Fatal(err)
	}
	opt := xform.SearchOptions{Machine: machine.NewPOWER1()}
	opt.UnrollFactors = []int{2, 4, 8}
	opt.TileSizes = []int{8, 16}
	variants := []*source.Program{prog}
	for _, mv := range xform.Moves(prog, opt) {
		if v, err := xform.Apply(prog, mv); err == nil {
			variants = append(variants, v)
		}
	}
	b.Run("shared-cache", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache := aggregate.NewSegCache()
			for _, v := range variants {
				if _, err := xform.Predict(v, opt, cache); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, v := range variants {
				if _, err := xform.Predict(v, opt, aggregate.NewSegCache()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPredictorEfficiency (E14): predictor throughput vs one
// dynamic simulation of the same kernel.
func BenchmarkPredictorEfficiency(b *testing.B) {
	b.ReportAllocs()
	k, err := kernels.Get("matmul44")
	if err != nil {
		b.Fatal(err)
	}
	target := POWER1()
	b.Run("predict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Predict(k.Src, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simulate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Simulate(k.Src, target, k.Args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipesimThroughput: raw reference-simulator speed on a
// scheduled block (supporting number for E14).
func BenchmarkPipesimThroughput(b *testing.B) {
	b.ReportAllocs()
	m := machine.NewPOWER1()
	blk := syntheticBlock(1024)
	sched := pipesim.Schedule(m, blk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipesim.Run(m, sched); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1024, "ns/instr")
}

// BenchmarkAblations (A1): the full model against its ablated variants
// on one representative kernel block.
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	k, err := kernels.Get("matmul44")
	if err != nil {
		b.Fatal(err)
	}
	m := machine.NewPOWER1()
	noPromo := lower.DefaultOptions()
	noPromo.ScalarReplace = false
	cases := []struct {
		name string
		lopt lower.Options
		topt tetris.Options
	}{
		{"full", lower.DefaultOptions(), tetris.Options{}},
		{"no-deps", lower.DefaultOptions(), tetris.Options{IgnoreDeps: true}},
		{"no-promotion", noPromo, tetris.Options{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var pred float64
			for i := 0; i < b.N; i++ {
				rep, err := AnalyzeInnermostBlockWithOptions(k.Src, m, c.lopt, c.topt)
				if err != nil {
					b.Fatal(err)
				}
				pred = float64(rep.Predicted)
			}
			b.ReportMetric(pred, "predicted-cycles")
		})
	}
}

// BenchmarkPredictBatch (E15): the concurrent batch-prediction
// pipeline over every built-in kernel, serial pool vs one worker per
// core, sharing the sharded segment cache. The parallel/serial ratio
// is the pipeline's speedup; on a single-core machine the two run the
// same code path.
func BenchmarkPredictBatch(b *testing.B) {
	b.ReportAllocs()
	target := POWER1()
	var srcs []string
	for _, k := range kernels.All() {
		srcs = append(srcs, k.Src)
	}
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := PredictBatch(srcs, target, BatchOptions{Workers: workers})
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}

// BenchmarkPolyMul: product of two multivariate performance
// expressions — the symbolic-arithmetic inner loop of aggregation,
// kept allocation-lean by monomial-key interning.
func BenchmarkPolyMul(b *testing.B) {
	b.ReportAllocs()
	n, m, p := symexpr.Var("n"), symexpr.Var("m"), symexpr.Var("p")
	a := symexpr.NewVar(n).Pow(2).Scale(3).Add(symexpr.NewVar(m).Mul(symexpr.NewVar(n))).AddConst(7)
	c := symexpr.NewVar(p).Scale(2.5).Add(symexpr.NewVar(m).Pow(3)).Add(symexpr.NewVar(n)).AddConst(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}
