package perfpredict

import (
	"context"
	"encoding/json"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/resultcache"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/xform"
)

// PredictOptions tune PredictCtx. The zero value reproduces Predict.
type PredictOptions struct {
	// Aggregate overrides the aggregation options; nil uses the
	// defaults (the same ones Predict uses).
	Aggregate *aggregate.Options
	// Cache is a warm shared segment cache; nil prices privately.
	// Costs never depend on cache state, so results are
	// byte-identical either way.
	Cache *SegmentCache
}

// PredictCtx is Predict under a context with service-grade knobs: the
// single-program form of PredictBatchCtx. ctx is checked before the
// (uninterruptible, milliseconds-scale) parse/analyze/aggregate
// pipeline runs.
func PredictCtx(ctx context.Context, src string, target *Target, opt PredictOptions) (*Prediction, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	aopt := aggregate.DefaultOptions()
	if opt.Aggregate != nil {
		aopt = *opt.Aggregate
	}
	return predictWithCache(src, target, aopt, opt.Cache)
}

// NestCache memoizes whole loop-nest pricings across transformation
// searches (the layer above SegmentCache). Safe for concurrent use;
// entries are keyed by structural fingerprint × machine content
// fingerprint, so one instance may serve every machine. See
// NewNestCache.
type NestCache = aggregate.NestCache

// NewNestCache creates an empty shared nest-level cost cache.
func NewNestCache() *NestCache { return aggregate.NewNestCache() }

// OptimizeOptions tune OptimizeCtx beyond the required arguments.
// The zero value reproduces Optimize exactly.
type OptimizeOptions struct {
	// Workers bounds the search's neighbor-expansion concurrency;
	// <= 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// SegCache and NestCache are warm shared caches the search prices
	// through; nil members get fresh private instances. Costs never
	// depend on cache state — sharing only changes how much pricing
	// work is recomputed — so results are byte-identical either way.
	SegCache  *SegmentCache
	NestCache *NestCache
	// MaxNodes and MaxDepth bound the search (0 keeps the xform
	// defaults of 40 states / depth 3).
	MaxNodes int
	MaxDepth int
	// Results, when non-nil, caches finished OptimizeResults by
	// content address (program structure × machine content × nominal
	// point × bounds). A hit skips the search entirely and returns
	// the cached result with the four cache counters zeroed — the
	// counters describe pricing work performed, and a hit performs
	// none. Only complete searches are cached; cancelled or failed
	// ones never are.
	Results ResultBackend
	// Progress, when non-nil, is called after every search-node
	// expansion with the nodes expanded so far and the incumbent
	// cost. It runs on the search goroutine; keep it fast. Cache hits
	// (Results) report no progress — no search runs.
	Progress func(explored int, best float64)
}

// OptimizeCtx is Optimize under a context with service-grade knobs:
// cancellation is checked at every search-node expansion, so a
// dropped caller stops the burn within one expansion. On cancellation
// the best fully priced variant found so far is returned alongside
// ctx.Err(); OptimizeResult is the zero value only when ctx expired
// before the initial pricing finished.
func OptimizeCtx(ctx context.Context, src string, target *Target, nominal map[string]float64, opt OptimizeOptions) (OptimizeResult, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return OptimizeResult{}, err
	}
	if _, err := sem.Analyze(prog); err != nil {
		return OptimizeResult{}, err
	}
	var rkey resultcache.Key
	if opt.Results != nil {
		rkey = resultcache.OptimizeKey(source.FingerprintProgram(prog), target.Fingerprint(),
			nominal, opt.MaxNodes, opt.MaxDepth)
		if b, ok := opt.Results.Get(rkey); ok {
			var out OptimizeResult
			if err := json.Unmarshal(b, &out); err == nil {
				return out, nil
			}
			// An undecodable entry (foreign writer, version skew) is
			// treated as a miss; the fresh result overwrites it below.
		}
	}
	nom := map[symexpr.Var]float64{}
	for k, v := range nominal {
		nom[symexpr.Var(k)] = v
	}
	res, serr := xform.SearchCtx(ctx, prog, xform.SearchOptions{
		Machine:  target,
		Nominal:  nom,
		Workers:  opt.Workers,
		MaxNodes: opt.MaxNodes,
		MaxDepth: opt.MaxDepth,
		Caches:   aggregate.Caches{Seg: opt.SegCache, Nest: opt.NestCache},
		Progress: opt.Progress,
	})
	if res.Best == nil {
		return OptimizeResult{}, serr
	}
	out := OptimizeResult{
		Source:          source.PrintProgram(res.Best),
		PredictedBefore: res.InitialCost,
		PredictedAfter:  res.BestCost,
		MemoryBefore:    res.InitialMemory,
		MemoryAfter:     res.BestMemory,
		Explored:        res.Explored,
		SegCacheHits:    res.CacheHits,
		SegCacheMisses:  res.CacheMisses,
		NestCacheHits:   res.NestHits,
		NestsRepriced:   res.NestMisses,
		Bottleneck:      res.Bottleneck,
		BottleneckUtil:  res.BottleneckUtil,
	}
	for _, mv := range res.Sequence {
		out.Transformations = append(out.Transformations, mv.String())
	}
	if opt.Results != nil && serr == nil {
		// Zero the counters before caching: they are a property of
		// this call's cache state, not of the (program, machine,
		// options) identity the key names.
		c := out
		c.SegCacheHits, c.SegCacheMisses = 0, 0
		c.NestCacheHits, c.NestsRepriced = 0, 0
		if b, err := json.Marshal(c); err == nil {
			opt.Results.Put(rkey, b)
		}
	}
	return out, serr
}
