package perfpredict

import (
	"context"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/xform"
)

// NestCache memoizes whole loop-nest pricings across transformation
// searches (the layer above SegmentCache). Safe for concurrent use;
// entries are keyed by structural fingerprint × machine content
// fingerprint, so one instance may serve every machine. See
// NewNestCache.
type NestCache = aggregate.NestCache

// NewNestCache creates an empty shared nest-level cost cache.
func NewNestCache() *NestCache { return aggregate.NewNestCache() }

// OptimizeOptions tune OptimizeCtx beyond the required arguments.
// The zero value reproduces Optimize exactly.
type OptimizeOptions struct {
	// Workers bounds the search's neighbor-expansion concurrency;
	// <= 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// SegCache and NestCache are warm shared caches the search prices
	// through; nil members get fresh private instances. Costs never
	// depend on cache state — sharing only changes how much pricing
	// work is recomputed — so results are byte-identical either way.
	SegCache  *SegmentCache
	NestCache *NestCache
	// MaxNodes and MaxDepth bound the search (0 keeps the xform
	// defaults of 40 states / depth 3).
	MaxNodes int
	MaxDepth int
}

// OptimizeCtx is Optimize under a context with service-grade knobs:
// cancellation is checked at every search-node expansion, so a
// dropped caller stops the burn within one expansion. On cancellation
// the best fully priced variant found so far is returned alongside
// ctx.Err(); OptimizeResult is the zero value only when ctx expired
// before the initial pricing finished.
func OptimizeCtx(ctx context.Context, src string, target *Target, nominal map[string]float64, opt OptimizeOptions) (OptimizeResult, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return OptimizeResult{}, err
	}
	if _, err := sem.Analyze(prog); err != nil {
		return OptimizeResult{}, err
	}
	nom := map[symexpr.Var]float64{}
	for k, v := range nominal {
		nom[symexpr.Var(k)] = v
	}
	res, serr := xform.SearchCtx(ctx, prog, xform.SearchOptions{
		Machine:  target,
		Nominal:  nom,
		Workers:  opt.Workers,
		MaxNodes: opt.MaxNodes,
		MaxDepth: opt.MaxDepth,
		Caches:   aggregate.Caches{Seg: opt.SegCache, Nest: opt.NestCache},
	})
	if res.Best == nil {
		return OptimizeResult{}, serr
	}
	out := OptimizeResult{
		Source:          source.PrintProgram(res.Best),
		PredictedBefore: res.InitialCost,
		PredictedAfter:  res.BestCost,
		Explored:        res.Explored,
		SegCacheHits:    res.CacheHits,
		SegCacheMisses:  res.CacheMisses,
		NestCacheHits:   res.NestHits,
		NestsRepriced:   res.NestMisses,
	}
	for _, mv := range res.Sequence {
		out.Transformations = append(out.Transformations, mv.String())
	}
	return out, serr
}
