// Command fuzzcheck runs the metamorphic differential-fuzzing harness
// (internal/invariants) over a deterministic seed range: generated
// machines price generated blocks against an exact oracle, generated
// specs round-trip and reject their broken mutations, and generated
// programs exercise the batch/cache/incremental equivalences. Every
// violation prints the seed that reproduces it, and any violation —
// including an approx/exact ratio above the pinned bound — makes the
// exit status nonzero, so CI can gate on a fixed corpus.
//
// Usage:
//
//	fuzzcheck [-n 1000] [-seed 1] [-maxops 20] [-budget 262144]
//	          [-json BENCH_fuzz.json] [-emit-corpus DIR] [-v]
//
// -json writes a machine-readable summary (corpus size, oracle-proven
// counts, max approx/exact ratio, violation counts by invariant).
// -emit-corpus regenerates testdata/corpus: F-lite programs and spec
// files for the same seeds the harness uses, plus golden predictions
// and golden explain digests (bottleneck, critical-path span, top
// utilizations) of every program on every builtin and corpus machine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	perfpredict "perfpredict"
	"perfpredict/internal/invariants"
	"perfpredict/internal/progen"
)

func main() {
	var (
		n      = flag.Int("n", 1000, "number of seeds to check")
		seed   = flag.Int64("seed", 1, "base seed (seeds run seed..seed+n-1)")
		maxOps = flag.Int("maxops", 0, "oracle block-size cap (0 = default)")
		budget = flag.Int("budget", 0, "oracle node budget per block (0 = default)")
		jsonTo = flag.String("json", "", "write a JSON summary to this file")
		emit   = flag.String("emit-corpus", "", "regenerate the corpus under this directory and exit")
		verb   = flag.Bool("v", false, "print per-invariant counts")
	)
	flag.Parse()

	if *emit != "" {
		if err := emitCorpus(*emit); err != nil {
			fmt.Fprintf(os.Stderr, "fuzzcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := invariants.Config{MaxOps: *maxOps, NodeBudget: *budget}
	s := invariants.Run(*n, *seed, cfg)

	byInvariant := map[string]int{}
	for _, v := range s.Violations {
		byInvariant[v.Invariant]++
		fmt.Fprintf(os.Stderr, "VIOLATION %s\n", v)
	}
	if s.MaxRatio > invariants.MaxApproxExactRatio {
		byInvariant["ratio-bound"]++
		fmt.Fprintf(os.Stderr, "VIOLATION ratio-bound: approx/exact %.4f exceeds pinned %.2f\n",
			s.MaxRatio, invariants.MaxApproxExactRatio)
	}

	fmt.Printf("fuzzcheck: %d seeds (base %d): %d violations; oracle proved %d blocks (%d truncated), max approx/exact %.4f (bound %.2f)\n",
		s.Samples, *seed, len(s.Violations), s.Proven, s.Truncated, s.MaxRatio, invariants.MaxApproxExactRatio)
	if *verb {
		names := make([]string, 0, len(byInvariant))
		for k := range byInvariant {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("  %-24s %d\n", k, byInvariant[k])
		}
	}

	if *jsonTo != "" {
		summary := map[string]any{
			"samples":                s.Samples,
			"base_seed":              *seed,
			"oracle_proven":          s.Proven,
			"oracle_truncated":       s.Truncated,
			"max_approx_exact_ratio": s.MaxRatio,
			"ratio_bound":            invariants.MaxApproxExactRatio,
			"violations_total":       len(s.Violations) + byInvariant["ratio-bound"],
			"violations":             byInvariant,
		}
		data, err := json.MarshalIndent(summary, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonTo, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzcheck: writing %s: %v\n", *jsonTo, err)
			os.Exit(1)
		}
	}

	if len(s.Violations) > 0 || s.MaxRatio > invariants.MaxApproxExactRatio {
		os.Exit(1)
	}
}

// corpus dimensions: program seeds 1..nPrograms, spec seeds
// 1..nSpecs. Goldens cover every program on every builtin plus every
// corpus machine.
const (
	nPrograms = 50
	nSpecs    = 5
)

func emitCorpus(dir string) error {
	progDir := filepath.Join(dir, "programs")
	specDir := filepath.Join(dir, "specs")
	for _, d := range []string{progDir, specDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}

	type targetEnt struct {
		name string
		t    *perfpredict.Target
	}
	var targets []targetEnt
	for _, name := range perfpredict.TargetNames() {
		t, err := perfpredict.LoadTarget(name)
		if err != nil {
			return fmt.Errorf("builtin %s: %w", name, err)
		}
		targets = append(targets, targetEnt{name, t})
	}
	for i := 1; i <= nSpecs; i++ {
		spec := progen.GenSpec(progen.NewRand(int64(i)), progen.SpecConfig{})
		data, err := spec.Encode()
		if err != nil {
			return err
		}
		path := filepath.Join(specDir, fmt.Sprintf("spec%02d.json", i))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		m, err := spec.Machine()
		if err != nil {
			return fmt.Errorf("corpus spec %d: %w", i, err)
		}
		targets = append(targets, targetEnt{fmt.Sprintf("spec%02d", i), m})
	}

	// golden[program][target] = symbolic cost expression;
	// goldenExplain[program][target] = explain summary digest.
	golden := map[string]map[string]string{}
	goldenExplain := map[string]map[string]string{}
	for i := 1; i <= nPrograms; i++ {
		src := progen.GenProgram(progen.NewRand(int64(i)),
			progen.ProgramConfig{AllowIf: true, AllowSubroutine: true})
		name := fmt.Sprintf("prog%03d.f", i)
		if err := os.WriteFile(filepath.Join(progDir, name), []byte(src), 0o644); err != nil {
			return err
		}
		row := map[string]string{}
		erow := map[string]string{}
		for _, tgt := range targets {
			p, err := perfpredict.Predict(src, tgt.t)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", name, tgt.name, err)
			}
			row[tgt.name] = p.Cost.String()
			rep, err := perfpredict.ExplainCtx(context.Background(), src, tgt.t,
				perfpredict.ExplainOptions{SkipWhatIf: true})
			if err != nil {
				return fmt.Errorf("%s on %s: explain: %w", name, tgt.name, err)
			}
			erow[tgt.name] = rep.Summary()
		}
		golden[name] = row
		goldenExplain[name] = erow
	}
	for file, table := range map[string]map[string]map[string]string{
		"golden.json":         golden,
		"golden_explain.json": goldenExplain,
	} {
		data, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, file), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("fuzzcheck: wrote %d programs, %d specs, and prediction+explain goldens for %d targets under %s\n",
		nPrograms, nSpecs, len(targets), dir)
	return nil
}
