// Command predictd is the prediction service: the perfpredict
// library behind an HTTP API, for deployments where per-invocation
// process startup would dominate the analysis itself.
//
//	predictd [-addr :8791] [-max-inflight 64] [-timeout 30s]
//	         [-max-body 1048576] [-workers 0] [-pprof]
//	         [-result-cache-bytes 67108864] [-no-result-cache]
//	         [-cache-snapshot path] [-max-jobs 2] [-job-timeout 5m]
//	         [-max-cells 4096]
//
// Endpoints (all POST, JSON in/out; see README "Serving"):
//
//	/v1/predict          price one program, optionally evaluate at a point
//	/v1/batch            price many programs on one warm shared cache
//	/v1/optimize         search transformations for a faster variant
//	/v1/optimize?async=1 submit the search as a job, 202 + job id
//	/v1/explore          sweep a machine-template lattice to a Pareto front
//	/v1/explore?async=1  submit the sweep as a job, 202 + job id
//	/v1/jobs/{id}        GET: poll job state, progress, and result
//
// plus GET /metrics (Prometheus text), /healthz, /readyz, and — with
// -pprof — /debug/pprof/. Every API request runs under a deadline
// (-timeout) that is threaded as context cancellation into the batch
// workers and the transformation search, so a dropped client stops
// consuming CPU. Admission is bounded (-max-inflight); excess load is
// shed with 503 instead of queueing.
//
// A content-addressed result cache (-result-cache-bytes) fronts every
// endpoint with finished response bodies; -cache-snapshot names a file
// the cache is loaded from on boot (a corrupt or missing file just
// means a cold start) and written to on drain, so a restart keeps its
// warmth. SIGINT/SIGTERM drain gracefully: /readyz flips to 503 (with
// Retry-After), in-flight requests finish, running async jobs
// complete, then the snapshot is written and the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfpredict/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address")
	maxInflight := flag.Int("max-inflight", 64, "admitted-request bound; excess is shed with 503")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	workers := flag.Int("workers", 0, "per-request worker-pool cap for batch/optimize (0 = GOMAXPROCS)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
	cacheBytes := flag.Int64("result-cache-bytes", 0, "result-cache byte budget (0 = 64 MiB)")
	noCache := flag.Bool("no-result-cache", false, "disable the content-addressed result cache")
	snapshot := flag.String("cache-snapshot", "", "result-cache snapshot file: loaded on boot, written on drain")
	maxJobs := flag.Int("max-jobs", 2, "concurrently running async jobs (optimize searches, explore sweeps)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job deadline for async optimize/explore")
	maxCells := flag.Int("max-cells", 4096, "largest machine-template lattice /v1/explore accepts")
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxInflight:        *maxInflight,
		Timeout:            *timeout,
		MaxBodyBytes:       *maxBody,
		Workers:            *workers,
		EnablePprof:        *enablePprof,
		ResultCacheBytes:   *cacheBytes,
		DisableResultCache: *noCache,
		MaxJobs:            *maxJobs,
		JobTimeout:         *jobTimeout,
		MaxExploreCells:    *maxCells,
	})
	if *snapshot != "" && srv.Results() != nil {
		// A missing or corrupt snapshot only costs warmth: log and
		// boot cold, never fail.
		if err := srv.Results().LoadFile(*snapshot); err != nil {
			log.Printf("predictd: cache snapshot %s not loaded (starting cold): %v", *snapshot, err)
		} else {
			st := srv.Results().Stats()
			log.Printf("predictd: cache snapshot %s loaded: %d entries, %d bytes",
				*snapshot, st.Entries, st.Bytes)
		}
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("predictd: %v: draining (deadline %v)", s, *drainTimeout)
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("predictd: drain: %v", err)
		}
		// Let running async jobs land their results before the
		// snapshot is cut.
		if err := srv.DrainJobs(ctx); err != nil {
			log.Printf("predictd: job drain: %v", err)
		}
		if *snapshot != "" && srv.Results() != nil {
			if err := srv.Results().SaveFile(*snapshot); err != nil {
				log.Printf("predictd: cache snapshot %s not written: %v", *snapshot, err)
			} else {
				st := srv.Results().Stats()
				log.Printf("predictd: cache snapshot %s written: %d entries", *snapshot, st.Entries)
			}
		}
	}()

	log.Printf("predictd: listening on %s (max-inflight %d, timeout %v)", *addr, *maxInflight, *timeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("predictd: %v", err)
	}
	<-done
	log.Printf("predictd: drained, bye")
}
