// Command predictd is the prediction service: the perfpredict
// library behind an HTTP API, for deployments where per-invocation
// process startup would dominate the analysis itself.
//
//	predictd [-addr :8791] [-max-inflight 64] [-timeout 30s]
//	         [-max-body 1048576] [-workers 0] [-pprof]
//
// Endpoints (all POST, JSON in/out; see README "Serving"):
//
//	/v1/predict   price one program, optionally evaluate at a point
//	/v1/batch     price many programs on one warm shared cache
//	/v1/optimize  search transformations for a faster variant
//
// plus GET /metrics (Prometheus text), /healthz, /readyz, and — with
// -pprof — /debug/pprof/. Every API request runs under a deadline
// (-timeout) that is threaded as context cancellation into the batch
// workers and the transformation search, so a dropped client stops
// consuming CPU. Admission is bounded (-max-inflight); excess load is
// shed with 503 instead of queueing. SIGINT/SIGTERM drain gracefully:
// /readyz flips to 503, in-flight requests finish, then the listener
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfpredict/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address")
	maxInflight := flag.Int("max-inflight", 64, "admitted-request bound; excess is shed with 503")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	workers := flag.Int("workers", 0, "per-request worker-pool cap for batch/optimize (0 = GOMAXPROCS)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxInflight:  *maxInflight,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		Workers:      *workers,
		EnablePprof:  *enablePprof,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("predictd: %v: draining (deadline %v)", s, *drainTimeout)
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("predictd: drain: %v", err)
		}
	}()

	log.Printf("predictd: listening on %s (max-inflight %d, timeout %v)", *addr, *maxInflight, *timeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("predictd: %v", err)
	}
	<-done
	log.Printf("predictd: drained, bye")
}
