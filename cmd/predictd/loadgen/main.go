// Command loadgen is predictd's load generator: it spins the service
// handler stack in-process (no port juggling, no network noise),
// drives it with a mixed predict/batch/optimize workload at a
// concurrency deliberately above the admission capacity, and writes a
// BENCH_serve.json datapoint (RPS, p50/p99 latency, shed rate, and a
// cold/warm result-cache split) in the same shape scripts/bench.sh
// uses for the optimizer trajectory.
//
//	loadgen [-duration 2s] [-inflight 8] [-mult 2] [-out BENCH_serve.json]
//
// With -mult 2 (the default) the client concurrency is twice the
// admission bound, so the run also measures the service's
// load-shedding behavior at 2× capacity: shed requests come back as
// fast 503s and are reported separately from served latencies.
//
// The cache phase drives a fixed set of uniquely keyed requests twice
// against a fresh server: the first pass is all result-cache misses
// (full parse/analyze/price/search per request), the second pass is
// the identical requests served as cache hits. cold_rps/warm_rps and
// their p50s quantify what the content-addressed cache buys.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perfpredict/internal/kernels"
	"perfpredict/internal/serve"
)

func main() {
	duration := flag.Duration("duration", 2*time.Second, "how long to drive load")
	inflight := flag.Int("inflight", 8, "server admission bound (max in-flight)")
	mult := flag.Float64("mult", 2, "client concurrency as a multiple of the admission bound")
	out := flag.String("out", "BENCH_serve.json", "output JSON path")
	flag.Parse()

	srv := serve.New(serve.Config{MaxInflight: *inflight, Timeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := buildWorkload()
	concurrency := int(float64(*inflight) * *mult)
	if concurrency < 1 {
		concurrency = 1
	}

	var (
		mu        sync.Mutex
		latencies []float64 // seconds, served (2xx) requests only
		ok, shed  atomic.Int64
		errs      atomic.Int64
		next      atomic.Int64
	)
	// The default transport keeps only 2 idle conns per host; under 16
	// goroutines that means constant re-dialing, which throttles the
	// client below the server's admission bound and measures conn churn
	// instead of the service. Size the pool to the client concurrency.
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr = tr.Clone()
		tr.MaxIdleConns = concurrency * 2
		tr.MaxIdleConnsPerHost = concurrency * 2
		client = &http.Client{Transport: tr}
	}
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				r := reqs[int(next.Add(1))%len(reqs)]
				start := time.Now()
				resp, err := client.Post(ts.URL+r.path, "application/json", bytes.NewReader(r.body))
				if err != nil {
					errs.Add(1)
					continue
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
					mu.Lock()
					latencies = append(latencies, time.Since(start).Seconds())
					mu.Unlock()
				case resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	startAll := time.Now()
	wg.Wait()
	elapsed := time.Since(startAll).Seconds()

	burstShed, burstErrs := burstPhase(*inflight, concurrency)
	cold, warm, cacheErrs := cachePhase(*inflight)

	total := ok.Load() + shed.Load() + errs.Load()
	errs.Add(burstErrs + cacheErrs)
	report := map[string]any{
		"duration_s":      elapsed,
		"concurrency":     concurrency,
		"max_inflight":    *inflight,
		"requests":        total,
		"served":          ok.Load(),
		"shed":            shed.Load(),
		"errors":          errs.Load(),
		"shed_rate":       rate(shed.Load(), total),
		"rps":             float64(ok.Load()) / elapsed,
		"p50_ms":          percentile(latencies, 0.50) * 1000,
		"p99_ms":          percentile(latencies, 0.99) * 1000,
		"burst_sent":      concurrency,
		"burst_shed":      burstShed,
		"burst_shed_rate": rate(burstShed, int64(concurrency)),
		"cold_rps":        cold.rps,
		"cold_p50_ms":     cold.p50 * 1000,
		"warm_rps":        warm.rps,
		"warm_p50_ms":     warm.p50 * 1000,
		"warm_speedup":    warm.rps / cold.rps,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Printf("%s", data)
	fmt.Printf("wrote %s\n", *out)
	if errs.Load() > 0 {
		log.Fatalf("loadgen: %d unexpected non-200/503 responses", errs.Load())
	}
}

// burstPhase measures load shedding head-on: against a fresh server
// (cold caches, same admission bound) it releases `concurrency`
// expensive optimize requests at the same instant. The steady-state
// mixed workload rarely trips admission because warm-cache handlers
// finish in microseconds; the burst makes every handler slow (a
// cold bounded search takes tens of milliseconds), so arrivals beyond
// the bound are shed. Each request uses a distinct nominal n so no
// request rides another's cache fill. Note: on a single-core host the
// measured rate stays near zero — the CPU saturates upstream of the
// admission gate, so the scheduler never carries more goroutines past
// it than it can run (the deterministic shed path is pinned by
// TestMetricsShedExactCount instead). Returns the shed count and the
// count of unexpected responses.
func burstPhase(inflight, concurrency int) (shed, errCount int64) {
	srv := serve.New(serve.Config{MaxInflight: inflight, Timeout: 30 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	matmul, err := kernels.Get("matmul")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr = tr.Clone()
		tr.MaxIdleConnsPerHost = concurrency * 2
		client = &http.Client{Transport: tr}
	}
	var (
		shedN, errN atomic.Int64
		gate        = make(chan struct{})
		wg          sync.WaitGroup
	)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(serve.OptimizeRequest{
				Source:   matmul.Src,
				Nominal:  map[string]float64{"n": float64(30 + i)},
				MaxNodes: 16, MaxDepth: 3,
			})
			if err != nil {
				errN.Add(1)
				return
			}
			<-gate
			resp, err := client.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				errN.Add(1)
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusServiceUnavailable:
				shedN.Add(1)
			default:
				errN.Add(1)
			}
		}(i)
	}
	close(gate)
	wg.Wait()
	return shedN.Load(), errN.Load()
}

// phaseResult summarizes one pass of the cache phase.
type phaseResult struct {
	rps float64
	p50 float64 // seconds
}

// cachePhase measures the result cache head-on: a fixed set of
// uniquely keyed requests (distinct args per request, so nothing
// collides) is driven twice against a fresh server. Pass one is all
// misses — every request runs the full pipeline; pass two repeats the
// identical requests as pure cache hits. The per-pass RPS and p50
// bracket the cache's effect with the HTTP plumbing held constant.
func cachePhase(inflight int) (cold, warm phaseResult, errCount int64) {
	srv := serve.New(serve.Config{MaxInflight: inflight, Timeout: 30 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	reqs := buildCacheWorkload()
	concurrency := inflight
	if concurrency < 1 {
		concurrency = 1
	}
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr = tr.Clone()
		tr.MaxIdleConns = concurrency * 2
		tr.MaxIdleConnsPerHost = concurrency * 2
		client = &http.Client{Transport: tr}
	}
	var errN atomic.Int64
	pass := func() phaseResult {
		var (
			mu   sync.Mutex
			lats []float64
			next atomic.Int64
			wg   sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(reqs) {
						return
					}
					t0 := time.Now()
					resp, err := client.Post(ts.URL+reqs[i].path, "application/json", bytes.NewReader(reqs[i].body))
					if err != nil {
						errN.Add(1)
						continue
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errN.Add(1)
						continue
					}
					mu.Lock()
					lats = append(lats, time.Since(t0).Seconds())
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		return phaseResult{rps: float64(len(lats)) / elapsed, p50: percentile(lats, 0.50)}
	}
	cold = pass()
	warm = pass()
	return cold, warm, errN.Load()
}

// buildCacheWorkload prepares the uniquely keyed request set for the
// cache phase: per-kernel predicts at distinct evaluation points and
// bounded optimizes at distinct nominal points. Every request has its
// own cache key, so the first pass cannot ride an earlier fill.
func buildCacheWorkload() []workloadReq {
	must := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		return b
	}
	var reqs []workloadReq
	for i := 0; i < 1; i++ {
		for _, k := range kernels.All() {
			// Start from the kernel's known-good evaluation point and
			// add a salt key: EvalAt ignores surplus args, but any arg
			// difference is a distinct cache key — unique work per
			// request, guaranteed-valid evaluation.
			args := map[string]float64{"n": 100}
			if k.Args != nil {
				args = map[string]float64{}
				for name, v := range k.Args {
					args[name] = v
				}
			}
			args["salt"] = float64(i)
			reqs = append(reqs, workloadReq{"/v1/predict", must(serve.PredictRequest{
				Source: k.Src, Args: args,
			})})
		}
	}
	matmul, err := kernels.Get("matmul")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	// Optimize requests carry the cold pass's real compute weight: a
	// bounded search per distinct nominal point. They are what the
	// cache actually amortizes in a fleet (repeated identical searches
	// collapsing to lookups).
	for i := 0; i < 24; i++ {
		reqs = append(reqs, workloadReq{"/v1/optimize", must(serve.OptimizeRequest{
			Source: matmul.Src, Nominal: map[string]float64{"n": float64(200 + i)},
			MaxNodes: 32, MaxDepth: 3,
		})})
	}
	return reqs
}

// workloadReq is one canned request of the mixed workload.
type workloadReq struct {
	path string
	body []byte
}

// buildWorkload prepares the request mix: predicts on the paper's
// kernels, a batch of all Figure-7 kernels, and a small bounded
// optimize — roughly the per-endpoint cost spread a real client
// population would present.
func buildWorkload() []workloadReq {
	must := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		return b
	}
	var reqs []workloadReq
	var all []string
	for _, k := range kernels.All() {
		all = append(all, k.Src)
		args := k.Args
		if args == nil {
			args = map[string]float64{"n": 100}
		}
		reqs = append(reqs, workloadReq{"/v1/predict", must(serve.PredictRequest{
			Source: k.Src, Args: args,
		})})
	}
	reqs = append(reqs, workloadReq{"/v1/batch", must(serve.BatchRequest{Sources: all})})
	matmul, err := kernels.Get("matmul")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	reqs = append(reqs, workloadReq{"/v1/optimize", must(serve.OptimizeRequest{
		Source: matmul.Src, Nominal: map[string]float64{"n": 50}, MaxNodes: 4, MaxDepth: 2,
	})})
	return reqs
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(p * float64(len(xs)-1))
	return xs[i]
}

func rate(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}
