package main

import (
	"fmt"
	"math"

	"perfpredict"
	"perfpredict/internal/kernels"
	"perfpredict/internal/source"
	"perfpredict/internal/xform"
)

// innermostOf returns the deepest straight-line loop body.
func innermostOf(stmts []source.Stmt) ([]source.Stmt, []string, bool) {
	var bestBody []source.Stmt
	var bestVars []string
	bestDepth := -1
	straight := func(list []source.Stmt) bool {
		if len(list) == 0 {
			return false
		}
		for _, s := range list {
			switch s.(type) {
			case *source.Assign, *source.CallStmt, *source.ContinueStmt:
			default:
				return false
			}
		}
		return true
	}
	var walk func(list []source.Stmt, vars []string)
	walk = func(list []source.Stmt, vars []string) {
		for _, s := range list {
			if loop, ok := s.(*source.DoLoop); ok {
				inner := append(append([]string{}, vars...), loop.Var)
				if straight(loop.Body) {
					if len(inner) > bestDepth {
						bestDepth, bestBody, bestVars = len(inner), loop.Body, inner
					}
					continue
				}
				walk(loop.Body, inner)
			}
		}
	}
	walk(stmts, nil)
	return bestBody, bestVars, bestDepth >= 0
}

// expE4: for several kernels, predict the cost of unrolling the
// innermost loop by factors 1..8 and check the predictor picks the
// same winner the simulator does.
func expE4() error {
	target := perfpredict.POWER1()
	factors := []int{1, 2, 4, 8}
	var rows [][]string
	agree := 0
	total := 0
	for _, name := range []string{"f2", "f3", "f6", "jacobi"} {
		k, err := kernels.Get(name)
		if err != nil {
			return err
		}
		prog, _, err := k.Parse()
		if err != nil {
			return err
		}
		var path xform.Path
		for _, site := range xform.FindLoops(prog) {
			if site.Innermost {
				path = site.Path
				break
			}
		}
		bestPredF, bestSimF := 1, 1
		bestPred, bestSim := math.MaxFloat64, int64(math.MaxInt64)
		cells := []string{name}
		for _, f := range factors {
			variant := prog
			if f > 1 {
				variant, err = xform.Unroll(prog, path, f)
				if err != nil {
					return err
				}
			}
			src := source.PrintProgram(variant)
			pred, err := perfpredict.Predict(src, target)
			if err != nil {
				return err
			}
			pv, err := pred.EvalAt(k.Args)
			if err != nil {
				return err
			}
			sim, err := perfpredict.Simulate(src, target, k.Args)
			if err != nil {
				return err
			}
			if pv < bestPred {
				bestPred, bestPredF = pv, f
			}
			if sim < bestSim {
				bestSim, bestSimF = sim, f
			}
			cells = append(cells, fmt.Sprintf("%.0f/%d", pv, sim))
		}
		match := "✓"
		// Accept near-ties: the predicted winner is fine when its
		// simulated cost is within 5% of the simulated best.
		if bestPredF != bestSimF {
			variant := prog
			if bestPredF > 1 {
				variant, _ = xform.Unroll(prog, path, bestPredF)
			}
			simAtPred, _ := perfpredict.Simulate(source.PrintProgram(variant), target, k.Args)
			if float64(simAtPred) > 1.05*float64(bestSim) {
				match = "✗"
			} else {
				match = "≈"
			}
		}
		if match != "✗" {
			agree++
		}
		total++
		cells = append(cells, fmt.Sprintf("u%d", bestPredF), fmt.Sprintf("u%d", bestSimF), match)
		rows = append(rows, cells)
	}
	header := []string{"kernel"}
	for _, f := range factors {
		header = append(header, fmt.Sprintf("u%d pred/sim", f))
	}
	header = append(header, "pred best", "sim best", "agree")
	table(header, rows)
	fmt.Printf("\npredictor picked a (near-)optimal unroll factor for %d/%d kernels\n", agree, total)
	return nil
}

// expE5: symbolic comparison of a quadratic nest against a heavy linear
// loop — sign regions, the crossover, and validation by simulation
// (Figure 10's cubic-regions machinery in action).
func expE5() error {
	quad := `
subroutine p(n)
  integer i, j, n
  real a(64,64)
  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0
    end do
  end do
end
`
	linear := `
subroutine q(n)
  integer i, n
  real b(4096)
  do i = 1, n
    b(i) = b(i) * 2.0 + 1.0
    b(i) = b(i) * 3.0 + 2.0
    b(i) = sqrt(b(i))
  end do
end
`
	target := perfpredict.POWER1()
	p1, err := perfpredict.Predict(quad, target)
	if err != nil {
		return err
	}
	p2, err := perfpredict.Predict(linear, target)
	if err != nil {
		return err
	}
	fmt.Printf("C(quad)   = %s\n", p1.Cost)
	fmt.Printf("C(linear) = %s\n", p2.Cost)
	cmp, err := perfpredict.Compare(p1, p2, map[string]perfpredict.Bound{"n": {Lo: 1, Hi: 64}})
	if err != nil {
		return err
	}
	fmt.Printf("difference = %s\n", cmp.Difference)
	fmt.Printf("verdict: %s; crossover(s): %.1f; quad cheaper on %.0f%% of [1,64]\n",
		cmp.Verdict, cmp.Crossovers, 100*cmp.FirstShare)
	// Simulated crossover.
	actual := -1.0
	for n := 1.0; n <= 64; n++ {
		sq, err := perfpredict.Simulate(quad, target, map[string]float64{"n": n})
		if err != nil {
			return err
		}
		sl, err := perfpredict.Simulate(linear, target, map[string]float64{"n": n})
		if err != nil {
			return err
		}
		if sq > sl {
			actual = n
			break
		}
	}
	fmt.Printf("simulated crossover: n = %.0f\n", actual)
	var rows [][]string
	for _, n := range []float64{4, 8, 16, 32, 64} {
		pv1, _ := p1.EvalAt(map[string]float64{"n": n})
		pv2, _ := p2.EvalAt(map[string]float64{"n": n})
		s1, _ := perfpredict.Simulate(quad, target, map[string]float64{"n": n})
		s2, _ := perfpredict.Simulate(linear, target, map[string]float64{"n": n})
		predWin, simWin := "quad", "quad"
		if pv2 < pv1 {
			predWin = "linear"
		}
		if s2 < s1 {
			simWin = "linear"
		}
		mark := "✓"
		if predWin != simWin {
			mark = "✗"
		}
		rows = append(rows, []string{fmt.Sprint(n),
			fmt.Sprintf("%.0f", pv1), fmt.Sprintf("%.0f", pv2), predWin,
			fmt.Sprint(s1), fmt.Sprint(s2), simWin, mark})
	}
	table([]string{"n", "pred quad", "pred linear", "pred winner", "sim quad", "sim linear", "sim winner", "agree"}, rows)
	return nil
}

// expE6: the §3.3.2 worked example — C(L) = k·C(Bt) + (n−k)·C(Bf) —
// swept over k and validated against simulation.
func expE6() error {
	k, err := kernels.Get("condsplit")
	if err != nil {
		return err
	}
	target := perfpredict.POWER1()
	pred, err := perfpredict.Predict(k.Src, target)
	if err != nil {
		return err
	}
	fmt.Printf("performance expression: %s\n\n", pred.Cost)
	var rows [][]string
	var sumErr float64
	n := 2000.0
	ks := []float64{100, 500, 1000, 1500, 1900}
	for _, kv := range ks {
		pv, err := pred.EvalAt(map[string]float64{"n": n, "k": kv})
		if err != nil {
			return err
		}
		sim, err := perfpredict.Simulate(k.Src, target, map[string]float64{"n": n, "k": kv})
		if err != nil {
			return err
		}
		e := 100 * (pv - float64(sim)) / float64(sim)
		sumErr += math.Abs(e)
		rows = append(rows, []string{fmt.Sprint(kv), fmt.Sprintf("%.0f", pv), fmt.Sprint(sim), fmt.Sprintf("%+.1f%%", e)})
	}
	table([]string{"k (n=2000)", "predicted", "simulated", "error"}, rows)
	fmt.Printf("\nmean |error| = %.1f%%; the expression is exact in k (no probability guess)\n", sumErr/float64(len(ks)))
	return nil
}

// expE8: whole-program aggregated prediction vs interpreter-driven
// dynamic simulation, for every kernel.
func expE8() error {
	target := perfpredict.POWER1()
	var rows [][]string
	var sumRatio float64
	count := 0
	for _, k := range kernels.All() {
		if k.Name == "stencil_dist" {
			continue // communication demo, not a timing kernel
		}
		pred, err := perfpredict.Predict(k.Src, target)
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		pv, err := pred.EvalAt(k.Args)
		if err != nil {
			return fmt.Errorf("%s eval: %w", k.Name, err)
		}
		sim, err := perfpredict.Simulate(k.Src, target, k.Args)
		if err != nil {
			return fmt.Errorf("%s sim: %w", k.Name, err)
		}
		ratio := pv / float64(sim)
		sumRatio += ratio
		count++
		rows = append(rows, []string{k.Name, fmt.Sprintf("%.0f", pv), fmt.Sprint(sim), fmt.Sprintf("%.2f", ratio)})
	}
	table([]string{"kernel", "predicted", "simulated", "pred/sim"}, rows)
	fmt.Printf("\nmean pred/sim ratio = %.2f over %d programs\n", sumRatio/float64(count), count)
	return nil
}

// expE15: portability — the same source predicted and validated on
// three architecture descriptions ("adding a new architecture to the
// cost model is a matter of defining the atomic operation mapping and
// the atomic operation cost table", §2.2.1).
func expE15() error {
	targets := []*perfpredict.Target{
		perfpredict.Scalar1(),
		perfpredict.POWER1(),
		perfpredict.SuperScalar2(),
	}
	var rows [][]string
	for _, name := range []string{"f2", "matmul44", "jacobi"} {
		k, err := kernels.Get(name)
		if err != nil {
			return err
		}
		cells := []string{name}
		var cycles []float64
		for _, target := range targets {
			pred, err := perfpredict.Predict(k.Src, target)
			if err != nil {
				return err
			}
			pv, err := pred.EvalAt(k.Args)
			if err != nil {
				return err
			}
			sim, err := perfpredict.Simulate(k.Src, target, k.Args)
			if err != nil {
				return err
			}
			cycles = append(cycles, pv)
			cells = append(cells, fmt.Sprintf("%.0f/%d", pv, sim))
		}
		ok := "✓"
		if !(cycles[0] > cycles[1] && cycles[1] >= cycles[2]) {
			ok = "✗"
		}
		cells = append(cells, ok)
		rows = append(rows, cells)
	}
	table([]string{"kernel", "Scalar1 pred/sim", "POWER1 pred/sim", "SuperScalar2 pred/sim", "ordering"}, rows)
	fmt.Println("\nwider machines predict (and simulate) faster; only the cost tables differ")
	return nil
}
