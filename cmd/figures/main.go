// Command figures regenerates every experiment of the reproduction —
// the paper's Figure 7 plus the framework claims exercised as tables
// E1–E14 (see DESIGN.md for the index). Output is the markdown recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	figures            # run everything
//	figures -exp E1    # one experiment
//	figures -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	ID    string
	Title string
	Run   func() error
}

var experiments = []experiment{
	{"E1", "Figure 7: straight-line block prediction vs reference vs op-count baseline", expE1},
	{"E2", "Figure 9: cost-block shape concatenation vs full re-placement", expE2},
	{"E3", "Linear-time placement: scaling and focus-span ablation", expE3},
	{"E4", "Unroll-factor selection by prediction vs simulation", expE4},
	{"E5", "Figure 10 / §3.1: symbolic comparison and crossover prediction", expE5},
	{"E6", "§3.3.2: loop-index conditional split accuracy", expE6},
	{"E7", "§2.3: cache-line counting vs cache simulation", expE7},
	{"E8", "Whole-program aggregated prediction vs dynamic simulation", expE8},
	{"E9", "§3.2: best-first transformation search", expE9},
	{"E10", "§1.2: conventional op-count model error", expE10},
	{"E11", "§3.4: sensitivity analysis ranks run-time test candidates", expE11},
	{"E12", "Communication model: block vs cyclic distribution choice", expE12},
	{"E13", "§3.3.1: incremental prediction update (segment cache)", expE13},
	{"E14", "Efficiency: predictor vs simulator throughput", expE14},
	{"E15", "Portability: one source, three architecture descriptions", expE15},
	{"E16", "§2.3 integrated: in-core vs memory cost components end to end", expE16},
	{"A1", "Ablations: what each model ingredient contributes", expA1},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E16, A1) or 'all'")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	want := strings.ToUpper(*exp)
	ran := 0
	for _, e := range experiments {
		if want != "ALL" && e.ID != want {
			continue
		}
		fmt.Printf("\n## %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

// table prints rows with aligned columns in markdown.
func table(header []string, rows [][]string) {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		fmt.Println("| " + strings.Join(parts, " | ") + " |")
	}
	line(header)
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = strings.Repeat("-", width[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
