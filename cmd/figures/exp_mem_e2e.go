package main

import (
	"fmt"

	"perfpredict"
	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
)

// expE16: the §2.3 memory cost integrated end-to-end — the same
// kernels priced on POWER1 without a hierarchy, with the documented
// POWER1 hierarchy, and with a halved line size. The split shows which
// kernels are memory-bound, and the line-size what-if moves exactly
// the memory component.
func expE16() error {
	withMemory := func(line int64) (*perfpredict.Target, error) {
		m := machine.ReferencePOWER1()
		m.Memory = machine.POWER1Memory()
		m.Memory.Levels[0].LineBytes = line
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return m, nil
	}
	mem, err := withMemory(128)
	if err != nil {
		return err
	}
	halfLine, err := withMemory(64)
	if err != nil {
		return err
	}

	var rows [][]string
	for _, name := range []string{"daxpy", "matmul", "jacobi"} {
		k, err := kernels.Get(name)
		if err != nil {
			return err
		}
		args := map[string]float64{"n": 256}
		price := func(t *perfpredict.Target) (total, memPart float64, err error) {
			p, err := perfpredict.Predict(k.Src, t)
			if err != nil {
				return 0, 0, err
			}
			total, err = p.EvalAt(args)
			if err != nil {
				return 0, 0, err
			}
			memPart, err = p.EvalMemoryAt(args)
			return total, memPart, err
		}
		t0, m0, err := price(mem)
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		t1, m1, err := price(halfLine)
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f", t0-m0),
			fmt.Sprintf("%.0f", m0),
			fmt.Sprintf("%.0f%%", 100*m0/t0),
			fmt.Sprintf("%.0f", m1),
			fmt.Sprintf("%.2fx", m1/m0),
		})
		if t1-m1 != t0-m0 {
			return fmt.Errorf("%s: in-core component moved with the line size (%.0f -> %.0f)",
				name, t0-m0, t1-m1)
		}
	}
	table([]string{"kernel (n=256)", "in-core", "memory (128B lines)", "mem share", "memory (64B lines)", "mem ratio"}, rows)
	fmt.Println("\nhalving the line size doubles streaming miss terms and leaves the in-core component untouched")
	return nil
}
