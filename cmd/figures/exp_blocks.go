package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"perfpredict"
	"perfpredict/internal/ir"
	"perfpredict/internal/kernels"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/pipesim"
	"perfpredict/internal/tetris"
)

// expE1 reproduces Figure 7: innermost-block predicted cycles against
// the reference pipeline and the op-count baseline, for F1–F7, the
// 4×4-unrolled matmul, Jacobi and red-black.
func expE1() error {
	target := perfpredict.POWER1()
	var rows [][]string
	var sumAbsErr, maxAbsErr float64
	n := 0
	for _, k := range kernels.Figure7Set() {
		rep, err := perfpredict.AnalyzeInnermostBlock(k.Src, target)
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		e := rep.ErrorPct()
		sumAbsErr += math.Abs(e)
		maxAbsErr = math.Max(maxAbsErr, math.Abs(e))
		n++
		rows = append(rows, []string{
			k.Name,
			fmt.Sprint(rep.Instructions),
			fmt.Sprint(rep.Predicted),
			fmt.Sprint(rep.Reference),
			fmt.Sprintf("%+.1f%%", e),
			fmt.Sprint(rep.Baseline),
			fmt.Sprintf("%.1fx", rep.BaselineFactor()),
			fmt.Sprintf("%s %.0f%%", rep.CriticalUnit, 100*rep.Utilization),
		})
	}
	table([]string{"kernel", "ops", "predicted", "reference", "error", "op-count", "baseline off", "critical unit"}, rows)
	fmt.Printf("\nmean |error| = %.1f%%, max |error| = %.1f%% over %d blocks\n", sumAbsErr/float64(n), maxAbsErr, n)
	return nil
}

// expE2 validates shape-based block concatenation (Figure 9): the cheap
// Concat estimate against re-running placement on the concatenated
// blocks, across all kernel-block pairs.
func expE2() error {
	m := machine.NewPOWER1()
	type blk struct {
		name  string
		block *ir.Block
		shape tetris.CostBlock
	}
	var blocks []blk
	for _, k := range kernels.Figure7Set() {
		p, tbl, err := k.Parse()
		if err != nil {
			return err
		}
		body, vars, ok := innermostOf(p.Body)
		if !ok {
			continue
		}
		tr := lower.New(tbl, m, lower.DefaultOptions())
		lw, err := tr.Body(body, vars)
		if err != nil {
			return err
		}
		res, err := tetris.Estimate(m, lw.Body, tetris.Options{})
		if err != nil {
			return err
		}
		blocks = append(blocks, blk{k.Name, lw.Body, res.Shape})
	}
	var rows [][]string
	var sumErr float64
	count := 0
	for i, a := range blocks {
		for j, b := range blocks {
			if j < i {
				continue
			}
			combined, saved := tetris.Concat(a.shape, b.shape)
			// Exact: concatenate instruction streams (renamed apart)
			// and re-place.
			merged := a.block.Clone()
			off := merged.MaxReg() + 1
			for _, in := range b.block.Instrs {
				c := in
				c.Srcs = append([]ir.Reg(nil), in.Srcs...)
				for k2, s := range c.Srcs {
					if s != ir.NoReg {
						c.Srcs[k2] = s + off
					}
				}
				if c.Dst != ir.NoReg {
					c.Dst += off
				}
				if c.Addr != "" {
					c.Addr += "'"
				}
				merged.Instrs = append(merged.Instrs, c)
			}
			exact, err := tetris.Estimate(m, merged, tetris.Options{})
			if err != nil {
				return err
			}
			errPct := 100 * (float64(combined.Height) - float64(exact.Cost)) / float64(exact.Cost)
			sumErr += math.Abs(errPct)
			count++
			if i == j || count <= 12 { // print self-pairs and a sample
				rows = append(rows, []string{
					a.name + "+" + b.name,
					fmt.Sprint(a.shape.Height), fmt.Sprint(b.shape.Height),
					fmt.Sprint(combined.Height), fmt.Sprint(saved),
					fmt.Sprint(exact.Cost), fmt.Sprintf("%+.0f%%", errPct),
				})
			}
		}
	}
	table([]string{"pair", "A", "B", "concat est", "saved", "re-placed", "shape err"}, rows)
	fmt.Printf("\nmean |shape error| over %d pairs = %.1f%%\n", count, sumErr/float64(count))
	return nil
}

// expE3 demonstrates the linear-time placement claim and the
// focus-span accuracy/speed trade.
func expE3() error {
	m := machine.NewPOWER1()
	rng := rand.New(rand.NewSource(7))
	mkBlock := func(n int) *ir.Block {
		b := &ir.Block{}
		for i := 0; i < n; i++ {
			ops := []ir.Op{ir.OpFAdd, ir.OpFMul, ir.OpFMA, ir.OpFLoad, ir.OpFStore, ir.OpIAdd}
			op := ops[rng.Intn(len(ops))]
			in := ir.Instr{Op: op, Dst: ir.Reg(i)}
			switch {
			case op.IsLoad():
				in.Addr, in.Base = fmt.Sprintf("x(%d)", i), "x"
			case op.IsStore():
				in.Dst = ir.NoReg
				in.Srcs = []ir.Reg{src(rng, i)}
				in.Addr, in.Base = fmt.Sprintf("y(%d)", i), "y"
			case op == ir.OpFMA:
				in.Srcs = []ir.Reg{src(rng, i), src(rng, i), src(rng, i)}
			default:
				in.Srcs = []ir.Reg{src(rng, i), src(rng, i)}
			}
			b.Append(in)
		}
		return b
	}
	perOp := func(b *ir.Block, opt tetris.Options) float64 {
		start := time.Now()
		reps := 0
		for time.Since(start) < 30*time.Millisecond {
			if _, err := tetris.Estimate(m, b, opt); err != nil {
				panic(err)
			}
			reps++
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps) / float64(len(b.Instrs))
	}
	var rows [][]string
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		b := mkBlock(n)
		full := perOp(b, tetris.Options{})
		span := perOp(b, tetris.Options{FocusSpan: 64})
		rows = append(rows, []string{fmt.Sprint(n),
			fmt.Sprintf("%.0f ns", full), fmt.Sprintf("%.0f ns", span)})
	}
	table([]string{"block ops", "per op (unlimited span)", "per op (focus span 64)"}, rows)

	fmt.Println("\nfocus-span sweep (4096-op random block):")
	b := mkBlock(4096)
	full, err := tetris.Estimate(m, b, tetris.Options{})
	if err != nil {
		return err
	}
	var rows2 [][]string
	for _, span := range []int{0, 256, 64, 16, 4} {
		start := time.Now()
		res, err := tetris.Estimate(m, b, tetris.Options{FocusSpan: span})
		if err != nil {
			return err
		}
		el := time.Since(start)
		name := fmt.Sprint(span)
		if span == 0 {
			name = "unlimited"
		}
		rows2 = append(rows2, []string{name, fmt.Sprint(res.Cost),
			fmt.Sprintf("%+.1f%%", 100*(float64(res.Cost)-float64(full.Cost))/float64(full.Cost)),
			el.Round(time.Microsecond).String()})
	}
	table([]string{"focus span", "cost", "vs unlimited", "time"}, rows2)
	return nil
}

func src(rng *rand.Rand, i int) ir.Reg {
	if i > 0 && rng.Intn(2) == 0 {
		return ir.Reg(rng.Intn(i))
	}
	return ir.Reg(100000 + rng.Intn(64))
}

// expE10 quantifies how far off the conventional operation-count model
// is (§1.2: "a conventional cost estimation model may be off by a
// factor of ten or more").
func expE10() error {
	target := perfpredict.POWER1()
	var rows [][]string
	worst := 0.0
	for _, k := range kernels.Figure7Set() {
		rep, err := perfpredict.AnalyzeInnermostBlock(k.Src, target)
		if err != nil {
			return err
		}
		f := rep.BaselineFactor()
		worst = math.Max(worst, f)
		tf := float64(rep.Predicted) / float64(rep.Reference)
		rows = append(rows, []string{k.Name,
			fmt.Sprintf("%.2fx", tf),
			fmt.Sprintf("%.2fx", f)})
	}
	// A deep dependent FP chain with divides shows the extreme case.
	chain := &ir.Block{}
	chain.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a", Base: "a"})
	for i := 1; i <= 12; i++ {
		chain.Append(ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(2 * i), Srcs: []ir.Reg{ir.Reg(2 * (i - 1)), 1000}})
		chain.Append(ir.Instr{Op: ir.OpIAdd, Dst: ir.Reg(2*i + 1), Srcs: []ir.Reg{2000, 2001}})
	}
	m := machine.NewPOWER1()
	sched, err := pipesim.RunScheduled(m, chain)
	if err != nil {
		return err
	}
	baseline := int64(0)
	for _, in := range chain.Instrs {
		baseline += int64(m.Latency(in.Op))
	}
	rows = append(rows, []string{"int+fp mix (synthetic)",
		"-", fmt.Sprintf("%.2fx", float64(baseline)/float64(sched.Cycles))})
	table([]string{"kernel", "tetris/reference", "op-count/reference"}, rows)
	fmt.Printf("\nworst kernel baseline factor: %.1fx (overlap ignored)\n", worst)
	return nil
}

// expE14 measures predictor throughput against simulator throughput —
// the efficiency requirement that makes "repeated calls practical
// during the program optimization process".
func expE14() error {
	target := perfpredict.POWER1()
	var rows [][]string
	for _, name := range []string{"f2", "matmul44", "jacobi"} {
		k, err := kernels.Get(name)
		if err != nil {
			return err
		}
		// Predictor time (full parse+analyze+aggregate).
		start := time.Now()
		reps := 0
		for time.Since(start) < 50*time.Millisecond {
			if _, err := perfpredict.Predict(k.Src, target); err != nil {
				return err
			}
			reps++
		}
		predT := time.Since(start) / time.Duration(reps)
		// Simulator time (one dynamic run).
		start = time.Now()
		if _, err := perfpredict.Simulate(k.Src, target, k.Args); err != nil {
			return err
		}
		simT := time.Since(start)
		rows = append(rows, []string{name,
			predT.Round(time.Microsecond).String(),
			simT.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0fx", float64(simT)/float64(predT))})
	}
	table([]string{"kernel", "predict", "simulate", "speedup"}, rows)
	return nil
}
