package main

import (
	"fmt"

	"perfpredict/internal/cachemodel"
	"perfpredict/internal/cachesim"
	"perfpredict/internal/comm"
	"perfpredict/internal/interp"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// expE7: cache-line counting (Ferrante–Sarkar–Thrash) against the
// set-associative cache simulator, for matmul across sizes and two
// loop orders of a copy kernel.
func expE7() error {
	matmulAt := func(n int) string {
		return fmt.Sprintf(`
program matmul
  integer i, j, k, n
  parameter (n = %d)
  real a(%d,%d), b(%d,%d), c(%d,%d)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`, n, n, n, n, n, n, n)
	}
	cfg := cachemodel.DefaultConfig()
	cfg.TLBPageBytes = 0
	simCfg := cachesim.Config{Size: cfg.SizeBytes, LineSize: cfg.LineBytes, Assoc: 0}
	var rows [][]string
	for _, n := range []int{32, 64, 96, 128} {
		src := matmulAt(n)
		model, err := modelMisses(src, cfg, []cachemodel.Loop{
			{Var: "i", Trips: int64(n)}, {Var: "j", Trips: int64(n)}, {Var: "k", Trips: int64(n)},
		})
		if err != nil {
			return err
		}
		sim, err := simulateMisses(src, simCfg, nil)
		if err != nil {
			return err
		}
		rows = append(rows, []string{fmt.Sprintf("matmul n=%d", n),
			fmt.Sprint(model), fmt.Sprint(sim), fmt.Sprintf("%.2f", float64(model)/float64(sim))})
	}
	// Loop-order experiment with a small cache.
	small := cfg
	small.SizeBytes = 8 << 10
	simSmall := cachesim.Config{Size: small.SizeBytes, LineSize: small.LineBytes, Assoc: 0}
	good := `
program copy
  integer i, j, n
  parameter (n = 128)
  real a(128,128), b(128,128)
  do j = 1, n
    do i = 1, n
      a(i,j) = b(i,j)
    end do
  end do
end
`
	bad := `
program copy
  integer i, j, n
  parameter (n = 128)
  real a(128,128), b(128,128)
  do i = 1, n
    do j = 1, n
      a(i,j) = b(i,j)
    end do
  end do
end
`
	mg, err := modelMisses(good, small, []cachemodel.Loop{{Var: "j", Trips: 128}, {Var: "i", Trips: 128}})
	if err != nil {
		return err
	}
	sg, err := simulateMisses(good, simSmall, nil)
	if err != nil {
		return err
	}
	mb, err := modelMisses(bad, small, []cachemodel.Loop{{Var: "i", Trips: 128}, {Var: "j", Trips: 128}})
	if err != nil {
		return err
	}
	sb, err := simulateMisses(bad, simSmall, nil)
	if err != nil {
		return err
	}
	rows = append(rows,
		[]string{"copy stride-1 (8K cache)", fmt.Sprint(mg), fmt.Sprint(sg), fmt.Sprintf("%.2f", float64(mg)/float64(sg))},
		[]string{"copy stride-n (8K cache)", fmt.Sprint(mb), fmt.Sprint(sb), fmt.Sprintf("%.2f", float64(mb)/float64(sb))})
	table([]string{"workload", "model misses", "simulated misses", "ratio"}, rows)
	fmt.Println("\nthe model ranks blocked/stride-1 variants correctly and tracks capacity transitions")
	return nil
}

func modelMisses(src string, cfg cachemodel.Config, loops []cachemodel.Loop) (int64, error) {
	p, err := source.Parse(src)
	if err != nil {
		return 0, err
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		return 0, err
	}
	body := p.Body
	for len(body) == 1 {
		l, ok := body[0].(*source.DoLoop)
		if !ok {
			break
		}
		body = l.Body
	}
	est, err := cachemodel.EstimateNest(tbl, loops, body, cfg)
	if err != nil {
		return 0, err
	}
	return est.LineMisses, nil
}

func simulateMisses(src string, cfg cachesim.Config, args map[string]float64) (int64, error) {
	p, err := source.Parse(src)
	if err != nil {
		return 0, err
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		return 0, err
	}
	cache, err := cachesim.New(cfg)
	if err != nil {
		return 0, err
	}
	bases := map[string]int64{}
	next := int64(0)
	r := interp.New(p, tbl, interp.Options{
		MemTrace: func(base string, idx int64, write bool) {
			b, ok := bases[base]
			if !ok {
				b = next
				bases[base] = b
				next += (1 << 24) + 8*1013*cfg.LineSize
			}
			cache.Access(b + idx*8)
		},
	})
	for k, v := range args {
		r.SetScalar(k, v)
	}
	if err := r.Run(); err != nil {
		return 0, err
	}
	_, misses := cache.Stats()
	return misses, nil
}

// expE12: the communication model chooses between block and cyclic
// distributions; the exact enumerator referees.
func expE12() error {
	build := func(dist string, offset int) string {
		return fmt.Sprintf(`
program stencil
  integer i, n
  parameter (n = 64)
  real a(64), b(72)
!hpf$ distribute a(%s)
!hpf$ distribute b(%s)
  do i = 2, n - 1
    a(i) = b(i+%d) + 1.0
  end do
end
`, dist, dist, offset)
	}
	model := comm.DefaultModel()
	estimate := func(src string) (comm.Cost, *sem.Table, *source.Assign, []comm.ConcreteLoop, error) {
		p, err := source.Parse(src)
		if err != nil {
			return comm.Cost{}, nil, nil, nil, err
		}
		tbl, err := sem.Analyze(p)
		if err != nil {
			return comm.Cost{}, nil, nil, nil, err
		}
		loop := p.Body[0].(*source.DoLoop)
		lb, _ := tbl.IntConst(loop.Lb)
		ub, _ := tbl.IntConst(loop.Ub)
		loops := []comm.ConcreteLoop{{Var: loop.Var, Lb: lb, Ub: ub, Step: 1}}
		a := loop.Body[0].(*source.Assign)
		cost, err := comm.EstimateAssign(tbl, a, []comm.Loop{{Var: "i", Trips: symexpr.Const(float64(ub - lb + 1))}})
		return cost, tbl, a, loops, err
	}
	var rows [][]string
	for _, tc := range []struct {
		offset int
	}{{1}, {4}} {
		for _, dist := range []string{"block", "cyclic"} {
			src := build(dist, tc.offset)
			cost, tbl, assign, loops, err := estimate(src)
			if err != nil {
				return err
			}
			cycles := model.Cycles(cost)
			cyclesAt4, _ := cycles.Eval(map[symexpr.Var]float64{comm.PVar: 4})
			// Cyclic refinement: offset multiple of P is local.
			if dist == "cyclic" && comm.CyclicLocalDelta(int64(tc.offset), 4) {
				cyclesAt4 = 0
			}
			msgs, elems, err := comm.EnumerateAssign(tbl, assign, loops, 4)
			if err != nil {
				return err
			}
			actual := model.Alpha*float64(msgs) + model.Beta*float64(elems)
			rows = append(rows, []string{
				fmt.Sprintf("b(i+%d) %s", tc.offset, dist),
				fmt.Sprintf("%.0f", cyclesAt4),
				fmt.Sprintf("%d msgs / %d elems → %.0f", msgs, elems, actual),
			})
		}
	}
	table([]string{"pattern (P=4)", "model cycles", "enumerated (ground truth)"}, rows)
	fmt.Println("\nchoice: offset 1 → block wins (boundary halo); offset P → cyclic wins (fully local)")
	return nil
}
