package main

import (
	"fmt"
	"strings"
	"time"

	"perfpredict"
	"perfpredict/internal/aggregate"
	"perfpredict/internal/kernels"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
	"perfpredict/internal/tetris"
	"perfpredict/internal/xform"
)

// expE9: best-first transformation search (§3.2) on representative
// programs, with the found sequence validated by simulation.
func expE9() error {
	target := perfpredict.POWER1()
	var rows [][]string
	for _, name := range []string{"f2", "f6", "matmul"} {
		k, err := kernels.Get(name)
		if err != nil {
			return err
		}
		prog, _, err := k.Parse()
		if err != nil {
			return err
		}
		res, err := xform.Search(prog, xform.SearchOptions{
			Machine:  machine.NewPOWER1(),
			MaxNodes: 25,
			MaxDepth: 2,
		})
		if err != nil {
			return err
		}
		seq := make([]string, 0, len(res.Sequence))
		for _, mv := range res.Sequence {
			seq = append(seq, mv.String())
		}
		simBefore, err := perfpredict.Simulate(k.Src, target, k.Args)
		if err != nil {
			return err
		}
		simAfter, err := perfpredict.Simulate(source.PrintProgram(res.Best), target, k.Args)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			name,
			strings.Join(seq, " "),
			fmt.Sprintf("%.0f→%.0f (%.2fx)", res.InitialCost, res.BestCost, res.InitialCost/res.BestCost),
			fmt.Sprintf("%d→%d (%.2fx)", simBefore, simAfter, float64(simBefore)/float64(simAfter)),
			fmt.Sprint(res.Explored),
		})
	}
	table([]string{"program", "sequence found", "predicted gain", "simulated gain", "states"}, rows)
	return nil
}

// expE11: sensitivity analysis ranks the variables worth a run-time
// test (§3.4) and the ranking is checked against the actual simulated
// variance per variable.
func expE11() error {
	src := `
subroutine p(n, k, m)
  integer i, j, n, k, m
  real a(128,128), b(4000), c(4000)
  do i = 1, n
    do j = 1, n
      a(i,j) = a(i,j) + 1.0
    end do
  end do
  do i = 1, k
    b(i) = b(i) * 2.0
  end do
  do i = 1, m
    c(i) = sqrt(c(i))
  end do
end
`
	target := perfpredict.POWER1()
	pred, err := perfpredict.Predict(src, target)
	if err != nil {
		return err
	}
	nominal := map[string]float64{"n": 100, "k": 2000, "m": 200}
	fmt.Printf("C = %s at %v\n\n", pred.Cost, nominal)
	sens, err := pred.Sensitivity(nominal, 0.10)
	if err != nil {
		return err
	}
	// Actual swing: simulate at ±10% per variable.
	simSwing := func(v string) float64 {
		up := map[string]float64{}
		down := map[string]float64{}
		for kk, vv := range nominal {
			up[kk], down[kk] = vv, vv
		}
		up[v] = nominal[v] * 1.10
		down[v] = nominal[v] * 0.90
		su, err1 := perfpredict.Simulate(src, target, up)
		sd, err2 := perfpredict.Simulate(src, target, down)
		if err1 != nil || err2 != nil {
			return -1
		}
		return float64(su - sd)
	}
	var rows [][]string
	for rank, s := range sens {
		rows = append(rows, []string{
			fmt.Sprint(rank + 1), s.Name,
			fmt.Sprintf("%.0f", s.Swing),
			fmt.Sprintf("%.0f", simSwing(s.Name)),
		})
	}
	table([]string{"rank", "variable", "predicted swing (±10%)", "simulated swing"}, rows)
	fmt.Println("\nrun-time tests would target the top-ranked variable(s)")
	return nil
}

// expE13: incremental update (§3.3.1) — re-predicting a set of program
// variants with one shared segment cache against cold per-variant
// prediction.
func expE13() error {
	k, err := kernels.Get("matmul")
	if err != nil {
		return err
	}
	prog, _, err := k.Parse()
	if err != nil {
		return err
	}
	opt := xform.SearchOptions{Machine: machine.NewPOWER1()}
	opt.UnrollFactors = []int{2, 4, 8}
	opt.TileSizes = []int{8, 16}

	// Build the variant set: the original plus every single-move
	// variant (the states a search pass would price).
	variants := []*source.Program{prog}
	for _, mv := range xform.Moves(prog, opt) {
		if v, err := xform.Apply(prog, mv); err == nil {
			variants = append(variants, v)
		}
	}

	runOnce := func(shared bool) (time.Duration, int, int) {
		var cache *aggregate.SegCache
		if shared {
			cache = aggregate.NewSegCache()
		}
		hits, misses := 0, 0
		start := time.Now()
		for _, v := range variants {
			c := cache
			if !shared {
				c = aggregate.NewSegCache()
			}
			if _, err := xform.Predict(v, opt, c); err != nil {
				panic(err)
			}
			if !shared {
				h, m := c.Stats()
				hits += h
				misses += m
			}
		}
		el := time.Since(start)
		if shared {
			hits, misses = cache.Stats()
		}
		return el, hits, misses
	}
	best := func(shared bool) (time.Duration, int, int) {
		bt, bh, bm := time.Duration(1<<62), 0, 0
		for i := 0; i < 7; i++ {
			t, h, m := runOnce(shared)
			if t < bt {
				bt, bh, bm = t, h, m
			}
		}
		return bt, bh, bm
	}
	coldT, _, coldMiss := best(false)
	warmT, warmHits, warmMiss := best(true)

	var rows [][]string
	rows = append(rows, []string{
		fmt.Sprintf("shared cache over %d variants", len(variants)),
		warmT.Round(time.Microsecond).String(),
		fmt.Sprintf("%d hits / %d misses", warmHits, warmMiss)})
	rows = append(rows, []string{
		"cold per-variant prediction",
		coldT.Round(time.Microsecond).String(),
		fmt.Sprintf("0 hits / %d misses", coldMiss)})
	table([]string{"mode", "time", "segment cache"}, rows)
	fmt.Printf("\nhit rate %.0f%%, speedup %.1fx: a transformation re-prices only its affected region\n",
		100*float64(warmHits)/float64(warmHits+warmMiss), float64(coldT)/float64(warmT))
	return nil
}

// expA1: ablations — what each ingredient of the cost model buys, on
// the Figure 7 block set.
func expA1() error {
	m := machine.NewPOWER1()
	type variant struct {
		name string
		lopt lower.Options
		topt tetris.Options
	}
	full := lower.DefaultOptions()
	noFMA := full
	noFMA.FuseFMA = false
	noCSE := full
	noCSE.CSE = false
	noPromo := full
	noPromo.ScalarReplace = false
	variants := []variant{
		{"full model", full, tetris.Options{}},
		{"no dependence filter", full, tetris.Options{IgnoreDeps: true}},
		{"focus span 4", full, tetris.Options{FocusSpan: 4}},
		{"no FMA fusion", noFMA, tetris.Options{}},
		{"no CSE", noCSE, tetris.Options{}},
		{"no register promotion", noPromo, tetris.Options{}},
	}
	var rows [][]string
	for _, v := range variants {
		var sumAbs float64
		n := 0
		for _, k := range kernels.Figure7Set() {
			rep, err := perfpredict.AnalyzeInnermostBlockWithOptions(k.Src, m, v.lopt, v.topt)
			if err != nil {
				return err
			}
			// Reference is always the full-model lowering on the
			// scheduled pipeline; the ablation changes the predictor.
			fullRep, err := perfpredict.AnalyzeInnermostBlock(k.Src, m)
			if err != nil {
				return err
			}
			e := 100 * (float64(rep.Predicted) - float64(fullRep.Reference)) / float64(fullRep.Reference)
			if e < 0 {
				e = -e
			}
			sumAbs += e
			n++
		}
		rows = append(rows, []string{v.name, fmt.Sprintf("%.1f%%", sumAbs/float64(n))})
	}
	table([]string{"model variant", "mean |error| vs full reference"}, rows)
	return nil
}
