// Command speccheck validates machine descriptions as data artifacts:
// every embedded builtin spec, plus any spec files given as arguments,
// must parse, pass strict validation, cover every basic operation the
// lowering layer can emit, and round-trip (parse → print → parse is
// the identity, and printing is canonical). CI runs it so a broken
// target description fails the build instead of a prediction.
//
// Usage:
//
//	speccheck [spec.json ...]
package main

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sort"

	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
)

func main() {
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "speccheck: "+format+"\n", args...)
		failed = true
	}

	embedded, err := machine.EmbeddedSpecs()
	if err != nil {
		fail("embedded specs: %v", err)
	}
	names := make([]string, 0, len(embedded))
	for name := range embedded {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := check(name, embedded[name]); err != nil {
			fail("%v", err)
		}
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
			continue
		}
		if err := check(path, data); err != nil {
			fail("%v", err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// check runs the full artifact gauntlet over one spec file.
func check(name string, data []byte) error {
	spec, err := machine.ParseSpec(data)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	m, err := spec.Machine()
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("%s: built machine: %w", name, err)
	}
	// The lowering contract: every op the translation module can emit
	// must be costed. Spec validation demands the full ir op set (a
	// superset), but checking the precise contract here keeps the two
	// layers honest if either ever loosens.
	for _, op := range lower.RequiredOps() {
		if _, ok := m.Table[op]; !ok {
			return fmt.Errorf("%s: missing lowering-required op %s", name, op)
		}
	}
	// Round-trip: the canonical encoding re-parses to the same spec and
	// re-encodes byte-identically.
	enc, err := spec.Encode()
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	spec2, err := machine.ParseSpec(enc)
	if err != nil {
		return fmt.Errorf("%s: re-parse of canonical encoding: %w", name, err)
	}
	if !reflect.DeepEqual(spec, spec2) {
		return fmt.Errorf("%s: parse → print → parse is not the identity", name)
	}
	enc2, err := spec2.Encode()
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if !bytes.Equal(enc, enc2) {
		return fmt.Errorf("%s: canonical encoding is not a fixed point", name)
	}
	// Content fingerprints survive the round trip.
	m2, err := spec2.Machine()
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if m.Fingerprint() != m2.Fingerprint() {
		return fmt.Errorf("%s: fingerprint changed across round trip", name)
	}
	fmt.Printf("ok   %-28s %s (%d units, %d ops, fp %s)\n",
		name, m.Name, len(m.UnitCounts), len(m.Table), m.Fingerprint())
	return nil
}
