// Command predict prices an F-lite program at compile time and prints
// the performance expression, its unknowns, per-block detail, and —
// optionally — the reference simulation for comparison.
//
// Usage:
//
//	predict [-machine POWER1|SuperScalar2|Scalar1] [-args n=1000,alpha=2]
//	        [-simulate] [-block] [-optimize] file.f
//
// With no file, a built-in kernel name may be given via -kernel.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"perfpredict"
	"perfpredict/internal/kernels"
)

func main() {
	machineName := flag.String("machine", "POWER1", "target machine: POWER1, SuperScalar2, Scalar1")
	argList := flag.String("args", "", "comma-separated name=value assignments for unknowns")
	kernel := flag.String("kernel", "", "analyze a built-in kernel instead of a file")
	simulate := flag.Bool("simulate", false, "also run the reference pipeline simulation")
	block := flag.Bool("block", false, "analyze the innermost basic block (Figure 7 style)")
	optimize := flag.Bool("optimize", false, "search transformations for a faster variant")
	flag.Parse()

	var target *perfpredict.Target
	switch strings.ToLower(*machineName) {
	case "power1":
		target = perfpredict.POWER1()
	case "superscalar2":
		target = perfpredict.SuperScalar2()
	case "scalar1":
		target = perfpredict.Scalar1()
	default:
		fatalf("unknown machine %q", *machineName)
	}

	src, err := loadSource(*kernel, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	args := parseArgs(*argList)

	pred, err := perfpredict.Predict(src, target)
	if err != nil {
		fatalf("predict: %v", err)
	}
	fmt.Printf("machine:      %s\n", target.Name)
	fmt.Printf("cost:         %s cycles\n", pred.Cost)
	if c, ok := pred.OneTime.IsConst(); ok && c > 0 {
		fmt.Printf("one-time:     %.0f cycles (hoisted loop invariants)\n", c)
	}
	if len(pred.Unknowns) > 0 {
		fmt.Println("unknowns:")
		for _, u := range pred.Unknowns {
			fmt.Printf("  %-8s %-12s %s\n", u.Name, u.Kind, u.Source)
		}
	}
	if len(args) > 0 {
		v, err := pred.EvalAt(args)
		if err != nil {
			fatalf("eval: %v", err)
		}
		fmt.Printf("at %v:   %.0f cycles\n", args, v)
	}
	if *block {
		rep, err := perfpredict.AnalyzeInnermostBlock(src, target)
		if err != nil {
			fatalf("block: %v", err)
		}
		fmt.Println("innermost block:")
		fmt.Printf("  instructions:   %d\n", rep.Instructions)
		fmt.Printf("  predicted:      %d cycles (%.2f/iter steady state)\n", rep.Predicted, rep.PredictedPerIter)
		fmt.Printf("  reference:      %d cycles (error %+.1f%%)\n", rep.Reference, rep.ErrorPct())
		fmt.Printf("  op-count model: %d cycles (%.1fx off)\n", rep.Baseline, rep.BaselineFactor())
		fmt.Printf("  critical unit:  %s (%.0f%% busy)\n", rep.CriticalUnit, 100*rep.Utilization)
		ops, _ := perfpredict.CountOps(src, target)
		keys := make([]string, 0, len(ops))
		for k := range ops {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s×%d", k, ops[k]))
		}
		fmt.Printf("  mix:            %s\n", strings.Join(parts, " "))
	}
	if *simulate {
		cycles, err := perfpredict.Simulate(src, target, args)
		if err != nil {
			fatalf("simulate: %v", err)
		}
		fmt.Printf("simulated:    %d cycles\n", cycles)
		if len(args) > 0 {
			if v, err := pred.EvalAt(args); err == nil && cycles > 0 {
				fmt.Printf("pred/sim:     %.2f\n", v/float64(cycles))
			}
		}
	}
	if *optimize {
		res, err := perfpredict.Optimize(src, target, args)
		if err != nil {
			fatalf("optimize: %v", err)
		}
		fmt.Printf("optimize:     %.0f -> %.0f cycles (%d states)\n", res.PredictedBefore, res.PredictedAfter, res.Explored)
		if len(res.Transformations) > 0 {
			fmt.Printf("sequence:     %s\n", strings.Join(res.Transformations, ", "))
			fmt.Println("transformed program:")
			fmt.Println(indent(res.Source, "  "))
		} else {
			fmt.Println("no improving transformation found")
		}
	}
}

func loadSource(kernel string, args []string) (string, error) {
	if kernel != "" {
		k, err := kernels.Get(kernel)
		if err != nil {
			names := []string{}
			for _, kk := range kernels.All() {
				names = append(names, kk.Name)
			}
			return "", fmt.Errorf("%v (available: %s)", err, strings.Join(names, ", "))
		}
		return k.Src, nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: predict [flags] file.f (or -kernel name)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func parseArgs(s string) map[string]float64 {
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			fatalf("bad assignment %q", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			fatalf("bad value in %q", part)
		}
		out[strings.TrimSpace(kv[0])] = v
	}
	return out
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "predict: "+format+"\n", args...)
	os.Exit(1)
}
