// Command predict prices an F-lite program at compile time and prints
// the performance expression, its unknowns, per-block detail, and —
// optionally — the reference simulation for comparison.
//
// Usage:
//
//	predict [-machine NAME|spec.json] [-args n=1000,alpha=2]
//	        [-simulate] [-block] [-optimize [-v]] [-explain] file.f
//	predict [-machine M] [-args ...] [-parallel N] file1.f file2.f ...
//	predict -explore template.json [-args ...] [-target CYCLES] file1.f ...
//	predict -list-machines
//
// -machine accepts either a registered target name (see
// -list-machines; matching is case-insensitive) or a path to a
// machine-spec file, which is validated and loaded as a custom target.
// With no file, a built-in kernel name may be given via -kernel.
// Several files select batch mode: they are priced concurrently on a
// worker pool (bounded by -parallel, default GOMAXPROCS) sharing one
// segment-cost cache, and a one-line summary is printed per file.
//
// -explore names a machine-template file (see README "Design-space
// exploration"): every file (or the -kernel program) becomes one
// kernel of the workload, the template's lattice of machine
// configurations is swept, and the Pareto front over (hardware
// budget, per-kernel cost) is printed — with, when -target is given,
// the cheapest configuration meeting that total cycle budget. The
// template carries its own base machine, so -machine is ignored.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"perfpredict"
	"perfpredict/internal/kernels"
)

func main() {
	machineName := flag.String("machine", "POWER1", "registered target name or path to a machine-spec file")
	listMachines := flag.Bool("list-machines", false, "list registered target machines and exit")
	argList := flag.String("args", "", "comma-separated name=value assignments for unknowns")
	kernel := flag.String("kernel", "", "analyze a built-in kernel instead of a file")
	simulate := flag.Bool("simulate", false, "also run the reference pipeline simulation")
	block := flag.Bool("block", false, "analyze the innermost basic block (Figure 7 style)")
	optimize := flag.Bool("optimize", false, "search transformations for a faster variant")
	explainFlag := flag.Bool("explain", false, "diagnose the prediction: bottleneck unit, critical path, one-more-pipe what-if")
	verbose := flag.Bool("v", false, "with -optimize, also print search cache statistics")
	parallel := flag.Int("parallel", 0, "batch worker pool size (0 = GOMAXPROCS); used with multiple files")
	exploreFlag := flag.String("explore", "", "machine-template file: sweep its lattice and print the Pareto front")
	targetCost := flag.Float64("target", 0, "with -explore, cycle budget the best configuration must meet")
	flag.Parse()

	if *listMachines {
		for _, name := range perfpredict.TargetNames() {
			fmt.Println(name)
		}
		return
	}

	args := parseArgs(*argList)

	if *exploreFlag != "" {
		runExplore(*exploreFlag, *kernel, flag.Args(), args, *targetCost, *parallel)
		return
	}

	target, err := perfpredict.LoadTarget(*machineName)
	if err != nil {
		fatalf("%v", err)
	}

	if *kernel == "" && len(flag.Args()) > 1 {
		if *simulate || *block || *optimize || *explainFlag {
			fatalf("-simulate, -block, -optimize and -explain apply to a single input")
		}
		runBatch(flag.Args(), target, args, *parallel)
		return
	}

	src, err := loadSource(*kernel, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	pred, err := perfpredict.Predict(src, target)
	if err != nil {
		fatalf("predict: %v", err)
	}
	fmt.Printf("machine:      %s\n", target.Name)
	fmt.Printf("cost:         %s cycles\n", pred.Cost)
	if !pred.Memory.IsZero() {
		fmt.Printf("  in-core:    %s\n", pred.Cost.Sub(pred.Memory))
		fmt.Printf("  memory:     %s\n", pred.Memory)
	}
	if c, ok := pred.OneTime.IsConst(); ok && c > 0 {
		fmt.Printf("one-time:     %.0f cycles (hoisted loop invariants)\n", c)
	}
	if len(pred.Unknowns) > 0 {
		fmt.Println("unknowns:")
		for _, u := range pred.Unknowns {
			fmt.Printf("  %-8s %-12s %s\n", u.Name, u.Kind, u.Source)
		}
	}
	if len(args) > 0 {
		v, err := pred.EvalAt(args)
		if err != nil {
			fatalf("eval: %v", err)
		}
		fmt.Printf("at %v:   %.0f cycles\n", args, v)
		if !pred.Memory.IsZero() {
			if mv, merr := pred.EvalMemoryAt(args); merr == nil {
				fmt.Printf("  memory:     %.0f cycles\n", mv)
			}
		}
	}
	if *block {
		rep, err := perfpredict.AnalyzeInnermostBlock(src, target)
		if err != nil {
			fatalf("block: %v", err)
		}
		fmt.Println("innermost block:")
		fmt.Printf("  instructions:   %d\n", rep.Instructions)
		fmt.Printf("  predicted:      %d cycles (%.2f/iter steady state)\n", rep.Predicted, rep.PredictedPerIter)
		fmt.Printf("  reference:      %d cycles (error %+.1f%%)\n", rep.Reference, rep.ErrorPct())
		fmt.Printf("  op-count model: %d cycles (%.1fx off)\n", rep.Baseline, rep.BaselineFactor())
		fmt.Printf("  critical unit:  %s (%.0f%% busy)\n", rep.CriticalUnit, 100*rep.Utilization)
		ops, _ := perfpredict.CountOps(src, target)
		keys := make([]string, 0, len(ops))
		for k := range ops {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s×%d", k, ops[k]))
		}
		fmt.Printf("  mix:            %s\n", strings.Join(parts, " "))
	}
	if *explainFlag {
		rep, err := perfpredict.ExplainCtx(context.Background(), src, target,
			perfpredict.ExplainOptions{Nominal: args})
		if err != nil {
			fatalf("explain: %v", err)
		}
		printExplain(rep)
	}
	if *simulate {
		cycles, err := perfpredict.Simulate(src, target, args)
		if err != nil {
			fatalf("simulate: %v", err)
		}
		fmt.Printf("simulated:    %d cycles\n", cycles)
		if len(args) > 0 {
			if v, err := pred.EvalAt(args); err == nil && cycles > 0 {
				fmt.Printf("pred/sim:     %.2f\n", v/float64(cycles))
			}
		}
	}
	if *optimize {
		res, err := perfpredict.Optimize(src, target, args)
		if err != nil {
			fatalf("optimize: %v", err)
		}
		fmt.Printf("optimize:     %.0f -> %.0f cycles (%d states)\n", res.PredictedBefore, res.PredictedAfter, res.Explored)
		if *verbose {
			fmt.Printf("nest cache:   %d hits, %d nests re-priced\n", res.NestCacheHits, res.NestsRepriced)
			fmt.Printf("seg cache:    %d hits, %d misses\n", res.SegCacheHits, res.SegCacheMisses)
		}
		if len(res.Transformations) > 0 {
			fmt.Printf("sequence:     %s\n", strings.Join(res.Transformations, ", "))
			fmt.Println("transformed program:")
			fmt.Println(indent(res.Source, "  "))
		} else {
			fmt.Println("no improving transformation found")
		}
	}
}

// printExplain renders an ExplainReport as the -explain transcript:
// the program-level verdict, then each nest's unit pressure and
// binding critical path, then the one-more-pipe experiment.
func printExplain(rep *perfpredict.ExplainReport) {
	fmt.Println("explain:")
	fmt.Printf("  bottleneck:   %s (%.0f%% utilized)\n", rep.Bottleneck, 100*rep.BottleneckUtil)
	memShare := 0.0
	if rep.Cycles > 0 {
		memShare = 100 * rep.MemoryCycles / rep.Cycles
	}
	if rep.MemoryBound {
		fmt.Printf("  memory-bound: yes (memory %.0f%% of cost)\n", memShare)
	} else {
		fmt.Printf("  memory-bound: no (memory %.0f%% of cost)\n", memShare)
	}
	for _, n := range rep.Nests {
		fmt.Printf("  nest %s (weight %.0f%%, %d instrs, %d cycles/iter):\n",
			n.Label, 100*n.Weight, n.Instructions, n.BlockCost)
		var units []string
		for _, k := range n.Kinds {
			units = append(units, fmt.Sprintf("%s %.0f%%", k.Kind, 100*k.Utilization))
		}
		sat := "never saturated"
		if n.SaturatedAt >= 0 {
			sat = fmt.Sprintf("saturated from slot %d", n.SaturatedAt)
		}
		fmt.Printf("    bottleneck: %s (%.0f%% busy), %s\n", n.Bottleneck, 100*n.BottleneckUtil, sat)
		fmt.Printf("    units:      %s\n", strings.Join(units, "  "))
		fmt.Printf("    critical path (%d of %d cycles, dep height %d):\n",
			n.PathCycles, n.BlockCost, n.DepHeight)
		for _, s := range n.Path {
			via := ""
			switch s.Edge {
			case "resource":
				via = "  waits on " + s.Unit
			case "dep":
				via = "  after dep"
			case "dispatch":
				via = "  after dispatch"
			}
			fmt.Printf("      #%-3d %-8s @%d..%d%s\n", s.Instr, s.Op, s.Start, s.Finish, via)
		}
	}
	if w := rep.WhatIf; w != nil {
		fmt.Printf("  one more %s pipe (%d total): %.0f cycles, %.2fx speedup\n",
			w.Unit, w.Pipes, w.Cycles, w.Speedup)
	}
}

// runExplore sweeps a machine-template lattice over the given kernels
// and prints the Pareto front, the pruned count, the best
// configuration, and the slowest/fastest span — the design-space view
// of the paper's model: instead of predicting one program on one
// machine, the machine space is searched.
func runExplore(tplPath, kernel string, files []string, args map[string]float64, target float64, workers int) {
	data, err := os.ReadFile(tplPath)
	if err != nil {
		fatalf("%v", err)
	}
	tpl, err := perfpredict.ParseMachineTemplate(data)
	if err != nil {
		fatalf("%v", err)
	}
	var ks []perfpredict.ExploreKernel
	if kernel != "" {
		k, err := kernels.Get(kernel)
		if err != nil {
			fatalf("%v", err)
		}
		ks = append(ks, perfpredict.ExploreKernel{Name: kernel, Source: k.Src})
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fatalf("%v", err)
		}
		ks = append(ks, perfpredict.ExploreKernel{Name: f, Source: string(src)})
	}
	if len(ks) == 0 {
		fatalf("usage: predict -explore template.json file.f ... (or -kernel name)")
	}
	res, err := perfpredict.ExploreCtx(context.Background(), tpl, ks,
		perfpredict.ExploreOptions{Workers: workers, Args: args, Target: target})
	if err != nil {
		fatalf("explore: %v", err)
	}
	fmt.Printf("template:     %s (%d configurations, %d kernels)\n", tplPath, res.Cells, len(res.Kernels))
	fmt.Println("front:")
	fmt.Printf("  %-44s %10s %14s\n", "configuration", "budget", "total cycles")
	for _, c := range res.Front {
		fmt.Printf("  %-44s %10.1f %14.0f\n", c.Name, c.Budget, c.Total)
	}
	fmt.Printf("pruned:       %d dominated configurations\n", len(res.Pruned))
	// Span over the whole lattice, not just the front: how much the
	// design choice is worth for this workload.
	all := res.Front
	slow, fast := &all[0], &all[0]
	for i := range all {
		if all[i].Total > slow.Total {
			slow = &all[i]
		}
		if all[i].Total < fast.Total {
			fast = &all[i]
		}
	}
	var slowName string
	slowTotal := slow.Total
	slowName = slow.Name
	for i := range res.Pruned {
		if res.Pruned[i].Total > slowTotal {
			slowTotal = res.Pruned[i].Total
			slowName = res.Pruned[i].Name
		}
	}
	if fast.Total > 0 {
		fmt.Printf("span:         %.2fx (%s vs %s)\n", slowTotal/fast.Total, slowName, fast.Name)
	}
	if target > 0 {
		if res.Best != nil {
			fmt.Printf("best:         %s (budget %.1f, %.0f cycles <= target %.0f)\n",
				res.Best.Name, res.Best.Budget, res.Best.Total, target)
		} else {
			fmt.Printf("best:         no configuration meets target %.0f cycles\n", target)
		}
	} else if res.Best != nil {
		fmt.Printf("fastest:      %s (budget %.1f, %.0f cycles)\n",
			res.Best.Name, res.Best.Budget, res.Best.Total)
	}
}

// runBatch prices every file concurrently through PredictBatch and
// prints one summary line per file, index-aligned with the inputs.
func runBatch(files []string, target *perfpredict.Target, args map[string]float64, workers int) {
	srcs := make([]string, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatalf("%v", err)
		}
		srcs[i] = string(data)
	}
	cache := perfpredict.NewSegmentCache()
	preds, errs := perfpredict.PredictBatch(srcs, target, perfpredict.BatchOptions{Workers: workers, Cache: cache})
	fmt.Printf("machine:      %s\n", target.Name)
	failed := 0
	for i, f := range files {
		if errs[i] != nil {
			fmt.Printf("%-24s error: %v\n", f+":", errs[i])
			failed++
			continue
		}
		fmt.Printf("%-24s %s cycles", f+":", preds[i].Cost)
		if len(args) > 0 {
			if v, err := preds[i].EvalAt(args); err == nil {
				fmt.Printf(" = %.0f at %v", v, args)
			}
		}
		fmt.Println()
	}
	hits, misses := cache.Stats()
	fmt.Printf("segment cache: %d hits, %d misses\n", hits, misses)
	if failed > 0 {
		os.Exit(1)
	}
}

func loadSource(kernel string, args []string) (string, error) {
	if kernel != "" {
		k, err := kernels.Get(kernel)
		if err != nil {
			names := []string{}
			for _, kk := range kernels.All() {
				names = append(names, kk.Name)
			}
			return "", fmt.Errorf("%v (available: %s)", err, strings.Join(names, ", "))
		}
		return k.Src, nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: predict [flags] file.f (or -kernel name)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func parseArgs(s string) map[string]float64 {
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			fatalf("bad assignment %q", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			fatalf("bad value in %q", part)
		}
		out[strings.TrimSpace(kv[0])] = v
	}
	return out
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "predict: "+format+"\n", args...)
	os.Exit(1)
}
