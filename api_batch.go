package perfpredict

import (
	"context"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/workpool"
)

// SegmentCache memoizes straight-line segment costs across
// predictions. It is safe for concurrent use: batch workers (and any
// estimators the caller runs by hand) may share one instance, turning
// repeated pricing of common code shapes into lock-striped lookups.
// See NewSegmentCache.
type SegmentCache = aggregate.SegCache

// NewSegmentCache creates an empty shared segment cache.
func NewSegmentCache() *SegmentCache { return aggregate.NewSegCache() }

// BatchOptions tune PredictBatch.
type BatchOptions struct {
	// Workers bounds the worker pool; <= 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// Aggregate overrides the aggregation options for every program in
	// the batch; nil uses the defaults (the same ones Predict uses).
	Aggregate *aggregate.Options
	// Cache is the segment cache the workers share; nil creates a
	// fresh cache private to this batch. Passing the same cache to
	// successive batches (or to Optimize-style searches) carries priced
	// segments across calls — the incremental-update mechanism of
	// §3.3.1 applied at fleet scale.
	Cache *SegmentCache
}

// PredictBatch prices many programs concurrently on one target. It
// returns one prediction and one error slot per source, index-aligned
// with srcs; failed programs leave a nil prediction and a non-nil
// error without affecting the others.
//
// Every worker runs a private estimator, so results are byte-identical
// to calling Predict on each source serially — the shared cache only
// changes how often segment costs are recomputed, never their values.
func PredictBatch(srcs []string, target *Target, opt BatchOptions) ([]*Prediction, []error) {
	return PredictBatchCtx(context.Background(), srcs, target, opt)
}

// PredictBatchCtx is PredictBatch under a context: once ctx is done,
// workers stop picking up further programs (the one each worker is
// pricing finishes), and every program that never ran gets a nil
// prediction with ctx.Err() in its error slot. Programs that did
// complete keep their results, so partial batches remain usable and
// are still byte-identical to serial pricing of the same indices.
func PredictBatchCtx(ctx context.Context, srcs []string, target *Target, opt BatchOptions) ([]*Prediction, []error) {
	preds := make([]*Prediction, len(srcs))
	errs := make([]error, len(srcs))
	if len(srcs) == 0 {
		return preds, errs
	}
	aopt := aggregate.DefaultOptions()
	if opt.Aggregate != nil {
		aopt = *opt.Aggregate
	}
	cache := opt.Cache
	if cache == nil {
		cache = NewSegmentCache()
	}
	if err := workpool.RunCtx(ctx, len(srcs), opt.Workers, func(i int) {
		preds[i], errs[i] = predictWithCache(srcs[i], target, aopt, cache)
	}); err != nil {
		// predictWithCache always fills exactly one slot, so a
		// both-nil pair marks an index the cancelled pool never ran.
		for i := range srcs {
			if preds[i] == nil && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return preds, errs
}

// predictWithCache is the cache-aware core of Predict and
// PredictWithOptions: parse, analyze, aggregate.
func predictWithCache(src string, target *Target, opt aggregate.Options, cache *SegmentCache) (*Prediction, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	est := aggregate.NewWithCache(tbl, target, opt, cache)
	res, err := est.Program(prog)
	if err != nil {
		return nil, err
	}
	p := &Prediction{
		Cost:    res.Cost,
		OneTime: res.OneTime,
		Memory:  res.Memory,
		prog:    prog,
		tbl:     tbl,
		mach:    target,
	}
	for _, u := range res.Unknowns {
		p.Unknowns = append(p.Unknowns, Unknown{Name: string(u.Var), Kind: u.Kind, Source: u.Desc})
	}
	return p, nil
}
