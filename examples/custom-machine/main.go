// Custom machine: retarget the predictor without writing Go — the
// paper's §2.2 portability claim, realized as data. power2f.json
// describes POWER2F, a hypothetical POWER variant with a second
// floating-point pipe and a wider dispatch, purely as a machine spec
// (unit inventory, feature flags, and the atomic-operation cost
// table). This program loads it, validates it, and compares its
// predictions against the builtin POWER1 on an unrolled matrix-multiply kernel.
//
// Run from this directory:
//
//	go run . [path/to/spec.json]
package main

import (
	"fmt"
	"log"
	"os"

	"perfpredict"
)

// The kernel is the 4x4-unrolled matrix multiply (16 independent FMAs
// in the innermost block) -- dense enough floating-point work that a
// second FPU pipe can actually show up in the prediction.
const matmul = `
program matmul44
  integer i, j, k, n
  parameter (n = 32)
  real a(32,32), b(32,32), c(32,32)
  do i = 1, n, 4
    do j = 1, n, 4
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
        c(i+1,j) = c(i+1,j) + a(i+1,k) * b(k,j)
        c(i+2,j) = c(i+2,j) + a(i+2,k) * b(k,j)
        c(i+3,j) = c(i+3,j) + a(i+3,k) * b(k,j)
        c(i,j+1) = c(i,j+1) + a(i,k) * b(k,j+1)
        c(i+1,j+1) = c(i+1,j+1) + a(i+1,k) * b(k,j+1)
        c(i+2,j+1) = c(i+2,j+1) + a(i+2,k) * b(k,j+1)
        c(i+3,j+1) = c(i+3,j+1) + a(i+3,k) * b(k,j+1)
        c(i,j+2) = c(i,j+2) + a(i,k) * b(k,j+2)
        c(i+1,j+2) = c(i+1,j+2) + a(i+1,k) * b(k,j+2)
        c(i+2,j+2) = c(i+2,j+2) + a(i+2,k) * b(k,j+2)
        c(i+3,j+2) = c(i+3,j+2) + a(i+3,k) * b(k,j+2)
        c(i,j+3) = c(i,j+3) + a(i,k) * b(k,j+3)
        c(i+1,j+3) = c(i+1,j+3) + a(i+1,k) * b(k,j+3)
        c(i+2,j+3) = c(i+2,j+3) + a(i+2,k) * b(k,j+3)
        c(i+3,j+3) = c(i+3,j+3) + a(i+3,k) * b(k,j+3)
      end do
    end do
  end do
end
`

func main() {
	specPath := "power2f.json"
	if len(os.Args) > 1 {
		specPath = os.Args[1]
	}

	// LoadTarget resolves registered names first, then spec files; a
	// path loads, validates, and builds the described machine.
	custom, err := perfpredict.LoadTarget(specPath)
	if err != nil {
		log.Fatal(err)
	}
	power1, err := perfpredict.LoadTarget("POWER1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered targets: %v\n", perfpredict.TargetNames())
	fmt.Printf("custom target:      %s (fingerprint %s)\n\n", custom.Name, custom.Fingerprint())

	for _, target := range []*perfpredict.Target{power1, custom} {
		pred, err := perfpredict.Predict(matmul, target)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := perfpredict.AnalyzeInnermostBlock(matmul, target)
		if err != nil {
			log.Fatal(err)
		}
		cycles, err := pred.EvalAt(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s C = %s = %.0f cycles\n", target.Name+":", pred.Cost, cycles)
		fmt.Printf("             innermost block: %d cycles predicted, critical unit %s (%.0f%% busy)\n",
			rep.Predicted, rep.CriticalUnit, 100*rep.Utilization)
	}

	// The second FPU pays off exactly where the FPU was the bottleneck.
	p1, _ := perfpredict.Predict(matmul, power1)
	p2, _ := perfpredict.Predict(matmul, custom)
	v1, _ := p1.EvalAt(nil)
	v2, _ := p2.EvalAt(nil)
	fmt.Printf("\nPOWER2F speedup over POWER1 on matmul: %.2fx\n", v1/v2)

	// Memory-hierarchy what-if: power1mem.json is the same POWER1 cost
	// table with the documented cache hierarchy attached (64 KiB, 128 B
	// lines, 15-cycle fill, 128-entry TLB). Predictions then carry a
	// separate memory component — and hierarchy edits move only it.
	memTarget, err := perfpredict.LoadTarget("power1mem.json")
	if err != nil {
		log.Fatal(err)
	}
	halved, err := perfpredict.LoadTarget("power1mem.json")
	if err != nil {
		log.Fatal(err)
	}
	halved.Memory.Levels[0].LineBytes /= 2
	if err := halved.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhierarchy what-if on matmul (in-core + memory cycles):")
	for _, row := range []struct {
		label  string
		target *perfpredict.Target
	}{
		{"128B lines", memTarget},
		{" 64B lines", halved},
	} {
		pred, err := perfpredict.Predict(matmul, row.target)
		if err != nil {
			log.Fatal(err)
		}
		total, _ := pred.EvalAt(nil)
		mem, _ := pred.EvalMemoryAt(nil)
		fmt.Printf("  %s: %6.0f in-core + %5.0f memory = %6.0f cycles\n",
			row.label, total-mem, mem, total)
	}
	fmt.Println("halving the line size doubles the line-fill term and leaves the in-core cycles untouched")
}
