// Quickstart: predict the cost of a Fortran-like kernel at compile
// time, inspect the symbolic performance expression, evaluate it at a
// concrete problem size, and compare against the cycle-level reference
// simulation.
package main

import (
	"fmt"
	"log"

	"perfpredict"
)

const daxpy = `
subroutine daxpy(n, alpha)
  integer i, n
  real alpha, x(4000), y(4000)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
`

func main() {
	target := perfpredict.POWER1()

	// Compile-time prediction: no execution, the result is symbolic.
	pred, err := perfpredict.Predict(daxpy, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s\n", target.Name)
	fmt.Printf("predicted cost: C(n) = %s cycles\n", pred.Cost)
	for _, u := range pred.Unknowns {
		fmt.Printf("  unknown %q (%s): %s\n", u.Name, u.Kind, u.Source)
	}

	// The innermost block in detail (the paper's Figure 7 view).
	rep, err := perfpredict.AnalyzeInnermostBlock(daxpy, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninnermost block: %d ops, %d cycles predicted, %d simulated (%+.1f%% error)\n",
		rep.Instructions, rep.Predicted, rep.Reference, rep.ErrorPct())
	fmt.Printf("op-count baseline would say %d cycles (%.1fx off)\n",
		rep.Baseline, rep.BaselineFactor())
	fmt.Printf("critical unit: %s at %.0f%% utilization\n", rep.CriticalUnit, 100*rep.Utilization)

	// Evaluate the expression and check against dynamic simulation.
	fmt.Println()
	for _, n := range []float64{100, 1000, 4000} {
		p, err := pred.EvalAt(map[string]float64{"n": n})
		if err != nil {
			log.Fatal(err)
		}
		s, err := perfpredict.Simulate(daxpy, target, map[string]float64{"n": n, "alpha": 2.0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%5.0f: predicted %7.0f, simulated %7d cycles (ratio %.2f)\n",
			n, p, s, p/float64(s))
	}
}
