// Symbolic: the framework's signature capabilities on programs with
// unknowns — exact loop-index conditional splits (§3.3.2), symbolic
// comparison with crossover discovery (§3.1, Figure 10), sensitivity
// analysis and run-time test selection (§3.4).
package main

import (
	"fmt"
	"log"

	"perfpredict"
)

const condsplit = `
subroutine condsplit(n, k)
  integer i, n, k
  real t(2000), f(2000)
  do i = 1, n
    if (i .le. k) then
      t(i) = t(i) + 1.0
    else
      f(i) = f(i) / 3.0
    end if
  end do
end
`

const rowSum = `
subroutine rowsum(n)
  integer i, j, n
  real a(96,96), s(96)
  do i = 1, n
    do j = 1, n
      s(i) = s(i) + a(i,j)
    end do
  end do
end
`

const scaledCopy = `
subroutine sc(n)
  integer i, n
  real b(16384)
  do i = 1, n
    b(i) = sqrt(b(i)) + 1.0
  end do
end
`

func main() {
	target := perfpredict.POWER1()

	// 1. The §3.3.2 worked example: no guessed probability, the split
	// is exact: C = k·C(then) + (n−k)·C(else) + overhead.
	pred, err := perfpredict.Predict(condsplit, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loop-index conditional: C(n,k) = %s\n", pred.Cost)
	for _, kv := range []float64{200, 1000, 1800} {
		p, _ := pred.EvalAt(map[string]float64{"n": 2000, "k": kv})
		s, _ := perfpredict.Simulate(condsplit, target, map[string]float64{"n": 2000, "k": kv})
		fmt.Printf("  k=%4.0f: predicted %6.0f, simulated %6d\n", kv, p, s)
	}

	// 2. Symbolic comparison: a quadratic nest against a heavy linear
	// loop. The winner depends on n; the comparison finds where.
	p1, err := perfpredict.Predict(rowSum, target)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := perfpredict.Predict(scaledCopy, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC(rowsum)     = %s\n", p1.Cost)
	fmt.Printf("C(scaledcopy) = %s\n", p2.Cost)
	cmp, err := perfpredict.Compare(p1, p2, map[string]perfpredict.Bound{"n": {Lo: 1, Hi: 96}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %s\n", cmp.Verdict)
	if len(cmp.Crossovers) > 0 {
		fmt.Printf("crossover at n ≈ %.1f — below it rowsum wins, above it scaledcopy wins\n", cmp.Crossovers[0])
		fmt.Println("=> a run-time test `if (n < threshold)` selects the right variant (§3.4)")
	}

	// 3. Sensitivity analysis: which unknown deserves the run-time test?
	multi := `
subroutine p(n, k, m)
  integer i, j, n, k, m
  real a(128,128), b(4000), c(4000)
  do i = 1, n
    do j = 1, n
      a(i,j) = a(i,j) + 1.0
    end do
  end do
  do i = 1, k
    b(i) = b(i) * 2.0
  end do
  do i = 1, m
    c(i) = sqrt(c(i))
  end do
end
`
	p3, err := perfpredict.Predict(multi, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC(n,k,m) = %s\n", p3.Cost)
	sens, err := p3.Sensitivity(map[string]float64{"n": 100, "k": 2000, "m": 200}, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sensitivity ranking (±10% perturbation):")
	for i, s := range sens {
		fmt.Printf("  %d. %-3s swing %8.0f cycles (%.1f%% of nominal)\n",
			i+1, s.Name, s.Swing, 100*s.Relative)
	}
	fmt.Printf("=> instrument %q first\n", sens[0].Name)
}
