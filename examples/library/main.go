// Library: the external-library cost table of §3.5 — routine
// performance expressions are computed once from source, parameterized
// by their formal parameters, and substituted with the actual
// parameters at every call site.
package main

import (
	"fmt"
	"log"

	"perfpredict"
)

const daxpySrc = `
subroutine daxpy(n, alpha)
  integer i, n
  real alpha, x(8192), y(8192)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
`

const dotSrc = `
subroutine dot(n)
  integer i, n
  real s, a(8192), b(8192)
  s = 0.0
  do i = 1, n
    s = s + a(i) * b(i)
  end do
end
`

const caller = `
subroutine solve(m)
  integer it, m
  real a
  a = 0.5
  do it = 1, m
    call daxpy(4096, a)
    call dot(4096)
    call daxpy(2 * m, a)
  end do
end
`

func main() {
	target := perfpredict.POWER1()

	// Build the cost table from routine sources — each entry is a
	// performance expression over the routine's formals.
	lib, err := perfpredict.BuildLibrary(map[string]string{
		"daxpy": daxpySrc,
		"dot":   dotSrc,
	}, target)
	if err != nil {
		log.Fatal(err)
	}
	for name, e := range lib {
		fmt.Printf("library %-6s params %v: C = %s\n", name, e.Params, e.Cost)
	}

	// Predict the caller: each CALL substitutes its actuals — the
	// constant 4096 folds, the symbolic 2·m flows through.
	pred, err := perfpredict.PredictWithLibrary(caller, target, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC(solve) = %s cycles\n", pred.Cost)

	for _, m := range []float64{10, 100} {
		v, err := pred.EvalAt(map[string]float64{"m": m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  m=%3.0f: %12.0f cycles predicted\n", m, v)
	}

	// Without the table the same calls cost only linkage — the
	// difference is the library work the expression now accounts for.
	bare, err := perfpredict.Predict(caller, target)
	if err != nil {
		log.Fatal(err)
	}
	v1, _ := pred.EvalAt(map[string]float64{"m": 10})
	v0, _ := bare.EvalAt(map[string]float64{"m": 10})
	fmt.Printf("\nwithout the table at m=10: %.0f cycles (%.0fx underestimate)\n",
		v0, v1/v0)
}
