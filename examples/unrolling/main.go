// Unrolling: use the predictor to choose a loop-unrolling factor —
// the §2.2.2 use case ("Our model provides two ways for estimating the
// cost saving of unrolling a loop") — and let the best-first
// transformation search (§3.2) find a sequence automatically.
package main

import (
	"fmt"
	"log"
	"strings"

	"perfpredict"
	"perfpredict/internal/kernels"
	"perfpredict/internal/source"
	"perfpredict/internal/xform"
)

func main() {
	target := perfpredict.POWER1()
	k, err := kernels.Get("jacobi")
	if err != nil {
		log.Fatal(err)
	}
	prog, _, err := k.Parse()
	if err != nil {
		log.Fatal(err)
	}

	// Locate the innermost loop.
	var path xform.Path
	for _, site := range xform.FindLoops(prog) {
		if site.Innermost {
			path = site.Path
		}
	}

	fmt.Println("unroll-factor selection for the Jacobi relaxation kernel:")
	fmt.Printf("%-8s %-12s %-12s\n", "factor", "predicted", "simulated")
	bestF, bestPred := 1, 0.0
	for _, f := range []int{1, 2, 4, 8} {
		variant := prog
		if f > 1 {
			variant, err = xform.Unroll(prog, path, f)
			if err != nil {
				log.Fatal(err)
			}
		}
		src := source.PrintProgram(variant)
		pred, err := perfpredict.Predict(src, target)
		if err != nil {
			log.Fatal(err)
		}
		pv, err := pred.EvalAt(nil)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := perfpredict.Simulate(src, target, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("u%-7d %-12.0f %-12d\n", f, pv, sim)
		if bestF == 1 && f == 1 || pv < bestPred {
			bestF, bestPred = f, pv
		}
	}
	fmt.Printf("\npredictor's choice: unroll by %d\n", bestF)

	// Fully automatic: best-first search over unroll/interchange/tile.
	res, err := perfpredict.Optimize(k.Src, target, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautomatic search: %.0f -> %.0f predicted cycles (%d states)\n",
		res.PredictedBefore, res.PredictedAfter, res.Explored)
	fmt.Printf("sequence: %s\n", strings.Join(res.Transformations, ", "))
	before, err := perfpredict.Simulate(k.Src, target, nil)
	if err != nil {
		log.Fatal(err)
	}
	after, err := perfpredict.Simulate(res.Source, target, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated by simulation: %d -> %d cycles (%.2fx)\n",
		before, after, float64(before)/float64(after))
}
