// Design-space exploration: run the paper's model backwards. Instead
// of predicting one program on one machine, template.json spans a
// small lattice of POWER1 variants — dispatch width 4 or 5, one or
// two FPU pipes, one or two FXU pipes — and the predictor prices an
// unrolled matrix multiply on every configuration. The sweep reduces
// the lattice to a Pareto front over (hardware budget, predicted
// cycles) and, given a cycle target, names the cheapest configuration
// that meets it.
//
// The punchline is rediscovery: the lattice contains the POWER2F
// shape (second FPU pipe, wider dispatch) that examples/custom-machine
// hand-writes as a full spec, and its predicted speedup over the
// POWER1 base is the same 1.71x that comparison measures. Here nobody
// wrote the better machine down — the exploration found it.
//
// Pruning uses measured dominance only, never a structural "more
// resources is faster" ordering: greedy list scheduling is not
// monotone in resources (Graham's anomaly), so a bigger machine must
// prove itself on predicted cycles. This lattice shows why that
// matters in the other direction too — the dispatch=5 variants cost
// the same cycles as dispatch=4 here but a larger budget, so it is
// the "bigger" machines that get pruned.
//
// Run from this directory:
//
//	go run .
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"perfpredict"
)

// The workload: the 4x4-unrolled matrix multiply from
// examples/custom-machine — 16 independent FMAs in the innermost
// block, dense enough floating-point work that a second FPU pipe
// actually shows up in the prediction.
const matmul = `
program matmul44
  integer i, j, k, n
  parameter (n = 32)
  real a(32,32), b(32,32), c(32,32)
  do i = 1, n, 4
    do j = 1, n, 4
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
        c(i+1,j) = c(i+1,j) + a(i+1,k) * b(k,j)
        c(i+2,j) = c(i+2,j) + a(i+2,k) * b(k,j)
        c(i+3,j) = c(i+3,j) + a(i+3,k) * b(k,j)
        c(i,j+1) = c(i,j+1) + a(i,k) * b(k,j+1)
        c(i+1,j+1) = c(i+1,j+1) + a(i+1,k) * b(k,j+1)
        c(i+2,j+1) = c(i+2,j+1) + a(i+2,k) * b(k,j+1)
        c(i+3,j+1) = c(i+3,j+1) + a(i+3,k) * b(k,j+1)
        c(i,j+2) = c(i,j+2) + a(i,k) * b(k,j+2)
        c(i+1,j+2) = c(i+1,j+2) + a(i+1,k) * b(k,j+2)
        c(i+2,j+2) = c(i+2,j+2) + a(i+2,k) * b(k,j+2)
        c(i+3,j+2) = c(i+3,j+2) + a(i+3,k) * b(k,j+2)
        c(i,j+3) = c(i,j+3) + a(i,k) * b(k,j+3)
        c(i+1,j+3) = c(i+1,j+3) + a(i+1,k) * b(k,j+3)
        c(i+2,j+3) = c(i+2,j+3) + a(i+2,k) * b(k,j+3)
        c(i+3,j+3) = c(i+3,j+3) + a(i+3,k) * b(k,j+3)
      end do
    end do
  end do
end
`

func main() {
	data, err := os.ReadFile("template.json")
	if err != nil {
		log.Fatal(err)
	}
	tpl, err := perfpredict.ParseMachineTemplate(data)
	if err != nil {
		log.Fatal(err)
	}
	cells, err := tpl.Size()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lattice:      %d POWER1 variants (dispatch 4-5, FPU 1-2, FXU 1-2)\n\n", cells)

	kernels := []perfpredict.ExploreKernel{{Name: "matmul44", Source: matmul}}
	res, err := perfpredict.Explore(tpl, kernels)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pareto front over (hardware budget, predicted cycles):")
	for _, c := range res.Front {
		fmt.Printf("  %-36s budget %4.1f   %6.0f cycles\n", c.Name, c.Budget, c.Total)
	}
	fmt.Printf("pruned: %d dominated configurations", len(res.Pruned))
	if len(res.Pruned) > 0 {
		w := res.Pruned[0]
		fmt.Printf(" (e.g. %s, dominated by cell #%d)", w.Name, w.DominatedBy)
	}
	fmt.Print("\n\n")

	// The rediscovery: compare the POWER1 base cell against the POWER2F
	// shape — two FPU pipes, five-wide dispatch — and recover the same
	// 1.71x that examples/custom-machine measures with a hand-written
	// spec. The base sits on the front (it is the cheapest machine);
	// the POWER2F shape happens to be pruned here, because its extra
	// dispatch slot buys nothing on this workload over the dispatch=4
	// two-FPU variant. Totals live in both lists, so the comparison
	// does not care.
	base := totalOf(res, "POWER1[dispatch=4,FPU=1,FXU=1]")
	power2f := totalOf(res, "POWER1[dispatch=5,FPU=2,FXU=1]")
	fmt.Printf("POWER2F shape speedup over POWER1 base: %.2fx (%.0f -> %.0f cycles)\n",
		base/power2f, base, power2f)

	// With a cycle budget, exploration names the cheapest machine that
	// meets it — the design question the sweep exists to answer.
	target := 22000.0
	res2, err := perfpredict.ExploreCtx(context.Background(), tpl, kernels, perfpredict.ExploreOptions{Target: target})
	if err != nil {
		log.Fatal(err)
	}
	if res2.Best != nil {
		fmt.Printf("cheapest configuration under %.0f cycles: %s (budget %.1f, %.0f cycles)\n",
			target, res2.Best.Name, res2.Best.Budget, res2.Best.Total)
	}
}

// totalOf finds a configuration's predicted total by name, whether the
// frontier kept it or pruned it.
func totalOf(res *perfpredict.ExploreResult, name string) float64 {
	for i := range res.Front {
		if res.Front[i].Name == name {
			return res.Front[i].Total
		}
	}
	for i := range res.Pruned {
		if res.Pruned[i].Name == name {
			return res.Pruned[i].Total
		}
	}
	log.Fatalf("configuration %s not in the lattice", name)
	return 0
}
