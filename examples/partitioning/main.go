// Partitioning: choose an HPF data distribution with the static
// communication cost model — the Balasundaram-style use case the
// paper's framework folds into its unified performance expressions.
// Costs are symbolic in the processor count P; the choice falls out of
// symbolic comparison, and the exact message enumerator referees.
package main

import (
	"fmt"
	"log"

	"perfpredict/internal/comm"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

func kernel(dist string, offset int) string {
	return fmt.Sprintf(`
program stencil
  integer i, n
  parameter (n = 256)
  real a(256), b(264)
!hpf$ distribute a(%s)
!hpf$ distribute b(%s)
  do i = 2, n - 1
    a(i) = b(i+%d) + 1.0
  end do
end
`, dist, dist, offset)
}

func analyze(src string) (comm.Cost, *sem.Table, *source.Assign, []comm.ConcreteLoop) {
	p, err := source.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	loop := p.Body[0].(*source.DoLoop)
	lb, _ := tbl.IntConst(loop.Lb)
	ub, _ := tbl.IntConst(loop.Ub)
	assign := loop.Body[0].(*source.Assign)
	cost, err := comm.EstimateAssign(tbl, assign, []comm.Loop{
		{Var: loop.Var, Trips: symexpr.Const(float64(ub - lb + 1))},
	})
	if err != nil {
		log.Fatal(err)
	}
	return cost, tbl, assign, []comm.ConcreteLoop{{Var: loop.Var, Lb: lb, Ub: ub, Step: 1}}
}

func main() {
	model := comm.DefaultModel()

	fmt.Println("stencil a(i) = b(i+1): block vs cyclic distribution")
	blockCost, _, _, _ := analyze(kernel("block", 1))
	cyclicCost, _, _, _ := analyze(kernel("cyclic", 1))
	cb := model.Cycles(blockCost)
	cc := model.Cycles(cyclicCost)
	fmt.Printf("  C_block(P)  = %s\n", cb)
	fmt.Printf("  C_cyclic(P) = %s\n", cc)

	// Symbolic comparison over P ∈ [2, 64]: no value of P needs to be
	// guessed to make the choice.
	cmp, err := symexpr.Compare(cb, cc, symexpr.Bounds{comm.PVar: {Lo: 2, Hi: 64}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  symbolic verdict over P ∈ [2,64]: %s → distribute BLOCK\n", cmp.Verdict)

	// Referee: enumerate the actual remote fetches at a few P.
	fmt.Println("\n  exact enumeration (ground truth):")
	for _, procs := range []int{2, 8, 32} {
		_, tblB, aB, loopsB := analyze(kernel("block", 1))
		mB, eB, err := comm.EnumerateAssign(tblB, aB, loopsB, procs)
		if err != nil {
			log.Fatal(err)
		}
		_, tblC, aC, loopsC := analyze(kernel("cyclic", 1))
		mC, eC, err := comm.EnumerateAssign(tblC, aC, loopsC, procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P=%-3d block: %3d msgs %4d elems | cyclic: %3d msgs %4d elems\n",
			procs, mB, eB, mC, eC)
	}

	// The counter-case: an offset equal to P is free under cyclic.
	fmt.Println("\nstencil a(i) = b(i+8) on P=8: the offset is a multiple of P")
	_, tblB, aB, loopsB := analyze(kernel("block", 8))
	mB, eB, _ := comm.EnumerateAssign(tblB, aB, loopsB, 8)
	_, tblC, aC, loopsC := analyze(kernel("cyclic", 8))
	mC, eC, _ := comm.EnumerateAssign(tblC, aC, loopsC, 8)
	fmt.Printf("  block:  %d msgs, %d elems\n", mB, eB)
	fmt.Printf("  cyclic: %d msgs, %d elems  (CyclicLocalDelta(8, 8) = %v)\n",
		mC, eC, comm.CyclicLocalDelta(8, 8))
	fmt.Println("  → for this access pattern CYCLIC wins; the model's run-time")
	fmt.Println("    test (delta mod P == 0) captures exactly this condition")
}
