program gen3995
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), w(65,65), s, t, alpha
  s = 1.5
  t = 0.0
  alpha = 2.5
  do i = 1, n
    do j = 1, n
      w(i,j) = abs(w(i,j)) * v(i,j) / v(i,j)
      w(i,j) = w(j,i) * w(i,j) - (u(i+1,j)) / u(i,j) / sqrt(t)
      u(i+1,j) = u(i,j) + w(i,j) * alpha + w(i,j+1)
      w(i,j+1) = 0.25 * w(i,j) * (w(i,j)) * abs(s) * 2.0
    end do
  end do
end
