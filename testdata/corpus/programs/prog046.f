program gen5251
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), x(65), s, t, alpha
  s = 1.5
  t = 2.5
  alpha = 1.5
  do i = 1, n
    x(i) = w(i) / u(i)
    x(i) = (3.0) * x(i)
    v(i+1) = ((sqrt(v(i))) - x(i)) - w(i) / u(i+1)
    x(i) = w(i) * abs(v(i))
  end do
end
