program gen3562
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), s, t
  s = 0.0
  t = 1.5
  do i = 1, n
    do j = 1, n
      s = s + sqrt(s)
      v(i,j) = 0.5 * 0.5
      t = t + v(i,j+1) * u(i,j+1)
      v(i,j) = ((s) + abs(2.0) / 0.25) - (v(i,j+1)) + s
      if (j .le. 11) then
        v(i,j) = u(i,j+1) / v(i,j)
      end if
    end do
  end do
end
