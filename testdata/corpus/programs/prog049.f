subroutine gen2984(n)
  integer i, n
  real u(65), v(65), s
  s = 1.5
  do i = 1, n
    u(i) = 0.25 * (u(i)) * v(i)
    s = s + v(i+1) + abs(v(i))
    u(i) = (abs(u(i))) * u(i)
  end do
end
