program gen3435
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), s
  s = 0.75
  do i = 1, n
    do j = 1, n
      u(i+1,j) = (v(i,j+1)) / u(i,j) * v(i+1,j) + (u(i+1,j)) * u(j,i)
      u(i,j) = (abs(v(i,j+1)) - 2.0) * v(i,j) / v(i,j)
      if (j .le. 62) then
        u(j,i) = (u(i,j+1) * s) - (0.25 / v(i+1,j)) / v(j,i)
      end if
    end do
  end do
end
