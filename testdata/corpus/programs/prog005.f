subroutine gen8480(n)
  integer i, n
  real u(65), v(65), w(65), s, t
  s = 2.5
  t = 2.5
  do i = 1, n
    s = s + u(i) / sqrt(0.25) * v(i)
    v(i+1) = u(i) * (v(i+1)) * v(i)
    if (i .le. 26) then
      t = t + abs(s) * s
    end if
  end do
end
