program gen2188
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), s, t, alpha
  s = 0.0
  t = 0.75
  alpha = 0.0
  do i = 1, n
    v(i+1) = v(i) - u(i) - sqrt(2.0)
    alpha = alpha + (abs(v(i))) + w(i+1) / 0.25
    s = s + abs(u(i)) - v(i)
    w(i) = 2.0 * abs(1.0) * (abs(2.0)) * 0.25
    if (i .le. 31) then
      s = s + (abs(w(i))) - sqrt(v(i+1)) / u(i)
    end if
  end do
end
