program gen9076
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), s, t, alpha
  s = 2.5
  t = 1.5
  alpha = 1.5
  do i = 1, n
    do j = 1, n
      s = s + s
      u(i,j+1) = abs(v(i,j)) / u(i,j)
      u(j,i) = (u(i+1,j) + v(i,j) + v(i,j)) / alpha
      v(i,j) = (2.0) * v(j,i) + alpha * 1.0 - 3.0
    end do
  end do
end
