program gen4059
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), s, t, alpha
  s = 2.5
  t = 1.5
  alpha = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        alpha = alpha + u(i,j,k+1) * v(i,j,k+1)
        if (k .le. 11) then
          u(i+1,j,k) = (u(i,j+1,k)) * (abs(u(i,j+1,k))) + u(i,j,k)
        end if
      end do
    end do
  end do
end
