program gen5935
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), s, t, alpha
  s = 1.5
  t = 0.75
  alpha = 0.75
  do i = 1, n
    do j = 1, n
      do k = 1, n
        u(i,j+1,k) = abs(u(i,j,k)) / t + v(i,j,k) - abs(v(i,j,k)) + 2.0
      end do
    end do
  end do
end
