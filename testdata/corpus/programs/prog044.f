program gen6309
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), w(65,65,65), s, t, alpha
  s = 0.0
  t = 0.75
  alpha = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        u(i,j,k) = 0.25 - sqrt(t) - 0.5 / u(i+1,j,k)
        s = s + s
        v(i,j+1,k) = u(i,j,k) + sqrt(u(i,j,k)) * abs(t)
        v(i,j,k) = u(i,j,k) * w(i+1,j,k) / abs(s)
      end do
    end do
  end do
end
