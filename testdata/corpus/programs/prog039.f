subroutine gen9054(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), w(65,65,65), x(65,65,65), s
  s = 1.5
  do i = 1, n
    do j = 1, n
      do k = 1, n
        x(i,j,k) = sqrt(3.0) / u(i,j,k+1) + s * abs(v(i,j,k)) - x(i,j,k+1)
        w(i,j,k) = x(i,j,k) - 3.0
        if (k .le. 32) then
          u(i,j+1,k) = ((w(i,j,k+1)) + (x(i,j,k)) * s) * w(i,j,k)
        else
          v(i,j,k) = s * (x(i+1,j,k)) * w(i,j,k) * 0.25 - u(i,j,k)
        end if
      end do
    end do
  end do
end
