program gen4420
  integer i, n
  parameter (n = 64)
  real u(65), v(65), s
  s = 0.75
  do i = 1, n
    v(i+1) = u(i) / abs(1.0) * (abs(v(i))) * abs(u(i))
    u(i+1) = v(i+1) + 2.0 * v(i) - (u(i)) / abs(u(i+1))
    v(i+1) = v(i+1) * (abs(u(i+1)) / (2.0) * s) * s
  end do
end
