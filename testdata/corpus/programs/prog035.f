program gen0217
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), x(65), s
  s = 1.5
  do i = 1, n
    u(i) = 3.0 * x(i) * abs(w(i)) + sqrt(x(i))
    if (i .le. 50) then
      w(i+1) = (v(i+1)) / s + u(i+1)
    else
      v(i+1) = 0.25 * v(i+1)
    end if
  end do
end
