subroutine gen1070(n)
  integer i, j, n
  real u(65,65), v(65,65), w(65,65), x(65,65), s, t
  s = 1.5
  t = 2.5
  do i = 1, n
    do j = 1, n
      u(i,j) = (w(j,i)) / s
      v(i,j) = (u(j,i)) + s * (t) * v(i,j+1)
    end do
  end do
end
