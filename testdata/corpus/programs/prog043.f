program gen9699
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), s, t, alpha
  s = 2.5
  t = 2.5
  alpha = 0.0
  do i = 1, n
    u(i) = s * s + u(i+1) * 3.0 * w(i+1)
    if (i .le. 36) then
      w(i) = (((0.25) / 2.0) + s) * (abs(t)) * w(i)
    end if
  end do
end
