program gen8105
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), w(65,65,65), s
  s = 0.75
  do i = 1, n
    do j = 1, n
      do k = 1, n
        u(i,j,k) = u(i+1,j,k) - (v(i,j,k)) + (v(i,j,k) - s) * u(i,j,k)
        u(i+1,j,k) = u(i,j,k) * v(i,j,k)
      end do
    end do
  end do
end
