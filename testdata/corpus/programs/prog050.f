program gen1257
  integer i, n
  parameter (n = 64)
  real u(65), v(65), s
  s = 0.75
  do i = 1, n
    u(i+1) = (sqrt(u(i+1)) - 1.0) / v(i)
    u(i) = u(i) + u(i) - s * sqrt(s) * u(i)
    v(i) = (sqrt(u(i)) / u(i)) * v(i+1)
  end do
end
