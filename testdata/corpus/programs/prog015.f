subroutine gen3610(n)
  integer i, n
  real u(65), v(65), s, t
  s = 1.5
  t = 0.75
  do i = 1, n
    u(i) = v(i+1) * 3.0 - 0.5 + (u(i)) / v(i)
  end do
end
