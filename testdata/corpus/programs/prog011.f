program gen6036
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), x(65), s, t, alpha
  s = 1.5
  t = 1.5
  alpha = 0.75
  do i = 1, n
    v(i) = (s) / w(i) - (u(i)) + u(i) * alpha
  end do
end
