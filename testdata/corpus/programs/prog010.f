subroutine gen5939(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), w(65,65,65), s, t
  s = 0.0
  t = 0.75
  do i = 1, n
    do j = 1, n
      do k = 1, n
        u(i+1,j,k) = sqrt(w(i,j,k)) / abs(w(i,j,k)) + s - u(i,j,k)
        w(i,j,k) = w(i,j,k+1) * v(i,j,k) / t + sqrt(v(i,j,k+1)) * w(i,j,k)
        t = t + v(i,j,k+1) + sqrt(t)
        w(i,j+1,k) = (u(i,j,k+1)) * s - u(i+1,j,k) + w(i,j,k) * v(i,j,k)
      end do
    end do
  end do
end
