program gen4863
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), s
  s = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        u(i,j,k+1) = u(i,j,k+1) + sqrt(v(i,j,k)) + 1.0
        if (k .le. 19) then
          s = s + (u(i,j,k) + 0.25) * v(i,j,k+1)
        else
          v(i,j,k+1) = v(i,j,k+1) * abs(s) * v(i,j+1,k)
        end if
      end do
    end do
  end do
end
