subroutine gen8677(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), s, t, alpha
  s = 0.75
  t = 0.0
  alpha = 1.5
  do i = 1, n
    do j = 1, n
      do k = 1, n
        v(i,j,k+1) = (t) * u(i,j,k)
      end do
    end do
  end do
end
