subroutine gen1653(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), w(65,65,65), s, t
  s = 1.5
  t = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        v(i,j,k) = ((u(i,j,k)) + 2.0 * w(i+1,j,k) + v(i,j,k)) * abs(u(i,j,k+1))
      end do
    end do
  end do
end
