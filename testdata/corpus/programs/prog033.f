program gen7906
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), w(65,65), x(65,65), s
  s = 0.75
  do i = 1, n
    do j = 1, n
      u(i,j) = (v(i,j) * u(i,j) * u(i,j)) - sqrt(x(i,j))
      s = s + (v(j,i) + x(i+1,j)) - s
      u(i,j) = s - (abs(x(i,j))) * s
    end do
  end do
end
