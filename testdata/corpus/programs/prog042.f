program gen4750
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), w(65,65,65), x(65,65,65), s, t, alpha
  s = 1.5
  t = 1.5
  alpha = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        v(i,j,k) = v(i,j,k) * (v(i,j,k)) / w(i,j,k) / alpha * alpha
      end do
    end do
  end do
end
