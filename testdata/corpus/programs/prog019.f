subroutine gen1023(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), w(65,65,65), s
  s = 2.5
  do i = 1, n
    do j = 1, n
      do k = 1, n
        u(i,j,k) = u(i,j,k) * s
      end do
    end do
  end do
end
