program gen5525
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), w(65,65,65), s
  s = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        u(i,j,k) = (v(i,j,k) / abs(w(i,j,k))) * (u(i,j,k)) + v(i,j,k) * v(i,j,k+1)
        s = s + v(i,j,k) + u(i,j,k) * w(i+1,j,k)
        w(i,j+1,k) = (abs(0.5)) * u(i,j,k) * w(i,j+1,k)
      end do
    end do
  end do
end
