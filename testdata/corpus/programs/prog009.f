subroutine gen7989(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), w(65,65,65), s, t
  s = 2.5
  t = 0.75
  do i = 1, n
    do j = 1, n
      do k = 1, n
        s = s + 2.0 * w(i,j,k) + v(i,j,k)
        t = t + abs(1.0)
        v(i,j,k+1) = w(i,j,k) - w(i,j,k+1) * abs(v(i,j,k))
      end do
    end do
  end do
end
