program gen3552
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), x(65), s, t
  s = 0.0
  t = 0.0
  do i = 1, n
    s = s + v(i)
    w(i+1) = x(i) / w(i)
  end do
end
