program gen4457
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), w(65,65), x(65,65), s, t
  s = 0.75
  t = 2.5
  do i = 1, n
    do j = 1, n
      t = t + s
      v(i+1,j) = x(i,j+1) - (x(i+1,j)) * v(j,i) / t
    end do
  end do
end
