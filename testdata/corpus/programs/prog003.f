program gen1850
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), w(65,65), x(65,65), s
  s = 0.75
  do i = 1, n
    do j = 1, n
      u(i+1,j) = (sqrt(w(i,j+1))) * 3.0 / u(i,j) * u(i,j)
    end do
  end do
end
