program gen2040
  integer i, j, n
  parameter (n = 64)
  real u(65,65), v(65,65), s
  s = 2.5
  do i = 1, n
    do j = 1, n
      s = s + v(j,i)
      v(i,j+1) = u(i,j+1) * sqrt(u(i,j)) + v(i,j)
      s = s + (v(i,j)) / v(i,j)
    end do
  end do
end
