program gen9022
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), x(65), s, t, alpha
  s = 0.75
  t = 0.0
  alpha = 2.5
  do i = 1, n
    v(i) = ((1.0) * v(i)) * sqrt(2.0) - w(i)
    x(i) = ((u(i)) + x(i+1)) / 3.0 * 3.0
    u(i) = w(i) * 3.0 * 0.25 / x(i) * sqrt(3.0)
    w(i) = v(i) - 3.0
  end do
end
