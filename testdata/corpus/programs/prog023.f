subroutine gen2820(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), w(65,65,65), s, t, alpha
  s = 0.75
  t = 1.5
  alpha = 0.75
  do i = 1, n
    do j = 1, n
      do k = 1, n
        w(i,j,k) = abs(0.5) - u(i+1,j,k) - (v(i,j,k) + 0.5) + abs(w(i+1,j,k))
        u(i,j,k) = w(i+1,j,k) * w(i,j,k)
        s = s + w(i,j,k)
        u(i,j,k) = (t) + 1.0
      end do
    end do
  end do
end
