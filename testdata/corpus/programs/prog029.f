program gen3069
  integer i, n
  parameter (n = 64)
  real u(65), v(65), s
  s = 2.5
  do i = 1, n
    s = s + (u(i+1)) / u(i)
  end do
end
