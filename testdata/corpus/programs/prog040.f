program gen2111
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), s
  s = 0.75
  do i = 1, n
    w(i) = s * sqrt(v(i)) * s * s + v(i)
    u(i+1) = (v(i+1)) * (sqrt(v(i))) + v(i+1) * v(i) * s
    if (i .le. 57) then
      v(i+1) = v(i) + v(i) * v(i) + u(i)
    end if
  end do
end
