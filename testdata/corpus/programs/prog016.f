subroutine gen9567(n)
  integer i, n
  real u(65), v(65), w(65), s, t, alpha
  s = 0.75
  t = 0.0
  alpha = 0.0
  do i = 1, n
    u(i+1) = t - w(i) * u(i+1) + sqrt(v(i)) + v(i)
    if (i .le. 57) then
      v(i+1) = (u(i+1)) / 1.0 * 0.5 * w(i)
    end if
  end do
end
