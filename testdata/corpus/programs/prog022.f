program gen7395
  integer i, n
  parameter (n = 64)
  real u(65), v(65), s, t
  s = 2.5
  t = 0.75
  do i = 1, n
    s = s + t / v(i) - u(i)
    v(i) = (v(i+1)) / s * abs(v(i)) + s
    u(i+1) = s / v(i+1)
  end do
end
