program gen7678
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), s, t, alpha
  s = 0.75
  t = 1.5
  alpha = 1.5
  do i = 1, n
    w(i+1) = v(i+1) / t
    u(i) = ((v(i) / alpha) - w(i)) - abs(u(i))
  end do
end
