program gen0626
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), s
  s = 1.5
  do i = 1, n
    s = s + s * w(i+1)
    u(i) = (s) * sqrt(u(i))
    if (i .le. 14) then
      u(i) = (v(i)) / w(i+1) * w(i+1) - sqrt(v(i))
    else
      w(i) = (u(i)) * v(i) / w(i) + s
    end if
  end do
end
