program gen9540
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), s, t
  s = 0.0
  t = 2.5
  do i = 1, n
    do j = 1, n
      do k = 1, n
        s = s + u(i+1,j,k) * s * 0.25
      end do
    end do
  end do
end
