subroutine gen6968(n)
  integer i, j, k, n
  real u(65,65,65), v(65,65,65), w(65,65,65), x(65,65,65), s, t, alpha
  s = 0.0
  t = 0.0
  alpha = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        t = t + (t) + alpha / v(i,j,k)
        x(i,j+1,k) = x(i,j,k+1) * (alpha) * sqrt(x(i,j,k))
        v(i,j,k) = (u(i,j,k)) * ((2.0 - abs(0.5)) * 2.0) * alpha
        s = s + t + 0.25 * u(i,j,k)
      end do
    end do
  end do
end
