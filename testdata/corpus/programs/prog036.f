program gen5050
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), s, t
  s = 2.5
  t = 1.5
  do i = 1, n
    do j = 1, n
      do k = 1, n
        s = s + sqrt(s) * t
        v(i,j,k) = s + sqrt(1.0) * u(i,j,k)
        t = t + u(i,j,k)
      end do
    end do
  end do
end
