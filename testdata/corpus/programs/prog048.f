subroutine gen2954(n)
  integer i, n
  real u(65), v(65), s, t
  s = 0.0
  t = 0.75
  do i = 1, n
    t = t + sqrt(v(i+1)) * u(i)
    v(i) = (u(i+1)) - v(i) - s - v(i) / t
  end do
end
