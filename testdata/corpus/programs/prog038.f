program gen0937
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), w(65,65,65), x(65,65,65), s, t, alpha
  s = 1.5
  t = 0.75
  alpha = 2.5
  do i = 1, n
    do j = 1, n
      do k = 1, n
        x(i,j,k) = (x(i,j,k) - sqrt(3.0)) - sqrt(w(i,j,k)) + sqrt(0.25) * sqrt(x(i+1,j,k))
      end do
    end do
  end do
end
