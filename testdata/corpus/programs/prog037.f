program gen7943
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), x(65), s, t
  s = 0.75
  t = 1.5
  do i = 1, n
    x(i) = (w(i)) * 3.0 + (v(i)) + (sqrt(x(i))) * v(i)
    w(i) = (2.0) - abs(t)
    v(i) = 0.25 + s
  end do
end
