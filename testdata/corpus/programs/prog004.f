subroutine gen0175(n)
  integer i, j, n
  real u(65,65), v(65,65), w(65,65), s, t
  s = 1.5
  t = 0.0
  do i = 1, n
    do j = 1, n
      u(j,i) = (w(i,j)) + 3.0 + (v(j,i)) + (abs(0.5)) + s
      t = t + (w(i+1,j)) * u(i,j+1)
      if (j .le. 60) then
        s = s + u(i,j)
      end if
    end do
  end do
end
