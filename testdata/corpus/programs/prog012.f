program gen1850
  integer i, n
  parameter (n = 64)
  real u(65), v(65), w(65), s, t
  s = 2.5
  t = 0.75
  do i = 1, n
    w(i+1) = v(i+1) * w(i) * 0.5
    u(i+1) = w(i+1) + 3.0
    v(i) = (u(i+1)) / w(i) * u(i)
    v(i+1) = abs(w(i+1)) * v(i+1) * u(i) / 1.0
  end do
end
