program gen9818
  integer i, j, k, n
  parameter (n = 64)
  real u(65,65,65), v(65,65,65), w(65,65,65), x(65,65,65), s, t, alpha
  s = 0.75
  t = 1.5
  alpha = 0.0
  do i = 1, n
    do j = 1, n
      do k = 1, n
        x(i,j+1,k) = (abs(t)) * u(i,j,k)
        w(i,j,k) = (abs(v(i,j,k))) + t
        v(i,j,k) = (sqrt(v(i,j+1,k)) / abs(w(i,j,k))) / abs(3.0) * w(i,j,k)
        w(i,j,k) = ((x(i,j,k)) * w(i,j,k)) + (v(i+1,j,k)) - v(i,j,k)
        if (k .le. 8) then
          v(i,j+1,k) = (3.0) * v(i,j,k)
        else
          x(i,j,k) = 0.25 * abs(2.0) + w(i,j,k)
        end if
      end do
    end do
  end do
end
