package perfpredict

import (
	"context"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/explain"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// ExplainReport diagnoses where a program's predicted cycles go: the
// per-nest critical paths, per-unit utilizations, the first-saturating
// resource, the memory-bound label, and the one-more-pipe what-if.
// Explanation is strictly read-only over the same placements Predict
// prices — running it never changes any prediction.
type ExplainReport = explain.Report

// ExplainNest is one loop nest's diagnosis within an ExplainReport.
type ExplainNest = explain.Nest

// ExplainPathStep is one instruction on a nest's binding critical path.
type ExplainPathStep = explain.PathStep

// ExplainWhatIf is the one-more-pipe experiment of an ExplainReport.
type ExplainWhatIf = explain.WhatIf

// ExplainOptions tune ExplainCtx. The zero value reproduces Explain.
type ExplainOptions struct {
	// Aggregate overrides the aggregation options; nil uses the same
	// defaults Predict uses, so the report's Cycles match Predict's
	// EvalAt at the same point.
	Aggregate *aggregate.Options
	// Nominal assigns values to unknowns when apportioning cycles
	// across nests and evaluating the what-if. Missing probabilities
	// default to 0.5 (as in Prediction.EvalAt), other missing unknowns
	// to 100 (as in Optimize's ranking).
	Nominal map[string]float64
	// SkipWhatIf suppresses the one-more-pipe experiment, saving one
	// extra whole-program prediction.
	SkipWhatIf bool
}

// Explain predicts a program and diagnoses the prediction: which unit
// saturates first, which dependence/resource chain binds each kernel,
// and what one more pipe of the bottleneck kind would buy.
func Explain(src string, target *Target) (*ExplainReport, error) {
	return ExplainCtx(context.Background(), src, target, ExplainOptions{})
}

// ExplainCtx is Explain under a context with options. ctx is checked
// before the (uninterruptible, milliseconds-scale) pipeline runs.
func ExplainCtx(ctx context.Context, src string, target *Target, opt ExplainOptions) (*ExplainReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	return explain.Program(prog, tbl, target, explain.Options{
		Aggregate:  opt.Aggregate,
		Nominal:    opt.Nominal,
		SkipWhatIf: opt.SkipWhatIf,
	})
}
