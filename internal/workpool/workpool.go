// Package workpool provides the bounded fan-out primitive behind the
// concurrent prediction pipeline: batch prediction, the transformation
// search's neighbor expansion and any other embarrassingly-indexed
// loop run through one shared implementation instead of ad-hoc
// goroutine spawns.
package workpool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) for every i in [0, n), using at most workers
// goroutines, and returns once all calls have completed. workers <= 0
// means runtime.GOMAXPROCS(0); a single worker (or n == 1) degenerates
// to a plain loop on the calling goroutine, so serial semantics are
// the zero-cost special case.
//
// Indices are handed out through an atomic counter, so load balances
// even when per-index costs are skewed. fn is responsible for
// synchronizing any shared state beyond index-disjoint writes.
func Run(n, workers int, fn func(i int)) {
	_ = RunCtx(context.Background(), n, workers, fn)
}

// RunCtx is Run with cooperative cancellation: workers check ctx
// before claiming each index and stop claiming once it is done, then
// RunCtx returns ctx.Err(). Calls already in flight run to completion
// — fn is never interrupted mid-index — so on a non-nil return some
// unpredictable subset of indices was processed and the caller decides
// what the partial results mean. A nil return guarantees every index
// ran.
func RunCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
