// Package workpool provides the bounded fan-out primitive behind the
// concurrent prediction pipeline: batch prediction, the transformation
// search's neighbor expansion and any other embarrassingly-indexed
// loop run through one shared implementation instead of ad-hoc
// goroutine spawns.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) for every i in [0, n), using at most workers
// goroutines, and returns once all calls have completed. workers <= 0
// means runtime.GOMAXPROCS(0); a single worker (or n == 1) degenerates
// to a plain loop on the calling goroutine, so serial semantics are
// the zero-cost special case.
//
// Indices are handed out through an atomic counter, so load balances
// even when per-index costs are skewed. fn is responsible for
// synchronizing any shared state beyond index-disjoint writes.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
