package workpool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCtxCompletesAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		if err := RunCtx(context.Background(), 100, workers, func(i int) { ran.Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 100 {
			t.Errorf("workers=%d: ran %d of 100", workers, ran.Load())
		}
	}
}

func TestRunCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := RunCtx(ctx, 100, workers, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: ran %d indices after pre-cancel", workers, ran.Load())
		}
	}
}

func TestRunCtxStopsClaimingAfterCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const cancelAt = 10
		err := RunCtx(ctx, 10000, workers, func(i int) {
			if ran.Add(1) == cancelAt {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// In-flight calls finish (at most one per worker after the
		// cancel), but no new indices are claimed.
		if got := ran.Load(); got > cancelAt+int64(workers) {
			t.Errorf("workers=%d: ran %d indices, want <= %d", workers, got, cancelAt+workers)
		}
	}
}
