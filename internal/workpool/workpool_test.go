package workpool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, workers := range []int{-1, 0, 1, 3, 8, 200} {
			hits := make([]atomic.Int32, n)
			Run(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestRunSerialOrder(t *testing.T) {
	// A single worker runs on the calling goroutine in index order.
	var seen []int
	Run(5, 1, func(i int) { seen = append(seen, i) })
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial order broken: %v", seen)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("visited %d of 5", len(seen))
	}
}
