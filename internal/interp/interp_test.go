package interp

import (
	"math"
	"testing"

	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

func runner(t *testing.T, src string, opt Options) *Runner {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return New(p, tbl, opt)
}

func TestScalarArithmetic(t *testing.T) {
	r := runner(t, `
program p
  real x, y
  integer i
  x = 2.0
  y = x**2 + 3.0 * x - 1.0
  i = 7 / 2
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Scalar("y"); got != 9 {
		t.Errorf("y = %v, want 9", got)
	}
	if got := r.Scalar("i"); got != 3 {
		t.Errorf("i = %v, want 3 (integer division)", got)
	}
}

func TestLoopAndArray(t *testing.T) {
	r := runner(t, `
program p
  integer i, n
  parameter (n = 10)
  real a(10), s
  do i = 1, n
    a(i) = real(i) * 2.0
  end do
  s = 0.0
  do i = 1, n
    s = s + a(i)
  end do
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Scalar("s"); got != 110 {
		t.Errorf("s = %v, want 110", got)
	}
	a := r.Array("a")
	if a[0] != 2 || a[9] != 20 {
		t.Errorf("a = %v", a)
	}
}

func TestColumnMajorIndexing(t *testing.T) {
	r := runner(t, `
program p
  integer i, j
  real a(3, 2)
  do j = 1, 2
    do i = 1, 3
      a(i, j) = real(i) * 10.0 + real(j)
    end do
  end do
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	a := r.Array("a")
	// Column major: a(1,1), a(2,1), a(3,1), a(1,2), ...
	want := []float64{11, 21, 31, 12, 22, 32}
	for i, w := range want {
		if a[i] != w {
			t.Errorf("a[%d] = %v, want %v", i, a[i], w)
		}
	}
}

func TestConditional(t *testing.T) {
	r := runner(t, `
program p
  integer i, n
  real pos, neg, a(20)
  do i = 1, 20
    if (mod(i, 2) .eq. 0) then
      pos = pos + 1.0
    else
      neg = neg + 1.0
    end if
  end do
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Scalar("pos") != 10 || r.Scalar("neg") != 10 {
		t.Errorf("pos=%v neg=%v", r.Scalar("pos"), r.Scalar("neg"))
	}
}

func TestLoopStepAndFinalValue(t *testing.T) {
	r := runner(t, `
program p
  integer i, count
  do i = 1, 10, 3
    count = count + 1
  end do
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Scalar("count") != 4 { // 1, 4, 7, 10
		t.Errorf("count = %v", r.Scalar("count"))
	}
	if r.Scalar("i") != 13 { // Fortran overrun value
		t.Errorf("i = %v, want 13", r.Scalar("i"))
	}
}

func TestSubroutineArgs(t *testing.T) {
	r := runner(t, `
subroutine scale(n, f)
  integer n, i
  real f, a(n)
  do i = 1, n
    a(i) = f
  end do
end
`, Options{})
	r.SetScalar("n", 5)
	r.SetScalar("f", 2.5)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	a := r.Array("a")
	if len(a) != 5 || a[4] != 2.5 {
		t.Errorf("a = %v", a)
	}
}

func TestJacobiValues(t *testing.T) {
	r := runner(t, `
program jacobi
  integer i, j, n
  parameter (n = 8)
  real a(8,8), b(8,8)
  do j = 1, n
    do i = 1, n
      b(i,j) = real(i + j)
    end do
  end do
  do j = 2, n - 1
    do i = 2, n - 1
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    end do
  end do
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	a := r.Array("a")
	// Interior average of i+j neighborhood = i+j.
	idx := (3-1)*8 + (4 - 1) // a(4,3) column-major flat: (j-1)*8+(i-1)
	if math.Abs(a[idx]-7) > 1e-12 {
		t.Errorf("a(4,3) = %v, want 7", a[idx])
	}
}

func TestRunawayGuard(t *testing.T) {
	r := runner(t, `
program p
  integer i
  real x
  do i = 1, 1000000
    x = x + 1.0
  end do
end
`, Options{MaxOps: 1000})
	if err := r.Run(); err == nil {
		t.Error("expected runaway-guard error")
	}
}

func TestIndexOutOfRange(t *testing.T) {
	r := runner(t, `
program p
  integer i
  real a(5)
  i = 9
  a(i) = 1.0
end
`, Options{})
	if err := r.Run(); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestTimedRunProducesCycles(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 50)
  real a(50), b(50)
  do i = 1, n
    b(i) = a(i) * 2.0 + 1.0
  end do
end
`
	timed := runner(t, src, Options{Machine: machine.NewPOWER1(), LowerOpt: lower.DefaultOptions()})
	if err := timed.Run(); err != nil {
		t.Fatal(err)
	}
	cyc := timed.Cycles()
	if cyc <= 0 {
		t.Fatal("no cycles recorded")
	}
	// 50 iterations of a ~4-op body + loop control: between 100 and
	// 1500 cycles is sane.
	if cyc < 100 || cyc > 1500 {
		t.Errorf("cycles = %d out of sane range", cyc)
	}
	// Untimed run gives 0.
	untimed := runner(t, src, Options{})
	if err := untimed.Run(); err != nil {
		t.Fatal(err)
	}
	if untimed.Cycles() != 0 {
		t.Error("untimed run recorded cycles")
	}
}

func TestTimingScalesWithTripCount(t *testing.T) {
	build := func(n int) int64 {
		src := `
subroutine p(n)
  integer i, n
  real a(n), b(n)
  do i = 1, n
    b(i) = a(i) * 2.0 + 1.0
  end do
end
`
		r := runner(t, src, Options{Machine: machine.NewPOWER1(), LowerOpt: lower.DefaultOptions()})
		r.SetScalar("n", float64(n))
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return r.Cycles()
	}
	c100, c200 := build(100), build(200)
	ratio := float64(c200) / float64(c100)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("cycles(200)/cycles(100) = %v, want ≈ 2", ratio)
	}
}

func TestRecurrenceSlowerThanParallelLoop(t *testing.T) {
	// a(i) = a(i-1) + b(i) serializes via true memory dependences; the
	// independent version pipelines. The interpreter's concretized
	// addresses must expose that difference.
	run := func(body string) int64 {
		src := `
program p
  integer i, n
  parameter (n = 200)
  real a(201), b(201)
  do i = 2, n
    ` + body + `
  end do
end
`
		r := runner(t, src, Options{Machine: machine.NewPOWER1(), LowerOpt: lower.DefaultOptions()})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return r.Cycles()
	}
	serial := run("a(i) = a(i-1) + b(i)")
	parallel := run("a(i) = b(i) + 1.0")
	if serial <= parallel {
		t.Errorf("recurrence (%d cycles) should be slower than parallel (%d)", serial, parallel)
	}
}

func TestWhileDynamicCondCost(t *testing.T) {
	// Conditional inside a loop charges compare+branch per iteration.
	src := `
program p
  integer i, n, k
  parameter (n = 100, k = 30)
  real t, f
  do i = 1, n
    if (i .le. k) then
      t = t + 1.0
    else
      f = f + 1.0
    end if
  end do
end
`
	r := runner(t, src, Options{Machine: machine.NewPOWER1(), LowerOpt: lower.DefaultOptions()})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Scalar("t") != 30 || r.Scalar("f") != 70 {
		t.Errorf("t=%v f=%v", r.Scalar("t"), r.Scalar("f"))
	}
	if r.Cycles() <= 0 {
		t.Error("no cycles")
	}
}

func TestScoreboardBounded(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 20000)
  real a(20000), b(20000)
  do i = 1, n
    b(i) = a(i) + 1.0
  end do
end
`
	r := runner(t, src, Options{Machine: machine.NewPOWER1(), LowerOpt: lower.DefaultOptions()})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Cycles() < 20000 {
		t.Errorf("cycles = %d, unexpectedly small", r.Cycles())
	}
}
