package interp

import (
	"math"
	"testing"
)

func TestSetArraySeedsInputs(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 4)
  real a(4), s
  s = 0.0
  do i = 1, n
    s = s + a(i)
  end do
end
`
	r := runner(t, src, Options{})
	r.SetArray("a", []float64{1, 2, 3, 4})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Scalar("s") != 10 {
		t.Errorf("s = %v", r.Scalar("s"))
	}
}

func TestAllConditionForms(t *testing.T) {
	src := `
program p
  integer i, hits
  real x
  x = 5.0
  do i = 1, 10
    if (i .lt. 3) hits = hits + 1
    if (i .le. 3) hits = hits + 1
    if (i .gt. 8) hits = hits + 1
    if (i .ge. 8) hits = hits + 1
    if (i .eq. 5) hits = hits + 1
    if (i .ne. 5) hits = hits + 1
    if (i .gt. 2 .and. i .lt. 5) hits = hits + 1
    if (i .lt. 2 .or. i .gt. 9) hits = hits + 1
    if (.not. (i .eq. 1)) hits = hits + 1
    if (x .gt. real(i)) hits = hits + 1
  end do
end
`
	r := runner(t, src, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// lt3:2 le3:3 gt8:2 ge8:3 eq5:1 ne5:9 and:2 or:2 not:9 x>i:4
	want := 2.0 + 3 + 2 + 3 + 1 + 9 + 2 + 2 + 9 + 4
	if got := r.Scalar("hits"); got != want {
		t.Errorf("hits = %v, want %v", got, want)
	}
}

func TestAllIntrinsics(t *testing.T) {
	src := `
program p
  real a, b, c, d, e, f, g, h, x
  integer m
  x = 4.0
  a = sqrt(x)
  b = abs(-3.0)
  c = min(2.0, 5.0)
  d = max(2.0, 5.0)
  m = mod(7, 3)
  e = exp(0.0)
  f = log(1.0)
  g = sin(0.0)
  h = cos(0.0)
end
`
	r := runner(t, src, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"a": 2, "b": 3, "c": 2, "d": 5, "m": 1,
		"e": 1, "f": 0, "g": 0, "h": 1,
	}
	for name, want := range checks {
		if got := r.Scalar(name); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestIntDivAndModErrors(t *testing.T) {
	r := runner(t, `
program p
  integer i
  real x
  i = 0
  x = mod(3.0, real(i))
end
`, Options{})
	if err := r.Run(); err == nil {
		t.Error("mod by zero accepted")
	}
	r2 := runner(t, `
program p
  integer i
  real x
  i = 0
  x = 1.0 / real(i)
end
`, Options{})
	if err := r2.Run(); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestPowerEval(t *testing.T) {
	r := runner(t, `
program p
  real x, y
  x = 2.0
  y = x**10 + 2.0**(-1)
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Scalar("y"); got != 1024.5 {
		t.Errorf("y = %v", got)
	}
}

func TestNegativeStepLoop(t *testing.T) {
	r := runner(t, `
program p
  integer i, count
  real a(10)
  do i = 10, 1, -2
    a(i) = real(i)
    count = count + 1
  end do
end
`, Options{})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Scalar("count") != 5 {
		t.Errorf("count = %v", r.Scalar("count"))
	}
	a := r.Array("a")
	if a[9] != 10 || a[1] != 2 || a[0] != 0 {
		t.Errorf("a = %v", a)
	}
}

func TestZeroStepRejected(t *testing.T) {
	r := runner(t, `
program p
  integer i, z
  real x
  z = 0
  do i = 1, 10, z
    x = x + 1.0
  end do
end
`, Options{})
	if err := r.Run(); err == nil {
		t.Error("zero step accepted")
	}
}
