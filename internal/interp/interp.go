// Package interp executes F-lite programs. It serves two roles in the
// reproduction:
//
//  1. a semantic reference — programs compute real values, so
//     transformation legality and kernel correctness can be checked;
//  2. a dynamic timing reference — each executed statement is lowered
//     once (imitating the back end, exactly as the predictor's
//     translation module does) and the resulting operations are
//     streamed, with concretized memory addresses and renamed
//     registers, into the in-order pipeline simulator. The resulting
//     cycle count substitutes for the paper's planned "actual run-time"
//     measurements on RS/6000 hardware.
package interp

import (
	"fmt"
	"math"
	"strconv"

	"perfpredict/internal/ir"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/pipesim"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// Options control a run.
type Options struct {
	// Machine enables timing: executed operations are fed to a pipeline
	// of this machine. Nil runs values-only.
	Machine *machine.Machine
	// LowerOpt configures the back-end imitation used for the trace.
	// The zero value means the full default back-end (matching what the
	// predictor assumes); to ablate individual optimizations, set at
	// least one flag.
	LowerOpt lower.Options
	// MaxOps aborts runaway executions (0 = default 50M statements).
	MaxOps int64
	// MemTrace, when set, receives every array element access (base
	// symbol, flat element index, write flag) — the address stream the
	// cache simulator consumes.
	MemTrace func(base string, index int64, write bool)
	// ScheduleWindow batches the dynamic trace into windows of this
	// many instructions, list-scheduling each before it reaches the
	// pipeline — emulating the code generator's unrolling plus
	// instruction scheduling across iterations (§2.2.2: "it might
	// unroll the loop in the code generation phase"). 0 uses the
	// default (48); 1 feeds strictly in order (ablation).
	ScheduleWindow int
}

// Runner executes one program unit.
type Runner struct {
	prog *source.Program
	tbl  *sem.Table
	opt  Options

	scalars map[string]float64
	arrays  map[string][]float64
	dims    map[string][]int64

	pipe    *pipesim.Pipeline
	trans   *lower.Translator
	lowered map[source.Stmt]*cachedSeg
	condLow map[source.Expr]*cachedSeg
	regBase ir.Reg
	steps   int64
	maxOps  int64
	// preDone tracks which cached segments already charged their
	// one-time (hoisted) cost.
	preDone map[*cachedSeg]bool
	// promo holds, per active segment, the dynamic register currently
	// carrying each promoted location's value (sum-reduction chains).
	promo  map[*cachedSeg]map[string]ir.Reg
	issues int64
	// window buffers renamed trace instructions for list scheduling
	// before issue.
	window  ir.Block
	winSize int
}

type cachedSeg struct {
	lw     *lower.Lowered
	stride ir.Reg
	// inAddr maps the static per-entry register of each promoted
	// location to its address; outAddr maps the static final-value
	// register. Used to chain promoted values across iterations.
	inAddr  map[ir.Reg]string
	outAddr map[ir.Reg]string
}

// New prepares a runner; dummy arguments and arrays with symbolic
// extents must be supplied via SetScalar / SetArray before Run.
func New(prog *source.Program, tbl *sem.Table, opt Options) *Runner {
	if opt.MaxOps == 0 {
		opt.MaxOps = 50_000_000
	}
	if opt.LowerOpt == (lower.Options{}) {
		opt.LowerOpt = lower.DefaultOptions()
	}
	if opt.ScheduleWindow == 0 {
		opt.ScheduleWindow = 48
	}
	r := &Runner{
		prog:    prog,
		tbl:     tbl,
		opt:     opt,
		winSize: opt.ScheduleWindow,
		scalars: map[string]float64{},
		arrays:  map[string][]float64{},
		dims:    map[string][]int64{},
		lowered: map[source.Stmt]*cachedSeg{},
		condLow: map[source.Expr]*cachedSeg{},
		preDone: map[*cachedSeg]bool{},
		promo:   map[*cachedSeg]map[string]ir.Reg{},
		maxOps:  opt.MaxOps,
	}
	if opt.Machine != nil {
		r.pipe = pipesim.NewPipeline(opt.Machine)
		r.trans = lower.New(tbl, opt.Machine, opt.LowerOpt)
	}
	return r
}

// SetScalar sets a scalar (or dummy argument) before Run.
func (r *Runner) SetScalar(name string, v float64) { r.scalars[name] = v }

// Scalar reads a scalar after Run.
func (r *Runner) Scalar(name string) float64 { return r.scalars[name] }

// SetArray installs array contents (row-major over the declared dims).
func (r *Runner) SetArray(name string, data []float64) { r.arrays[name] = data }

// Array returns array contents after Run.
func (r *Runner) Array(name string) []float64 { return r.arrays[name] }

// Cycles returns the simulated dynamic cycle count (0 when timing is
// off).
func (r *Runner) Cycles() int64 {
	if r.pipe == nil {
		return 0
	}
	if err := r.flushWindow(); err != nil {
		return -1
	}
	return r.pipe.Drain()
}

// emit buffers one renamed instruction; full windows are
// list-scheduled and issued.
func (r *Runner) emit(in ir.Instr) error {
	if r.winSize <= 1 {
		_, err := r.pipe.Issue(in)
		return err
	}
	r.window.Instrs = append(r.window.Instrs, in)
	if len(r.window.Instrs) >= r.winSize {
		return r.flushWindow()
	}
	return nil
}

// flushWindow schedules and issues the buffered trace window.
func (r *Runner) flushWindow() error {
	if len(r.window.Instrs) == 0 {
		return nil
	}
	sched := pipesim.Schedule(r.opt.Machine, &r.window)
	r.window.Instrs = r.window.Instrs[:0]
	for _, in := range sched.Instrs {
		if _, err := r.pipe.Issue(in); err != nil {
			return err
		}
	}
	return nil
}

// Run allocates arrays, seeds parameters, and executes the body.
func (r *Runner) Run() error {
	for _, s := range r.tbl.Symbols() {
		if s.IsConst {
			r.scalars[s.Name] = s.ConstVal
			continue
		}
		if !s.IsArray() {
			if _, ok := r.scalars[s.Name]; !ok {
				r.scalars[s.Name] = 0
			}
			continue
		}
		size := int64(1)
		dims := make([]int64, len(s.Dims))
		for i, d := range s.Dims {
			if d < 0 {
				// Symbolic extent: resolve from a scalar of the bound
				// expression if possible.
				v, err := r.evalInt(s.DimExprs[i])
				if err != nil {
					return fmt.Errorf("array %s: cannot resolve extent: %w", s.Name, err)
				}
				d = v
			}
			dims[i] = d
			size *= d
		}
		r.dims[s.Name] = dims
		if existing, ok := r.arrays[s.Name]; !ok || int64(len(existing)) < size {
			data := make([]float64, size)
			copy(data, existing)
			r.arrays[s.Name] = data
		}
	}
	return r.stmts(r.prog.Body, nil)
}

func (r *Runner) step() error {
	r.steps++
	if r.steps > r.maxOps {
		return fmt.Errorf("interp: exceeded %d statements (runaway loop?)", r.maxOps)
	}
	return nil
}

// stmts executes a statement list, charging straight-line runs to the
// pipeline as whole segments.
func (r *Runner) stmts(list []source.Stmt, loopVars []string) error {
	i := 0
	for i < len(list) {
		// Group a maximal straight-line run.
		j := i
		for j < len(list) && isStraight(list[j]) {
			j++
		}
		if j > i {
			if err := r.straightRun(list[i:j], loopVars); err != nil {
				return err
			}
			i = j
			continue
		}
		switch x := list[i].(type) {
		case *source.DoLoop:
			if err := r.doLoop(x, loopVars); err != nil {
				return err
			}
		case *source.IfStmt:
			if err := r.ifStmt(x, loopVars); err != nil {
				return err
			}
		case *source.ReturnStmt:
			return nil
		default:
			return fmt.Errorf("%s: cannot execute %T", list[i].StmtPos(), list[i])
		}
		i++
	}
	return nil
}

func isStraight(s source.Stmt) bool {
	switch s.(type) {
	case *source.Assign, *source.CallStmt, *source.ContinueStmt:
		return true
	default:
		return false
	}
}

// straightRun executes assignments for value and charges the lowered
// block for time.
func (r *Runner) straightRun(stmts []source.Stmt, loopVars []string) error {
	if err := r.step(); err != nil {
		return err
	}
	// Values.
	for _, s := range stmts {
		switch x := s.(type) {
		case *source.Assign:
			if err := r.execAssign(x); err != nil {
				return err
			}
		case *source.CallStmt:
			// External calls have no value semantics in the
			// interpreter; they cost linkage time only.
		}
	}
	// Timing.
	if r.pipe == nil {
		return nil
	}
	seg, err := r.segment(stmts[0], func() (*lower.Lowered, error) {
		return r.trans.Body(stmts, loopVars)
	})
	if err != nil {
		return err
	}
	return r.charge(seg)
}

// segment returns the cached lowering keyed by the first statement.
func (r *Runner) segment(key source.Stmt, build func() (*lower.Lowered, error)) (*cachedSeg, error) {
	if seg, ok := r.lowered[key]; ok {
		return seg, nil
	}
	lw, err := build()
	if err != nil {
		return nil, err
	}
	seg := &cachedSeg{lw: lw, stride: maxReg(lw) + 1,
		inAddr: map[ir.Reg]string{}, outAddr: map[ir.Reg]string{}}
	for _, pv := range lw.Promoted {
		if pv.InReg != ir.NoReg {
			seg.inAddr[pv.InReg] = pv.Addr
		}
		if pv.OutReg != ir.NoReg {
			seg.outAddr[pv.OutReg] = pv.Addr
		}
	}
	r.lowered[key] = seg
	return seg, nil
}

func maxReg(lw *lower.Lowered) ir.Reg {
	m := lw.Body.MaxReg()
	for _, b := range []*ir.Block{lw.Pre, lw.PerEntry, lw.Post} {
		if b == nil {
			continue
		}
		if p := b.MaxReg(); p > m {
			m = p
		}
	}
	if m < 0 {
		m = 0
	}
	return m
}

// charge feeds one dynamic instance of the segment to the pipeline,
// renaming registers and concretizing memory addresses.
func (r *Runner) charge(seg *cachedSeg) error {
	if !r.preDone[seg] {
		// The preheader shares the register numbering of the first body
		// instance, so hoisted values flow into their first uses.
		r.preDone[seg] = true
		if err := r.feed(seg.lw.Pre, seg, nil); err != nil {
			return err
		}
	}
	pm := r.promo[seg]
	if err := r.feed(seg.lw.Body, seg, seg.inAddr); err != nil {
		return err
	}
	// The final promoted values of this instance carry into the next
	// iteration's reads.
	if pm != nil {
		for outReg, addr := range seg.outAddr {
			pm[addr] = outReg + r.regBase
		}
	}
	r.regBase += seg.stride
	r.issues++
	if r.issues%4096 == 0 {
		r.pipe.Prune()
	}
	if r.regBase > 1<<30 {
		// Wrap the rename base: with in-order issue and a freshly
		// pruned scoreboard, old register numbers can no longer carry
		// stale timestamps that matter.
		r.pipe.Prune()
		r.regBase = 0
	}
	return nil
}

// feed streams one block instance into the pipeline; resolve maps
// static promoted registers to addresses whose current dynamic
// register is taken from the segment's promo map.
func (r *Runner) feed(b *ir.Block, seg *cachedSeg, resolve map[ir.Reg]string) error {
	pm := r.promo[seg]
	for _, in := range b.Instrs {
		c := in
		if len(in.Srcs) > 0 {
			c.Srcs = make([]ir.Reg, len(in.Srcs))
			for k, s := range in.Srcs {
				if s == ir.NoReg {
					c.Srcs[k] = ir.NoReg
					continue
				}
				if resolve != nil && pm != nil {
					if addr, ok := resolve[s]; ok {
						if dyn, ok2 := pm[addr]; ok2 {
							c.Srcs[k] = dyn
							continue
						}
					}
				}
				c.Srcs[k] = s + r.regBase
			}
		}
		if in.Dst != ir.NoReg {
			c.Dst = in.Dst + r.regBase
		}
		if in.Op.IsMem() && in.RefID != 0 {
			ref := seg.lw.Refs[in.RefID]
			if ref != nil {
				idx, err := r.flatIndex(ref)
				if err != nil {
					return err
				}
				c.Addr = ref.Name + "@" + strconv.FormatInt(idx, 10)
			}
		}
		if err := r.emit(c); err != nil {
			return err
		}
	}
	return nil
}

// doLoop executes a DO loop, charging loop-control overhead per
// iteration and the bound computation once.
func (r *Runner) doLoop(l *source.DoLoop, loopVars []string) error {
	lb, err := r.evalInt(l.Lb)
	if err != nil {
		return err
	}
	ub, err := r.evalInt(l.Ub)
	if err != nil {
		return err
	}
	step := int64(1)
	if l.Step != nil {
		if step, err = r.evalInt(l.Step); err != nil {
			return err
		}
		if step == 0 {
			return fmt.Errorf("%s: zero loop step", l.Pos)
		}
	}
	inner := append(append([]string{}, loopVars...), l.Var)
	ctl := lower.LoopOverhead()
	var segs []*cachedSeg
	if r.pipe != nil {
		var err error
		segs, err = r.bodySegments(l.Body, inner)
		if err != nil {
			return err
		}
		for _, seg := range segs {
			pm := map[string]ir.Reg{}
			r.promo[seg] = pm
			if len(seg.lw.PerEntry.Instrs) > 0 {
				if err := r.feed(seg.lw.PerEntry, seg, nil); err != nil {
					return err
				}
				for inReg, addr := range seg.inAddr {
					pm[addr] = inReg + r.regBase
				}
				r.regBase += seg.stride
			}
		}
	}
	v := lb
	for ; (step > 0 && v <= ub) || (step < 0 && v >= ub); v += step {
		if err := r.step(); err != nil {
			return err
		}
		r.scalars[l.Var] = float64(v)
		if err := r.stmts(l.Body, inner); err != nil {
			return err
		}
		if r.pipe != nil {
			if err := r.feedCtl(ctl); err != nil {
				return err
			}
		}
	}
	// Fortran semantics: after the loop the variable holds the first
	// value that failed the bound test.
	r.scalars[l.Var] = float64(v)
	// Flush promoted values back to memory (post stores) and retire the
	// activation's promo maps.
	for _, seg := range segs {
		if len(seg.lw.Post.Instrs) > 0 {
			if err := r.feed(seg.lw.Post, seg, seg.outAddr); err != nil {
				return err
			}
			r.regBase += seg.stride
		}
		delete(r.promo, seg)
	}
	return nil
}

// bodySegments lowers (or fetches) the straight-line runs directly in a
// loop body, so their per-entry and post blocks can be charged at
// activation boundaries.
func (r *Runner) bodySegments(list []source.Stmt, loopVars []string) ([]*cachedSeg, error) {
	var out []*cachedSeg
	i := 0
	for i < len(list) {
		j := i
		for j < len(list) && isStraight(list[j]) {
			j++
		}
		if j > i {
			run := list[i:j]
			seg, err := r.segment(run[0], func() (*lower.Lowered, error) {
				return r.trans.Body(run, loopVars)
			})
			if err != nil {
				return nil, err
			}
			out = append(out, seg)
			i = j
			continue
		}
		i++
	}
	return out, nil
}

func (r *Runner) feedCtl(ctl *ir.Block) error {
	for _, in := range ctl.Instrs {
		c := in
		c.Srcs = make([]ir.Reg, len(in.Srcs))
		for k, s := range in.Srcs {
			c.Srcs[k] = s + r.regBase
		}
		if in.Dst != ir.NoReg {
			c.Dst = in.Dst + r.regBase
		}
		if err := r.emit(c); err != nil {
			return err
		}
	}
	r.regBase += 8
	return nil
}

func (r *Runner) ifStmt(s *source.IfStmt, loopVars []string) error {
	if err := r.step(); err != nil {
		return err
	}
	taken, err := r.evalCond(s.Cond)
	if err != nil {
		return err
	}
	if r.pipe != nil {
		seg, err := r.condSegment(s.Cond, loopVars)
		if err != nil {
			return err
		}
		if err := r.charge(seg); err != nil {
			return err
		}
	}
	if taken {
		return r.stmts(s.Then, loopVars)
	}
	return r.stmts(s.Else, loopVars)
}

func (r *Runner) condSegment(cond source.Expr, loopVars []string) (*cachedSeg, error) {
	if seg, ok := r.condLow[cond]; ok {
		return seg, nil
	}
	lw, err := r.trans.Condition(cond, loopVars)
	if err != nil {
		return nil, err
	}
	seg := &cachedSeg{lw: lw, stride: maxReg(lw) + 1}
	r.condLow[cond] = seg
	return seg, nil
}

// execAssign updates interpreter state.
func (r *Runner) execAssign(a *source.Assign) error {
	v, err := r.eval(a.RHS)
	if err != nil {
		return err
	}
	switch lhs := a.LHS.(type) {
	case *source.VarRef:
		if sym := r.tbl.Lookup(lhs.Name); sym != nil && sym.Type == source.TypeInteger {
			v = math.Trunc(v)
		}
		r.scalars[lhs.Name] = v
		return nil
	case *source.ArrayRef:
		idx, err := r.flatIndex(lhs)
		if err != nil {
			return err
		}
		data := r.arrays[lhs.Name]
		if idx < 0 || idx >= int64(len(data)) {
			return fmt.Errorf("%s: index out of range for %s (flat %d, size %d)", lhs.Pos, lhs.Name, idx, len(data))
		}
		if sym := r.tbl.Lookup(lhs.Name); sym != nil && sym.Type == source.TypeInteger {
			v = math.Trunc(v)
		}
		if r.opt.MemTrace != nil {
			r.opt.MemTrace(lhs.Name, idx, true)
		}
		data[idx] = v
		return nil
	default:
		return fmt.Errorf("%s: bad assignment target", a.Pos)
	}
}

// flatIndex computes the 0-based flattened index of an array element
// using Fortran column-major order with 1-based subscripts.
func (r *Runner) flatIndex(ref *source.ArrayRef) (int64, error) {
	dims, ok := r.dims[ref.Name]
	if !ok {
		return 0, fmt.Errorf("%s: array %s has no resolved dimensions", ref.Pos, ref.Name)
	}
	var idx, stride int64 = 0, 1
	for d, ix := range ref.Idx {
		v, err := r.evalInt(ix)
		if err != nil {
			return 0, err
		}
		idx += (v - 1) * stride
		stride *= dims[d]
	}
	return idx, nil
}

func (r *Runner) evalInt(e source.Expr) (int64, error) {
	v, err := r.eval(e)
	if err != nil {
		return 0, err
	}
	return int64(v), nil
}

func (r *Runner) evalCond(e source.Expr) (bool, error) {
	switch x := e.(type) {
	case *source.BinExpr:
		if x.Kind.IsRelational() {
			l, err := r.eval(x.L)
			if err != nil {
				return false, err
			}
			rv, err := r.eval(x.R)
			if err != nil {
				return false, err
			}
			switch x.Kind {
			case source.BinLT:
				return l < rv, nil
			case source.BinLE:
				return l <= rv, nil
			case source.BinGT:
				return l > rv, nil
			case source.BinGE:
				return l >= rv, nil
			case source.BinEQ:
				return l == rv, nil
			case source.BinNE:
				return l != rv, nil
			}
		}
		if x.Kind == source.BinAnd {
			l, err := r.evalCond(x.L)
			if err != nil || !l {
				return false, err
			}
			return r.evalCond(x.R)
		}
		if x.Kind == source.BinOr {
			l, err := r.evalCond(x.L)
			if err != nil || l {
				return l, err
			}
			return r.evalCond(x.R)
		}
		return false, fmt.Errorf("%s: not a condition", x.Pos)
	case *source.UnExpr:
		if x.Neg {
			return false, fmt.Errorf("%s: arithmetic in condition", x.Pos)
		}
		v, err := r.evalCond(x.X)
		return !v, err
	default:
		return false, fmt.Errorf("condition %T is not logical", e)
	}
}

func (r *Runner) eval(e source.Expr) (float64, error) {
	switch x := e.(type) {
	case *source.NumLit:
		return x.Value, nil
	case *source.VarRef:
		if v, ok := r.scalars[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("%s: unbound scalar %q", x.Pos, x.Name)
	case *source.ArrayRef:
		idx, err := r.flatIndex(x)
		if err != nil {
			return 0, err
		}
		data := r.arrays[x.Name]
		if idx < 0 || idx >= int64(len(data)) {
			return 0, fmt.Errorf("%s: index out of range for %s (flat %d, size %d)", x.Pos, x.Name, idx, len(data))
		}
		if r.opt.MemTrace != nil {
			r.opt.MemTrace(x.Name, idx, false)
		}
		return data[idx], nil
	case *source.UnExpr:
		if !x.Neg {
			return 0, fmt.Errorf("%s: .not. in arithmetic", x.Pos)
		}
		v, err := r.eval(x.X)
		return -v, err
	case *source.IntrinsicCall:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, err := r.eval(a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return evalIntrinsic(x.Name, args)
	case *source.BinExpr:
		l, err := r.eval(x.L)
		if err != nil {
			return 0, err
		}
		rv, err := r.eval(x.R)
		if err != nil {
			return 0, err
		}
		switch x.Kind {
		case source.BinAdd:
			return l + rv, nil
		case source.BinSub:
			return l - rv, nil
		case source.BinMul:
			return l * rv, nil
		case source.BinDiv:
			if rv == 0 {
				return 0, fmt.Errorf("%s: division by zero", x.Pos)
			}
			if lt, e1 := r.tbl.TypeOf(x.L); e1 == nil && lt == source.TypeInteger {
				if rt, e2 := r.tbl.TypeOf(x.R); e2 == nil && rt == source.TypeInteger {
					return math.Trunc(l / rv), nil
				}
			}
			return l / rv, nil
		case source.BinPow:
			return math.Pow(l, rv), nil
		default:
			return 0, fmt.Errorf("%s: operator %v in arithmetic", x.Pos, x.Kind)
		}
	default:
		return 0, fmt.Errorf("cannot evaluate %T", e)
	}
}

func evalIntrinsic(name string, args []float64) (float64, error) {
	switch name {
	case "sqrt":
		return math.Sqrt(args[0]), nil
	case "abs":
		return math.Abs(args[0]), nil
	case "min":
		v := args[0]
		for _, a := range args[1:] {
			v = math.Min(v, a)
		}
		return v, nil
	case "max":
		v := args[0]
		for _, a := range args[1:] {
			v = math.Max(v, a)
		}
		return v, nil
	case "mod":
		if args[1] == 0 {
			return 0, fmt.Errorf("mod by zero")
		}
		return math.Mod(args[0], args[1]), nil
	case "int":
		return math.Trunc(args[0]), nil
	case "real", "dble":
		return args[0], nil
	case "exp":
		return math.Exp(args[0]), nil
	case "log":
		return math.Log(args[0]), nil
	case "sin":
		return math.Sin(args[0]), nil
	case "cos":
		return math.Cos(args[0]), nil
	default:
		return 0, fmt.Errorf("unknown intrinsic %q", name)
	}
}
