package interp

import (
	"testing"

	"perfpredict/internal/machine"
)

// The trace scheduling window (codegen-unrolling stand-in) must only
// ever help, and disabling it must reproduce strict in-order feeding.
func TestScheduleWindowAblation(t *testing.T) {
	src := `
program horner
  integer i, n
  parameter (n = 200)
  real x(200), y(200), c0, c1, c2
  c0 = 1.0
  c1 = 0.5
  c2 = 0.25
  do i = 1, n
    y(i) = (c2 * x(i) + c1) * x(i) + c0
  end do
end
`
	run := func(window int) int64 {
		r := runner(t, src, Options{Machine: machine.NewPOWER1(), ScheduleWindow: window})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return r.Cycles()
	}
	inOrder := run(1)
	windowed := run(48)
	if windowed > inOrder {
		t.Errorf("window made things slower: %d vs %d", windowed, inOrder)
	}
	// A serial per-iteration FP chain benefits measurably.
	if float64(inOrder)/float64(windowed) < 1.1 {
		t.Errorf("chain kernel should benefit from cross-iteration scheduling: %d vs %d", inOrder, windowed)
	}
}

// Values are independent of the window (timing-only mechanism).
func TestScheduleWindowValueIndependence(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 64)
  real s, a(64)
  do i = 1, n
    a(i) = real(i)
    s = s + a(i) * 2.0
  end do
end
`
	for _, w := range []int{1, 8, 48, 512} {
		r := runner(t, src, Options{Machine: machine.NewPOWER1(), ScheduleWindow: w})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if got := r.Scalar("s"); got != 64*65 {
			t.Errorf("window %d: s = %v, want %v", w, got, 64*65)
		}
	}
}

// The promoted-register chain must survive the window: a single-scalar
// reduction cannot run faster than its serial FMA chain allows.
func TestReductionChainVisibleThroughWindow(t *testing.T) {
	src := `
program dot
  integer i, n
  parameter (n = 400)
  real s, a(400), b(400)
  do i = 1, n
    s = s + a(i) * b(i)
  end do
end
`
	r := runner(t, src, Options{Machine: machine.NewPOWER1(), ScheduleWindow: 48})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// FMA latency 2 per chained accumulation: ≥ 2n cycles.
	if c := r.Cycles(); c < 2*400 {
		t.Errorf("reduction chain lost: %d cycles for n=400", c)
	}
}

// Independent accumulators (4-way split reduction) beat the serial one:
// the classic reason compilers unroll reductions with multiple partial
// sums.
func TestSplitReductionBeatsSerial(t *testing.T) {
	serial := `
program dot
  integer i, n
  parameter (n = 400)
  real s, a(400), b(400)
  do i = 1, n
    s = s + a(i) * b(i)
  end do
end
`
	split := `
program dot4
  integer i, n
  parameter (n = 400)
  real s1, s2, s3, s4, s, a(400), b(400)
  do i = 1, n, 4
    s1 = s1 + a(i) * b(i)
    s2 = s2 + a(i+1) * b(i+1)
    s3 = s3 + a(i+2) * b(i+2)
    s4 = s4 + a(i+3) * b(i+3)
  end do
  s = s1 + s2 + s3 + s4
end
`
	run := func(src string) int64 {
		r := runner(t, src, Options{Machine: machine.NewPOWER1()})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return r.Cycles()
	}
	a, b := run(serial), run(split)
	if b >= a {
		t.Errorf("split reduction (%d) should beat serial (%d)", b, a)
	}
}
