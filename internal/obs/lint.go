package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Exposition-format grammar, one line at a time: a metric line is a
// name, an optional {label="value",...} set, and a float value. The
// value regexp accepts what formatFloat emits plus the spec's NaN and
// signed infinities.
var (
	sampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)
	headRe = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
)

// Lint checks that data is well-formed Prometheus text exposition
// (version 0.0.4) as this package emits it: every line is a HELP or
// TYPE comment or a sample; every sample's family was introduced by a
// preceding TYPE; sample values parse as floats; and no family is
// declared twice. It returns the first violation found.
func Lint(data []byte) error {
	typed := map[string]string{}
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			if ln != len(lines)-1 {
				return fmt.Errorf("line %d: blank line inside exposition", ln+1)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := headRe.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if m[1] == "TYPE" {
				if _, dup := typed[m[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, m[2])
				}
				rest := strings.TrimSpace(m[3])
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", ln+1, rest)
				}
				typed[m[2]] = rest
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", ln+1, line)
		}
		if m[3] != "NaN" && !strings.HasSuffix(m[3], "Inf") {
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				return fmt.Errorf("line %d: bad value %q: %v", ln+1, m[3], err)
			}
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if _, ok := typed[family]; !ok {
			if _, ok := typed[m[1]]; !ok {
				return fmt.Errorf("line %d: sample %s precedes its TYPE", ln+1, m[1])
			}
		}
	}
	return nil
}
