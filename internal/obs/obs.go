// Package obs is a dependency-free observability kit for the
// prediction service: counters, latency histograms and gauge
// functions, exposed in the Prometheus text exposition format
// (version 0.0.4) over a plain http.Handler. No client library is
// vendored — the format is a handful of lines per metric and scraping
// it is the whole contract.
//
// The kit is deliberately small: integer counters (every event we
// count is discrete), cumulative-bucket histograms for latencies, and
// pull-style gauges that re-read existing atomic statistics (cache
// hit/miss totals, in-flight request counts) at scrape time instead
// of mirroring them into a second counter that could drift.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in registration
// order. All methods are safe for concurrent use; registration
// usually happens once at startup and scrapes/updates happen forever
// after.
type Registry struct {
	mu       sync.Mutex
	families []renderer
	names    map[string]bool
}

// renderer is one family's contribution to the exposition.
type renderer interface {
	render(w io.Writer)
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name string, f renderer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
	r.families = append(r.families, f)
}

// Counter registers a counter family with the given label dimensions
// (possibly none).
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	c := &CounterVec{name: name, help: help, labels: labelNames}
	r.register(name, c)
	return c
}

// Histogram registers a histogram family over the given cumulative
// bucket upper bounds (ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram buckets must ascend: " + name)
	}
	h := &HistogramVec{name: name, help: help, labels: labelNames, buckets: buckets}
	r.register(name, h)
	return h
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// — the hook for re-exporting statistics something else already
// maintains atomically.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFunc{name: name, help: help, fn: fn})
}

// WritePrometheus renders every registered family in the text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]renderer(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.render(w)
	}
}

// Handler serves WritePrometheus — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// CounterVec is a family of monotonically increasing integer counters
// keyed by label values.
type CounterVec struct {
	name   string
	help   string
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
	order    []string
}

// With returns the counter for the given label values, creating it at
// zero on first use. The value count must match the registered label
// names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d labels, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = map[string]*Counter{}
	}
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

func (v *CounterVec) render(w io.Writer) {
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*Counter, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	sort.Sort(&byKey{keys, func(i, j int) { children[i], children[j] = children[j], children[i] }})
	header(w, v.name, v.help, "counter")
	if len(keys) == 0 && len(v.labels) == 0 {
		// An unlabeled counter exists as soon as it is registered.
		fmt.Fprintf(w, "%s 0\n", v.name)
		return
	}
	for i, k := range keys {
		fmt.Fprintf(w, "%s%s %d\n", v.name, k, children[i].Value())
	}
}

// Counter is one monotonically increasing integer.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (must be >= 0 for the exposition to stay a counter).
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// HistogramVec is a family of cumulative-bucket histograms keyed by
// label values.
type HistogramVec struct {
	name    string
	help    string
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]*Histogram
	order    []string
}

// With returns the histogram for the given label values, creating it
// empty on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d labels, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = map[string]*Histogram{}
	}
	h, ok := v.children[key]
	if !ok {
		h = &Histogram{buckets: v.buckets, counts: make([]atomic.Int64, len(v.buckets)+1)}
		v.children[key] = h
		v.order = append(v.order, key)
	}
	return h
}

func (v *HistogramVec) render(w io.Writer) {
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	sort.Sort(&byKey{keys, func(i, j int) { children[i], children[j] = children[j], children[i] }})
	header(w, v.name, v.help, "histogram")
	for i, k := range keys {
		children[i].render(w, v.name, k)
	}
}

// Histogram is one cumulative-bucket latency distribution.
type Histogram struct {
	buckets []float64
	counts  []atomic.Int64 // per-bucket increments; last is +Inf
	sumBits atomic.Uint64  // float64 bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) render(w io.Writer, name, key string) {
	var cum int64
	for i, b := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(key, "le", formatFloat(b)), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(key, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, key, cum)
}

// gaugeFunc is a pull-style gauge.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

func (g *gaugeFunc) render(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// labelKey renders `{a="x",b="y"}` (or "" for no labels) — both the
// child-map key and the exposition fragment.
func labelKey(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel appends one more label pair to a rendered label set.
func mergeLabel(key, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if key == "" {
		return "{" + pair + "}"
	}
	return key[:len(key)-1] + "," + pair + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// byKey sorts keys and mirrors every swap into a sibling slice, so a
// family's children render in stable sorted-label order regardless of
// first-use order.
type byKey struct {
	keys []string
	swap func(i, j int)
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.swap(i, j)
}
