package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b bytes.Buffer
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("requests_total", "Requests by endpoint and code.", "endpoint", "code")
	reqs.With("predict", "200").Add(3)
	reqs.With("batch", "400").Inc()
	reqs.With("predict", "200").Inc()

	got := render(r)
	want := strings.Join([]string{
		"# HELP requests_total Requests by endpoint and code.",
		"# TYPE requests_total counter",
		`requests_total{endpoint="batch",code="400"} 1`,
		`requests_total{endpoint="predict",code="200"} 4`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestUnlabeledCounterRendersAtZero(t *testing.T) {
	r := NewRegistry()
	r.Counter("panics_total", "Recovered handler panics.")
	got := render(r)
	if !strings.Contains(got, "panics_total 0\n") {
		t.Errorf("zero unlabeled counter missing:\n%s", got)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	lat := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "endpoint")
	h := lat.With("predict")
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	got := render(r)
	for _, line := range []string{
		`latency_seconds_bucket{endpoint="predict",le="0.01"} 2`,
		`latency_seconds_bucket{endpoint="predict",le="0.1"} 3`,
		`latency_seconds_bucket{endpoint="predict",le="1"} 4`,
		`latency_seconds_bucket{endpoint="predict",le="+Inf"} 5`,
		`latency_seconds_sum{endpoint="predict"} 5.5600000000000005`,
		`latency_seconds_count{endpoint="predict"} 5`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestHistogramBoundaryGoesToItsBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", []float64{1}).With()
	h.Observe(1) // le="1" is inclusive
	got := render(r)
	if !strings.Contains(got, `h_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in its bucket:\n%s", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.GaugeFunc("cache_hits", "Hits.", func() float64 { v++; return v })
	if got := render(r); !strings.Contains(got, "cache_hits 42\n") {
		t.Errorf("first scrape:\n%s", got)
	}
	if got := render(r); !strings.Contains(got, "cache_hits 43\n") {
		t.Errorf("gauge not re-read at scrape time:\n%s", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("weird", "w.", "path")
	c.With("a\"b\\c\nd").Inc()
	got := render(r)
	want := `weird{path="a\"b\\c\nd"} 1`
	if !strings.Contains(got, want+"\n") {
		t.Errorf("got:\n%s\nwant line %q", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x.").With()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if err := Lint(rec.Body.Bytes()); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.", "k")
	h := r.Histogram("h_seconds", "h.", []float64{0.5}, "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.With("a").Inc()
				h.With("a").Observe(0.25)
				if i%100 == 0 {
					render(r)
				}
			}
		}()
	}
	wg.Wait()
	if c.With("a").Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.With("a").Value())
	}
	if h.With("a").Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.With("a").Count())
	}
	sum := math.Round(8000 * 0.25)
	if got := render(r); !strings.Contains(got, `h_seconds_sum{k="a"} 2000`) {
		t.Errorf("sum != %v:\n%s", sum, got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate metric name")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "d.")
	r.Counter("dup", "d.")
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "orphan 1\n",
		"bad comment":    "# HLEP x y\n",
		"bad sample":     "# TYPE x counter\nx{oops} 1\n",
		"bad value":      "# TYPE x counter\nx 1.2.3\n",
		"duplicate TYPE": "# TYPE x counter\n# TYPE x counter\n",
		"unknown type":   "# TYPE x countr\n",
	}
	for name, in := range cases {
		if Lint([]byte(in)) == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
}
