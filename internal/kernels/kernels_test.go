package kernels

import (
	"math"
	"testing"

	"perfpredict/internal/interp"
	"perfpredict/internal/machine"
)

func TestAllKernelsParseAndAnalyze(t *testing.T) {
	ks := All()
	if len(ks) < 12 {
		t.Fatalf("only %d kernels registered", len(ks))
	}
	for _, k := range ks {
		if _, _, err := k.Parse(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		if k.Desc == "" || k.Output == "" {
			t.Errorf("%s: missing metadata", k.Name)
		}
	}
}

func TestFigure7SetComplete(t *testing.T) {
	set := Figure7Set()
	if len(set) != 10 {
		t.Fatalf("Figure 7 set has %d entries", len(set))
	}
	for _, k := range set {
		if k.Name == "" {
			t.Fatal("missing kernel in Figure 7 set")
		}
		if !k.Figure7 {
			t.Errorf("%s not flagged Figure7", k.Name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if k, err := Get("jacobi"); err != nil || k.Name != "jacobi" {
		t.Errorf("Get(jacobi): %v %v", k, err)
	}
}

// All kernels must execute under the interpreter (values only) without
// errors, and with timing enabled produce positive cycle counts.
func TestAllKernelsExecute(t *testing.T) {
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			p, tbl, err := k.Parse()
			if err != nil {
				t.Fatal(err)
			}
			r := interp.New(p, tbl, interp.Options{Machine: machine.NewPOWER1()})
			for a, v := range k.Args {
				r.SetScalar(a, v)
			}
			if err := r.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if r.Cycles() <= 0 {
				t.Errorf("cycles = %d", r.Cycles())
			}
			if out := r.Array(k.Output); len(out) == 0 {
				t.Errorf("output array %q empty", k.Output)
			}
		})
	}
}

// matmul44 must compute exactly what plain matmul computes.
func TestMatmul44MatchesPlain(t *testing.T) {
	run := func(name string) []float64 {
		k, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, tbl, err := k.Parse()
		if err != nil {
			t.Fatal(err)
		}
		r := interp.New(p, tbl, interp.Options{})
		// Seed inputs deterministically.
		n := 32
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		for i := range a {
			a[i] = float64(i%17) * 0.5
			b[i] = float64(i%13) * 0.25
		}
		r.SetArray("a", a)
		r.SetArray("b", b)
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return r.Array("c")
	}
	plain := run("matmul")
	unrolled := run("matmul44")
	for i := range plain {
		if math.Abs(plain[i]-unrolled[i]) > 1e-9 {
			t.Fatalf("element %d: %v vs %v", i, plain[i], unrolled[i])
		}
	}
}

// The red-black kernel must only update points of one parity per
// sweep.
func TestRedBlackParity(t *testing.T) {
	k, _ := Get("redblack")
	p, tbl, err := k.Parse()
	if err != nil {
		t.Fatal(err)
	}
	r := interp.New(p, tbl, interp.Options{})
	n := 64
	f := make([]float64, n*n)
	for i := range f {
		f[i] = 4.0
	}
	r.SetArray("f", f)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	u := r.Array("u")
	touched := 0
	for j := 2; j <= n-1; j++ {
		for i := 2; i <= n-1; i++ {
			val := u[(j-1)*n+(i-1)]
			if val != 0 {
				touched++
				if (i+j)%2 != 0 {
					t.Fatalf("wrong parity updated at (%d,%d)", i, j)
				}
			}
		}
	}
	if touched == 0 {
		t.Fatal("no red points updated")
	}
}
