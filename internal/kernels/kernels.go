// Package kernels embeds the F-lite benchmark programs the evaluation
// uses. The paper's Figure 7 prices the innermost basic blocks of
// F1–F7 (kernels from the Purdue set in the HPF Benchmark suite), a
// matrix multiply "blocked and unrolled 4 times in both dimensions (a
// total of 16 FMA operations in the basic block)", the Jacobi
// innermost block, and the red-black relaxation innermost block. The
// original Purdue kernel text is not reproduced in the paper, so F1–F7
// here are representative dense-kernel inner blocks of the documented
// flavor (reductions, daxpy-like updates, Horner evaluation, norms,
// tridiagonal-style sweeps, stencils).
package kernels

import (
	"fmt"
	"sort"

	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// Kernel is one benchmark program.
type Kernel struct {
	Name string
	// Figure7 marks the kernels making up the paper's Figure 7 row set.
	Figure7 bool
	// Desc is a one-line description.
	Desc string
	// Src is the F-lite source.
	Src string
	// Args are default concrete values for dummy arguments.
	Args map[string]float64
	// Output names the array holding the result (for semantic checks).
	Output string
}

// Parse returns the analyzed program.
func (k Kernel) Parse() (*source.Program, *sem.Table, error) {
	p, err := source.Parse(k.Src)
	if err != nil {
		return nil, nil, fmt.Errorf("kernel %s: %w", k.Name, err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		return nil, nil, fmt.Errorf("kernel %s: %w", k.Name, err)
	}
	return p, tbl, nil
}

var registry = map[string]Kernel{}

func register(k Kernel) {
	registry[k.Name] = k
}

// Get returns a kernel by name.
func Get(name string) (Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
	}
	return k, nil
}

// All returns every kernel, sorted by name.
func All() []Kernel {
	out := make([]Kernel, 0, len(registry))
	for _, k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Figure7Set returns the kernels of the paper's Figure 7 in their
// published order: F1–F7, Matmul, Jacobi, RB.
func Figure7Set() []Kernel {
	names := []string{"f1", "f2", "f3", "f4", "f5", "f6", "f7", "matmul44", "jacobi", "redblack"}
	out := make([]Kernel, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

func init() {
	register(Kernel{
		Name: "f1", Figure7: true,
		Desc:   "dot product reduction",
		Output: "x",
		Src: `
program f1
  integer i, n
  parameter (n = 256)
  real x(1), a(256), b(256), s
  s = 0.0
  do i = 1, n
    s = s + a(i) * b(i)
  end do
  x(1) = s
end
`})
	register(Kernel{
		Name: "f2", Figure7: true,
		Desc:   "daxpy-style vector update",
		Output: "y",
		Src: `
program f2
  integer i, n
  parameter (n = 256)
  real alpha, x(256), y(256)
  alpha = 2.5
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
`})
	register(Kernel{
		Name: "f3", Figure7: true,
		Desc:   "Horner polynomial evaluation per element",
		Output: "y",
		Src: `
program f3
  integer i, n
  parameter (n = 256)
  real x(256), y(256), c0, c1, c2, c3
  c0 = 1.0
  c1 = 0.5
  c2 = 0.25
  c3 = 0.125
  do i = 1, n
    y(i) = ((c3 * x(i) + c2) * x(i) + c1) * x(i) + c0
  end do
end
`})
	register(Kernel{
		Name: "f4", Figure7: true,
		Desc:   "vector 2-norm accumulation",
		Output: "x",
		Src: `
program f4
  integer i, n
  parameter (n = 256)
  real x(1), a(256), s
  s = 0.0
  do i = 1, n
    s = s + a(i) * a(i)
  end do
  x(1) = sqrt(s)
end
`})
	register(Kernel{
		Name: "f5", Figure7: true,
		Desc:   "tridiagonal-style forward sweep",
		Output: "x",
		Src: `
program f5
  integer i, n
  parameter (n = 256)
  real x(256), d(256), l(256), b(256)
  do i = 1, n
    d(i) = 2.0 + real(i) / 256.0
    l(i) = 0.5
    b(i) = 1.0
  end do
  do i = 2, n
    x(i) = (b(i) - l(i) * x(i-1)) / d(i)
  end do
end
`})
	register(Kernel{
		Name: "f6", Figure7: true,
		Desc:   "three-point smoothing stencil",
		Output: "y",
		Src: `
program f6
  integer i, n
  parameter (n = 256)
  real x(256), y(256)
  do i = 2, n - 1
    y(i) = 0.25 * x(i-1) + 0.5 * x(i) + 0.25 * x(i+1)
  end do
end
`})
	register(Kernel{
		Name: "f7", Figure7: true,
		Desc:   "element-wise scaled add with abs",
		Output: "z",
		Src: `
program f7
  integer i, n
  parameter (n = 256)
  real x(256), y(256), z(256)
  do i = 1, n
    z(i) = abs(x(i)) * 2.0 + y(i) / 4.0
  end do
end
`})
	register(Kernel{
		Name: "matmul", Figure7: false,
		Desc:   "plain triple-nested matrix multiply",
		Output: "c",
		Src: `
program matmul
  integer i, j, k, n
  parameter (n = 32)
  real a(32,32), b(32,32), c(32,32)
  do i = 1, n
    do j = 1, n
      c(i,j) = 0.0
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`})
	register(Kernel{
		Name: "matmul44", Figure7: true,
		Desc:   "matrix multiply blocked and unrolled 4×4: 16 FMAs in the innermost block",
		Output: "c",
		Src: `
program matmul44
  integer i, j, k, n
  parameter (n = 32)
  real a(32,32), b(32,32), c(32,32)
  do i = 1, n, 4
    do j = 1, n, 4
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
        c(i+1,j) = c(i+1,j) + a(i+1,k) * b(k,j)
        c(i+2,j) = c(i+2,j) + a(i+2,k) * b(k,j)
        c(i+3,j) = c(i+3,j) + a(i+3,k) * b(k,j)
        c(i,j+1) = c(i,j+1) + a(i,k) * b(k,j+1)
        c(i+1,j+1) = c(i+1,j+1) + a(i+1,k) * b(k,j+1)
        c(i+2,j+1) = c(i+2,j+1) + a(i+2,k) * b(k,j+1)
        c(i+3,j+1) = c(i+3,j+1) + a(i+3,k) * b(k,j+1)
        c(i,j+2) = c(i,j+2) + a(i,k) * b(k,j+2)
        c(i+1,j+2) = c(i+1,j+2) + a(i+1,k) * b(k,j+2)
        c(i+2,j+2) = c(i+2,j+2) + a(i+2,k) * b(k,j+2)
        c(i+3,j+2) = c(i+3,j+2) + a(i+3,k) * b(k,j+2)
        c(i,j+3) = c(i,j+3) + a(i,k) * b(k,j+3)
        c(i+1,j+3) = c(i+1,j+3) + a(i+1,k) * b(k,j+3)
        c(i+2,j+3) = c(i+2,j+3) + a(i+2,k) * b(k,j+3)
        c(i+3,j+3) = c(i+3,j+3) + a(i+3,k) * b(k,j+3)
      end do
    end do
  end do
end
`})
	register(Kernel{
		Name: "jacobi", Figure7: true,
		Desc:   "Jacobi 5-point relaxation innermost block",
		Output: "a",
		Src: `
program jacobi
  integer i, j, n
  parameter (n = 64)
  real a(64,64), b(64,64)
  do j = 2, n - 1
    do i = 2, n - 1
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    end do
  end do
end
`})
	register(Kernel{
		Name: "redblack", Figure7: true,
		Desc:   "red-black Gauss-Seidel relaxation (red sweep)",
		Output: "u",
		Src: `
program redblack
  integer i, j, n
  parameter (n = 64)
  real u(64,64), f(64,64)
  do j = 2, n - 1
    do i = 2 + mod(j, 2), n - 1, 2
      u(i,j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1) + f(i,j))
    end do
  end do
end
`})
	register(Kernel{
		Name: "daxpy", Figure7: false,
		Desc:   "subroutine daxpy with symbolic n (whole-program prediction demo)",
		Output: "y",
		Args:   map[string]float64{"n": 1000, "alpha": 2.0},
		Src: `
subroutine daxpy(n, alpha)
  integer i, n
  real alpha, x(4000), y(4000)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
`})
	register(Kernel{
		Name: "condsplit", Figure7: false,
		Desc:   "loop-index conditional (§3.3.2 example)",
		Output: "t",
		Args:   map[string]float64{"n": 2000, "k": 700},
		Src: `
subroutine condsplit(n, k)
  integer i, n, k
  real t(2000), f(2000)
  do i = 1, n
    if (i .le. k) then
      t(i) = t(i) + 1.0
    else
      f(i) = f(i) / 3.0
    end if
  end do
end
`})
	register(Kernel{
		Name: "stencil_dist", Figure7: false,
		Desc:   "block-distributed 1-D stencil (communication model demo)",
		Output: "a",
		Src: `
program stencil_dist
  integer i, n
  parameter (n = 64)
  real a(64), b(64)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
`})
}
