package comm

import (
	"testing"

	"perfpredict/internal/symexpr"
)

func TestPatternStrings(t *testing.T) {
	for p, want := range map[Pattern]string{
		PatternLocal: "local", PatternShift: "shift",
		PatternGather: "gather", PatternRemap: "remap",
	} {
		if p.String() != want {
			t.Errorf("%d: %q", p, p.String())
		}
	}
}

// Scaled and negated subscripts exercise the affine extraction paths.
func TestScaledSubscripts(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 32)
  real a(64), b(70)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(2*i) = b(2*i - 1) + b(1 + i*2)
  end do
end
`
	tbl, assign, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, assign, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	// Same variable, same coefficient (2), constant offsets ∓1: shifts.
	for _, rc := range cost.Refs {
		if rc.Pattern != PatternShift {
			t.Errorf("%s: %v", rc.Ref, rc.Pattern)
		}
	}
	// Enumeration agrees on direction of magnitude.
	msgs, elems, err := EnumerateAssign(tbl, assign, loops, 4)
	if err != nil {
		t.Fatal(err)
	}
	if msgs == 0 || elems == 0 {
		t.Errorf("enumeration: %d msgs %d elems", msgs, elems)
	}
}

// Mismatched coefficients (a(i) reading b(2i)) defeat offset analysis:
// conservative gather.
func TestCoefficientMismatchGathers(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 32)
  real a(64), b(70)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i) = b(2*i)
  end do
end
`
	tbl, assign, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, assign, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Refs) != 1 || cost.Refs[0].Pattern != PatternGather {
		t.Errorf("refs: %+v", cost.Refs)
	}
	// The enumerator stays exact regardless.
	if _, _, err := EnumerateAssign(tbl, assign, loops, 4); err != nil {
		t.Fatal(err)
	}
}

// Symbolic-invariant offsets (i+k with unknown k) also gather.
func TestSymbolicOffsetGathers(t *testing.T) {
	src := `
subroutine p(k)
  integer i, k, n
  parameter (n = 32)
  real a(64), b(100)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i) = b(i + k)
  end do
end
`
	tbl, assign, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, assign, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Refs) != 1 || cost.Refs[0].Pattern != PatternGather {
		t.Errorf("refs: %+v", cost.Refs)
	}
}

// Negated loop subscript b(-i + 64): affine with coefficient −1 against
// +1 — reversal is a gather (misaligned sweep directions).
func TestReversedSweepGathers(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 32)
  real a(64), b(70)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i) = b(64 - i)
  end do
end
`
	tbl, assign, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, assign, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Refs) != 1 || cost.Refs[0].Pattern != PatternGather {
		t.Errorf("refs: %+v", cost.Refs)
	}
	msgs, elems, err := EnumerateAssign(tbl, assign, loops, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Most references are remote under reversal.
	if elems < 10 || msgs < 2 {
		t.Errorf("enumeration: %d msgs %d elems", msgs, elems)
	}
}

// EnumerateAssign evaluates division and negation in subscripts.
func TestEnumerateSubscriptArith(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 16)
  real a(64), b(70)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i * 4 / 2) = b(i * 2)
  end do
end
`
	tbl, assign, loops := setup(t, src)
	if _, _, err := EnumerateAssign(tbl, assign, loops, 4); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateErrors(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 8)
  real a(64), b(64)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i) = b(i + 1)
  end do
end
`
	tbl, assign, loops := setup(t, src)
	// Unbound variable in a subscript: rewrite the loop var name.
	loops[0].Var = "zz"
	if _, _, err := EnumerateAssign(tbl, assign, loops, 4); err == nil {
		t.Error("unbound subscript variable accepted")
	}
}

func TestZeroStepDefaultsToOne(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 8)
  real a(64), b(64)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i) = b(i+1)
  end do
end
`
	tbl, assign, loops := setup(t, src)
	loops[0].Step = 0
	if _, _, err := EnumerateAssign(tbl, assign, loops, 4); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicSymbolicMsgsScaleWithP(t *testing.T) {
	tbl, assign, loops := setup(t, stencilCyclic)
	cost, err := EstimateAssign(tbl, assign, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	m4 := cost.Msgs.MustEval(map[symexpr.Var]float64{PVar: 4})
	m8 := cost.Msgs.MustEval(map[symexpr.Var]float64{PVar: 8})
	if m8 != 2*m4 {
		t.Errorf("ring-shift messages should scale with P: %v vs %v", m4, m8)
	}
}
