// Package comm implements the communication cost model for
// distributed-memory targets sketched in §2 of Wang (PLDI 1994) and
// inherited from Wang–Houstis (1990) / Balasundaram et al. (1991):
// message-passing statements implied by HPF data distributions are
// counted statically and priced with a startup + per-element model,
// producing performance expressions symbolic in the problem size and
// the processor count. An exact enumerator provides the ground truth
// the model is validated against.
//
// The model assumes the owner-computes rule: the processor owning the
// left-hand-side element executes the assignment, fetching any remote
// right-hand-side operands.
package comm

import (
	"fmt"

	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// Model prices messages: Cost = Alpha·msgs + Beta·elems (cycles).
type Model struct {
	Alpha float64 // per-message startup
	Beta  float64 // per-element transfer
}

// DefaultModel uses early-1990s MPP constants (SP1-class): ≈500-cycle
// startup, ≈4 cycles per 8-byte element.
func DefaultModel() Model { return Model{Alpha: 500, Beta: 4} }

// Pattern classifies one remote reference.
type Pattern int

const (
	PatternLocal  Pattern = iota // no communication
	PatternShift                 // constant-offset boundary exchange
	PatternGather                // every element remote
	PatternRemap                 // distribution mismatch: full remap
)

func (p Pattern) String() string {
	switch p {
	case PatternLocal:
		return "local"
	case PatternShift:
		return "shift"
	case PatternGather:
		return "gather"
	default:
		return "remap"
	}
}

// PVar is the symbolic processor count.
const PVar = symexpr.Var("P")

// RefCost is one right-hand-side reference's contribution.
type RefCost struct {
	Ref     string
	Pattern Pattern
	Msgs    symexpr.Poly
	Elems   symexpr.Poly
}

// Cost aggregates a statement's communication.
type Cost struct {
	Refs  []RefCost
	Msgs  symexpr.Poly
	Elems symexpr.Poly
}

// Cycles prices the cost under the model.
func (m Model) Cycles(c Cost) symexpr.Poly {
	return c.Msgs.Scale(m.Alpha).Add(c.Elems.Scale(m.Beta))
}

// Loop describes one nest level with its symbolic trip count.
type Loop struct {
	Var   string
	Trips symexpr.Poly
}

// EstimateAssign classifies each distributed right-hand-side reference
// of the assignment against the (owner-computes) left-hand side and
// returns symbolic message/element counts. Trip counts of the
// enclosing loops parameterize the expressions; the processor count is
// the symbolic variable P.
func EstimateAssign(tbl *sem.Table, a *source.Assign, loops []Loop) (Cost, error) {
	lhs, ok := a.LHS.(*source.ArrayRef)
	if !ok {
		// Scalar LHS: replicated; distributed RHS references gather to
		// every processor.
		lhs = nil
	}
	var lhsSym *sem.Symbol
	if lhs != nil {
		lhsSym = tbl.Lookup(lhs.Name)
	}
	loopVars := map[string]bool{}
	tripOf := map[string]symexpr.Poly{}
	for _, l := range loops {
		loopVars[l.Var] = true
		tripOf[l.Var] = l.Trips
	}

	out := Cost{Msgs: symexpr.Zero(), Elems: symexpr.Zero()}
	var rhsRefs []*source.ArrayRef
	collectRefs(a.RHS, &rhsRefs)
	for _, r := range rhsRefs {
		sym := tbl.Lookup(r.Name)
		if sym == nil || sym.Dist == nil {
			continue // replicated array: local
		}
		rc, err := classify(tbl, lhs, lhsSym, r, sym, loopVars, tripOf)
		if err != nil {
			return Cost{}, err
		}
		out.Refs = append(out.Refs, rc)
		out.Msgs = out.Msgs.Add(rc.Msgs)
		out.Elems = out.Elems.Add(rc.Elems)
	}
	return out, nil
}

// classify determines the pattern of one distributed RHS reference.
func classify(tbl *sem.Table, lhs *source.ArrayRef, lhsSym *sem.Symbol, r *source.ArrayRef, rSym *sem.Symbol, loopVars map[string]bool, tripOf map[string]symexpr.Poly) (RefCost, error) {
	rc := RefCost{Ref: source.ExprString(r)}
	rDim := distDim(rSym)
	if rDim < 0 {
		rc.Pattern = PatternLocal
		rc.Msgs, rc.Elems = symexpr.Zero(), symexpr.Zero()
		return rc, nil
	}

	// Sweep size: product of trips of loop variables appearing in the
	// reference (elements touched per full nest execution).
	sweep := symexpr.Const(1)
	seen := map[string]bool{}
	for _, ix := range r.Idx {
		v, _, ok := affineVar(tbl, ix, loopVars)
		if ok && v != "" && !seen[v] {
			seen[v] = true
			sweep = sweep.Mul(tripOf[v])
		}
	}
	// Sweep size of the non-distributed dimensions only (per-boundary
	// halo width multiplier for shifts).
	cross := symexpr.Const(1)
	for d, ix := range r.Idx {
		if d == rDim {
			continue
		}
		v, _, ok := affineVar(tbl, ix, loopVars)
		if ok && v != "" {
			cross = cross.Mul(tripOf[v])
		}
	}

	gather := func() RefCost {
		rc.Pattern = PatternGather
		rc.Elems = sweep
		rc.Msgs = sweep
		return rc
	}

	if lhs == nil || lhsSym == nil || lhsSym.Dist == nil {
		// Replicated LHS reading a distributed array: broadcast-gather.
		return gather(), nil
	}
	lDim := distDim(lhsSym)
	if lDim < 0 {
		return gather(), nil
	}
	lPat := lhsSym.Dist.Pattern[lDim]
	rPat := rSym.Dist.Pattern[rDim]

	// Alignment: the distributed dims must be driven by the same loop
	// variable with equal coefficients for offset analysis.
	lv, lc, lok := affineVar(tbl, lhs.Idx[lDim], loopVars)
	rv, rcoef, rok := affineVar(tbl, r.Idx[rDim], loopVars)
	if !lok || !rok || lv == "" || rv == "" || lv != rv || lc != rcoef {
		if lPat != rPat {
			rc.Pattern = PatternRemap
			rc.Elems = sweep
			rc.Msgs = symexpr.NewVar(PVar).Mul(symexpr.NewVar(PVar))
			return rc, nil
		}
		return gather(), nil
	}

	// Constant offset between the aligned subscripts.
	lOff, lcok := constPart(tbl, lhs.Idx[lDim], loopVars)
	rOff, rcok := constPart(tbl, r.Idx[rDim], loopVars)
	if !lcok || !rcok {
		return gather(), nil
	}
	delta := rOff - lOff

	if lPat != rPat {
		rc.Pattern = PatternRemap
		rc.Elems = sweep
		rc.Msgs = symexpr.NewVar(PVar).Mul(symexpr.NewVar(PVar))
		return rc, nil
	}

	switch lPat {
	case "block":
		if delta == 0 {
			rc.Pattern = PatternLocal
			rc.Msgs, rc.Elems = symexpr.Zero(), symexpr.Zero()
			return rc, nil
		}
		// Boundary exchange: each of the P−1 internal boundaries moves
		// |delta| elements per unit of the cross dimensions.
		rc.Pattern = PatternShift
		pm1 := symexpr.NewVar(PVar).AddConst(-1)
		rc.Msgs = pm1
		rc.Elems = pm1.Scale(absF(float64(delta))).Mul(cross)
		return rc, nil
	case "cyclic":
		if delta == 0 {
			rc.Pattern = PatternLocal
			rc.Msgs, rc.Elems = symexpr.Zero(), symexpr.Zero()
			return rc, nil
		}
		// Under cyclic distribution an offset is local exactly when it
		// is a multiple of P — unknowable symbolically; the static
		// model charges the all-remote ring shift (every element moves,
		// aggregated into one message per processor), with the
		// delta-multiple-of-P refinement (CyclicLocalDelta) applied
		// when P becomes known.
		rc.Pattern = PatternGather
		rc.Elems = sweep
		rc.Msgs = symexpr.NewVar(PVar)
		return rc, nil
	default:
		return gather(), nil
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// distDim returns the (single) distributed dimension of a symbol, or
// −1.
func distDim(sym *sem.Symbol) int {
	if sym == nil || sym.Dist == nil {
		return -1
	}
	for d, p := range sym.Dist.Pattern {
		if p == "block" || p == "cyclic" {
			return d
		}
	}
	return -1
}

// CyclicLocalDelta reports whether a constant offset is local under a
// cyclic distribution on P processors (the refinement the paper's
// run-time tests would check).
func CyclicLocalDelta(delta int64, p int64) bool {
	if p <= 0 {
		return false
	}
	return delta%p == 0
}

// --- exact enumeration (ground truth) ------------------------------

// ConcreteLoop is a loop with concrete bounds for enumeration.
type ConcreteLoop struct {
	Var          string
	Lb, Ub, Step int64
}

// EnumerateAssign walks the whole iteration space and counts, under
// owner-computes, the remote element fetches the assignment performs:
// msgs is the number of distinct (source, destination) processor pairs
// with traffic (aggregated messaging), elems the number of distinct
// (destination, array, element) fetches (halo elements are fetched
// once).
func EnumerateAssign(tbl *sem.Table, a *source.Assign, loops []ConcreteLoop, procs int) (msgs, elems int64, err error) {
	lhs, isArr := a.LHS.(*source.ArrayRef)
	if !isArr {
		return 0, 0, fmt.Errorf("comm: enumeration requires an array LHS")
	}
	var rhsRefs []*source.ArrayRef
	collectRefs(a.RHS, &rhsRefs)

	env := map[string]int64{}
	// Constants from the table.
	for _, s := range tbl.Symbols() {
		if s.IsConst {
			env[s.Name] = int64(s.ConstVal)
		}
	}
	pairSeen := map[[2]int64]bool{}
	elemSeen := map[string]bool{}

	var walk func(level int) error
	walk = func(level int) error {
		if level == len(loops) {
			owner, err := ownerOf(tbl, lhs, env, procs)
			if err != nil {
				return err
			}
			for _, r := range rhsRefs {
				sym := tbl.Lookup(r.Name)
				if sym == nil || sym.Dist == nil {
					continue
				}
				src, err := ownerOf(tbl, r, env, procs)
				if err != nil {
					return err
				}
				if src == owner || src < 0 || owner < 0 {
					continue
				}
				flat, err := flatIndex(tbl, r, env)
				if err != nil {
					return err
				}
				key := fmt.Sprintf("%d|%s|%d", owner, r.Name, flat)
				if !elemSeen[key] {
					elemSeen[key] = true
					elems++
				}
				pair := [2]int64{src, owner}
				if !pairSeen[pair] {
					pairSeen[pair] = true
					msgs++
				}
			}
			return nil
		}
		l := loops[level]
		step := l.Step
		if step == 0 {
			step = 1
		}
		for v := l.Lb; (step > 0 && v <= l.Ub) || (step < 0 && v >= l.Ub); v += step {
			env[l.Var] = v
			if err := walk(level + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return 0, 0, err
	}
	return msgs, elems, nil
}

// ownerOf computes the owning processor of an array element under its
// distribution (−1 when the array is replicated).
func ownerOf(tbl *sem.Table, r *source.ArrayRef, env map[string]int64, procs int) (int64, error) {
	sym := tbl.Lookup(r.Name)
	if sym == nil || sym.Dist == nil {
		return -1, nil
	}
	d := distDim(sym)
	if d < 0 {
		return -1, nil
	}
	idx, err := evalInt(tbl, r.Idx[d], env)
	if err != nil {
		return 0, err
	}
	extent := sym.Dims[d]
	if extent <= 0 {
		return 0, fmt.Errorf("comm: array %s has unresolved extent", r.Name)
	}
	p := int64(procs)
	switch sym.Dist.Pattern[d] {
	case "block":
		blockSize := (extent + p - 1) / p
		return (idx - 1) / blockSize, nil
	case "cyclic":
		return (idx - 1) % p, nil
	default:
		return -1, nil
	}
}

func flatIndex(tbl *sem.Table, r *source.ArrayRef, env map[string]int64) (int64, error) {
	sym := tbl.Lookup(r.Name)
	var idx, stride int64 = 0, 1
	for d, ix := range r.Idx {
		v, err := evalInt(tbl, ix, env)
		if err != nil {
			return 0, err
		}
		idx += (v - 1) * stride
		if d < len(sym.Dims) && sym.Dims[d] > 0 {
			stride *= sym.Dims[d]
		}
	}
	return idx, nil
}

func evalInt(tbl *sem.Table, e source.Expr, env map[string]int64) (int64, error) {
	if c, ok := tbl.IntConst(e); ok {
		return c, nil
	}
	switch x := e.(type) {
	case *source.VarRef:
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("comm: unbound variable %q", x.Name)
	case *source.NumLit:
		return int64(x.Value), nil
	case *source.UnExpr:
		if !x.Neg {
			return 0, fmt.Errorf("comm: cannot evaluate .not.")
		}
		v, err := evalInt(tbl, x.X, env)
		return -v, err
	case *source.BinExpr:
		l, err := evalInt(tbl, x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := evalInt(tbl, x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Kind {
		case source.BinAdd:
			return l + r, nil
		case source.BinSub:
			return l - r, nil
		case source.BinMul:
			return l * r, nil
		case source.BinDiv:
			if r == 0 {
				return 0, fmt.Errorf("comm: division by zero")
			}
			return l / r, nil
		default:
			return 0, fmt.Errorf("comm: operator %v in subscript", x.Kind)
		}
	default:
		return 0, fmt.Errorf("comm: cannot evaluate %T", e)
	}
}

// affineVar extracts (var, coeff) from coeff·v + const subscripts.
func affineVar(tbl *sem.Table, e source.Expr, loopVars map[string]bool) (string, int64, bool) {
	if _, ok := tbl.FoldConst(e); ok {
		return "", 0, true
	}
	switch x := e.(type) {
	case *source.VarRef:
		if loopVars[x.Name] {
			return x.Name, 1, true
		}
		return "", 0, true
	case *source.UnExpr:
		if !x.Neg {
			return "", 0, false
		}
		v, c, ok := affineVar(tbl, x.X, loopVars)
		return v, -c, ok
	case *source.BinExpr:
		switch x.Kind {
		case source.BinAdd, source.BinSub:
			lv, lc, lok := affineVar(tbl, x.L, loopVars)
			rv, rc, rok := affineVar(tbl, x.R, loopVars)
			if !lok || !rok {
				return "", 0, false
			}
			if x.Kind == source.BinSub {
				rc = -rc
			}
			switch {
			case lv == "":
				return rv, rc, true
			case rv == "":
				return lv, lc, true
			case lv == rv:
				return lv, lc + rc, true
			default:
				return "", 0, false
			}
		case source.BinMul:
			if c, ok := tbl.IntConst(x.L); ok {
				v, cc, vok := affineVar(tbl, x.R, loopVars)
				return v, c * cc, vok
			}
			if c, ok := tbl.IntConst(x.R); ok {
				v, cc, vok := affineVar(tbl, x.L, loopVars)
				return v, c * cc, vok
			}
			return "", 0, false
		default:
			return "", 0, false
		}
	default:
		return "", 0, false
	}
}

// constPart extracts the constant offset of an affine subscript.
func constPart(tbl *sem.Table, e source.Expr, loopVars map[string]bool) (int64, bool) {
	if c, ok := tbl.IntConst(e); ok {
		return c, true
	}
	switch x := e.(type) {
	case *source.VarRef:
		if loopVars[x.Name] {
			return 0, true
		}
		return 0, false
	case *source.UnExpr:
		if !x.Neg {
			return 0, false
		}
		c, ok := constPart(tbl, x.X, loopVars)
		return -c, ok
	case *source.BinExpr:
		switch x.Kind {
		case source.BinAdd, source.BinSub:
			l, lok := constPart(tbl, x.L, loopVars)
			r, rok := constPart(tbl, x.R, loopVars)
			if !lok || !rok {
				return 0, false
			}
			if x.Kind == source.BinSub {
				r = -r
			}
			return l + r, true
		case source.BinMul:
			if c, ok := tbl.IntConst(x.L); ok {
				r, rok := constPart(tbl, x.R, loopVars)
				return c * r, rok
			}
			if c, ok := tbl.IntConst(x.R); ok {
				l, lok := constPart(tbl, x.L, loopVars)
				return c * l, lok
			}
			return 0, false
		default:
			return 0, false
		}
	default:
		return 0, false
	}
}

func collectRefs(e source.Expr, out *[]*source.ArrayRef) {
	switch x := e.(type) {
	case *source.ArrayRef:
		*out = append(*out, x)
		for _, ix := range x.Idx {
			collectRefs(ix, out)
		}
	case *source.BinExpr:
		collectRefs(x.L, out)
		collectRefs(x.R, out)
	case *source.UnExpr:
		collectRefs(x.X, out)
	case *source.IntrinsicCall:
		for _, a := range x.Args {
			collectRefs(a, out)
		}
	}
}
