package comm

import (
	"testing"

	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

func setup(t *testing.T, src string) (*sem.Table, *source.Assign, []ConcreteLoop) {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	var loops []ConcreteLoop
	body := p.Body
	for len(body) == 1 {
		l, ok := body[0].(*source.DoLoop)
		if !ok {
			break
		}
		lb, _ := tbl.IntConst(l.Lb)
		ub, _ := tbl.IntConst(l.Ub)
		step := int64(1)
		if l.Step != nil {
			step, _ = tbl.IntConst(l.Step)
		}
		loops = append(loops, ConcreteLoop{Var: l.Var, Lb: lb, Ub: ub, Step: step})
		body = l.Body
	}
	a, ok := body[0].(*source.Assign)
	if !ok {
		t.Fatalf("innermost stmt is %T", body[0])
	}
	return tbl, a, loops
}

func symbolicLoops(loops []ConcreteLoop) []Loop {
	out := make([]Loop, len(loops))
	for i, l := range loops {
		out[i] = Loop{Var: l.Var, Trips: symexpr.Const(float64(l.Ub - l.Lb + 1))}
	}
	return out
}

const stencilBlock = `
program stencil
  integer i, n
  parameter (n = 64)
  real a(64), b(64)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
`

func TestBlockStencilIsShift(t *testing.T) {
	tbl, a, loops := setup(t, stencilBlock)
	cost, err := EstimateAssign(tbl, a, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Refs) != 2 {
		t.Fatalf("refs: %+v", cost.Refs)
	}
	for _, rc := range cost.Refs {
		if rc.Pattern != PatternShift {
			t.Errorf("%s pattern = %v, want shift", rc.Ref, rc.Pattern)
		}
	}
	// Elems at P=4: two shifts of 1 element per internal boundary = 2·3.
	elems := cost.Elems.MustEval(map[symexpr.Var]float64{PVar: 4})
	if elems != 6 {
		t.Errorf("elems at P=4: %v, want 6", elems)
	}
}

func TestBlockStencilVsEnumeration(t *testing.T) {
	tbl, a, loops := setup(t, stencilBlock)
	cost, err := EstimateAssign(tbl, a, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 8} {
		elems := cost.Elems.MustEval(map[symexpr.Var]float64{PVar: float64(procs)})
		msgs, actualElems, err := EnumerateAssign(tbl, a, loops, procs)
		if err != nil {
			t.Fatal(err)
		}
		if float64(actualElems) != elems {
			t.Errorf("P=%d: model %v vs enumerated %d elems", procs, elems, actualElems)
		}
		// Aggregated messages: two neighbors per boundary... each
		// internal boundary has traffic in both directions? b(i-1) flows
		// forward, b(i+1) backward: 2(P−1) pairs.
		if msgs != int64(2*(procs-1)) {
			t.Errorf("P=%d: %d message pairs, want %d", procs, msgs, 2*(procs-1))
		}
	}
}

const stencilCyclic = `
program stencil
  integer i, n
  parameter (n = 64)
  real a(64), b(64)
!hpf$ distribute a(cyclic)
!hpf$ distribute b(cyclic)
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
`

func TestCyclicStencilIsGather(t *testing.T) {
	tbl, a, loops := setup(t, stencilCyclic)
	cost, err := EstimateAssign(tbl, a, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range cost.Refs {
		if rc.Pattern != PatternGather {
			t.Errorf("%s pattern = %v, want gather", rc.Ref, rc.Pattern)
		}
	}
	// Enumerated: every off-by-one reference is remote under cyclic.
	_, elems, err := EnumerateAssign(tbl, a, loops, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 62 iterations × 2 refs, all remote (dedup barely matters here).
	if elems < 100 {
		t.Errorf("cyclic stencil enumerated only %d remote elems", elems)
	}
	modelElems := cost.Elems.MustEval(map[symexpr.Var]float64{PVar: 4})
	ratio := modelElems / float64(elems)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("model %v vs enumerated %d (ratio %.2f)", modelElems, elems, ratio)
	}
}

func TestBlockBeatsCyclicForStencil(t *testing.T) {
	tblB, aB, loopsB := setup(t, stencilBlock)
	costB, err := EstimateAssign(tblB, aB, symbolicLoops(loopsB))
	if err != nil {
		t.Fatal(err)
	}
	tblC, aC, loopsC := setup(t, stencilCyclic)
	costC, err := EstimateAssign(tblC, aC, symbolicLoops(loopsC))
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultModel()
	// Symbolic comparison over P ∈ [2, 32]: block must always win.
	cmp, err := symexpr.Compare(m.Cycles(costB), m.Cycles(costC), symexpr.Bounds{PVar: {Lo: 2, Hi: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != symexpr.VerdictFirstBetter {
		t.Errorf("verdict = %v (block %v vs cyclic %v)", cmp.Verdict, m.Cycles(costB), m.Cycles(costC))
	}
}

func TestOffsetMultipleOfPLocalUnderCyclic(t *testing.T) {
	// a(i) = b(i+4) with cyclic distribution on P=4: locally satisfied.
	src := `
program shiftp
  integer i, n
  parameter (n = 64)
  real a(64), b(68)
!hpf$ distribute a(cyclic)
!hpf$ distribute b(cyclic)
  do i = 1, n
    a(i) = b(i+4)
  end do
end
`
	tbl, a, loops := setup(t, src)
	_, elems, err := EnumerateAssign(tbl, a, loops, 4)
	if err != nil {
		t.Fatal(err)
	}
	if elems != 0 {
		t.Errorf("offset-4 under cyclic P=4: %d remote elems, want 0", elems)
	}
	if !CyclicLocalDelta(4, 4) || CyclicLocalDelta(3, 4) {
		t.Error("CyclicLocalDelta wrong")
	}
	// Same pattern under block: remote boundary traffic exists.
	srcBlock := `
program shiftp
  integer i, n
  parameter (n = 64)
  real a(64), b(68)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i) = b(i+4)
  end do
end
`
	tblB, aB, loopsB := setup(t, srcBlock)
	_, elemsB, err := EnumerateAssign(tblB, aB, loopsB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if elemsB == 0 {
		t.Error("block offset-4 should communicate")
	}
}

func TestDistributionMismatchIsRemap(t *testing.T) {
	src := `
program remap
  integer i, n
  parameter (n = 64)
  real a(64), b(64)
!hpf$ distribute a(block)
!hpf$ distribute b(cyclic)
  do i = 1, n
    a(i) = b(i)
  end do
end
`
	tbl, a, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, a, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Refs) != 1 || cost.Refs[0].Pattern != PatternRemap {
		t.Errorf("refs: %+v", cost.Refs)
	}
}

func TestAlignedAccessIsLocal(t *testing.T) {
	src := `
program local
  integer i, n
  parameter (n = 64)
  real a(64), b(64)
!hpf$ distribute a(block)
!hpf$ distribute b(block)
  do i = 1, n
    a(i) = b(i) * 2.0
  end do
end
`
	tbl, a, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, a, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	if !cost.Elems.IsZero() {
		t.Errorf("aligned access should be free: %v", cost.Elems)
	}
	msgs, elems, err := EnumerateAssign(tbl, a, loops, 8)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 0 || elems != 0 {
		t.Errorf("enumerated %d msgs %d elems for aligned access", msgs, elems)
	}
}

func TestReplicatedArrayIsLocal(t *testing.T) {
	src := `
program repl
  integer i, n
  parameter (n = 64)
  real a(64), w(64)
!hpf$ distribute a(block)
  do i = 1, n
    a(i) = w(i) + 1.0
  end do
end
`
	tbl, a, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, a, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Refs) != 0 {
		t.Errorf("replicated RHS should not communicate: %+v", cost.Refs)
	}
}

func TestTwoDimRowDistribution(t *testing.T) {
	src := `
program stencil2
  integer i, j, n
  parameter (n = 32)
  real a(32,32), b(32,32)
!hpf$ distribute a(block, *)
!hpf$ distribute b(block, *)
  do j = 1, n
    do i = 2, n - 1
      a(i,j) = b(i-1,j) + b(i+1,j)
    end do
  end do
end
`
	tbl, a, loops := setup(t, src)
	cost, err := EstimateAssign(tbl, a, symbolicLoops(loops))
	if err != nil {
		t.Fatal(err)
	}
	// Halo in the distributed dim: elems = 2·(P−1)·trips(j).
	elems := cost.Elems.MustEval(map[symexpr.Var]float64{PVar: 4})
	if elems != 2*3*32 {
		t.Errorf("2-D halo elems = %v, want 192", elems)
	}
	_, actual, err := EnumerateAssign(tbl, a, loops, 4)
	if err != nil {
		t.Fatal(err)
	}
	if float64(actual) != elems {
		t.Errorf("model %v vs enumerated %d", elems, actual)
	}
}

func TestCostModelPricing(t *testing.T) {
	m := Model{Alpha: 100, Beta: 2}
	c := Cost{
		Msgs:  symexpr.Const(3),
		Elems: symexpr.Const(50),
	}
	v, _ := m.Cycles(c).IsConst()
	if v != 100*3+2*50 {
		t.Errorf("cycles = %v", v)
	}
}
