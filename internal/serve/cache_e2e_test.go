package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestE2ECacheByteIdentity is the tentpole's correctness gate: for
// every corpus program on every endpoint, the response bytes from a
// cache-disabled server, a cold cached server (miss + compute), and
// the same cached server asked again (pure hit) are identical. The
// cache may change latency, never content.
func TestE2ECacheByteIdentity(t *testing.T) {
	off := httptest.NewServer(New(Config{DisableResultCache: true}).Handler())
	defer off.Close()
	cached := httptest.NewServer(New(Config{}).Handler())
	defer cached.Close()

	names, srcs := corpusSources(t)
	check := func(name, path string, req any) {
		t.Helper()
		stOff, bodyOff := postJSON(t, off, path, req)
		stCold, bodyCold := postJSON(t, cached, path, req)
		stWarm, bodyWarm := postJSON(t, cached, path, req)
		if stOff != stCold || stOff != stWarm {
			t.Errorf("%s %s: status off=%d cold=%d warm=%d", name, path, stOff, stCold, stWarm)
			return
		}
		if !bytes.Equal(bodyOff, bodyCold) {
			t.Errorf("%s %s: cold cached body differs from cache-off body\noff:  %s\ncold: %s",
				name, path, bodyOff, bodyCold)
		}
		if !bytes.Equal(bodyCold, bodyWarm) {
			t.Errorf("%s %s: warm hit differs from its own cold compute\ncold: %s\nwarm: %s",
				name, path, bodyCold, bodyWarm)
		}
	}

	for i, src := range srcs {
		check(names[i], "/v1/predict", PredictRequest{Source: src})
		check(names[i], "/v1/predict", PredictRequest{Source: src,
			Args: map[string]float64{"n": 64, "m": 8}})
	}
	check("corpus", "/v1/batch", BatchRequest{Sources: srcs,
		Args: map[string]float64{"n": 32, "m": 4}})
	// Optimize is expensive; two programs with tight bounds cover the
	// search path.
	for i := 0; i < len(srcs) && i < 2; i++ {
		check(names[i], "/v1/optimize", OptimizeRequest{Source: srcs[i],
			Nominal: map[string]float64{"n": 100, "m": 10}, MaxNodes: 6, MaxDepth: 2})
	}

	// The warm pass must actually have been served from the cache.
	hits := scrapeInt(t, cached, "predictd_result_cache_hits")
	if want := int64(2*len(srcs) + 1 + 2); hits != want {
		t.Errorf("result cache hits = %d, want %d (one per warm repeat)", hits, want)
	}
}

// TestE2ESnapshotRoundTripServesIdenticalHits drives a cached server,
// snapshots its result cache, loads the snapshot into a brand-new
// server, and requires the new server to answer every request
// byte-identically — from the cache, without recomputing.
func TestE2ESnapshotRoundTripServesIdenticalHits(t *testing.T) {
	names, srcs := corpusSources(t)
	s1 := New(Config{})
	ts1 := httptest.NewServer(s1.Handler())
	bodies := make([][]byte, len(srcs))
	for i, src := range srcs {
		_, bodies[i] = postJSON(t, ts1, "/v1/predict", PredictRequest{Source: src})
	}
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := s1.Results().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2 := New(Config{})
	if err := s2.Results().LoadFile(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for i, src := range srcs {
		status, body := postJSON(t, ts2, "/v1/predict", PredictRequest{Source: src})
		if status != http.StatusOK || !bytes.Equal(body, bodies[i]) {
			t.Errorf("%s: restored server diverged (status %d)\nwas: %s\nnow: %s",
				names[i], status, bodies[i], body)
		}
	}
	st := s2.Results().Stats()
	if st.Misses != 0 || st.Hits != int64(len(srcs)) {
		t.Errorf("restored server recomputed: hits=%d misses=%d, want %d/0",
			st.Hits, st.Misses, len(srcs))
	}
}

// jobStatusOf decodes a JobStatus body.
func jobStatusOf(t *testing.T, body []byte) JobStatus {
	t.Helper()
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatalf("job status: %v\n%s", err, body)
	}
	return js
}

// getJob polls GET /v1/jobs/{id}.
func getJob(t *testing.T, ts *httptest.Server, id string) (int, JobStatus) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, JobStatus{}
	}
	return resp.StatusCode, jobStatusOf(t, body)
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, js := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if js.State == jobDone || js.State == jobFailed {
			return js
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// TestE2EAsyncJobMatchesSync: an async optimize job's Result must be
// byte-identical to the body of the same request served synchronously
// by a cache-disabled server (a guaranteed fresh computation).
func TestE2EAsyncJobMatchesSync(t *testing.T) {
	_, srcs := corpusSources(t)
	req := OptimizeRequest{Source: srcs[0],
		Nominal: map[string]float64{"n": 100, "m": 10}, MaxNodes: 6, MaxDepth: 2}

	off := httptest.NewServer(New(Config{DisableResultCache: true}).Handler())
	defer off.Close()
	_, syncBody := postJSON(t, off, "/v1/optimize", req)

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, body := postJSON(t, ts, "/v1/optimize?async=1", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202\n%s", status, body)
	}
	js := waitJob(t, ts, jobStatusOf(t, body).ID)
	if js.State != jobDone {
		t.Fatalf("job failed: %+v", js)
	}
	if !bytes.Equal(append([]byte(nil), append(js.Result, '\n')...), syncBody) {
		t.Errorf("async result differs from sync body\nsync:  %s\nasync: %s", syncBody, js.Result)
	}
	if js.Explored == 0 {
		t.Error("finished job reported no explored nodes (progress hook never fired)")
	}
	if js.BestCost == nil {
		t.Error("finished job reported no best cost")
	}

	// The job landed its body in the shared result cache: a sync
	// request for the same work is now a byte-identical cache hit.
	hitsBefore := scrapeInt(t, ts, "predictd_result_cache_hits")
	_, syncAfter := postJSON(t, ts, "/v1/optimize", req)
	if !bytes.Equal(syncAfter, syncBody) {
		t.Errorf("sync-after-async differs:\nwant: %s\ngot:  %s", syncBody, syncAfter)
	}
	if got := scrapeInt(t, ts, "predictd_result_cache_hits"); got != hitsBefore+1 {
		t.Errorf("sync-after-async was not a cache hit (hits %d → %d)", hitsBefore, got)
	}

	// Submitting the identical work again births a done job straight
	// from the cache, with the identical result.
	status, body = postJSON(t, ts, "/v1/optimize?async=1", req)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", status)
	}
	js2 := jobStatusOf(t, body)
	if js2.State != jobDone || !bytes.Equal(js2.Result, js.Result) {
		t.Errorf("cached resubmission not born done with identical result: %+v", js2)
	}
	if js2.ID == js.ID {
		t.Error("resubmission reused the finished job's id")
	}
}

// TestE2EAsyncJobCoalescing pins that identical submissions share one
// search: the job slot is held shut white-box, so the first
// submission is pinned in "pending" while the duplicates arrive.
func TestE2EAsyncJobCoalescing(t *testing.T) {
	_, srcs := corpusSources(t)
	s := New(Config{MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := OptimizeRequest{Source: srcs[0],
		Nominal: map[string]float64{"n": 50, "m": 5}, MaxNodes: 4, MaxDepth: 2}

	s.jobs.sem <- struct{}{} // hold the only job slot
	_, body := postJSON(t, ts, "/v1/optimize?async=1", req)
	first := jobStatusOf(t, body)
	if first.State != jobPending {
		t.Fatalf("slot held but job state %q, want pending", first.State)
	}
	var dupIDs []string
	for i := 0; i < 3; i++ {
		_, body := postJSON(t, ts, "/v1/optimize?async=1", req)
		dupIDs = append(dupIDs, jobStatusOf(t, body).ID)
	}
	<-s.jobs.sem // release; the single pending job runs
	for _, id := range dupIDs {
		if id != first.ID {
			t.Errorf("duplicate submission got its own job %s, want coalesced onto %s", id, first.ID)
		}
	}
	js := waitJob(t, ts, first.ID)
	if js.State != jobDone {
		t.Fatalf("job failed: %+v", js)
	}
	got := scrape(t, ts)
	expectSample(t, got, `predictd_jobs_total{event="submitted"}`, "1")
	expectSample(t, got, `predictd_jobs_total{event="coalesced"}`, "3")
	expectSample(t, got, `predictd_jobs_total{event="completed"}`, "1")
	expectSample(t, got, "predictd_jobs_active", "0")
}

// TestE2EAsyncJobValidation: a submission that cannot possibly
// succeed fails at submit time with the same status/code the sync
// path gives — no job is created for doomed work.
func TestE2EAsyncJobValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	status, body := postJSON(t, ts, "/v1/optimize?async=1",
		OptimizeRequest{Source: "program p\nthis does not parse\nend\n"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad program submit: status %d, want 422\n%s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != CodeBadProgram {
		t.Errorf("bad program submit: %s", body)
	}
	status, _ = postJSON(t, ts, "/v1/optimize?async=1",
		OptimizeRequest{Source: "program p\nreal x\nx = 1.0\nend\n", Machine: "PDP11"})
	if status != http.StatusNotFound {
		t.Errorf("unknown machine submit: status %d, want 404", status)
	}
}

// TestE2EJobUnknownID: polling an id that was never issued is a
// structured 404.
func TestE2EJobUnknownID(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/opt-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != CodeUnknownJob {
		t.Errorf("unknown job body: %s", body)
	}
}

// TestE2EDrainJobsWaits: DrainJobs returns only after running jobs
// finish, and the finished job's result is in the cache (so the
// snapshot written after the drain carries it).
func TestE2EDrainJobsWaits(t *testing.T) {
	_, srcs := corpusSources(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := OptimizeRequest{Source: srcs[0],
		Nominal: map[string]float64{"n": 40}, MaxNodes: 4, MaxDepth: 2}
	_, body := postJSON(t, ts, "/v1/optimize?async=1", req)
	id := jobStatusOf(t, body).ID
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainJobs(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, js := getJob(t, ts, id)
	if code != http.StatusOK || js.State != jobDone {
		t.Fatalf("after drain: job %s state %q (code %d)", id, js.State, code)
	}
	if s.Results().Len() == 0 {
		t.Error("drained job left nothing in the result cache")
	}
}

// TestE2ESingleflightIdenticalBursts: a burst of identical predicts
// against a cold cache produces identical bodies, exactly one cached
// entry, and a conserved accounting: every request was a hit, a
// shared flight, or the one computation (plus possible solo retries —
// none here, nothing cancels).
func TestE2ESingleflightIdenticalBursts(t *testing.T) {
	_, srcs := corpusSources(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	const n = 12
	req := PredictRequest{Source: srcs[len(srcs)-1], Args: map[string]float64{"n": 128, "m": 16}}
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := tryPostJSON(ts, "/v1/predict", req)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, body)
			}
			bodies[i], errs[i] = body, err
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("burst response %d differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	st := s.Results().Stats()
	if st.Entries != 1 {
		t.Errorf("burst of identical requests left %d entries, want 1", st.Entries)
	}
	shared := scrapeInt(t, ts, "predictd_singleflight_shared_total")
	if st.Hits+shared+st.Puts != n {
		t.Errorf("accounting: hits(%d) + shared(%d) + computes(%d) != %d requests",
			st.Hits, shared, st.Puts, n)
	}
}

// TestRetryAfterHeaders pins the two backpressure signals: a shed 503
// and a draining /readyz both carry Retry-After.
func TestRetryAfterHeaders(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.sem <- struct{}{} // fill admission white-box
	resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader([]byte(`{"source":"end\n"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("shed 503 Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	<-s.sem

	s.SetDraining(true)
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "5" {
		t.Errorf("draining /readyz Retry-After = %q, want \"5\"", resp.Header.Get("Retry-After"))
	}
}

// scrapeInt reads one /metrics sample as an integer.
func scrapeInt(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	v, ok := scrape(t, ts)[name]
	if !ok {
		t.Fatalf("no sample %s", name)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("sample %s = %q: %v", name, v, err)
	}
	return int64(f)
}
