package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"perfpredict/internal/machine"
)

const streamSrc = `
program stream
  integer i, n
  parameter (n = 1024)
  real a(1025), b(1025)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
end
`

// memorySpec returns the POWER1 spec JSON with (or without) the
// documented hierarchy attached.
func memorySpec(t *testing.T, withMemory bool) []byte {
	t.Helper()
	s := machine.SpecOf(machine.ReferencePOWER1())
	if withMemory {
		s.Memory = machine.SpecOfHierarchy(machine.POWER1Memory())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestE2EPredictReportsMemoryComponents: a memory-bearing inline spec
// must yield in_core/memory/eval_memory fields that sum consistently,
// and the identical spec without the memory section must omit them —
// its response bytes must not mention the fields at all.
func TestE2EPredictReportsMemoryComponents(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	args := map[string]float64{"n": 100}

	status, got := postJSON(t, ts, "/v1/predict", PredictRequest{
		Source: streamSrc, Spec: memorySpec(t, true), Args: args,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	var resp PredictResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.InCore == "" || resp.Memory == "" {
		t.Fatalf("memory-bearing spec missing cost split: in_core=%q memory=%q", resp.InCore, resp.Memory)
	}
	if resp.EvalMemory == nil {
		t.Fatal("memory-bearing spec with args missing eval_memory")
	}
	if *resp.EvalMemory <= 0 {
		t.Errorf("streaming kernel priced a non-positive memory term: %v", *resp.EvalMemory)
	}
	if resp.Eval == nil {
		t.Fatal("missing eval")
	}
	if *resp.EvalMemory >= *resp.Eval {
		t.Errorf("memory term %v not a strict part of total %v", *resp.EvalMemory, *resp.Eval)
	}

	status, plain := postJSON(t, ts, "/v1/predict", PredictRequest{
		Source: streamSrc, Spec: memorySpec(t, false), Args: args,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, plain)
	}
	for _, field := range []string{"in_core", "memory", "eval_memory"} {
		if strings.Contains(string(plain), `"`+field+`"`) {
			t.Errorf("hierarchy-less response carries %q — wire compatibility broken:\n%s", field, plain)
		}
	}
	var plainResp PredictResponse
	if err := json.Unmarshal(plain, &plainResp); err != nil {
		t.Fatal(err)
	}
	wantInCore := *resp.Eval - *resp.EvalMemory
	if math.Abs(*plainResp.Eval-wantInCore) > 1e-6 {
		t.Errorf("hierarchy-less total %v != memory-bearing in-core part %v", *plainResp.Eval, wantInCore)
	}
}

// TestE2EBatchReportsMemoryComponents: the per-item split rides
// through /v1/batch the same way.
func TestE2EBatchReportsMemoryComponents(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	status, got := postJSON(t, ts, "/v1/batch", BatchRequest{
		Sources: []string{streamSrc}, Spec: memorySpec(t, true),
		Args: map[string]float64{"n": 100},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	var resp BatchResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(resp.Results))
	}
	item := resp.Results[0]
	if item.Memory == "" || item.EvalMemory == nil || *item.EvalMemory <= 0 {
		t.Errorf("batch item missing memory split: memory=%q eval_memory=%v", item.Memory, item.EvalMemory)
	}
}
