package serve

import (
	"fmt"
	"net/http"
)

// Error codes in structured error bodies. Every non-2xx response the
// service writes is an ErrorResponse carrying one of these, so
// clients can switch on a stable string instead of parsing messages.
const (
	CodeBadJSON           = "bad_json"           // 400: body is not the endpoint's JSON shape
	CodeBadArgs           = "bad_args"           // 400: evaluation point is unusable (missing unknown)
	CodeUnknownMachine    = "unknown_machine"    // 404: machine name not in the registry
	CodeMethodNotAllowed  = "method_not_allowed" // 405: endpoint is POST-only
	CodeBodyTooLarge      = "body_too_large"     // 413: body exceeds -max-body
	CodeBadProgram        = "bad_program"        // 422: F-lite source fails to parse or analyze
	CodeInvalidSpec       = "invalid_spec"       // 422: inline machine spec fails validation
	CodeInvalidTemplate   = "invalid_template"   // 422: machine template fails to parse or validate
	CodeLatticeTooLarge   = "lattice_too_large"  // 413: template expands beyond -max-cells
	CodeUnknownJob        = "unknown_job"        // 404: job id never issued or already evicted
	CodeInternal          = "internal"           // 500: handler panicked (isolated; service keeps running)
	CodeOverloaded        = "overloaded"         // 503: admission semaphore full, request shed
	CodeDeadlineExceeded  = "deadline_exceeded"  // 504: request deadline expired mid-work
	codeClientClosed      = "client_closed"      // 499-style: client went away; never actually sent
	statusClientClosed    = 499                  // nginx convention, used only as a metrics label
	statusUnprocessable   = http.StatusUnprocessableEntity
	statusTooLarge        = http.StatusRequestEntityTooLarge
	statusUnavailable     = http.StatusServiceUnavailable
	statusGatewayTimeout  = http.StatusGatewayTimeout
	statusMethodNotAllow  = http.StatusMethodNotAllowed
	statusNotFound        = http.StatusNotFound
	statusBadRequest      = http.StatusBadRequest
	statusInternalFailure = http.StatusInternalServerError
)

// ErrorBody is the structured error payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// apiError pairs an HTTP status with a structured body; handlers
// return it instead of writing responses themselves so the middleware
// owns every status/counter decision.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errBadJSON(msg string) *apiError {
	return &apiError{status: statusBadRequest, code: CodeBadJSON, msg: msg}
}

func errBadArgs(msg string) *apiError {
	return &apiError{status: statusBadRequest, code: CodeBadArgs, msg: msg}
}

func errUnknownMachine(msg string) *apiError {
	return &apiError{status: statusNotFound, code: CodeUnknownMachine, msg: msg}
}

func errBadProgram(msg string) *apiError {
	return &apiError{status: statusUnprocessable, code: CodeBadProgram, msg: msg}
}

func errInvalidSpec(msg string) *apiError {
	return &apiError{status: statusUnprocessable, code: CodeInvalidSpec, msg: msg}
}

func errInvalidTemplate(msg string) *apiError {
	return &apiError{status: statusUnprocessable, code: CodeInvalidTemplate, msg: msg}
}

func errLatticeTooLarge(cells, max int) *apiError {
	return &apiError{status: statusTooLarge, code: CodeLatticeTooLarge,
		msg: fmt.Sprintf("template expands to %d cells, server cap is %d", cells, max)}
}

func errUnknownJob(id string) *apiError {
	return &apiError{status: statusNotFound, code: CodeUnknownJob,
		msg: "unknown job id " + id + " (finished jobs are retained briefly, then forgotten)"}
}
