package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"perfpredict"
)

// corpusDir points at the PR 4 differential-fuzzing corpus, the
// golden program set the e2e suite prices through the server.
var corpusDir = filepath.Join("..", "..", "testdata", "corpus")

// corpusSources loads every corpus program, sorted by filename.
func corpusSources(t *testing.T) (names []string, srcs []string) {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(corpusDir, "programs"))
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(corpusDir, "programs", n))
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, string(data))
	}
	return names, srcs
}

// tryPostJSON posts v and returns the status and raw body bytes; it
// is goroutine-safe (no testing.T), for concurrent drivers.
func tryPostJSON(ts *httptest.Server, path string, v any) (int, []byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// postJSON posts v and returns the status and raw body bytes.
func postJSON(t *testing.T, ts *httptest.Server, path string, v any) (int, []byte) {
	t.Helper()
	status, out, err := tryPostJSON(ts, path, v)
	if err != nil {
		t.Fatal(err)
	}
	return status, out
}

// TestE2EPredictEqualsLibrary proves the server ≡ library contract on
// the whole corpus: for every corpus program on every builtin
// machine, the /v1/predict response bytes equal the same response
// structure built from a direct perfpredict.Predict call and passed
// through the server's own encoder.
func TestE2EPredictEqualsLibrary(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	names, srcs := corpusSources(t)
	args := map[string]float64{"n": 100, "m": 17}
	for _, machineName := range perfpredict.TargetNames() {
		target, err := perfpredict.LoadTarget(machineName)
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range srcs {
			status, got := postJSON(t, ts, "/v1/predict", PredictRequest{
				Source: src, Machine: machineName, Args: args,
			})
			if status != http.StatusOK {
				t.Fatalf("%s on %s: status %d: %s", names[i], machineName, status, got)
			}
			pred, err := perfpredict.Predict(src, target)
			if err != nil {
				t.Fatalf("%s on %s: library: %v", names[i], machineName, err)
			}
			wantResp, aerr := buildPredictResponse(pred, target.Name, args)
			if aerr != nil {
				t.Fatalf("%s on %s: library response: %v", names[i], machineName, aerr.msg)
			}
			if want := marshalBody(wantResp); !bytes.Equal(got, want) {
				t.Errorf("%s on %s:\nserver  %s\nlibrary %s", names[i], machineName, got, want)
			}
		}
	}
}

// TestE2EBatchEqualsLibrary prices the whole corpus in one /v1/batch
// request and byte-compares against PredictBatch.
func TestE2EBatchEqualsLibrary(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 1 << 22}).Handler())
	defer ts.Close()
	names, srcs := corpusSources(t)
	status, got := postJSON(t, ts, "/v1/batch", BatchRequest{Sources: srcs, Machine: "SuperScalar2"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	target, err := perfpredict.LoadTarget("SuperScalar2")
	if err != nil {
		t.Fatal(err)
	}
	preds, errs := perfpredict.PredictBatch(srcs, target, perfpredict.BatchOptions{})
	want := BatchResponse{Machine: target.Name, Results: make([]BatchItem, len(srcs))}
	for i := range preds {
		if errs[i] != nil {
			t.Fatalf("%s: library: %v", names[i], errs[i])
		}
		item, aerr := buildBatchItem(preds[i], nil)
		if aerr != nil {
			t.Fatal(aerr.msg)
		}
		want.Results[i] = item
	}
	if wantBytes := marshalBody(want); !bytes.Equal(got, wantBytes) {
		t.Errorf("batch response diverges from library:\nserver  %.2000s\nlibrary %.2000s", got, wantBytes)
	}
}

// TestE2EOptimizeEqualsLibrary runs the bounded transformation search
// through the server (warm shared caches) and the library (fresh
// caches) on every corpus program that has a loop to transform; the
// response bytes must match — predictions and search trajectories
// never depend on cache state.
func TestE2EOptimizeEqualsLibrary(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	names, srcs := corpusSources(t)
	nominal := map[string]float64{"n": 40, "m": 17}
	tested := 0
	for i, src := range srcs {
		if !strings.Contains(src, "do ") {
			continue
		}
		if tested++; tested > 5 {
			break
		}
		req := OptimizeRequest{Source: src, Nominal: nominal, MaxNodes: 4, MaxDepth: 2}
		status, got := postJSON(t, ts, "/v1/optimize", req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", names[i], status, got)
		}
		target, err := perfpredict.LoadTarget("POWER1")
		if err != nil {
			t.Fatal(err)
		}
		res, err := perfpredict.OptimizeCtx(context.Background(), src, target, nominal,
			perfpredict.OptimizeOptions{MaxNodes: 4, MaxDepth: 2})
		if err != nil {
			t.Fatalf("%s: library: %v", names[i], err)
		}
		want := marshalBody(OptimizeResponse{
			Machine:         target.Name,
			Source:          res.Source,
			Transformations: res.Transformations,
			PredictedBefore: res.PredictedBefore,
			PredictedAfter:  res.PredictedAfter,
			MemoryBefore:    res.MemoryBefore,
			MemoryAfter:     res.MemoryAfter,
			Explored:        res.Explored,
		})
		if !bytes.Equal(got, want) {
			t.Errorf("%s:\nserver  %s\nlibrary %s", names[i], got, want)
		}
	}
	if tested == 0 {
		t.Fatal("no corpus program had a loop to optimize")
	}
}

// TestE2EInlineSpecEqualsSpecFile uploads a corpus machine spec
// inline and checks the prediction matches loading the same spec from
// disk through the library.
func TestE2EInlineSpecEqualsSpecFile(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	specPath := filepath.Join(corpusDir, "specs", "spec01.json")
	specData, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	_, srcs := corpusSources(t)
	src := srcs[0]
	status, got := postJSON(t, ts, "/v1/predict", PredictRequest{Source: src, Spec: specData})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	target, err := perfpredict.LoadTarget(specPath)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := perfpredict.Predict(src, target)
	if err != nil {
		t.Fatal(err)
	}
	wantResp, aerr := buildPredictResponse(pred, target.Name, nil)
	if aerr != nil {
		t.Fatal(aerr.msg)
	}
	if want := marshalBody(wantResp); !bytes.Equal(got, want) {
		t.Errorf("inline spec:\nserver  %s\nlibrary %s", got, want)
	}
}

// TestE2EErrorPaths pins every structured error: status code, stable
// error code, and that the body is exactly an ErrorResponse.
func TestE2EErrorPaths(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 512}).Handler())
	defer ts.Close()
	// symbolic has an unanalyzable bound n, so evaluating without a
	// value for n is a usable-args error.
	symbolic := `program p
integer i, n
real a(100)
do i = 1, n
a(i) = 1.0
enddo
end
`
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", "POST", "/v1/predict", `{"source": `, http.StatusBadRequest, CodeBadJSON},
		{"unknown field", "POST", "/v1/predict", `{"sauce":"x"}`, http.StatusBadRequest, CodeBadJSON},
		{"trailing data", "POST", "/v1/predict", `{"source":"end"} {"again":1}`, http.StatusBadRequest, CodeBadJSON},
		{"machine and spec", "POST", "/v1/predict", `{"source":"end","machine":"POWER1","spec":{"name":"x"}}`, http.StatusBadRequest, CodeBadJSON},
		{"unknown machine", "POST", "/v1/predict", `{"source":"end","machine":"PDP11"}`, http.StatusNotFound, CodeUnknownMachine},
		{"invalid inline spec", "POST", "/v1/predict", `{"source":"end","spec":{"name":"x"}}`, http.StatusUnprocessableEntity, CodeInvalidSpec},
		{"bad program", "POST", "/v1/predict", `{"source":"do do do"}`, http.StatusUnprocessableEntity, CodeBadProgram},
		{"bad args", "POST", "/v1/predict", mustJSON(t, PredictRequest{Source: symbolic, Args: map[string]float64{"wrong": 1}}), http.StatusBadRequest, CodeBadArgs},
		{"oversized body", "POST", "/v1/predict", `{"source":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
		{"wrong method", "GET", "/v1/predict", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"batch bad json", "POST", "/v1/batch", `[1,2]`, http.StatusBadRequest, CodeBadJSON},
		{"batch unknown machine", "POST", "/v1/batch", `{"sources":["end"],"machine":"PDP11"}`, http.StatusNotFound, CodeUnknownMachine},
		{"optimize bad json", "POST", "/v1/optimize", `nope`, http.StatusBadRequest, CodeBadJSON},
		{"optimize bad program", "POST", "/v1/optimize", `{"source":"zzz zzz"}`, http.StatusUnprocessableEntity, CodeBadProgram},
		{"optimize unknown machine", "POST", "/v1/optimize", `{"source":"end","machine":"PDP11"}`, http.StatusNotFound, CodeUnknownMachine},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content type %q", ct)
			}
			var er ErrorResponse
			dec := json.NewDecoder(bytes.NewReader(body))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&er); err != nil {
				t.Fatalf("body is not a bare ErrorResponse: %v (%s)", err, body)
			}
			if er.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q (message %q)", er.Error.Code, tc.wantCode, er.Error.Message)
			}
			if er.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestE2EBatchPerSlotErrors checks that broken programs fail their
// slot without failing the batch.
func TestE2EBatchPerSlotErrors(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	valid := "program p\ninteger i\nreal a(10)\ndo i = 1, 10\na(i) = 1.0\nenddo\nend\n"
	status, got := postJSON(t, ts, "/v1/batch", BatchRequest{Sources: []string{valid, "syntax ! error", valid}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	var resp BatchResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != nil || resp.Results[2].Error != nil {
		t.Errorf("valid slots failed: %+v", resp.Results)
	}
	if resp.Results[0].Cost == "" || resp.Results[0].Cost != resp.Results[2].Cost {
		t.Errorf("valid slots priced inconsistently: %+v", resp.Results)
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeBadProgram {
		t.Errorf("bad slot: %+v", resp.Results[1])
	}
}

// TestHealthAndReady pins the probe endpoints, including the drain
// flip.
func TestHealthAndReady(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || body != "ok\n" {
		t.Errorf("/readyz = %d %q", code, body)
	}
	s.SetDraining(true)
	if code, body := get("/readyz"); code != 503 || body != "draining\n" {
		t.Errorf("draining /readyz = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("draining /healthz = %d, want 200 (liveness is not readiness)", code)
	}
	s.SetDraining(false)
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("undrained /readyz = %d", code)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
