package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"perfpredict/internal/kernels"
)

// optimizeBody builds a deliberately long-running /v1/optimize
// request: the matmul kernel with a node budget that would take tens
// of seconds to exhaust.
func optimizeBody(t *testing.T) []byte {
	t.Helper()
	k, err := kernels.Get("matmul")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(OptimizeRequest{
		Source:   k.Src,
		Nominal:  map[string]float64{"n": 50},
		MaxNodes: 1 << 20,
		MaxDepth: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestNoGoroutineLeakOnCancel fires N long optimize requests, cancels
// every one mid-flight, and asserts the goroutine count returns to
// its pre-request baseline: a cancelled client leaves no worker pool,
// no search, and no handler behind.
func TestNoGoroutineLeakOnCancel(t *testing.T) {
	s := New(Config{Timeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := optimizeBody(t)

	baseline := runtime.NumGoroutine()
	const n = 8
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/optimize", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := ts.Client().Do(req)
			if err == nil {
				resp.Body.Close()
				errc <- errors.New("request succeeded despite 50ms client cancel")
				return
			}
			errc <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// The handlers observe the cancellation at their next search-node
	// boundary; give them a retry window to unwind, then require the
	// goroutine count back at baseline (small slack for the test
	// server's own accept loop and keep-alive conns).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: baseline %d, now %d after cancel window\n%s",
				baseline, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The server itself must still be fully functional afterwards.
	status, _ := postJSON(t, ts, "/v1/predict", PredictRequest{Source: "program p\nreal x\nx = 1.0\nend\n"})
	if status != http.StatusOK {
		t.Fatalf("server unhealthy after cancels: %d", status)
	}
}

// TestOptimizeDeadlineReturns504 pins the server-side deadline: an
// optimize sized for minutes under a short -timeout comes back
// promptly as a structured 504.
func TestOptimizeDeadlineReturns504(t *testing.T) {
	s := New(Config{Timeout: 200 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	start := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/optimize", "application/json",
		bytes.NewReader(optimizeBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code %q, want %q", er.Error.Code, CodeDeadlineExceeded)
	}
	// Within about one node expansion of the deadline (generous ε for
	// loaded CI under -race).
	if elapsed > 200*time.Millisecond+5*time.Second {
		t.Errorf("504 took %v for a 200ms deadline", elapsed)
	}
}

// TestBatchDeadlineReturns504 pins the same contract for the batch
// path: workers stop claiming programs once the deadline passes.
func TestBatchDeadlineReturns504(t *testing.T) {
	s := New(Config{Timeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	k, err := kernels.Get("matmul")
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]string, 400)
	for i := range srcs {
		srcs[i] = k.Src
	}
	status, body := postJSON(t, ts, "/v1/batch", BatchRequest{Sources: srcs, Workers: 1})
	if status != http.StatusGatewayTimeout {
		// A fast machine may finish 400 warm-cache predictions in
		// 50ms; only the structured outcome is pinned, not the race.
		if status == http.StatusOK {
			t.Skip("machine finished the batch inside the deadline")
		}
		t.Fatalf("status %d: %s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code %q, want %q", er.Error.Code, CodeDeadlineExceeded)
	}
}
