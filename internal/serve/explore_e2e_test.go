package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfpredict"
)

var exploreTemplate = json.RawMessage(`{
	"base_machine": "POWER1",
	"dispatch": [4, 5],
	"pipes": {"FPU": [1, 2], "FXU": [1, 2]}
}`)

const exploreKernel = "program p\ninteger i\nreal a(64)\ndo i = 1, 64\na(i) = a(i) * 2.0 + 1.0\nenddo\nend\n"

// TestE2EExploreEqualsLibrary proves the server ≡ library contract for
// the explore endpoint: the /v1/explore response bytes equal the
// library's ExploreResult passed through the server's own encoder,
// for a multi-kernel sweep over corpus programs and for a lattice of
// more than a hundred cells.
func TestE2EExploreEqualsLibrary(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	_, srcs := corpusSources(t)

	check := func(name string, req ExploreRequest, minCells int) {
		t.Helper()
		status, got := postJSON(t, ts, "/v1/explore", req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, status, got)
		}
		tpl, err := perfpredict.ParseMachineTemplate(req.Template)
		if err != nil {
			t.Fatal(err)
		}
		res, err := perfpredict.ExploreCtx(context.Background(), tpl, exploreKernels(req.Kernels),
			perfpredict.ExploreOptions{Args: req.Args, Target: req.Target})
		if err != nil {
			t.Fatalf("%s: library: %v", name, err)
		}
		if res.Cells < minCells {
			t.Fatalf("%s: lattice has %d cells, test meant to cover >= %d", name, res.Cells, minCells)
		}
		if want := marshalBody(res); !bytes.Equal(got, want) {
			t.Errorf("%s:\nserver  %s\nlibrary %s", name, got, want)
		}
	}

	check("two-kernel sweep", ExploreRequest{
		Kernels:  []string{srcs[0], srcs[1]},
		Template: exploreTemplate,
		Args:     map[string]float64{"n": 64},
		Target:   1e9,
	}, 8)
	check("hundred-cell lattice", ExploreRequest{
		Kernels: []string{exploreKernel},
		Template: json.RawMessage(`{
			"base_machine": "POWER1",
			"dispatch": [1, 12],
			"pipes": {"FPU": [1, 3], "FXU": [1, 3]}
		}`),
	}, 100)
}

// TestE2EExploreErrorPaths pins the explore endpoint's structured
// errors, in particular the 422 invalid_template / 400 bad_json
// distinction (a malformed template inside a well-formed body is the
// client's modeling mistake, not a transport one) and the 413
// lattice_too_large admission cap.
func TestE2EExploreErrorPaths(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	small := httptest.NewServer(New(Config{MaxExploreCells: 4}).Handler())
	defer small.Close()

	kernels := `"kernels":["end\n"]`
	cases := []struct {
		name       string
		server     *httptest.Server
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", ts, `{"kernels": `, http.StatusBadRequest, CodeBadJSON},
		{"unknown field", ts, `{"sauce":"x"}`, http.StatusBadRequest, CodeBadJSON},
		{"no kernels", ts, `{"template":{"base_machine":"POWER1"}}`, http.StatusBadRequest, CodeBadJSON},
		{"no template", ts, `{` + kernels + `}`, http.StatusBadRequest, CodeBadJSON},
		{"template not json", ts, `{` + kernels + `,"template":{"base_machine":}}`, http.StatusBadRequest, CodeBadJSON},
		{"unknown base machine", ts, `{` + kernels + `,"template":{"base_machine":"PDP11"}}`, http.StatusUnprocessableEntity, CodeInvalidTemplate},
		{"inverted range", ts, `{` + kernels + `,"template":{"base_machine":"POWER1","dispatch":[5,4]}}`, http.StatusUnprocessableEntity, CodeInvalidTemplate},
		{"unknown unit", ts, `{` + kernels + `,"template":{"base_machine":"POWER1","pipes":{"VPU":[1,2]}}}`, http.StatusUnprocessableEntity, CodeInvalidTemplate},
		{"lattice too large", small, `{` + kernels + `,"template":{"base_machine":"POWER1","dispatch":[4,5],"pipes":{"FPU":[1,3]}}}`, http.StatusRequestEntityTooLarge, CodeLatticeTooLarge},
		{"bad program", ts, `{"kernels":["do do do"],"template":{"base_machine":"POWER1","dispatch":[4,5]}}`, http.StatusUnprocessableEntity, CodeBadProgram},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.server.Client().Post(tc.server.URL+"/v1/explore", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("not a structured error: %v (%s)", err, body)
			}
			if er.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q (%q)", er.Error.Code, tc.wantCode, er.Error.Message)
			}
		})
	}
}

// TestE2EExploreShedAndDeadline: a sweep arriving at a full admission
// semaphore sheds as a structured 503, and one under an already-spent
// deadline returns a structured 504 without sweeping.
func TestE2EExploreShedAndDeadline(t *testing.T) {
	req := ExploreRequest{Kernels: []string{exploreKernel}, Template: exploreTemplate}

	s := New(Config{MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.sem <- struct{}{} // fill admission white-box
	status, body := postJSON(t, ts, "/v1/explore", req)
	<-s.sem
	if status != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d, want 503: %s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeOverloaded {
		t.Errorf("shed code %q, want %q", er.Error.Code, CodeOverloaded)
	}

	slow := httptest.NewServer(New(Config{Timeout: time.Nanosecond}).Handler())
	defer slow.Close()
	status, body = postJSON(t, slow, "/v1/explore", req)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline status %d, want 504: %s", status, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeDeadlineExceeded {
		t.Errorf("deadline code %q, want %q", er.Error.Code, CodeDeadlineExceeded)
	}
}

// TestE2EExploreCacheByteIdentity extends the off/cold/warm identity
// gate to the explore endpoint: cache-off, cold-compute, and warm-hit
// bodies are byte-identical, every warm repeat is a hit, and the
// request dimensions (template, kernel set, args, target) do not
// alias each other's keys.
func TestE2EExploreCacheByteIdentity(t *testing.T) {
	off := httptest.NewServer(New(Config{DisableResultCache: true}).Handler())
	defer off.Close()
	s := New(Config{})
	cached := httptest.NewServer(s.Handler())
	defer cached.Close()

	check := func(name string, req ExploreRequest) {
		t.Helper()
		stOff, bodyOff := postJSON(t, off, "/v1/explore", req)
		stCold, bodyCold := postJSON(t, cached, "/v1/explore", req)
		stWarm, bodyWarm := postJSON(t, cached, "/v1/explore", req)
		if stOff != stCold || stOff != stWarm || stOff != http.StatusOK {
			t.Errorf("%s: status off=%d cold=%d warm=%d", name, stOff, stCold, stWarm)
			return
		}
		if !bytes.Equal(bodyOff, bodyCold) {
			t.Errorf("%s: cold cached body differs from cache-off body\noff:  %s\ncold: %s",
				name, bodyOff, bodyCold)
		}
		if !bytes.Equal(bodyCold, bodyWarm) {
			t.Errorf("%s: warm hit differs from its own cold compute\ncold: %s\nwarm: %s",
				name, bodyCold, bodyWarm)
		}
	}

	base := ExploreRequest{Kernels: []string{exploreKernel}, Template: exploreTemplate}
	check("base", base)
	check("with args", ExploreRequest{Kernels: base.Kernels, Template: base.Template,
		Args: map[string]float64{"n": 32}})
	check("with target", ExploreRequest{Kernels: base.Kernels, Template: base.Template,
		Target: 30000})
	check("two kernels", ExploreRequest{
		Kernels: []string{exploreKernel,
			"program q\ninteger i\nreal a(64)\ndo i = 1, 64\na(i) = a(i) - 3.0\nenddo\nend\n"},
		Template: base.Template})
	check("narrower template", ExploreRequest{Kernels: base.Kernels,
		Template: json.RawMessage(`{"base_machine":"POWER1","pipes":{"FPU":[1,2]}}`)})
	const reqs = 5

	hits := scrapeInt(t, cached, "predictd_result_cache_hits")
	if hits != reqs {
		t.Errorf("result cache hits = %d, want %d (one per warm repeat)", hits, reqs)
	}
	if st := s.Results().Stats(); st.Entries != reqs {
		t.Errorf("result cache entries = %d, want %d distinct keys", st.Entries, reqs)
	}
}

// TestE2EExploreAsyncJobMatchesSync: an async sweep's job Result must
// be byte-identical to the synchronous body, the job id carries the
// explore prefix, progress reports cells, and the finished job seeds
// the shared result cache.
func TestE2EExploreAsyncJobMatchesSync(t *testing.T) {
	req := ExploreRequest{Kernels: []string{exploreKernel}, Template: exploreTemplate}

	off := httptest.NewServer(New(Config{DisableResultCache: true}).Handler())
	defer off.Close()
	_, syncBody := postJSON(t, off, "/v1/explore", req)

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, body := postJSON(t, ts, "/v1/explore?async=1", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202\n%s", status, body)
	}
	id := jobStatusOf(t, body).ID
	if !strings.HasPrefix(id, "exp-") {
		t.Errorf("explore job id %q lacks the exp- prefix", id)
	}
	js := waitJob(t, ts, id)
	if js.State != jobDone {
		t.Fatalf("job failed: %+v", js)
	}
	if !bytes.Equal(append(js.Result, '\n'), syncBody) {
		t.Errorf("async result differs from sync body\nsync:  %s\nasync: %s", syncBody, js.Result)
	}
	if js.Explored != 8 {
		t.Errorf("finished sweep reports %d cells explored, want 8", js.Explored)
	}
	if js.BestCost != nil {
		t.Errorf("explore job reports an optimize-only best cost: %v", *js.BestCost)
	}

	// The job landed its body in the shared result cache.
	hitsBefore := scrapeInt(t, ts, "predictd_result_cache_hits")
	_, syncAfter := postJSON(t, ts, "/v1/explore", req)
	if !bytes.Equal(syncAfter, syncBody) {
		t.Errorf("sync-after-async differs:\nwant: %s\ngot:  %s", syncBody, syncAfter)
	}
	if got := scrapeInt(t, ts, "predictd_result_cache_hits"); got != hitsBefore+1 {
		t.Errorf("sync-after-async was not a cache hit (hits %d → %d)", hitsBefore, got)
	}

	// An invalid template fails an async submission up front with the
	// same 422 as the sync path — never inside an accepted job.
	status, body = postJSON(t, ts, "/v1/explore?async=1", ExploreRequest{
		Kernels:  []string{exploreKernel},
		Template: json.RawMessage(`{"base_machine":"PDP11"}`),
	})
	if status != http.StatusUnprocessableEntity {
		t.Errorf("async submit of a bad template: status %d, want 422: %s", status, body)
	}
}
