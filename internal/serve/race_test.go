package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"perfpredict/internal/kernels"
)

// raceWorkload builds the mixed request list: every kernel predicted,
// one batch over all of them, and two bounded optimizes.
func raceWorkload(t *testing.T) []struct {
	path string
	req  any
} {
	t.Helper()
	var reqs []struct {
		path string
		req  any
	}
	var all []string
	for _, k := range kernels.All() {
		all = append(all, k.Src)
		args := k.Args
		if args == nil {
			args = map[string]float64{"n": 64, "m": 17}
		}
		reqs = append(reqs, struct {
			path string
			req  any
		}{"/v1/predict", PredictRequest{Source: k.Src, Args: args}})
	}
	reqs = append(reqs, struct {
		path string
		req  any
	}{"/v1/batch", BatchRequest{Sources: all}})
	for _, name := range []string{"matmul", "jacobi"} {
		k, err := kernels.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, struct {
			path string
			req  any
		}{"/v1/optimize", OptimizeRequest{Source: k.Src, Nominal: map[string]float64{"n": 40}, MaxNodes: 4, MaxDepth: 2}})
	}
	return reqs
}

// TestConcurrentMixedWorkloadByteIdentical drives 16 goroutines of
// mixed predict/batch/optimize against one server sharing one warm
// cache pair, and asserts every response is byte-identical to the
// serial pass — the cache-state-independence invariant observed
// through the HTTP surface. Run under -race in CI, this is also the
// service's data-race gate.
func TestConcurrentMixedWorkloadByteIdentical(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxInflight: 64, MaxBodyBytes: 1 << 22}).Handler())
	defer ts.Close()
	reqs := raceWorkload(t)

	// Serial reference pass (its own warmup also proves warm-cache
	// responses equal cold-cache ones: each request repeats).
	serial := make([][]byte, len(reqs))
	for i, r := range reqs {
		status, body := postJSON(t, ts, r.path, r.req)
		if status != http.StatusOK {
			t.Fatalf("serial %s: status %d: %s", r.path, status, body)
		}
		serial[i] = body
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Offset start positions so different endpoints overlap.
			for k := 0; k < len(reqs); k++ {
				i := (g + k) % len(reqs)
				status, body, err := tryPostJSON(ts, reqs[i].path, reqs[i].req)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d %s: %v", g, reqs[i].path, err)
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d %s: status %d: %s", g, reqs[i].path, status, body)
					return
				}
				if !bytes.Equal(body, serial[i]) {
					errs <- fmt.Errorf("goroutine %d %s: response diverged from serial\nconc   %s\nserial %s",
						g, reqs[i].path, body, serial[i])
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
