package serve

import (
	"errors"
	"net/http"

	"perfpredict/internal/resultcache"
	"perfpredict/internal/source"
)

// Serve-layer result caching. The cache stores fully encoded response
// bodies (marshalBody output), so a hit is byte-identical to a
// recomputation by construction: warmth and eviction can change
// latency, never content. Keys are built in internal/resultcache from
// content fingerprints, so two requests share an entry exactly when
// the library is guaranteed to produce the same bytes for both.
//
// Only successful (200) bodies are cached. Error responses are cheap
// to recompute and some (504 deadline, 499 client-closed) are not
// functions of the request content at all.

// rawResponse is a pre-encoded response body. endpoint() writes it
// verbatim instead of re-marshaling — the cache-hit fast path.
type rawResponse []byte

// statusResponse carries a non-200 success status (e.g. 202 for an
// accepted async job) alongside its body.
type statusResponse struct {
	status int
	body   any
}

// programFP is the program half of a cache key: the structural AST
// fingerprint when the source parses (formatting variants share an
// entry — sound because responses never echo raw request text), or a
// fingerprint of the raw text when it does not (so even per-slot
// parse-error responses in a batch stay content-addressed).
func programFP(src string) source.Fingerprint {
	if prog, err := source.Parse(src); err == nil {
		return source.FingerprintProgram(prog)
	}
	return resultcache.SourceKey(src)
}

// withResultCache fronts one handler computation with the result
// cache and singleflight coalescing: hit → cached bytes; miss → one
// caller computes while identical concurrent requests wait and share
// the outcome. A follower handed a shared *cancellation* error whose
// own deadline is still live retries solo — the leader's client going
// away must not fail the followers.
func (s *Server) withResultCache(r *http.Request, key resultcache.Key, compute func() (any, *apiError)) (any, *apiError) {
	if s.results == nil {
		return compute()
	}
	if b, ok := s.results.Get(key); ok {
		return rawResponse(b), nil
	}
	v, err, shared := s.flights.Do(r.Context(), key, func() ([]byte, error) {
		resp, aerr := compute()
		if aerr != nil {
			return nil, aerr
		}
		b := marshalBody(resp)
		s.results.Put(key, b)
		return b, nil
	})
	if shared {
		s.sfShared.With().Inc()
	}
	if err == nil {
		return rawResponse(v), nil
	}
	var aerr *apiError
	if errors.As(err, &aerr) {
		if shared && transientStatus(aerr.status) && r.Context().Err() == nil {
			return s.soloCompute(key, compute)
		}
		return nil, aerr
	}
	// A raw context error: either this follower's own ctx died while
	// waiting, or it shared the leader's. Retry solo when it is the
	// latter and our deadline still has room.
	if shared && r.Context().Err() == nil {
		return s.soloCompute(key, compute)
	}
	return nil, ctxError(err)
}

// soloCompute is the follower's fallback after a shared cancellation:
// run the computation directly (no coalescing — the flight that
// covered this key is gone) and cache a success normally.
func (s *Server) soloCompute(key resultcache.Key, compute func() (any, *apiError)) (any, *apiError) {
	resp, aerr := compute()
	if aerr != nil {
		return nil, aerr
	}
	b := marshalBody(resp)
	s.results.Put(key, b)
	return rawResponse(b), nil
}

// transientStatus reports whether an apiError is tied to the request
// that produced it (deadline, client gone) rather than to the request
// content; only those justify a solo retry after a shared failure.
func transientStatus(status int) bool {
	return status == statusGatewayTimeout || status == statusClientClosed
}
