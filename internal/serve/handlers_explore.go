package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"perfpredict"
	"perfpredict/internal/resultcache"
	"perfpredict/internal/source"
)

// ExploreRequest is the body of POST /v1/explore: a machine template
// and a kernel set swept across its lattice. ?async=1 submits the
// sweep as a job (202 + id) instead of computing inline — the path
// for large lattices, whose cell count can dwarf the request
// deadline.
type ExploreRequest struct {
	// Kernels are the F-lite programs whose predicted costs form each
	// configuration's cost vector; coordinate i is named "k<i>" in the
	// response.
	Kernels []string `json:"kernels"`
	// Template is the machine template in the SpecTemplate JSON
	// format ("base" inline spec or "base_machine" registered name,
	// plus pipe/dispatch ranges, op alternatives, budget weights). It
	// is parsed strictly and validated on its own — any violation is a
	// 422 invalid_template, distinct from a malformed request body.
	Template json.RawMessage `json:"template"`
	// Args assigns values to kernel unknowns at evaluation
	// (probabilities default to 0.5, other missing unknowns to 100).
	Args map[string]float64 `json:"args,omitempty"`
	// Target, when positive, selects the cheapest-budget config whose
	// total cost meets it as the response's "best".
	Target float64 `json:"target,omitempty"`
}

// The response of a successful /v1/explore is a
// perfpredict.ExploreResult encoded as-is — like /v1/explain, the
// result types carry their own JSON shape, so the server body is by
// construction the library's sweep and nothing else.

// exploreKernels names the request's kernels by index — the one
// naming convention shared between the server and the e2e suite's
// direct library calls.
func exploreKernels(srcs []string) []perfpredict.ExploreKernel {
	ks := make([]perfpredict.ExploreKernel, len(srcs))
	for i, src := range srcs {
		ks[i] = perfpredict.ExploreKernel{Name: fmt.Sprintf("k%d", i), Source: src}
	}
	return ks
}

// validateExplore checks the request shape, parses and validates the
// template, and caps the lattice — all up front, so both the sync
// path and an async submission fail now with the final status, never
// inside an accepted job. Returns the parsed template and the
// content-addressed key on success.
func (s *Server) validateExplore(req *ExploreRequest) (*perfpredict.MachineTemplate, resultcache.Key, *apiError) {
	if len(req.Kernels) == 0 {
		return nil, resultcache.Key{}, errBadJSON("explore needs at least one kernel")
	}
	if len(req.Template) == 0 {
		return nil, resultcache.Key{}, errBadJSON("explore needs a template")
	}
	tpl, err := perfpredict.ParseMachineTemplate(req.Template)
	if err != nil {
		return nil, resultcache.Key{}, errInvalidTemplate(err.Error())
	}
	if err := tpl.Validate(); err != nil {
		return nil, resultcache.Key{}, errInvalidTemplate(err.Error())
	}
	cells, err := tpl.Size()
	if err != nil {
		return nil, resultcache.Key{}, errInvalidTemplate(err.Error())
	}
	if cells > s.cfg.MaxExploreCells {
		return nil, resultcache.Key{}, errLatticeTooLarge(cells, s.cfg.MaxExploreCells)
	}
	tplFP, err := tpl.Fingerprint()
	if err != nil {
		return nil, resultcache.Key{}, errInvalidTemplate(err.Error())
	}
	fps := make([]source.Fingerprint, len(req.Kernels))
	for i, src := range req.Kernels {
		fps[i] = programFP(src)
	}
	return tpl, resultcache.ExploreKey(tplFP, fps, req.Args, req.Target), nil
}

func (s *Server) handleExplore(r *http.Request) (any, *apiError) {
	var req ExploreRequest
	if aerr := decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	tpl, key, aerr := s.validateExplore(&req)
	if aerr != nil {
		return nil, aerr
	}
	if isAsync(r) {
		return s.submitExplore(req, tpl, key)
	}
	return s.withResultCache(r, key, func() (any, *apiError) {
		res, err := perfpredict.ExploreCtx(r.Context(), tpl, exploreKernels(req.Kernels),
			perfpredict.ExploreOptions{
				Workers:  s.boundWorkers(0),
				Args:     req.Args,
				Target:   req.Target,
				SegCache: s.seg,
			})
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, ctxError(err)
			}
			return nil, errBadProgram(err.Error())
		}
		if err := r.Context().Err(); err != nil {
			return nil, ctxError(err)
		}
		return res, nil
	})
}
