package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"perfpredict/internal/obs"
)

// scrape fetches /metrics, lint-checks the exposition, and returns
// sample lines as a map from `name{labels}` to value string.
func scrape(t *testing.T, ts *httptest.Server) map[string]string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Lint(data); err != nil {
		t.Fatalf("exposition not well-formed: %v\n%s", err, data)
	}
	out := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		out[line[:sp]] = line[sp+1:]
	}
	return out
}

func expectSample(t *testing.T, samples map[string]string, key, want string) {
	t.Helper()
	if got, ok := samples[key]; !ok {
		t.Errorf("no sample %s", key)
	} else if got != want {
		t.Errorf("%s = %s, want %s", key, got, want)
	}
}

// TestMetricsExactCountsAfterScriptedSequence drives a fixed request
// sequence and pins the exact counter values the scrape must show:
// requests by endpoint and code, cache hit/miss deltas, zero sheds,
// zero panics, and an empty in-flight gauge.
func TestMetricsExactCountsAfterScriptedSequence(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	valid := "program p\ninteger i\nreal a(64)\ndo i = 1, 64\na(i) = a(i) + 1.0\nenddo\nend\n"

	post := func(path, body string, wantStatus int) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}

	// Scripted sequence: 1 predict (miss-heavy), then the identical
	// predict again (pure hits), 2 bad-JSON 400s, 1 unknown-machine
	// 404, 1 batch 200, 1 GET 405.
	first := `{"source":` + quote(valid) + `}`
	post("/v1/predict", first, http.StatusOK)
	mid := scrape(t, ts)
	post("/v1/predict", first, http.StatusOK)
	post("/v1/predict", `{"broken`, http.StatusBadRequest)
	post("/v1/predict", `{"bro`, http.StatusBadRequest)
	post("/v1/predict", `{"source":"end","machine":"PDP11"}`, http.StatusNotFound)
	post("/v1/batch", `{"sources":[`+quote(valid)+`]}`, http.StatusOK)
	if resp, err := ts.Client().Get(ts.URL + "/v1/optimize"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET optimize: %d", resp.StatusCode)
		}
	}

	got := scrape(t, ts)
	expectSample(t, got, `predictd_requests_total{endpoint="predict",code="200"}`, "2")
	expectSample(t, got, `predictd_requests_total{endpoint="predict",code="400"}`, "2")
	expectSample(t, got, `predictd_requests_total{endpoint="predict",code="404"}`, "1")
	expectSample(t, got, `predictd_requests_total{endpoint="batch",code="200"}`, "1")
	expectSample(t, got, `predictd_requests_total{endpoint="optimize",code="405"}`, "1")
	expectSample(t, got, "predictd_in_flight", "0")
	expectSample(t, got, "predictd_panics_total", "0")

	// Latency histogram counts must equal the per-endpoint request
	// totals (every request is observed exactly once).
	expectSample(t, got, `predictd_request_seconds_count{endpoint="predict"}`, "5")
	expectSample(t, got, `predictd_request_seconds_count{endpoint="batch"}`, "1")
	expectSample(t, got, `predictd_request_seconds_count{endpoint="optimize"}`, "1")

	// Cache deltas. The first predict is a result-cache miss that
	// prices the program's segments (seg misses only). The second
	// identical predict is a result-cache hit: it never reaches the
	// library, so the segment cache is untouched. The batch carries
	// the same source but is a different request kind (BatchKey ≠
	// PredictKey), so it misses the result cache, recomputes — and
	// every segment lookup hits the warm segment cache. Net: seg
	// misses frozen at the mid-scrape value, seg hits grow by exactly
	// 1 lookup per segment priced, and the result cache shows 1 hit /
	// 2 misses (the 400s and the 404 fail before key construction).
	misses := mid["predictd_seg_cache_misses"]
	if misses == "0" {
		t.Fatal("first predict priced no segments — workload too trivial to test cache deltas")
	}
	expectSample(t, got, "predictd_seg_cache_misses", misses)
	if mid["predictd_seg_cache_hits"] != "0" {
		t.Errorf("hits after one cold predict = %s, want 0", mid["predictd_seg_cache_hits"])
	}
	wantHits := atoiMul(t, misses, 1)
	expectSample(t, got, "predictd_seg_cache_hits", wantHits)
	expectSample(t, got, "predictd_result_cache_hits", "1")
	expectSample(t, got, "predictd_result_cache_misses", "2")
	expectSample(t, got, "predictd_result_cache_entries", "2")
	expectSample(t, got, "predictd_singleflight_shared_total", "0")
}

// TestMetricsCacheDisabled pins the escape hatch: with the result
// cache off, repeated identical predicts recompute (seg hits grow)
// and the result-cache gauges stay at zero.
func TestMetricsCacheDisabled(t *testing.T) {
	ts := httptest.NewServer(New(Config{DisableResultCache: true}).Handler())
	defer ts.Close()
	body := `{"source":"program p\ninteger i\nreal a(8)\ndo i = 1, 8\na(i) = a(i) * 2.0\nenddo\nend\n"}`
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	got := scrape(t, ts)
	expectSample(t, got, "predictd_result_cache_hits", "0")
	expectSample(t, got, "predictd_result_cache_misses", "0")
	expectSample(t, got, "predictd_result_cache_entries", "0")
	if got["predictd_seg_cache_hits"] == "0" {
		t.Error("second identical predict did not recompute with the result cache disabled")
	}
}

// TestMetricsShedExactCount occupies the whole admission semaphore
// white-box, sends one request (deterministically shed), releases,
// and pins the shed counter and its 503.
func TestMetricsShedExactCount(t *testing.T) {
	s := New(Config{MaxInflight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Fill the semaphore as if two requests were mid-flight.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	post := func(wantStatus int) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json",
			strings.NewReader(`{"source":"program p\nreal x\nx = 1.0\nend\n"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
		}
	}
	post(http.StatusServiceUnavailable)
	post(http.StatusServiceUnavailable)
	<-s.sem
	<-s.sem
	post(http.StatusOK)

	got := scrape(t, ts)
	expectSample(t, got, `predictd_shed_total{endpoint="predict"}`, "2")
	expectSample(t, got, `predictd_requests_total{endpoint="predict",code="503"}`, "2")
	expectSample(t, got, `predictd_requests_total{endpoint="predict",code="200"}`, "1")
	expectSample(t, got, "predictd_in_flight", "0")
}

// TestMetricsPanicIsolated pins the panic middleware: a handler panic
// becomes a structured 500, increments predictd_panics_total, and the
// server keeps serving.
func TestMetricsPanicIsolated(t *testing.T) {
	s := New(Config{})
	// A poisoned route through the same middleware stack.
	s.mux.Handle("/v1/boom", s.endpoint("boom", func(r *http.Request) (any, *apiError) {
		panic("kaboom")
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/boom", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), CodeInternal) {
		t.Errorf("panic response not structured: %s", body)
	}
	got := scrape(t, ts)
	expectSample(t, got, "predictd_panics_total", "1")
	expectSample(t, got, `predictd_requests_total{endpoint="boom",code="500"}`, "1")
	// Still serving.
	status, _ := postJSON(t, ts, "/v1/predict", PredictRequest{Source: "program p\nreal x\nx = 2.0\nend\n"})
	if status != http.StatusOK {
		t.Fatalf("server down after panic: %d", status)
	}
}

// quote JSON-escapes a Go string literal body.
func quote(s string) string {
	return `"` + strings.ReplaceAll(s, "\n", `\n`) + `"`
}

// atoiMul multiplies a decimal sample by k, staying in strings.
func atoiMul(t *testing.T, s string, k int) string {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("sample %q not an integer", s)
		}
		n = n*10 + int(c-'0')
	}
	return itoa(n * k)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
