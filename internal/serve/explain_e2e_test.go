package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfpredict"
)

// TestE2EExplainEqualsLibrary proves the server ≡ library contract for
// the explain endpoint: for every corpus program, the /v1/explain
// response bytes equal the library's ExplainReport passed through the
// server's own encoder.
func TestE2EExplainEqualsLibrary(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	names, srcs := corpusSources(t)
	nominal := map[string]float64{"n": 64, "m": 9}
	target, err := perfpredict.LoadTarget("POWER1")
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range srcs {
		status, got := postJSON(t, ts, "/v1/explain", ExplainRequest{
			Source: src, Machine: "POWER1", Nominal: nominal,
		})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", names[i], status, got)
		}
		rep, err := perfpredict.ExplainCtx(context.Background(), src, target,
			perfpredict.ExplainOptions{Nominal: nominal})
		if err != nil {
			t.Fatalf("%s: library: %v", names[i], err)
		}
		if want := marshalBody(rep); !bytes.Equal(got, want) {
			t.Errorf("%s:\nserver  %s\nlibrary %s", names[i], got, want)
		}
	}
}

// TestE2EExplainReportsDiagnosis pins the acceptance contract on the
// kernel corpus: every diagnosis names a bottleneck with a utilization
// in (0,1], carries at least one nest with a nonempty critical path,
// and includes the one-more-pipe speedup.
func TestE2EExplainReportsDiagnosis(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	names, srcs := corpusSources(t)
	for i, src := range srcs {
		if !strings.Contains(src, "do ") {
			continue
		}
		status, got := postJSON(t, ts, "/v1/explain", ExplainRequest{Source: src})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", names[i], status, got)
		}
		var rep perfpredict.ExplainReport
		if err := json.Unmarshal(got, &rep); err != nil {
			t.Fatalf("%s: %v\n%s", names[i], err, got)
		}
		if len(rep.Nests) == 0 {
			t.Errorf("%s: no nests diagnosed", names[i])
			continue
		}
		if rep.Bottleneck == "" || rep.BottleneckUtil <= 0 || rep.BottleneckUtil > 1 {
			t.Errorf("%s: bottleneck %q at %v", names[i], rep.Bottleneck, rep.BottleneckUtil)
		}
		// Speedup below 1 is a legal (anomalous but faithful) model
		// outcome: scheduling is not monotone in resources. Only the
		// experiment's presence and well-formedness are pinned.
		if rep.WhatIf == nil {
			t.Errorf("%s: no one-more-pipe experiment", names[i])
		} else if rep.WhatIf.Speedup <= 0 || rep.WhatIf.Cycles <= 0 {
			t.Errorf("%s: degenerate what-if %+v", names[i], rep.WhatIf)
		}
		for _, n := range rep.Nests {
			if len(n.Path) == 0 {
				t.Errorf("%s: nest %s has no critical path", names[i], n.Label)
			}
			if n.PathCycles > n.BlockCost {
				t.Errorf("%s: nest %s path %d exceeds block cost %d",
					names[i], n.Label, n.PathCycles, n.BlockCost)
			}
			for _, k := range n.Kinds {
				if k.Utilization < 0 || k.Utilization > 1 {
					t.Errorf("%s: nest %s kind %s utilization %v",
						names[i], n.Label, k.Kind, k.Utilization)
				}
			}
		}
	}
}

// TestE2EExplainErrorPaths pins the explain endpoint's structured
// errors: unknown machine 404, oversized body 413, deadline 504, bad
// JSON 400, and a bad program 422.
func TestE2EExplainErrorPaths(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 512}).Handler())
	defer ts.Close()
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", `{"source": `, http.StatusBadRequest, CodeBadJSON},
		{"unknown field", `{"sauce":"x"}`, http.StatusBadRequest, CodeBadJSON},
		{"unknown machine", `{"source":"end","machine":"PDP11"}`, http.StatusNotFound, CodeUnknownMachine},
		{"bad program", `{"source":"do do do"}`, http.StatusUnprocessableEntity, CodeBadProgram},
		{"oversized body", `{"source":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/explain", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("not a structured error: %v (%s)", err, body)
			}
			if er.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q (%q)", er.Error.Code, tc.wantCode, er.Error.Message)
			}
		})
	}
}

// TestE2EExplainDeadlineReturns504: an explain under an already-spent
// server deadline comes back as a structured 504 without computing.
func TestE2EExplainDeadlineReturns504(t *testing.T) {
	s := New(Config{Timeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, srcs := corpusSources(t)
	status, body := postJSON(t, ts, "/v1/explain", ExplainRequest{Source: srcs[0]})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code %q, want %q", er.Error.Code, CodeDeadlineExceeded)
	}
}

// TestE2EExplainCacheByteIdentity extends the off/cold/warm identity
// gate to the explain endpoint, including the skip_what_if and nominal
// key dimensions.
func TestE2EExplainCacheByteIdentity(t *testing.T) {
	off := httptest.NewServer(New(Config{DisableResultCache: true}).Handler())
	defer off.Close()
	s := New(Config{})
	cached := httptest.NewServer(s.Handler())
	defer cached.Close()
	names, srcs := corpusSources(t)
	check := func(name string, req ExplainRequest) {
		t.Helper()
		stOff, bodyOff := postJSON(t, off, "/v1/explain", req)
		stCold, bodyCold := postJSON(t, cached, "/v1/explain", req)
		stWarm, bodyWarm := postJSON(t, cached, "/v1/explain", req)
		if stOff != stCold || stOff != stWarm {
			t.Errorf("%s: status off=%d cold=%d warm=%d", name, stOff, stCold, stWarm)
			return
		}
		if !bytes.Equal(bodyOff, bodyCold) {
			t.Errorf("%s: cold cached body differs from cache-off body\noff:  %s\ncold: %s",
				name, bodyOff, bodyCold)
		}
		if !bytes.Equal(bodyCold, bodyWarm) {
			t.Errorf("%s: warm hit differs from its own cold compute\ncold: %s\nwarm: %s",
				name, bodyCold, bodyWarm)
		}
	}
	reqs := 0
	for i, src := range srcs {
		if i >= 5 {
			break
		}
		check(names[i], ExplainRequest{Source: src})
		check(names[i]+"/nominal", ExplainRequest{Source: src,
			Nominal: map[string]float64{"n": 32, "m": 4}})
		check(names[i]+"/skip", ExplainRequest{Source: src, SkipWhatIf: true})
		reqs += 3
	}
	// Every warm repeat must have been served from the cache, and the
	// three request shapes must not alias each other's keys.
	hits := scrapeInt(t, cached, "predictd_result_cache_hits")
	if hits != int64(reqs) {
		t.Errorf("result cache hits = %d, want %d (one per warm repeat)", hits, reqs)
	}
	if st := s.Results().Stats(); st.Entries != int64(reqs) {
		t.Errorf("result cache entries = %d, want %d distinct keys", st.Entries, reqs)
	}
}

// TestMetricsExplainExactCounts drives a scripted sequence against the
// explain endpoint and pins its per-endpoint counters: 2 × 200 (one
// computed, one cache hit), 1 × 404, 1 × 405, each observed exactly
// once by the latency histogram.
func TestMetricsExplainExactCounts(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	valid := "program p\ninteger i\nreal a(64)\ndo i = 1, 64\na(i) = a(i) + 1.0\nenddo\nend\n"
	post := func(body string, wantStatus int) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/explain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
		}
	}
	req := `{"source":` + quote(valid) + `}`
	post(req, http.StatusOK)
	post(req, http.StatusOK)
	post(`{"source":"end","machine":"PDP11"}`, http.StatusNotFound)
	resp, err := ts.Client().Get(ts.URL + "/v1/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET explain: %d", resp.StatusCode)
	}

	got := scrape(t, ts)
	expectSample(t, got, `predictd_requests_total{endpoint="explain",code="200"}`, "2")
	expectSample(t, got, `predictd_requests_total{endpoint="explain",code="404"}`, "1")
	expectSample(t, got, `predictd_requests_total{endpoint="explain",code="405"}`, "1")
	expectSample(t, got, `predictd_request_seconds_count{endpoint="explain"}`, "4")
	expectSample(t, got, "predictd_result_cache_hits", "1")
	expectSample(t, got, "predictd_result_cache_misses", "1")
	expectSample(t, got, "predictd_result_cache_entries", "1")
	expectSample(t, got, "predictd_panics_total", "0")
}
