package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"perfpredict"
	"perfpredict/internal/resultcache"
)

// Async jobs: POST /v1/optimize?async=1 (ids "opt-…") and POST
// /v1/explore?async=1 (ids "exp-…") validate the request
// synchronously (a malformed request fails with the same status a
// sync call would, before any job exists), then return 202 with a job
// id; GET /v1/jobs/{id} polls progress. The job runs the identical
// work the sync path runs — same warm caches, same bounds — and lands
// its encoded response body in the result cache under the same
// content-addressed key, so a later sync request for the same work is
// a byte-identical cache hit.
//
// Lifecycle: pending (accepted, waiting for a job slot) → running
// (work executing; explored live, plus best_cost for searches) →
// done | failed.
// Terminal states are final; finished jobs are retained FIFO up to
// maxFinishedJobs and then forgotten (polling a forgotten or never
// issued id is 404 unknown_job). Submissions whose key matches an
// unfinished job coalesce onto it — N identical submissions share one
// search — and a submission whose result is already cached is born
// done.

const (
	jobPending = "pending"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"

	// maxFinishedJobs bounds completed-job retention; the oldest
	// finished job is dropped first. Unfinished jobs are never dropped.
	maxFinishedJobs = 256
)

// JobStatus is the body of GET /v1/jobs/{id} and of the 202 returned
// by an async submission.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Explored mirrors the running job's progress: nodes expanded for
	// an optimize search, lattice cells evaluated for an explore
	// sweep; absent until the job reports its first unit of work.
	// BestCost is the search's incumbent cost at the nominal point
	// (optimize jobs only).
	Explored int64    `json:"explored,omitempty"`
	BestCost *float64 `json:"best_cost,omitempty"`
	// Result is the endpoint's success body, present when State is
	// "done" — byte-identical to the body the synchronous endpoint
	// returns.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is present when State is "failed".
	Error *ErrorBody `json:"error,omitempty"`
}

// job is one async execution (optimize or explore).
type job struct {
	id  string
	key resultcache.Key

	mu     sync.Mutex
	state  string
	result json.RawMessage // compact response document (no trailing newline)
	errBdy *ErrorBody

	explored atomic.Int64
	bestBits atomic.Uint64
	hasBest  atomic.Bool
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	st := JobStatus{ID: j.id, State: j.state, Result: j.result, Error: j.errBdy}
	j.mu.Unlock()
	st.Explored = j.explored.Load()
	if j.hasBest.Load() {
		v := math.Float64frombits(j.bestBits.Load())
		st.BestCost = &v
	}
	return st
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// jobManager owns the job table. Coalescing is keyed on the same
// content-addressed key the result cache uses.
type jobManager struct {
	mu       sync.Mutex
	jobs     map[string]*job
	byKey    map[resultcache.Key]*job // unfinished jobs only
	finished []string                 // FIFO eviction order
	seq      int64

	sem    chan struct{} // bounds concurrently *running* jobs
	active atomic.Int64  // jobs currently in "running"
	wg     sync.WaitGroup
}

func newJobManager(maxJobs int) *jobManager {
	return &jobManager{
		jobs:  map[string]*job{},
		byKey: map[resultcache.Key]*job{},
		sem:   make(chan struct{}, maxJobs),
	}
}

// get returns the job by id.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// newJob registers a fresh job in the given initial state; terminal
// initial states (a cache-hit birth) go straight to the finished
// FIFO. The prefix ("opt-", "exp-") marks the job's kind in its id;
// the sequence is shared, so ids are unique across kinds.
func (m *jobManager) newJob(key resultcache.Key, prefix, state string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	j := &job{id: fmt.Sprintf("%s%06d", prefix, m.seq), key: key, state: state}
	m.jobs[j.id] = j
	if state == jobDone || state == jobFailed {
		m.retireLocked(j)
	} else {
		m.byKey[key] = j
	}
	return j
}

// finish moves a job to a terminal state and applies retention.
func (m *jobManager) finish(j *job, result json.RawMessage, errBody *ErrorBody) {
	j.mu.Lock()
	if errBody != nil {
		j.state, j.errBdy = jobFailed, errBody
	} else {
		j.state, j.result = jobDone, result
	}
	j.mu.Unlock()
	m.mu.Lock()
	if m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	m.retireLocked(j)
	m.mu.Unlock()
}

// retireLocked appends to the finished FIFO and evicts beyond the
// retention cap. Caller holds m.mu.
func (m *jobManager) retireLocked(j *job) {
	m.finished = append(m.finished, j.id)
	for len(m.finished) > maxFinishedJobs {
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
}

// submitJob is the shared async admission path: coalesce onto an
// unfinished job for the same key, be born done on a result-cache
// hit, or register a pending job and start run on its own goroutine.
// run computes the full response body (with trailing newline) or an
// error under ctx; submitJob owns all state transitions, caching,
// retention, and metrics.
func (s *Server) submitJob(key resultcache.Key, prefix string, run func(ctx context.Context, j *job) ([]byte, *ErrorBody)) (any, *apiError) {
	// Coalesce onto an unfinished job for the same work.
	s.jobs.mu.Lock()
	if j, ok := s.jobs.byKey[key]; ok {
		s.jobs.mu.Unlock()
		s.jobEvents.With("coalesced").Inc()
		return statusResponse{http.StatusAccepted, j.status()}, nil
	}
	s.jobs.mu.Unlock()

	// Work already cached: the job is born done. (The cached bytes are
	// a full response body with trailing newline; Result embeds the
	// compact document.)
	if s.results != nil {
		if b, ok := s.results.Get(key); ok {
			j := s.jobs.newJob(key, prefix, jobDone)
			j.result = bytes.TrimSuffix(b, []byte("\n"))
			s.jobEvents.With("cache_hit").Inc()
			return statusResponse{http.StatusAccepted, j.status()}, nil
		}
	}

	j := s.jobs.newJob(key, prefix, jobPending)
	s.jobEvents.With("submitted").Inc()
	s.jobs.wg.Add(1)
	go s.runJob(j, run)
	return statusResponse{http.StatusAccepted, j.status()}, nil
}

// runJob executes one async job on its own goroutine: acquire a job
// slot, run the work under the job timeout on a background context
// (the submitting client is long gone), land the response in the
// result cache, finish.
func (s *Server) runJob(j *job, run func(ctx context.Context, j *job) ([]byte, *ErrorBody)) {
	defer s.jobs.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			s.panics.With().Inc()
			s.jobEvents.With("failed").Inc()
			s.jobs.finish(j, nil, &ErrorBody{Code: CodeInternal,
				Message: fmt.Sprintf("job panic: %v", p)})
			debug.PrintStack()
		}
	}()
	s.jobs.sem <- struct{}{}
	defer func() { <-s.jobs.sem }()
	j.setState(jobRunning)
	s.jobs.active.Add(1)
	defer s.jobs.active.Add(-1)

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	body, errBody := run(ctx, j)
	if errBody != nil {
		s.jobEvents.With("failed").Inc()
		s.jobs.finish(j, nil, errBody)
		return
	}
	if s.results != nil {
		s.results.Put(j.key, body)
	}
	s.jobEvents.With("completed").Inc()
	s.jobs.finish(j, bytes.TrimSuffix(body, []byte("\n")), nil)
}

// jobErrBody maps a job-level failure to its structured error: a job
// deadline reports deadline_exceeded, anything else the given code.
func jobErrBody(err error, code string) *ErrorBody {
	if errors.Is(err, context.DeadlineExceeded) {
		code = CodeDeadlineExceeded
	}
	return &ErrorBody{Code: code, Message: err.Error()}
}

// submitOptimize handles POST /v1/optimize?async=1 after the request
// has been decoded, validated, and key-addressed by handleOptimize.
func (s *Server) submitOptimize(req OptimizeRequest, target *perfpredict.Target, key resultcache.Key) (any, *apiError) {
	return s.submitJob(key, "opt-", func(ctx context.Context, j *job) ([]byte, *ErrorBody) {
		res, err := perfpredict.OptimizeCtx(ctx, req.Source, target, req.Nominal,
			perfpredict.OptimizeOptions{
				Workers:   s.boundWorkers(0),
				SegCache:  s.seg,
				NestCache: s.nest,
				MaxNodes:  req.MaxNodes,
				MaxDepth:  req.MaxDepth,
				Progress: func(explored int, best float64) {
					j.explored.Store(int64(explored))
					j.bestBits.Store(math.Float64bits(best))
					j.hasBest.Store(true)
				},
			})
		if err != nil {
			return nil, jobErrBody(err, CodeBadProgram)
		}
		return marshalBody(OptimizeResponse{
			Machine:         target.Name,
			Source:          res.Source,
			Transformations: res.Transformations,
			PredictedBefore: res.PredictedBefore,
			PredictedAfter:  res.PredictedAfter,
			MemoryBefore:    res.MemoryBefore,
			MemoryAfter:     res.MemoryAfter,
			Explored:        res.Explored,
		}), nil
	})
}

// submitExplore handles POST /v1/explore?async=1 after the request
// has been decoded, validated, and key-addressed by handleExplore.
// The job's Explored counter reports lattice cells evaluated.
func (s *Server) submitExplore(req ExploreRequest, tpl *perfpredict.MachineTemplate, key resultcache.Key) (any, *apiError) {
	return s.submitJob(key, "exp-", func(ctx context.Context, j *job) ([]byte, *ErrorBody) {
		res, err := perfpredict.ExploreCtx(ctx, tpl, exploreKernels(req.Kernels),
			perfpredict.ExploreOptions{
				Workers:  s.boundWorkers(0),
				Args:     req.Args,
				Target:   req.Target,
				SegCache: s.seg,
				Progress: func(done, total int) {
					j.explored.Store(int64(done))
				},
			})
		if err != nil {
			return nil, jobErrBody(err, CodeBadProgram)
		}
		return marshalBody(res), nil
	})
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(r *http.Request) (any, *apiError) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		return nil, errUnknownJob(r.PathValue("id"))
	}
	return j.status(), nil
}

// DrainJobs blocks until every spawned job goroutine has finished or
// ctx expires — the shutdown step between http.Server.Shutdown and
// the cache snapshot, so async results make it into the snapshot.
func (s *Server) DrainJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
