package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"perfpredict"
	"perfpredict/internal/machine"
	"perfpredict/internal/resultcache"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	// Source is the F-lite program to price.
	Source string `json:"source"`
	// Machine names a registered target (default POWER1). Spec, when
	// given instead, is an inline machine description in the
	// machine-spec JSON format, validated exactly like a spec file.
	Machine string          `json:"machine,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	// Args, when present, evaluates the symbolic cost at this point
	// (probability unknowns default to 0.5).
	Args map[string]float64 `json:"args,omitempty"`
}

// UnknownJSON mirrors perfpredict.Unknown.
type UnknownJSON struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Source string `json:"source"`
}

// PredictResponse is the body of a successful /v1/predict. The
// in_core/memory pair decomposes cost (cost = in_core + memory); both
// are present only when the target declares an active memory
// hierarchy, so hierarchy-less responses are byte-identical to the
// pre-memory wire format.
type PredictResponse struct {
	Machine    string        `json:"machine"`
	Cost       string        `json:"cost"`
	InCore     string        `json:"in_core,omitempty"`
	Memory     string        `json:"memory,omitempty"`
	OneTime    string        `json:"one_time,omitempty"`
	Unknowns   []UnknownJSON `json:"unknowns,omitempty"`
	Eval       *float64      `json:"eval,omitempty"`
	EvalMemory *float64      `json:"eval_memory,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Sources []string        `json:"sources"`
	Machine string          `json:"machine,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	// Args evaluates every successful prediction at one point.
	Args map[string]float64 `json:"args,omitempty"`
	// Workers bounds this batch's worker pool (capped by the server's
	// -workers flag; 0 = server default).
	Workers int `json:"workers,omitempty"`
}

// BatchItem is one per-source slot of a batch response,
// index-aligned with the request's sources. Exactly one of Cost or
// Error is set.
type BatchItem struct {
	Cost       string     `json:"cost,omitempty"`
	Memory     string     `json:"memory,omitempty"`
	Eval       *float64   `json:"eval,omitempty"`
	EvalMemory *float64   `json:"eval_memory,omitempty"`
	Error      *ErrorBody `json:"error,omitempty"`
}

// BatchResponse is the body of a successful /v1/batch.
type BatchResponse struct {
	Machine string      `json:"machine"`
	Results []BatchItem `json:"results"`
}

// OptimizeRequest is the body of POST /v1/optimize.
type OptimizeRequest struct {
	Source  string          `json:"source"`
	Machine string          `json:"machine,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	// Nominal assigns values to unknowns for ranking variants.
	Nominal map[string]float64 `json:"nominal,omitempty"`
	// MaxNodes / MaxDepth bound the search (0 = library defaults).
	MaxNodes int `json:"max_nodes,omitempty"`
	MaxDepth int `json:"max_depth,omitempty"`
}

// OptimizeResponse is the body of a successful /v1/optimize. Cache
// counters are deliberately absent: on the server's warm shared
// caches they depend on request order, which would break the
// server-equals-library response contract; cumulative cache
// statistics are on /metrics instead.
type OptimizeResponse struct {
	Machine         string   `json:"machine"`
	Source          string   `json:"source"`
	Transformations []string `json:"transformations,omitempty"`
	PredictedBefore float64  `json:"predicted_before"`
	PredictedAfter  float64  `json:"predicted_after"`
	// MemoryBefore/MemoryAfter are the memory-hierarchy share of the
	// respective predictions; omitted for hierarchy-less targets.
	MemoryBefore float64 `json:"memory_before,omitempty"`
	MemoryAfter  float64 `json:"memory_after,omitempty"`
	Explored     int     `json:"explored"`
}

// ExplainRequest is the body of POST /v1/explain.
type ExplainRequest struct {
	Source  string          `json:"source"`
	Machine string          `json:"machine,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	// Nominal assigns values to unknowns when apportioning cycles
	// across nests and evaluating the what-if (probabilities default
	// to 0.5, other missing unknowns to 100).
	Nominal map[string]float64 `json:"nominal,omitempty"`
	// SkipWhatIf suppresses the one-more-pipe experiment.
	SkipWhatIf bool `json:"skip_what_if,omitempty"`
}

// The response of a successful /v1/explain is a
// perfpredict.ExplainReport encoded as-is: the report types carry
// their own JSON shape, so the server body is by construction the
// library's diagnosis and nothing else.

func (s *Server) handleExplain(r *http.Request) (any, *apiError) {
	var req ExplainRequest
	if aerr := decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	target, aerr := resolveMachine(req.Machine, req.Spec)
	if aerr != nil {
		return nil, aerr
	}
	key := resultcache.ExplainKey(programFP(req.Source), target.Fingerprint(), req.Nominal, req.SkipWhatIf)
	return s.withResultCache(r, key, func() (any, *apiError) {
		rep, err := perfpredict.ExplainCtx(r.Context(), req.Source, target, perfpredict.ExplainOptions{
			Nominal:    req.Nominal,
			SkipWhatIf: req.SkipWhatIf,
		})
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, ctxError(err)
			}
			return nil, errBadProgram(err.Error())
		}
		if err := r.Context().Err(); err != nil {
			return nil, ctxError(err)
		}
		return rep, nil
	})
}

func (s *Server) handlePredict(r *http.Request) (any, *apiError) {
	var req PredictRequest
	if aerr := decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	target, aerr := resolveMachine(req.Machine, req.Spec)
	if aerr != nil {
		return nil, aerr
	}
	key := resultcache.PredictKey(programFP(req.Source), target.Fingerprint(), req.Args)
	return s.withResultCache(r, key, func() (any, *apiError) {
		// A one-element batch is the cache-aware, context-aware single
		// prediction: it shares the server's warm segment cache.
		preds, errs := perfpredict.PredictBatchCtx(r.Context(), []string{req.Source}, target,
			perfpredict.BatchOptions{Workers: 1, Cache: s.seg})
		if err := r.Context().Err(); err != nil {
			return nil, ctxError(err)
		}
		if errs[0] != nil {
			return nil, errBadProgram(errs[0].Error())
		}
		return buildPredictResponse(preds[0], target.Name, req.Args)
	})
}

// buildPredictResponse converts a library prediction into the wire
// shape — shared with the e2e suite, which byte-compares the server
// body against this function applied to a direct library call.
func buildPredictResponse(p *perfpredict.Prediction, machineName string, args map[string]float64) (PredictResponse, *apiError) {
	resp := PredictResponse{Machine: machineName, Cost: p.Cost.String()}
	if !p.Memory.IsZero() {
		resp.InCore = p.Cost.Sub(p.Memory).String()
		resp.Memory = p.Memory.String()
	}
	if c, ok := p.OneTime.IsConst(); !ok || c != 0 {
		resp.OneTime = p.OneTime.String()
	}
	for _, u := range p.Unknowns {
		resp.Unknowns = append(resp.Unknowns, UnknownJSON{Name: u.Name, Kind: u.Kind, Source: u.Source})
	}
	if args != nil {
		v, err := p.EvalAt(args)
		if err != nil {
			return PredictResponse{}, errBadArgs(err.Error())
		}
		resp.Eval = &v
		if !p.Memory.IsZero() {
			mv, err := p.EvalMemoryAt(args)
			if err != nil {
				return PredictResponse{}, errBadArgs(err.Error())
			}
			resp.EvalMemory = &mv
		}
	}
	return resp, nil
}

func (s *Server) handleBatch(r *http.Request) (any, *apiError) {
	var req BatchRequest
	if aerr := decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	target, aerr := resolveMachine(req.Machine, req.Spec)
	if aerr != nil {
		return nil, aerr
	}
	// The batch key covers the ordered per-source fingerprints
	// (responses are index-aligned) but not Workers: results are
	// byte-identical for any worker count, so a different ask for the
	// same work is still the same work.
	fps := make([]source.Fingerprint, len(req.Sources))
	for i, src := range req.Sources {
		fps[i] = programFP(src)
	}
	key := resultcache.BatchKey(fps, target.Fingerprint(), req.Args)
	return s.withResultCache(r, key, func() (any, *apiError) {
		preds, errs := perfpredict.PredictBatchCtx(r.Context(), req.Sources, target,
			perfpredict.BatchOptions{Workers: s.boundWorkers(req.Workers), Cache: s.seg})
		if err := r.Context().Err(); err != nil {
			return nil, ctxError(err)
		}
		resp := BatchResponse{Machine: target.Name, Results: make([]BatchItem, len(preds))}
		for i := range preds {
			if errs[i] != nil {
				resp.Results[i].Error = &ErrorBody{Code: CodeBadProgram, Message: errs[i].Error()}
				continue
			}
			item, aerr := buildBatchItem(preds[i], req.Args)
			if aerr != nil {
				resp.Results[i].Error = &ErrorBody{Code: aerr.code, Message: aerr.msg}
				continue
			}
			resp.Results[i] = item
		}
		return resp, nil
	})
}

// buildBatchItem is buildPredictResponse's per-slot sibling.
func buildBatchItem(p *perfpredict.Prediction, args map[string]float64) (BatchItem, *apiError) {
	item := BatchItem{Cost: p.Cost.String()}
	if !p.Memory.IsZero() {
		item.Memory = p.Memory.String()
	}
	if args != nil {
		v, err := p.EvalAt(args)
		if err != nil {
			return BatchItem{}, errBadArgs(err.Error())
		}
		item.Eval = &v
		if !p.Memory.IsZero() {
			mv, err := p.EvalMemoryAt(args)
			if err != nil {
				return BatchItem{}, errBadArgs(err.Error())
			}
			item.EvalMemory = &mv
		}
	}
	return item, nil
}

func (s *Server) handleOptimize(r *http.Request) (any, *apiError) {
	var req OptimizeRequest
	if aerr := decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	target, aerr := resolveMachine(req.Machine, req.Spec)
	if aerr != nil {
		return nil, aerr
	}
	// Parse and analyze up front: the structural fingerprint anchors
	// the cache key, and an async submission must fail now — with the
	// same 422 a sync call would produce — not inside a job the
	// client has already been told to poll.
	prog, err := source.Parse(req.Source)
	if err != nil {
		return nil, errBadProgram(err.Error())
	}
	if _, err := sem.Analyze(prog); err != nil {
		return nil, errBadProgram(err.Error())
	}
	key := resultcache.OptimizeKey(source.FingerprintProgram(prog), target.Fingerprint(),
		req.Nominal, req.MaxNodes, req.MaxDepth)
	if isAsync(r) {
		return s.submitOptimize(req, target, key)
	}
	return s.withResultCache(r, key, func() (any, *apiError) {
		res, err := perfpredict.OptimizeCtx(r.Context(), req.Source, target, req.Nominal,
			perfpredict.OptimizeOptions{
				Workers:   s.boundWorkers(0),
				SegCache:  s.seg,
				NestCache: s.nest,
				MaxNodes:  req.MaxNodes,
				MaxDepth:  req.MaxDepth,
			})
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, ctxError(err)
			}
			return nil, errBadProgram(err.Error())
		}
		return OptimizeResponse{
			Machine:         target.Name,
			Source:          res.Source,
			Transformations: res.Transformations,
			PredictedBefore: res.PredictedBefore,
			PredictedAfter:  res.PredictedAfter,
			MemoryBefore:    res.MemoryBefore,
			MemoryAfter:     res.MemoryAfter,
			Explored:        res.Explored,
		}, nil
	})
}

// isAsync reports whether an optimize request asked for job-style
// execution (?async=1).
func isAsync(r *http.Request) bool {
	v := r.URL.Query().Get("async")
	return v != "" && v != "0" && v != "false"
}

// boundWorkers resolves a request's worker ask against the server
// cap.
func (s *Server) boundWorkers(asked int) int {
	if s.cfg.Workers <= 0 {
		return asked
	}
	if asked <= 0 || asked > s.cfg.Workers {
		return s.cfg.Workers
	}
	return asked
}

// resolveMachine picks the request's target: an inline spec when
// given (parsed and strictly validated, 422 on any violation),
// otherwise a registered machine name (404 when absent; default
// POWER1). Naming both is a request-shape error. Inline-spec machines
// share the warm caches safely — every cache key includes the machine
// content fingerprint.
func resolveMachine(name string, spec json.RawMessage) (*perfpredict.Target, *apiError) {
	if len(spec) > 0 {
		if name != "" {
			return nil, errBadJSON("give machine or spec, not both")
		}
		sp, err := machine.ParseSpec(spec)
		if err != nil {
			return nil, errInvalidSpec(err.Error())
		}
		m, err := sp.Machine()
		if err != nil {
			return nil, errInvalidSpec(err.Error())
		}
		return m, nil
	}
	if name == "" {
		name = "POWER1"
	}
	m, err := machine.Lookup(name)
	if err != nil {
		return nil, errUnknownMachine(err.Error())
	}
	return m, nil
}

// decodeBody reads and strictly decodes a JSON request body: unknown
// fields and trailing data are 400s, and a body over the configured
// cap is 413.
func decodeBody(r *http.Request, dst any) *apiError {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{status: statusTooLarge, code: CodeBodyTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return errBadJSON("reading body: " + err.Error())
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errBadJSON(err.Error())
	}
	if dec.More() {
		return errBadJSON("trailing data after JSON document")
	}
	return nil
}
