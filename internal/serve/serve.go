// Package serve is the predictd HTTP service: the perfpredict
// library behind five POST endpoints (/v1/predict, /v1/batch,
// /v1/optimize, /v1/explain, /v1/explore) with the production plumbing a
// long-running analysis service needs — bounded admission with load shedding, per-request
// deadlines threaded as context cancellation into the batch workers
// and the transformation search, panic-isolating middleware, warm
// shared segment/nest cost caches, and Prometheus-text observability
// (/metrics, /healthz, /readyz, optional pprof).
//
// The package exists (rather than living inside cmd/predictd) so the
// end-to-end test suite, the load generator, and the binary all drive
// exactly the same handler stack.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"perfpredict"
	"perfpredict/internal/obs"
	"perfpredict/internal/resultcache"
)

// Config tunes the service. The zero value is usable: defaults are
// filled in by New.
type Config struct {
	// MaxInflight bounds concurrently admitted API requests; further
	// requests are shed with 503 rather than queued, so a burst
	// degrades to fast failures instead of a latency collapse.
	// Default 64.
	MaxInflight int
	// Timeout is the per-request deadline, threaded as a context into
	// every long-running path. Default 30s.
	Timeout time.Duration
	// MaxBodyBytes caps request bodies (413 beyond it). Default 1 MiB.
	MaxBodyBytes int64
	// Workers caps the per-request worker pool for /v1/batch and
	// /v1/optimize. Default 0 = GOMAXPROCS.
	Workers int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// ResultCacheBytes bounds the content-addressed result cache that
	// fronts every endpoint with finished response bodies. Default 0 =
	// 64 MiB.
	ResultCacheBytes int64
	// DisableResultCache turns the result cache and its singleflight
	// request coalescing off: every request recomputes. Responses are
	// byte-identical either way; this knob exists for measurement and
	// as an escape hatch.
	DisableResultCache bool
	// MaxJobs bounds concurrently *running* async jobs (optimize
	// searches and explore sweeps; further accepted jobs queue in
	// "pending"). Default 2, so background work cannot starve
	// interactive traffic.
	MaxJobs int
	// JobTimeout is the deadline for one async job's work — async
	// work outlives the submitting request, so the request Timeout
	// does not apply. Default 5m.
	JobTimeout time.Duration
	// MaxExploreCells caps the lattice size /v1/explore accepts;
	// templates expanding beyond it are rejected 413 before any
	// evaluation. Default 4096.
	MaxExploreCells int
}

func (c *Config) defaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxExploreCells <= 0 {
		c.MaxExploreCells = 4096
	}
}

// Server is the handler stack plus its shared warm state.
type Server struct {
	cfg  Config
	seg  *perfpredict.SegmentCache
	nest *perfpredict.NestCache

	// results fronts every endpoint with finished response bodies
	// (nil when disabled); flights coalesces concurrent identical
	// misses; jobs owns the async optimize executions.
	results *resultcache.Cache
	flights resultcache.Group
	jobs    *jobManager

	sem      chan struct{}
	inflight atomic.Int64
	draining atomic.Bool

	metrics   *obs.Registry
	reqs      *obs.CounterVec
	lat       *obs.HistogramVec
	shed      *obs.CounterVec
	panics    *obs.CounterVec
	sfShared  *obs.CounterVec
	jobEvents *obs.CounterVec

	mux *http.ServeMux
}

// New builds a server with warm, empty caches. The same SegmentCache
// and NestCache back every request for the life of the process —
// entries are keyed by structural fingerprint × machine content
// fingerprint, so requests for different machines (including uploaded
// inline specs) coexist in one cache and repeated shapes price as
// lookups.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:  cfg,
		seg:  perfpredict.NewSegmentCache(),
		nest: perfpredict.NewNestCache(),
		jobs: newJobManager(cfg.MaxJobs),
		sem:  make(chan struct{}, cfg.MaxInflight),
	}
	if !cfg.DisableResultCache {
		s.results = resultcache.New(cfg.ResultCacheBytes)
	}
	s.initMetrics()
	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/predict", s.endpoint("predict", s.handlePredict))
	s.mux.Handle("/v1/batch", s.endpoint("batch", s.handleBatch))
	s.mux.Handle("/v1/optimize", s.endpoint("optimize", s.handleOptimize))
	s.mux.Handle("/v1/explain", s.endpoint("explain", s.handleExplain))
	s.mux.Handle("/v1/explore", s.endpoint("explore", s.handleExplore))
	s.mux.Handle("GET /v1/jobs/{id}", s.getEndpoint("jobs", s.handleJobGet))
	s.mux.Handle("/metrics", s.metrics.Handler())
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			// Draining ends in process exit; tell balancers when to
			// re-probe rather than letting them guess.
			w.Header().Set("Retry-After", "5")
			w.WriteHeader(statusUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *Server) initMetrics() {
	s.metrics = obs.NewRegistry()
	s.reqs = s.metrics.Counter("predictd_requests_total",
		"API requests by endpoint and HTTP status code (499 = client closed).",
		"endpoint", "code")
	s.lat = s.metrics.Histogram("predictd_request_seconds",
		"API request latency by endpoint.",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}, "endpoint")
	s.shed = s.metrics.Counter("predictd_shed_total",
		"API requests rejected 503 because the admission semaphore was full.",
		"endpoint")
	s.panics = s.metrics.Counter("predictd_panics_total",
		"Handler panics recovered by the isolation middleware.")
	s.metrics.GaugeFunc("predictd_in_flight",
		"API requests currently admitted and executing.",
		func() float64 { return float64(s.inflight.Load()) })
	s.metrics.GaugeFunc("predictd_seg_cache_hits",
		"Cumulative hits in the shared straight-line segment cost cache.",
		func() float64 { h, _ := s.seg.Stats(); return float64(h) })
	s.metrics.GaugeFunc("predictd_seg_cache_misses",
		"Cumulative misses in the shared straight-line segment cost cache.",
		func() float64 { _, m := s.seg.Stats(); return float64(m) })
	s.metrics.GaugeFunc("predictd_nest_cache_hits",
		"Cumulative hits in the shared loop-nest cost cache.",
		func() float64 { h, _ := s.nest.Stats(); return float64(h) })
	s.metrics.GaugeFunc("predictd_nest_cache_misses",
		"Cumulative misses in the shared loop-nest cost cache.",
		func() float64 { _, m := s.nest.Stats(); return float64(m) })
	s.sfShared = s.metrics.Counter("predictd_singleflight_shared_total",
		"Requests that waited on (and shared) another in-flight identical computation.")
	s.jobEvents = s.metrics.Counter("predictd_jobs_total",
		"Async job events (optimize and explore): submitted, coalesced, cache_hit, completed, failed.",
		"event")
	s.metrics.GaugeFunc("predictd_jobs_active",
		"Async jobs currently running (optimize searches and explore sweeps).",
		func() float64 { return float64(s.jobs.active.Load()) })
	rcStat := func(f func(resultcache.Stats) int64) func() float64 {
		return func() float64 {
			if s.results == nil {
				return 0
			}
			return float64(f(s.results.Stats()))
		}
	}
	s.metrics.GaugeFunc("predictd_result_cache_hits",
		"Cumulative hits in the content-addressed result cache (0 when disabled).",
		rcStat(func(st resultcache.Stats) int64 { return st.Hits }))
	s.metrics.GaugeFunc("predictd_result_cache_misses",
		"Cumulative misses in the content-addressed result cache (0 when disabled).",
		rcStat(func(st resultcache.Stats) int64 { return st.Misses }))
	s.metrics.GaugeFunc("predictd_result_cache_entries",
		"Response bodies currently held by the result cache.",
		rcStat(func(st resultcache.Stats) int64 { return st.Entries }))
	s.metrics.GaugeFunc("predictd_result_cache_bytes",
		"Bytes (payload + bookkeeping overhead) held by the result cache.",
		rcStat(func(st resultcache.Stats) int64 { return st.Bytes }))
	s.metrics.GaugeFunc("predictd_result_cache_evictions",
		"Cumulative result-cache entries evicted to respect the byte budget.",
		rcStat(func(st resultcache.Stats) int64 { return st.Evictions }))
}

// Results exposes the result cache (nil when disabled); the binary's
// snapshot boot/drain path and the e2e suite use it directly.
func (s *Server) Results() *resultcache.Cache { return s.results }

// Handler returns the fully wired handler stack.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (the binary's shutdown path and tests
// scrape it directly).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SetDraining flips /readyz to 503 so load balancers stop routing new
// work while in-flight requests finish; call it just before
// http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// endpoint wraps one API handler with the full middleware stack, in
// order: method gate, admission (shed at capacity), in-flight
// accounting, panic isolation, body cap, per-request deadline, and
// request/latency metrics on every exit path.
func (s *Server) endpoint(name string, fn func(r *http.Request) (any, *apiError)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := 0
		defer func() {
			s.reqs.With(name, strconv.Itoa(code)).Inc()
			s.lat.With(name).Observe(time.Since(start).Seconds())
		}()
		if r.Method != http.MethodPost {
			code = statusMethodNotAllow
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, code, CodeMethodNotAllowed, "use POST")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.With(name).Inc()
			code = statusUnavailable
			// Shedding is a transient burst condition: steer retries
			// to after the in-flight work drains instead of an
			// immediate hammer.
			w.Header().Set("Retry-After", "1")
			s.writeError(w, code, CodeOverloaded, "server at capacity, retry later")
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()
		defer func() {
			if p := recover(); p != nil {
				s.panics.With().Inc()
				code = statusInternalFailure
				s.writeError(w, code, CodeInternal,
					fmt.Sprintf("handler panic: %v", p))
				debug.PrintStack()
			}
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		resp, aerr := fn(r)
		if aerr != nil {
			code = aerr.status
			s.writeError(w, aerr.status, aerr.code, aerr.msg)
			return
		}
		code = writeSuccess(w, resp)
	})
}

// writeSuccess renders a handler's success value: pre-encoded bytes
// from the result cache verbatim, a statusResponse with its chosen
// code (e.g. 202 for accepted jobs), anything else as a 200 through
// the single marshalBody encoder. Returns the status written.
func writeSuccess(w http.ResponseWriter, resp any) int {
	w.Header().Set("Content-Type", "application/json")
	switch v := resp.(type) {
	case rawResponse:
		w.Write(v)
		return http.StatusOK
	case statusResponse:
		w.WriteHeader(v.status)
		w.Write(marshalBody(v.body))
		return v.status
	default:
		w.Write(marshalBody(resp))
		return http.StatusOK
	}
}

// getEndpoint wraps a read-only handler with the slim middleware
// stack: metrics and panic isolation only. Polling endpoints skip
// admission deliberately — a client watching a job must not compete
// with (or be shed by) the compute traffic, and the handlers behind
// this read in-memory state without touching the request body.
func (s *Server) getEndpoint(name string, fn func(r *http.Request) (any, *apiError)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := 0
		defer func() {
			s.reqs.With(name, strconv.Itoa(code)).Inc()
			s.lat.With(name).Observe(time.Since(start).Seconds())
		}()
		defer func() {
			if p := recover(); p != nil {
				s.panics.With().Inc()
				code = statusInternalFailure
				s.writeError(w, code, CodeInternal,
					fmt.Sprintf("handler panic: %v", p))
				debug.PrintStack()
			}
		}()
		resp, aerr := fn(r)
		if aerr != nil {
			code = aerr.status
			s.writeError(w, aerr.status, aerr.code, aerr.msg)
			return
		}
		code = writeSuccess(w, resp)
	})
}

// ctxError maps a context failure observed by a handler to the
// response the client sees: a deadline is 504; a client that went
// away gets nothing, but the metrics label records 499.
func ctxError(err error) *apiError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &apiError{status: statusGatewayTimeout, code: CodeDeadlineExceeded,
			msg: "request deadline exceeded"}
	}
	return &apiError{status: statusClientClosed, code: codeClientClosed,
		msg: "client closed request"}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(marshalBody(ErrorResponse{Error: ErrorBody{Code: code, Message: msg}}))
}

// marshalBody renders every response body the service sends — one
// encoder, so the e2e suite can byte-compare server output against
// the same structures built from direct library calls.
func marshalBody(v any) []byte {
	out, err := json.Marshal(v)
	if err != nil {
		// Response types are plain data; failure is a programming bug.
		panic("serve: marshal response: " + err.Error())
	}
	return append(out, '\n')
}
