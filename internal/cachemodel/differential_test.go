package cachemodel_test

import (
	"testing"

	"perfpredict/internal/cachemodel"
	"perfpredict/internal/cachesim"
	"perfpredict/internal/interp"
	"perfpredict/internal/progen"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// TestDifferentialAgainstSimulator cross-validates the Ferrante–Sarkar–
// Thrash line counting against the set-associative cache simulator on
// generated loop nests. The model is an analytic distinct-line count
// with a capacity walk; the simulator replays the actual reference
// stream through an LRU cache, so conflict misses and replacement
// detail can legitimately separate the two. The contract asserted here
// is agreement within a constant band per nest — not equality — plus a
// tighter bound on the aggregate ratio across the corpus.
func TestDifferentialAgainstSimulator(t *testing.T) {
	cfg := cachemodel.DefaultConfig()
	cfg.TLBPageBytes = 0 // line counting only; the TLB term has its own config
	simCfg := cachesim.Config{Size: cfg.SizeBytes, LineSize: cfg.LineBytes, Assoc: 4}

	const (
		perNestLo, perNestHi = 0.2, 5.0
		meanLo, meanHi       = 0.4, 2.5
	)
	var sumRatio float64
	var n int
	for seed := int64(1); seed <= 30; seed++ {
		r := progen.NewRand(seed)
		src := progen.GenProgram(r, progen.ProgramConfig{MaxDepth: 2, MaxStmts: 3})
		prog, err := source.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		tbl, err := sem.Analyze(prog)
		if err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, src)
		}
		loops, body := outermostNest(prog)
		if len(loops) == 0 {
			continue
		}
		est, err := cachemodel.EstimateNest(tbl, loops, body, cfg)
		if err != nil {
			t.Fatalf("seed %d: model: %v\n%s", seed, err, src)
		}
		sim, ok := simulateNest(t, prog, tbl, simCfg)
		if !ok {
			// A generated expression divided by an (uninitialized, zero)
			// array element; the reference stream is undefined. Skip.
			continue
		}
		if est.LineMisses == 0 && sim == 0 {
			continue
		}
		if est.LineMisses == 0 || sim == 0 {
			t.Errorf("seed %d: one side saw no misses: model %d, sim %d\n%s",
				seed, est.LineMisses, sim, src)
			continue
		}
		ratio := float64(est.LineMisses) / float64(sim)
		if ratio < perNestLo || ratio > perNestHi {
			t.Errorf("seed %d: model %d vs simulated %d misses (ratio %.2f outside [%.1f, %.1f])\n%s",
				seed, est.LineMisses, sim, ratio, perNestLo, perNestHi, src)
		}
		sumRatio += ratio
		n++
	}
	if n < 10 {
		t.Fatalf("only %d comparable nests generated; differential has no power", n)
	}
	mean := sumRatio / float64(n)
	if mean < meanLo || mean > meanHi {
		t.Errorf("mean model/sim ratio %.2f over %d nests outside [%.1f, %.1f]", mean, n, meanLo, meanHi)
	}
}

// outermostNest walks the perfectly nested outer loop of a generated
// program, returning the concrete loop descriptors outermost-first and
// the innermost body.
func outermostNest(prog *source.Program) ([]cachemodel.Loop, []source.Stmt) {
	var loops []cachemodel.Loop
	for _, s := range prog.Body {
		l, ok := s.(*source.DoLoop)
		if !ok {
			continue
		}
		for {
			loops = append(loops, cachemodel.Loop{Var: l.Var, Trips: 64})
			if len(l.Body) == 1 {
				if inner, ok := l.Body[0].(*source.DoLoop); ok {
					l = inner
					continue
				}
			}
			return loops, l.Body
		}
	}
	return nil, nil
}

// simulateNest replays the program's reference stream through the
// simulator, placing each array at a base offset chosen to avoid
// accidental set aliasing between arrays.
func simulateNest(t *testing.T, prog *source.Program, tbl *sem.Table, cfg cachesim.Config) (int64, bool) {
	t.Helper()
	cache, err := cachesim.New(cfg)
	if err != nil {
		t.Fatalf("cachesim: %v", err)
	}
	bases := map[string]int64{}
	next := int64(0)
	r := interp.New(prog, tbl, interp.Options{
		MemTrace: func(base string, idx int64, write bool) {
			b, ok := bases[base]
			if !ok {
				b = next
				bases[base] = b
				next += (1 << 24) + 8*1013*cfg.LineSize
			}
			cache.Access(b + idx*8)
		},
	})
	if err := r.Run(); err != nil {
		// Generated arithmetic over zero-initialized arrays can divide
		// by zero; that nest has no well-defined reference stream.
		return 0, false
	}
	_, misses := cache.Stats()
	return misses, true
}
