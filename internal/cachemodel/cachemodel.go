// Package cachemodel implements the memory-access cost estimation of
// §2.3: "the total number of cache line accesses is counted and the
// cost of filling these cache lines is used to approximate the memory
// cost" — the algorithm of Ferrante, Sarkar and Thrash ("On estimating
// and enhancing cache effectiveness", LCPC 1991), adapted to F-lite
// loop nests. References to the same array whose subscripts differ
// only by constants form one *reference group* with spatial/group
// reuse; loops absent from a group's subscripts provide temporal reuse
// only while the data touched between their iterations fits in cache.
package cachemodel

import (
	"fmt"
	"sort"
	"strings"

	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// Config describes the cache geometry the model prices against.
type Config struct {
	SizeBytes int64
	LineBytes int64
	ElemBytes int64 // array element size (REAL = 8)
	// MissPenalty is the line-fill cost in cycles.
	MissPenalty int64
	// TLBPageBytes and TLBEntries, when nonzero, add a TLB term.
	TLBPageBytes int64
	TLBEntries   int64
	TLBPenalty   int64
}

// DefaultConfig is the POWER1 data cache plus its TLB, derived from
// the declared hierarchy rather than hand-maintained constants.
func DefaultConfig() Config {
	return ConfigFromHierarchy(machine.POWER1Memory())
}

// Loop describes one nest level (outermost first) with concrete trip
// count.
type Loop struct {
	Var   string
	Trips int64
}

// GroupEstimate reports one reference group's contribution.
type GroupEstimate struct {
	Array string
	// Leader is a representative reference text.
	Leader string
	// Refs counts the references merged into the group.
	Refs int
	// Misses is the estimated line misses for the whole nest.
	Misses int64
}

// Estimate is the nest-level result.
type Estimate struct {
	Groups []GroupEstimate
	// LineMisses is the total estimated cache-line fills.
	LineMisses int64
	// TLBMisses is the estimated TLB reloads.
	TLBMisses int64
	// Cycles is the memory cost: LineMisses·MissPenalty +
	// TLBMisses·TLBPenalty.
	Cycles int64
}

// EstimateNest counts the distinct cache lines accessed by the array
// references in the body of a loop nest with concrete trip counts.
func EstimateNest(tbl *sem.Table, loops []Loop, body []source.Stmt, cfg Config) (Estimate, error) {
	if cfg.ElemBytes <= 0 {
		cfg.ElemBytes = 8
	}
	groups, err := groupRefs(tbl, loops, body)
	if err != nil {
		return Estimate{}, err
	}
	var est Estimate
	misses := jointMisses(groups, loops, cfg.SizeBytes, cfg.LineBytes, cfg.ElemBytes)
	for i, g := range groups {
		est.Groups = append(est.Groups, GroupEstimate{
			Array:  g.array,
			Leader: g.leader,
			Refs:   len(g.refs),
			Misses: misses[i],
		})
		est.LineMisses += misses[i]
	}
	if cfg.TLBPageBytes > 0 {
		tlb := jointMisses(groups, loops, cfg.TLBPageBytes*cfg.TLBEntries, cfg.TLBPageBytes, cfg.ElemBytes)
		for _, m := range tlb {
			est.TLBMisses += m
		}
	}
	est.Cycles = est.LineMisses*cfg.MissPenalty + est.TLBMisses*cfg.TLBPenalty
	return est, nil
}

// SymbolicLines returns the distinct-lines count for a nest whose trip
// counts are symbolic (no capacity reasoning — the interference-free
// count, exact for footprints below cache size). Each loop's trip
// count is the given polynomial.
func SymbolicLines(tbl *sem.Table, loops []string, trips map[string]symexpr.Poly, body []source.Stmt, cfg Config) (symexpr.Poly, error) {
	if cfg.ElemBytes <= 0 {
		cfg.ElemBytes = 8
	}
	concrete := make([]Loop, len(loops))
	for i, v := range loops {
		concrete[i] = Loop{Var: v, Trips: 1}
	}
	groups, err := groupRefs(tbl, concrete, body)
	if err != nil {
		return symexpr.Poly{}, err
	}
	elemsPerLine := cfg.LineBytes / cfg.ElemBytes
	if elemsPerLine < 1 {
		elemsPerLine = 1
	}
	total := symexpr.Zero()
	for _, g := range groups {
		lines := symexpr.Const(1)
		for _, v := range loops {
			role := g.varRole(v)
			switch role {
			case roleAbsent:
				// Temporal reuse assumed (interference-free).
			case roleContiguous:
				lines = lines.Mul(trips[v].Scale(1 / float64(elemsPerLine)))
			case roleStrided:
				lines = lines.Mul(trips[v])
			}
		}
		total = total.Add(lines)
	}
	return total, nil
}

type varRole int

const (
	roleAbsent varRole = iota
	roleContiguous
	roleStrided
)

// refGroup is a set of references to one array whose subscripts differ
// only by constants.
type refGroup struct {
	array  string
	leader string
	// key is the subscript pattern with constants stripped.
	key string
	// dims[i] describes dimension i's use of loop variables:
	// var name and coefficient (0,"" when constant).
	dims []dimUse
	refs []*source.ArrayRef
	// dimSizes are the declared extents (for stride computation).
	dimSizes []int64
	// spanByDim tracks the constant-offset span within the group per
	// dimension (group reuse ignores it; kept for diagnostics).
	spanByDim []int64
}

type dimUse struct {
	v     string
	coeff int64
}

func (g *refGroup) varRole(v string) varRole {
	stridedSeen := roleAbsent
	for d, use := range g.dims {
		if use.v != v || use.coeff == 0 {
			continue
		}
		if d == 0 && abs64(use.coeff) == 1 {
			return roleContiguous
		}
		stridedSeen = roleStrided
	}
	return stridedSeen
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// groupRefs collects array references and merges group-reuse partners.
func groupRefs(tbl *sem.Table, loops []Loop, body []source.Stmt) ([]*refGroup, error) {
	loopVars := map[string]bool{}
	for _, l := range loops {
		loopVars[l.Var] = true
	}
	var refs []*source.ArrayRef
	collectArrayRefs(body, &refs)
	groups := map[string]*refGroup{}
	var order []string
	for _, r := range refs {
		sym := tbl.Lookup(r.Name)
		if sym == nil || !sym.IsArray() {
			continue
		}
		key, dims, ok := refKey(tbl, r, loopVars)
		if !ok {
			// Non-affine reference: price as touching a new line per
			// iteration of every loop (worst case), encoded as all
			// strided dims on a synthetic group.
			key = fmt.Sprintf("%s!nonaffine%d", r.Name, len(groups))
			dims = make([]dimUse, len(r.Idx))
			for i := range dims {
				if len(loops) > 0 {
					dims[i] = dimUse{v: loops[len(loops)-1].Var, coeff: 2}
				}
			}
		}
		full := r.Name + "|" + key
		g, exists := groups[full]
		if !exists {
			g = &refGroup{array: r.Name, leader: source.ExprString(r), key: key, dims: dims, dimSizes: sym.Dims}
			groups[full] = g
			order = append(order, full)
		}
		g.refs = append(g.refs, r)
	}
	out := make([]*refGroup, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].leader < out[j].leader })
	return out, nil
}

// refKey renders the loop-variable structure of a reference ignoring
// constant offsets, so b(i-1,j) and b(i+1,j) share a key.
func refKey(tbl *sem.Table, r *source.ArrayRef, loopVars map[string]bool) (string, []dimUse, bool) {
	parts := make([]string, len(r.Idx))
	dims := make([]dimUse, len(r.Idx))
	for i, ix := range r.Idx {
		v, coeff, ok := affineVar(tbl, ix, loopVars)
		if !ok {
			return "", nil, false
		}
		dims[i] = dimUse{v: v, coeff: coeff}
		parts[i] = fmt.Sprintf("%d*%s", coeff, v)
	}
	return strings.Join(parts, ","), dims, true
}

// affineVar extracts (var, coeff) from coeff·v + const subscripts;
// constants return ("", 0).
func affineVar(tbl *sem.Table, e source.Expr, loopVars map[string]bool) (string, int64, bool) {
	if _, ok := tbl.FoldConst(e); ok {
		return "", 0, true
	}
	switch x := e.(type) {
	case *source.VarRef:
		if loopVars[x.Name] {
			return x.Name, 1, true
		}
		// Loop-invariant scalar: behaves like a constant offset.
		return "", 0, true
	case *source.UnExpr:
		if !x.Neg {
			return "", 0, false
		}
		v, c, ok := affineVar(tbl, x.X, loopVars)
		return v, -c, ok
	case *source.BinExpr:
		switch x.Kind {
		case source.BinAdd, source.BinSub:
			lv, lc, lok := affineVar(tbl, x.L, loopVars)
			rv, rc, rok := affineVar(tbl, x.R, loopVars)
			if !lok || !rok {
				return "", 0, false
			}
			if x.Kind == source.BinSub {
				rc = -rc
			}
			switch {
			case lv == "" && rv == "":
				return "", 0, true
			case lv == "":
				return rv, rc, true
			case rv == "":
				return lv, lc, true
			case lv == rv:
				if lc+rc == 0 {
					return "", 0, true
				}
				return lv, lc + rc, true
			default:
				return "", 0, false // two loop vars in one dim: MIV
			}
		case source.BinMul:
			if c, ok := tbl.IntConst(x.L); ok {
				v, cc, vok := affineVar(tbl, x.R, loopVars)
				return v, c * cc, vok
			}
			if c, ok := tbl.IntConst(x.R); ok {
				v, cc, vok := affineVar(tbl, x.L, loopVars)
				return v, c * cc, vok
			}
			return "", 0, false
		default:
			return "", 0, false
		}
	default:
		return "", 0, false
	}
}

// jointMisses implements the FST counting for all groups together,
// walking loops from innermost outward. At each level the *combined*
// footprint of everything touched inside decides whether reuse across
// that level's iterations survives:
//
//   - strided dimension: a new line per iteration, always multiplies;
//   - contiguous dimension: consecutive iterations share a line only
//     while the inner footprint fits in cache — otherwise the line is
//     evicted between uses and every iteration misses;
//   - absent variable: pure temporal reuse, again only while the inner
//     footprint fits.
func jointMisses(groups []*refGroup, loops []Loop, sizeBytes, lineBytes, elemBytes int64) []int64 {
	elemsPerLine := lineBytes / elemBytes
	if elemsPerLine < 1 {
		elemsPerLine = 1
	}
	lines := make([]int64, len(groups))
	for i := range lines {
		lines[i] = 1
	}
	for li := len(loops) - 1; li >= 0; li-- {
		l := loops[li]
		var footprint int64
		for _, n := range lines {
			footprint += n * lineBytes
		}
		fits := footprint <= sizeBytes
		for gi, g := range groups {
			switch g.varRole(l.Var) {
			case roleContiguous:
				if fits {
					lines[gi] *= maxI64(ceilDiv(l.Trips, elemsPerLine), 1)
				} else {
					lines[gi] *= maxI64(l.Trips, 1)
				}
			case roleStrided:
				lines[gi] *= maxI64(l.Trips, 1)
			case roleAbsent:
				if !fits {
					lines[gi] *= maxI64(l.Trips, 1)
				}
			}
		}
	}
	return lines
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func collectArrayRefs(stmts []source.Stmt, out *[]*source.ArrayRef) {
	var walkExpr func(e source.Expr)
	walkExpr = func(e source.Expr) {
		switch x := e.(type) {
		case *source.ArrayRef:
			*out = append(*out, x)
			for _, ix := range x.Idx {
				walkExpr(ix)
			}
		case *source.BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *source.UnExpr:
			walkExpr(x.X)
		case *source.IntrinsicCall:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	for _, s := range stmts {
		switch x := s.(type) {
		case *source.Assign:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *source.IfStmt:
			walkExpr(x.Cond)
			collectArrayRefs(x.Then, out)
			collectArrayRefs(x.Else, out)
		case *source.DoLoop:
			collectArrayRefs(x.Body, out)
		case *source.CallStmt:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
}
