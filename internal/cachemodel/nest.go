package cachemodel

import (
	"fmt"

	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// NestLoop describes one level of a loop nest, outermost first, with
// symbolic bounds — the form the aggregation layer prices loops in.
// Bounds may reference outer loop variables (triangular nests).
type NestLoop struct {
	Var    string
	Lb, Ub symexpr.Poly
	Step   int
}

// NestLines returns the symbolic distinct-line count of the nest for a
// given line and element size: the interference-free §2.3 count as a
// polynomial in the program unknowns. Per reference group the loops
// are folded innermost→outermost:
//
//   - a loop striding the group (non-unit or non-leading subscript)
//     touches a fresh line each iteration: sum over the loop range;
//   - a loop walking the leading dimension with unit coefficient gets
//     spatial reuse: sum over the range, scaled by step/elemsPerLine;
//   - an absent loop provides temporal reuse: the count is unchanged,
//     unless inner bounds referenced the variable (triangular), in
//     which case the variable is bounded by its upper limit.
//
// Summing (rather than multiplying by trip counts, as SymbolicLines
// does) makes triangular bounds exact instead of rectangularized.
func NestLines(tbl *sem.Table, loops []NestLoop, body []source.Stmt, lineBytes, elemBytes int64) (symexpr.Poly, error) {
	if elemBytes <= 0 {
		elemBytes = 8
	}
	elemsPerLine := lineBytes / elemBytes
	if elemsPerLine < 1 {
		elemsPerLine = 1
	}
	concrete := make([]Loop, len(loops))
	for i, l := range loops {
		concrete[i] = Loop{Var: l.Var, Trips: 1}
	}
	groups, err := groupRefs(tbl, concrete, body)
	if err != nil {
		return symexpr.Poly{}, err
	}
	total := symexpr.Zero()
	for _, g := range groups {
		lines := symexpr.Const(1)
		for i := len(loops) - 1; i >= 0; i-- {
			l := loops[i]
			v := symexpr.Var(l.Var)
			step := l.Step
			if step <= 0 {
				step = 1
			}
			switch g.varRole(l.Var) {
			case roleStrided:
				sum, _, err := symexpr.SumOverStep(lines, v, l.Lb, l.Ub, step)
				if err != nil {
					return symexpr.Poly{}, fmt.Errorf("cachemodel: nest lines for %s: %w", g.array, err)
				}
				lines = sum
			case roleContiguous:
				sum, _, err := symexpr.SumOverStep(lines, v, l.Lb, l.Ub, step)
				if err != nil {
					return symexpr.Poly{}, fmt.Errorf("cachemodel: nest lines for %s: %w", g.array, err)
				}
				frac := float64(step) / float64(elemsPerLine)
				if frac > 1 {
					frac = 1 // striding past whole lines: one line per iteration
				}
				lines = sum.Scale(frac)
			case roleAbsent:
				if lines.Degree(v) > 0 {
					// Inner bounds referenced this loop's variable; bound
					// the count by the variable's final value.
					sub, err := lines.Substitute(v, l.Ub)
					if err != nil {
						return symexpr.Poly{}, fmt.Errorf("cachemodel: nest lines for %s: %w", g.array, err)
					}
					lines = sub
				}
			}
		}
		total = total.Add(lines)
	}
	return total, nil
}

// NestMemoryCycles prices a loop nest's memory traffic against a
// declared hierarchy: for each cache level, the distinct lines of that
// level's geometry times its miss penalty, plus the page-granular TLB
// term — all symbolic in the loop bounds. A nil hierarchy, or one
// whose penalties are all zero, yields the zero polynomial, keeping
// memory-less predictions byte-identical.
func NestMemoryCycles(tbl *sem.Table, loops []NestLoop, body []source.Stmt, h *machine.MemoryHierarchy) (symexpr.Poly, error) {
	if h == nil {
		return symexpr.Zero(), nil
	}
	elem := int64(h.ElemBytes)
	total := symexpr.Zero()
	for _, l := range h.Levels {
		if l.MissPenalty == 0 {
			continue
		}
		lines, err := NestLines(tbl, loops, body, l.LineBytes, elem)
		if err != nil {
			return symexpr.Poly{}, err
		}
		total = total.Add(lines.Scale(float64(l.MissPenalty)))
	}
	if t := h.TLB; t != nil && t.MissPenalty != 0 {
		pages, err := NestLines(tbl, loops, body, t.PageBytes, elem)
		if err != nil {
			return symexpr.Poly{}, err
		}
		total = total.Add(pages.Scale(float64(t.MissPenalty)))
	}
	return total, nil
}

// ConfigFromHierarchy derives the concrete estimator/simulator Config
// from a declared hierarchy: the first (nearest) cache level plus the
// TLB. This replaces hand-maintained default geometry — specs are the
// source of truth.
func ConfigFromHierarchy(h *machine.MemoryHierarchy) Config {
	if h == nil || len(h.Levels) == 0 {
		return Config{ElemBytes: 8}
	}
	l := h.Levels[0]
	cfg := Config{
		SizeBytes:   l.SizeBytes,
		LineBytes:   l.LineBytes,
		ElemBytes:   int64(h.ElemBytes),
		MissPenalty: l.MissPenalty,
	}
	if cfg.ElemBytes <= 0 {
		cfg.ElemBytes = 8
	}
	if t := h.TLB; t != nil {
		cfg.TLBPageBytes = t.PageBytes
		cfg.TLBEntries = t.Entries
		cfg.TLBPenalty = t.MissPenalty
	}
	return cfg
}
