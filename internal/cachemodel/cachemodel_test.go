package cachemodel

import (
	"testing"

	"perfpredict/internal/cachesim"
	"perfpredict/internal/interp"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

func parseNest(t *testing.T, src string) (*sem.Table, []*source.DoLoop, []source.Stmt) {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	var loops []*source.DoLoop
	body := p.Body
	for len(body) == 1 {
		l, ok := body[0].(*source.DoLoop)
		if !ok {
			break
		}
		loops = append(loops, l)
		body = l.Body
	}
	return tbl, loops, body
}

// simMisses runs the program through the interpreter with a cache
// attached to the memory trace and returns actual line misses. Array
// bases are spaced far apart (distinct "allocations").
func simMisses(t *testing.T, src string, cfg cachesim.Config, args map[string]float64) int64 {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	cache := cachesim.MustNew(cfg)
	bases := map[string]int64{}
	// Stagger allocations so arrays do not land on identical sets —
	// the model is interference-free, so the referee should be too.
	next := int64(0)
	r := interp.New(p, tbl, interp.Options{
		MemTrace: func(base string, idx int64, write bool) {
			b, ok := bases[base]
			if !ok {
				b = next
				bases[base] = b
				next += (1 << 24) + 8*1013*cfg.LineSize
			}
			cache.Access(b + idx*8)
		},
	})
	for k, v := range args {
		r.SetScalar(k, v)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	_, misses := cache.Stats()
	return misses
}

const matmulTmpl = `
program matmul
  integer i, j, k, n
  parameter (n = 64)
  real a(64,64), b(64,64), c(64,64)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`

func TestMatmulColdMisses(t *testing.T) {
	tbl, loops, body := parseNest(t, matmulTmpl)
	ls := make([]Loop, len(loops))
	for i, l := range loops {
		ls[i] = Loop{Var: l.Var, Trips: 64}
	}
	cfg := DefaultConfig()
	est, err := EstimateNest(tbl, ls, body, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// n=64: each 64×64 array is 32 KiB; everything fits in 64 KiB
	// individually → cold misses only: 3 × 64²/16 = 768.
	if est.LineMisses != 768 {
		t.Errorf("line misses = %d, want 768 (groups %+v)", est.LineMisses, est.Groups)
	}
	if len(est.Groups) != 3 {
		t.Errorf("groups: %+v", est.Groups)
	}
	if est.Cycles != est.LineMisses*cfg.MissPenalty+est.TLBMisses*cfg.TLBPenalty {
		t.Error("cycles inconsistent")
	}
}

func TestMatmulVsSimulator(t *testing.T) {
	tbl, _, body := parseNest(t, matmulTmpl)
	ls := []Loop{{Var: "i", Trips: 64}, {Var: "j", Trips: 64}, {Var: "k", Trips: 64}}
	cfg := DefaultConfig()
	cfg.TLBPageBytes = 0 // compare cache only
	est, err := EstimateNest(tbl, ls, body, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := simMisses(t, matmulTmpl, cachesim.Config{Size: cfg.SizeBytes, LineSize: cfg.LineBytes, Assoc: 0}, nil)
	ratio := float64(est.LineMisses) / float64(sim)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("model %d vs sim %d (ratio %.2f)", est.LineMisses, sim, ratio)
	}
}

func TestGroupReuseStencil(t *testing.T) {
	src := `
program jacobi
  integer i, j, n
  parameter (n = 64)
  real a(64,64), b(64,64)
  do j = 2, n - 1
    do i = 2, n - 1
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    end do
  end do
end
`
	tbl, loops, body := parseNest(t, src)
	ls := []Loop{{Var: "j", Trips: 62}, {Var: "i", Trips: 62}}
	_ = loops
	est, err := EstimateNest(tbl, ls, body, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All four b references share the loop-variable pattern (constant
	// offsets only) and sweep the same lines: one group. With a(i,j)
	// that makes 2 groups, not 5 references.
	if len(est.Groups) != 2 {
		t.Errorf("groups: %+v", est.Groups)
	}
	// Both arrays fit: ~2 sweeps of 62·62/16 lines each ≈ 480.
	if est.LineMisses < 300 || est.LineMisses > 900 {
		t.Errorf("line misses = %d", est.LineMisses)
	}
}

func TestCapacityEffectAtLargeN(t *testing.T) {
	build := func(n int64) int64 {
		tbl, _, body := parseNest(t, matmulTmpl)
		ls := []Loop{{Var: "i", Trips: n}, {Var: "j", Trips: n}, {Var: "k", Trips: n}}
		est, err := EstimateNest(tbl, ls, body, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return est.LineMisses
	}
	small := build(64)  // everything cached: O(n²)
	large := build(256) // b no longer fits: O(n³) term appears
	// Scaling from 64→256 (4×) should exceed 16× (quadratic) by far.
	if float64(large)/float64(small) < 30 {
		t.Errorf("capacity effect missing: %d → %d", small, large)
	}
}

func TestBlockedBeatsUnblocked(t *testing.T) {
	// Tiled matmul reduces the re-sweep footprint: the model must rank
	// blocked below unblocked at a size where b exceeds the cache.
	tbl, _, body := parseNest(t, matmulTmpl)
	n := int64(256)
	unblocked := []Loop{{Var: "i", Trips: n}, {Var: "j", Trips: n}, {Var: "k", Trips: n}}
	estU, err := EstimateNest(tbl, unblocked, body, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Blocked: tile j and k by 16 → the inner i×16×16 nest's working
	// set fits in cache; price the inner nest and scale by the tile
	// count (cross-tile reuse ignored — conservative for blocked).
	const tile = 16
	blocked := []Loop{{Var: "i", Trips: n}, {Var: "j", Trips: tile}, {Var: "k", Trips: tile}}
	estInner, err := EstimateNest(tbl, blocked, body, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tiles := (n / tile) * (n / tile)
	blockedTotal := estInner.LineMisses * tiles
	if blockedTotal >= estU.LineMisses {
		t.Errorf("blocked (%d) not better than unblocked (%d)", blockedTotal, estU.LineMisses)
	}
}

func TestModelTracksSimulatorOrdering(t *testing.T) {
	// Two loop orders of the same copy kernel: stride-1 vs stride-n
	// inner loop. The model and the simulator must agree on which is
	// worse, and roughly on magnitude.
	goodSrc := `
program copy
  integer i, j, n
  parameter (n = 128)
  real a(128,128), b(128,128)
  do j = 1, n
    do i = 1, n
      a(i,j) = b(i,j)
    end do
  end do
end
`
	badSrc := `
program copy
  integer i, j, n
  parameter (n = 128)
  real a(128,128), b(128,128)
  do i = 1, n
    do j = 1, n
      a(i,j) = b(i,j)
    end do
  end do
end
`
	// A small cache makes the stride-n order thrash: the 16 KiB
	// row-sweep working set no longer fits.
	cfg := DefaultConfig()
	cfg.SizeBytes = 8 << 10
	cfg.TLBPageBytes = 0
	model := func(src string, loops []Loop) int64 {
		tbl, _, body := parseNest(t, src)
		est, err := EstimateNest(tbl, loops, body, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return est.LineMisses
	}
	simCfg := cachesim.Config{Size: cfg.SizeBytes, LineSize: cfg.LineBytes, Assoc: 0}
	mGood := model(goodSrc, []Loop{{Var: "j", Trips: 128}, {Var: "i", Trips: 128}})
	mBad := model(badSrc, []Loop{{Var: "i", Trips: 128}, {Var: "j", Trips: 128}})
	sGood := simMisses(t, goodSrc, simCfg, nil)
	sBad := simMisses(t, badSrc, simCfg, nil)
	if !(mGood < mBad) {
		t.Errorf("model ordering wrong: good %d vs bad %d", mGood, mBad)
	}
	if !(sGood < sBad) {
		t.Errorf("simulator ordering wrong: good %d vs bad %d", sGood, sBad)
	}
	// Magnitudes within 2× for the stride-1 version (cold misses).
	ratio := float64(mGood) / float64(sGood)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("good-case ratio = %.2f (model %d, sim %d)", ratio, mGood, sGood)
	}
}

func TestSymbolicLines(t *testing.T) {
	src := `
subroutine p(n)
  integer i, j, n
  real a(512,512)
  do j = 1, n
    do i = 1, n
      a(i,j) = 1.0
    end do
  end do
end
`
	tbl, _, body := parseNest(t, src)
	nv := symexpr.NewVar("n")
	lines, err := SymbolicLines(tbl, []string{"j", "i"}, map[string]symexpr.Poly{"j": nv, "i": nv}, body, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// n²/16 for 128-byte lines of 8-byte elements.
	got := lines.MustEval(map[symexpr.Var]float64{"n": 64})
	if got != 64*64/16 {
		t.Errorf("symbolic lines at n=64: %v", got)
	}
	if lines.Degree("n") != 2 {
		t.Errorf("degree: %v", lines)
	}
}

func TestNonAffineConservative(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 64)
  integer idx(64)
  real a(4096), b(64)
  do i = 1, n
    b(i) = a(idx(i))
  end do
end
`
	tbl, _, body := parseNest(t, src)
	est, err := EstimateNest(tbl, []Loop{{Var: "i", Trips: 64}}, body, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The indirect reference must be charged a line per iteration: ≥ 64
	// for a(idx(i)) plus the other refs.
	if est.LineMisses < 64 {
		t.Errorf("non-affine undercounted: %d", est.LineMisses)
	}
}
