package deps

import (
	"testing"

	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// nest parses a program whose body is a perfect loop nest and returns
// the analysis inputs.
func nest(t *testing.T, src string) (*sem.Table, []*source.DoLoop, []source.Stmt) {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	var loops []*source.DoLoop
	body := p.Body
	for len(body) == 1 {
		l, ok := body[0].(*source.DoLoop)
		if !ok {
			break
		}
		loops = append(loops, l)
		body = l.Body
	}
	return tbl, loops, body
}

func analyze(t *testing.T, src string) []Dependence {
	tbl, loops, body := nest(t, src)
	return Analyze(tbl, loops, body)
}

func TestIndependentLoop(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
end
`)
	// Only dependences on a or b between reads/writes; b is read-only,
	// a is written once — no pair qualifies.
	if len(ds) != 0 {
		t.Errorf("deps: %v", ds)
	}
}

func TestRecurrenceDistanceOne(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, n
  real a(100)
  do i = 2, n
    a(i) = a(i-1) + 1.0
  end do
end
`)
	if len(ds) != 1 {
		t.Fatalf("deps: %v", ds)
	}
	d := ds[0]
	if d.Kind != Flow {
		t.Errorf("kind = %v", d.Kind)
	}
	if d.Directions[0] != DirLT || !d.Known[0] || d.Distances[0] != 1 {
		t.Errorf("dep: %+v", d)
	}
	if !d.CarriedBy(0) {
		t.Error("should be carried by the loop")
	}
}

func TestAntiDependence(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, n
  real a(100)
  do i = 1, n - 1
    a(i) = a(i+1) + 1.0
  end do
end
`)
	if len(ds) != 1 {
		t.Fatalf("deps: %v", ds)
	}
	// Read a(i+1) then write a(i) at a later iteration: anti, distance 1.
	if ds[0].Kind != Anti {
		t.Errorf("kind = %v (%+v)", ds[0].Kind, ds[0])
	}
	if ds[0].Directions[0] != DirLT {
		t.Errorf("dir = %c", ds[0].Directions[0])
	}
}

func TestProvablyIndependentOffset(t *testing.T) {
	// a(2i) vs a(2i+1): parity differs, strong-SIV non-integer distance.
	ds := analyze(t, `
program p
  integer i, n
  real a(200)
  do i = 1, n
    a(2*i) = a(2*i+1) + 1.0
  end do
end
`)
	if len(ds) != 0 {
		t.Errorf("parity-distinct refs reported dependent: %v", ds)
	}
}

func TestZIVDistinctConstants(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, n
  real a(100)
  do i = 1, n
    a(1) = a(2) + 1.0
  end do
end
`)
	if len(ds) != 0 {
		t.Errorf("a(1) vs a(2) reported dependent: %v", ds)
	}
}

func TestZIVSameConstantOutput(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    a(1) = b(i)
  end do
end
`)
	// a(1) written every iteration: output dependence, '=' direction?
	// There is only one write ref, so no pair. Use two writes:
	ds = analyze(t, `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    a(1) = b(i)
    a(1) = b(i) + 1.0
  end do
end
`)
	found := false
	for _, d := range ds {
		if d.Kind == Output && d.Array == "a" {
			found = true
			if d.Directions[0] != DirEQ {
				t.Errorf("output dep dir: %+v", d)
			}
		}
	}
	if !found {
		t.Errorf("missing output dependence: %v", ds)
	}
}

func TestTwoDimNest(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, j, n
  real a(100,100)
  do i = 2, n
    do j = 2, n
      a(i,j) = a(i-1,j) + a(i,j-1)
    end do
  end do
end
`)
	// Two flow deps: (1,0) carried by i; (0,1) carried by j.
	if len(ds) != 2 {
		t.Fatalf("deps: %v", ds)
	}
	var sawI, sawJ bool
	for _, d := range ds {
		if d.Distances[0] == 1 && d.Distances[1] == 0 {
			sawI = true
			if !d.CarriedBy(0) {
				t.Error("(1,0) not carried by outer")
			}
		}
		if d.Distances[0] == 0 && d.Distances[1] == 1 {
			sawJ = true
			if !d.CarriedBy(1) {
				t.Error("(0,1) not carried by inner")
			}
		}
	}
	if !sawI || !sawJ {
		t.Errorf("missing distances: %v", ds)
	}
}

func TestMIVGCDIndependent(t *testing.T) {
	// a(2i) vs a(2j+1): gcd 2 does not divide 1 → independent.
	ds := analyze(t, `
program p
  integer i, j, n
  real a(400)
  do i = 1, n
    do j = 1, n
      a(2*i) = a(2*j+1) + 1.0
    end do
  end do
end
`)
	if len(ds) != 0 {
		t.Errorf("GCD-independent refs reported dependent: %v", ds)
	}
}

func TestMIVConservativeStar(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, j, n
  real a(400)
  do i = 1, n
    do j = 1, n
      a(i+j) = a(i+j+1) + 1.0
    end do
  end do
end
`)
	if len(ds) == 0 {
		t.Fatal("expected conservative dependence")
	}
	hasStar := false
	for _, dir := range ds[0].Directions {
		if dir == DirStar {
			hasStar = true
		}
	}
	if !hasStar {
		t.Errorf("expected '*' direction: %+v", ds[0])
	}
}

func TestNonAffineConservative(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, n
  integer idx(100)
  real a(100)
  do i = 1, n
    a(idx(i)) = a(i) + 1.0
  end do
end
`)
	if len(ds) == 0 {
		t.Fatal("indirect subscript must be conservatively dependent")
	}
	if ds[0].Directions[0] != DirStar {
		t.Errorf("dir: %+v", ds[0])
	}
}

func TestSymbolicOffsetSharedCancel(t *testing.T) {
	// a(i+k) vs a(i+k): same symbolic offset cancels → '=' dependence.
	ds := analyze(t, `
program p
  integer i, k, n
  real a(200), b(200)
  do i = 1, n
    a(i+k) = a(i+k) * 2.0
  end do
end
`)
	if len(ds) != 1 {
		t.Fatalf("deps: %v", ds)
	}
	if ds[0].Directions[0] != DirEQ {
		t.Errorf("dir: %+v", ds[0])
	}
	if !ds[0].LoopIndependent() {
		t.Error("should be loop independent")
	}
}

func TestInterchangeLegal(t *testing.T) {
	// Jacobi-like: all deps on b are input; a written with '=' dirs.
	ds := analyze(t, `
program p
  integer i, j, n
  real a(100,100), b(100,100)
  do j = 2, n
    do i = 2, n
      a(i,j) = b(i-1,j) + b(i+1,j)
    end do
  end do
end
`)
	if !InterchangeLegal(ds, 0, 1) {
		t.Error("independent nest must be interchangeable")
	}
	// Wavefront: (1,-1) distance blocks interchange.
	ds2 := analyze(t, `
program p
  integer i, j, n
  real a(100,100)
  do i = 2, n
    do j = 1, n - 1
      a(i,j) = a(i-1,j+1) + 1.0
    end do
  end do
end
`)
	if InterchangeLegal(ds2, 0, 1) {
		t.Errorf("(1,-1) nest interchanged illegally: %v", ds2)
	}
}

func TestInterchangeStarBlocked(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, j, n
  real a(400)
  do i = 1, n
    do j = 1, n
      a(i+j) = a(i+j+1) + 1.0
    end do
  end do
end
`)
	if InterchangeLegal(ds, 0, 1) {
		t.Error("'*' directions must block interchange")
	}
}

func TestFusionLegal(t *testing.T) {
	src := `
program p
  integer i, n
  real a(100), b(100), c(100)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
  do i = 1, n
    c(i) = a(i) * 2.0
  end do
end
`
	p, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	l1 := p.Body[0].(*source.DoLoop)
	l2 := p.Body[1].(*source.DoLoop)
	if !FusionLegal(tbl, l1, l2) {
		t.Error("producer-consumer same-iteration fusion should be legal")
	}
}

func TestFusionIllegalBackward(t *testing.T) {
	src := `
program p
  integer i, n
  real a(101), b(100), c(100)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
  do i = 1, n
    c(i) = a(i+1) * 2.0
  end do
end
`
	p, _ := source.Parse(src)
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	l1 := p.Body[0].(*source.DoLoop)
	l2 := p.Body[1].(*source.DoLoop)
	if FusionLegal(tbl, l1, l2) {
		t.Error("fusion reversing a(i+1) consumption must be illegal")
	}
}

func TestFusionMismatchedHeaders(t *testing.T) {
	src := `
program p
  integer i, n
  real a(100), b(100)
  do i = 1, n
    a(i) = 1.0
  end do
  do i = 2, n
    b(i) = 2.0
  end do
end
`
	p, _ := source.Parse(src)
	tbl, _ := sem.Analyze(p)
	if FusionLegal(tbl, p.Body[0].(*source.DoLoop), p.Body[1].(*source.DoLoop)) {
		t.Error("different bounds must block fusion")
	}
}

func TestCarriedDeps(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, j, n
  real a(100,100)
  do i = 2, n
    do j = 2, n
      a(i,j) = a(i-1,j) + a(i,j-1)
    end do
  end do
end
`)
	outer := CarriedDeps(ds, 0)
	inner := CarriedDeps(ds, 1)
	if len(outer) != 1 || len(inner) != 1 {
		t.Errorf("carried: outer=%v inner=%v", outer, inner)
	}
}

func TestDependenceString(t *testing.T) {
	ds := analyze(t, `
program p
  integer i, n
  real a(100)
  do i = 2, n
    a(i) = a(i-1) + 1.0
  end do
end
`)
	s := ds[0].String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestRankMismatchConservative(t *testing.T) {
	// Same array referenced with different ranks (would be a semantic
	// error normally, but the analysis must stay conservative): force
	// it through the conservative all-star path via refs in calls.
	ds := analyze(t, `
program p
  integer i, j, n
  real a(400)
  do i = 1, n
    do j = 1, n
      a(i*j) = a(i*j+i) + 1.0
    end do
  end do
end
`)
	if len(ds) == 0 {
		t.Fatal("nonlinear subscripts should be conservatively dependent")
	}
	for _, d := range ds {
		if d.String() == "" {
			t.Error("empty dependence string")
		}
	}
}

func TestNegatedSubscripts(t *testing.T) {
	// a(-i+n) vs a(i): coefficients differ in sign → weak SIV → star.
	ds := analyze(t, `
program p
  integer i, n
  real a(200)
  do i = 1, n
    a(i) = a(n - i) + 1.0
  end do
end
`)
	if len(ds) == 0 {
		t.Fatal("reversal must be conservatively dependent")
	}
	if ds[0].Directions[0] != DirStar {
		t.Errorf("dir: %+v", ds[0])
	}
}

func TestScaledCoefficientDistance(t *testing.T) {
	// a(2i) vs a(2i-4): strong SIV with a=2, offset 4 → distance 2.
	ds := analyze(t, `
program p
  integer i, n
  real a(400)
  do i = 3, n
    a(2*i) = a(2*i - 4) + 1.0
  end do
end
`)
	if len(ds) != 1 {
		t.Fatalf("deps: %v", ds)
	}
	if !ds[0].Known[0] || ds[0].Distances[0] != 2 {
		t.Errorf("distance: %+v", ds[0])
	}
}

func TestRefsInsideConditionsAndCalls(t *testing.T) {
	// References inside IF conditions, call arguments and loop bounds
	// are collected.
	ds := analyze(t, `
program p
  integer i, n
  real a(100), b(100)
  do i = 2, n
    if (a(i-1) .gt. 0.0) then
      a(i) = b(i)
    end if
  end do
end
`)
	found := false
	for _, d := range ds {
		if d.Array == "a" && d.Kind == Flow {
			found = true
		}
	}
	if !found {
		t.Errorf("flow dep through condition missing: %v", ds)
	}
}

func TestUnknownCoefficientTimesVar(t *testing.T) {
	// a(k*i): non-constant coefficient → non-affine → conservative.
	ds := analyze(t, `
program p
  integer i, k, n
  real a(10000)
  do i = 1, n
    a(k*i) = a(k*i+1) + 1.0
  end do
end
`)
	if len(ds) == 0 {
		t.Fatal("unknown-coefficient subscripts must stay dependent")
	}
}
