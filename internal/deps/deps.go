// Package deps implements data-dependence testing on array subscripts
// in loop nests — the program-analysis substrate that tells the
// transformation engine (package xform) which restructurings are legal.
// It provides the classic ZIV, strong-SIV, weak-SIV and GCD (MIV)
// subscript tests and summarizes each dependence as a direction vector
// over the enclosing loops.
package deps

import (
	"fmt"

	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// Dir is a dependence direction for one loop level.
type Dir byte

const (
	DirLT   Dir = '<' // carried forward (distance > 0)
	DirEQ   Dir = '=' // loop independent at this level
	DirGT   Dir = '>' // would be carried backward
	DirStar Dir = '*' // unknown
)

// Kind classifies a dependence.
type Kind int

const (
	Flow   Kind = iota // write then read (true)
	Anti               // read then write
	Output             // write then write
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	default:
		return "output"
	}
}

// Dependence records one array-carried dependence between two
// references inside a nest.
type Dependence struct {
	Array string
	Kind  Kind
	// Directions per enclosing loop, outermost first.
	Directions []Dir
	// Distances holds the constant dependence distance per loop when
	// known (valid where Known is true).
	Distances []int64
	Known     []bool
	// Src and Dst are the textual references, for diagnostics.
	Src, Dst string
}

// CarriedBy reports whether the dependence is carried by loop level
// (0-based, outermost first): the first non-'=' direction is at that
// level.
func (d Dependence) CarriedBy(level int) bool {
	for i, dir := range d.Directions {
		if i == level {
			return dir != DirEQ
		}
		if dir != DirEQ {
			return false
		}
	}
	return false
}

// LoopIndependent reports an all-'=' direction vector.
func (d Dependence) LoopIndependent() bool {
	for _, dir := range d.Directions {
		if dir != DirEQ {
			return false
		}
	}
	return true
}

func (d Dependence) String() string {
	dirs := make([]byte, len(d.Directions))
	for i, x := range d.Directions {
		dirs[i] = byte(x)
	}
	return fmt.Sprintf("%s dep on %s: %s -> %s (%s)", d.Kind, d.Array, d.Src, d.Dst, dirs)
}

// affine is Σ coeff_v · v + konst over integer loop variables.
type affine struct {
	coeffs map[string]int64
	konst  int64
}

// affineOf extracts the affine form of a subscript over the loop
// variables; non-affine subscripts (or ones using non-loop variables
// whose values are unknown) return ok=false.
func affineOf(tbl *sem.Table, e source.Expr, loopVars map[string]bool) (affine, bool) {
	switch x := e.(type) {
	case *source.NumLit:
		if x.IsReal {
			return affine{}, false
		}
		return affine{coeffs: map[string]int64{}, konst: int64(x.Value)}, true
	case *source.VarRef:
		if c, ok := tbl.IntConst(x); ok {
			return affine{coeffs: map[string]int64{}, konst: c}, true
		}
		if loopVars[x.Name] {
			return affine{coeffs: map[string]int64{x.Name: 1}, konst: 0}, true
		}
		// A loop-invariant unknown scalar: treat as a symbolic constant
		// shared between the two references. Model with a pseudo-var.
		return affine{coeffs: map[string]int64{"$" + x.Name: 1}, konst: 0}, true
	case *source.UnExpr:
		if !x.Neg {
			return affine{}, false
		}
		a, ok := affineOf(tbl, x.X, loopVars)
		if !ok {
			return affine{}, false
		}
		return a.scale(-1), true
	case *source.BinExpr:
		switch x.Kind {
		case source.BinAdd, source.BinSub:
			l, ok := affineOf(tbl, x.L, loopVars)
			if !ok {
				return affine{}, false
			}
			r, ok := affineOf(tbl, x.R, loopVars)
			if !ok {
				return affine{}, false
			}
			if x.Kind == source.BinSub {
				r = r.scale(-1)
			}
			return l.add(r), true
		case source.BinMul:
			if c, ok := tbl.IntConst(x.L); ok {
				r, rok := affineOf(tbl, x.R, loopVars)
				if !rok {
					return affine{}, false
				}
				return r.scale(c), true
			}
			if c, ok := tbl.IntConst(x.R); ok {
				l, lok := affineOf(tbl, x.L, loopVars)
				if !lok {
					return affine{}, false
				}
				return l.scale(c), true
			}
			return affine{}, false
		default:
			return affine{}, false
		}
	default:
		return affine{}, false
	}
}

func (a affine) scale(c int64) affine {
	out := affine{coeffs: map[string]int64{}, konst: a.konst * c}
	for v, k := range a.coeffs {
		if k*c != 0 {
			out.coeffs[v] = k * c
		}
	}
	return out
}

func (a affine) add(b affine) affine {
	out := affine{coeffs: map[string]int64{}, konst: a.konst + b.konst}
	for v, k := range a.coeffs {
		out.coeffs[v] = k
	}
	for v, k := range b.coeffs {
		out.coeffs[v] += k
		if out.coeffs[v] == 0 {
			delete(out.coeffs, v)
		}
	}
	return out
}

// ref is one array reference occurrence.
type ref struct {
	arr   *source.ArrayRef
	write bool
	order int // textual order for kind classification
}

// collectRefs walks statements gathering array references.
func collectRefs(stmts []source.Stmt, out *[]ref) {
	var walkExpr func(e source.Expr, write bool)
	walkExpr = func(e source.Expr, write bool) {
		switch x := e.(type) {
		case *source.ArrayRef:
			*out = append(*out, ref{arr: x, write: write, order: len(*out)})
			for _, ix := range x.Idx {
				walkExpr(ix, false)
			}
		case *source.BinExpr:
			walkExpr(x.L, false)
			walkExpr(x.R, false)
		case *source.UnExpr:
			walkExpr(x.X, false)
		case *source.IntrinsicCall:
			for _, a := range x.Args {
				walkExpr(a, false)
			}
		}
	}
	for _, s := range stmts {
		switch x := s.(type) {
		case *source.Assign:
			walkExpr(x.RHS, false)
			walkExpr(x.LHS, true)
		case *source.IfStmt:
			walkExpr(x.Cond, false)
			collectRefs(x.Then, out)
			collectRefs(x.Else, out)
		case *source.DoLoop:
			walkExpr(x.Lb, false)
			walkExpr(x.Ub, false)
			if x.Step != nil {
				walkExpr(x.Step, false)
			}
			collectRefs(x.Body, out)
		case *source.CallStmt:
			for _, a := range x.Args {
				walkExpr(a, false)
			}
		}
	}
}

// Analyze computes the dependences of a loop nest: loops lists the
// enclosing DO loops outermost-first, and body is the innermost body
// (which may itself contain further structure). Subscript pairs that
// defeat every test are reported with '*' directions (assumed
// dependent), keeping the analysis conservative.
func Analyze(tbl *sem.Table, loops []*source.DoLoop, body []source.Stmt) []Dependence {
	loopVars := map[string]bool{}
	var order []string
	for _, l := range loops {
		loopVars[l.Var] = true
		order = append(order, l.Var)
	}
	var refs []ref
	collectRefs(body, &refs)

	var out []Dependence
	for i, a := range refs {
		for j, b := range refs {
			if j <= i {
				continue
			}
			if a.arr.Name != b.arr.Name {
				continue
			}
			if !a.write && !b.write {
				continue
			}
			d, dependent := testPair(tbl, a, b, order, loopVars)
			if dependent {
				out = append(out, d)
			}
		}
	}
	return out
}

// testPair runs the subscript tests dimension by dimension and merges
// the per-variable distance constraints.
func testPair(tbl *sem.Table, a, b ref, order []string, loopVars map[string]bool) (Dependence, bool) {
	kind := Output
	switch {
	case a.write && !b.write:
		kind = Flow
	case !a.write && b.write:
		kind = Anti
	}
	d := Dependence{
		Array: a.arr.Name,
		Kind:  kind,
		Src:   source.ExprString(a.arr),
		Dst:   source.ExprString(b.arr),
	}
	// dist[v]: required distance for v; has[v]: constraint present.
	dist := map[string]int64{}
	has := map[string]bool{}
	star := map[string]bool{}

	if len(a.arr.Idx) != len(b.arr.Idx) {
		// Rank confusion: be conservative.
		return d.allStar(order), true
	}
	for dim := range a.arr.Idx {
		fa, okA := affineOf(tbl, a.arr.Idx[dim], loopVars)
		fb, okB := affineOf(tbl, b.arr.Idx[dim], loopVars)
		if !okA || !okB {
			// Non-affine: unknown in every loop variable.
			for _, v := range order {
				star[v] = true
			}
			continue
		}
		// The two references occur in distinct iteration instances:
		// fa(I1) = fb(I2). Loop-invariant symbolic scalars
		// (pseudo-vars, "$x") are shared between instances and cancel
		// when their coefficients match; an unmatched pseudo-var makes
		// the offset unknown.
		pseudoUnknown := false
		for v, ca := range fa.coeffs {
			if v[0] != '$' {
				continue
			}
			if fb.coeffs[v] != ca {
				pseudoUnknown = true
			}
		}
		for v, cb := range fb.coeffs {
			if v[0] == '$' && fa.coeffs[v] != cb {
				pseudoUnknown = true
			}
		}
		offset := fa.konst - fb.konst // a·I1 + c1 = a·I2 + c2 → a·Δ = c1−c2
		vars := map[string]bool{}
		for v := range fa.coeffs {
			if loopVars[v] {
				vars[v] = true
			}
		}
		for v := range fb.coeffs {
			if loopVars[v] {
				vars[v] = true
			}
		}
		switch len(vars) {
		case 0:
			// ZIV: constant subscripts (possibly with shared symbolic
			// parts).
			if pseudoUnknown {
				continue // unknown offset constrains no loop var
			}
			if offset != 0 {
				return Dependence{}, false // provably independent
			}
		case 1:
			var v string
			for vv := range vars {
				v = vv
			}
			a1, a2 := fa.coeffs[v], fb.coeffs[v]
			if a1 != a2 || a1 == 0 || pseudoUnknown {
				// Weak SIV or unknown offset: direction unknown.
				star[v] = true
				continue
			}
			// Strong SIV: a·Δv = c1 − c2 with Δv = I2 − I1.
			if offset%a1 != 0 {
				return Dependence{}, false // non-integer distance
			}
			delta := offset / a1
			if has[v] && dist[v] != delta {
				return Dependence{}, false // inconsistent across dims
			}
			has[v], dist[v] = true, delta
		default:
			// MIV: GCD test over all instance coefficients.
			g := int64(0)
			for v := range vars {
				g = gcd(g, abs64(fa.coeffs[v]))
				g = gcd(g, abs64(fb.coeffs[v]))
			}
			if g != 0 && !pseudoUnknown && offset%g != 0 {
				return Dependence{}, false
			}
			for v := range vars {
				star[v] = true
			}
		}
	}

	for _, v := range order {
		switch {
		case has[v] && !star[v]:
			delta := dist[v]
			d.Distances = append(d.Distances, delta)
			d.Known = append(d.Known, true)
			switch {
			case delta > 0:
				d.Directions = append(d.Directions, DirLT)
			case delta < 0:
				d.Directions = append(d.Directions, DirGT)
			default:
				d.Directions = append(d.Directions, DirEQ)
			}
		case star[v]:
			d.Distances = append(d.Distances, 0)
			d.Known = append(d.Known, false)
			d.Directions = append(d.Directions, DirStar)
		default:
			// Variable unconstrained by any subscript: the references
			// coincide for every value → '=' at this level... only when
			// the variable appears in neither subscript. Distance 0.
			d.Distances = append(d.Distances, 0)
			d.Known = append(d.Known, true)
			d.Directions = append(d.Directions, DirEQ)
		}
	}
	// Normalize: a dependence whose leading non-'=' direction is '>'
	// runs source→sink backwards; flip it (and its kind).
	if leadingGT(d.Directions) {
		d = flip(d)
	}
	return d, true
}

func (d Dependence) allStar(order []string) Dependence {
	for range order {
		d.Directions = append(d.Directions, DirStar)
		d.Distances = append(d.Distances, 0)
		d.Known = append(d.Known, false)
	}
	return d
}

func (a affine) vars(loopVars map[string]bool) []string {
	var out []string
	for v := range a.coeffs {
		if loopVars[v] {
			out = append(out, v)
		}
	}
	return out
}

func hasPseudo(a affine) bool {
	for v := range a.coeffs {
		if v[0] == '$' {
			return true
		}
	}
	return false
}

func leadingGT(dirs []Dir) bool {
	for _, d := range dirs {
		switch d {
		case DirEQ:
			continue
		case DirGT:
			return true
		default:
			return false
		}
	}
	return false
}

func flip(d Dependence) Dependence {
	out := d
	out.Src, out.Dst = d.Dst, d.Src
	switch d.Kind {
	case Flow:
		out.Kind = Anti
	case Anti:
		out.Kind = Flow
	}
	out.Directions = append([]Dir(nil), d.Directions...)
	out.Distances = append([]int64(nil), d.Distances...)
	for i, dir := range out.Directions {
		switch dir {
		case DirLT:
			out.Directions[i] = DirGT
		case DirGT:
			out.Directions[i] = DirLT
		}
		out.Distances[i] = -out.Distances[i]
	}
	return out
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// InterchangeLegal reports whether swapping loop levels i and j
// (0-based, outermost first) preserves every dependence: after the
// swap no direction vector may have its first non-'=' entry become
// '>' (or be a '*' that could be '>').
func InterchangeLegal(dependences []Dependence, i, j int) bool {
	for _, d := range dependences {
		dirs := append([]Dir(nil), d.Directions...)
		if i < len(dirs) && j < len(dirs) {
			dirs[i], dirs[j] = dirs[j], dirs[i]
		}
		for _, dir := range dirs {
			if dir == DirEQ {
				continue
			}
			if dir == DirGT || dir == DirStar {
				return false
			}
			break
		}
	}
	return true
}

// FusionLegal reports whether two adjacent loops with identical
// headers may be fused. In the original program every iteration of a
// precedes every iteration of b; after fusion, b's iteration i runs
// before a's iterations > i. Fusion is therefore illegal when some
// b-body reference touches a location an a-body reference (with at
// least one of the two writing) touches at a strictly later iteration
// — or when the subscripts defeat analysis (conservative).
func FusionLegal(tbl *sem.Table, a, b *source.DoLoop) bool {
	if a.Var != b.Var {
		return false
	}
	if source.ExprString(a.Lb) != source.ExprString(b.Lb) ||
		source.ExprString(a.Ub) != source.ExprString(b.Ub) ||
		stepString(a) != stepString(b) {
		return false
	}
	loopVars := map[string]bool{a.Var: true}
	var refsA, refsB []ref
	collectRefs(a.Body, &refsA)
	collectRefs(b.Body, &refsB)
	for _, ra := range refsA {
		for _, rb := range refsB {
			if ra.arr.Name != rb.arr.Name || (!ra.write && !rb.write) {
				continue
			}
			if !fusionSafePair(tbl, ra.arr, rb.arr, a.Var, loopVars) {
				return false
			}
		}
	}
	return true
}

func stepString(l *source.DoLoop) string {
	if l.Step == nil {
		return "1"
	}
	return source.ExprString(l.Step)
}

// fusionSafePair checks that every solution of fa(I1) = fb(I2) has
// I1 ≤ I2: the a-loop access never lands on a location the b-loop
// access already consumed at an earlier fused iteration.
func fusionSafePair(tbl *sem.Table, ra, rb *source.ArrayRef, v string, loopVars map[string]bool) bool {
	if len(ra.Idx) != len(rb.Idx) {
		return false
	}
	// Every dimension must agree; one dimension proving independence
	// clears the pair, one dimension proving Δ ≤ 0 with the rest
	// consistent clears it too.
	deltaKnown := false
	var delta int64
	for dim := range ra.Idx {
		fa, okA := affineOf(tbl, ra.Idx[dim], loopVars)
		fb, okB := affineOf(tbl, rb.Idx[dim], loopVars)
		if !okA || !okB {
			return false // non-affine: conservative
		}
		for name, c := range fa.coeffs {
			if name[0] == '$' && fb.coeffs[name] != c {
				return false // unknown symbolic offset
			}
		}
		for name, c := range fb.coeffs {
			if name[0] == '$' && fa.coeffs[name] != c {
				return false
			}
		}
		a1, a2 := fa.coeffs[v], fb.coeffs[v]
		offset := fa.konst - fb.konst
		switch {
		case a1 == 0 && a2 == 0:
			if offset != 0 {
				return true // provably disjoint locations
			}
		case a1 == a2:
			// a·I1 + c1 = a·I2 + c2 → I1 − I2 = (c2 − c1)/a = −offset/a
			if offset%a1 != 0 {
				return true // never equal
			}
			d := -offset / a1
			if deltaKnown && d != delta {
				return true // inconsistent across dims: independent
			}
			deltaKnown, delta = true, d
		default:
			return false // weak SIV: conservative
		}
	}
	if !deltaKnown {
		// Same fixed location every iteration for both loops:
		// reordering changes which write a read sees → unsafe.
		return false
	}
	return delta <= 0
}

// CarriedDeps filters dependences carried by the given loop level.
func CarriedDeps(ds []Dependence, level int) []Dependence {
	var out []Dependence
	for _, d := range ds {
		if d.CarriedBy(level) || (level < len(d.Directions) && d.Directions[level] == DirStar) {
			out = append(out, d)
		}
	}
	return out
}
