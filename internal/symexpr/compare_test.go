package symexpr

import (
	"math"
	"sort"
	"testing"
)

func TestRootsLinear(t *testing.T) {
	n := Var("n")
	p := NewVar(n).Scale(2).AddConst(-10) // root at 5
	r, err := Roots(p, n, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 {
		t.Fatalf("roots: %v", r)
	}
	approx(t, r[0], 5, 1e-9, "linear root")
	// Out of range.
	r, _ = Roots(p, n, 10, 100)
	if len(r) != 0 {
		t.Errorf("expected no roots in [10,100], got %v", r)
	}
}

func TestRootsQuadratic(t *testing.T) {
	n := Var("n")
	// (n−3)(n−7) = n² − 10n + 21
	p := NewVar(n).Pow(2).Sub(NewVar(n).Scale(10)).AddConst(21)
	r, err := Roots(p, n, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("roots: %v", r)
	}
	approx(t, r[0], 3, 1e-9, "root 1")
	approx(t, r[1], 7, 1e-9, "root 2")
	// No real roots.
	q := NewVar(n).Pow(2).AddConst(1)
	r, _ = Roots(q, n, -100, 100)
	if len(r) != 0 {
		t.Errorf("n²+1 roots: %v", r)
	}
}

func TestRootsCubicQuartic(t *testing.T) {
	n := Var("n")
	// (n−1)(n−4)(n−9) roots 1, 4, 9
	p := NewVar(n).AddConst(-1).Mul(NewVar(n).AddConst(-4)).Mul(NewVar(n).AddConst(-9))
	r, err := Roots(p, n, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	wantRoots(t, r, []float64{1, 4, 9})
	// Quartic (n²−1)(n²−16): roots ±1, ±4.
	q := NewVar(n).Pow(2).AddConst(-1).Mul(NewVar(n).Pow(2).AddConst(-16))
	r, err = Roots(q, n, -10, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantRoots(t, r, []float64{-4, -1, 1, 4})
}

func TestRootsDouble(t *testing.T) {
	n := Var("n")
	// (n−5)² — tangent root: derivative recursion finds it via the
	// critical point falling exactly on the root.
	p := NewVar(n).AddConst(-5).Pow(2)
	r, err := Roots(p, n, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || math.Abs(r[0]-5) > 1e-6 {
		t.Errorf("double root: %v", r)
	}
}

func TestRootsDegree5(t *testing.T) {
	n := Var("n")
	// n(n−2)(n−3)(n−5)(n−8)
	p := NewVar(n)
	for _, c := range []float64{2, 3, 5, 8} {
		p = p.Mul(NewVar(n).AddConst(-c))
	}
	r, err := Roots(p, n, -1, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantRoots(t, r, []float64{0, 2, 3, 5, 8})
}

func wantRoots(t *testing.T, got, want []float64) {
	t.Helper()
	sort.Float64s(got)
	if len(got) != len(want) {
		t.Fatalf("got %d roots %v, want %v", len(got), got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Errorf("root %d: got %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSignRegionsCubic(t *testing.T) {
	// Figure 10: a cubic with a>0 over [lb, ub] — negative then positive
	// regions alternating at the roots. Use (n−2)(n−5)(n−8).
	n := Var("n")
	p := NewVar(n).AddConst(-2).Mul(NewVar(n).AddConst(-5)).Mul(NewVar(n).AddConst(-8))
	regions, err := SignRegions(p, n, Interval{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	wantSigns := []Sign{SignNegative, SignPositive, SignNegative, SignPositive}
	if len(regions) != len(wantSigns) {
		t.Fatalf("regions: %+v", regions)
	}
	for i, r := range regions {
		if r.Sign != wantSigns[i] {
			t.Errorf("region %d sign = %v, want %v (%+v)", i, r.Sign, wantSigns[i], r)
		}
	}
	approx(t, regions[0].Hi, 2, 1e-6, "first boundary")
	approx(t, regions[1].Hi, 5, 1e-6, "second boundary")
	approx(t, regions[2].Hi, 8, 1e-6, "third boundary")
}

func TestSignRegionsConstant(t *testing.T) {
	rs, err := SignRegions(Const(-2), "n", Interval{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Sign != SignNegative {
		t.Errorf("regions: %+v", rs)
	}
}

func TestCompareConstants(t *testing.T) {
	cmp, err := Compare(Const(3), Const(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != VerdictFirstBetter {
		t.Errorf("verdict = %v", cmp.Verdict)
	}
	cmp, _ = Compare(Const(5), Const(5), nil)
	if cmp.Verdict != VerdictEqual {
		t.Errorf("equal verdict = %v", cmp.Verdict)
	}
}

func TestCompareUnivariateAlways(t *testing.T) {
	n := Var("n")
	// f = 2n + 3, g = 3n + 10 over n ∈ [1, 100]: f always better.
	f := NewVar(n).Scale(2).AddConst(3)
	g := NewVar(n).Scale(3).AddConst(10)
	cmp, err := Compare(f, g, Bounds{n: {1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != VerdictFirstBetter {
		t.Errorf("verdict = %v (diff %v, regions %+v)", cmp.Verdict, cmp.Diff, cmp.Regions)
	}
	if cmp.FirstShare != 1 {
		t.Errorf("share = %v", cmp.FirstShare)
	}
}

func TestCompareUnivariateDepends(t *testing.T) {
	n := Var("n")
	// f = n², g = 10n: f better for n < 10 within [1, 100]… actually
	// n² < 10n ⇔ n < 10. First better on [1,10), second on (10,100].
	f := NewVar(n).Pow(2)
	g := NewVar(n).Scale(10)
	cmp, err := Compare(f, g, Bounds{n: {1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != VerdictDepends {
		t.Fatalf("verdict = %v", cmp.Verdict)
	}
	rt, ok := DeriveRuntimeTest(cmp)
	if !ok || len(rt.Thresholds) != 1 {
		t.Fatalf("runtime test: %+v ok=%v", rt, ok)
	}
	approx(t, rt.Thresholds[0], 10, 1e-6, "crossover")
}

func TestCompareMissingBounds(t *testing.T) {
	n := Var("n")
	_, err := Compare(NewVar(n), Const(0), Bounds{})
	if err == nil {
		t.Error("expected missing-bounds error")
	}
}

func TestCompareMultivariateIntervals(t *testing.T) {
	n, p := Var("n"), Var("p")
	// f = n·p, g = n·p + n + 1 → diff = −n − 1 < 0 for n ≥ 0.
	f := NewVar(n).Mul(NewVar(p))
	g := f.Add(NewVar(n)).AddConst(1)
	cmp, err := Compare(f, g, Bounds{n: {1, 1000}, p: {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != VerdictFirstBetter {
		t.Errorf("verdict = %v", cmp.Verdict)
	}
}

func TestCompareMultivariateDepends(t *testing.T) {
	n, k := Var("n"), Var("k")
	// diff = n − k over n,k ∈ [1, 100]: mixed.
	cmp, err := Compare(NewVar(n), NewVar(k), Bounds{n: {1, 100}, k: {1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != VerdictDepends {
		t.Errorf("verdict = %v", cmp.Verdict)
	}
	if cmp.FirstShare <= 0.3 || cmp.FirstShare >= 0.7 {
		t.Errorf("share = %v, want ≈ 0.5", cmp.FirstShare)
	}
}

func TestIntervalBound(t *testing.T) {
	n := Var("n")
	p := NewVar(n).Pow(2).Sub(NewVar(n).Scale(3)) // n² − 3n
	lo, hi := IntervalBound(p, Bounds{n: {1, 10}})
	// Conservative: lo ≤ min (−2.25 at n=1.5), hi ≥ max (70 at n=10).
	if lo > -2.25+1e-9 {
		t.Errorf("lo = %v not ≤ -2.25", lo)
	}
	if hi < 70-1e-9 {
		t.Errorf("hi = %v not ≥ 70", hi)
	}
	// Even powers with sign-crossing interval.
	q := NewVar(n).Pow(2)
	lo, hi = IntervalBound(q, Bounds{n: {-3, 2}})
	if lo != 0 || hi != 9 {
		t.Errorf("x² over [-3,2]: [%v, %v], want [0, 9]", lo, hi)
	}
	// Laurent over interval containing 0 is unbounded.
	l := Term(1, Monomial{n: -1})
	lo, hi = IntervalBound(l, Bounds{n: {-1, 1}})
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("1/n over [-1,1]: [%v, %v]", lo, hi)
	}
}

func TestIntegralCompare(t *testing.T) {
	n := Var("n")
	// P = n − 5 over [0, 10]: ∫P⁺ = 12.5, ∫P⁻ = 12.5
	pos, neg, err := IntegralCompare(NewVar(n), Const(5), n, Interval{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, pos, 12.5, 1e-6, "pos area")
	approx(t, neg, 12.5, 1e-6, "neg area")
	// P = n over [1, 3]: all positive, area 4.
	pos, neg, err = IntegralCompare(NewVar(n), Zero(), n, Interval{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, pos, 4, 1e-6, "pos only")
	approx(t, neg, 0, 1e-6, "no neg")
}

func TestDropDominatedTerms(t *testing.T) {
	x := Var("x")
	// Paper example: 4x⁴ + 2x³ − 4x + 1/x³ over x ∈ [3, 100] → drop 1/x³.
	p := NewVar(x).Pow(4).Scale(4).
		Add(NewVar(x).Pow(3).Scale(2)).
		Sub(NewVar(x).Scale(4)).
		Add(Term(1, Monomial{x: -3}))
	simplified := DropDominatedTerms(p, Bounds{x: {3, 100}}, 1e-8)
	want := NewVar(x).Pow(4).Scale(4).
		Add(NewVar(x).Pow(3).Scale(2)).
		Sub(NewVar(x).Scale(4))
	if !simplified.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", simplified, want)
	}
	// Nothing dominated → unchanged.
	q := NewVar(x).Add(Const(1))
	if !DropDominatedTerms(q, Bounds{x: {0.5, 2}}, 1e-4).Equal(q, 0) {
		t.Error("dropped a non-dominated term")
	}
}

func TestSensitivityRanking(t *testing.T) {
	n, k, p := Var("n"), Var("k"), Var("p")
	// cost = 100n + 5k + p: n dominates at nominal (n=100,k=100,p=0.5).
	cost := NewVar(n).Scale(100).Add(NewVar(k).Scale(5)).Add(NewVar(p))
	sens, err := Sensitivity(cost, map[Var]float64{n: 100, k: 100, p: 0.5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sens[0].Var != n {
		t.Errorf("most sensitive = %v, want n (%+v)", sens[0].Var, sens)
	}
	top, err := TopSensitive(cost, map[Var]float64{n: 100, k: 100, p: 0.5}, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != n || top[1] != k {
		t.Errorf("top = %v", top)
	}
}

func TestSensitivityZeroNominal(t *testing.T) {
	n := Var("n")
	cost := NewVar(n).Scale(10)
	sens, err := Sensitivity(cost, map[Var]float64{n: 0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 1 || sens[0].Perturbation == 0 {
		t.Errorf("zero-nominal sensitivity: %+v", sens)
	}
}

func TestDeriveRuntimeTestNotApplicable(t *testing.T) {
	cmp := Comparison{Verdict: VerdictFirstBetter}
	if _, ok := DeriveRuntimeTest(cmp); ok {
		t.Error("runtime test derived from non-Depends verdict")
	}
}

func TestSignString(t *testing.T) {
	for s, want := range map[Sign]string{
		SignNegative: "negative", SignPositive: "positive",
		SignZero: "zero", SignMixed: "mixed", SignUnknown: "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	for v, want := range map[Verdict]string{
		VerdictFirstBetter: "first better", VerdictEqual: "equal",
		VerdictSecondBetter: "second better", VerdictDepends: "depends on unknowns",
		VerdictUnknown: "unknown",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}
