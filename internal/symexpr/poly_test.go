package symexpr

import (
	"math"
	"strings"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestConstAndZero(t *testing.T) {
	z := Zero()
	if !z.IsZero() {
		t.Error("Zero() not zero")
	}
	c := Const(3.5)
	v, ok := c.IsConst()
	if !ok || v != 3.5 {
		t.Errorf("Const(3.5): got (%v, %v)", v, ok)
	}
	if Const(0).NumTerms() != 0 {
		t.Error("Const(0) should have no terms")
	}
}

func TestAddSub(t *testing.T) {
	n := NewVar("n")
	p := n.Scale(2).AddConst(3) // 2n + 3
	q := n.Scale(5).AddConst(-1)
	sum := p.Add(q)
	got := sum.MustEval(map[Var]float64{"n": 10})
	approx(t, got, 2*10+3+5*10-1, 1e-9, "Add eval")
	diff := p.Sub(p)
	if !diff.IsZero() {
		t.Errorf("p - p = %v, want 0", diff)
	}
}

func TestMul(t *testing.T) {
	n, k := NewVar("n"), NewVar("k")
	// (n + 2)(k − 3) = nk − 3n + 2k − 6
	p := n.AddConst(2).Mul(k.AddConst(-3))
	want := Term(1, Monomial{"n": 1, "k": 1}).
		Add(Term(-3, Monomial{"n": 1})).
		Add(Term(2, Monomial{"k": 1})).
		AddConst(-6)
	if !p.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", p, want)
	}
}

func TestMulCancellation(t *testing.T) {
	n := NewVar("n")
	// (n + 1)(n − 1) = n² − 1
	p := n.AddConst(1).Mul(n.AddConst(-1))
	if p.NumTerms() != 2 {
		t.Errorf("(n+1)(n-1) has %d terms: %v", p.NumTerms(), p)
	}
	approx(t, p.MustEval(map[Var]float64{"n": 7}), 48, 1e-9, "eval")
}

func TestPow(t *testing.T) {
	n := NewVar("n")
	p := n.AddConst(1).Pow(3) // n³+3n²+3n+1
	approx(t, p.MustEval(map[Var]float64{"n": 2}), 27, 1e-9, "(n+1)^3 at 2")
	if d := p.Degree("n"); d != 3 {
		t.Errorf("degree = %d, want 3", d)
	}
	if !n.Pow(0).Equal(Const(1), 0) {
		t.Error("n^0 != 1")
	}
}

func TestPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pow(-1) did not panic")
		}
	}()
	NewVar("n").Pow(-1)
}

func TestLaurentTerms(t *testing.T) {
	// 1/x^3 evaluates correctly and Degree/MinDegree track it.
	p := Term(1, Monomial{"x": -3})
	approx(t, p.MustEval(map[Var]float64{"x": 2}), 0.125, 1e-12, "x^-3 at 2")
	if p.MinDegree("x") != -3 {
		t.Errorf("MinDegree = %d", p.MinDegree("x"))
	}
	if p.IsPolynomialIn("x") {
		t.Error("1/x^3 claimed polynomial in x")
	}
	if _, err := p.Eval(map[Var]float64{"x": 0}); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestEvalUnbound(t *testing.T) {
	p := NewVar("n")
	if _, err := p.Eval(map[Var]float64{}); err == nil {
		t.Error("expected unbound-variable error")
	}
}

func TestSubstitute(t *testing.T) {
	n, m := Var("n"), Var("m")
	p := NewVar(n).Pow(2).Add(NewVar(n)).AddConst(1) // n²+n+1
	// n := m + 1  →  m²+3m+3
	q, err := p.Substitute(n, NewVar(m).AddConst(1))
	if err != nil {
		t.Fatal(err)
	}
	want := NewVar(m).Pow(2).Add(NewVar(m).Scale(3)).AddConst(3)
	if !q.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", q, want)
	}
}

func TestSubstituteConst(t *testing.T) {
	p := NewVar("n").Pow(2).Add(Term(4, Monomial{"n": -1}))
	q, err := p.Substitute("n", Const(2))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := q.IsConst()
	if !ok {
		t.Fatalf("not const: %v", q)
	}
	approx(t, v, 4+2, 1e-12, "subst const")
}

func TestSubstitutePolyIntoNegativePowerFails(t *testing.T) {
	p := Term(1, Monomial{"n": -1})
	if _, err := p.Substitute("n", NewVar("m").AddConst(1)); err == nil {
		t.Error("expected error substituting poly into n^-1")
	}
}

func TestCoeffs(t *testing.T) {
	n := Var("n")
	p := NewVar(n).Pow(3).Scale(4).Sub(NewVar(n).Scale(2)).AddConst(7)
	c, err := p.Coeffs(n)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, -2, 0, 4}
	if len(c) != len(want) {
		t.Fatalf("len = %d, want %d", len(c), len(want))
	}
	for i := range want {
		approx(t, c[i], want[i], 1e-12, "coeff")
	}
	// Multivariate fails.
	p2 := p.Add(NewVar("k"))
	if _, err := p2.Coeffs(n); err == nil {
		t.Error("expected error for multivariate Coeffs")
	}
}

func TestCoeffOf(t *testing.T) {
	// p = 3n²k + 2n² − n + 5; CoeffOf(n, 2) = 3k + 2
	p := Term(3, Monomial{"n": 2, "k": 1}).
		Add(Term(2, Monomial{"n": 2})).
		Add(Term(-1, Monomial{"n": 1})).
		AddConst(5)
	c := p.CoeffOf("n", 2)
	want := NewVar("k").Scale(3).AddConst(2)
	if !c.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", c, want)
	}
	if !p.CoeffOf("n", 5).IsZero() {
		t.Error("CoeffOf missing power should be zero")
	}
}

func TestDerivative(t *testing.T) {
	n := Var("n")
	p := NewVar(n).Pow(3).Scale(2).Add(NewVar(n).Scale(5)).AddConst(9)
	d := p.Derivative(n)
	want := NewVar(n).Pow(2).Scale(6).AddConst(5)
	if !d.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", d, want)
	}
	// Derivative of Laurent term: d/dx x^-2 = -2 x^-3
	l := Term(1, Monomial{"x": -2}).Derivative("x")
	if !l.Equal(Term(-2, Monomial{"x": -3}), 1e-12) {
		t.Errorf("laurent derivative: %v", l)
	}
}

func TestVars(t *testing.T) {
	p := Term(1, Monomial{"b": 1}).Add(Term(1, Monomial{"a": 2})).AddConst(3)
	vs := p.Vars()
	if len(vs) != 2 || vs[0] != "a" || vs[1] != "b" {
		t.Errorf("Vars = %v", vs)
	}
}

func TestString(t *testing.T) {
	p := NewVar("n").Pow(2).Scale(3).Sub(NewVar("n").Scale(2)).AddConst(1)
	s := p.String()
	for _, want := range []string{"3·n^2", "2·n", "1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if Zero().String() != "0" {
		t.Errorf("Zero string: %q", Zero().String())
	}
}

func TestMulVar(t *testing.T) {
	p := NewVar("n").AddConst(1)
	q := p.MulVar("n", 1) // n² + n
	want := NewVar("n").Pow(2).Add(NewVar("n"))
	if !q.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", q, want)
	}
	r := q.MulVar("n", -1) // back to n + 1
	if !r.Equal(p, 1e-12) {
		t.Errorf("MulVar inverse: %v", r)
	}
}

func TestImmutability(t *testing.T) {
	p := NewVar("n").AddConst(1)
	before := p.String()
	_ = p.Add(NewVar("k"))
	_ = p.Mul(NewVar("k"))
	_ = p.Scale(10)
	if p.String() != before {
		t.Errorf("operations mutated receiver: %q -> %q", before, p.String())
	}
}

func TestTermsOrderStable(t *testing.T) {
	p := NewVar("b").Add(NewVar("a")).AddConst(1)
	t1 := p.Terms()
	t2 := p.Terms()
	if len(t1) != len(t2) || len(t1) != 3 {
		t.Fatalf("terms: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].Coeff != t2[i].Coeff {
			t.Error("unstable term order")
		}
	}
}
