package symexpr

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a closed range of possible values for a variable, e.g.
// the known bounds on a loop limit ("if the range of x is [3, 100]…",
// §3.1).
type Interval struct {
	Lo, Hi float64
}

// Bounds maps each variable to its known interval.
type Bounds map[Var]Interval

// Sign classifies the value of an expression over a region.
type Sign int

const (
	SignUnknown  Sign = iota // could not be decided
	SignNegative             // < 0 everywhere
	SignZero                 // ≡ 0
	SignPositive             // > 0 everywhere
	SignMixed                // provably takes both signs
)

func (s Sign) String() string {
	switch s {
	case SignNegative:
		return "negative"
	case SignZero:
		return "zero"
	case SignPositive:
		return "positive"
	case SignMixed:
		return "mixed"
	default:
		return "unknown"
	}
}

// Region is a sub-interval of a variable's range over which an
// expression has constant sign (Figure 10 of the paper shows these
// regions for a cubic).
type Region struct {
	Lo, Hi float64
	Sign   Sign
}

// SignRegions partitions [b.Lo, b.Hi] for variable v into maximal
// regions of constant sign of p. p must be univariate in v.
func SignRegions(p Poly, v Var, b Interval) ([]Region, error) {
	if c, ok := p.IsConst(); ok {
		return []Region{{b.Lo, b.Hi, signOf(c)}}, nil
	}
	roots, err := Roots(p, v, b.Lo, b.Hi)
	if err != nil {
		return nil, err
	}
	pts := append([]float64{b.Lo}, roots...)
	pts = append(pts, b.Hi)
	var regions []Region
	for i := 0; i+1 < len(pts); i++ {
		lo, hi := pts[i], pts[i+1]
		if hi <= lo {
			continue
		}
		mid := (lo + hi) / 2
		val := p.MustEval(map[Var]float64{v: mid})
		regions = append(regions, Region{lo, hi, signOf(val)})
	}
	if len(regions) == 0 {
		val := p.MustEval(map[Var]float64{v: b.Lo})
		regions = []Region{{b.Lo, b.Hi, signOf(val)}}
	}
	return mergeRegions(regions), nil
}

func signOf(v float64) Sign {
	switch {
	case math.Abs(v) < coeffEps:
		return SignZero
	case v < 0:
		return SignNegative
	default:
		return SignPositive
	}
}

func mergeRegions(rs []Region) []Region {
	out := rs[:0]
	for _, r := range rs {
		if len(out) > 0 && out[len(out)-1].Sign == r.Sign {
			out[len(out)-1].Hi = r.Hi
			continue
		}
		out = append(out, r)
	}
	return out
}

// Verdict is the outcome of a symbolic comparison C(f) vs C(g).
type Verdict int

const (
	VerdictUnknown     Verdict = iota // bounds insufficient; guess or emit run-time test
	VerdictFirstBetter                // C(f) < C(g) over the whole region
	VerdictEqual                      // C(f) ≡ C(g)
	VerdictSecondBetter
	VerdictDepends // winner depends on unknowns; see Regions
)

func (v Verdict) String() string {
	switch v {
	case VerdictFirstBetter:
		return "first better"
	case VerdictEqual:
		return "equal"
	case VerdictSecondBetter:
		return "second better"
	case VerdictDepends:
		return "depends on unknowns"
	default:
		return "unknown"
	}
}

// Comparison is the full result of Compare.
type Comparison struct {
	Verdict Verdict
	// Diff is P = C(f) − C(g).
	Diff Poly
	// Regions is set when the difference is univariate: sign regions
	// of P over the variable's bounds. SignNegative regions are where
	// the first expression wins.
	Regions []Region
	// Var is the variable Regions is expressed in.
	Var Var
	// FirstShare is the fraction of the (sampled or exact) region where
	// the first expression is at least as cheap.
	FirstShare float64
}

// Compare decides symbolically which of two performance expressions is
// smaller over the given bounds (§3.1). If the difference is univariate
// the decision is exact via sign regions; multivariate differences are
// decided by interval bounding, falling back to grid sampling (the
// "compute the condition / guess" escape hatch the paper describes).
func Compare(f, g Poly, bounds Bounds) (Comparison, error) {
	p := f.Sub(g)
	cmp := Comparison{Diff: p}
	if c, ok := p.IsConst(); ok {
		cmp.Verdict = verdictFromSign(signOf(c))
		if cmp.Verdict == VerdictFirstBetter || cmp.Verdict == VerdictEqual {
			cmp.FirstShare = 1
		}
		return cmp, nil
	}
	vars := p.Vars()
	for _, v := range vars {
		if _, ok := bounds[v]; !ok {
			return cmp, fmt.Errorf("symexpr: Compare: no bounds for variable %q", v)
		}
	}
	if len(vars) == 1 && p.IsPolynomialIn(vars[0]) {
		v := vars[0]
		regions, err := SignRegions(p, v, bounds[v])
		if err != nil {
			return cmp, err
		}
		cmp.Var = v
		cmp.Regions = regions
		cmp.Verdict, cmp.FirstShare = classifyRegions(regions)
		return cmp, nil
	}
	// Multivariate (or Laurent): interval bound first.
	lo, hi := IntervalBound(p, bounds)
	switch {
	case hi < 0:
		cmp.Verdict, cmp.FirstShare = VerdictFirstBetter, 1
		return cmp, nil
	case lo > 0:
		cmp.Verdict = VerdictSecondBetter
		return cmp, nil
	case lo == 0 && hi == 0:
		cmp.Verdict, cmp.FirstShare = VerdictEqual, 1
		return cmp, nil
	}
	// Sample a grid to distinguish Depends from one-sided.
	share, sawNeg, sawPos := sampleShare(p, vars, bounds)
	cmp.FirstShare = share
	switch {
	case sawNeg && sawPos:
		cmp.Verdict = VerdictDepends
	case sawNeg:
		cmp.Verdict = VerdictFirstBetter
	case sawPos:
		cmp.Verdict = VerdictSecondBetter
	default:
		cmp.Verdict = VerdictEqual
	}
	return cmp, nil
}

func verdictFromSign(s Sign) Verdict {
	switch s {
	case SignNegative:
		return VerdictFirstBetter
	case SignZero:
		return VerdictEqual
	case SignPositive:
		return VerdictSecondBetter
	default:
		return VerdictUnknown
	}
}

func classifyRegions(regions []Region) (Verdict, float64) {
	var negSpan, posSpan, total float64
	for _, r := range regions {
		span := r.Hi - r.Lo
		total += span
		switch r.Sign {
		case SignNegative:
			negSpan += span
		case SignPositive:
			posSpan += span
		case SignZero:
			negSpan += span // ties count for "first at least as cheap"
		}
	}
	if total == 0 {
		// Degenerate point interval: classify by the single region sign.
		if len(regions) > 0 {
			v := verdictFromSign(regions[0].Sign)
			share := 0.0
			if v == VerdictFirstBetter || v == VerdictEqual {
				share = 1
			}
			return v, share
		}
		return VerdictUnknown, 0
	}
	share := negSpan / total
	switch {
	case posSpan == 0 && negSpan == total && allZero(regions):
		return VerdictEqual, 1
	case posSpan == 0:
		return VerdictFirstBetter, share
	case negSpan == 0:
		return VerdictSecondBetter, share
	default:
		return VerdictDepends, share
	}
}

func allZero(regions []Region) bool {
	for _, r := range regions {
		if r.Sign != SignZero {
			return false
		}
	}
	return true
}

// IntervalBound computes conservative lower and upper bounds on p over
// the box given by bounds, by bounding each monomial independently.
// Exact for single-term expressions; conservative otherwise.
func IntervalBound(p Poly, bounds Bounds) (lo, hi float64) {
	for _, t := range p.Terms() {
		mlo, mhi := 1.0, 1.0
		for v, e := range t.Mono {
			iv, ok := bounds[v]
			if !ok {
				return math.Inf(-1), math.Inf(1)
			}
			plo, phi := powInterval(iv, e)
			mlo, mhi = mulInterval(mlo, mhi, plo, phi)
		}
		tlo, thi := mlo*t.Coeff, mhi*t.Coeff
		if tlo > thi {
			tlo, thi = thi, tlo
		}
		lo += tlo
		hi += thi
	}
	return lo, hi
}

func powInterval(iv Interval, e int) (float64, float64) {
	if e == 0 {
		return 1, 1
	}
	if e < 0 {
		if iv.Lo <= 0 && iv.Hi >= 0 {
			return math.Inf(-1), math.Inf(1)
		}
		lo, hi := powInterval(iv, -e)
		return 1 / hi, 1 / lo
	}
	a, b := math.Pow(iv.Lo, float64(e)), math.Pow(iv.Hi, float64(e))
	if e%2 == 0 && iv.Lo < 0 && iv.Hi > 0 {
		return 0, math.Max(a, b)
	}
	if a > b {
		a, b = b, a
	}
	return a, b
}

func mulInterval(alo, ahi, blo, bhi float64) (float64, float64) {
	cands := [4]float64{alo * blo, alo * bhi, ahi * blo, ahi * bhi}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return lo, hi
}

const sampleGridPerVar = 9

func sampleShare(p Poly, vars []Var, bounds Bounds) (share float64, sawNeg, sawPos bool) {
	idx := make([]int, len(vars))
	assign := map[Var]float64{}
	var negOrZero, total int
	for {
		for i, v := range vars {
			iv := bounds[v]
			frac := float64(idx[i]) / float64(sampleGridPerVar-1)
			assign[v] = iv.Lo + frac*(iv.Hi-iv.Lo)
		}
		if val, err := p.Eval(assign); err == nil {
			total++
			switch signOf(val) {
			case SignNegative:
				sawNeg = true
				negOrZero++
			case SignPositive:
				sawPos = true
			case SignZero:
				negOrZero++
			}
		}
		// Advance the odometer.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < sampleGridPerVar {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	if total == 0 {
		return 0, false, false
	}
	return float64(negOrZero) / float64(total), sawNeg, sawPos
}

// IntegralCompare integrates P⁺ and P⁻ of P = f − g over the variable's
// bounds (univariate case), returning (∫P⁺, ∫P⁻). The paper proposes
// these integrals as one way to rank transformations whose winner
// depends on unknowns.
func IntegralCompare(f, g Poly, v Var, b Interval) (posArea, negArea float64, err error) {
	p := f.Sub(g)
	regions, err := SignRegions(p, v, b)
	if err != nil {
		return 0, 0, err
	}
	coeffs, err := p.Coeffs(v)
	if err != nil {
		return 0, 0, err
	}
	anti := make([]float64, len(coeffs)+1)
	for i, c := range coeffs {
		anti[i+1] = c / float64(i+1)
	}
	F := func(x float64) float64 { return horner(anti, x) }
	for _, r := range regions {
		area := F(r.Hi) - F(r.Lo)
		switch r.Sign {
		case SignPositive:
			posArea += area
		case SignNegative:
			negArea += -area
		}
	}
	return posArea, negArea, nil
}

// RuntimeTest describes a run-time test `P < 0` that selects the first
// of two alternatives (§3.4: "the conditions on the performance
// expressions can be used to formulate the run-time tests").
type RuntimeTest struct {
	// Condition is the polynomial whose negativity selects the first
	// alternative.
	Condition Poly
	// Thresholds are the crossover points in Var when univariate.
	Var        Var
	Thresholds []float64
}

// DeriveRuntimeTest turns a VerdictDepends comparison into a run-time
// test description.
func DeriveRuntimeTest(cmp Comparison) (RuntimeTest, bool) {
	if cmp.Verdict != VerdictDepends {
		return RuntimeTest{}, false
	}
	rt := RuntimeTest{Condition: cmp.Diff, Var: cmp.Var}
	seen := map[float64]bool{}
	for i := 1; i < len(cmp.Regions); i++ {
		th := cmp.Regions[i].Lo
		if !seen[th] {
			seen[th] = true
			rt.Thresholds = append(rt.Thresholds, th)
		}
	}
	sort.Float64s(rt.Thresholds)
	return rt, true
}
