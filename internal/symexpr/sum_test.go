package symexpr

import (
	"math/big"
	"testing"
)

func TestBernoulli(t *testing.T) {
	b := bernoulli(8)
	want := []*big.Rat{
		big.NewRat(1, 1), big.NewRat(1, 2), big.NewRat(1, 6),
		big.NewRat(0, 1), big.NewRat(-1, 30), big.NewRat(0, 1),
		big.NewRat(1, 42), big.NewRat(0, 1), big.NewRat(-1, 30),
	}
	for i, w := range want {
		if b[i].Cmp(w) != 0 {
			t.Errorf("B_%d = %v, want %v", i, b[i], w)
		}
	}
}

func TestFaulhaberSmall(t *testing.T) {
	n := Var("N")
	// F_1(N) = N(N+1)/2
	f1 := faulhaber(1, n)
	want1 := NewVar(n).Pow(2).Scale(0.5).Add(NewVar(n).Scale(0.5))
	if !f1.Equal(want1, 1e-12) {
		t.Errorf("F_1 = %v", f1)
	}
	// F_2(N) = N(N+1)(2N+1)/6
	f2 := faulhaber(2, n)
	approx(t, f2.MustEval(map[Var]float64{n: 10}), 385, 1e-6, "F_2(10)")
	// F_0(N) = N
	if !faulhaber(0, n).Equal(NewVar(n), 1e-12) {
		t.Error("F_0 != N")
	}
}

// bruteSum evaluates Σ_{k=lb}^{ub} p(k, extra) numerically.
func bruteSum(t *testing.T, p Poly, v Var, lb, ub int, extra map[Var]float64) float64 {
	t.Helper()
	total := 0.0
	for k := lb; k <= ub; k++ {
		assign := cloneAssign(extra)
		assign[v] = float64(k)
		val, err := p.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		total += val
	}
	return total
}

func TestSumOverConstantBounds(t *testing.T) {
	k := Var("k")
	cases := []struct {
		name   string
		p      Poly
		lb, ub int
	}{
		{"const", Const(3), 1, 10},
		{"linear", NewVar(k), 1, 100},
		{"quad", NewVar(k).Pow(2).Add(NewVar(k)).AddConst(1), 5, 37},
		{"cubic", NewVar(k).Pow(3).Scale(2).Sub(NewVar(k).Scale(4)), 0, 20},
		{"deg5", NewVar(k).Pow(5), 1, 12},
		{"negative-range", NewVar(k).Pow(2), -7, 7},
		{"single", NewVar(k).Pow(3), 4, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := SumOver(tc.p, k, Const(float64(tc.lb)), Const(float64(tc.ub)))
			if err != nil {
				t.Fatal(err)
			}
			got, ok := s.IsConst()
			if !ok {
				t.Fatalf("sum not constant: %v", s)
			}
			want := bruteSum(t, tc.p, k, tc.lb, tc.ub, nil)
			approx(t, got, want, 1e-6*(1+want), "sum")
		})
	}
}

func TestSumOverSymbolicBound(t *testing.T) {
	k, n := Var("k"), Var("n")
	// Σ_{k=1}^{n} k = n(n+1)/2
	s, err := SumOver(NewVar(k), k, Const(1), NewVar(n))
	if err != nil {
		t.Fatal(err)
	}
	want := NewVar(n).Pow(2).Scale(0.5).Add(NewVar(n).Scale(0.5))
	if !s.Equal(want, 1e-9) {
		t.Errorf("Σk = %v, want %v", s, want)
	}
	// Triangular nest: Σ_{k=1}^{n} (n − k) = n(n−1)/2
	body := NewVar(n).Sub(NewVar(k))
	s2, err := SumOver(body, k, Const(1), NewVar(n))
	if err != nil {
		t.Fatal(err)
	}
	for _, nv := range []float64{1, 2, 10, 55} {
		got := s2.MustEval(map[Var]float64{n: nv})
		approx(t, got, nv*(nv-1)/2, 1e-6, "triangular")
	}
}

func TestSumOverSymbolicCoefficients(t *testing.T) {
	k, n, m := Var("k"), Var("n"), Var("m")
	// Σ_{k=1}^{n} (m·k + 3) = m·n(n+1)/2 + 3n
	body := NewVar(m).Mul(NewVar(k)).AddConst(3)
	s, err := SumOver(body, k, Const(1), NewVar(n))
	if err != nil {
		t.Fatal(err)
	}
	got := s.MustEval(map[Var]float64{n: 10, m: 4})
	approx(t, got, 4*55+30, 1e-6, "symbolic coeff sum")
}

func TestSumOverErrors(t *testing.T) {
	k := Var("k")
	if _, err := SumOver(Term(1, Monomial{k: -1}), k, Const(1), Const(10)); err == nil {
		t.Error("expected error for 1/k summand")
	}
	if _, err := SumOver(NewVar(k), k, NewVar(k), Const(10)); err == nil {
		t.Error("expected error for bound containing summation var")
	}
}

func TestSumOverStep(t *testing.T) {
	k := Var("k")
	p := NewVar(k).Pow(2)
	// Σ_{k=1,3,5,...,99} k²
	s, trips, err := SumOverStep(p, k, Const(1), Const(99), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 1; i <= 99; i += 2 {
		want += float64(i * i)
	}
	got, _ := s.IsConst()
	approx(t, got, want, 1e-6, "stepped sum")
	tc, _ := trips.IsConst()
	approx(t, tc, 50, 1e-9, "trip count")
}

func TestSumOverStepSymbolic(t *testing.T) {
	k, n := Var("k"), Var("n")
	// Σ_{k=1}^{n step 4} 1 with n multiple-of-4 offset: trips = (n−1+4)/4
	s, trips, err := SumOverStep(Const(1), k, Const(1), NewVar(n), 4)
	if err != nil {
		t.Fatal(err)
	}
	// At n = 13: iterations k = 1,5,9,13 → 4
	approx(t, trips.MustEval(map[Var]float64{n: 13}), 4, 1e-9, "symbolic trips")
	approx(t, s.MustEval(map[Var]float64{n: 13}), 4, 1e-9, "symbolic sum")
}

func TestTripCount(t *testing.T) {
	if c, _ := TripCount(Const(1), Const(10), 1).IsConst(); c != 10 {
		t.Errorf("TripCount(1,10,1) = %v", c)
	}
	if c, _ := TripCount(Const(1), Const(10), 3).IsConst(); c != 4 {
		t.Errorf("TripCount(1,10,3) = %v", c) // 1,4,7,10
	}
	if c, _ := TripCount(Const(10), Const(1), 1).IsConst(); c != 0 {
		t.Errorf("TripCount empty = %v", c)
	}
	n := Var("n")
	sym := TripCount(Const(1), NewVar(n), 1)
	approx(t, sym.MustEval(map[Var]float64{n: 42}), 42, 1e-9, "symbolic trip count")
}

func TestNestedSum(t *testing.T) {
	// Σ_{i=1}^{n} Σ_{j=1}^{i} 1 = n(n+1)/2 (triangular double loop)
	i, j, n := Var("i"), Var("j"), Var("n")
	inner, err := SumOver(Const(1), j, Const(1), NewVar(i))
	if err != nil {
		t.Fatal(err)
	}
	outer, err := SumOver(inner, i, Const(1), NewVar(n))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, outer.MustEval(map[Var]float64{n: 100}), 5050, 1e-6, "nested sum")
}
