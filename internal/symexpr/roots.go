package symexpr

import (
	"fmt"
	"math"
	"sort"
)

// Roots finds the real roots of a univariate polynomial p in v within
// the closed interval [lo, hi], sorted ascending. Closed forms are used
// for degrees 1 and 2 (the paper notes closed forms exist up to degree
// 4, §3.1); higher degrees use the derivative-recursion method: the
// roots of p′ partition [lo, hi] into monotonic intervals, and a sign
// change within an interval is isolated by bisection. This is robust
// for the well-conditioned, low-degree polynomials that arise as
// performance-expression differences.
func Roots(p Poly, v Var, lo, hi float64) ([]float64, error) {
	if hi < lo {
		return nil, fmt.Errorf("symexpr: Roots: empty interval [%g, %g]", lo, hi)
	}
	coeffs, err := p.Coeffs(v)
	if err != nil {
		return nil, err
	}
	return rootsDense(coeffs, lo, hi), nil
}

// rootsDense finds real roots of Σ c[i] x^i in [lo, hi].
func rootsDense(c []float64, lo, hi float64) []float64 {
	c = trimZeros(c)
	switch len(c) {
	case 0, 1:
		return nil // zero or nonzero constant: no isolated roots reported
	case 2:
		r := -c[0] / c[1]
		if r >= lo && r <= hi {
			return []float64{r}
		}
		return nil
	case 3:
		return quadRoots(c[0], c[1], c[2], lo, hi)
	}
	// Degree ≥ 3: recurse on the derivative.
	d := make([]float64, len(c)-1)
	for i := 1; i < len(c); i++ {
		d[i-1] = c[i] * float64(i)
	}
	crit := rootsDense(d, lo, hi)
	pts := append([]float64{lo}, crit...)
	pts = append(pts, hi)
	eval := func(x float64) float64 { return horner(c, x) }
	var roots []float64
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		if b <= a {
			continue
		}
		fa, fb := eval(a), eval(b)
		if fa == 0 {
			roots = appendRoot(roots, a)
		}
		if fa*fb < 0 {
			roots = appendRoot(roots, bisect(eval, a, b, fa))
		}
	}
	if horner(c, hi) == 0 {
		roots = appendRoot(roots, hi)
	}
	sort.Float64s(roots)
	return roots
}

func trimZeros(c []float64) []float64 {
	n := len(c)
	for n > 0 && math.Abs(c[n-1]) < coeffEps {
		n--
	}
	return c[:n]
}

func horner(c []float64, x float64) float64 {
	s := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		s = s*x + c[i]
	}
	return s
}

func quadRoots(c0, c1, c2, lo, hi float64) []float64 {
	disc := c1*c1 - 4*c2*c0
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	// Numerically stable quadratic formula.
	var r1, r2 float64
	if c1 >= 0 {
		q := -(c1 + sq) / 2
		r1, r2 = q/c2, safeDiv(c0, q)
	} else {
		q := -(c1 - sq) / 2
		r1, r2 = safeDiv(c0, q), q/c2
	}
	var out []float64
	for _, r := range []float64{r1, r2} {
		if !math.IsNaN(r) && !math.IsInf(r, 0) && r >= lo && r <= hi {
			out = appendRoot(out, r)
		}
	}
	sort.Float64s(out)
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

func appendRoot(roots []float64, r float64) []float64 {
	const sameTol = 1e-9
	for _, x := range roots {
		if math.Abs(x-r) <= sameTol*math.Max(1, math.Abs(x)) {
			return roots
		}
	}
	return append(roots, r)
}

// bisect isolates a root of f in (a, b) given f(a)=fa with fa·f(b)<0.
func bisect(f func(float64) float64, a, b, fa float64) float64 {
	for i := 0; i < 200; i++ {
		m := (a + b) / 2
		if m == a || m == b {
			return m
		}
		fm := f(m)
		if fm == 0 {
			return m
		}
		if (fa < 0) == (fm < 0) {
			a, fa = m, fm
		} else {
			b = m
		}
		if b-a < 1e-13*math.Max(1, math.Abs(a)) {
			break
		}
	}
	return (a + b) / 2
}
