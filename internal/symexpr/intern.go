package symexpr

import (
	"sort"
	"strconv"
	"sync"
)

// Monomial-key interning. Poly stores terms in a map keyed by the
// canonical string form of the monomial; polynomial arithmetic in the
// aggregation hot loop recomputes those keys constantly (every
// Add/Mul/Substitute touches each term). Interning makes the
// computation allocation-free after warm-up: keys are built into a
// pooled byte buffer and resolved against a sharded intern table, so
// the string is allocated only the first time a monomial shape is
// seen, process-wide. The table grows with the number of distinct
// monomials, which is small (bounded by program unknowns × degrees).
//
// All entry points are safe for concurrent use.

type ve struct {
	v Var
	e int
}

// keyScratch is the reusable working state for one key computation.
type keyScratch struct {
	buf []byte
	ves []ve
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

const internShardCount = 16

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var internShards [internShardCount]internShard

func init() {
	for i := range internShards {
		internShards[i].m = map[string]string{}
	}
}

// intern returns the canonical string for the key bytes, allocating
// only on first sight. The read path performs no allocation: Go map
// lookups with a string(b) conversion do not copy.
func intern(b []byte) string {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	sh := &internShards[h%internShardCount]
	sh.mu.RLock()
	s, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	s, ok = sh.m[string(b)]
	if !ok {
		s = string(b)
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}

// appendVE collects the nonzero (variable, exponent) pairs of m into
// dst, sorted by variable name.
func appendVE(dst []ve, m Monomial) []ve {
	for v, e := range m {
		if e != 0 {
			dst = append(dst, ve{v, e})
		}
	}
	if len(dst) < 8 {
		// Insertion sort: monomials have a handful of variables.
		for i := 1; i < len(dst); i++ {
			for j := i; j > 0 && dst[j].v < dst[j-1].v; j-- {
				dst[j], dst[j-1] = dst[j-1], dst[j]
			}
		}
	} else {
		sort.Slice(dst, func(i, j int) bool { return dst[i].v < dst[j].v })
	}
	return dst
}

// appendKey renders sorted pairs in the canonical "v^e*w^f" form.
func appendKey(buf []byte, ves []ve) []byte {
	for i, x := range ves {
		if i > 0 {
			buf = append(buf, '*')
		}
		buf = append(buf, x.v...)
		buf = append(buf, '^')
		buf = strconv.AppendInt(buf, int64(x.e), 10)
	}
	return buf
}

// monoKey computes the interned canonical key of m.
func monoKey(m Monomial) string {
	if len(m) == 0 {
		return ""
	}
	sc := keyScratchPool.Get().(*keyScratch)
	ves := appendVE(sc.ves[:0], m)
	buf := appendKey(sc.buf[:0], ves)
	s := intern(buf)
	sc.ves, sc.buf = ves, buf
	keyScratchPool.Put(sc)
	return s
}
