package symexpr

import (
	"math"
	"sort"
)

// DropDominatedTerms removes terms whose magnitude over the bounded box
// is at most ratio times the magnitude of the largest term (the paper's
// example: over x ∈ [3, 100], 4x⁴ + 2x³ − 4x + 1/x³ simplifies to
// 4x⁴ + 2x³ − 4x, §3.1). Magnitudes are conservative interval bounds,
// so a term is only dropped when it is provably dominated.
func DropDominatedTerms(p Poly, bounds Bounds, ratio float64) Poly {
	terms := p.Terms()
	if len(terms) <= 1 {
		return p
	}
	mags := make([]float64, len(terms))
	maxMag := 0.0
	for i, t := range terms {
		lo, hi := IntervalBound(Term(t.Coeff, t.Mono), bounds)
		mags[i] = math.Max(math.Abs(lo), math.Abs(hi))
		if math.IsInf(mags[i], 0) {
			mags[i] = math.Inf(1)
		}
		maxMag = math.Max(maxMag, mags[i])
	}
	if maxMag == 0 || math.IsInf(maxMag, 1) {
		// Keep everything when the dominant term is unbounded: dropping
		// would not be provably safe.
		if !math.IsInf(maxMag, 1) {
			return p
		}
	}
	out := Zero()
	for i, t := range terms {
		if mags[i] <= ratio*maxMag && !math.IsInf(mags[i], 1) {
			continue
		}
		out = out.Add(Term(t.Coeff, t.Mono))
	}
	if out.IsZero() && !p.IsZero() {
		return p
	}
	return out
}

// VarSensitivity is the result of sensitivity analysis for one variable.
type VarSensitivity struct {
	Var Var
	// Perturbation is |p(x + δ·x_i) − p(x − δ·x_i)| at the nominal
	// point: the swing in predicted cost caused by a ±δ relative change
	// of the variable.
	Perturbation float64
	// Relative is Perturbation divided by |p(nominal)| (0 when the
	// nominal value is 0).
	Relative float64
}

// Sensitivity ranks variables by how strongly small relative
// perturbations of their nominal values move the expression (§3.4:
// run-time tests should be formulated over the most sensitive
// variables). delta is the relative perturbation (e.g. 0.05 for ±5%).
// Variables whose nominal value is 0 are perturbed by ±delta absolute.
func Sensitivity(p Poly, nominal map[Var]float64, delta float64) ([]VarSensitivity, error) {
	base, err := p.Eval(nominal)
	if err != nil {
		return nil, err
	}
	vars := p.Vars()
	out := make([]VarSensitivity, 0, len(vars))
	for _, v := range vars {
		x := nominal[v]
		step := delta * math.Abs(x)
		if step == 0 {
			step = delta
		}
		up := cloneAssign(nominal)
		up[v] = x + step
		down := cloneAssign(nominal)
		down[v] = x - step
		pu, err := p.Eval(up)
		if err != nil {
			return nil, err
		}
		pd, err := p.Eval(down)
		if err != nil {
			return nil, err
		}
		pert := math.Abs(pu - pd)
		rel := 0.0
		if base != 0 {
			rel = pert / math.Abs(base)
		}
		out = append(out, VarSensitivity{v, pert, rel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Perturbation != out[j].Perturbation {
			return out[i].Perturbation > out[j].Perturbation
		}
		return out[i].Var < out[j].Var
	})
	return out, nil
}

func cloneAssign(m map[Var]float64) map[Var]float64 {
	c := make(map[Var]float64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// TopSensitive returns the k most sensitive variables of p at the
// nominal point, the candidates for run-time tests ("usually only a few
// run-time tests can be afforded", §3.4).
func TopSensitive(p Poly, nominal map[Var]float64, delta float64, k int) ([]Var, error) {
	all, err := Sensitivity(p, nominal, delta)
	if err != nil {
		return nil, err
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]Var, 0, k)
	for _, s := range all[:k] {
		out = append(out, s.Var)
	}
	return out, nil
}
