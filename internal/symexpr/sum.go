package symexpr

import (
	"fmt"
	"math/big"
)

// maxSumDegree bounds the degree of the summand supported by SumOver.
// Performance expressions of real loop nests rarely exceed degree 4–6;
// Bernoulli numbers are tabulated well past that.
const maxSumDegree = 16

// bernoulli returns the Bernoulli numbers B_0..B_n (with B_1 = +1/2,
// the "second" convention, which makes Faulhaber's formula
//
//	Σ_{k=1}^{N} k^m = 1/(m+1) Σ_{j=0}^{m} C(m+1, j) B_j N^{m+1−j}
//
// come out directly).
func bernoulli(n int) []*big.Rat {
	b := make([]*big.Rat, n+1)
	// Compute with B_1 = −1/2 via the standard recurrence, then flip.
	for m := 0; m <= n; m++ {
		// B_m = −1/(m+1) Σ_{j=0}^{m−1} C(m+1, j) B_j, B_0 = 1.
		if m == 0 {
			b[0] = big.NewRat(1, 1)
			continue
		}
		sum := new(big.Rat)
		for j := 0; j < m; j++ {
			c := new(big.Rat).SetInt(binomial(m+1, j))
			sum.Add(sum, c.Mul(c, b[j]))
		}
		b[m] = sum.Neg(sum)
		b[m].Quo(b[m], big.NewRat(int64(m+1), 1))
	}
	if n >= 1 {
		b[1] = big.NewRat(1, 2)
	}
	return b
}

func binomial(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

// faulhaber returns the polynomial F_m(N) = Σ_{k=1}^{N} k^m expressed in
// the variable nv. F_0(N) = N.
func faulhaber(m int, nv Var) Poly {
	if m < 0 || m > maxSumDegree {
		panic(fmt.Sprintf("symexpr: faulhaber degree %d out of range", m))
	}
	b := bernoulli(m)
	out := Poly{}
	inv := new(big.Rat).SetInt64(int64(m + 1))
	for j := 0; j <= m; j++ {
		c := new(big.Rat).SetInt(binomial(m+1, j))
		c.Mul(c, b[j])
		c.Quo(c, inv)
		f, _ := c.Float64()
		out = out.addTerm(f, Monomial{nv: m + 1 - j})
	}
	return out
}

// SumOver computes Σ_{v = lb}^{ub} p symbolically, where p is a
// polynomial in v (no negative powers of v) whose coefficients may
// involve other variables, and lb, ub are polynomials not involving v.
// The result is exact for every integer lb ≤ ub when the bound
// polynomials take integer values; when ub < lb the closed form yields
// the usual "empty sum telescopes" value, which callers should guard if
// they care about empty loops.
//
// This is the engine behind the paper's loop-cost aggregation
// C(do k = lb, ub {B}) = … + Σ_k C(B(k)) (§2.4.1).
func SumOver(p Poly, v Var, lb, ub Poly) (Poly, error) {
	if !p.IsPolynomialIn(v) {
		return Poly{}, fmt.Errorf("symexpr: SumOver: summand has negative powers of %q", v)
	}
	for _, bound := range []Poly{lb, ub} {
		if bound.Degree(v) != 0 || bound.MinDegree(v) != 0 {
			return Poly{}, fmt.Errorf("symexpr: SumOver: bound involves the summation variable %q", v)
		}
	}
	deg := p.Degree(v)
	if deg > maxSumDegree {
		return Poly{}, fmt.Errorf("symexpr: SumOver: degree %d exceeds limit %d", deg, maxSumDegree)
	}
	lbm1 := lb.AddConst(-1)
	out := Poly{}
	for e := 0; e <= deg; e++ {
		coeff := p.CoeffOf(v, e)
		if coeff.IsZero() {
			continue
		}
		// Σ_{k=lb}^{ub} k^e = F_e(ub) − F_e(lb−1)
		const tmp = Var("__N")
		f := faulhaber(e, tmp)
		fub, err := f.Substitute(tmp, ub)
		if err != nil {
			return Poly{}, err
		}
		flb, err := f.Substitute(tmp, lbm1)
		if err != nil {
			return Poly{}, err
		}
		out = out.Add(coeff.Mul(fub.Sub(flb)))
	}
	return out, nil
}

// SumOverStep computes Σ_{v = lb, lb+step, …, ≤ub} p for a positive
// constant integer step. It substitutes v = lb + step·j and sums j from
// 0 to T−1 where T = floor((ub−lb)/step)+1. Because floor is not
// polynomial, T must be representable: either (ub−lb) is a constant, or
// the caller accepts the rational approximation (ub−lb+step)/step, which
// is exact whenever step divides (ub−lb). The returned trip-count
// polynomial is also given back for reuse.
func SumOverStep(p Poly, v Var, lb, ub Poly, step int) (sum, trips Poly, err error) {
	if step <= 0 {
		return Poly{}, Poly{}, fmt.Errorf("symexpr: SumOverStep: step %d must be positive", step)
	}
	if step == 1 {
		s, err := SumOver(p, v, lb, ub)
		if err != nil {
			return Poly{}, Poly{}, err
		}
		return s, ub.Sub(lb).AddConst(1), nil
	}
	span := ub.Sub(lb)
	if c, ok := span.IsConst(); ok {
		t := int64(c)/int64(step) + 1
		if c < 0 {
			t = 0
		}
		trips = Const(float64(t))
	} else {
		trips = span.AddConst(float64(step)).Scale(1 / float64(step))
	}
	// v = lb + step*j
	j := Var("__j")
	vsub := lb.Add(NewVar(j).Scale(float64(step)))
	pj, err := p.Substitute(v, vsub)
	if err != nil {
		return Poly{}, Poly{}, err
	}
	s, err := SumOver(pj, j, Const(0), trips.AddConst(-1))
	if err != nil {
		return Poly{}, Poly{}, err
	}
	return s, trips, nil
}

// TripCount returns the symbolic iteration count of a loop
// do v = lb, ub, step (step a positive integer constant):
// floor((ub−lb)/step)+1, using the rational form when bounds are
// symbolic.
func TripCount(lb, ub Poly, step int) Poly {
	if step <= 0 {
		step = 1
	}
	span := ub.Sub(lb)
	if c, ok := span.IsConst(); ok {
		if c < 0 {
			return Zero()
		}
		return Const(float64(int64(c)/int64(step) + 1))
	}
	return span.AddConst(float64(step)).Scale(1 / float64(step))
}
