package symexpr

// RenameVars returns p with every variable renamed through m;
// variables absent from m are kept. The rename is simultaneous — each
// new monomial is built from the original, so cycles such as
// {a→b, b→a} behave correctly and never collide mid-rename. Terms
// whose monomials become equal under a non-injective m merge by
// coefficient addition.
//
// The incremental re-pricing layer uses this to relocate cached nest
// costs: fresh unknowns ($o3, $p4, …) are numbered by the order the
// estimator encountered them, so splicing a cached nest into a new
// traversal shifts its fresh-variable indices while all other
// variables stay fixed.
func RenameVars(p Poly, m map[Var]Var) Poly {
	if len(p.terms) == 0 || len(m) == 0 {
		return p.clone()
	}
	out := Poly{terms: make(map[string]polyTerm, len(p.terms))}
	for k, t := range p.terms {
		touched := false
		for v := range t.mono {
			if nv, ok := m[v]; ok && nv != v {
				touched = true
				break
			}
		}
		if !touched {
			// Monomial unchanged; share it (immutable) under its key.
			addInto(out.terms, k, t.coeff, t.mono)
			continue
		}
		nm := make(Monomial, len(t.mono))
		for v, e := range t.mono {
			if e == 0 {
				continue
			}
			nv := v
			if r, ok := m[v]; ok {
				nv = r
			}
			nm[nv] += e
		}
		for v, e := range nm {
			if e == 0 {
				delete(nm, v)
			}
		}
		addInto(out.terms, nm.key(), t.coeff, nm)
	}
	return out
}
