package symexpr

import "testing"

func TestRenameVars(t *testing.T) {
	// 3·a²b + 2·b + 5
	p := Term(3, Monomial{"a": 2, "b": 1}).
		Add(Term(2, Monomial{"b": 1})).
		AddConst(5)

	got := RenameVars(p, map[Var]Var{"a": "x", "b": "y"})
	want := Term(3, Monomial{"x": 2, "y": 1}).
		Add(Term(2, Monomial{"y": 1})).
		AddConst(5)
	if got.String() != want.String() {
		t.Errorf("rename: got %s, want %s", got, want)
	}

	// Simultaneous swap must not collide mid-rename.
	swapped := RenameVars(p, map[Var]Var{"a": "b", "b": "a"})
	wantSwap := Term(3, Monomial{"b": 2, "a": 1}).
		Add(Term(2, Monomial{"a": 1})).
		AddConst(5)
	if swapped.String() != wantSwap.String() {
		t.Errorf("swap: got %s, want %s", swapped, wantSwap)
	}

	// Non-injective renames merge terms.
	q := Term(1, Monomial{"a": 1}).Add(Term(2, Monomial{"b": 1}))
	merged := RenameVars(q, map[Var]Var{"a": "c", "b": "c"})
	wantMerge := Term(3, Monomial{"c": 1})
	if merged.String() != wantMerge.String() {
		t.Errorf("merge: got %s, want %s", merged, wantMerge)
	}

	// Identity and empty maps are no-ops.
	if got := RenameVars(p, nil); got.String() != p.String() {
		t.Errorf("nil map: got %s, want %s", got, p)
	}
	if got := RenameVars(p, map[Var]Var{"zz": "q"}); got.String() != p.String() {
		t.Errorf("irrelevant map: got %s, want %s", got, p)
	}
	if got := RenameVars(Zero(), map[Var]Var{"a": "b"}); !got.IsZero() {
		t.Errorf("zero poly: got %s", got)
	}
}
