// Package symexpr implements the symbolic performance expressions of
// Wang (PLDI 1994), §2.4 and §3: multivariate Laurent polynomials over
// program unknowns (loop bounds, branch probabilities, problem sizes),
// with closed-form summation, root finding, sign-region analysis,
// symbolic comparison, term dropping, and sensitivity analysis.
//
// A performance expression is a Poly. Its variables are the unknowns the
// compiler could not resolve; estimating them is delayed as long as
// possible, and many optimization decisions can be made without ever
// guessing them (see Compare and SignRegions).
package symexpr

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Var names a symbolic unknown, e.g. "n", "k", or "p_true".
type Var string

// Monomial is a product of variables raised to integer powers.
// Negative exponents are permitted (Laurent terms such as 1/x^3,
// which §3.1 of the paper drops when dominated).
type Monomial map[Var]int

// key returns the canonical (interned) string form usable as a map
// key; see intern.go.
func (m Monomial) key() string { return monoKey(m) }

func (m Monomial) clone() Monomial {
	c := make(Monomial, len(m))
	for v, e := range m {
		if e != 0 {
			c[v] = e
		}
	}
	return c
}

// degree returns the exponent of v in m.
func (m Monomial) degree(v Var) int { return m[v] }

// totalDegree returns the sum of positive exponents minus negative ones.
func (m Monomial) totalDegree() int {
	d := 0
	for _, e := range m {
		d += e
	}
	return d
}

// Poly is a multivariate Laurent polynomial with float64 coefficients.
// The zero value is the zero polynomial. Poly values are immutable:
// all operations return new polynomials.
type Poly struct {
	// terms maps a monomial key to its term. Coefficients are never
	// stored as exact zeros.
	terms map[string]polyTerm
}

type polyTerm struct {
	coeff float64
	mono  Monomial
}

// Zero returns the zero polynomial.
func Zero() Poly { return Poly{} }

// Const returns the constant polynomial c.
func Const(c float64) Poly {
	p := Poly{}
	p = p.addTerm(c, Monomial{})
	return p
}

// NewVar returns the polynomial consisting of the single variable v.
func NewVar(v Var) Poly {
	p := Poly{}
	return p.addTerm(1, Monomial{v: 1})
}

// Term returns coeff * Π v_i^e_i.
func Term(coeff float64, mono Monomial) Poly {
	p := Poly{}
	return p.addTerm(coeff, mono)
}

const coeffEps = 1e-12

// addTerm returns p with coeff*mono added, cloning p (and the caller's
// monomial, which may be reused) — the safe entry point behind Const,
// NewVar, Term and the summation code. The arithmetic hot paths below
// instead clone once and merge in place via addInto.
func (p Poly) addTerm(coeff float64, mono Monomial) Poly {
	out := p.clone()
	if math.Abs(coeff) < coeffEps {
		return out
	}
	if out.terms == nil {
		out.terms = make(map[string]polyTerm, 1)
	}
	m := mono.clone()
	addInto(out.terms, m.key(), coeff, m)
	return out
}

// addInto accumulates coeff·mono (whose canonical key is key) into a
// terms map owned by the caller. mono is retained when the key is new,
// so it must not be mutated afterwards — the package-wide invariant
// that Monomial maps inside polyTerms are immutable.
func addInto(terms map[string]polyTerm, key string, coeff float64, mono Monomial) {
	if math.Abs(coeff) < coeffEps {
		return
	}
	if t, ok := terms[key]; ok {
		c := t.coeff + coeff
		if math.Abs(c) < coeffEps {
			delete(terms, key)
		} else {
			terms[key] = polyTerm{c, t.mono}
		}
		return
	}
	terms[key] = polyTerm{coeff, mono}
}

func (p Poly) clone() Poly {
	return p.cloneExtra(0)
}

// cloneExtra clones p with capacity for extra additional terms. The
// monomial maps are shared: they are immutable once stored.
func (p Poly) cloneExtra(extra int) Poly {
	if p.terms == nil && extra == 0 {
		return Poly{}
	}
	c := Poly{terms: make(map[string]polyTerm, len(p.terms)+extra)}
	for k, t := range p.terms {
		c.terms[k] = t
	}
	return c
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// IsConst reports whether p has no variables; if so it returns the value.
func (p Poly) IsConst() (float64, bool) {
	switch len(p.terms) {
	case 0:
		return 0, true
	case 1:
		for k, t := range p.terms {
			if k == "" {
				return t.coeff, true
			}
		}
	}
	return 0, false
}

// ConstPart returns the coefficient of the constant monomial.
func (p Poly) ConstPart() float64 {
	if t, ok := p.terms[""]; ok {
		return t.coeff
	}
	return 0
}

// NumTerms returns the number of (nonzero) terms.
func (p Poly) NumTerms() int { return len(p.terms) }

// Add returns p + q. The result shares monomial maps with its inputs
// (they are immutable); only the term table is fresh.
func (p Poly) Add(q Poly) Poly {
	if len(q.terms) == 0 {
		return p.clone()
	}
	out := p.cloneExtra(len(q.terms))
	for k, t := range q.terms {
		addInto(out.terms, k, t.coeff, t.mono)
	}
	return out
}

// Sub returns p − q.
func (p Poly) Sub(q Poly) Poly {
	if len(q.terms) == 0 {
		return p.clone()
	}
	out := p.cloneExtra(len(q.terms))
	for k, t := range q.terms {
		addInto(out.terms, k, -t.coeff, t.mono)
	}
	return out
}

// Scale returns c·p. Scaling never changes monomials, so keys are
// copied verbatim.
func (p Poly) Scale(c float64) Poly {
	if len(p.terms) == 0 || math.Abs(c) < coeffEps {
		return Poly{}
	}
	out := Poly{terms: make(map[string]polyTerm, len(p.terms))}
	for k, t := range p.terms {
		if sc := c * t.coeff; math.Abs(sc) >= coeffEps {
			out.terms[k] = polyTerm{sc, t.mono}
		}
	}
	return out
}

// Neg returns −p.
func (p Poly) Neg() Poly { return p.Scale(-1) }

// AddConst returns p + c.
func (p Poly) AddConst(c float64) Poly {
	out := p.cloneExtra(1)
	addInto(out.terms, "", c, Monomial{})
	return out
}

// Mul returns p·q.
func (p Poly) Mul(q Poly) Poly {
	if len(p.terms) == 0 || len(q.terms) == 0 {
		return Poly{}
	}
	out := Poly{terms: make(map[string]polyTerm, len(p.terms)*len(q.terms))}
	sc := keyScratchPool.Get().(*keyScratch)
	for _, a := range p.terms {
		for kb, b := range q.terms {
			coeff := a.coeff * b.coeff
			if math.Abs(coeff) < coeffEps {
				continue
			}
			if len(a.mono) == 0 {
				addInto(out.terms, kb, coeff, b.mono)
				continue
			}
			// Merge the two monomials into scratch, key the result,
			// and only materialize a Monomial map when the term is new.
			ves := appendVE(sc.ves[:0], a.mono)
			for v, e := range b.mono {
				if e == 0 {
					continue
				}
				found := false
				for i := range ves {
					if ves[i].v == v {
						ves[i].e += e
						found = true
						break
					}
				}
				if !found {
					ves = append(ves, ve{v, e})
				}
			}
			n := 0
			for _, x := range ves {
				if x.e != 0 {
					ves[n] = x
					n++
				}
			}
			ves = ves[:n]
			// Re-sort: merging may have appended b's vars out of order.
			for i := 1; i < len(ves); i++ {
				for j := i; j > 0 && ves[j].v < ves[j-1].v; j-- {
					ves[j], ves[j-1] = ves[j-1], ves[j]
				}
			}
			sc.ves = ves
			buf := appendKey(sc.buf[:0], ves)
			sc.buf = buf
			key := intern(buf)
			if t, ok := out.terms[key]; ok {
				c := t.coeff + coeff
				if math.Abs(c) < coeffEps {
					delete(out.terms, key)
				} else {
					out.terms[key] = polyTerm{c, t.mono}
				}
				continue
			}
			m := make(Monomial, len(ves))
			for _, x := range ves {
				m[x.v] = x.e
			}
			out.terms[key] = polyTerm{coeff, m}
		}
	}
	keyScratchPool.Put(sc)
	return out
}

// MulVar returns p · v^exp.
func (p Poly) MulVar(v Var, exp int) Poly {
	if exp == 0 {
		return p.clone()
	}
	out := Poly{terms: make(map[string]polyTerm, len(p.terms))}
	for _, t := range p.terms {
		m := t.mono.clone()
		m[v] += exp
		if m[v] == 0 {
			delete(m, v)
		}
		addInto(out.terms, m.key(), t.coeff, m)
	}
	return out
}

// Pow returns p^n for n ≥ 0.
func (p Poly) Pow(n int) Poly {
	if n < 0 {
		panic("symexpr: Pow with negative exponent")
	}
	out := Const(1)
	base := p
	for n > 0 {
		if n&1 == 1 {
			out = out.Mul(base)
		}
		base = base.Mul(base)
		n >>= 1
	}
	return out
}

// Vars returns the variables appearing in p, sorted.
func (p Poly) Vars() []Var {
	seen := map[Var]bool{}
	for _, t := range p.terms {
		for v, e := range t.mono {
			if e != 0 {
				seen[v] = true
			}
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the highest exponent of v in p (0 if v absent),
// considering only positive exponents. MinDegree gives the most
// negative exponent.
func (p Poly) Degree(v Var) int {
	d := 0
	for _, t := range p.terms {
		if e := t.mono.degree(v); e > d {
			d = e
		}
	}
	return d
}

// MinDegree returns the most negative exponent of v in p (0 if none).
func (p Poly) MinDegree(v Var) int {
	d := 0
	for _, t := range p.terms {
		if e := t.mono.degree(v); e < d {
			d = e
		}
	}
	return d
}

// IsPolynomialIn reports whether no term has a negative exponent of v.
func (p Poly) IsPolynomialIn(v Var) bool { return p.MinDegree(v) == 0 }

// Eval evaluates p with the given variable assignment. Variables absent
// from the assignment cause an error.
func (p Poly) Eval(assign map[Var]float64) (float64, error) {
	sum := 0.0
	for _, t := range p.terms {
		val := t.coeff
		for v, e := range t.mono {
			x, ok := assign[v]
			if !ok {
				return 0, fmt.Errorf("symexpr: unbound variable %q", v)
			}
			if e < 0 && x == 0 {
				return 0, fmt.Errorf("symexpr: division by zero evaluating %q^%d", v, e)
			}
			val *= math.Pow(x, float64(e))
		}
		sum += val
	}
	return sum, nil
}

// MustEval is Eval that panics on error; for tests and internal use on
// fully-bound expressions.
func (p Poly) MustEval(assign map[Var]float64) float64 {
	v, err := p.Eval(assign)
	if err != nil {
		panic(err)
	}
	return v
}

// Substitute replaces v by the polynomial q in p. All exponents of v
// must be non-negative unless q is a nonzero constant.
func (p Poly) Substitute(v Var, q Poly) (Poly, error) {
	if c, ok := q.IsConst(); ok {
		return p.substConst(v, c)
	}
	out := Poly{}
	for _, t := range p.terms {
		e := t.mono.degree(v)
		if e < 0 {
			return Poly{}, fmt.Errorf("symexpr: cannot substitute polynomial into negative power %s^%d", v, e)
		}
		rest := t.mono.clone()
		delete(rest, v)
		piece := Term(t.coeff, rest)
		if e > 0 {
			piece = piece.Mul(q.Pow(e))
		}
		out = out.Add(piece)
	}
	return out, nil
}

func (p Poly) substConst(v Var, c float64) (Poly, error) {
	out := Poly{terms: make(map[string]polyTerm, len(p.terms))}
	for k, t := range p.terms {
		e := t.mono.degree(v)
		if e < 0 && c == 0 {
			return Poly{}, fmt.Errorf("symexpr: substituting 0 into negative power of %s", v)
		}
		if e == 0 {
			addInto(out.terms, k, t.coeff, t.mono)
			continue
		}
		rest := t.mono.clone()
		delete(rest, v)
		addInto(out.terms, rest.key(), t.coeff*math.Pow(c, float64(e)), rest)
	}
	return out, nil
}

// MustSubstitute is Substitute that panics on error.
func (p Poly) MustSubstitute(v Var, q Poly) Poly {
	r, err := p.Substitute(v, q)
	if err != nil {
		panic(err)
	}
	return r
}

// Coeffs returns, for a polynomial that is univariate in v (all other
// variables must be absent), the dense coefficient slice c[0..deg] such
// that p = Σ c[i]·v^i. It errors if p has other variables or negative
// powers of v.
func (p Poly) Coeffs(v Var) ([]float64, error) {
	deg := p.Degree(v)
	out := make([]float64, deg+1)
	for _, t := range p.terms {
		e := 0
		for tv, te := range t.mono {
			if tv == v {
				e = te
				continue
			}
			if te != 0 {
				return nil, fmt.Errorf("symexpr: polynomial is not univariate in %q (contains %q)", v, tv)
			}
		}
		if e < 0 {
			return nil, fmt.Errorf("symexpr: negative power %s^%d", v, e)
		}
		out[e] += t.coeff
	}
	return out, nil
}

// CoeffOf returns the sub-polynomial multiplying v^exp.
func (p Poly) CoeffOf(v Var, exp int) Poly {
	out := Poly{terms: map[string]polyTerm{}}
	for _, t := range p.terms {
		if t.mono.degree(v) != exp {
			continue
		}
		rest := t.mono.clone()
		delete(rest, v)
		addInto(out.terms, rest.key(), t.coeff, rest)
	}
	return out
}

// Derivative returns ∂p/∂v.
func (p Poly) Derivative(v Var) Poly {
	out := Poly{terms: map[string]polyTerm{}}
	for _, t := range p.terms {
		e := t.mono.degree(v)
		if e == 0 {
			continue
		}
		m := t.mono.clone()
		m[v] = e - 1
		if m[v] == 0 {
			delete(m, v)
		}
		addInto(out.terms, m.key(), t.coeff*float64(e), m)
	}
	return out
}

// Equal reports whether p and q agree within tol on every coefficient.
func (p Poly) Equal(q Poly, tol float64) bool {
	d := p.Sub(q)
	for _, t := range d.terms {
		if math.Abs(t.coeff) > tol {
			return false
		}
	}
	return true
}

// String renders p in a stable, human-readable form, e.g.
// "3n^2 + 2n·k − 4 + 1/k".
func (p Poly) String() string {
	if len(p.terms) == 0 {
		return "0"
	}
	type st struct {
		key  string
		td   int
		term polyTerm
	}
	list := make([]st, 0, len(p.terms))
	for k, t := range p.terms {
		list = append(list, st{k, t.mono.totalDegree(), t})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].td != list[j].td {
			return list[i].td > list[j].td
		}
		return list[i].key < list[j].key
	})
	var b strings.Builder
	for i, s := range list {
		c := s.term.coeff
		if i == 0 {
			if c < 0 {
				b.WriteString("-")
				c = -c
			}
		} else {
			if c < 0 {
				b.WriteString(" - ")
				c = -c
			} else {
				b.WriteString(" + ")
			}
		}
		monoStr := monoString(s.term.mono)
		switch {
		case monoStr == "":
			fmt.Fprintf(&b, "%s", fmtCoeff(c))
		case math.Abs(c-1) < coeffEps:
			b.WriteString(monoStr)
		default:
			fmt.Fprintf(&b, "%s·%s", fmtCoeff(c), monoStr)
		}
	}
	return b.String()
}

func fmtCoeff(c float64) string {
	if c == math.Trunc(c) && math.Abs(c) < 1e15 {
		return fmt.Sprintf("%d", int64(c))
	}
	return fmt.Sprintf("%g", c)
}

func monoString(m Monomial) string {
	if len(m) == 0 {
		return ""
	}
	type ve struct {
		v Var
		e int
	}
	list := make([]ve, 0, len(m))
	for v, e := range m {
		if e != 0 {
			list = append(list, ve{v, e})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v < list[j].v })
	parts := make([]string, 0, len(list))
	for _, x := range list {
		switch {
		case x.e == 1:
			parts = append(parts, string(x.v))
		case x.e > 1:
			parts = append(parts, fmt.Sprintf("%s^%d", x.v, x.e))
		default:
			parts = append(parts, fmt.Sprintf("%s^(%d)", x.v, x.e))
		}
	}
	return strings.Join(parts, "·")
}

// Terms returns the terms of p as (coefficient, monomial) pairs in the
// stable order used by String.
func (p Poly) Terms() []struct {
	Coeff float64
	Mono  Monomial
} {
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Coeff float64
		Mono  Monomial
	}, 0, len(keys))
	for _, k := range keys {
		t := p.terms[k]
		out = append(out, struct {
			Coeff float64
			Mono  Monomial
		}{t.coeff, t.mono.clone()})
	}
	return out
}
