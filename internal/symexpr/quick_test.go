package symexpr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPoly builds a random polynomial in up to three variables with
// small integer coefficients and exponents, suitable for algebraic
// property tests.
func randPoly(r *rand.Rand) Poly {
	vars := []Var{"x", "y", "z"}
	p := Zero()
	nTerms := 1 + r.Intn(5)
	for i := 0; i < nTerms; i++ {
		coeff := float64(r.Intn(21) - 10)
		m := Monomial{}
		for _, v := range vars {
			if r.Intn(2) == 0 {
				m[v] = r.Intn(4)
			}
		}
		p = p.Add(Term(coeff, m))
	}
	return p
}

func randAssign(r *rand.Rand) map[Var]float64 {
	return map[Var]float64{
		"x": float64(r.Intn(9)-4) + 0.5,
		"y": float64(r.Intn(9)-4) + 0.5,
		"z": float64(r.Intn(9)-4) + 0.5,
	}
}

func evalOK(t *testing.T, p Poly, a map[Var]float64) float64 {
	t.Helper()
	v, err := p.Eval(a)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randPoly(r), randPoly(r)
		return p.Add(q).Equal(q.Add(p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulCommutesAndDistributes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := randPoly(r), randPoly(r), randPoly(r)
		if !p.Mul(q).Equal(q.Mul(p), 1e-6) {
			return false
		}
		lhs := p.Mul(q.Add(s))
		rhs := p.Mul(q).Add(p.Mul(s))
		return lhs.Equal(rhs, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalHomomorphism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randPoly(r), randPoly(r)
		a := randAssign(r)
		sum := evalOK(t, p.Add(q), a)
		if math.Abs(sum-(evalOK(t, p, a)+evalOK(t, q, a))) > 1e-6*(1+math.Abs(sum)) {
			return false
		}
		prod := evalOK(t, p.Mul(q), a)
		return math.Abs(prod-evalOK(t, p, a)*evalOK(t, q, a)) <= 1e-6*(1+math.Abs(prod))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubstituteConsistentWithEval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r)
		a := randAssign(r)
		// Substituting x = const then evaluating the rest equals full eval.
		sub, err := p.Substitute("x", Const(a["x"]))
		if err != nil {
			return false
		}
		got := evalOK(t, sub, a)
		want := evalOK(t, p, a)
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSumOverMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := Var("k")
		// Random univariate polynomial in k, degree ≤ 4.
		p := Zero()
		for e := 0; e <= r.Intn(5); e++ {
			p = p.Add(Term(float64(r.Intn(11)-5), Monomial{k: e}))
		}
		lb := r.Intn(10) - 5
		ub := lb + r.Intn(30)
		s, err := SumOver(p, k, Const(float64(lb)), Const(float64(ub)))
		if err != nil {
			return false
		}
		got, ok := s.IsConst()
		if !ok {
			return false
		}
		want := 0.0
		for i := lb; i <= ub; i++ {
			want += p.MustEval(map[Var]float64{k: float64(i)})
		}
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickRootsAreRoots(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := Var("n")
		// Build from known roots so we can verify recovery.
		p := Const(1)
		nRoots := 1 + r.Intn(4)
		for i := 0; i < nRoots; i++ {
			root := float64(r.Intn(41) - 20)
			p = p.Mul(NewVar(n).AddConst(-root))
		}
		roots, err := Roots(p, n, -25, 25)
		if err != nil {
			return false
		}
		for _, root := range roots {
			v := p.MustEval(map[Var]float64{n: root})
			// Residual should be tiny relative to the polynomial scale.
			if math.Abs(v) > 1e-4*(1+math.Abs(root))*math.Pow(25, float64(nRoots-1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSignRegionsCover(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := Var("n")
		p := Zero()
		for e := 0; e <= 1+r.Intn(4); e++ {
			p = p.Add(Term(float64(r.Intn(11)-5), Monomial{n: e}))
		}
		regions, err := SignRegions(p, n, Interval{-10, 10})
		if err != nil {
			return false
		}
		// Regions must tile [-10, 10] in order.
		if len(regions) == 0 {
			return false
		}
		if regions[0].Lo != -10 || regions[len(regions)-1].Hi != 10 {
			return false
		}
		for i := 1; i < len(regions); i++ {
			if regions[i].Lo != regions[i-1].Hi {
				return false
			}
		}
		// Each claimed-sign region must match evaluation at its midpoint.
		for _, reg := range regions {
			mid := (reg.Lo + reg.Hi) / 2
			v := p.MustEval(map[Var]float64{n: mid})
			s := signOf(v)
			if reg.Sign != s && reg.Sign != SignZero && s != SignZero {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntervalBoundIsSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r)
		b := Bounds{"x": {0.5, 4}, "y": {1, 3}, "z": {0.25, 2}}
		lo, hi := IntervalBound(p, b)
		// Sample: every sampled value must lie within [lo, hi].
		for i := 0; i < 20; i++ {
			a := map[Var]float64{
				"x": 0.5 + r.Float64()*3.5,
				"y": 1 + r.Float64()*2,
				"z": 0.25 + r.Float64()*1.75,
			}
			v := p.MustEval(a)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
