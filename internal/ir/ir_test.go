package ir

import (
	"sort"
	"strings"
	"testing"
)

func TestOpMetadata(t *testing.T) {
	if !OpIAdd.Commutative() || OpISub.Commutative() {
		t.Error("commutativity wrong for iadd/isub")
	}
	if OpFMA.NumSrcs() != 3 {
		t.Errorf("fma srcs = %d", OpFMA.NumSrcs())
	}
	if !OpFLoad.IsLoad() || OpFLoad.IsStore() {
		t.Error("fload classification")
	}
	if !OpFStore.IsStore() || !OpFStore.IsMem() {
		t.Error("fstore classification")
	}
	if !OpBranch.IsBranch() || OpFAdd.IsBranch() {
		t.Error("branch classification")
	}
	if OpFAdd.Class() != ClassFloat || OpIAdd.Class() != ClassInt {
		t.Error("class wrong")
	}
	if OpIStore.HasDst() {
		t.Error("istore should not define a register")
	}
}

func TestAllOpsHaveNames(t *testing.T) {
	seen := map[string]Op{}
	for _, op := range AllOps() {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("duplicate mnemonic %q for %v and %v", name, prev, op)
		}
		seen[name] = op
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpFLoad, Dst: 3, Addr: "a(i,j)", Base: "a"}
	s := in.String()
	if !strings.Contains(s, "lfd") && !strings.Contains(s, "fload") {
		t.Errorf("String() = %q", s)
	}
	if !strings.Contains(s, "a(i,j)") {
		t.Errorf("missing addr in %q", s)
	}
}

// buildDaxpyBlock lowers y(i) = y(i) + a*x(i) by hand:
//
//	r0 = fload x(i); r1 = fload y(i); r2 = fload a
//	r3 = fma r0, r2, r1; fstore r3 -> y(i)
func buildDaxpyBlock() *Block {
	b := &Block{}
	b.Append(Instr{Op: OpFLoad, Dst: 0, Addr: "x(i)", Base: "x"})
	b.Append(Instr{Op: OpFLoad, Dst: 1, Addr: "y(i)", Base: "y"})
	b.Append(Instr{Op: OpFLoad, Dst: 2, Addr: "a", Base: "a"})
	b.Append(Instr{Op: OpFMA, Dst: 3, Srcs: []Reg{0, 2, 1}})
	b.Append(Instr{Op: OpFStore, Srcs: []Reg{3}, Addr: "y(i)", Base: "y"})
	return b
}

func TestDepsRegisterRAW(t *testing.T) {
	b := buildDaxpyBlock()
	deps := b.Deps(false)
	// FMA (index 3) depends on all three loads.
	if len(deps[3]) != 3 {
		t.Fatalf("fma deps = %v", deps[3])
	}
	// Store depends on FMA (reg) and the load of y(i) (WAR on address).
	got := map[int]bool{}
	for _, d := range deps[4] {
		got[d] = true
	}
	if !got[3] {
		t.Errorf("store missing RAW dep on fma: %v", deps[4])
	}
	if !got[1] {
		t.Errorf("store missing WAR dep on load y(i): %v", deps[4])
	}
}

func TestDepsMemoryRAWSameAddr(t *testing.T) {
	b := &Block{}
	b.Append(Instr{Op: OpFStore, Srcs: []Reg{0}, Addr: "s", Base: "s"})
	b.Append(Instr{Op: OpFLoad, Dst: 1, Addr: "s", Base: "s"})
	deps := b.Deps(false)
	if len(deps[1]) != 1 || deps[1][0] != 0 {
		t.Errorf("load-after-store deps = %v", deps[1])
	}
}

func TestDepsDistinctSubscriptsIndependent(t *testing.T) {
	b := &Block{}
	b.Append(Instr{Op: OpFStore, Srcs: []Reg{0}, Addr: "a(i)", Base: "a"})
	b.Append(Instr{Op: OpFLoad, Dst: 1, Addr: "a(i+1)", Base: "a"})
	if deps := b.Deps(false); len(deps[1]) != 0 {
		t.Errorf("distinct subscripts should be independent: %v", deps[1])
	}
	// Conservative mode orders them.
	if deps := b.Deps(true); len(deps[1]) != 1 {
		t.Errorf("mayAlias should order them: %v", deps[1])
	}
}

func TestDepsWAW(t *testing.T) {
	b := &Block{}
	b.Append(Instr{Op: OpFStore, Srcs: []Reg{0}, Addr: "s", Base: "s"})
	b.Append(Instr{Op: OpFStore, Srcs: []Reg{1}, Addr: "s", Base: "s"})
	deps := b.Deps(false)
	if len(deps[1]) != 1 || deps[1][0] != 0 {
		t.Errorf("WAW deps = %v", deps[1])
	}
}

func TestCriticalPath(t *testing.T) {
	b := buildDaxpyBlock()
	// load -> fma -> store = 3
	if cp := b.CriticalPathLen(false); cp != 3 {
		t.Errorf("critical path = %d, want 3", cp)
	}
	// Independent ops: path 1.
	b2 := &Block{}
	for i := 0; i < 5; i++ {
		b2.Append(Instr{Op: OpFAdd, Dst: Reg(2 * i), Srcs: []Reg{Reg(2*i + 100), Reg(2*i + 200)}})
	}
	if cp := b2.CriticalPathLen(false); cp != 1 {
		t.Errorf("independent critical path = %d", cp)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := buildDaxpyBlock()
	c := b.Clone()
	c.Instrs[3].Srcs[0] = 99
	c.Instrs[0].Addr = "z(i)"
	if b.Instrs[3].Srcs[0] == 99 || b.Instrs[0].Addr == "z(i)" {
		t.Error("Clone shares state with original")
	}
}

func TestCountsAndMaxReg(t *testing.T) {
	b := buildDaxpyBlock()
	c := b.Counts()
	if c[OpFLoad] != 3 || c[OpFMA] != 1 || c[OpFStore] != 1 {
		t.Errorf("counts = %v", c)
	}
	if b.MaxReg() != 3 {
		t.Errorf("MaxReg = %d", b.MaxReg())
	}
	if (&Block{}).MaxReg() != NoReg {
		t.Error("empty MaxReg should be NoReg")
	}
}

func TestBlockString(t *testing.T) {
	b := buildDaxpyBlock()
	b.Label = "daxpy"
	s := b.String()
	if !strings.Contains(s, "daxpy:") || !strings.Contains(s, "fma") {
		t.Errorf("block string: %q", s)
	}
}

func TestParseOp(t *testing.T) {
	for _, op := range AllOps() {
		got, ok := ParseOp(op.String())
		if !ok || got != op {
			t.Errorf("ParseOp(%q) = %v, %v; want %v, true", op.String(), got, ok, op)
		}
	}
	if _, ok := ParseOp("warp"); ok {
		t.Error("ParseOp accepted an unknown mnemonic")
	}
	if _, ok := ParseOp(""); ok {
		t.Error("ParseOp accepted the empty string")
	}
}

// Regression: under conservative aliasing, a load must depend on the
// last write to its *base* even when its exact address also has an
// earlier writer. The old rule took the exact-address RAW dep and
// skipped the base check, so the intervening possibly-aliasing store
// could reorder around the load — which made the dependence relation
// differ between equivalent presentations of the same block (found by
// the oracle's topological-permutation invariant, fuzz seed -50).
func TestDepsMayAliasStoreBetweenWriteAndLoad(t *testing.T) {
	b := &Block{}
	b.Append(Instr{Op: OpFStore, Srcs: []Reg{0}, Addr: "c(j,i)", Base: "c"})
	b.Append(Instr{Op: OpIStore, Srcs: []Reg{1}, Addr: "c(i)", Base: "c"})
	b.Append(Instr{Op: OpFLoad, Dst: 2, Addr: "c(j,i)", Base: "c"})

	// Exact mode: only the same-address RAW dep.
	if deps := b.Deps(false); len(deps[2]) != 1 || deps[2][0] != 0 {
		t.Errorf("exact-mode load deps = %v, want [0]", deps[2])
	}
	// Conservative mode: the store to c(i) may alias c(j,i), so the
	// load depends on both writes.
	deps := b.Deps(true)
	got := append([]int(nil), deps[2]...)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("mayAlias load deps = %v, want [0 1]", deps[2])
	}
}

// ParseOp must reject everything that is not a mnemonic exactly as
// Op.String spells it: the mnemonics are machine-description keys, so
// near-misses are description bugs to surface, not input to repair.
func TestParseOpRejectsTable(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown mnemonic", "warp"},
		{"empty string", ""},
		{"the invalid sentinel", "invalid"},
		{"wrong case", "FADD"},
		{"leading space", " fadd"},
		{"trailing space", "fadd "},
		{"prefix of a mnemonic", "fad"},
		{"mnemonic plus suffix", "fadd2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if op, ok := ParseOp(tc.in); ok {
				t.Errorf("ParseOp(%q) = %v, true; want rejection", tc.in, op)
			}
		})
	}
}
