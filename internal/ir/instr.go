package ir

import (
	"fmt"
	"strings"
	"sync"
)

// Reg is a virtual register. Lowering produces SSA-like code: every
// instruction that defines a value defines a fresh register, so the
// only register dependences are read-after-write.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Instr is one basic operation instance.
type Instr struct {
	Op   Op
	Dst  Reg
	Srcs []Reg

	// Addr names the memory location for loads/stores, as a canonical
	// lexical address string such as "a(i,j)" or "a(i,j+1)". Two memory
	// operations with equal Addr strings access the same location in
	// one execution of the block; different strings over the same array
	// are assumed distinct within an innermost-block instance (standard
	// for the straight-line blocks the cost model handles). Base is the
	// array symbol alone.
	Addr string
	Base string

	// Imm is the immediate for OpLoadImm and the known small-multiplier
	// value for the IMulSmall specialization check.
	Imm float64

	// Callee names the routine for OpCall.
	Callee string

	// RefID is an opaque tag assigned by the translator linking a
	// memory instruction back to its source-level reference (used by
	// the interpreter to concretize addresses). Zero means untagged.
	RefID int32
}

// NewInstr builds an instruction with the given sources.
func NewInstr(op Op, dst Reg, srcs ...Reg) Instr {
	return Instr{Op: op, Dst: dst, Srcs: srcs}
}

func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Dst != NoReg && in.Op.HasDst() {
		fmt.Fprintf(&b, " r%d", in.Dst)
	}
	for _, s := range in.Srcs {
		if s == NoReg {
			continue
		}
		fmt.Fprintf(&b, ", r%d", s)
	}
	if in.Addr != "" {
		fmt.Fprintf(&b, ", [%s]", in.Addr)
	}
	if in.Op == OpLoadImm {
		fmt.Fprintf(&b, ", #%g", in.Imm)
	}
	if in.Callee != "" {
		fmt.Fprintf(&b, ", @%s", in.Callee)
	}
	return b.String()
}

// Block is a straight-line sequence of basic operations — the unit the
// Tetris cost model prices.
type Block struct {
	Label  string
	Instrs []Instr
}

// Append adds an instruction and returns its index.
func (b *Block) Append(in Instr) int {
	b.Instrs = append(b.Instrs, in)
	return len(b.Instrs) - 1
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	c := &Block{Label: b.Label, Instrs: make([]Instr, len(b.Instrs))}
	for i, in := range b.Instrs {
		c.Instrs[i] = in
		c.Instrs[i].Srcs = append([]Reg(nil), in.Srcs...)
	}
	return c
}

func (b *Block) String() string {
	var sb strings.Builder
	if b.Label != "" {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
	}
	for i, in := range b.Instrs {
		fmt.Fprintf(&sb, "%3d  %s\n", i, in.String())
	}
	return sb.String()
}

// MaxReg returns the highest register number used, or -1 for none.
func (b *Block) MaxReg() Reg {
	max := NoReg
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Dst > max {
			max = in.Dst
		}
		for _, s := range in.Srcs {
			if s > max {
				max = s
			}
		}
	}
	return max
}

// Deps computes, for each instruction, the indices of earlier
// instructions it must wait for:
//
//   - register read-after-write (the SSA producer of each source);
//   - memory read-after-write, write-after-read and write-after-write
//     on identical address strings;
//   - stores to the same base array are ordered among themselves
//     conservatively when their address strings differ only if
//     mayAlias is set.
//
// This is the "filter" of the paper's cost objects: an operation that
// uses the result of another cannot drop past it into the bins.
func (b *Block) Deps(mayAlias bool) [][]int {
	return b.DepsInto(mayAlias, nil)
}

// DepsBuf is reusable storage for DepsInto: the returned slice-of-slices
// and the arena its rows point into. A caller that prices many blocks
// keeps one DepsBuf and amortizes the two allocations Deps would
// otherwise make per call.
type DepsBuf struct {
	deps  [][]int
	arena []int
}

// DepsInto is Deps with caller-owned result storage. The returned rows
// alias buf's arena and are valid until the next DepsInto call with the
// same buf; a nil buf allocates fresh storage (identical to Deps).
func (b *Block) DepsInto(mayAlias bool, buf *DepsBuf) [][]int {
	n := len(b.Instrs)
	sc := depsPool.Get().(*depsScratch)
	defer depsPool.Put(sc)
	sc.reset()

	for i := range b.Instrs {
		in := &b.Instrs[i]
		for _, s := range in.Srcs {
			// A source at or past the def table's extent has no recorded
			// producer (the table grows only when a def is seen).
			if s < 0 || int(s) >= len(sc.def) {
				continue
			}
			if p := sc.def[s]; p >= 0 {
				sc.add(i, p)
			}
		}
		if in.Op.IsMem() {
			// Intern the address strings once: every later access is an
			// index into the id-addressed tables instead of a string-keyed
			// map operation. The base tables are only consulted under
			// conservative aliasing, so the base string is not even
			// interned without it.
			ai := sc.intern(in.Addr)
			bi := int32(-1)
			if mayAlias {
				bi = sc.intern(in.Base)
			}
			if in.Op.IsLoad() {
				if w := sc.lastWrite[ai]; w >= 0 {
					sc.add(i, w) // RAW same address
				}
				// Under conservative aliasing the last write to the
				// base may target this location through a different
				// subscript, even when the exact address also has a
				// writer: both dependences are real, and dropping the
				// base one lets a possibly-aliasing store reorder
				// around the load (found by the topo-perm invariant).
				if mayAlias {
					if w := sc.lastBaseWrite[bi]; w >= 0 {
						sc.add(i, w)
					}
					sc.lastBaseReads[bi] = append(sc.lastBaseReads[bi], i)
				}
				sc.lastReads[ai] = append(sc.lastReads[ai], i)
			} else { // store
				if w := sc.lastWrite[ai]; w >= 0 {
					sc.add(i, w) // WAW
				}
				for _, r := range sc.lastReads[ai] {
					sc.add(i, r) // WAR
				}
				if mayAlias {
					if w := sc.lastBaseWrite[bi]; w >= 0 {
						sc.add(i, w)
					}
					for _, r := range sc.lastBaseReads[bi] {
						sc.add(i, r)
					}
					sc.lastBaseReads[bi] = sc.lastBaseReads[bi][:0]
					sc.lastBaseWrite[bi] = i
				}
				sc.lastWrite[ai] = i
				sc.lastReads[ai] = sc.lastReads[ai][:0]
			}
		}
		if in.Op.HasDst() && in.Dst >= 0 {
			for len(sc.def) <= int(in.Dst) {
				sc.def = append(sc.def, -1)
			}
			sc.def[in.Dst] = i
		}
	}

	// Bucket the edge pairs into the returned slice-of-slices through a
	// single shared arena: two allocations total (zero on a warm buf)
	// instead of one small slice per instruction with dependences.
	var deps [][]int
	var arena []int
	if buf != nil {
		if cap(buf.deps) < n {
			buf.deps = make([][]int, n, n+n/4)
		}
		deps = buf.deps[:n]
		for i := range deps {
			deps[i] = nil
		}
		if cap(buf.arena) < len(sc.edges) {
			buf.arena = make([]int, 0, len(sc.edges)+len(sc.edges)/4)
		}
		arena = buf.arena[:0]
	} else {
		deps = make([][]int, n)
		if len(sc.edges) == 0 {
			return deps
		}
		arena = make([]int, 0, len(sc.edges))
	}
	start := 0
	for k := 1; k <= len(sc.edges); k++ {
		if k == len(sc.edges) || sc.edges[k].i != sc.edges[start].i {
			lo := len(arena)
			for _, e := range sc.edges[start:k] {
				arena = append(arena, e.j)
			}
			deps[sc.edges[start].i] = arena[lo:len(arena):len(arena)]
			start = k
		}
	}
	if buf != nil {
		buf.arena = arena[:0]
	}
	return deps
}

// depEdge is one dependence pair (instruction i waits for j).
type depEdge struct{ i, j int }

// depsScratch is the pooled working state of Deps. Edges are collected
// flat; because instructions are scanned in order, all edges of one
// instruction are contiguous at the tail, which makes deduplication a
// backward scan and the final bucketing a single pass.
//
// Address and base strings are interned to dense ids on first sight, so
// the per-location state (last writer, pending readers) lives in
// id-indexed slices: one map hash per string instead of a string-keyed
// map operation per table per access.
type depsScratch struct {
	edges []depEdge
	// def maps reg -> defining instr index (-1 if none). It grows
	// lazily to the highest reg actually defined, so huge or sparse
	// register numbers cost nothing and no up-front MaxReg pass is
	// needed.
	def []int

	// The intern table persists across blocks (address strings repeat
	// heavily between the blocks one scratch prices), so a repeat string
	// costs one map read and no writes. Per-id state is invalidated
	// wholesale by bumping gen: a slot whose stamp doesn't match the
	// current generation is logically fresh and is re-initialized on
	// first touch by intern.
	ids           map[string]int32
	gen           []uint32
	curGen        uint32
	lastWrite     []int   // location id -> last writing instr, -1 if none
	lastBaseWrite []int   // base id -> last writing instr, -1 if none
	lastReads     [][]int // location id -> readers since last write
	lastBaseReads [][]int // base id -> readers since last base write
}

// depsMaxInterned bounds the persistent intern table; past it the table
// is rebuilt from empty so a long-lived pooled scratch cannot grow
// without bound across unrelated blocks.
const depsMaxInterned = 1 << 12

var depsPool = sync.Pool{New: func() any { return new(depsScratch) }}

func (sc *depsScratch) reset() {
	sc.edges = sc.edges[:0]
	sc.def = sc.def[:0]
	if sc.ids == nil || len(sc.ids) > depsMaxInterned {
		// The id-indexed slices stay at high-water length: restarted ids
		// land on stale slots, which the generation check re-initializes.
		sc.ids = make(map[string]int32, 64)
	}
	sc.curGen++
	if sc.curGen == 0 { // wrap: stale stamps could alias the new generation
		for i := range sc.gen {
			sc.gen[i] = 0
		}
		sc.curGen = 1
	}
}

// intern returns the dense id of s, assigning the next one on first
// sight. The id-indexed tables are initialized lazily on an id's first
// touch in the current generation — reusing high-water slice capacity —
// so reset never walks them.
func (sc *depsScratch) intern(s string) int32 {
	id, ok := sc.ids[s]
	if !ok {
		id = int32(len(sc.ids))
		sc.ids[s] = id
		if int(id) >= len(sc.gen) {
			sc.gen = append(sc.gen, 0)
			sc.lastWrite = append(sc.lastWrite, -1)
			sc.lastBaseWrite = append(sc.lastBaseWrite, -1)
			sc.lastReads = append(sc.lastReads, nil)
			sc.lastBaseReads = append(sc.lastBaseReads, nil)
		}
	}
	if sc.gen[id] != sc.curGen {
		sc.gen[id] = sc.curGen
		sc.lastWrite[id] = -1
		sc.lastBaseWrite[id] = -1
		sc.lastReads[id] = sc.lastReads[id][:0]
		sc.lastBaseReads[id] = sc.lastBaseReads[id][:0]
	}
	return id
}

// add records that instruction i depends on j, skipping self/forward
// edges and duplicates (found by scanning the contiguous tail of edges
// already recorded for i).
func (sc *depsScratch) add(i, j int) {
	if j < 0 || j >= i {
		return
	}
	for k := len(sc.edges) - 1; k >= 0 && sc.edges[k].i == i; k-- {
		if sc.edges[k].j == j {
			return
		}
	}
	sc.edges = append(sc.edges, depEdge{i, j})
}

// CriticalPathLen returns the length (in instructions) of the longest
// dependence chain — a structural lower bound useful in tests.
func (b *Block) CriticalPathLen(mayAlias bool) int {
	deps := b.Deps(mayAlias)
	depth := make([]int, len(b.Instrs))
	max := 0
	for i := range b.Instrs {
		d := 1
		for _, j := range deps[i] {
			if depth[j]+1 > d {
				d = depth[j] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Counts returns a histogram of ops — the "operation-count based cost
// model" input that the paper's model improves upon.
func (b *Block) Counts() map[Op]int {
	out := map[Op]int{}
	for _, in := range b.Instrs {
		out[in.Op]++
	}
	return out
}
