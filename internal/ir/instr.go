package ir

import (
	"fmt"
	"strings"
	"sync"
)

// Reg is a virtual register. Lowering produces SSA-like code: every
// instruction that defines a value defines a fresh register, so the
// only register dependences are read-after-write.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Instr is one basic operation instance.
type Instr struct {
	Op   Op
	Dst  Reg
	Srcs []Reg

	// Addr names the memory location for loads/stores, as a canonical
	// lexical address string such as "a(i,j)" or "a(i,j+1)". Two memory
	// operations with equal Addr strings access the same location in
	// one execution of the block; different strings over the same array
	// are assumed distinct within an innermost-block instance (standard
	// for the straight-line blocks the cost model handles). Base is the
	// array symbol alone.
	Addr string
	Base string

	// Imm is the immediate for OpLoadImm and the known small-multiplier
	// value for the IMulSmall specialization check.
	Imm float64

	// Callee names the routine for OpCall.
	Callee string

	// RefID is an opaque tag assigned by the translator linking a
	// memory instruction back to its source-level reference (used by
	// the interpreter to concretize addresses). Zero means untagged.
	RefID int32
}

// NewInstr builds an instruction with the given sources.
func NewInstr(op Op, dst Reg, srcs ...Reg) Instr {
	return Instr{Op: op, Dst: dst, Srcs: srcs}
}

func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Dst != NoReg && in.Op.HasDst() {
		fmt.Fprintf(&b, " r%d", in.Dst)
	}
	for _, s := range in.Srcs {
		if s == NoReg {
			continue
		}
		fmt.Fprintf(&b, ", r%d", s)
	}
	if in.Addr != "" {
		fmt.Fprintf(&b, ", [%s]", in.Addr)
	}
	if in.Op == OpLoadImm {
		fmt.Fprintf(&b, ", #%g", in.Imm)
	}
	if in.Callee != "" {
		fmt.Fprintf(&b, ", @%s", in.Callee)
	}
	return b.String()
}

// Block is a straight-line sequence of basic operations — the unit the
// Tetris cost model prices.
type Block struct {
	Label  string
	Instrs []Instr
}

// Append adds an instruction and returns its index.
func (b *Block) Append(in Instr) int {
	b.Instrs = append(b.Instrs, in)
	return len(b.Instrs) - 1
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	c := &Block{Label: b.Label, Instrs: make([]Instr, len(b.Instrs))}
	for i, in := range b.Instrs {
		c.Instrs[i] = in
		c.Instrs[i].Srcs = append([]Reg(nil), in.Srcs...)
	}
	return c
}

func (b *Block) String() string {
	var sb strings.Builder
	if b.Label != "" {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
	}
	for i, in := range b.Instrs {
		fmt.Fprintf(&sb, "%3d  %s\n", i, in.String())
	}
	return sb.String()
}

// MaxReg returns the highest register number used, or -1 for none.
func (b *Block) MaxReg() Reg {
	max := NoReg
	for _, in := range b.Instrs {
		if in.Dst > max {
			max = in.Dst
		}
		for _, s := range in.Srcs {
			if s > max {
				max = s
			}
		}
	}
	return max
}

// Deps computes, for each instruction, the indices of earlier
// instructions it must wait for:
//
//   - register read-after-write (the SSA producer of each source);
//   - memory read-after-write, write-after-read and write-after-write
//     on identical address strings;
//   - stores to the same base array are ordered among themselves
//     conservatively when their address strings differ only if
//     mayAlias is set.
//
// This is the "filter" of the paper's cost objects: an operation that
// uses the result of another cannot drop past it into the bins.
func (b *Block) Deps(mayAlias bool) [][]int {
	n := len(b.Instrs)
	sc := depsPool.Get().(*depsScratch)
	defer depsPool.Put(sc)
	sc.reset(int(b.MaxReg()) + 1)

	for i, in := range b.Instrs {
		for _, s := range in.Srcs {
			if s == NoReg {
				continue
			}
			if p := sc.def[s]; p >= 0 {
				sc.add(i, p)
			}
		}
		if in.Op.IsMem() {
			addr, base := in.Addr, in.Base
			if in.Op.IsLoad() {
				if w, ok := sc.lastWrite[addr]; ok {
					sc.add(i, w) // RAW same address
				}
				// Under conservative aliasing the last write to the
				// base may target this location through a different
				// subscript, even when the exact address also has a
				// writer: both dependences are real, and dropping the
				// base one lets a possibly-aliasing store reorder
				// around the load (found by the topo-perm invariant).
				if mayAlias {
					if w, ok := sc.lastBaseWrite[base]; ok {
						sc.add(i, w)
					}
				}
				sc.lastReads[addr] = append(sc.lastReads[addr], i)
				sc.lastBaseReads[base] = append(sc.lastBaseReads[base], i)
			} else { // store
				if w, ok := sc.lastWrite[addr]; ok {
					sc.add(i, w) // WAW
				}
				for _, r := range sc.lastReads[addr] {
					sc.add(i, r) // WAR
				}
				if mayAlias {
					if w, ok := sc.lastBaseWrite[base]; ok {
						sc.add(i, w)
					}
					for _, r := range sc.lastBaseReads[base] {
						sc.add(i, r)
					}
					sc.lastBaseReads[base] = sc.lastBaseReads[base][:0]
				}
				sc.lastWrite[addr] = i
				sc.lastBaseWrite[base] = i
				sc.lastReads[addr] = sc.lastReads[addr][:0]
			}
		}
		if in.Op.HasDst() && in.Dst != NoReg {
			sc.def[in.Dst] = i
		}
	}

	// Bucket the edge pairs into the returned slice-of-slices through a
	// single shared arena: two allocations total instead of one small
	// slice per instruction with dependences.
	deps := make([][]int, n)
	if len(sc.edges) == 0 {
		return deps
	}
	arena := make([]int, 0, len(sc.edges))
	start := 0
	for k := 1; k <= len(sc.edges); k++ {
		if k == len(sc.edges) || sc.edges[k].i != sc.edges[start].i {
			lo := len(arena)
			for _, e := range sc.edges[start:k] {
				arena = append(arena, e.j)
			}
			deps[sc.edges[start].i] = arena[lo:len(arena):len(arena)]
			start = k
		}
	}
	return deps
}

// depEdge is one dependence pair (instruction i waits for j).
type depEdge struct{ i, j int }

// depsScratch is the pooled working state of Deps. Edges are collected
// flat; because instructions are scanned in order, all edges of one
// instruction are contiguous at the tail, which makes deduplication a
// backward scan and the final bucketing a single pass.
type depsScratch struct {
	edges         []depEdge
	def           []int // reg -> defining instr index, -1 if none
	lastWrite     map[string]int
	lastReads     map[string][]int
	lastBaseWrite map[string]int
	lastBaseReads map[string][]int
}

var depsPool = sync.Pool{New: func() any { return new(depsScratch) }}

func (sc *depsScratch) reset(nregs int) {
	sc.edges = sc.edges[:0]
	if cap(sc.def) < nregs {
		sc.def = make([]int, nregs)
	}
	sc.def = sc.def[:nregs]
	for i := range sc.def {
		sc.def[i] = -1
	}
	if sc.lastWrite == nil {
		sc.lastWrite = map[string]int{}
		sc.lastReads = map[string][]int{}
		sc.lastBaseWrite = map[string]int{}
		sc.lastBaseReads = map[string][]int{}
		return
	}
	clear(sc.lastWrite)
	clear(sc.lastReads)
	clear(sc.lastBaseWrite)
	clear(sc.lastBaseReads)
}

// add records that instruction i depends on j, skipping self/forward
// edges and duplicates (found by scanning the contiguous tail of edges
// already recorded for i).
func (sc *depsScratch) add(i, j int) {
	if j < 0 || j >= i {
		return
	}
	for k := len(sc.edges) - 1; k >= 0 && sc.edges[k].i == i; k-- {
		if sc.edges[k].j == j {
			return
		}
	}
	sc.edges = append(sc.edges, depEdge{i, j})
}

// CriticalPathLen returns the length (in instructions) of the longest
// dependence chain — a structural lower bound useful in tests.
func (b *Block) CriticalPathLen(mayAlias bool) int {
	deps := b.Deps(mayAlias)
	depth := make([]int, len(b.Instrs))
	max := 0
	for i := range b.Instrs {
		d := 1
		for _, j := range deps[i] {
			if depth[j]+1 > d {
				d = depth[j] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Counts returns a histogram of ops — the "operation-count based cost
// model" input that the paper's model improves upon.
func (b *Block) Counts() map[Op]int {
	out := map[Op]int{}
	for _, in := range b.Instrs {
		out[in.Op]++
	}
	return out
}
