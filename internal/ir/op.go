// Package ir defines the basic-operation intermediate representation of
// the instruction-translation module (Wang, PLDI 1994, §2.2). The
// *operation specialization mapping* lowers language-specific
// expressions into these language-independent, type-specific basic
// operations; the architecture-dependent *atomic operation mapping*
// (package machine) then turns each basic operation into costed atomic
// operations.
package ir

import "fmt"

// Op is a basic operation: language independent, type specific.
type Op int

const (
	OpInvalid Op = iota

	// Integer arithmetic.
	OpIAdd
	OpISub
	OpIMul      // general integer multiply
	OpIMulSmall // multiplier known to fit in [-128, 127] (paper §2.2.1)
	OpIDiv
	OpIMod
	OpINeg
	OpIAbs

	// Floating point (double precision; F-lite REALs are doubles).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFMA // fused multiply-add: d = a*b + c (paper: "multiply-and-adds")
	OpFMS // fused multiply-subtract: d = a*b − c
	OpFNeg
	OpFAbs
	OpFSqrt
	OpFMin
	OpFMax

	// Conversions.
	OpItoF
	OpFtoI

	// Memory.
	OpILoad
	OpIStore
	OpFLoad
	OpFStore

	// Address arithmetic is integer arithmetic, but loads/stores in
	// update form (auto-increment addressing on POWER) fold it away;
	// OpAddr marks address computations the back-end imitation may
	// delete.
	OpAddr

	// Control.
	OpICmp   // integer compare, sets condition register
	OpFCmp   // floating compare, sets condition register
	OpBranch // conditional branch on condition register
	OpJump   // unconditional branch
	OpCall   // external call (costed via the library cost table)

	// Constant materialization.
	OpLoadImm

	opEnd
)

// Class groups operations for unit assignment and analysis.
type Class int

const (
	ClassInt Class = iota
	ClassFloat
	ClassMem
	ClassCtl
)

type opInfo struct {
	name        string
	class       Class
	commutative bool
	nSrcs       int
	hasDst      bool
}

var opTable = [opEnd]opInfo{
	OpInvalid:   {"invalid", ClassInt, false, 0, false},
	OpIAdd:      {"iadd", ClassInt, true, 2, true},
	OpISub:      {"isub", ClassInt, false, 2, true},
	OpIMul:      {"imul", ClassInt, true, 2, true},
	OpIMulSmall: {"imuls", ClassInt, true, 2, true},
	OpIDiv:      {"idiv", ClassInt, false, 2, true},
	OpIMod:      {"imod", ClassInt, false, 2, true},
	OpINeg:      {"ineg", ClassInt, false, 1, true},
	OpIAbs:      {"iabs", ClassInt, false, 1, true},
	OpFAdd:      {"fadd", ClassFloat, true, 2, true},
	OpFSub:      {"fsub", ClassFloat, false, 2, true},
	OpFMul:      {"fmul", ClassFloat, true, 2, true},
	OpFDiv:      {"fdiv", ClassFloat, false, 2, true},
	OpFMA:       {"fma", ClassFloat, false, 3, true},
	OpFMS:       {"fms", ClassFloat, false, 3, true},
	OpFNeg:      {"fneg", ClassFloat, false, 1, true},
	OpFAbs:      {"fabs", ClassFloat, false, 1, true},
	OpFSqrt:     {"fsqrt", ClassFloat, false, 1, true},
	OpFMin:      {"fmin", ClassFloat, true, 2, true},
	OpFMax:      {"fmax", ClassFloat, true, 2, true},
	OpItoF:      {"itof", ClassFloat, false, 1, true},
	OpFtoI:      {"ftoi", ClassFloat, false, 1, true},
	OpILoad:     {"iload", ClassMem, false, 0, true},
	OpIStore:    {"istore", ClassMem, false, 1, false},
	OpFLoad:     {"fload", ClassMem, false, 0, true},
	OpFStore:    {"fstore", ClassMem, false, 1, false},
	OpAddr:      {"addr", ClassInt, false, 2, true},
	OpICmp:      {"icmp", ClassCtl, false, 2, true},
	OpFCmp:      {"fcmp", ClassCtl, false, 2, true},
	OpBranch:    {"branch", ClassCtl, false, 1, false},
	OpJump:      {"jump", ClassCtl, false, 0, false},
	OpCall:      {"call", ClassCtl, false, 0, true},
	OpLoadImm:   {"li", ClassInt, false, 0, true},
}

// String returns the mnemonic.
func (op Op) String() string {
	if op < 0 || op >= opEnd {
		return fmt.Sprintf("op(%d)", int(op))
	}
	return opTable[op].name
}

// Class returns the operation class.
func (op Op) Class() Class { return opTable[op].class }

// Commutative reports whether src operands may be exchanged.
func (op Op) Commutative() bool { return opTable[op].commutative }

// NumSrcs returns the number of register sources (memory ops carry the
// address separately).
func (op Op) NumSrcs() int { return opTable[op].nSrcs }

// HasDst reports whether the op defines a register.
func (op Op) HasDst() bool { return opTable[op].hasDst }

// IsLoad / IsStore / IsMem classify memory operations.
func (op Op) IsLoad() bool  { return op == OpILoad || op == OpFLoad }
func (op Op) IsStore() bool { return op == OpIStore || op == OpFStore }
func (op Op) IsMem() bool   { return op.IsLoad() || op.IsStore() }

// IsBranch reports control transfers.
func (op Op) IsBranch() bool { return op == OpBranch || op == OpJump }

// AllOps returns every valid operation, for table-completeness checks.
func AllOps() []Op {
	out := make([]Op, 0, int(opEnd)-1)
	for op := OpInvalid + 1; op < opEnd; op++ {
		out = append(out, op)
	}
	return out
}

// opByName maps mnemonics back to opcodes, for machine descriptions
// expressed as data rather than code.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opEnd)-1)
	for op := OpInvalid + 1; op < opEnd; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// ParseOp resolves a mnemonic (as produced by Op.String) to its
// opcode. It reports false for unknown names and for "invalid".
func ParseOp(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
