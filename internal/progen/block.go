package progen

import (
	"math/rand"
	"sort"

	"perfpredict/internal/ir"
)

// BlockConfig bounds the generated straight-line blocks.
type BlockConfig struct {
	// MinOps and MaxOps bound the instruction count (defaults 3..14,
	// sized so the exact oracle can prove optimality).
	MinOps, MaxOps int
	// MemFraction is the rough share of memory operations (default
	// ~0.35). Memory traffic is what exercises the dependence filter's
	// RAW/WAR/WAW and aliasing paths.
	MemFraction float64
	// AllowControl permits a compare+branch tail.
	AllowControl bool
}

func (c *BlockConfig) defaults() {
	if c.MaxOps == 0 {
		c.MinOps, c.MaxOps = 3, 14
	}
	if c.MinOps <= 0 {
		c.MinOps = 1
	}
	if c.MemFraction == 0 {
		c.MemFraction = 0.35
	}
}

// intOps and floatOps are the register-to-register op pools, weighted
// by repetition.
var intOps = []ir.Op{
	ir.OpIAdd, ir.OpIAdd, ir.OpISub, ir.OpIMul, ir.OpIMulSmall,
	ir.OpIDiv, ir.OpIMod, ir.OpINeg, ir.OpIAbs, ir.OpAddr,
}

var floatOps = []ir.Op{
	ir.OpFAdd, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFMul,
	ir.OpFDiv, ir.OpFMA, ir.OpFMS, ir.OpFNeg, ir.OpFAbs,
	ir.OpFSqrt, ir.OpFMin, ir.OpFMax,
}

// addrPool builds the block's set of lexical addresses over a few base
// arrays; reuse across instructions is what creates memory dependences.
func addrPool(r *rand.Rand) (addrs, bases []string) {
	subscripts := []string{"i", "i+1", "j", "i,j", "j,i", "1"}
	for _, base := range []string{"a", "b", "c"}[:between(r, 2, 3)] {
		n := between(r, 1, 3)
		for k := 0; k < n; k++ {
			addrs = append(addrs, base+"("+pick(r, subscripts)+")")
			bases = append(bases, base)
		}
	}
	return addrs, bases
}

// GenBlock generates a valid SSA basic block: every instruction
// defines a fresh register, sources come from type-consistent pools of
// previously defined registers, and memory operations draw addresses
// from a shared pool so dependences actually occur.
func GenBlock(r *rand.Rand, cfg BlockConfig) *ir.Block {
	cfg.defaults()
	b := &ir.Block{Label: "gen"}
	addrs, bases := addrPool(r)
	next := ir.Reg(0)
	fresh := func() ir.Reg { next++; return next - 1 }
	var ints, floats, conds []ir.Reg

	// Bootstrap both pools so operand selection never fails.
	r0 := fresh()
	b.Append(ir.Instr{Op: ir.OpLoadImm, Dst: r0, Imm: float64(between(r, 1, 9))})
	ints = append(ints, r0)
	r1 := fresh()
	ai := r.Intn(len(addrs))
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: r1, Addr: addrs[ai], Base: bases[ai]})
	floats = append(floats, r1)

	n := between(r, cfg.MinOps, cfg.MaxOps)
	for len(b.Instrs) < n {
		roll := r.Float64()
		switch {
		case roll < cfg.MemFraction:
			ai := r.Intn(len(addrs))
			switch r.Intn(4) {
			case 0: // integer load
				d := fresh()
				b.Append(ir.Instr{Op: ir.OpILoad, Dst: d, Addr: addrs[ai], Base: bases[ai]})
				ints = append(ints, d)
			case 1: // integer store
				b.Append(ir.Instr{Op: ir.OpIStore, Dst: ir.NoReg, Srcs: []ir.Reg{pick(r, ints)}, Addr: addrs[ai], Base: bases[ai]})
			case 2: // float load
				d := fresh()
				b.Append(ir.Instr{Op: ir.OpFLoad, Dst: d, Addr: addrs[ai], Base: bases[ai]})
				floats = append(floats, d)
			default: // float store
				b.Append(ir.Instr{Op: ir.OpFStore, Dst: ir.NoReg, Srcs: []ir.Reg{pick(r, floats)}, Addr: addrs[ai], Base: bases[ai]})
			}
		case roll < cfg.MemFraction+0.08:
			switch r.Intn(3) {
			case 0: // constant
				d := fresh()
				b.Append(ir.Instr{Op: ir.OpLoadImm, Dst: d, Imm: float64(between(r, -4, 20))})
				ints = append(ints, d)
			case 1: // int -> float
				d := fresh()
				b.Append(ir.NewInstr(ir.OpItoF, d, pick(r, ints)))
				floats = append(floats, d)
			default: // float -> int
				d := fresh()
				b.Append(ir.NewInstr(ir.OpFtoI, d, pick(r, floats)))
				ints = append(ints, d)
			}
		case roll < cfg.MemFraction+0.08+0.22:
			op := pick(r, intOps)
			d := fresh()
			in := ir.Instr{Op: op, Dst: d}
			for s := 0; s < op.NumSrcs(); s++ {
				in.Srcs = append(in.Srcs, pick(r, ints))
			}
			if op == ir.OpIMulSmall {
				in.Imm = float64(between(r, -128, 127))
			}
			b.Append(in)
			ints = append(ints, d)
		default:
			op := pick(r, floatOps)
			d := fresh()
			in := ir.Instr{Op: op, Dst: d}
			for s := 0; s < op.NumSrcs(); s++ {
				in.Srcs = append(in.Srcs, pick(r, floats))
			}
			b.Append(in)
			floats = append(floats, d)
		}
	}

	if cfg.AllowControl && r.Intn(3) == 0 {
		d := fresh()
		if r.Intn(2) == 0 {
			b.Append(ir.NewInstr(ir.OpICmp, d, pick(r, ints), pick(r, ints)))
		} else {
			b.Append(ir.NewInstr(ir.OpFCmp, d, pick(r, floats), pick(r, floats)))
		}
		conds = append(conds, d)
		b.Append(ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, Srcs: []ir.Reg{pick(r, conds)}})
	}
	return b
}

// TopoShuffle returns a random dependence-respecting permutation of b:
// instructions are emitted in a random order in which every
// instruction follows all of its dependences (under the same MayAlias
// the estimate will use). The oracle's exact cost is invariant under
// any such permutation.
func TopoShuffle(r *rand.Rand, b *ir.Block, mayAlias bool) *ir.Block {
	deps := b.Deps(mayAlias)
	n := len(b.Instrs)
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, j := range ds {
			succs[j] = append(succs[j], i)
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := &ir.Block{Label: b.Label}
	for len(ready) > 0 {
		k := r.Intn(len(ready))
		i := ready[k]
		ready = append(ready[:k], ready[k+1:]...)
		in := b.Instrs[i]
		in.Srcs = append([]ir.Reg(nil), in.Srcs...)
		out.Append(in)
		for _, s := range succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}

// SwapCommutativeSrcs flips the two sources of every commutative
// binary operation. The dependence sets are unchanged, so every
// estimate must be too.
func SwapCommutativeSrcs(b *ir.Block) *ir.Block {
	c := b.Clone()
	for i := range c.Instrs {
		in := &c.Instrs[i]
		if in.Op.Commutative() && len(in.Srcs) == 2 {
			in.Srcs[0], in.Srcs[1] = in.Srcs[1], in.Srcs[0]
		}
	}
	return c
}

// RenameRegs applies a random bijective renaming to every register.
// SSA structure and dependences are preserved, so every estimate must
// be invariant.
func RenameRegs(r *rand.Rand, b *ir.Block) *ir.Block {
	max := int(b.MaxReg())
	if max < 0 {
		return b.Clone()
	}
	perm := r.Perm(max + 1)
	rename := func(reg ir.Reg) ir.Reg {
		if reg == ir.NoReg {
			return reg
		}
		return ir.Reg(perm[reg])
	}
	c := b.Clone()
	for i := range c.Instrs {
		in := &c.Instrs[i]
		if in.Op.HasDst() {
			in.Dst = rename(in.Dst)
		}
		for s := range in.Srcs {
			in.Srcs[s] = rename(in.Srcs[s])
		}
	}
	return c
}

// SwapAdjacentSinks looks for two adjacent instructions with the same
// operation, identical source sets, identical dependence sets, and no
// later instruction depending on either. Identical op + sources +
// dependences means identical ready times (the placer classifies each
// dependence as data vs memory by whether it defines a source) and
// identical cost objects, so the two placements commute: swapping the
// pair cannot change the estimate. Returns ok=false if b has no such
// pair.
func SwapAdjacentSinks(b *ir.Block, mayAlias bool) (*ir.Block, bool) {
	deps := b.Deps(mayAlias)
	n := len(b.Instrs)
	hasConsumer := make([]bool, n)
	sorted := make([][]int, n)
	for i, ds := range deps {
		for _, j := range ds {
			hasConsumer[j] = true
		}
		sorted[i] = append([]int(nil), ds...)
		sort.Ints(sorted[i])
	}
	srcSet := func(in ir.Instr) []int {
		out := make([]int, len(in.Srcs))
		for k, s := range in.Srcs {
			out[k] = int(s)
		}
		sort.Ints(out)
		return out
	}
	for i := 0; i+1 < n; i++ {
		a, c := b.Instrs[i], b.Instrs[i+1]
		if a.Op != c.Op || hasConsumer[i] || hasConsumer[i+1] {
			continue
		}
		if !slicesEqual(sorted[i], sorted[i+1]) || !slicesEqual(srcSet(a), srcSet(c)) {
			continue
		}
		out := b.Clone()
		out.Instrs[i], out.Instrs[i+1] = out.Instrs[i+1], out.Instrs[i]
		return out, true
	}
	return nil, false
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
