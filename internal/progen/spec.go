package progen

import (
	"fmt"
	"math/rand"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

// SpecConfig bounds generated machine descriptions.
type SpecConfig struct {
	// MaxKinds bounds the number of unit kinds (default 4, min 2).
	MaxKinds int
	// MaxPipes bounds the pipe count per kind (default 3).
	MaxPipes int
	// MaxWidth bounds the dispatch width (default 6).
	MaxWidth int
}

func (c *SpecConfig) defaults() {
	if c.MaxKinds < 2 {
		c.MaxKinds = 4
	}
	if c.MaxPipes == 0 {
		c.MaxPipes = 3
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = 6
	}
}

var kindPool = []string{"ALU", "FPU", "MEM", "BR", "CR", "VEC"}

// GenSpec generates a machine spec that is valid by construction:
// every basic operation has a nonempty expansion, every segment
// references a declared unit, durations are positive, and no atomic
// operation demands more pipes of a kind than the machine has (each
// segment of one atomic operation occupies its own pipe).
func GenSpec(r *rand.Rand, cfg SpecConfig) *machine.Spec {
	cfg.defaults()
	nKinds := between(r, 2, cfg.MaxKinds)
	kinds := append([]string(nil), kindPool...)
	r.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	kinds = kinds[:nKinds]
	units := map[string]int{}
	for _, k := range kinds {
		units[k] = between(r, 1, cfg.MaxPipes)
	}
	s := &machine.Spec{
		Name:          fmt.Sprintf("Fuzz-%08x", r.Uint32()),
		DispatchWidth: between(r, 1, cfg.MaxWidth),
		HasFMA:        r.Intn(2) == 0,
		Units:         units,
		Ops:           map[string][]machine.AtomicOpSpec{},
	}
	if r.Intn(3) == 0 {
		s.LoadsPerStore = between(r, 2, 5)
	}
	s.BranchCost = between(r, 0, 8)

	genSegment := func(kind string) machine.SegmentSpec {
		seg := machine.SegmentSpec{
			Unit:   kind,
			Start:  between(r, 0, 2),
			Noncov: between(r, 0, 3),
			Cov:    between(r, 0, 3),
		}
		if seg.Noncov+seg.Cov == 0 {
			seg.Noncov = 1
		}
		return seg
	}
	for _, op := range ir.AllOps() {
		nAtomic := 1
		if r.Intn(5) == 0 {
			nAtomic = 2
		}
		var seq []machine.AtomicOpSpec
		for a := 0; a < nAtomic; a++ {
			atom := machine.AtomicOpSpec{Name: fmt.Sprintf("%s.%c", op, 'a'+a)}
			k1 := pick(r, kinds)
			atom.Segments = append(atom.Segments, genSegment(k1))
			if r.Intn(4) == 0 && nKinds > 1 {
				// Second segment on a *different* kind: distinct kinds
				// sidestep both the same-unit overlap rule and the
				// pipes-per-kind budget without narrowing the search.
				k2 := k1
				for k2 == k1 {
					k2 = pick(r, kinds)
				}
				atom.Segments = append(atom.Segments, genSegment(k2))
			}
			seq = append(seq, atom)
		}
		s.Ops[op.String()] = seq
	}
	return s
}

// Mutation is one deliberately broken spec together with the invariant
// it violates; machine.Spec.Validate must reject every one.
type Mutation struct {
	Name string
	Spec *machine.Spec
}

// cloneSpec deep-copies via the canonical encoding (specs round-trip
// by contract).
func cloneSpec(s *machine.Spec) *machine.Spec {
	data, err := s.Encode()
	if err != nil {
		panic("progen: clone encode: " + err.Error())
	}
	c, err := machine.ParseSpec(data)
	if err != nil {
		panic("progen: clone parse: " + err.Error())
	}
	return c
}

// anyUnit returns some declared unit kind (map order independent: the
// lexicographically first, so mutations are deterministic).
func anyUnit(s *machine.Spec) string {
	best := ""
	for k := range s.Units {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// InvalidMutations derives, from a valid spec, one broken variant per
// validator rule. The harness asserts Validate rejects each; a
// mutation that slips through means a validation regression.
func InvalidMutations(s *machine.Spec) []Mutation {
	target := ir.OpFAdd.String()
	muts := []struct {
		name  string
		apply func(c *machine.Spec)
	}{
		{"empty-name", func(c *machine.Spec) { c.Name = "" }},
		{"zero-dispatch-width", func(c *machine.Spec) { c.DispatchWidth = 0 }},
		{"negative-dispatch-width", func(c *machine.Spec) { c.DispatchWidth = -2 }},
		{"no-units", func(c *machine.Spec) { c.Units = map[string]int{} }},
		{"zero-pipe-count", func(c *machine.Spec) { c.Units[anyUnit(c)] = 0 }},
		{"empty-unit-kind", func(c *machine.Spec) { c.Units[""] = 1 }},
		{"unknown-basic-op", func(c *machine.Spec) { c.Ops["frobnicate"] = c.Ops[target] }},
		{"missing-basic-op", func(c *machine.Spec) { delete(c.Ops, target) }},
		{"empty-expansion", func(c *machine.Spec) { c.Ops[target] = []machine.AtomicOpSpec{} }},
		{"unnamed-atomic-op", func(c *machine.Spec) { c.Ops[target][0].Name = "" }},
		{"no-segments", func(c *machine.Spec) { c.Ops[target][0].Segments = nil }},
		{"unknown-unit", func(c *machine.Spec) { c.Ops[target][0].Segments[0].Unit = "Imaginary" }},
		{"negative-start", func(c *machine.Spec) { c.Ops[target][0].Segments[0].Start = -1 }},
		{"negative-noncov", func(c *machine.Spec) { c.Ops[target][0].Segments[0].Noncov = -2 }},
		{"zero-duration-segment", func(c *machine.Spec) {
			c.Ops[target][0].Segments[0].Noncov = 0
			c.Ops[target][0].Segments[0].Cov = 0
		}},
		{"overlapping-segments", func(c *machine.Spec) {
			u := anyUnit(c)
			c.Ops[target][0].Segments = []machine.SegmentSpec{
				{Unit: u, Start: 0, Noncov: 2},
				{Unit: u, Start: 1, Noncov: 2},
			}
		}},
		{"oversubscribed-kind", func(c *machine.Spec) {
			// Two non-overlapping segments on a 1-pipe kind: each
			// segment of an atomic op needs its own pipe, so this can
			// never place.
			u := anyUnit(c)
			c.Units[u] = 1
			c.Ops[target][0].Segments = []machine.SegmentSpec{
				{Unit: u, Start: 0, Noncov: 1},
				{Unit: u, Start: 2, Noncov: 1},
			}
		}},
	}
	// Memory-section mutations: attach a minimal valid hierarchy, then
	// break one rule. The base spec carries no memory section, so each
	// of these exercises exactly the named memory validator rule.
	attachMem := func(c *machine.Spec) *machine.MemorySpec {
		c.Memory = &machine.MemorySpec{
			Levels: []machine.CacheLevelSpec{
				{Name: "L1", SizeBytes: 8192, LineBytes: 64, Assoc: 2, MissPenalty: 10},
			},
		}
		return c.Memory
	}
	memMuts := []struct {
		name  string
		apply func(c *machine.Spec)
	}{
		{"memory-no-levels", func(c *machine.Spec) { attachMem(c).Levels = nil }},
		{"memory-unnamed-level", func(c *machine.Spec) { attachMem(c).Levels[0].Name = "" }},
		{"memory-zero-line", func(c *machine.Spec) { attachMem(c).Levels[0].LineBytes = 0 }},
		{"memory-size-not-line-multiple", func(c *machine.Spec) { attachMem(c).Levels[0].SizeBytes = 8190 }},
		{"memory-line-not-elem-multiple", func(c *machine.Spec) {
			m := attachMem(c)
			m.Levels[0].SizeBytes, m.Levels[0].LineBytes = 480, 60
		}},
		{"memory-negative-penalty", func(c *machine.Spec) { attachMem(c).Levels[0].MissPenalty = -1 }},
		{"memory-assoc-nondivisor", func(c *machine.Spec) { attachMem(c).Levels[0].Assoc = 3 }},
		{"memory-shrinking-levels", func(c *machine.Spec) {
			m := attachMem(c)
			m.Levels = append(m.Levels, machine.CacheLevelSpec{
				Name: "L2", SizeBytes: 4096, LineBytes: 64, Assoc: 2, MissPenalty: 40,
			})
		}},
		{"memory-bad-tlb", func(c *machine.Spec) {
			attachMem(c).TLB = &machine.TLBSpec{PageBytes: 0, Entries: 4, Assoc: 2}
		}},
	}
	out := make([]Mutation, 0, len(muts)+len(memMuts))
	for _, m := range muts {
		c := cloneSpec(s)
		m.apply(c)
		out = append(out, Mutation{Name: m.name, Spec: c})
	}
	for _, m := range memMuts {
		c := cloneSpec(s)
		m.apply(c)
		out = append(out, Mutation{Name: m.name, Spec: c})
	}
	return out
}
