package progen

import (
	"math/rand"
	"sort"

	"perfpredict/internal/machine"
)

// TemplateConfig bounds generated machine templates.
type TemplateConfig struct {
	// MaxCells bounds the lattice size (default 16). The generator
	// keeps a running product and stops adding dimensions when the
	// next one would exceed it.
	MaxCells int
}

func (c *TemplateConfig) defaults() {
	if c.MaxCells == 0 {
		c.MaxCells = 16
	}
}

// GenTemplate generates a machine template that is valid by
// construction — and whose every lattice cell is a valid machine.
// The base comes from GenSpec, whose atomic operations occupy at most
// one pipe per unit kind, so pipe ranges may reach down to 1 without
// producing an unplaceable cell; op alternatives only stretch a
// segment's covered duration, which no validator rule bounds above.
// At least one dimension is always free (a size-1 lattice is legal
// but exercises nothing).
func GenTemplate(r *rand.Rand, cfg TemplateConfig) *machine.SpecTemplate {
	cfg.defaults()
	base := GenSpec(r, SpecConfig{})
	tpl := &machine.SpecTemplate{Base: base}
	cells := 1
	fits := func(n int) bool { return cells*n <= cfg.MaxCells }

	// Dispatch range.
	if r.Intn(2) == 0 {
		n := between(r, 2, 3)
		if fits(n) {
			tpl.Dispatch = &machine.IntRange{Min: base.DispatchWidth, Max: base.DispatchWidth + n - 1}
			cells *= n
		}
	}

	// Pipe ranges over existing units (deterministic order).
	units := make([]string, 0, len(base.Units))
	for u := range base.Units {
		units = append(units, u)
	}
	sort.Strings(units)
	r.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })
	for _, u := range units[:between(r, 1, min(2, len(units)))] {
		n := between(r, 2, 3)
		if !fits(n) {
			continue
		}
		tpl.Pipes = ensure(tpl.Pipes)
		tpl.Pipes[u] = machine.IntRange{Min: 1, Max: n}
		cells *= n
	}

	// Op alternatives: the base expansion plus a slower variant with
	// one more covered cycle on its first segment — same units, same
	// pipe demands, so every cell stays valid.
	if r.Intn(3) == 0 {
		ops := make([]string, 0, len(base.Ops))
		for op := range base.Ops {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		op := ops[r.Intn(len(ops))]
		if fits(2) {
			slower := cloneAtomicOps(base.Ops[op])
			slower[0].Segments[0].Cov++
			tpl.Ops = map[string][][]machine.AtomicOpSpec{op: {base.Ops[op], slower}}
			cells *= 2
		}
	}

	// Guarantee at least one free dimension.
	if cells == 1 {
		tpl.Dispatch = &machine.IntRange{Min: base.DispatchWidth, Max: base.DispatchWidth + 1}
	}

	// Occasionally declare a budget with mixed weights (including the
	// explicit-zero exclusion case).
	if r.Intn(3) == 0 {
		weights := []float64{0, 0.5, 1, 2}
		w := weights[r.Intn(len(weights))]
		dw := weights[r.Intn(len(weights))]
		tpl.Budget = &machine.BudgetSpec{
			DefaultPipeWeight: &w,
			DispatchWeight:    &dw,
		}
		if len(units) > 0 && r.Intn(2) == 0 {
			tpl.Budget.PipeWeights = map[string]float64{units[0]: weights[r.Intn(len(weights))]}
		}
	}
	return tpl
}

func ensure(m map[string]machine.IntRange) map[string]machine.IntRange {
	if m == nil {
		return map[string]machine.IntRange{}
	}
	return m
}

func cloneAtomicOps(seq []machine.AtomicOpSpec) []machine.AtomicOpSpec {
	out := make([]machine.AtomicOpSpec, len(seq))
	for i, a := range seq {
		segs := make([]machine.SegmentSpec, len(a.Segments))
		copy(segs, a.Segments)
		out[i] = machine.AtomicOpSpec{Name: a.Name, Segments: segs}
	}
	return out
}
