package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// ProgramConfig bounds the generated F-lite loop nests.
type ProgramConfig struct {
	// MaxDepth bounds the nesting depth (default 3, max 3).
	MaxDepth int
	// MaxStmts bounds the statements per loop body (default 4).
	MaxStmts int
	// AllowIf permits a loop-index conditional in the innermost body.
	AllowIf bool
	// AllowSubroutine permits the `subroutine name(n)` flavor with a
	// symbolic trip count; otherwise a `program` with a parameter-bound
	// trip count is produced.
	AllowSubroutine bool
}

func (c *ProgramConfig) defaults() {
	if c.MaxDepth <= 0 || c.MaxDepth > 3 {
		c.MaxDepth = 3
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 4
	}
}

// loopVars in nesting order; arrays are dimensioned dim so that the
// off-by-one subscript v+1 stays in bounds for trip counts up to
// dim-1.
var loopVars = []string{"i", "j", "k"}

const (
	arrayDim = 65 // bound n = 64, so v+1 <= 65
	tripN    = 64
)

// progGen carries the state of one program generation.
type progGen struct {
	r       *rand.Rand
	depth   int      // nest depth actually used
	arrays  []string // declared real arrays, all rank == depth
	scalars []string // declared real scalars, initialized up front
	sb      strings.Builder
	indent  int
}

func (g *progGen) line(format string, a ...any) {
	g.sb.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.sb, format, a...)
	g.sb.WriteByte('\n')
}

// subscript returns a full index tuple over the outer `rank` loop
// variables, occasionally bumping one coordinate by one (stencil
// flavor) or transposing a 2-D pair.
func (g *progGen) subscript() string {
	idx := make([]string, g.depth)
	for d := 0; d < g.depth; d++ {
		idx[d] = loopVars[d]
	}
	if g.r.Intn(3) == 0 {
		idx[g.r.Intn(g.depth)] += "+1"
	} else if g.depth == 2 && g.r.Intn(4) == 0 {
		idx[0], idx[1] = idx[1], idx[0]
	}
	return strings.Join(idx, ",")
}

// ref returns a readable operand: an array element, a scalar, or a
// literal constant.
func (g *progGen) ref() string {
	switch g.r.Intn(6) {
	case 0:
		return pick(g.r, g.scalars)
	case 1:
		return pick(g.r, []string{"0.5", "1.0", "2.0", "0.25", "3.0"})
	default:
		return fmt.Sprintf("%s(%s)", pick(g.r, g.arrays), g.subscript())
	}
}

// expr builds a random arithmetic expression of bounded size.
func (g *progGen) expr(size int) string {
	if size <= 1 {
		if g.r.Intn(6) == 0 {
			return fmt.Sprintf("%s(%s)", pick(g.r, []string{"sqrt", "abs"}), g.ref())
		}
		return g.ref()
	}
	left := between(g.r, 1, size-1)
	op := pick(g.r, []string{"+", "-", "*", "*", "/"})
	lhs, rhs := g.expr(left), g.expr(size-left)
	if g.r.Intn(3) == 0 {
		return fmt.Sprintf("(%s) %s %s", lhs, op, rhs)
	}
	return fmt.Sprintf("%s %s %s", lhs, op, rhs)
}

// assign emits one assignment statement: an array update indexed by
// the loop variables, or a scalar reduction.
func (g *progGen) assign() {
	if g.r.Intn(4) == 0 {
		s := pick(g.r, g.scalars)
		g.line("%s = %s + %s", s, s, g.expr(between(g.r, 1, 3)))
		return
	}
	lhs := fmt.Sprintf("%s(%s)", pick(g.r, g.arrays), g.subscript())
	g.line("%s = %s", lhs, g.expr(between(g.r, 2, 5)))
}

// GenProgram generates a parseable F-lite loop-nest program. Two
// flavors: a self-contained `program` with a parameter-bound trip
// count, and (when cfg.AllowSubroutine) a `subroutine name(n)` whose
// trip count stays symbolic. All scalars are initialized before use
// so sem.Analyze accepts the result.
func GenProgram(r *rand.Rand, cfg ProgramConfig) string {
	cfg.defaults()
	g := &progGen{r: r, depth: between(r, 1, cfg.MaxDepth)}
	nArrays := between(r, 2, 4)
	for a := 0; a < nArrays; a++ {
		g.arrays = append(g.arrays, string(rune('u'+a)))
	}
	nScalars := between(r, 1, 3)
	for s := 0; s < nScalars; s++ {
		g.scalars = append(g.scalars, []string{"s", "t", "alpha"}[s])
	}

	name := fmt.Sprintf("gen%04d", r.Intn(10000))
	sub := cfg.AllowSubroutine && r.Intn(3) == 0
	if sub {
		g.line("subroutine %s(n)", name)
	} else {
		g.line("program %s", name)
	}
	g.indent++
	ivars := strings.Join(loopVars[:g.depth], ", ")
	g.line("integer %s, n", ivars)
	if !sub {
		g.line("parameter (n = %d)", tripN)
	}
	dims := strings.TrimSuffix(strings.Repeat(fmt.Sprintf("%d,", arrayDim), g.depth), ",")
	var decls []string
	for _, a := range g.arrays {
		decls = append(decls, fmt.Sprintf("%s(%s)", a, dims))
	}
	decls = append(decls, g.scalars...)
	g.line("real %s", strings.Join(decls, ", "))
	for _, s := range g.scalars {
		g.line("%s = %s", s, pick(r, []string{"0.0", "1.5", "2.5", "0.75"}))
	}

	for d := 0; d < g.depth; d++ {
		g.line("do %s = 1, n", loopVars[d])
		g.indent++
	}
	nStmts := between(r, 1, cfg.MaxStmts)
	for s := 0; s < nStmts; s++ {
		g.assign()
	}
	if cfg.AllowIf && r.Intn(3) == 0 {
		g.line("if (%s .le. %d) then", loopVars[g.depth-1], between(r, 2, tripN-1))
		g.indent++
		g.assign()
		g.indent--
		if r.Intn(2) == 0 {
			g.line("else")
			g.indent++
			g.assign()
			g.indent--
		}
		g.line("end if")
	}
	for d := g.depth - 1; d >= 0; d-- {
		g.indent--
		g.line("end do")
	}
	g.indent--
	g.line("end")
	return g.sb.String()
}
