// Package progen generates random-but-valid inputs for differential
// fuzzing: IR basic blocks, machine specs, and F-lite loop-nest
// programs, all derived deterministically from an int64 seed so every
// fuzz failure is reproducible from the seed alone. A separate
// mutation mode produces *invalid* machine specs that Validate must
// reject — a test of the validator itself.
//
// Everything here is valid by construction: generated blocks are
// SSA-formed with type-consistent operand pools, generated specs pass
// machine.Spec.Validate, and generated programs parse and analyze
// cleanly. The harness in internal/invariants asserts exactly that as
// its first line of defense.
package progen

import "math/rand"

// NewRand returns the deterministic generator for a seed. All progen
// functions draw from a *rand.Rand so corpus entry N is reproducible
// as NewRand(baseSeed + N).
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// pick returns a uniformly random element of xs.
func pick[T any](r *rand.Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// between returns a uniform int in [lo, hi] inclusive.
func between(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}
