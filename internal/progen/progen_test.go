package progen

import (
	"reflect"
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/tetris"
)

// Generated blocks must be well-formed SSA: every instruction carries
// exactly the operand count its opcode demands, every destination is
// fresh, and every source was defined by an earlier instruction.
func TestGenBlockWellFormed(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := NewRand(seed)
		b := GenBlock(r, BlockConfig{AllowControl: true})
		if len(b.Instrs) == 0 {
			t.Fatalf("seed %d: empty block", seed)
		}
		defined := map[ir.Reg]bool{}
		for i, in := range b.Instrs {
			if got, want := len(in.Srcs), in.Op.NumSrcs(); got != want {
				t.Fatalf("seed %d instr %d (%s): %d srcs, want %d", seed, i, in.Op, got, want)
			}
			for _, s := range in.Srcs {
				if !defined[s] {
					t.Fatalf("seed %d instr %d (%s): src r%d used before definition", seed, i, in.Op, s)
				}
			}
			if in.Op.HasDst() {
				if in.Dst == ir.NoReg {
					t.Fatalf("seed %d instr %d (%s): missing dst", seed, i, in.Op)
				}
				if defined[in.Dst] {
					t.Fatalf("seed %d instr %d (%s): dst r%d redefined", seed, i, in.Op, in.Dst)
				}
				defined[in.Dst] = true
			} else if in.Dst != ir.NoReg {
				t.Fatalf("seed %d instr %d (%s): unexpected dst r%d", seed, i, in.Op, in.Dst)
			}
		}
	}
}

// TopoShuffle must emit a dependence-respecting permutation: every
// instruction's dependences (matched structurally) appear before it.
func TestTopoShuffleRespectsDeps(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := NewRand(seed)
		b := GenBlock(r, BlockConfig{})
		for _, mayAlias := range []bool{false, true} {
			p := TopoShuffle(r, b, mayAlias)
			if len(p.Instrs) != len(b.Instrs) {
				t.Fatalf("seed %d: shuffle dropped instructions (%d -> %d)", seed, len(b.Instrs), len(p.Instrs))
			}
			// Dependences recomputed on the permuted block must all
			// point backwards by construction of Deps; the real check
			// is that the multiset of instructions is preserved.
			counts := map[string]int{}
			for _, in := range b.Instrs {
				counts[in.String()]++
			}
			for _, in := range p.Instrs {
				counts[in.String()]--
			}
			for k, c := range counts {
				if c != 0 {
					t.Fatalf("seed %d: instruction multiset changed at %q", seed, k)
				}
			}
		}
	}
}

// Generated specs are valid by construction, build a Machine, and
// price a generated block without error.
func TestGenSpecValid(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := NewRand(seed)
		s := GenSpec(r, SpecConfig{})
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated spec invalid: %v", seed, err)
		}
		m, err := s.Machine()
		if err != nil {
			t.Fatalf("seed %d: Machine(): %v", seed, err)
		}
		b := GenBlock(NewRand(seed+1000), BlockConfig{})
		if _, err := tetris.Estimate(m, b, tetris.Options{}); err != nil {
			t.Fatalf("seed %d: Estimate on generated spec: %v", seed, err)
		}
	}
}

// Every deliberately broken mutation must be rejected by Validate.
func TestInvalidMutationsCaught(t *testing.T) {
	s := GenSpec(NewRand(7), SpecConfig{})
	muts := InvalidMutations(s)
	if len(muts) < 15 {
		t.Fatalf("only %d mutations, want full rule coverage", len(muts))
	}
	seen := map[string]bool{}
	for _, m := range muts {
		if seen[m.Name] {
			t.Errorf("duplicate mutation name %q", m.Name)
		}
		seen[m.Name] = true
		if err := m.Spec.Validate(); err == nil {
			t.Errorf("mutation %q slipped through Validate", m.Name)
		}
	}
}

// Generated programs must parse and analyze cleanly in both flavors.
func TestGenProgramParses(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := NewRand(seed)
		src := GenProgram(r, ProgramConfig{AllowIf: true, AllowSubroutine: true})
		p, err := source.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if _, err := sem.Analyze(p); err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, src)
		}
	}
}

// The same seed must reproduce the same block, spec, and program —
// the property that makes fuzz failures replayable from a seed.
func TestDeterminism(t *testing.T) {
	gen := func(seed int64) (*ir.Block, []byte, string) {
		r := NewRand(seed)
		b := GenBlock(r, BlockConfig{AllowControl: true})
		s := GenSpec(r, SpecConfig{})
		data, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b, data, GenProgram(r, ProgramConfig{AllowIf: true, AllowSubroutine: true})
	}
	for seed := int64(0); seed < 10; seed++ {
		b1, s1, p1 := gen(seed)
		b2, s2, p2 := gen(seed)
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("seed %d: blocks differ", seed)
		}
		if string(s1) != string(s2) {
			t.Fatalf("seed %d: specs differ", seed)
		}
		if p1 != p2 {
			t.Fatalf("seed %d: programs differ", seed)
		}
	}
}

// RenameRegs and SwapCommutativeSrcs must preserve block structure.
func TestMetamorphicHelpers(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := NewRand(seed)
		b := GenBlock(r, BlockConfig{})
		c := SwapCommutativeSrcs(b)
		if len(c.Instrs) != len(b.Instrs) {
			t.Fatalf("seed %d: swap changed length", seed)
		}
		renamed := RenameRegs(r, b)
		if len(renamed.Instrs) != len(b.Instrs) {
			t.Fatalf("seed %d: rename changed length", seed)
		}
		seenDst := map[ir.Reg]bool{}
		for _, in := range renamed.Instrs {
			if in.Op.HasDst() {
				if seenDst[in.Dst] {
					t.Fatalf("seed %d: rename broke SSA", seed)
				}
				seenDst[in.Dst] = true
			}
		}
		if swapped, ok := SwapAdjacentSinks(b, true); ok {
			if len(swapped.Instrs) != len(b.Instrs) {
				t.Fatalf("seed %d: sink swap changed length", seed)
			}
		}
	}
}
