// Package xform implements the program-restructuring side of the
// framework (§3): loop transformations on the F-lite AST — unrolling,
// interchange, tiling (strip-mine and tile), fusion — with legality
// decided by the dependence tests of package deps, and a systematic
// best-first search over transformation sequences ranked by the
// predicted cost (§3.2: "the compiler can utilize graph search
// algorithms, such as the A* algorithm, to choose program
// transformation sequences systematically"). Predictions reuse a
// shared segment cache, realizing the incremental update of §3.3.1.
package xform

import (
	"fmt"

	"perfpredict/internal/deps"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// Path addresses a statement in the program body by indices; each
// step descends into a DO loop's body.
type Path []int

// locate returns the statement list containing the target and the
// index within it.
func locate(p *source.Program, path Path) ([]source.Stmt, int, error) {
	list := p.Body
	for d := 0; d < len(path); d++ {
		i := path[d]
		if i < 0 || i >= len(list) {
			return nil, 0, fmt.Errorf("xform: path %v out of range", path)
		}
		if d == len(path)-1 {
			return list, i, nil
		}
		loop, ok := list[i].(*source.DoLoop)
		if !ok {
			return nil, 0, fmt.Errorf("xform: path %v passes through a non-loop", path)
		}
		list = loop.Body
	}
	return nil, 0, fmt.Errorf("xform: empty path")
}

// loopAt fetches the DO loop at path.
func loopAt(p *source.Program, path Path) (*source.DoLoop, error) {
	list, i, err := locate(p, path)
	if err != nil {
		return nil, err
	}
	loop, ok := list[i].(*source.DoLoop)
	if !ok {
		return nil, fmt.Errorf("xform: path %v is not a loop", path)
	}
	return loop, nil
}

// LoopSite describes one loop found in the program.
type LoopSite struct {
	Path Path
	Loop *source.DoLoop
	// Depth is the number of enclosing loops.
	Depth int
	// Innermost reports a body free of nested loops.
	Innermost bool
	// PerfectParent reports that the loop's body is exactly one nested
	// loop (candidate for interchange with it).
	PerfectParent bool
	// EnclosingVars lists enclosing loop variables, outermost first.
	EnclosingVars []string
}

// FindLoops enumerates the loops of a program (pre-order).
func FindLoops(p *source.Program) []LoopSite {
	var out []LoopSite
	var walk func(list []source.Stmt, prefix Path, vars []string)
	walk = func(list []source.Stmt, prefix Path, vars []string) {
		for i, s := range list {
			loop, ok := s.(*source.DoLoop)
			if !ok {
				continue
			}
			path := append(append(Path{}, prefix...), i)
			site := LoopSite{
				Path:          path,
				Loop:          loop,
				Depth:         len(vars),
				Innermost:     !containsLoop(loop.Body),
				EnclosingVars: append([]string{}, vars...),
			}
			if len(loop.Body) == 1 {
				if _, isLoop := loop.Body[0].(*source.DoLoop); isLoop {
					site.PerfectParent = true
				}
			}
			out = append(out, site)
			walk(loop.Body, path, append(vars, loop.Var))
		}
	}
	walk(p.Body, nil, nil)
	return out
}

func containsLoop(list []source.Stmt) bool {
	for _, s := range list {
		switch x := s.(type) {
		case *source.DoLoop:
			return true
		case *source.IfStmt:
			if containsLoop(x.Then) || containsLoop(x.Else) {
				return true
			}
		}
	}
	return false
}

// substituteVar replaces every read of variable v in e by repl.
func substituteVar(e source.Expr, v string, repl source.Expr) source.Expr {
	switch x := e.(type) {
	case *source.VarRef:
		if x.Name == v {
			return source.CloneExpr(repl)
		}
		return x
	case *source.ArrayRef:
		for i := range x.Idx {
			x.Idx[i] = substituteVar(x.Idx[i], v, repl)
		}
		return x
	case *source.BinExpr:
		x.L = substituteVar(x.L, v, repl)
		x.R = substituteVar(x.R, v, repl)
		return x
	case *source.UnExpr:
		x.X = substituteVar(x.X, v, repl)
		return x
	case *source.IntrinsicCall:
		for i := range x.Args {
			x.Args[i] = substituteVar(x.Args[i], v, repl)
		}
		return x
	default:
		return e
	}
}

func substituteStmts(list []source.Stmt, v string, repl source.Expr) {
	for _, s := range list {
		switch x := s.(type) {
		case *source.Assign:
			x.LHS = substituteVar(x.LHS, v, repl)
			x.RHS = substituteVar(x.RHS, v, repl)
		case *source.DoLoop:
			x.Lb = substituteVar(x.Lb, v, repl)
			x.Ub = substituteVar(x.Ub, v, repl)
			if x.Step != nil {
				x.Step = substituteVar(x.Step, v, repl)
			}
			if x.Var != v {
				substituteStmts(x.Body, v, repl)
			}
		case *source.IfStmt:
			x.Cond = substituteVar(x.Cond, v, repl)
			substituteStmts(x.Then, v, repl)
			substituteStmts(x.Else, v, repl)
		case *source.CallStmt:
			for i := range x.Args {
				x.Args[i] = substituteVar(x.Args[i], v, repl)
			}
		}
	}
}

// Unroll replicates the loop body factor times, stepping the loop by
// factor·step, and appends a remainder loop covering the leftover
// iterations. Unrolling reorders nothing, so it is always legal.
func Unroll(p *source.Program, path Path, factor int) (*source.Program, error) {
	if factor < 2 {
		return nil, fmt.Errorf("xform: unroll factor %d", factor)
	}
	c := source.CloneProgram(p)
	loop, err := loopAt(c, path)
	if err != nil {
		return nil, err
	}
	step := int64(1)
	if loop.Step != nil {
		tbl, err := sem.Analyze(c)
		if err != nil {
			return nil, err
		}
		sv, ok := tbl.IntConst(loop.Step)
		if !ok || sv == 0 {
			return nil, fmt.Errorf("xform: unroll requires a constant step")
		}
		step = sv
	}
	if step < 0 {
		return nil, fmt.Errorf("xform: unroll of downward loops unsupported")
	}
	f := int64(factor)

	var newBody []source.Stmt
	for k := int64(0); k < f; k++ {
		copyBody := source.CloneStmts(loop.Body)
		if k > 0 {
			repl := &source.BinExpr{
				Kind: source.BinAdd,
				L:    &source.VarRef{Name: loop.Var},
				R:    &source.NumLit{Value: float64(k * step)},
			}
			substituteStmts(copyBody, loop.Var, repl)
		}
		newBody = append(newBody, copyBody...)
	}

	// Remainder loop: starts where the main loop stopped:
	// lb + ((ub−lb+step)/(f·step))·(f·step).
	trips := &source.BinExpr{Kind: source.BinDiv,
		L: &source.BinExpr{Kind: source.BinAdd,
			L: &source.BinExpr{Kind: source.BinSub, L: source.CloneExpr(loop.Ub), R: source.CloneExpr(loop.Lb)},
			R: &source.NumLit{Value: float64(step)}},
		R: &source.NumLit{Value: float64(f * step)},
	}
	remLb := &source.BinExpr{Kind: source.BinAdd,
		L: source.CloneExpr(loop.Lb),
		R: &source.BinExpr{Kind: source.BinMul, L: trips, R: &source.NumLit{Value: float64(f * step)}},
	}
	remainder := &source.DoLoop{
		Var:  loop.Var,
		Lb:   remLb,
		Ub:   source.CloneExpr(loop.Ub),
		Step: cloneStep(loop.Step),
		Body: source.CloneStmts(loop.Body),
		Pos:  loop.Pos,
	}

	// Main loop: ub − (f−1)·step with step f·step.
	loop.Ub = &source.BinExpr{Kind: source.BinSub,
		L: loop.Ub,
		R: &source.NumLit{Value: float64((f - 1) * step)},
	}
	loop.Step = &source.NumLit{Value: float64(f * step)}
	loop.Body = newBody

	list, i, err := locate(c, path)
	if err != nil {
		return nil, err
	}
	newList := append(append(append([]source.Stmt{}, list[:i+1]...), remainder), list[i+1:]...)
	if err := replaceList(c, path, newList); err != nil {
		return nil, err
	}
	return c, nil
}

func cloneStep(s source.Expr) source.Expr {
	if s == nil {
		return nil
	}
	return source.CloneExpr(s)
}

// replaceList rewrites the statement list containing the target of
// path.
func replaceList(p *source.Program, path Path, newList []source.Stmt) error {
	if len(path) == 1 {
		p.Body = newList
		return nil
	}
	parent, err := loopAt(p, path[:len(path)-1])
	if err != nil {
		return err
	}
	parent.Body = newList
	return nil
}

// Interchange swaps a loop with the single loop its body consists of.
// Legal when the nest is perfect, the inner bounds do not reference the
// outer variable, and no dependence direction vector forbids the swap.
func Interchange(p *source.Program, path Path) (*source.Program, error) {
	c := source.CloneProgram(p)
	outer, err := loopAt(c, path)
	if err != nil {
		return nil, err
	}
	if len(outer.Body) != 1 {
		return nil, fmt.Errorf("xform: interchange requires a perfect nest")
	}
	inner, ok := outer.Body[0].(*source.DoLoop)
	if !ok {
		return nil, fmt.Errorf("xform: interchange requires a nested loop")
	}
	if exprUsesVar(inner.Lb, outer.Var) || exprUsesVar(inner.Ub, outer.Var) {
		return nil, fmt.Errorf("xform: inner bounds depend on the outer variable")
	}
	tbl, err := sem.Analyze(c)
	if err != nil {
		return nil, err
	}
	ds := deps.Analyze(tbl, []*source.DoLoop{outer, inner}, inner.Body)
	if !deps.InterchangeLegal(ds, 0, 1) {
		return nil, fmt.Errorf("xform: interchange is illegal (dependence)")
	}
	outer.Var, inner.Var = inner.Var, outer.Var
	outer.Lb, inner.Lb = inner.Lb, outer.Lb
	outer.Ub, inner.Ub = inner.Ub, outer.Ub
	outer.Step, inner.Step = inner.Step, outer.Step
	return c, nil
}

func exprUsesVar(e source.Expr, v string) bool {
	used := false
	var walk func(x source.Expr)
	walk = func(x source.Expr) {
		switch y := x.(type) {
		case *source.VarRef:
			if y.Name == v {
				used = true
			}
		case *source.ArrayRef:
			for _, ix := range y.Idx {
				walk(ix)
			}
		case *source.BinExpr:
			walk(y.L)
			walk(y.R)
		case *source.UnExpr:
			walk(y.X)
		case *source.IntrinsicCall:
			for _, a := range y.Args {
				walk(a)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return used
}

// Tile strip-mines a loop into a tile loop and an element loop of the
// given size (always legal on its own). A fresh integer control
// variable `<var>_t` is declared.
func Tile(p *source.Program, path Path, size int) (*source.Program, error) {
	if size < 2 {
		return nil, fmt.Errorf("xform: tile size %d", size)
	}
	c := source.CloneProgram(p)
	loop, err := loopAt(c, path)
	if err != nil {
		return nil, err
	}
	if loop.Step != nil {
		return nil, fmt.Errorf("xform: tiling stepped loops unsupported")
	}
	tileVar := loop.Var + "_t"
	if varDeclared(c, tileVar) {
		tileVar = tileVar + "t"
	}
	c.Decls = append(c.Decls, &source.Decl{
		Type:  source.TypeInteger,
		Names: []*source.DeclName{{Name: tileVar}},
	})
	inner := &source.DoLoop{
		Var: loop.Var,
		Lb:  &source.VarRef{Name: tileVar},
		Ub: &source.IntrinsicCall{Name: "min", Args: []source.Expr{
			&source.BinExpr{Kind: source.BinAdd,
				L: &source.VarRef{Name: tileVar},
				R: &source.NumLit{Value: float64(size - 1)}},
			source.CloneExpr(loop.Ub),
		}},
		Body: loop.Body,
		Pos:  loop.Pos,
	}
	loop.Var = tileVar
	loop.Step = &source.NumLit{Value: float64(size)}
	loop.Body = []source.Stmt{inner}
	return c, nil
}

func varDeclared(p *source.Program, name string) bool {
	for _, d := range p.Decls {
		for _, n := range d.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

// Distribute splits the loop at path into two loops after statement
// `cut` (loop fission). Distribution is the inverse of fusion: it is
// legal exactly when fusing the two result loops back would be, i.e.
// no dependence runs from the second part to a later iteration of the
// first.
func Distribute(p *source.Program, path Path, cut int) (*source.Program, error) {
	c := source.CloneProgram(p)
	loop, err := loopAt(c, path)
	if err != nil {
		return nil, err
	}
	if cut <= 0 || cut >= len(loop.Body) {
		return nil, fmt.Errorf("xform: cut %d outside body of %d statements", cut, len(loop.Body))
	}
	second := &source.DoLoop{
		Var:  loop.Var,
		Lb:   source.CloneExpr(loop.Lb),
		Ub:   source.CloneExpr(loop.Ub),
		Step: cloneStep(loop.Step),
		Body: loop.Body[cut:],
		Pos:  loop.Pos,
	}
	loop.Body = loop.Body[:cut]
	tbl, err := sem.Analyze(c)
	if err != nil {
		return nil, err
	}
	if !deps.FusionLegal(tbl, loop, second) {
		return nil, fmt.Errorf("xform: distribution at %d is illegal (loop-carried dependence across the cut)", cut)
	}
	list, i, err := locate(c, path)
	if err != nil {
		return nil, err
	}
	newList := append(append(append([]source.Stmt{}, list[:i+1]...), second), list[i+1:]...)
	if err := replaceList(c, path, newList); err != nil {
		return nil, err
	}
	return c, nil
}

// Fuse merges the loop at path with the immediately following loop in
// the same statement list, when legal.
func Fuse(p *source.Program, path Path) (*source.Program, error) {
	c := source.CloneProgram(p)
	list, i, err := locate(c, path)
	if err != nil {
		return nil, err
	}
	if i+1 >= len(list) {
		return nil, fmt.Errorf("xform: no following loop to fuse")
	}
	first, ok1 := list[i].(*source.DoLoop)
	second, ok2 := list[i+1].(*source.DoLoop)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("xform: fusion requires two adjacent loops")
	}
	tbl, err := sem.Analyze(c)
	if err != nil {
		return nil, err
	}
	if !deps.FusionLegal(tbl, first, second) {
		return nil, fmt.Errorf("xform: fusion is illegal")
	}
	first.Body = append(first.Body, second.Body...)
	newList := append(append([]source.Stmt{}, list[:i+1]...), list[i+2:]...)
	if err := replaceList(c, path, newList); err != nil {
		return nil, err
	}
	return c, nil
}
