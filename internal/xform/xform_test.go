package xform

import (
	"strings"
	"testing"

	"perfpredict/internal/interp"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

func parse(t *testing.T, src string) *source.Program {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Analyze(p); err != nil {
		t.Fatalf("sem: %v", err)
	}
	return p
}

// runValues executes a program and returns a named array.
func runValues(t *testing.T, p *source.Program, arr string, args map[string]float64) []float64 {
	t.Helper()
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v\n%s", err, source.PrintProgram(p))
	}
	r := interp.New(p, tbl, interp.Options{})
	for k, v := range args {
		r.SetScalar(k, v)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, source.PrintProgram(p))
	}
	return r.Array(arr)
}

func sameValues(t *testing.T, a, b []float64, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

const daxpySrc = `
program daxpy
  integer i, n
  parameter (n = 103)
  real x(103), y(103)
  do i = 1, n
    y(i) = y(i) + 2.0 * x(i) + real(i)
  end do
end
`

func TestFindLoops(t *testing.T) {
	p := parse(t, `
program p
  integer i, j, n
  parameter (n = 8)
  real a(8,8)
  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0
    end do
  end do
  do i = 1, n
    a(i,i) = 2.0
  end do
end
`)
	sites := FindLoops(p)
	if len(sites) != 3 {
		t.Fatalf("sites: %d", len(sites))
	}
	if !sites[0].PerfectParent || sites[0].Innermost {
		t.Errorf("outer site: %+v", sites[0])
	}
	if !sites[1].Innermost || sites[1].Depth != 1 {
		t.Errorf("inner site: %+v", sites[1])
	}
	if !sites[2].Innermost || sites[2].Depth != 0 {
		t.Errorf("second loop site: %+v", sites[2])
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	p := parse(t, daxpySrc)
	ref := runValues(t, p, "y", nil)
	for _, f := range []int{2, 3, 4, 8} {
		u, err := Unroll(p, Path{0}, f)
		if err != nil {
			t.Fatalf("unroll %d: %v", f, err)
		}
		got := runValues(t, u, "y", nil)
		sameValues(t, ref, got, "unroll")
	}
}

func TestUnrollWithStep(t *testing.T) {
	p := parse(t, `
program p
  integer i, n
  parameter (n = 50)
  real a(100)
  do i = 1, n, 3
    a(i) = real(i)
  end do
end
`)
	ref := runValues(t, p, "a", nil)
	u, err := Unroll(p, Path{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := runValues(t, u, "a", nil)
	sameValues(t, ref, got, "unroll-step")
}

func TestUnrollStructure(t *testing.T) {
	p := parse(t, daxpySrc)
	u, err := Unroll(p, Path{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	main := u.Body[0].(*source.DoLoop)
	if len(main.Body) != 4 {
		t.Errorf("main body: %d stmts", len(main.Body))
	}
	if _, ok := u.Body[1].(*source.DoLoop); !ok {
		t.Error("missing remainder loop")
	}
	out := source.PrintProgram(u)
	if !strings.Contains(out, "(i + 3)") && !strings.Contains(out, "(i+3)") {
		t.Errorf("missing substituted body:\n%s", out)
	}
}

func TestInterchangePreservesSemantics(t *testing.T) {
	src := `
program p
  integer i, j, n
  parameter (n = 12)
  real a(12,12), b(12,12)
  do i = 1, n
    do j = 1, n
      a(i,j) = b(i,j) * 2.0 + real(i) + real(j) * 10.0
    end do
  end do
end
`
	p := parse(t, src)
	ref := runValues(t, p, "a", nil)
	ic, err := Interchange(p, Path{0})
	if err != nil {
		t.Fatal(err)
	}
	got := runValues(t, ic, "a", nil)
	sameValues(t, ref, got, "interchange")
	// Structure: outer var is now j.
	if ic.Body[0].(*source.DoLoop).Var != "j" {
		t.Errorf("outer var: %s", ic.Body[0].(*source.DoLoop).Var)
	}
}

func TestInterchangeIllegalWavefront(t *testing.T) {
	src := `
program p
  integer i, j, n
  parameter (n = 12)
  real a(13,13)
  do i = 2, n
    do j = 1, n - 1
      a(i,j) = a(i-1,j+1) + 1.0
    end do
  end do
end
`
	p := parse(t, src)
	if _, err := Interchange(p, Path{0}); err == nil {
		t.Error("(1,-1) wavefront interchange must be rejected")
	}
}

func TestInterchangeTriangularRejected(t *testing.T) {
	src := `
program p
  integer i, j, n
  parameter (n = 12)
  real a(12,12)
  do i = 1, n
    do j = 1, i
      a(i,j) = 1.0
    end do
  end do
end
`
	p := parse(t, src)
	if _, err := Interchange(p, Path{0}); err == nil {
		t.Error("triangular interchange must be rejected")
	}
}

func TestTilePreservesSemantics(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 103)
  real a(103)
  do i = 1, n
    a(i) = real(i) * 3.0
  end do
end
`
	p := parse(t, src)
	ref := runValues(t, p, "a", nil)
	for _, size := range []int{4, 16, 50} {
		tl, err := Tile(p, Path{0}, size)
		if err != nil {
			t.Fatalf("tile %d: %v", size, err)
		}
		got := runValues(t, tl, "a", nil)
		sameValues(t, ref, got, "tile")
		// New control variable declared.
		if _, err := sem.Analyze(tl); err != nil {
			t.Fatalf("tiled program fails sem: %v", err)
		}
	}
}

func TestFusePreservesSemantics(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 64)
  real a(64), b(64), c(64)
  do i = 1, n
    a(i) = real(i)
  end do
  do i = 1, n
    c(i) = a(i) * 2.0
  end do
end
`
	p := parse(t, src)
	ref := runValues(t, p, "c", nil)
	f, err := Fuse(p, Path{0})
	if err != nil {
		t.Fatal(err)
	}
	got := runValues(t, f, "c", nil)
	sameValues(t, ref, got, "fuse")
	if len(f.Body) != 1 {
		t.Errorf("fused body: %d stmts", len(f.Body))
	}
}

func TestFuseIllegal(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 64)
  real a(65), c(64)
  do i = 1, n
    a(i) = real(i)
  end do
  do i = 1, n
    c(i) = a(i+1) * 2.0
  end do
end
`
	p := parse(t, src)
	if _, err := Fuse(p, Path{0}); err == nil {
		t.Error("backward fusion must be rejected")
	}
}

func TestMovesEnumeration(t *testing.T) {
	p := parse(t, `
program p
  integer i, j, n
  parameter (n = 32)
  real a(32,32), b(32)
  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0
    end do
  end do
  do i = 1, n
    b(i) = 2.0
  end do
end
`)
	opt := SearchOptions{}
	opt.defaults()
	moves := Moves(p, opt)
	kinds := map[string]int{}
	for _, m := range moves {
		kinds[m.Kind]++
	}
	if kinds["unroll"] == 0 || kinds["interchange"] == 0 || kinds["tile"] == 0 {
		t.Errorf("move kinds: %v", kinds)
	}
}

func TestSearchImprovesDaxpy(t *testing.T) {
	p := parse(t, daxpySrc)
	res, err := Search(p, SearchOptions{
		Machine:  machine.NewPOWER1(),
		MaxNodes: 20,
		MaxDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > res.InitialCost {
		t.Errorf("search worsened cost: %v → %v", res.InitialCost, res.BestCost)
	}
	if res.Explored == 0 {
		t.Error("nothing explored")
	}
	// The best program must still compute the same values.
	ref := runValues(t, p, "y", nil)
	got := runValues(t, res.Best, "y", nil)
	sameValues(t, ref, got, "search-best")
}

func TestSearchSharesSegmentCache(t *testing.T) {
	p := parse(t, daxpySrc)
	res, err := Search(p, SearchOptions{
		Machine:  machine.NewPOWER1(),
		MaxNodes: 15,
		MaxDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Errorf("incremental update never hit the cache (hits=%d misses=%d)", res.CacheHits, res.CacheMisses)
	}
}

func TestApplyUnknownMove(t *testing.T) {
	p := parse(t, daxpySrc)
	if _, err := Apply(p, Move{Kind: "banana"}); err == nil {
		t.Error("unknown move accepted")
	}
}

func TestPathErrors(t *testing.T) {
	p := parse(t, daxpySrc)
	if _, err := Unroll(p, Path{5}, 2); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := Unroll(p, Path{0}, 1); err == nil {
		t.Error("factor 1 accepted")
	}
	if _, err := loopAt(p, Path{}); err == nil {
		t.Error("empty path accepted")
	}
}

func TestTransformedProgramsStillPrint(t *testing.T) {
	p := parse(t, daxpySrc)
	u, err := Unroll(p, Path{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := source.PrintProgram(u)
	if _, err := source.Parse(out); err != nil {
		t.Errorf("unrolled program does not re-parse: %v\n%s", err, out)
	}
}

func TestDistributePreservesSemantics(t *testing.T) {
	src := `
program p
  integer i, n
  parameter (n = 64)
  real a(64), b(64), c(64)
  do i = 1, n
    a(i) = real(i) * 2.0
    c(i) = a(i) + 1.0
  end do
end
`
	p := parse(t, src)
	ref := runValues(t, p, "c", nil)
	d, err := Distribute(p, Path{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Body) != 2 {
		t.Fatalf("body: %d stmts\n%s", len(d.Body), source.PrintProgram(d))
	}
	got := runValues(t, d, "c", nil)
	sameValues(t, ref, got, "distribute")
	// Distribution then fusion round-trips to equivalent values.
	f, err := Fuse(d, Path{0})
	if err != nil {
		t.Fatalf("re-fusion: %v", err)
	}
	got2 := runValues(t, f, "c", nil)
	sameValues(t, ref, got2, "refuse")
}

func TestDistributeIllegalBackwardDep(t *testing.T) {
	// S2 reads a(i+1), which S1 writes at a LATER iteration: after
	// distribution every a(i) write precedes every read — semantics
	// change.
	src := `
program p
  integer i, n
  parameter (n = 63)
  real a(64), c(64)
  do i = 1, n
    a(i) = real(i)
    c(i) = a(i+1) + 1.0
  end do
end
`
	p := parse(t, src)
	if _, err := Distribute(p, Path{0}, 1); err == nil {
		t.Error("backward-dependence distribution accepted")
	}
}

func TestDistributeBadCut(t *testing.T) {
	p := parse(t, daxpySrc)
	if _, err := Distribute(p, Path{0}, 0); err == nil {
		t.Error("cut 0 accepted")
	}
	if _, err := Distribute(p, Path{0}, 5); err == nil {
		t.Error("out-of-range cut accepted")
	}
}

func TestMovesIncludeDistribute(t *testing.T) {
	p := parse(t, `
program p
  integer i, n
  parameter (n = 16)
  real a(16), b(16)
  do i = 1, n
    a(i) = 1.0
    b(i) = 2.0
  end do
end
`)
	opt := SearchOptions{}
	opt.defaults()
	found := false
	for _, m := range Moves(p, opt) {
		if m.Kind == "distribute" {
			found = true
		}
	}
	if !found {
		t.Error("distribute move not proposed")
	}
}
