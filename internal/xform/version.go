package xform

import (
	"fmt"

	"perfpredict/internal/source"
)

// Versioned builds a two-version program guarded by a run-time test
// (§3.4: "multiple branches of instructions guided by well-chosen
// run-time tests can be effective for programs whose performances
// depend on input data"). When the guard holds, the first variant's
// body runs; otherwise the second's. The variants must be versions of
// the same program unit (same dummy parameters); declarations are
// merged so transformation-introduced control variables (tile vars)
// survive.
func Versioned(first, second *source.Program, guard source.Expr) (*source.Program, error) {
	if len(first.Params) != len(second.Params) {
		return nil, fmt.Errorf("xform: versioned variants disagree on parameters")
	}
	for i := range first.Params {
		if first.Params[i] != second.Params[i] {
			return nil, fmt.Errorf("xform: versioned variants disagree on parameter %d", i)
		}
	}
	out := source.CloneProgram(first)
	alt := source.CloneProgram(second)
	// Merge declarations the second variant added.
	declared := map[string]bool{}
	for _, d := range out.Decls {
		for _, n := range d.Names {
			declared[n.Name] = true
		}
	}
	for _, d := range alt.Decls {
		var extra []*source.DeclName
		for _, n := range d.Names {
			if !declared[n.Name] {
				declared[n.Name] = true
				extra = append(extra, n)
			}
		}
		if len(extra) > 0 {
			out.Decls = append(out.Decls, &source.Decl{Type: d.Type, Names: extra})
		}
	}
	out.Body = []source.Stmt{&source.IfStmt{
		Cond: source.CloneExpr(guard),
		Then: out.Body,
		Else: alt.Body,
	}}
	return out, nil
}

// ThresholdGuard builds the guard `v .lt. threshold` — the run-time
// test derived from a symbolic-comparison crossover.
func ThresholdGuard(varName string, threshold float64) source.Expr {
	return &source.BinExpr{
		Kind: source.BinLT,
		L:    &source.VarRef{Name: varName},
		R:    &source.NumLit{Value: float64(int64(threshold) + 1)},
	}
}
