package xform

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/explain"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/workpool"
)

// Move is one applicable transformation instance.
type Move struct {
	Kind  string // "unroll", "interchange", "tile", "fuse"
	Path  Path
	Param int // factor / size
}

func (m Move) String() string {
	if m.Param > 0 {
		return fmt.Sprintf("%s%d@%v", m.Kind, m.Param, m.Path)
	}
	return fmt.Sprintf("%s@%v", m.Kind, m.Path)
}

// Apply performs the move on a fresh clone.
func Apply(p *source.Program, m Move) (*source.Program, error) {
	switch m.Kind {
	case "unroll":
		return Unroll(p, m.Path, m.Param)
	case "interchange":
		return Interchange(p, m.Path)
	case "tile":
		return Tile(p, m.Path, m.Param)
	case "fuse":
		return Fuse(p, m.Path)
	case "distribute":
		return Distribute(p, m.Path, m.Param)
	default:
		return nil, fmt.Errorf("xform: unknown move %q", m.Kind)
	}
}

// SearchOptions configure the transformation search.
type SearchOptions struct {
	Machine *machine.Machine
	// Nominal assigns values to performance-expression unknowns when
	// ranking variants; unknowns absent from the map default to
	// DefaultUnknown.
	Nominal map[symexpr.Var]float64
	// DefaultUnknown is the value assigned to unknowns missing from
	// Nominal. nil means 100; a pointer to 0 is honored as an explicit
	// zero (it is a pointer precisely so zero is expressible).
	DefaultUnknown *float64
	// MaxNodes bounds the number of expanded states (default 40).
	MaxNodes int
	// MaxDepth bounds the transformation sequence length (default 3).
	MaxDepth int
	// UnrollFactors and TileSizes to propose (defaults {2,4} / {16}).
	UnrollFactors []int
	TileSizes     []int
	// AggOpt overrides the aggregation options. nil means
	// aggregate.DefaultOptions(); an explicit zero-valued Options is
	// honored as given.
	AggOpt *aggregate.Options
	// DisableFuse/DisableTile trim the move set.
	DisableFuse bool
	DisableTile bool
	// DisableNestCache turns the nest-level cost cache into a counting
	// no-op: every nest of every candidate is re-priced from scratch
	// (the pre-incremental behavior), while the re-pricing and tetris
	// counters keep reporting — the baseline side of a before/after
	// comparison. Results are identical either way.
	DisableNestCache bool
	// Caches are the segment and nest caches the search prices
	// through. Nil members get fresh private instances (the default);
	// passing warm shared caches carries priced segments and nests
	// across searches — a long-running service reuses one pair for
	// every request. Result counters are reported as deltas against
	// the caches' stats at entry, so they stay per-search even on a
	// shared instance (concurrent searches on the same caches may
	// bleed into each other's deltas; the costs themselves never
	// depend on cache state).
	Caches aggregate.Caches
	// Progress, when non-nil, is called after every node expansion
	// with the number of states expanded so far and the incumbent
	// (best fully priced) cost. It runs on the search goroutine, so
	// implementations must be fast and must not call back into the
	// search; it exists so long-running searches can be observed —
	// async job status in the serving layer reads exactly this.
	Progress func(explored int, best float64)
	// Workers bounds the concurrency of neighbor expansion: the
	// candidate variants of each expanded state are transformed and
	// priced on a worker pool sharing the search's segment and nest
	// caches. <= 0 uses runtime.GOMAXPROCS(0); 1 forces serial
	// expansion. Results are identical for any worker count:
	// candidates are enumerated, deduplicated and pushed in
	// deterministic move order, and cached costs do not depend on fill
	// interleaving (nest entries splice identically wherever they were
	// captured).
	Workers int
}

func (o *SearchOptions) defaults() {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 40
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if len(o.UnrollFactors) == 0 {
		o.UnrollFactors = []int{2, 4}
	}
	if len(o.TileSizes) == 0 {
		o.TileSizes = []int{16}
	}
}

// defaultUnknown resolves the DefaultUnknown option (nil → 100).
func (o *SearchOptions) defaultUnknown() float64 {
	if o.DefaultUnknown != nil {
		return *o.DefaultUnknown
	}
	return 100
}

// aggOptions resolves the AggOpt option (nil → DefaultOptions).
func (o *SearchOptions) aggOptions() aggregate.Options {
	if o.AggOpt != nil {
		return *o.AggOpt
	}
	return aggregate.DefaultOptions()
}

// SearchResult reports the best variant found.
type SearchResult struct {
	Best        *source.Program
	BestCost    float64
	InitialCost float64
	// InitialMemory and BestMemory are the memory-hierarchy share of
	// InitialCost and BestCost at the same nominal point; zero when the
	// machine declares no active hierarchy.
	InitialMemory float64
	BestMemory    float64
	Sequence      []Move
	Explored      int
	// CacheHits/CacheMisses count straight-line segment lookups in the
	// search's shared SegCache.
	CacheHits   int
	CacheMisses int
	// NestHits counts loop nests whose whole cost was spliced from the
	// nest cache; NestMisses counts nests actually re-priced (for a
	// counting-mode cache every nest is a miss). TetrisCalls counts
	// scheduler invocations performed — the work the nest cache avoids.
	NestHits    int
	NestMisses  int
	TetrisCalls int
	// Bottleneck names the first-saturating unit kind of the winning
	// variant (with its utilization), diagnosed once on Best after the
	// search settles. Empty when the search was cancelled or the
	// diagnosis failed — the ranking itself never depends on it.
	Bottleneck     string
	BottleneckUtil float64
}

// Moves enumerates the legal transformations of a program. Legality
// for interchange/fusion is verified during Apply; here cheap
// structural filters keep the branching factor small.
func Moves(p *source.Program, opt SearchOptions) []Move {
	var out []Move
	sites := FindLoops(p)
	for _, s := range sites {
		if s.Innermost {
			for _, f := range opt.UnrollFactors {
				out = append(out, Move{Kind: "unroll", Path: s.Path, Param: f})
			}
		}
		if s.PerfectParent {
			out = append(out, Move{Kind: "interchange", Path: s.Path})
		}
		if !opt.DisableTile && !s.Innermost && s.Loop.Step == nil {
			for _, ts := range opt.TileSizes {
				out = append(out, Move{Kind: "tile", Path: s.Path, Param: ts})
			}
		}
		if s.Innermost && len(s.Loop.Body) >= 2 {
			out = append(out, Move{Kind: "distribute", Path: s.Path, Param: 1})
		}
	}
	if !opt.DisableFuse {
		// Adjacent sibling loops.
		for _, s := range sites {
			list, i, err := locate(p, s.Path)
			if err != nil || i+1 >= len(list) {
				continue
			}
			if _, ok := list[i+1].(*source.DoLoop); ok {
				out = append(out, Move{Kind: "fuse", Path: s.Path})
			}
		}
	}
	return out
}

// Predict evaluates the aggregated cost of a program at the nominal
// assignment, sharing the given segment cache.
func Predict(p *source.Program, opt SearchOptions, cache *aggregate.SegCache) (float64, error) {
	c, _, err := predictWith(p, opt, aggregate.Caches{Seg: cache}, nil)
	return c, err
}

// predictWith prices a program through the search's shared caches,
// passing the advisory dirty-path hint to the incremental estimator.
// It returns the total predicted cycles and the memory-hierarchy share
// of that total (zero for machines without an active hierarchy), both
// at the nominal assignment.
func predictWith(p *source.Program, opt SearchOptions, caches aggregate.Caches, dirty [][]int) (cost, mem float64, err error) {
	tbl, err := sem.Analyze(p)
	if err != nil {
		return 0, 0, err
	}
	res, err := aggregate.PriceIncremental(p, dirty, caches, tbl, opt.Machine, opt.aggOptions())
	if err != nil {
		return 0, 0, err
	}
	assign := map[symexpr.Var]float64{}
	for _, v := range res.Cost.Vars() {
		if val, ok := opt.Nominal[v]; ok {
			assign[v] = val
		} else {
			assign[v] = opt.defaultUnknown()
		}
	}
	for _, v := range res.Memory.Vars() {
		if _, ok := assign[v]; ok {
			continue
		}
		if val, ok := opt.Nominal[v]; ok {
			assign[v] = val
		} else {
			assign[v] = opt.defaultUnknown()
		}
	}
	cost, err = res.Cost.Eval(assign)
	if err != nil {
		return 0, 0, err
	}
	mem, err = res.Memory.Eval(assign)
	if err != nil {
		return 0, 0, err
	}
	return cost, mem, nil
}

// state is one search node.
type state struct {
	prog *source.Program
	cost float64
	mem  float64
	seq  []Move
}

// candidate is one neighbor being expanded (see Search's three-step
// expansion).
type candidate struct {
	prog *source.Program
	fp   source.Fingerprint
	cost float64
	mem  float64
	skip bool
}

type stateHeap []*state

func (h stateHeap) Len() int           { return len(h) }
func (h stateHeap) Less(a, b int) bool { return h[a].cost < h[b].cost }
func (h stateHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *stateHeap) Push(x any)        { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search explores transformation sequences best-first, ranking states
// by predicted cost; ties and pruning make it the practical variant of
// the paper's A* proposal (the heuristic lower bound is zero). It
// returns the cheapest variant encountered.
func Search(p *source.Program, opt SearchOptions) (SearchResult, error) {
	return SearchCtx(context.Background(), p, opt)
}

// SearchCtx is Search under a context: cancellation is checked once
// per node expansion (before each frontier pop and between the
// expansion fan-outs), so the search returns within one
// node-expansion of ctx expiring. On cancellation it returns the best
// state found so far — a valid, fully priced variant reachable by the
// reported Sequence, with counters covering the work actually done —
// alongside ctx.Err(); callers that only care about a complete search
// should treat a non-nil error as failure.
func SearchCtx(ctx context.Context, p *source.Program, opt SearchOptions) (SearchResult, error) {
	opt.defaults()
	if opt.Machine == nil {
		return SearchResult{}, fmt.Errorf("xform: SearchOptions.Machine is required")
	}
	if err := ctx.Err(); err != nil {
		return SearchResult{}, err
	}
	caches := opt.Caches
	if caches.Seg == nil {
		caches.Seg = aggregate.NewSegCache()
	}
	if caches.Nest == nil {
		if opt.DisableNestCache {
			caches.Nest = aggregate.NewNestCacheCounting()
		} else {
			caches.Nest = aggregate.NewNestCache()
		}
	}
	// Counter baselines: on shared warm caches the totals are
	// cumulative across searches, so report deltas.
	hits0, misses0 := caches.Seg.Stats()
	nestHits0, nestMisses0 := caches.Nest.Stats()
	tetris0 := caches.Nest.TetrisCalls()
	initCost, initMem, err := predictWith(p, opt, caches, nil)
	if err != nil {
		return SearchResult{}, err
	}
	start := &state{prog: p, cost: initCost, mem: initMem}
	best := start
	visited := map[source.Fingerprint]bool{source.FingerprintProgram(p): true}
	h := &stateHeap{start}
	explored := 0
	var ctxErr error
	for h.Len() > 0 && explored < opt.MaxNodes {
		if ctxErr = ctx.Err(); ctxErr != nil {
			break
		}
		cur := heap.Pop(h).(*state)
		explored++
		if opt.Progress != nil {
			opt.Progress(explored, best.cost)
		}
		if len(cur.seq) >= opt.MaxDepth {
			continue
		}
		moves := Moves(cur.prog, opt)
		// Deterministic order.
		sort.Slice(moves, func(i, j int) bool { return moves[i].String() < moves[j].String() })
		// Expand neighbors in three steps — parallel transform, serial
		// dedup, parallel pricing — then fold the survivors back into
		// the frontier in move order, so the heap and the running best
		// are independent of worker interleaving. A cancellation inside
		// either fan-out abandons the half-expanded neighbor set
		// without folding it in: every state on the heap and the
		// running best stay fully priced.
		cands := make([]candidate, len(moves))
		ctxErr = workpool.RunCtx(ctx, len(moves), opt.Workers, func(i int) {
			next, err := Apply(cur.prog, moves[i])
			if err != nil {
				cands[i].skip = true // illegal move
				return
			}
			cands[i].prog = next
			cands[i].fp = source.FingerprintProgram(next)
		})
		if ctxErr != nil {
			break
		}
		for i := range cands {
			if cands[i].skip {
				continue
			}
			if visited[cands[i].fp] {
				cands[i].skip = true
				continue
			}
			visited[cands[i].fp] = true
		}
		ctxErr = workpool.RunCtx(ctx, len(cands), opt.Workers, func(i int) {
			if cands[i].skip {
				return
			}
			// The move's path is the advisory dirty hint: only the
			// transformed nest skips its cache probe; every untouched
			// nest — including ones the move shifted — is looked up.
			c, m, err := predictWith(cands[i].prog, opt, caches, [][]int{[]int(moves[i].Path)})
			if err != nil {
				cands[i].skip = true
				return
			}
			cands[i].cost = c
			cands[i].mem = m
		})
		if ctxErr != nil {
			break
		}
		for i := range cands {
			if cands[i].skip {
				continue
			}
			st := &state{prog: cands[i].prog, cost: cands[i].cost, mem: cands[i].mem, seq: append(append([]Move{}, cur.seq...), moves[i])}
			if st.cost < best.cost {
				best = st
			}
			heap.Push(h, st)
		}
	}
	hits, misses := caches.Seg.Stats()
	nestHits, nestMisses := caches.Nest.Stats()
	out := SearchResult{
		Best:          best.prog,
		BestCost:      best.cost,
		InitialCost:   initCost,
		InitialMemory: initMem,
		BestMemory:    best.mem,
		Sequence:      best.seq,
		Explored:      explored,
		CacheHits:     hits - hits0,
		CacheMisses:   misses - misses0,
		NestHits:      nestHits - nestHits0,
		NestMisses:    nestMisses - nestMisses0,
		TetrisCalls:   caches.Nest.TetrisCalls() - tetris0,
	}
	if ctxErr == nil {
		out.Bottleneck, out.BottleneckUtil = diagnoseBest(best.prog, opt)
	}
	return out, ctxErr
}

// diagnoseBest names the winning variant's bottleneck unit. The
// diagnosis is advisory — it runs once, after ranking, and any failure
// (e.g. a nest shape the explainer cannot lower) degrades to an empty
// bottleneck rather than failing a completed search.
func diagnoseBest(p *source.Program, opt SearchOptions) (string, float64) {
	tbl, err := sem.Analyze(p)
	if err != nil {
		return "", 0
	}
	nominal := make(map[string]float64, len(opt.Nominal))
	for k, v := range opt.Nominal {
		nominal[string(k)] = v
	}
	aopt := opt.aggOptions()
	rep, err := explain.Program(p, tbl, opt.Machine, explain.Options{
		Aggregate:  &aopt,
		Nominal:    nominal,
		SkipWhatIf: true,
	})
	if err != nil {
		return "", 0
	}
	return rep.Bottleneck, rep.BottleneckUtil
}
