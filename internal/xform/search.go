package xform

import (
	"container/heap"
	"fmt"
	"sort"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/workpool"
)

// Move is one applicable transformation instance.
type Move struct {
	Kind  string // "unroll", "interchange", "tile", "fuse"
	Path  Path
	Param int // factor / size
}

func (m Move) String() string {
	if m.Param > 0 {
		return fmt.Sprintf("%s%d@%v", m.Kind, m.Param, m.Path)
	}
	return fmt.Sprintf("%s@%v", m.Kind, m.Path)
}

// Apply performs the move on a fresh clone.
func Apply(p *source.Program, m Move) (*source.Program, error) {
	switch m.Kind {
	case "unroll":
		return Unroll(p, m.Path, m.Param)
	case "interchange":
		return Interchange(p, m.Path)
	case "tile":
		return Tile(p, m.Path, m.Param)
	case "fuse":
		return Fuse(p, m.Path)
	case "distribute":
		return Distribute(p, m.Path, m.Param)
	default:
		return nil, fmt.Errorf("xform: unknown move %q", m.Kind)
	}
}

// SearchOptions configure the transformation search.
type SearchOptions struct {
	Machine *machine.Machine
	// Nominal assigns values to performance-expression unknowns when
	// ranking variants; unknowns absent from the map default to
	// DefaultUnknown.
	Nominal        map[symexpr.Var]float64
	DefaultUnknown float64
	// MaxNodes bounds the number of expanded states (default 40).
	MaxNodes int
	// MaxDepth bounds the transformation sequence length (default 3).
	MaxDepth int
	// UnrollFactors and TileSizes to propose (defaults {2,4} / {16}).
	UnrollFactors []int
	TileSizes     []int
	AggOpt        aggregate.Options
	// DisableFuse/DisableTile trim the move set.
	DisableFuse bool
	DisableTile bool
	// Workers bounds the concurrency of neighbor expansion: the
	// candidate variants of each expanded state are transformed and
	// priced on a worker pool sharing the search's segment cache.
	// <= 0 uses runtime.GOMAXPROCS(0); 1 forces serial expansion.
	// Results are identical for any worker count: candidates are
	// enumerated, deduplicated and pushed in deterministic move order,
	// and cached segment costs do not depend on fill interleaving.
	Workers int
}

func (o *SearchOptions) defaults() {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 40
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if len(o.UnrollFactors) == 0 {
		o.UnrollFactors = []int{2, 4}
	}
	if len(o.TileSizes) == 0 {
		o.TileSizes = []int{16}
	}
	if o.DefaultUnknown == 0 {
		o.DefaultUnknown = 100
	}
	if o.AggOpt.SteadyStateIters == 0 {
		o.AggOpt = aggregate.DefaultOptions()
	}
}

// SearchResult reports the best variant found.
type SearchResult struct {
	Best        *source.Program
	BestCost    float64
	InitialCost float64
	Sequence    []Move
	Explored    int
	CacheHits   int
	CacheMisses int
}

// Moves enumerates the legal transformations of a program. Legality
// for interchange/fusion is verified during Apply; here cheap
// structural filters keep the branching factor small.
func Moves(p *source.Program, opt SearchOptions) []Move {
	var out []Move
	sites := FindLoops(p)
	for _, s := range sites {
		if s.Innermost {
			for _, f := range opt.UnrollFactors {
				out = append(out, Move{Kind: "unroll", Path: s.Path, Param: f})
			}
		}
		if s.PerfectParent {
			out = append(out, Move{Kind: "interchange", Path: s.Path})
		}
		if !opt.DisableTile && !s.Innermost && s.Loop.Step == nil {
			for _, ts := range opt.TileSizes {
				out = append(out, Move{Kind: "tile", Path: s.Path, Param: ts})
			}
		}
		if s.Innermost && len(s.Loop.Body) >= 2 {
			out = append(out, Move{Kind: "distribute", Path: s.Path, Param: 1})
		}
	}
	if !opt.DisableFuse {
		// Adjacent sibling loops.
		for _, s := range sites {
			list, i, err := locate(p, s.Path)
			if err != nil || i+1 >= len(list) {
				continue
			}
			if _, ok := list[i+1].(*source.DoLoop); ok {
				out = append(out, Move{Kind: "fuse", Path: s.Path})
			}
		}
	}
	return out
}

// Predict evaluates the aggregated cost of a program at the nominal
// assignment, sharing the given segment cache.
func Predict(p *source.Program, opt SearchOptions, cache *aggregate.SegCache) (float64, error) {
	tbl, err := sem.Analyze(p)
	if err != nil {
		return 0, err
	}
	est := aggregate.NewWithCache(tbl, opt.Machine, opt.AggOpt, cache)
	res, err := est.Program(p)
	if err != nil {
		return 0, err
	}
	assign := map[symexpr.Var]float64{}
	for _, v := range res.Cost.Vars() {
		if val, ok := opt.Nominal[v]; ok {
			assign[v] = val
		} else {
			assign[v] = opt.DefaultUnknown
		}
	}
	return res.Cost.Eval(assign)
}

// state is one search node.
type state struct {
	prog *source.Program
	cost float64
	seq  []Move
}

// candidate is one neighbor being expanded (see Search's three-step
// expansion).
type candidate struct {
	prog *source.Program
	key  string
	cost float64
	skip bool
}

type stateHeap []*state

func (h stateHeap) Len() int           { return len(h) }
func (h stateHeap) Less(a, b int) bool { return h[a].cost < h[b].cost }
func (h stateHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *stateHeap) Push(x any)        { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search explores transformation sequences best-first, ranking states
// by predicted cost; ties and pruning make it the practical variant of
// the paper's A* proposal (the heuristic lower bound is zero). It
// returns the cheapest variant encountered.
func Search(p *source.Program, opt SearchOptions) (SearchResult, error) {
	opt.defaults()
	if opt.Machine == nil {
		return SearchResult{}, fmt.Errorf("xform: SearchOptions.Machine is required")
	}
	cache := aggregate.NewSegCache()
	initCost, err := Predict(p, opt, cache)
	if err != nil {
		return SearchResult{}, err
	}
	start := &state{prog: p, cost: initCost}
	best := start
	visited := map[string]bool{source.PrintProgram(p): true}
	h := &stateHeap{start}
	explored := 0
	for h.Len() > 0 && explored < opt.MaxNodes {
		cur := heap.Pop(h).(*state)
		explored++
		if len(cur.seq) >= opt.MaxDepth {
			continue
		}
		moves := Moves(cur.prog, opt)
		// Deterministic order.
		sort.Slice(moves, func(i, j int) bool { return moves[i].String() < moves[j].String() })
		// Expand neighbors in three steps — parallel transform, serial
		// dedup, parallel pricing — then fold the survivors back into
		// the frontier in move order, so the heap and the running best
		// are independent of worker interleaving.
		cands := make([]candidate, len(moves))
		workpool.Run(len(moves), opt.Workers, func(i int) {
			next, err := Apply(cur.prog, moves[i])
			if err != nil {
				cands[i].skip = true // illegal move
				return
			}
			cands[i].prog = next
			cands[i].key = source.PrintProgram(next)
		})
		for i := range cands {
			if cands[i].skip {
				continue
			}
			if visited[cands[i].key] {
				cands[i].skip = true
				continue
			}
			visited[cands[i].key] = true
		}
		workpool.Run(len(cands), opt.Workers, func(i int) {
			if cands[i].skip {
				return
			}
			c, err := Predict(cands[i].prog, opt, cache)
			if err != nil {
				cands[i].skip = true
				return
			}
			cands[i].cost = c
		})
		for i := range cands {
			if cands[i].skip {
				continue
			}
			st := &state{prog: cands[i].prog, cost: cands[i].cost, seq: append(append([]Move{}, cur.seq...), moves[i])}
			if st.cost < best.cost {
				best = st
			}
			heap.Push(h, st)
		}
	}
	hits, misses := cache.Stats()
	return SearchResult{
		Best:        best.prog,
		BestCost:    best.cost,
		InitialCost: initCost,
		Sequence:    best.seq,
		Explored:    explored,
		CacheHits:   hits,
		CacheMisses: misses,
	}, nil
}
