package xform

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

func matmulProg(t *testing.T) *source.Program {
	t.Helper()
	k, err := kernels.Get("matmul")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := source.Parse(k.Src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// calibrateNodeCost times a small bounded search and returns the mean
// wall-clock cost of one node expansion on this machine, floored at
// 1ms. The cancellation tests size their deadlines and tolerances
// from this measurement instead of hard-coded constants that go stale
// (or flaky) as hardware and the expansion cost drift.
func calibrateNodeCost(t *testing.T, prog *source.Program) time.Duration {
	t.Helper()
	start := time.Now()
	res, err := Search(prog, SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 4, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored <= 0 {
		t.Fatalf("calibration search explored %d nodes", res.Explored)
	}
	per := time.Since(start) / time.Duration(res.Explored)
	if per < time.Millisecond {
		per = time.Millisecond
	}
	return per
}

// TestSearchCtxReturnsPromptlyOnDeadline pins the cancellation
// contract on the matmul kernel: a search sized to run for a long
// time must return within a few node-expansions of its context
// expiring, with the best-so-far as a valid partial result.
func TestSearchCtxReturnsPromptlyOnDeadline(t *testing.T) {
	prog := matmulProg(t)
	per := calibrateNodeCost(t, prog)
	// The deadline buys roughly ten expansions — enough to get the
	// search going, orders of magnitude short of MaxNodes — so a
	// prompt return can only come from the cancellation path.
	deadline := 10 * per
	if deadline > 2*time.Second {
		deadline = 2 * time.Second
	}
	opt := SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 1 << 20, MaxDepth: 6}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res, err := SearchCtx(ctx, prog, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (explored %d), want context.DeadlineExceeded", err, res.Explored)
	}
	// ε is many measured expansions (the search observes cancellation
	// at node boundaries) plus slack for loaded CI under -race.
	epsilon := 100 * per
	if epsilon < 2*time.Second {
		epsilon = 2 * time.Second
	}
	if elapsed > deadline+epsilon {
		t.Fatalf("search returned %v after a %v deadline (measured %v/node)", elapsed, deadline, per)
	}
	// The partial result is a usable best-so-far.
	if res.Best == nil {
		t.Fatal("cancelled search returned no program")
	}
	if res.BestCost > res.InitialCost {
		t.Errorf("partial best %v worse than initial %v", res.BestCost, res.InitialCost)
	}
	if res.Explored <= 0 || res.Explored >= opt.MaxNodes {
		t.Errorf("explored %d nodes under a %v deadline", res.Explored, deadline)
	}
}

// TestSearchCtxNoGoroutineLeakWithExplain: cancelled searches and a
// completed one — the latter running the post-search explain
// diagnosis on its winner — leave the goroutine count at its
// pre-search baseline.
func TestSearchCtxNoGoroutineLeakWithExplain(t *testing.T) {
	prog := matmulProg(t)
	per := calibrateNodeCost(t, prog)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*per)
		_, err := SearchCtx(ctx, prog, SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 1 << 20, MaxDepth: 6})
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatal(err)
		}
	}
	res, err := SearchCtx(context.Background(), prog,
		SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 6, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck == "" {
		t.Error("completed search reported no bottleneck for its winner")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: baseline %d, now %d after searches\n%s",
				baseline, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSearchCtxPreCancelled: a context that is already done stops the
// search before the initial pricing.
func TestSearchCtxPreCancelled(t *testing.T) {
	prog := matmulProg(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SearchCtx(ctx, prog, SearchOptions{Machine: machine.NewPOWER1()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Best != nil {
		t.Errorf("pre-cancelled search still produced a result: %+v", res)
	}
}

// TestSearchCtxBackgroundMatchesSearch: threading a live context is
// invisible — same best, same trajectory, same counters.
func TestSearchCtxBackgroundMatchesSearch(t *testing.T) {
	prog := matmulProg(t)
	opt := SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 6, MaxDepth: 2}
	plain, err := Search(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := SearchCtx(context.Background(), prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestCost != ctxed.BestCost || plain.Explored != ctxed.Explored ||
		source.PrintProgram(plain.Best) != source.PrintProgram(ctxed.Best) {
		t.Errorf("SearchCtx(Background) diverged: %+v vs %+v", ctxed, plain)
	}
}

// TestSearchSharedCachesWarmReuse: a second search on warm shared
// caches returns byte-identical results and reports per-search
// counter deltas (not cumulative totals), with the warm nest cache
// actually hit.
func TestSearchSharedCachesWarmReuse(t *testing.T) {
	prog := matmulProg(t)
	caches := aggregate.Caches{Seg: aggregate.NewSegCache(), Nest: aggregate.NewNestCache()}
	opt := SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 6, MaxDepth: 2, Caches: caches}
	cold, err := Search(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Search(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.BestCost != warm.BestCost || cold.Explored != warm.Explored ||
		source.PrintProgram(cold.Best) != source.PrintProgram(warm.Best) {
		t.Fatalf("warm-cache search diverged: %+v vs %+v", warm, cold)
	}
	if warm.NestHits == 0 {
		t.Error("second search on warm shared caches never hit the nest cache")
	}
	if warm.NestMisses > cold.NestMisses {
		t.Errorf("warm search re-priced more nests (%d) than the cold one (%d)", warm.NestMisses, cold.NestMisses)
	}
	// Counter deltas must be per-search: the warm run's misses cannot
	// include the cold run's.
	_, totalMisses := caches.Nest.Stats()
	if warm.NestMisses >= totalMisses && cold.NestMisses > 0 {
		t.Errorf("warm search reported cumulative misses %d (total %d) — deltas broken", warm.NestMisses, totalMisses)
	}
}
