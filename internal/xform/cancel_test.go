package xform

import (
	"context"
	"errors"
	"testing"
	"time"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

func matmulProg(t *testing.T) *source.Program {
	t.Helper()
	k, err := kernels.Get("matmul")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := source.Parse(k.Src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestSearchCtxReturnsPromptlyOnDeadline pins the cancellation
// contract on the matmul kernel: a search sized to run for a long
// time must return within about one node-expansion of its context
// expiring, with the best-so-far as a valid partial result.
func TestSearchCtxReturnsPromptlyOnDeadline(t *testing.T) {
	prog := matmulProg(t)
	const deadline = 150 * time.Millisecond
	// Far more nodes than fit in the deadline: full completion takes
	// tens of seconds (calibrated ~5-10ms per expansion), so a prompt
	// return can only come from the cancellation path.
	opt := SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 1 << 20, MaxDepth: 6}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res, err := SearchCtx(ctx, prog, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (explored %d), want context.DeadlineExceeded", err, res.Explored)
	}
	// ε covers one node expansion plus heavy CI/-race slowdown; the
	// point is seconds-not-minutes, measured from ctx expiry.
	const epsilon = 5 * time.Second
	if elapsed > deadline+epsilon {
		t.Fatalf("search returned %v after a %v deadline", elapsed, deadline)
	}
	// The partial result is a usable best-so-far.
	if res.Best == nil {
		t.Fatal("cancelled search returned no program")
	}
	if res.BestCost > res.InitialCost {
		t.Errorf("partial best %v worse than initial %v", res.BestCost, res.InitialCost)
	}
	if res.Explored <= 0 || res.Explored >= opt.MaxNodes {
		t.Errorf("explored %d nodes under a %v deadline", res.Explored, deadline)
	}
}

// TestSearchCtxPreCancelled: a context that is already done stops the
// search before the initial pricing.
func TestSearchCtxPreCancelled(t *testing.T) {
	prog := matmulProg(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SearchCtx(ctx, prog, SearchOptions{Machine: machine.NewPOWER1()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Best != nil {
		t.Errorf("pre-cancelled search still produced a result: %+v", res)
	}
}

// TestSearchCtxBackgroundMatchesSearch: threading a live context is
// invisible — same best, same trajectory, same counters.
func TestSearchCtxBackgroundMatchesSearch(t *testing.T) {
	prog := matmulProg(t)
	opt := SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 6, MaxDepth: 2}
	plain, err := Search(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := SearchCtx(context.Background(), prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestCost != ctxed.BestCost || plain.Explored != ctxed.Explored ||
		source.PrintProgram(plain.Best) != source.PrintProgram(ctxed.Best) {
		t.Errorf("SearchCtx(Background) diverged: %+v vs %+v", ctxed, plain)
	}
}

// TestSearchSharedCachesWarmReuse: a second search on warm shared
// caches returns byte-identical results and reports per-search
// counter deltas (not cumulative totals), with the warm nest cache
// actually hit.
func TestSearchSharedCachesWarmReuse(t *testing.T) {
	prog := matmulProg(t)
	caches := aggregate.Caches{Seg: aggregate.NewSegCache(), Nest: aggregate.NewNestCache()}
	opt := SearchOptions{Machine: machine.NewPOWER1(), MaxNodes: 6, MaxDepth: 2, Caches: caches}
	cold, err := Search(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Search(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.BestCost != warm.BestCost || cold.Explored != warm.Explored ||
		source.PrintProgram(cold.Best) != source.PrintProgram(warm.Best) {
		t.Fatalf("warm-cache search diverged: %+v vs %+v", warm, cold)
	}
	if warm.NestHits == 0 {
		t.Error("second search on warm shared caches never hit the nest cache")
	}
	if warm.NestMisses > cold.NestMisses {
		t.Errorf("warm search re-priced more nests (%d) than the cold one (%d)", warm.NestMisses, cold.NestMisses)
	}
	// Counter deltas must be per-search: the warm run's misses cannot
	// include the cold run's.
	_, totalMisses := caches.Nest.Stats()
	if warm.NestMisses >= totalMisses && cold.NestMisses > 0 {
		t.Errorf("warm search reported cumulative misses %d (total %d) — deltas broken", warm.NestMisses, totalMisses)
	}
}
