package xform

import (
	"testing"

	"perfpredict/internal/interp"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

const variantA = `
subroutine work(n)
  integer i, j, n
  real a(64,64), out(64)
  do i = 1, n
    do j = 1, n
      out(i) = out(i) + a(i,j)
    end do
  end do
end
`

// The heavy-per-element variant: cheaper for large n would be variantA;
// for tiny n the flat loop with sqrt dominates differently.
const variantB = `
subroutine work(n)
  integer i, n
  real a(64,64), out(64)
  do i = 1, n
    out(i) = sqrt(a(i,1)) + a(i,2) * 3.0
  end do
end
`

func simulateCycles(t *testing.T, p *source.Program, args map[string]float64) int64 {
	t.Helper()
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v\n%s", err, source.PrintProgram(p))
	}
	r := interp.New(p, tbl, interp.Options{Machine: machine.NewPOWER1()})
	for k, v := range args {
		r.SetScalar(k, v)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r.Cycles()
}

func TestVersionedStructure(t *testing.T) {
	a := parse(t, variantA)
	b := parse(t, variantB)
	v, err := Versioned(a, b, ThresholdGuard("n", 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Body) != 1 {
		t.Fatalf("body: %d stmts", len(v.Body))
	}
	ifs, ok := v.Body[0].(*source.IfStmt)
	if !ok || len(ifs.Then) == 0 || len(ifs.Else) == 0 {
		t.Fatalf("versioned body: %+v", v.Body[0])
	}
	// The combined program must analyze and print.
	if _, err := sem.Analyze(v); err != nil {
		t.Fatalf("sem: %v", err)
	}
	if _, err := source.Parse(source.PrintProgram(v)); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestVersionedSelectsByGuard(t *testing.T) {
	a := parse(t, variantA)
	b := parse(t, variantB)
	v, err := Versioned(a, b, ThresholdGuard("n", 4))
	if err != nil {
		t.Fatal(err)
	}
	// Below the threshold the first variant runs: its cycle count must
	// match variant A's; above, variant B's.
	for _, tc := range []struct {
		n      float64
		expect *source.Program
	}{{3, a}, {32, b}} {
		got := simulateCycles(t, v, map[string]float64{"n": tc.n})
		want := simulateCycles(t, tc.expect, map[string]float64{"n": tc.n})
		// The versioned program adds only the guard's compare+branch.
		if got < want || got > want+20 {
			t.Errorf("n=%v: versioned %d vs selected variant %d", tc.n, got, want)
		}
	}
}

func TestVersionedMergesTileDecls(t *testing.T) {
	src := `
subroutine work(n)
  integer i, n
  real a(4096)
  do i = 1, n
    a(i) = real(i)
  end do
end
`
	orig := parse(t, src)
	tiled, err := Tile(orig, Path{0}, 16)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Versioned(orig, tiled, ThresholdGuard("n", 64))
	if err != nil {
		t.Fatal(err)
	}
	// i_t must be declared in the merged program.
	if _, err := sem.Analyze(v); err != nil {
		t.Fatalf("merged decls missing: %v\n%s", err, source.PrintProgram(v))
	}
	ref := runValues(t, orig, "a", map[string]float64{"n": 100})
	got := runValues(t, v, "a", map[string]float64{"n": 100})
	sameValues(t, ref, got, "versioned-tiled")
}

func TestVersionedParamMismatch(t *testing.T) {
	a := parse(t, variantA)
	c := parse(t, "subroutine work(m)\n integer m\n real x\n x = 1.0\nend\n")
	if _, err := Versioned(a, c, ThresholdGuard("n", 1)); err == nil {
		t.Error("parameter mismatch accepted")
	}
}

// End-to-end §3.4: the versioned program tracks the cheaper variant on
// both sides of the crossover.
func TestVersionedBeatsEitherFixedChoice(t *testing.T) {
	a := parse(t, variantA) // quadratic
	b := parse(t, variantB) // linear but heavy
	// Find the simulated crossover.
	crossover := -1.0
	for n := 1.0; n <= 64; n++ {
		ca := simulateCycles(t, a, map[string]float64{"n": n})
		cb := simulateCycles(t, b, map[string]float64{"n": n})
		if ca > cb {
			crossover = n
			break
		}
	}
	if crossover < 0 {
		t.Skip("variants do not cross in range")
	}
	v, err := Versioned(a, b, ThresholdGuard("n", crossover-1))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{2, crossover + 10} {
		cv := simulateCycles(t, v, map[string]float64{"n": n})
		ca := simulateCycles(t, a, map[string]float64{"n": n})
		cb := simulateCycles(t, b, map[string]float64{"n": n})
		best := ca
		if cb < best {
			best = cb
		}
		if float64(cv) > float64(best)*1.1+20 {
			t.Errorf("n=%v: versioned %d vs best fixed %d", n, cv, best)
		}
	}
}
