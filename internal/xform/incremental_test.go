package xform

import (
	"fmt"
	"runtime"
	"testing"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

func priceSignature(r aggregate.Result) string {
	return fmt.Sprintf("cost=%s|onetime=%s|unknowns=%+v", r.Cost, r.OneTime, r.Unknowns)
}

// TestIncrementalMatchesFullPerMoveKind applies every legal move of
// every embedded kernel and requires that pricing the variant through a
// warm nest cache (with the move's path as the dirty hint) is
// byte-identical to pricing it from scratch. All five move kinds must
// occur across the kernel set.
func TestIncrementalMatchesFullPerMoveKind(t *testing.T) {
	m := machine.NewPOWER1()
	aggOpt := aggregate.DefaultOptions()
	opt := SearchOptions{Machine: m}
	opt.defaults()
	covered := map[string]bool{}
	type subject struct {
		name string
		prog *source.Program
	}
	var subjects []subject
	for _, k := range kernels.All() {
		p, _, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		subjects = append(subjects, subject{k.Name, p})
	}
	// None of the embedded kernels has a legally fusible sibling pair;
	// add one so the fuse move is exercised too.
	fusible, err := source.Parse(`
program fusepair
  integer i, n
  real a(100), b(100), c(100)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
  do i = 1, n
    c(i) = a(i) * 2.0
  end do
end
`)
	if err != nil {
		t.Fatal(err)
	}
	subjects = append(subjects, subject{"fusepair", fusible})
	for _, sub := range subjects {
		p := sub.prog
		caches := aggregate.Caches{Seg: aggregate.NewSegCache(), Nest: aggregate.NewNestCache()}
		tbl, err := sem.Analyze(p)
		if err != nil {
			t.Fatalf("%s: %v", sub.name, err)
		}
		// Warm the cache with the base program, as Search does.
		if _, err := aggregate.PriceIncremental(p, nil, caches, tbl, m, aggOpt); err != nil {
			t.Fatalf("%s: base pricing: %v", sub.name, err)
		}
		for _, mv := range Moves(p, opt) {
			v, err := Apply(p, mv)
			if err != nil {
				continue // illegal instance
			}
			covered[mv.Kind] = true
			vtbl, err := sem.Analyze(v)
			if err != nil {
				t.Fatalf("%s %s: analyze variant: %v", sub.name, mv, err)
			}
			full, err := aggregate.New(vtbl, m, aggOpt).Program(v)
			if err != nil {
				t.Fatalf("%s %s: full pricing: %v", sub.name, mv, err)
			}
			inc, err := aggregate.PriceIncremental(v, [][]int{[]int(mv.Path)}, caches, vtbl, m, aggOpt)
			if err != nil {
				t.Fatalf("%s %s: incremental pricing: %v", sub.name, mv, err)
			}
			if got, want := priceSignature(inc), priceSignature(full); got != want {
				t.Errorf("%s %s: incremental diverged:\n got %s\nwant %s", sub.name, mv, got, want)
			}
		}
	}
	for _, kind := range []string{"unroll", "interchange", "tile", "fuse", "distribute"} {
		if !covered[kind] {
			t.Errorf("move kind %q never exercised by the kernel set", kind)
		}
	}
}

// TestSearchNestCacheEquivalence runs the same search with the nest
// cache on and off and with serial and parallel expansion; all four
// combinations must return byte-identical results, and the cached runs
// must actually hit.
func TestSearchNestCacheEquivalence(t *testing.T) {
	for _, kn := range []string{"f2", "f6", "matmul"} {
		k, err := kernels.Get(kn)
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", kn, err)
		}
		mk := func(disable bool, workers int) SearchOptions {
			return SearchOptions{
				Machine:          machine.NewPOWER1(),
				MaxNodes:         10,
				MaxDepth:         2,
				DisableNestCache: disable,
				Workers:          workers,
			}
		}
		ref, err := Search(p, mk(true, 1))
		if err != nil {
			t.Fatalf("%s: reference search: %v", kn, err)
		}
		refSrc := source.PrintProgram(ref.Best)
		for _, disable := range []bool{false, true} {
			for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				res, err := Search(p, mk(disable, workers))
				if err != nil {
					t.Fatalf("%s disable=%v workers=%d: %v", kn, disable, workers, err)
				}
				if res.BestCost != ref.BestCost {
					t.Errorf("%s disable=%v workers=%d: BestCost %v, want %v", kn, disable, workers, res.BestCost, ref.BestCost)
				}
				if got, want := fmt.Sprint(res.Sequence), fmt.Sprint(ref.Sequence); got != want {
					t.Errorf("%s disable=%v workers=%d: Sequence %s, want %s", kn, disable, workers, got, want)
				}
				if got := source.PrintProgram(res.Best); got != refSrc {
					t.Errorf("%s disable=%v workers=%d: Best program differs:\n%s\nwant:\n%s", kn, disable, workers, got, refSrc)
				}
				if res.InitialCost != ref.InitialCost {
					t.Errorf("%s disable=%v workers=%d: InitialCost %v, want %v", kn, disable, workers, res.InitialCost, ref.InitialCost)
				}
				if disable && res.NestHits != 0 {
					t.Errorf("%s workers=%d: counting-mode cache reported %d hits", kn, workers, res.NestHits)
				}
				if !disable && res.NestHits == 0 {
					t.Errorf("%s workers=%d: nest cache never hit", kn, workers)
				}
				if !disable && res.NestMisses >= ref.NestMisses {
					t.Errorf("%s workers=%d: cache saved nothing (%d re-pricings, baseline %d)",
						kn, workers, res.NestMisses, ref.NestMisses)
				}
			}
		}
	}
}

// TestSearchHonorsExplicitZeros covers the former sentinel bug: an
// explicit zero DefaultUnknown and explicit zero-valued aggregation
// options must survive defaults().
func TestSearchHonorsExplicitZeros(t *testing.T) {
	zero := 0.0
	opt := SearchOptions{DefaultUnknown: &zero}
	if got := opt.defaultUnknown(); got != 0 {
		t.Errorf("explicit zero DefaultUnknown resolved to %v", got)
	}
	if got := (&SearchOptions{}).defaultUnknown(); got != 100 {
		t.Errorf("nil DefaultUnknown resolved to %v, want 100", got)
	}
	explicit := aggregate.Options{}
	opt = SearchOptions{AggOpt: &explicit}
	if got := opt.aggOptions(); got.SteadyStateIters != 0 {
		t.Errorf("explicit zero AggOpt not honored: %+v", got)
	}
	if got := (&SearchOptions{}).aggOptions(); got.SteadyStateIters != aggregate.DefaultOptions().SteadyStateIters {
		t.Errorf("nil AggOpt resolved to %+v", got)
	}
}
