package pipesim

import (
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

// The decoupled queues: an FXU load after a stalled FPU chain issues
// without waiting for the chain (POWER's FXU runs ahead).
func TestDecoupledUnitsRunAhead(t *testing.T) {
	m := machine.NewPOWER1()
	p := NewPipeline(m)
	// Long dependent FPU chain.
	if _, err := p.Issue(ir.Instr{Op: ir.OpFDiv, Dst: 0, Srcs: []ir.Reg{100, 101}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Issue(ir.Instr{Op: ir.OpFAdd, Dst: 1, Srcs: []ir.Reg{0, 100}}); err != nil {
		t.Fatal(err)
	}
	// An independent load must not wait the ~20 cycles of the chain.
	at, err := p.Issue(ir.Instr{Op: ir.OpFLoad, Dst: 2, Addr: "a", Base: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if at > 2 {
		t.Errorf("load issued at %d; FXU should run ahead of the FPU", at)
	}
}

// Same-unit queue order still holds: two FXU ops issue in order even
// when the second has no dependences.
func TestSameQueueInOrder(t *testing.T) {
	m := machine.NewPOWER1()
	p := NewPipeline(m)
	// A load whose result gates nothing, followed by a dependent int op
	// and then an independent int op.
	t0, _ := p.Issue(ir.Instr{Op: ir.OpILoad, Dst: 0, Addr: "a", Base: "a"})
	t1, _ := p.Issue(ir.Instr{Op: ir.OpIAdd, Dst: 1, Srcs: []ir.Reg{0, 100}})
	t2, _ := p.Issue(ir.Instr{Op: ir.OpIAdd, Dst: 2, Srcs: []ir.Reg{100, 101}})
	if !(t0 <= t1 && t1 <= t2) {
		t.Errorf("FXU queue order violated: %d %d %d", t0, t1, t2)
	}
	// t1 waits the load latency; t2 cannot jump ahead of t1 (in-order
	// queue) even though its operands are ready.
	if t2 < t1 {
		t.Errorf("independent op overtook within one queue: %d < %d", t2, t1)
	}
}

// Buffered stores: a store whose FP datum is late does not hold up the
// FXU queue, but its memory effect completes only after the datum.
func TestStoreBuffering(t *testing.T) {
	m := machine.NewPOWER1()
	p := NewPipeline(m)
	// Produce a slow FP value.
	p.Issue(ir.Instr{Op: ir.OpFDiv, Dst: 0, Srcs: []ir.Reg{100, 101}})
	// Store it (datum ready ≈ cycle 19).
	stAt, _ := p.Issue(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{0}, Addr: "s", Base: "s"})
	// An independent integer op on the FXU right after.
	addAt, _ := p.Issue(ir.Instr{Op: ir.OpIAdd, Dst: 1, Srcs: []ir.Reg{100, 101}})
	if addAt > stAt+2 {
		t.Errorf("buffered store blocked the FXU: store@%d add@%d", stAt, addAt)
	}
	// A load of the stored address must observe the datum (≥ div
	// latency).
	ldAt, _ := p.Issue(ir.Instr{Op: ir.OpFLoad, Dst: 2, Addr: "s", Base: "s"})
	if ldAt < 19 {
		t.Errorf("load bypassed the pending store's datum: @%d", ldAt)
	}
}

// Cross-machine sanity: a parallel block runs no slower on wider
// machines.
func TestMachineOrderingOnParallelBlock(t *testing.T) {
	b := &ir.Block{}
	for i := 0; i < 12; i++ {
		b.Append(ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i)}})
		b.Append(ir.Instr{Op: ir.OpIAdd, Dst: ir.Reg(50 + i), Srcs: []ir.Reg{ir.Reg(300 + i), ir.Reg(400 + i)}})
	}
	var cycles []int64
	for _, m := range []*machine.Machine{machine.NewScalar1(), machine.NewPOWER1(), machine.NewSuperScalar2()} {
		r, err := RunScheduled(m, b)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, r.Cycles)
	}
	if !(cycles[0] > cycles[1] && cycles[1] >= cycles[2]) {
		t.Errorf("machine ordering: scalar %d, power %d, wide %d", cycles[0], cycles[1], cycles[2])
	}
}

func TestPruneKeepsTimingExact(t *testing.T) {
	m := machine.NewPOWER1()
	run := func(prune bool) int64 {
		p := NewPipeline(m)
		for i := 0; i < 2000; i++ {
			p.Issue(ir.Instr{Op: ir.OpFLoad, Dst: ir.Reg(2 * i), Addr: itoaAddr(i), Base: "a"})
			p.Issue(ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(2*i + 1), Srcs: []ir.Reg{ir.Reg(2 * i), 100000}})
			if prune && i%64 == 0 {
				p.Prune()
			}
		}
		return p.Drain()
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("pruning changed timing: %d vs %d", a, b)
	}
}

func itoaAddr(i int) string {
	return "a(" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)) + ")"
}

func TestScoreboardPruneBounds(t *testing.T) {
	m := machine.NewPOWER1()
	p := NewPipeline(m)
	for i := 0; i < 10000; i++ {
		p.Issue(ir.Instr{Op: ir.OpIAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(i - 1), 100000}})
		if i%512 == 0 {
			p.Prune()
		}
	}
	p.Prune()
	if n := p.ScoreboardSize(); n > 1024 {
		t.Errorf("scoreboard grew to %d entries despite pruning", n)
	}
}
