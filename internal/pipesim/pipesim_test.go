package pipesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/tetris"
)

func fadd(dst ir.Reg, a, b ir.Reg) ir.Instr {
	return ir.Instr{Op: ir.OpFAdd, Dst: dst, Srcs: []ir.Reg{a, b}}
}

func run(t *testing.T, m *machine.Machine, b *ir.Block) Result {
	t.Helper()
	r, err := Run(m, b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleFAdd(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(fadd(0, 100, 101))
	r := run(t, m, b)
	if r.Cycles != 2 {
		t.Errorf("cycles = %d, want 2", r.Cycles)
	}
}

func TestIndependentStream(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	for i := 0; i < 8; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(100+i), ir.Reg(200+i)))
	}
	r := run(t, m, b)
	if r.Cycles != 9 {
		t.Errorf("cycles = %d, want 9 (pipelined)", r.Cycles)
	}
	if r.UnitBusy[machine.FPU] != 8 {
		t.Errorf("FPU busy = %d", r.UnitBusy[machine.FPU])
	}
}

func TestDependentChain(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(fadd(0, 100, 101))
	for i := 1; i < 6; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(i-1), 101))
	}
	r := run(t, m, b)
	if r.Cycles != 12 {
		t.Errorf("cycles = %d, want 12", r.Cycles)
	}
}

func TestInOrderStall(t *testing.T) {
	m := machine.NewPOWER1()
	// A dependent pair followed by an independent add: in-order issue
	// lets the independent add start in the stall shadow only after the
	// stalled instruction issues — execution order matters.
	blocked := &ir.Block{}
	blocked.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a", Base: "a"})
	blocked.Append(fadd(1, 0, 100))   // waits 2 cycles for the load
	blocked.Append(fadd(2, 101, 102)) // independent
	r1 := run(t, m, blocked)

	reordered := Schedule(m, blocked)
	r2 := run(t, m, reordered)
	if r2.Cycles > r1.Cycles {
		t.Errorf("scheduling hurt: %d -> %d", r1.Cycles, r2.Cycles)
	}
}

func TestScheduleRespectsDeps(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "x(i)", Base: "x"})
	b.Append(fadd(1, 0, 100))
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{1}, Addr: "y(i)", Base: "y"})
	s := Schedule(m, b)
	// The store must come after the add, which must come after the load.
	pos := map[string]int{}
	for i, in := range s.Instrs {
		pos[in.Op.String()] = i
	}
	if !(pos["fload"] < pos["fadd"] && pos["fadd"] < pos["fstore"]) {
		t.Errorf("schedule broke deps:\n%s", s)
	}
}

func TestSchedulePrioritizesCriticalPath(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	// A long fdiv chain entering late in program order should be
	// scheduled first.
	for i := 0; i < 4; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(100+i), ir.Reg(200+i)))
	}
	b.Append(ir.Instr{Op: ir.OpFDiv, Dst: 10, Srcs: []ir.Reg{300, 301}})
	s := Schedule(m, b)
	if s.Instrs[0].Op != ir.OpFDiv {
		t.Errorf("critical op not first:\n%s", s)
	}
}

func TestMemoryOrdering(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{100}, Addr: "s", Base: "s"})
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "s", Base: "s"})
	r := run(t, m, b)
	// Load waits for the 2-cycle store, then takes 2 cycles.
	if r.Cycles != 4 {
		t.Errorf("store→load = %d, want 4", r.Cycles)
	}
	// Distinct addresses don't serialize.
	b2 := &ir.Block{}
	b2.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{100}, Addr: "s", Base: "s"})
	b2.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "t", Base: "t"})
	r2 := run(t, m, b2)
	if r2.Cycles >= 4 {
		t.Errorf("independent store/load = %d, want < 4", r2.Cycles)
	}
}

func TestDispatchWidth(t *testing.T) {
	m := machine.NewSuperScalar2()
	m.DispatchWidth = 1
	b := &ir.Block{}
	for i := 0; i < 4; i++ {
		b.Append(ir.Instr{Op: ir.OpIAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i)}})
	}
	r := run(t, m, b)
	if r.Cycles != 4 {
		t.Errorf("width-1 cycles = %d, want 4", r.Cycles)
	}
}

func TestTwoPipesDoubleThroughput(t *testing.T) {
	m := machine.NewSuperScalar2()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFDiv, Dst: 0, Srcs: []ir.Reg{100, 101}})
	b.Append(ir.Instr{Op: ir.OpFDiv, Dst: 1, Srcs: []ir.Reg{102, 103}})
	r := run(t, m, b)
	if r.Cycles != 19 {
		t.Errorf("2-pipe fdivs = %d, want 19", r.Cycles)
	}
}

func TestStreamingAcrossBlocks(t *testing.T) {
	m := machine.NewPOWER1()
	p := NewPipeline(m)
	// Feed two iterations of a loop body through the streaming API.
	for it := 0; it < 2; it++ {
		base := ir.Reg(it * 10)
		if _, err := p.Issue(ir.Instr{Op: ir.OpFLoad, Dst: base, Addr: "a", Base: "a"}); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Issue(fadd(base+1, base, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Drain() <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestEmptyBlock(t *testing.T) {
	m := machine.NewPOWER1()
	r := run(t, m, &ir.Block{})
	if r.Cycles != 0 {
		t.Errorf("empty cycles = %d", r.Cycles)
	}
}

// The central soundness property of the reproduction: for list-scheduled
// blocks, the Tetris prediction must track the simulated cycles closely
// (this is the claim Figure 7 demonstrates).
func TestQuickPredictionTracksSimulation(t *testing.T) {
	m := machine.NewPOWER1()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := &ir.Block{}
		n := 1 + r.Intn(24)
		for i := 0; i < n; i++ {
			ops := []ir.Op{ir.OpFAdd, ir.OpFMul, ir.OpFMA, ir.OpFLoad, ir.OpFStore, ir.OpIAdd}
			op := ops[r.Intn(len(ops))]
			in := ir.Instr{Op: op, Dst: ir.Reg(i)}
			switch {
			case op.IsLoad():
				in.Addr, in.Base = "x("+string(rune('a'+r.Intn(26)))+")", "x"
			case op.IsStore():
				in.Dst = ir.NoReg
				in.Srcs = []ir.Reg{srcReg(r, i)}
				in.Addr, in.Base = "y("+string(rune('a'+r.Intn(26)))+")", "y"
			case op == ir.OpFMA:
				in.Srcs = []ir.Reg{srcReg(r, i), srcReg(r, i), srcReg(r, i)}
			default:
				in.Srcs = []ir.Reg{srcReg(r, i), srcReg(r, i)}
			}
			b.Append(in)
		}
		sched := Schedule(m, b)
		sim, err := Run(m, sched)
		if err != nil {
			return false
		}
		pred, err := tetris.Estimate(m, b, tetris.Options{})
		if err != nil {
			return false
		}
		// The prediction tracks the in-order simulation: it may
		// overshoot by at most a few cycles (greedy program-order
		// placement vs. the list scheduler's reordering) and the
		// simulation stays within 3× of the prediction.
		if int64(pred.Cost) > sim.Cycles+4 {
			return false
		}
		return sim.Cycles <= 3*int64(pred.Cost)+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func srcReg(r *rand.Rand, i int) ir.Reg {
	if i > 0 && r.Intn(2) == 0 {
		return ir.Reg(r.Intn(i))
	}
	return ir.Reg(1000 + r.Intn(40))
}
