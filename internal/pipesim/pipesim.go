// Package pipesim is the reference cycle-level simulator used as the
// reproduction's stand-in for the paper's ground truth (IBM xlf's
// per-instruction cycle listings and RS/6000 hardware runs). It models
// the decoupled in-order pipeline of the RS/6000: instructions are
// dispatched in program order (bounded by the dispatch width) into
// per-unit queues; each unit executes its own queue in order, stalling
// on operands and pipe occupancy, but different units run ahead of one
// another — the fixed-point unit can prefetch loads past a stalled
// floating-point operation, which is precisely the "operation
// overlapping" the cost model prices.
//
// The simulator deliberately shares no placement logic with the Tetris
// cost model (package tetris): both read the same machine description,
// but tetris *predicts* by lowest-fit packing while pipesim *executes*
// the instruction sequence. Package pipesim also provides the greedy
// list scheduler that plays the role of the back-end instruction
// scheduler the cost model imitates.
package pipesim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
)

// Result reports one simulated block execution.
type Result struct {
	// Cycles is the makespan from first issue to last completion.
	Cycles int64
	// IssueTime per instruction.
	IssueTime []int64
	// UnitBusy counts busy (noncoverable) cycles per unit kind.
	UnitBusy map[machine.UnitKind]int64
}

// pipePool recycles Pipeline state across Run calls: the scoreboards
// and per-unit tables are cleared, not reallocated, so a block
// simulation allocates only what escapes into the Result.
var pipePool = sync.Pool{New: func() any { return new(Pipeline) }}

// Run simulates the block in the given instruction order. It is safe
// for concurrent use (each call draws its pipeline from a pool).
func Run(m *machine.Machine, b *ir.Block) (Result, error) {
	p := pipePool.Get().(*Pipeline)
	defer pipePool.Put(p)
	p.Reset(m)
	issue := make([]int64, len(b.Instrs))
	for i, in := range b.Instrs {
		t, err := p.Issue(in)
		if err != nil {
			return Result{}, fmt.Errorf("instr %d (%s): %w", i, in, err)
		}
		issue[i] = t
	}
	// Copy the busy counters out: p.unitBusy returns to the pool.
	busy := make(map[machine.UnitKind]int64, len(p.unitBusy))
	for k, v := range p.unitBusy {
		busy[k] = v
	}
	return Result{Cycles: p.Drain(), IssueTime: issue, UnitBusy: busy}, nil
}

// Pipeline is the streaming core: callers feed instructions in
// execution order (a basic block, or a whole-program dynamic trace from
// the interpreter) and read the final cycle count.
type Pipeline struct {
	m      *machine.Machine
	machFP source.Fingerprint
	units  []machine.UnitInstance
	byKind map[machine.UnitKind][]int
	// freeAt[pipe] is the first cycle the pipe is idle.
	freeAt []int64
	// regReady maps virtual registers to their ready cycle.
	regReady map[ir.Reg]int64
	// Memory scoreboard.
	lastWrite map[string]int64 // addr -> completion cycle of last store
	lastReads map[string]int64 // addr -> latest completion of loads
	// Per-unit-kind issue frontiers: each unit executes its queue in
	// order, but units are decoupled from one another.
	frontier map[machine.UnitKind]int64
	// maxFrontier tracks the furthest issue so pruning stays sound.
	maxFrontier int64
	// dispatched counts ops begun in the cycle at dispatchCycle.
	dispatchCycle int64
	dispatched    int
	// lastFinish is the completion time of the latest instruction.
	lastFinish int64
	firstIssue int64
	issuedAny  bool
	unitBusy   map[machine.UnitKind]int64
	// kindCache memoizes kindsOf per opcode (fixed for one machine).
	kindCache map[ir.Op][]machine.UnitKind
	// chosen and used are placeAtomic scratch: segment→pipe assignment
	// and per-pipe taken marks for the candidate cycle being probed.
	chosen []int
	used   []bool
}

// NewPipeline creates an empty pipeline for m.
func NewPipeline(m *machine.Machine) *Pipeline {
	p := &Pipeline{}
	p.Reset(m)
	return p
}

// Reset clears the pipeline for a fresh run on m, reusing scoreboards
// and unit tables (rebuilt only when the machine *content* changes —
// pooled pipelines handed a fresh pointer to an identical description
// keep their derived tables, including the per-opcode kind cache).
func (p *Pipeline) Reset(m *machine.Machine) {
	if p.m != m || p.units == nil {
		fp := m.Fingerprint()
		if p.units == nil || fp != p.machFP {
			p.units = m.Units()
			p.byKind = make(map[machine.UnitKind][]int, 4)
			for i, u := range p.units {
				p.byKind[u.Kind] = append(p.byKind[u.Kind], i)
			}
			p.freeAt = make([]int64, len(p.units))
			p.used = make([]bool, len(p.units))
			p.kindCache = map[ir.Op][]machine.UnitKind{}
		}
		p.m, p.machFP = m, fp
	}
	for i := range p.freeAt {
		p.freeAt[i] = 0
	}
	if p.regReady == nil {
		p.regReady = map[ir.Reg]int64{}
		p.lastWrite = map[string]int64{}
		p.lastReads = map[string]int64{}
		p.unitBusy = map[machine.UnitKind]int64{}
		p.frontier = map[machine.UnitKind]int64{}
	} else {
		clear(p.regReady)
		clear(p.lastWrite)
		clear(p.lastReads)
		clear(p.unitBusy)
		clear(p.frontier)
	}
	p.maxFrontier = 0
	p.dispatchCycle = 0
	p.dispatched = 0
	p.lastFinish = 0
	p.firstIssue = 0
	p.issuedAny = false
}

// Issue feeds one instruction, using the internal register and memory
// scoreboards for dependences, and returns its issue cycle.
func (p *Pipeline) Issue(in ir.Instr) (int64, error) {
	var ready int64
	// Same-queue in-order execution: the instruction cannot begin
	// before the previous instruction on any unit kind it uses.
	for _, k := range p.kindsOf(in) {
		if f := p.frontier[k]; f > ready {
			ready = f
		}
	}
	var dataReady int64
	for _, s := range in.Srcs {
		if s == ir.NoReg {
			continue
		}
		if t, ok := p.regReady[s]; ok && t > dataReady {
			dataReady = t
		}
	}
	if in.Op.IsStore() {
		// Pending-store queue: the address-generation slot executes in
		// queue order without waiting for the datum; the memory effect
		// completes once the datum arrives.
		ready = p.memReady(in, ready)
		return p.issueAt(in, ready, dataReady)
	}
	if dataReady > ready {
		ready = dataReady
	}
	ready = p.memReady(in, ready)
	return p.issueAt(in, ready, 0)
}

// kindsOf returns the unit kinds an instruction occupies, memoized per
// opcode (an opcode's atomic-op sequence is fixed for one machine).
func (p *Pipeline) kindsOf(in ir.Instr) []machine.UnitKind {
	if ks, ok := p.kindCache[in.Op]; ok {
		return ks
	}
	var out []machine.UnitKind
	if seq, err := p.m.Lookup(in.Op); err == nil {
		for _, a := range seq {
			for _, seg := range a.Segments {
				dup := false
				for _, k := range out {
					if k == seg.Unit {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, seg.Unit)
				}
			}
		}
	}
	p.kindCache[in.Op] = out
	return out
}

func (p *Pipeline) memReady(in ir.Instr, ready int64) int64 {
	if !in.Op.IsMem() {
		if in.Op == ir.OpCall {
			// Calls serialize against all memory.
			for _, t := range p.lastWrite {
				if t > ready {
					ready = t
				}
			}
			for _, t := range p.lastReads {
				if t > ready {
					ready = t
				}
			}
		}
		return ready
	}
	if in.Op.IsLoad() {
		if t, ok := p.lastWrite[in.Addr]; ok && t > ready {
			ready = t
		}
		return ready
	}
	// Store: after prior load/store of the same address.
	if t, ok := p.lastWrite[in.Addr]; ok && t > ready {
		ready = t
	}
	if t, ok := p.lastReads[in.Addr]; ok && t > ready {
		ready = t
	}
	return ready
}

// issueAt finds the actual issue cycle ≥ ready obeying unit
// availability and dispatch width, occupies resources, and updates the
// scoreboards. For buffered stores, dataReady delays only the memory
// effect, not the unit slots.
func (p *Pipeline) issueAt(in ir.Instr, ready, dataReady int64) (int64, error) {
	seq, err := p.m.Lookup(in.Op)
	if err != nil {
		return 0, err
	}
	t := ready
	first := int64(-1)
	for _, a := range seq {
		at, err := p.placeAtomic(a, t)
		if err != nil {
			return 0, err
		}
		if first == -1 {
			first = at
		}
		t = at + int64(a.Latency())
	}
	if first == -1 {
		first = ready
		t = ready
	}
	finish := t
	if in.Op.IsStore() && dataReady+1 > finish {
		finish = dataReady + 1
	}
	if in.Op.HasDst() && in.Dst != ir.NoReg {
		p.regReady[in.Dst] = finish
	}
	if in.Op.IsMem() {
		if in.Op.IsLoad() {
			if finish > p.lastReads[in.Addr] {
				p.lastReads[in.Addr] = finish
			}
		} else {
			p.lastWrite[in.Addr] = finish
			delete(p.lastReads, in.Addr)
		}
	}
	if in.Op == ir.OpCall {
		clear(p.lastWrite)
		clear(p.lastReads)
	}
	// Queue order: the next instruction on the same unit kinds may
	// issue in the same cycle but not earlier. Stores are an
	// exception: the POWER pending-store queue buffers them, so a
	// store waiting for its datum does not hold up later operations on
	// its units (ordering against loads/stores of the same address is
	// enforced by the memory scoreboard).
	if !in.Op.IsStore() {
		for _, k := range p.kindsOf(in) {
			if first > p.frontier[k] {
				p.frontier[k] = first
			}
		}
	}
	if first > p.maxFrontier {
		p.maxFrontier = first
	}
	if finish > p.lastFinish {
		p.lastFinish = finish
	}
	if !p.issuedAny || first < p.firstIssue {
		p.firstIssue = first
	}
	p.issuedAny = true
	return first, nil
}

// placeAtomic issues one atomic op at the earliest cycle ≥ ready.
func (p *Pipeline) placeAtomic(a machine.AtomicOp, ready int64) (int64, error) {
	t := ready
	for iter := 0; iter < 1<<24; iter++ {
		// Dispatch width.
		if p.dispatched >= p.m.DispatchWidth && t == p.dispatchCycle {
			t++
		}
		ok := true
		var need int64 = t
		if cap(p.chosen) < len(a.Segments) {
			p.chosen = make([]int, len(a.Segments))
		}
		chosen := p.chosen[:len(a.Segments)]
		for i := range p.used {
			p.used[i] = false
		}
		for si, seg := range a.Segments {
			best := -1
			var bestFree int64
			for _, pipe := range p.byKind[seg.Unit] {
				if p.used[pipe] {
					continue
				}
				segStart := t + int64(seg.Start)
				if p.freeAt[pipe] <= segStart {
					best = pipe
					break
				}
				if best == -1 || p.freeAt[pipe] < bestFree {
					best, bestFree = pipe, p.freeAt[pipe]
				}
			}
			if best == -1 {
				return 0, fmt.Errorf("pipesim: no pipe of kind %s", seg.Unit)
			}
			segStart := t + int64(seg.Start)
			if p.freeAt[best] > segStart {
				ok = false
				if cand := p.freeAt[best] - int64(seg.Start); cand > need {
					need = cand
				}
			}
			p.used[best] = true
			chosen[si] = best
		}
		if !ok {
			if need <= t {
				need = t + 1
			}
			t = need
			continue
		}
		// Commit.
		for si, seg := range a.Segments {
			pipe := chosen[si]
			end := t + int64(seg.Start) + int64(seg.Noncov)
			if seg.Noncov > 0 {
				if end > p.freeAt[pipe] {
					p.freeAt[pipe] = end
				}
				p.unitBusy[seg.Unit] += int64(seg.Noncov)
			}
		}
		if t != p.dispatchCycle {
			p.dispatchCycle = t
			p.dispatched = 0
		}
		p.dispatched++
		return t, nil
	}
	return 0, fmt.Errorf("pipesim: placement did not converge for %s", a.Name)
}

// Drain returns the total cycles from first issue to last completion.
func (p *Pipeline) Drain() int64 {
	if !p.issuedAny {
		return 0
	}
	return p.lastFinish - p.firstIssue
}

// Prune discards scoreboard entries that can no longer influence
// timing: any register or memory timestamp at or below the slowest
// unit's frontier is dominated by it. Long dynamic traces (the
// interpreter replaying millions of iterations) call this
// periodically to keep memory bounded.
func (p *Pipeline) Prune() {
	min := p.maxFrontier
	for _, f := range p.frontier {
		if f < min {
			min = f
		}
	}
	for r, t := range p.regReady {
		if t <= min {
			delete(p.regReady, r)
		}
	}
	for a, t := range p.lastWrite {
		if t <= min {
			delete(p.lastWrite, a)
		}
	}
	for a, t := range p.lastReads {
		if t <= min {
			delete(p.lastReads, a)
		}
	}
}

// ScoreboardSize reports tracked entries (for memory-bound tests).
func (p *Pipeline) ScoreboardSize() int {
	return len(p.regReady) + len(p.lastWrite) + len(p.lastReads)
}

// Cycles returns the running cycle count without resetting.
func (p *Pipeline) Cycles() int64 { return p.Drain() }

// Schedule reorders a block with greedy critical-path list scheduling —
// the stand-in for the back-end instruction scheduler whose output the
// cost model's "full overlapping" assumption describes. Dependences
// (register and memory) are preserved.
func Schedule(m *machine.Machine, b *ir.Block) *ir.Block {
	n := len(b.Instrs)
	if n == 0 {
		return b.Clone()
	}
	deps := b.Deps(false)
	succs := make([][]int, n)
	indeg := make([]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, j := range ds {
			succs[j] = append(succs[j], i)
		}
	}
	// Priority: longest latency path to any sink.
	prio := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		lat := int64(m.Latency(b.Instrs[i].Op))
		best := int64(0)
		for _, s := range succs[i] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[i] = lat + best
	}
	h := &prioHeap{prio: prio}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.Push(h, i)
		}
	}
	out := &ir.Block{Label: b.Label}
	for h.Len() > 0 {
		i := heap.Pop(h).(int)
		in := b.Instrs[i]
		in.Srcs = append([]ir.Reg(nil), in.Srcs...)
		out.Instrs = append(out.Instrs, in)
		for _, s := range succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(h, s)
			}
		}
	}
	if len(out.Instrs) != n {
		// Dependence cycle (cannot happen for straight-line code);
		// fall back to the original order.
		return b.Clone()
	}
	return out
}

type prioHeap struct {
	prio []int64
	idx  []int
}

func (h *prioHeap) Len() int { return len(h.idx) }
func (h *prioHeap) Less(a, b int) bool {
	pa, pb := h.prio[h.idx[a]], h.prio[h.idx[b]]
	if pa != pb {
		return pa > pb
	}
	return h.idx[a] < h.idx[b] // stable: program order breaks ties
}
func (h *prioHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *prioHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *prioHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// RunScheduled list-schedules then simulates: the full reference
// pipeline (back-end scheduler + hardware).
func RunScheduled(m *machine.Machine, b *ir.Block) (Result, error) {
	return Run(m, Schedule(m, b))
}

// UtilizationReport formats per-unit busy fractions for diagnostics.
func (r Result) UtilizationReport() string {
	if r.Cycles == 0 {
		return "idle"
	}
	kinds := make([]string, 0, len(r.UnitBusy))
	for k := range r.UnitBusy {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	s := ""
	for _, k := range kinds {
		s += fmt.Sprintf("%s=%.0f%% ", k, 100*float64(r.UnitBusy[machine.UnitKind(k)])/float64(r.Cycles))
	}
	return s
}
