// Package resultcache is the content-addressed result cache that
// turns predictd into a fleet-scale service: a (program, machine,
// options) triple deterministically yields one answer — the paper's
// whole premise — and since both sides are content-fingerprinted
// (source.FingerprintProgram, machine.Fingerprint), the finished
// answer can be cached and served by identity, skipping parsing,
// analysis, aggregation and search entirely.
//
// The package deliberately caches opaque bytes, not structures: the
// serving layer stores fully encoded response bodies, so a cache hit
// is byte-identical to a recomputation by construction — eviction and
// warmth can change latency, never content. Three pieces:
//
//   - Backend, the pluggable store interface. The in-process
//     implementation is Cache, a mutex-striped sharded LRU with
//     byte-size accounting; the interface is what a consistent-hash
//     peer-sharded backend would implement later.
//   - Snapshot/LoadSnapshot (snapshot.go), a checksummed on-disk image
//     for warm restarts: written on drain, loaded on boot, and
//     rejected wholesale on any corruption so a bad file can only ever
//     cost warmth.
//   - Group (singleflight.go), request coalescing on the cache key: N
//     concurrent identical computations collapse into one.
//
// Key construction (key.go) is centralized here so the soundness
// argument — exactly which request fields may influence a response —
// lives in one audited place.
package resultcache

import (
	"sync"
	"sync/atomic"
)

// Key is the 128-bit content-addressed identity of one cacheable
// result: a fingerprint over the program structure, the machine
// description, and every option that can influence the response
// bytes. Build keys with PredictKey/BatchKey/OptimizeKey.
type Key struct {
	Hi, Lo uint64
}

// Backend is the pluggable store. Implementations must be safe for
// concurrent use. Values are owned by the cache once Put and must be
// treated as immutable by callers on both sides: the in-process
// backend returns the stored slice without copying.
type Backend interface {
	// Get returns the value for key, if present.
	Get(key Key) ([]byte, bool)
	// Put stores a value. The backend may decline (e.g. an entry
	// larger than the cache itself); Put never fails loudly because
	// caching is always optional.
	Put(key Key, val []byte)
}

// Stats is a point-in-time counter snapshot of a Cache.
type Stats struct {
	Hits, Misses int64
	Puts         int64
	// Evictions counts entries dropped to make room; Rejected counts
	// Puts declined because a single value exceeded a shard's budget.
	Evictions, Rejected int64
	// Entries and Bytes describe current occupancy. Bytes includes a
	// fixed per-entry overhead, so the budget accounts for map and
	// list bookkeeping, not just payloads.
	Entries, Bytes int64
}

const (
	nShards = 16
	// entryOverhead approximates per-entry bookkeeping (map bucket,
	// list node, key, slice header) charged against the byte budget.
	entryOverhead = 96
)

// Cache is the in-process Backend: an LRU sharded 16 ways by key bits
// with per-shard byte budgets. All methods are safe for concurrent
// use; the striping keeps the predict hot path (fingerprint + one
// mutexed map probe) uncontended at serving concurrency.
type Cache struct {
	shards [nShards]shard

	hits, misses       atomic.Int64
	puts               atomic.Int64
	evictions, rejects atomic.Int64
}

// entry is one cached value, linked into its shard's LRU list
// (head = most recent).
type entry struct {
	key        Key
	val        []byte
	prev, next *entry
}

type shard struct {
	mu      sync.Mutex
	m       map[Key]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
	maxByte int64
}

// New creates a cache bounded to roughly maxBytes of stored values
// (including a fixed per-entry overhead). maxBytes <= 0 selects the
// 64 MiB default.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	perShard := maxBytes / nShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = map[Key]*entry{}
		c.shards[i].maxByte = perShard
	}
	return c
}

func (c *Cache) shardFor(key Key) *shard {
	// Lo is FNV-mixed; its low bits are well distributed.
	return &c.shards[key.Lo&(nShards-1)]
}

// Get returns the cached value and promotes the entry to
// most-recently-used.
func (c *Cache) Get(key Key) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.moveToFront(e)
	val := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, evicting least-recently-used entries as
// needed to respect the shard's byte budget. Re-putting an existing
// key replaces its value. A value larger than the whole shard budget
// is rejected (storing it would just evict everything for one entry).
func (c *Cache) Put(key Key, val []byte) {
	s := c.shardFor(key)
	size := int64(len(val)) + entryOverhead
	if size > s.maxByte {
		c.rejects.Add(1)
		return
	}
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		s.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		s.moveToFront(e)
	} else {
		e := &entry{key: key, val: val}
		s.m[key] = e
		s.pushFront(e)
		s.bytes += size
	}
	for s.bytes > s.maxByte && s.tail != nil {
		c.evictLocked(s, s.tail)
	}
	s.mu.Unlock()
	c.puts.Add(1)
}

// evictLocked unlinks e and releases its budget. Caller holds s.mu.
func (c *Cache) evictLocked(s *shard, e *entry) {
	s.unlink(e)
	delete(s.m, e.key)
	s.bytes -= int64(len(e.val)) + entryOverhead
	c.evictions.Add(1)
}

// Purge empties the cache, keeping cumulative counters.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = map[Key]*entry{}
		s.head, s.tail = nil, nil
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Stats reports cumulative counters and current occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejects.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.m))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	return int(c.Stats().Entries)
}

// pushFront links e as the most recently used entry.
func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
