package resultcache

import (
	"math"
	"sort"

	"perfpredict/internal/source"
)

// Key construction. The soundness argument for fp(program) ×
// fp(machine) × canonical-options keys:
//
//   - The program enters as its structural AST fingerprint
//     (source.FingerprintProgram): whitespace/formatting variants of
//     the same program share an entry. That is sound because no
//     response ever echoes raw request text — the optimize endpoint
//     returns the canonical *printed* form of a transformed AST, which
//     is a function of the structure alone.
//   - The machine enters as its content fingerprint
//     (machine.Fingerprint), which covers the name, the unit
//     inventory, dispatch width, flags and the entire cost table. Two
//     same-named machines with different tables can never alias; an
//     inline "spec" upload that is content-identical to a registered
//     target shares its entries safely.
//   - Options enter canonically: maps are folded in sorted key order,
//     and a presence bit distinguishes an absent map from an empty one
//     (an empty args map still requests evaluation). Only fields that
//     can change response bytes participate — worker counts and cache
//     handles are excluded by the library's byte-identical contract.
//
// Each builder starts from a distinct domain tag so the three request
// kinds can never collide, and the tag carries a version so a change
// to a response shape invalidates old snapshots by construction.

// keyOf converts a folded fingerprint into a Key.
func keyOf(fp source.Fingerprint) Key { return Key{Hi: fp.Hi, Lo: fp.Lo} }

// mixFloatMap folds a map canonically: presence bit, length, then
// sorted key/value pairs (values as IEEE-754 bits, so -0 vs +0 and
// NaN payloads are distinguished exactly as evaluation sees them).
func mixFloatMap(fp source.Fingerprint, m map[string]float64, present bool) source.Fingerprint {
	if !present {
		return fp.MixUint64(0)
	}
	fp = fp.MixUint64(1).MixUint64(uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fp = fp.MixString(k).MixUint64(math.Float64bits(m[k]))
	}
	return fp
}

// PredictKey is the identity of a single-program prediction: program
// structure × machine content × the evaluation point (args may be nil
// for "no evaluation", which differs from an empty map).
func PredictKey(prog, mach source.Fingerprint, args map[string]float64) Key {
	fp := source.Fingerprint{}.MixString("resultcache/predict/v2")
	fp = fp.Mix(prog).Mix(mach)
	fp = mixFloatMap(fp, args, args != nil)
	return keyOf(fp)
}

// BatchKey is the identity of a batch prediction: the ordered program
// fingerprints (order matters — responses are index-aligned), the
// machine, and the shared evaluation point. Worker counts are
// excluded: results are byte-identical for any worker count.
func BatchKey(progs []source.Fingerprint, mach source.Fingerprint, args map[string]float64) Key {
	fp := source.Fingerprint{}.MixString("resultcache/batch/v2")
	fp = fp.MixUint64(uint64(len(progs)))
	for _, p := range progs {
		fp = fp.Mix(p)
	}
	fp = fp.Mix(mach)
	fp = mixFloatMap(fp, args, args != nil)
	return keyOf(fp)
}

// OptimizeKey is the identity of a transformation search: program ×
// machine × the nominal point × the search bounds. Zero bounds (the
// library defaults) key differently from their explicit equivalents —
// a harmless hit-rate loss, never an aliasing risk. Worker counts and
// warm-cache handles are excluded: search trajectories are
// cache-state independent by the library's contract.
func OptimizeKey(prog, mach source.Fingerprint, nominal map[string]float64, maxNodes, maxDepth int) Key {
	fp := source.Fingerprint{}.MixString("resultcache/optimize/v2")
	fp = fp.Mix(prog).Mix(mach)
	fp = mixFloatMap(fp, nominal, nominal != nil)
	fp = fp.MixUint64(uint64(int64(maxNodes))).MixUint64(uint64(int64(maxDepth)))
	return keyOf(fp)
}

// ExplainKey is the identity of an explain diagnosis: program ×
// machine × the nominal point × whether the one-more-pipe what-if is
// included. Like OptimizeKey, nothing else can change response bytes —
// the diagnosis reads finished placements and never depends on cache
// state or concurrency.
func ExplainKey(prog, mach source.Fingerprint, nominal map[string]float64, skipWhatIf bool) Key {
	fp := source.Fingerprint{}.MixString("resultcache/explain/v1")
	fp = fp.Mix(prog).Mix(mach)
	fp = mixFloatMap(fp, nominal, nominal != nil)
	var skip uint64
	if skipWhatIf {
		skip = 1
	}
	fp = fp.MixUint64(skip)
	return keyOf(fp)
}

// ExploreKey is the identity of a design-space sweep: the machine
// template's content fingerprint (base resolved, so naming a
// registered machine and inlining the identical spec share entries),
// the ordered kernel fingerprints (order matters — cost vectors are
// index-aligned), the evaluation point, and the cost target. Worker
// counts, cache handles, and progress hooks are excluded: sweeps are
// deterministic and cache-state independent by the library's
// contract.
func ExploreKey(tpl source.Fingerprint, kernels []source.Fingerprint, args map[string]float64, target float64) Key {
	fp := source.Fingerprint{}.MixString("resultcache/explore/v1")
	fp = fp.Mix(tpl)
	fp = fp.MixUint64(uint64(len(kernels)))
	for _, k := range kernels {
		fp = fp.Mix(k)
	}
	fp = mixFloatMap(fp, args, args != nil)
	fp = fp.MixUint64(math.Float64bits(target))
	return keyOf(fp)
}

// SourceKey fingerprints raw program text that failed to parse, so
// even per-slot error responses stay content-addressed (two batches
// containing the same broken source share the same key).
func SourceKey(src string) source.Fingerprint {
	return source.Fingerprint{}.MixString("resultcache/rawsrc/v1").MixString(src)
}
