package resultcache

import (
	"context"
	"sync"
)

// Group coalesces concurrent computations of the same cache key: the
// first caller (the leader) runs the function; every caller that
// arrives while it is in flight (a follower) waits for the leader's
// result instead of duplicating the work. This is what turns N
// clients submitting the identical kernel into one search.
type Group struct {
	mu sync.Mutex
	m  map[Key]*flight
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn under key, coalescing with any in-flight call for the
// same key. It returns shared=true when the result (or error) came
// from another caller's flight. A follower whose own ctx expires
// stops waiting and returns ctx.Err() without disturbing the leader.
//
// Error sharing is deliberate — deterministic failures (a program
// that does not parse) are as content-addressed as successes — but a
// leader's *cancellation* is not deterministic: a follower receiving
// a shared error whose own ctx is still live should retry solo.
func (g *Group) Do(ctx context.Context, key Key, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[Key]*flight{}
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}
