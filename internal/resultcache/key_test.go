package resultcache_test

import (
	"testing"

	"perfpredict/internal/machine"
	"perfpredict/internal/resultcache"
	"perfpredict/internal/source"
)

// TestKeysSeparateMemorySections: two machine specs identical except
// for the memory section must produce distinct result-cache keys for
// every request kind. A shared result cache serving both specs would
// otherwise replay one hierarchy's response bytes for the other.
func TestKeysSeparateMemorySections(t *testing.T) {
	plain := machine.SpecOf(machine.NewPOWER1())
	withMem := machine.SpecOf(machine.NewPOWER1())
	withMem.Memory = machine.SpecOfHierarchy(machine.POWER1Memory())
	if err := withMem.Validate(); err != nil {
		t.Fatal(err)
	}

	mPlain, err := plain.Machine()
	if err != nil {
		t.Fatal(err)
	}
	mMem, err := withMem.Machine()
	if err != nil {
		t.Fatal(err)
	}
	fpPlain, fpMem := mPlain.Fingerprint(), mMem.Fingerprint()
	if fpPlain == fpMem {
		t.Fatal("machine fingerprints collide across memory sections; key separation is impossible")
	}

	prog := source.Fingerprint{}.MixString("some program")
	args := map[string]float64{"n": 1000}
	if resultcache.PredictKey(prog, fpPlain, args) == resultcache.PredictKey(prog, fpMem, args) {
		t.Error("PredictKey aliases across memory sections")
	}
	progs := []source.Fingerprint{prog}
	if resultcache.BatchKey(progs, fpPlain, args) == resultcache.BatchKey(progs, fpMem, args) {
		t.Error("BatchKey aliases across memory sections")
	}
	if resultcache.OptimizeKey(prog, fpPlain, args, 0, 0) == resultcache.OptimizeKey(prog, fpMem, args, 0, 0) {
		t.Error("OptimizeKey aliases across memory sections")
	}
}
