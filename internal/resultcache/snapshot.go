package resultcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Snapshot format: a warm-restart image of the cache, written on
// drain and loaded on boot.
//
//	magic   "pfpd-resultcache/v1\n"
//	count   uint32 (little-endian)
//	entries count × { keyHi u64, keyLo u64, valLen u32, val bytes }
//	check   uint64 — two-lane-collapsed FNV-1a over all entry bytes
//
// The checksum trails the entries, so a truncated file fails loudly;
// the count and per-value length bounds catch garbage before any
// allocation balloons. LoadSnapshot is all-or-nothing: a corrupt file
// leaves the cache exactly as it was (cold on boot), never partially
// filled — warmth is the only thing a snapshot can ever add.

const (
	snapshotMagic = "pfpd-resultcache/v1\n"
	// maxSnapshotValue bounds one entry's value during load; the
	// serving layer caps response bodies far below this, so anything
	// bigger is corruption, not data.
	maxSnapshotValue = 64 << 20
	// maxSnapshotCount bounds the declared entry count.
	maxSnapshotCount = 1 << 24
)

// fnvSum accumulates the checksum over entry bytes.
type fnvSum struct{ h uint64 }

func newFnvSum() fnvSum { return fnvSum{h: 14695981039346656037} }

func (s *fnvSum) write(p []byte) {
	h := s.h
	for _, c := range p {
		h = (h ^ uint64(c)) * 1099511628211
	}
	s.h = h
}

// Snapshot writes every cached entry to w, least-recently-used first,
// so loading replays them in recency order and the restored cache has
// the same eviction priorities. Concurrent reads/writes during the
// snapshot are safe; the image is a consistent per-shard view.
func (c *Cache) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	// Collect per shard under its lock; snapshot sizes are bounded by
	// the byte budget, so the copy is cheap relative to disk I/O.
	type kv struct {
		key Key
		val []byte
	}
	var all []kv
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.tail; e != nil; e = e.prev {
			all = append(all, kv{e.key, e.val})
		}
		s.mu.Unlock()
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(all)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	sum := newFnvSum()
	var buf [20]byte
	for _, e := range all {
		binary.LittleEndian.PutUint64(buf[0:8], e.key.Hi)
		binary.LittleEndian.PutUint64(buf[8:16], e.key.Lo)
		binary.LittleEndian.PutUint32(buf[16:20], uint32(len(e.val)))
		sum.write(buf[:])
		sum.write(e.val)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		if _, err := bw.Write(e.val); err != nil {
			return err
		}
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], sum.h)
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSnapshot restores entries written by Snapshot. It validates the
// whole image — magic, bounds, and trailing checksum — before
// inserting anything, so a corrupt or truncated file returns an error
// and leaves the cache untouched. Entries are inserted in file order
// (LRU first), reproducing the saved recency order; entries beyond
// the current byte budget evict normally.
func (c *Cache) LoadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("resultcache: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("resultcache: not a snapshot (bad magic %q)", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("resultcache: snapshot count: %w", err)
	}
	count := binary.LittleEndian.Uint32(hdr[:])
	if count > maxSnapshotCount {
		return fmt.Errorf("resultcache: snapshot declares %d entries (corrupt)", count)
	}
	type kv struct {
		key Key
		val []byte
	}
	all := make([]kv, 0, count)
	sum := newFnvSum()
	var buf [20]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("resultcache: snapshot entry %d: %w", i, err)
		}
		vlen := binary.LittleEndian.Uint32(buf[16:20])
		if vlen > maxSnapshotValue {
			return fmt.Errorf("resultcache: snapshot entry %d declares %d bytes (corrupt)", i, vlen)
		}
		val := make([]byte, vlen)
		if _, err := io.ReadFull(br, val); err != nil {
			return fmt.Errorf("resultcache: snapshot entry %d value: %w", i, err)
		}
		sum.write(buf[:])
		sum.write(val)
		all = append(all, kv{Key{
			Hi: binary.LittleEndian.Uint64(buf[0:8]),
			Lo: binary.LittleEndian.Uint64(buf[8:16]),
		}, val})
	}
	var trailer [8]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return fmt.Errorf("resultcache: snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(trailer[:]); got != sum.h {
		return fmt.Errorf("resultcache: snapshot checksum mismatch (%#x != %#x)", got, sum.h)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("resultcache: trailing data after snapshot")
	}
	for _, e := range all {
		c.Put(e.key, e.val)
	}
	return nil
}

// SaveFile writes a snapshot atomically: to a temp file in the same
// directory, then rename.
func (c *Cache) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a snapshot from path. Like LoadSnapshot, failure
// leaves the cache untouched; callers log and continue cold.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.LoadSnapshot(f)
}
