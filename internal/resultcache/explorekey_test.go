package resultcache_test

import (
	"testing"

	"perfpredict/internal/resultcache"
	"perfpredict/internal/source"
)

// TestExploreKeySeparation: every request dimension of a design-space
// sweep — template, kernel set, kernel order, evaluation point, cost
// target — must move the key, and the explore domain must not alias
// the other key builders even over identical inputs.
func TestExploreKeySeparation(t *testing.T) {
	tpl := source.Fingerprint{}.MixString("template A")
	tpl2 := source.Fingerprint{}.MixString("template B")
	k1 := source.Fingerprint{}.MixString("kernel 1")
	k2 := source.Fingerprint{}.MixString("kernel 2")
	args := map[string]float64{"n": 64}

	base := resultcache.ExploreKey(tpl, []source.Fingerprint{k1, k2}, args, 0)
	distinct := map[string]resultcache.Key{
		"different template": resultcache.ExploreKey(tpl2, []source.Fingerprint{k1, k2}, args, 0),
		"different kernel":   resultcache.ExploreKey(tpl, []source.Fingerprint{k1, k1}, args, 0),
		"kernel order":       resultcache.ExploreKey(tpl, []source.Fingerprint{k2, k1}, args, 0),
		"dropped kernel":     resultcache.ExploreKey(tpl, []source.Fingerprint{k1}, args, 0),
		"different args":     resultcache.ExploreKey(tpl, []source.Fingerprint{k1, k2}, map[string]float64{"n": 65}, 0),
		"nil vs empty args":  resultcache.ExploreKey(tpl, []source.Fingerprint{k1, k2}, nil, 0),
		"target set":         resultcache.ExploreKey(tpl, []source.Fingerprint{k1, k2}, args, 30000),
		"different target":   resultcache.ExploreKey(tpl, []source.Fingerprint{k1, k2}, args, 30001),
	}
	for name, key := range distinct {
		if key == base {
			t.Errorf("%s: key unchanged", name)
		}
	}

	// Stability: identical inputs rebuild the identical key (the cache
	// survives restarts via snapshots, so keys must be reproducible).
	if again := resultcache.ExploreKey(tpl, []source.Fingerprint{k1, k2}, args, 0); again != base {
		t.Error("identical inputs produced a different key")
	}

	// Domain separation: a batch over the same kernels under a machine
	// fingerprint equal to the template fingerprint must not collide.
	if b := resultcache.BatchKey([]source.Fingerprint{k1, k2}, tpl, args); b == base {
		t.Error("ExploreKey aliases BatchKey over identical inputs")
	}
}
