package resultcache

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfpredict/internal/source"
)

// key returns a deterministic test key pinned to shard 0, so
// eviction-order tests see one LRU list instead of 16.
func key(n int) Key { return Key{Hi: uint64(n), Lo: uint64(n) << 4} }

func val(n, size int) []byte {
	return bytes.Repeat([]byte{byte(n)}, size)
}

// TestGetPut pins the basic contract: miss, put, hit, replace.
func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1), val(1, 10))
	got, ok := c.Get(key(1))
	if !ok || !bytes.Equal(got, val(1, 10)) {
		t.Fatalf("get after put: %v %v", got, ok)
	}
	c.Put(key(1), val(2, 20))
	got, ok = c.Get(key(1))
	if !ok || !bytes.Equal(got, val(2, 20)) {
		t.Fatalf("get after replace: %v %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestLRUEvictionOrder fills one shard past its byte budget and
// checks that eviction follows recency: the entry touched most
// recently survives, the least recently used goes first.
func TestLRUEvictionOrder(t *testing.T) {
	// Budget for ~3 entries of 100 bytes (+overhead) in shard 0;
	// New splits the budget across 16 shards.
	per := int64(3 * (100 + entryOverhead))
	c := New(per * nShards)
	c.Put(key(1), val(1, 100))
	c.Put(key(2), val(2, 100))
	c.Put(key(3), val(3, 100))
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
	// Touch 1, so 2 becomes the LRU.
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	c.Put(key(4), val(4, 100))
	if _, ok := c.Get(key(2)); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(key(k)); !ok {
			t.Errorf("entry %d evicted out of order", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions %d, want 1", ev)
	}
}

// TestPutOversizedRejected pins that a value larger than a whole
// shard budget is declined instead of flushing the shard.
func TestPutOversizedRejected(t *testing.T) {
	c := New(nShards * 256)
	c.Put(key(1), val(1, 64))
	c.Put(key(2), val(2, 10_000))
	if _, ok := c.Get(key(2)); ok {
		t.Error("oversized value was cached")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Error("existing entry lost to an oversized put")
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Errorf("rejected %d, want 1", st.Rejected)
	}
}

// TestEvictionNeverChangesResults: every Get either misses or returns
// exactly what was Put under that key, under heavy churn in a tiny
// cache — eviction may cost hits, never corrupt values.
func TestEvictionNeverChangesResults(t *testing.T) {
	c := New(nShards * 512)
	for i := 0; i < 2000; i++ {
		k := key(i % 37)
		want := []byte(fmt.Sprintf("value-%d", i%37))
		c.Put(k, want)
		if got, ok := c.Get(k); ok && !bytes.Equal(got, want) {
			t.Fatalf("key %d returned %q, want %q", i%37, got, want)
		}
		if got, ok := c.Get(key(i % 53)); ok {
			if want := []byte(fmt.Sprintf("value-%d", i%53)); !bytes.Equal(got, want) {
				t.Fatalf("churn: key %d returned %q, want %q", i%53, got, want)
			}
		}
	}
}

// TestConcurrentHitMiss is the race gate: concurrent readers and
// writers over overlapping keys in a small (eviction-heavy) cache.
// Run under -race in CI.
func TestConcurrentHitMiss(t *testing.T) {
	c := New(nShards * 2048)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := (g*31 + i) % 97
				want := []byte(fmt.Sprintf("v%d", n))
				if i%3 == 0 {
					c.Put(Key{Hi: uint64(n), Lo: uint64(n * 7)}, want)
				}
				if got, ok := c.Get(Key{Hi: uint64(n), Lo: uint64(n * 7)}); ok && !bytes.Equal(got, want) {
					t.Errorf("key %d: got %q want %q", n, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 || st.Puts == 0 {
		t.Errorf("degenerate run: %+v", st)
	}
}

// TestSnapshotRoundTrip: save, load into a fresh cache, and require
// identical hits for every surviving key — the warm-restart contract.
func TestSnapshotRoundTrip(t *testing.T) {
	c := New(1 << 20)
	keys := make([]Key, 50)
	for i := range keys {
		keys[i] = Key{Hi: uint64(i * 3), Lo: uint64(i * 11)}
		c.Put(keys[i], val(i, 50+i))
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := New(1 << 20)
	if err := fresh.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != c.Len() {
		t.Fatalf("restored %d entries, want %d", fresh.Len(), c.Len())
	}
	for i, k := range keys {
		got, ok := fresh.Get(k)
		if !ok || !bytes.Equal(got, val(i, 50+i)) {
			t.Fatalf("key %d: restored hit diverged (%v, ok=%v)", i, got, ok)
		}
	}
}

// TestSnapshotPreservesRecency: after a round-trip, eviction order in
// the restored cache matches the original's recency order.
func TestSnapshotPreservesRecency(t *testing.T) {
	per := int64(3 * (100 + entryOverhead))
	c := New(per * nShards)
	c.Put(key(1), val(1, 100))
	c.Put(key(2), val(2, 100))
	c.Put(key(3), val(3, 100))
	c.Get(key(1)) // 2 is now LRU
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := New(per * nShards)
	if err := fresh.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh.Put(key(4), val(4, 100))
	if _, ok := fresh.Get(key(2)); ok {
		t.Error("restored cache evicted out of saved recency order (2 survived)")
	}
	if _, ok := fresh.Get(key(1)); !ok {
		t.Error("most-recently-used entry 1 evicted after restore")
	}
}

// TestCorruptSnapshotRejected: every class of damage — bad magic,
// truncation at each region, a flipped payload byte, trailing junk,
// an absurd count — must fail the load and leave the cache untouched.
func TestCorruptSnapshotRejected(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 10; i++ {
		c.Put(key(i), val(i, 100))
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, data []byte) {
		t.Run(name, func(t *testing.T) {
			fresh := New(1 << 20)
			if err := fresh.LoadSnapshot(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			if fresh.Len() != 0 {
				t.Errorf("cache partially filled (%d entries) from corrupt snapshot", fresh.Len())
			}
		})
	}

	corrupt("empty", nil)
	corrupt("bad-magic", append([]byte("not-a-snapshot-xxxxx"), good[20:]...))
	corrupt("truncated-header", good[:len(snapshotMagic)+2])
	corrupt("truncated-mid-entry", good[:len(good)/2])
	corrupt("truncated-checksum", good[:len(good)-3])
	flipped := append([]byte(nil), good...)
	flipped[len(snapshotMagic)+4+25] ^= 0x40 // a payload byte
	corrupt("flipped-byte", flipped)
	corrupt("trailing-junk", append(append([]byte(nil), good...), 0xff))
	huge := append([]byte(nil), good...)
	huge[len(snapshotMagic)] = 0xff // count low byte
	huge[len(snapshotMagic)+3] = 0xff
	corrupt("absurd-count", huge)
}

// TestSaveLoadFile covers the atomic file helpers, including the
// boot-continues-cold behavior on a corrupt file.
func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	c := New(1 << 20)
	c.Put(key(1), val(1, 64))
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := New(1 << 20)
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(key(1)); !ok {
		t.Fatal("entry lost through file round-trip")
	}
	// Corrupt on disk: load fails, cache stays cold and usable.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cold := New(1 << 20)
	if err := cold.LoadFile(path); err == nil {
		t.Fatal("corrupt file loaded")
	}
	if cold.Len() != 0 {
		t.Errorf("cold cache has %d entries after failed load", cold.Len())
	}
	cold.Put(key(2), val(2, 8))
	if _, ok := cold.Get(key(2)); !ok {
		t.Error("cache unusable after failed load")
	}
}

// TestSingleflightCoalesces: concurrent Do calls on one key run fn
// once; followers report shared=true and see the leader's value.
func TestSingleflightCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const followers = 5

	var wg sync.WaitGroup
	results := make([][]byte, followers+1)
	sharedFlags := make([]bool, followers+1)
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err, shared := g.Do(context.Background(), key(9), func() ([]byte, error) {
			calls.Add(1)
			close(started)
			<-release
			return []byte("answer"), nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0], sharedFlags[0] = v, shared
	}()
	<-started
	var arrived sync.WaitGroup
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		arrived.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Done()
			v, err, shared := g.Do(context.Background(), key(9), func() ([]byte, error) {
				calls.Add(1)
				return []byte("duplicate"), nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i], sharedFlags[i] = v, shared
		}(i)
	}
	// Let the followers reach Do before releasing the leader; the
	// leader is parked in fn, so the flight they must join is pinned.
	arrived.Wait()
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if sharedFlags[0] {
		t.Error("leader reported shared")
	}
	for i := 0; i <= followers; i++ {
		if !bytes.Equal(results[i], []byte("answer")) {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if i > 0 && !sharedFlags[i] {
			t.Errorf("follower %d not marked shared", i)
		}
	}
}

// TestSingleflightFollowerCtx: a follower whose ctx dies stops
// waiting with ctx.Err(); the leader is unaffected.
func TestSingleflightFollowerCtx(t *testing.T) {
	var g Group
	started := make(chan struct{})
	release := make(chan struct{})
	leaderOut := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(context.Background(), key(5), func() ([]byte, error) {
			close(started)
			<-release
			return []byte("x"), nil
		})
		leaderOut <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.Do(ctx, key(5), func() ([]byte, error) { return nil, nil })
	if err != context.Canceled || !shared {
		t.Fatalf("follower: err=%v shared=%v, want context.Canceled, true", err, shared)
	}
	close(release)
	if err := <-leaderOut; err != nil {
		t.Fatalf("leader: %v", err)
	}
}

// TestKeyBuilders pins the canonicalization rules that make keys
// sound: nil vs empty args differ, map order is irrelevant, every
// request field that can change response bytes changes the key, and
// the three request kinds never collide.
func TestKeyBuilders(t *testing.T) {
	fpA := source.Fingerprint{Hi: 1, Lo: 2}
	fpB := source.Fingerprint{Hi: 3, Lo: 4}
	mach := source.Fingerprint{Hi: 9, Lo: 9}

	if PredictKey(fpA, mach, nil) == PredictKey(fpA, mach, map[string]float64{}) {
		t.Error("nil args and empty args collide (empty still requests evaluation)")
	}
	a1 := map[string]float64{"n": 1, "m": 2}
	a2 := map[string]float64{"m": 2, "n": 1}
	if PredictKey(fpA, mach, a1) != PredictKey(fpA, mach, a2) {
		t.Error("same args built in different order hash differently")
	}
	if PredictKey(fpA, mach, a1) == PredictKey(fpA, mach, map[string]float64{"n": 1, "m": 3}) {
		t.Error("different arg values collide")
	}
	if PredictKey(fpA, mach, nil) == PredictKey(fpB, mach, nil) {
		t.Error("different programs collide")
	}
	if PredictKey(fpA, mach, nil) == PredictKey(fpA, fpB, nil) {
		t.Error("different machines collide")
	}

	if BatchKey([]source.Fingerprint{fpA, fpB}, mach, nil) ==
		BatchKey([]source.Fingerprint{fpB, fpA}, mach, nil) {
		t.Error("batch order is significant but keys collide")
	}

	if OptimizeKey(fpA, mach, nil, 4, 2) == OptimizeKey(fpA, mach, nil, 8, 2) {
		t.Error("different MaxNodes collide")
	}
	if OptimizeKey(fpA, mach, nil, 4, 2) == OptimizeKey(fpA, mach, nil, 4, 3) {
		t.Error("different MaxDepth collide")
	}

	// Cross-kind separation on identical inputs.
	p := PredictKey(fpA, mach, nil)
	b := BatchKey([]source.Fingerprint{fpA}, mach, nil)
	o := OptimizeKey(fpA, mach, nil, 0, 0)
	if p == b || p == o || b == o {
		t.Errorf("request kinds collide: predict=%v batch=%v optimize=%v", p, b, o)
	}
}
