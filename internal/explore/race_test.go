package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/machine"
)

func raceTemplate(t *testing.T) (*machine.SpecTemplate, []Kernel) {
	t.Helper()
	src, err := os.ReadFile("../../testdata/corpus/programs/prog001.f")
	if err != nil {
		t.Fatal(err)
	}
	tpl := &machine.SpecTemplate{
		BaseMachine: "POWER1",
		Dispatch:    &machine.IntRange{Min: 4, Max: 5},
		Pipes: map[string]machine.IntRange{
			"FPU": {Min: 1, Max: 2},
			"FXU": {Min: 1, Max: 2},
		},
	}
	return tpl, []Kernel{{Name: "prog001", Source: string(src)}}
}

// TestConcurrentExploresDeterministic runs eight sweeps at once over a
// shared, warm segment cache and demands each comes out byte-identical
// to a serial baseline. Under -race this also shakes out unsynchronised
// access to the cache and the per-sweep result assembly.
func TestConcurrentExploresDeterministic(t *testing.T) {
	tpl, kernels := raceTemplate(t)
	base, err := Run(context.Background(), tpl, kernels, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	seg := aggregate.NewSegCache()
	// Warm it once so the concurrent sweeps all hit the same entries.
	if _, err := Run(context.Background(), tpl, kernels, Options{Workers: 4, SegCache: seg}); err != nil {
		t.Fatal(err)
	}

	const sweeps = 8
	got := make([][]byte, sweeps)
	errs := make([]error, sweeps)
	var wg sync.WaitGroup
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(context.Background(), tpl, kernels, Options{Workers: 4, SegCache: seg})
			if err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = json.Marshal(res)
		}(i)
	}
	wg.Wait()
	for i := 0; i < sweeps; i++ {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want) {
			t.Errorf("sweep %d differs from the serial baseline:\n%s\nvs\n%s", i, got[i], want)
		}
	}
}

// TestCancelledExploreLeaksNoGoroutines cancels sweeps mid-flight and
// checks the worker pool drains: the goroutine count must settle back
// to where it started.
func TestCancelledExploreLeaksNoGoroutines(t *testing.T) {
	tpl, kernels := raceTemplate(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := Run(ctx, tpl, kernels, Options{Workers: 4})
			done <- err
		}()
		cancel()
		if err := <-done; err == nil {
			// The sweep may legitimately finish before cancel lands on a
			// fast machine; only a nil error *after* cancel was observed
			// by the pool would be a bug, and we can't tell the cases
			// apart. Errors are the common case; either way the leak
			// check below is the real assertion.
			continue
		}
	}
	// Give drained workers a moment to exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancelled sweeps", before, runtime.NumGoroutine())
}
