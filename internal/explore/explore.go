// Package explore is the design-space exploration engine: the
// paper's prediction model run backwards. Instead of predicting one
// program on one machine, a SpecTemplate (internal/machine) spans a
// lattice of concrete machine configurations, every kernel of a
// workload is batch-predicted on every cell through the shared
// segment-cost cache, and the configurations are reduced to a Pareto
// front over (hardware budget, per-kernel cost...).
//
// Dominance is defined ONLY on the measured cost vector plus the
// template's declared hardware-budget scalar — never on a structural
// "more resources" ordering. Greedy list scheduling is not monotone
// in resources (Graham's anomaly: the fuzz corpus contains real
// programs that the model predicts SLOWER with one more pipe), so a
// bigger machine may be dominated by a smaller one, and pruning that
// presumed resource-monotonicity would be wrong. The invariant suite
// (internal/invariants.CheckExplore) and a pinned regression on the
// prog001.f/POWER1 counterexample gate exactly this property.
package explore

import (
	"context"
	"fmt"
	"sync/atomic"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/workpool"
)

// Kernel is one workload member: an F-lite program whose predicted
// cost becomes one coordinate of every cell's cost vector.
type Kernel struct {
	// Name labels the kernel's coordinate in reports.
	Name string
	// Source is the F-lite program text.
	Source string
}

// Options tune a sweep.
type Options struct {
	// Workers bounds the cell-evaluation pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Args assigns values to program unknowns when evaluating each
	// kernel's symbolic cost. Missing probability unknowns default to
	// 0.5 and other missing unknowns to 100 — the same convention the
	// transformation search and explain mode use for ranking — so a
	// sweep never fails on an unsupplied loop bound.
	Args map[string]float64
	// Target, when positive, asks for the cheapest-budget config whose
	// total cost meets it (Result.Best). Zero means "no target":
	// Best is the fastest config instead.
	Target float64
	// SegCache is the shared straight-line segment cache; nil creates
	// a fresh private one. Content-fingerprint keys make sharing across
	// cells (and across sweeps, and with the serving endpoints) sound.
	SegCache *aggregate.SegCache
	// Progress, when set, is called after each cell evaluation with
	// (cells done, cells total). Calls may come from worker goroutines.
	Progress func(done, total int)
}

// Cell is one evaluated machine configuration.
type Cell struct {
	// Index is the cell's canonical lattice position (SpecTemplate
	// expansion order).
	Index int `json:"index"`
	// Name is the expanded spec's name: the base name suffixed with
	// the choice assignment.
	Name string `json:"name"`
	// Fingerprint is the machine's content fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Choices maps dimension keys ("dispatch", "pipes.<unit>",
	// "ops.<op>") to chosen values.
	Choices map[string]int `json:"choices,omitempty"`
	// Budget is the declared hardware-budget scalar (SpecTemplate.BudgetOf).
	Budget float64 `json:"budget"`
	// Costs holds the predicted cycles of each kernel at the
	// evaluation point, index-aligned with Result.Kernels.
	Costs []float64 `json:"costs"`
	// Total is the sum of Costs.
	Total float64 `json:"total"`
}

// Pruned records one dominated configuration and its witness: a
// retained front member that dominates it. Budget and Costs are kept
// so the dominance claim is checkable from the result alone — the
// invariant harness does exactly that.
type Pruned struct {
	Index  int       `json:"index"`
	Name   string    `json:"name"`
	Budget float64   `json:"budget"`
	Costs  []float64 `json:"costs"`
	Total  float64   `json:"total"`
	// DominatedBy is the Index of the lowest-indexed front cell that
	// dominates this one.
	DominatedBy int `json:"dominated_by"`
}

// Result is the outcome of a sweep.
type Result struct {
	// Cells is the lattice size (== len(Front) + len(Pruned)).
	Cells int `json:"cells"`
	// Kernels names the cost-vector coordinates.
	Kernels []string `json:"kernels"`
	// Target echoes Options.Target when one was set.
	Target float64 `json:"target,omitempty"`
	// Front is the Pareto front over (budget, costs...), in canonical
	// lattice order. Members are mutually non-dominated.
	Front []Cell `json:"front"`
	// Pruned lists every dominated config with its witness.
	Pruned []Pruned `json:"pruned,omitempty"`
	// Best is the cheapest-budget config with Total <= Target (ties:
	// lower Total, then lower Index), or — with no target — the config
	// with the lowest Total. Nil when a target was set and no config
	// meets it.
	Best *Cell `json:"best,omitempty"`
}

// Dominates reports whether a dominates b: no worse on the budget
// scalar and on every kernel cost, and strictly better somewhere.
// This is the ONLY ordering exploration prunes by; it never consults
// the structural resource lattice (Graham's anomaly).
func Dominates(a, b *Cell) bool {
	if a.Budget > b.Budget || len(a.Costs) != len(b.Costs) {
		return false
	}
	for i := range a.Costs {
		if a.Costs[i] > b.Costs[i] {
			return false
		}
	}
	if a.Budget < b.Budget {
		return true
	}
	for i := range a.Costs {
		if a.Costs[i] < b.Costs[i] {
			return true
		}
	}
	return false
}

// Run expands the template, prices every kernel on every cell, and
// reduces the lattice to its Pareto front. Results are deterministic:
// independent of Workers, of cache warmth, and of scheduling — every
// cell's costs are pure functions of (kernel, machine, args), and the
// frontier pass is serial over the canonical cell order.
func Run(ctx context.Context, tpl *machine.SpecTemplate, kernels []Kernel, opt Options) (*Result, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("explore: no kernels")
	}
	expanded, err := tpl.Expand()
	if err != nil {
		return nil, err
	}
	machines := make([]*machine.Machine, len(expanded))
	for i, e := range expanded {
		m, err := e.Spec.Machine()
		if err != nil {
			return nil, fmt.Errorf("explore: cell %d: %w", i, err)
		}
		machines[i] = m
	}
	seg := opt.SegCache
	if seg == nil {
		seg = aggregate.NewSegCache()
	}

	cells := make([]Cell, len(expanded))
	cellErrs := make([]error, len(expanded))
	var done atomicCounter
	total := len(expanded)
	runErr := workpool.RunCtx(ctx, len(expanded), opt.Workers, func(i int) {
		costs, err := evalCell(kernels, machines[i], seg, opt.Args)
		if err != nil {
			cellErrs[i] = err
			return
		}
		sum := 0.0
		for _, c := range costs {
			sum += c
		}
		cells[i] = Cell{
			Index:       i,
			Name:        expanded[i].Spec.Name,
			Fingerprint: machines[i].Fingerprint().String(),
			Choices:     expanded[i].Choices,
			Budget:      tpl.BudgetOf(expanded[i].Spec),
			Costs:       costs,
			Total:       sum,
		}
		if opt.Progress != nil {
			opt.Progress(done.inc(), total)
		}
	})
	if runErr != nil {
		// A partial lattice would yield a misleading front; exploration
		// is all-or-nothing under cancellation.
		return nil, runErr
	}
	for i, err := range cellErrs {
		if err != nil {
			return nil, fmt.Errorf("explore: cell %s: %w", expanded[i].Spec.Name, err)
		}
	}

	res := &Result{Cells: len(cells), Target: opt.Target}
	for _, k := range kernels {
		res.Kernels = append(res.Kernels, k.Name)
	}
	buildFrontier(res, cells)
	res.Best = pickBest(cells, opt.Target)
	return res, nil
}

// buildFrontier partitions the cells into the Pareto front and the
// pruned set, recording for each pruned cell the lowest-indexed front
// member that dominates it. O(n²) over the lattice — exact, order-
// independent, and cheap next to pricing the cells.
func buildFrontier(res *Result, cells []Cell) {
	onFront := make([]bool, len(cells))
	for i := range cells {
		dominated := false
		for j := range cells {
			if j != i && Dominates(&cells[j], &cells[i]) {
				dominated = true
				break
			}
		}
		onFront[i] = !dominated
	}
	for i := range cells {
		if onFront[i] {
			res.Front = append(res.Front, cells[i])
			continue
		}
		witness := -1
		for j := range cells {
			if onFront[j] && Dominates(&cells[j], &cells[i]) {
				witness = j
				break
			}
		}
		// A dominated cell always has a front witness: dominance is a
		// strict partial order, so following "dominates" edges upward
		// from any dominated cell terminates at an undominated one,
		// and dominance is transitive along the way.
		res.Pruned = append(res.Pruned, Pruned{
			Index:       cells[i].Index,
			Name:        cells[i].Name,
			Budget:      cells[i].Budget,
			Costs:       cells[i].Costs,
			Total:       cells[i].Total,
			DominatedBy: witness,
		})
	}
}

// pickBest selects Result.Best: with a positive target, the
// cheapest-budget cell whose Total meets it (ties broken by lower
// Total, then lower Index); without one, the lowest-Total cell
// (ties: lower Budget, then lower Index).
func pickBest(cells []Cell, target float64) *Cell {
	var best *Cell
	for i := range cells {
		c := &cells[i]
		if target > 0 {
			if c.Total > target {
				continue
			}
			if best == nil || c.Budget < best.Budget ||
				(c.Budget == best.Budget && c.Total < best.Total) {
				best = c
			}
		} else {
			if best == nil || c.Total < best.Total ||
				(c.Total == best.Total && c.Budget < best.Budget) {
				best = c
			}
		}
	}
	if best == nil {
		return nil
	}
	out := *best
	return &out
}

// atomicCounter counts finished cells for progress reporting.
type atomicCounter struct{ n atomic.Int64 }

func (c *atomicCounter) inc() int { return int(c.n.Add(1)) }

// evalCell prices every kernel on one machine and evaluates the
// symbolic costs at the sweep's evaluation point. Each evaluation
// parses its own AST — estimator state is never shared across
// goroutines — while priced segments flow through the shared,
// machine-fingerprint-keyed segment cache.
func evalCell(kernels []Kernel, m *machine.Machine, seg *aggregate.SegCache, args map[string]float64) ([]float64, error) {
	costs := make([]float64, len(kernels))
	for ki, k := range kernels {
		prog, err := source.Parse(k.Source)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		tbl, err := sem.Analyze(prog)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		res, err := aggregate.NewWithCache(tbl, m, aggregate.DefaultOptions(), seg).Program(prog)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		assign := make(map[symexpr.Var]float64, len(args)+len(res.Unknowns))
		for name, v := range args {
			assign[symexpr.Var(name)] = v
		}
		for _, u := range res.Unknowns {
			if _, ok := assign[u.Var]; ok {
				continue
			}
			if u.Kind == "probability" {
				assign[u.Var] = 0.5
			} else {
				assign[u.Var] = 100
			}
		}
		v, err := res.Cost.Eval(assign)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: eval: %w", k.Name, err)
		}
		costs[ki] = v
	}
	return costs, nil
}
