package explore

import (
	"context"
	"os"
	"testing"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/machine"
)

func benchInputs(b *testing.B) (*machine.SpecTemplate, []Kernel) {
	b.Helper()
	src, err := os.ReadFile("../../testdata/corpus/programs/prog001.f")
	if err != nil {
		b.Fatal(err)
	}
	tpl := &machine.SpecTemplate{
		BaseMachine: "POWER1",
		Dispatch:    &machine.IntRange{Min: 4, Max: 5},
		Pipes: map[string]machine.IntRange{
			"FPU": {Min: 1, Max: 2},
			"FXU": {Min: 1, Max: 2},
		},
	}
	return tpl, []Kernel{{Name: "prog001", Source: string(src)}}
}

func runExploreBench(b *testing.B, warm bool) {
	tpl, kernels := benchInputs(b)
	size, err := tpl.Size()
	if err != nil {
		b.Fatal(err)
	}
	shared := aggregate.NewSegCache()
	if warm {
		if _, err := Run(context.Background(), tpl, kernels, Options{Workers: 4, SegCache: shared}); err != nil {
			b.Fatal(err)
		}
	}
	var front int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := shared
		if !warm {
			seg = aggregate.NewSegCache()
		}
		res, err := Run(context.Background(), tpl, kernels, Options{Workers: 4, SegCache: seg})
		if err != nil {
			b.Fatal(err)
		}
		front = len(res.Front)
	}
	b.StopTimer()
	cells := float64(size) * float64(b.N)
	b.ReportMetric(cells/b.Elapsed().Seconds(), "cells/s")
	b.ReportMetric(float64(front), "front")
}

// BenchmarkExploreCold sweeps an 8-cell POWER1 lattice with a fresh
// segment cache every iteration — every cell pays full analysis cost.
func BenchmarkExploreCold(b *testing.B) { runExploreBench(b, false) }

// BenchmarkExploreWarm sweeps the same lattice over a pre-warmed
// shared segment cache, the steady state of a serving deployment.
func BenchmarkExploreWarm(b *testing.B) { runExploreBench(b, true) }
