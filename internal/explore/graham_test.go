package explore

import (
	"context"
	"os"
	"testing"

	"perfpredict/internal/machine"
)

// TestGrahamAnomalyKeepsSmallerConfig pins the counterexample that
// justifies dominance-only pruning. On POWER1, giving prog001.f a
// second FXU pipe makes the greedy packer *slower* (Graham's anomaly:
// list scheduling is not monotone in resources). A frontier builder
// that assumed "more pipes can't hurt" would prune the one-pipe
// config structurally and report the worse machine as the optimum.
// The numbers are pinned so a silent model change that erases the
// anomaly (or flips its direction) fails loudly here.
func TestGrahamAnomalyKeepsSmallerConfig(t *testing.T) {
	src, err := os.ReadFile("../../testdata/corpus/programs/prog001.f")
	if err != nil {
		t.Fatal(err)
	}
	tpl := &machine.SpecTemplate{
		BaseMachine: "POWER1",
		Pipes:       map[string]machine.IntRange{"FXU": {Min: 1, Max: 2}},
	}
	res, err := Run(context.Background(), tpl, []Kernel{{Name: "prog001", Source: string(src)}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 2 {
		t.Fatalf("lattice has %d cells, want 2", res.Cells)
	}

	if len(res.Front) != 1 {
		t.Fatalf("front has %d members, want exactly the FXU=1 config: %+v", len(res.Front), res.Front)
	}
	small := res.Front[0]
	if small.Name != "POWER1[FXU=1]" || small.Index != 0 {
		t.Fatalf("front member is %s (index %d), want POWER1[FXU=1] at index 0", small.Name, small.Index)
	}
	if small.Total != 1475663 {
		t.Errorf("FXU=1 total = %.0f cycles, pinned at 1475663", small.Total)
	}

	if len(res.Pruned) != 1 {
		t.Fatalf("pruned has %d entries, want 1: %+v", len(res.Pruned), res.Pruned)
	}
	big := res.Pruned[0]
	if big.Name != "POWER1[FXU=2]" {
		t.Fatalf("pruned config is %s, want POWER1[FXU=2]", big.Name)
	}
	if big.DominatedBy != small.Index {
		t.Errorf("witness index = %d, want %d", big.DominatedBy, small.Index)
	}
	// The anomaly itself: the structurally bigger machine runs the
	// kernel strictly slower, and costs more budget doing it.
	if big.Total <= small.Total {
		t.Errorf("anomaly gone: FXU=2 total %.0f <= FXU=1 total %.0f", big.Total, small.Total)
	}
	if big.Total != 1661006 {
		t.Errorf("FXU=2 total = %.0f cycles, pinned at 1661006", big.Total)
	}
	if big.Budget <= small.Budget {
		t.Errorf("budget ordering broken: FXU=2 %.1f <= FXU=1 %.1f", big.Budget, small.Budget)
	}

	// Best with no target is the fastest machine — the smaller one.
	if res.Best == nil || res.Best.Index != small.Index {
		t.Errorf("Best = %+v, want the FXU=1 config", res.Best)
	}
}
