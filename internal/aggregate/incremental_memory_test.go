package aggregate_test

import (
	"fmt"
	"testing"

	"perfpredict/internal/aggregate"
	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/xform"
)

// fuseSrc has two adjacent conformable loops — none of the embedded
// kernels offers the search a fusion move, so this supplies one.
const fuseSrc = `
program fusion
  integer i, n
  parameter (n = 64)
  real a(65), b(65)
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
  do i = 1, n
    b(i) = b(i) * 2.0
  end do
end
`

// TestIncrementalMatchesFullWithMemory is the memory flavor of the
// incremental ≡ full contract, exercised across every transformation
// kind the search proposes: with the POWER1 hierarchy active, a
// variant priced incrementally through caches warmed on the original
// program must equal a from-scratch pricing byte for byte — cost,
// one-time, and the memory component. This is what the nest cache's
// memroot marker and the captured mem shadow exist to guarantee.
func TestIncrementalMatchesFullWithMemory(t *testing.T) {
	m := machine.ReferencePOWER1()
	m.Memory = machine.POWER1Memory()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := aggregate.DefaultOptions()
	sig := func(r aggregate.Result) string {
		return fmt.Sprintf("cost=%s|onetime=%s|mem=%s|unknowns=%+v", r.Cost, r.OneTime, r.Memory, r.Unknowns)
	}

	type unit struct {
		name string
		prog *source.Program
		tbl  *sem.Table
	}
	var units []unit
	for _, k := range kernels.All() {
		p, tbl, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		units = append(units, unit{k.Name, p, tbl})
	}
	fp, err := source.Parse(fuseSrc)
	if err != nil {
		t.Fatal(err)
	}
	ftbl, err := sem.Analyze(fp)
	if err != nil {
		t.Fatal(err)
	}
	units = append(units, unit{"fusion", fp, ftbl})

	kindsSeen := map[string]int{}
	for _, k := range units {
		p, tbl := k.prog, k.tbl
		caches := aggregate.Caches{Seg: aggregate.NewSegCache(), Nest: aggregate.NewNestCache()}
		if _, err := aggregate.PriceIncremental(p, nil, caches, tbl, m, opt); err != nil {
			t.Fatalf("%s: warm pricing: %v", k.name, err)
		}
		for _, mv := range xform.Moves(p, xform.SearchOptions{
			Machine: m, UnrollFactors: []int{2, 4}, TileSizes: []int{16},
		}) {
			variant, err := xform.Apply(p, mv)
			if err != nil {
				// Structural filters are cheap by design; an illegal
				// move is not this test's concern.
				continue
			}
			vtbl, err := sem.Analyze(variant)
			if err != nil {
				continue
			}
			inc, err := aggregate.PriceIncremental(variant, [][]int{mv.Path}, caches, vtbl, m, opt)
			if err != nil {
				t.Fatalf("%s: incremental after %s: %v", k.name, mv, err)
			}
			full, err := aggregate.New(vtbl, m, opt).Program(variant)
			if err != nil {
				t.Fatalf("%s: full after %s: %v", k.name, mv, err)
			}
			if got, want := sig(inc), sig(full); got != want {
				t.Errorf("%s: %s: incremental diverged from full with memory active:\n got %s\nwant %s",
					k.name, mv, got, want)
			}
			kindsSeen[mv.Kind]++
		}
	}
	for _, kind := range []string{"unroll", "interchange", "tile", "fuse", "distribute"} {
		if kindsSeen[kind] == 0 {
			t.Errorf("no kernel produced a %q move; the move-kind coverage of this test regressed", kind)
		}
	}
}
