package aggregate

import (
	"fmt"
	"testing"

	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
)

// resultSignature renders every observable field of a Result so tests
// can assert byte-identical pricing.
func resultSignature(r Result) string {
	return fmt.Sprintf("cost=%s|onetime=%s|mem=%s|unknowns=%+v", r.Cost, r.OneTime, r.Memory, r.Unknowns)
}

// TestPriceIncrementalMatchesFull prices every embedded kernel three
// ways — plain estimator, cold shared caches, warm shared caches — and
// requires byte-identical results.
func TestPriceIncrementalMatchesFull(t *testing.T) {
	m := machine.NewPOWER1()
	opt := DefaultOptions()
	for _, k := range kernels.All() {
		p, tbl, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		full, err := New(tbl, m, opt).Program(p)
		if err != nil {
			t.Fatalf("%s: full: %v", k.Name, err)
		}
		caches := Caches{Seg: NewSegCache(), Nest: NewNestCache()}
		cold, err := PriceIncremental(p, nil, caches, tbl, m, opt)
		if err != nil {
			t.Fatalf("%s: cold incremental: %v", k.Name, err)
		}
		_, missesBefore := caches.Nest.Stats()
		warm, err := PriceIncremental(p, nil, caches, tbl, m, opt)
		if err != nil {
			t.Fatalf("%s: warm incremental: %v", k.Name, err)
		}
		want := resultSignature(full)
		if got := resultSignature(cold); got != want {
			t.Errorf("%s: cold incremental diverged:\n got %s\nwant %s", k.Name, got, want)
		}
		if got := resultSignature(warm); got != want {
			t.Errorf("%s: warm incremental diverged:\n got %s\nwant %s", k.Name, got, want)
		}
		hits, missesAfter := caches.Nest.Stats()
		if missesAfter != missesBefore {
			t.Errorf("%s: warm re-pricing re-priced %d nests; want 0", k.Name, missesAfter-missesBefore)
		}
		if hasLoop(p.Body) && hits == 0 {
			t.Errorf("%s: warm re-pricing hit no nests", k.Name)
		}
	}
}

func hasLoop(list []source.Stmt) bool {
	for _, s := range list {
		switch x := s.(type) {
		case *source.DoLoop:
			return true
		case *source.IfStmt:
			if hasLoop(x.Then) || hasLoop(x.Else) {
				return true
			}
		}
	}
	return false
}

// TestNestCacheRelocation stores a nest whose pricing allocated fresh
// unknowns ($o2 in program A) and splices it into a program where the
// same nest must come out with differently numbered unknowns ($o1) —
// the rename path of the relocatable-entry design.
func TestNestCacheRelocation(t *testing.T) {
	const progA = `
program pa
  integer i, j, n
  real a(100), b(100)
  do i = 1, min(n, 50)
    a(i) = a(i) + 1.0
  end do
  do j = 1, min(n, 60)
    b(j) = b(j) * 2.0
  end do
end
`
	const progB = `
program pb
  integer j, n
  real b(100)
  do j = 1, min(n, 60)
    b(j) = b(j) * 2.0
  end do
end
`
	m := machine.NewPOWER1()
	opt := DefaultOptions()
	parse := func(src string) (*source.Program, *sem.Table) {
		p, err := source.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		tbl, err := sem.Analyze(p)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		return p, tbl
	}
	pa, tblA := parse(progA)
	pb, tblB := parse(progB)

	caches := Caches{Seg: NewSegCache(), Nest: NewNestCache()}
	if _, err := PriceIncremental(pa, nil, caches, tblA, m, opt); err != nil {
		t.Fatalf("pricing A: %v", err)
	}
	hitsBefore, _ := caches.Nest.Stats()
	spliced, err := PriceIncremental(pb, nil, caches, tblB, m, opt)
	if err != nil {
		t.Fatalf("pricing B incrementally: %v", err)
	}
	hitsAfter, _ := caches.Nest.Stats()
	if hitsAfter <= hitsBefore {
		t.Fatalf("B's nest did not hit A's cached entry (hits %d -> %d)", hitsBefore, hitsAfter)
	}
	full, err := New(tblB, m, opt).Program(pb)
	if err != nil {
		t.Fatalf("pricing B fully: %v", err)
	}
	if got, want := resultSignature(spliced), resultSignature(full); got != want {
		t.Errorf("relocated splice diverged:\n got %s\nwant %s", got, want)
	}
	// The fresh unknown must have been renumbered into B's namespace.
	found := false
	for _, u := range spliced.Unknowns {
		if u.Var == "$o1" {
			found = true
		}
		if u.Var == "$o2" {
			t.Errorf("spliced result leaked A's fresh variable %s", u.Var)
		}
	}
	if !found {
		t.Errorf("spliced result missing renumbered fresh unknown $o1: %+v", spliced.Unknowns)
	}
}

// TestPriceIncrementalDirtyHint checks the advisory dirty-path hint:
// wrong hints may cost hits but never change results.
func TestPriceIncrementalDirtyHint(t *testing.T) {
	k, err := kernels.Get("matmul")
	if err != nil {
		t.Fatal(err)
	}
	p, tbl, err := k.Parse()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.NewPOWER1()
	opt := DefaultOptions()
	full, err := New(tbl, m, opt).Program(p)
	if err != nil {
		t.Fatal(err)
	}
	caches := Caches{Seg: NewSegCache(), Nest: NewNestCache()}
	for _, hint := range [][][]int{
		nil,
		{{0}},          // the whole outer nest is dirty
		{{0, 0, 0}},    // innermost nest dirty
		{{7, 3}},       // nonexistent path
		{{0}, {1}, {}}, // everything dirty, including the empty root prefix
	} {
		got, err := PriceIncremental(p, hint, caches, tbl, m, opt)
		if err != nil {
			t.Fatalf("hint %v: %v", hint, err)
		}
		if gotSig, want := resultSignature(got), resultSignature(full); gotSig != want {
			t.Errorf("hint %v diverged:\n got %s\nwant %s", hint, gotSig, want)
		}
	}
}
