package aggregate

import (
	"testing"

	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
)

// power1WithMemory returns the reference machine with the documented
// POWER1 hierarchy attached — same Name, same cost table, so only the
// Memory section distinguishes it from ReferencePOWER1.
func power1WithMemory(t *testing.T, l1Penalty int64) *machine.Machine {
	t.Helper()
	m := machine.ReferencePOWER1()
	m.Memory = machine.POWER1Memory()
	m.Memory.Levels[0].MissPenalty = l1Penalty
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMemorySectionSeparatesFingerprints: the content fingerprint must
// distinguish a machine without a hierarchy from the same machine with
// one, and two machines whose hierarchies differ only in a penalty.
// Every content-addressed key in the system (SegCache, NestCache,
// resultcache) derives from this fingerprint.
func TestMemorySectionSeparatesFingerprints(t *testing.T) {
	base := machine.ReferencePOWER1()
	mem := power1WithMemory(t, 15)
	slow := power1WithMemory(t, 30)
	if base.Fingerprint() == mem.Fingerprint() {
		t.Error("attaching a memory hierarchy did not change the fingerprint")
	}
	if mem.Fingerprint() == slow.Fingerprint() {
		t.Error("changing the L1 miss penalty did not change the fingerprint")
	}
}

// TestCachesKeyOnMemorySection is the memory flavor of the
// cache-aliasing regression: two machines identical except for the
// Memory section share one SegCache/NestCache pair, warmed by the
// memoryless machine first. The hierarchy-bearing machine must not
// read the memoryless machine's cached nest prices (or vice versa).
func TestCachesKeyOnMemorySection(t *testing.T) {
	base := machine.ReferencePOWER1()
	mem := power1WithMemory(t, 15)

	distinguished := 0
	for _, k := range kernels.All() {
		p, tbl, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		opt := DefaultOptions()

		wantBase, err := New(tbl, base, opt).Program(p)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		wantMem, err := New(tbl, mem, opt).Program(p)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if resultSignature(wantBase) == resultSignature(wantMem) {
			// A kernel with no array traffic can't distinguish the
			// machines; it proves nothing about aliasing either way.
			continue
		}
		distinguished++

		caches := Caches{Seg: NewSegCache(), Nest: NewNestCache()}
		gotBase, err := PriceIncremental(p, nil, caches, tbl, base, opt)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		gotMem, err := PriceIncremental(p, nil, caches, tbl, mem, opt)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if resultSignature(gotBase) != resultSignature(wantBase) {
			t.Errorf("%s: memoryless machine with shared caches diverged from oracle:\n got %s\nwant %s",
				k.Name, resultSignature(gotBase), resultSignature(wantBase))
		}
		if resultSignature(gotMem) != resultSignature(wantMem) {
			t.Errorf("%s: hierarchy machine read the memoryless machine's cache entries:\n got %s\nwant %s",
				k.Name, resultSignature(gotMem), resultSignature(wantMem))
		}
	}
	if distinguished == 0 {
		t.Fatal("no kernel's prediction changed when the POWER1 hierarchy was attached; the memory term is dead")
	}
}

// TestZeroPenaltyHierarchyIsInert: a hierarchy whose penalties are all
// zero prices byte-identically to no hierarchy at all, on every
// embedded kernel. This is the compatibility half of the contract —
// attaching geometry without costs must not perturb predictions.
func TestZeroPenaltyHierarchyIsInert(t *testing.T) {
	base := machine.ReferencePOWER1()
	zero := machine.ReferencePOWER1()
	zero.Memory = machine.POWER1Memory()
	zero.Memory.Levels[0].MissPenalty = 0
	zero.Memory.TLB.MissPenalty = 0
	if err := zero.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	for _, k := range kernels.All() {
		p, tbl, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		want, err := New(tbl, base, opt).Program(p)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		got, err := New(tbl, zero, opt).Program(p)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if resultSignature(got) != resultSignature(want) {
			t.Errorf("%s: zero-penalty hierarchy perturbed the prediction:\n got %s\nwant %s",
				k.Name, resultSignature(got), resultSignature(want))
		}
	}
}
