package aggregate

import (
	"testing"

	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// Stmts: fragment-level estimation under an explicit loop context —
// the entry point a restructurer uses to price one loop body.
func TestStmtsFragment(t *testing.T) {
	src := `
subroutine p(n)
  integer i, n
  real a(1000)
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
end
`
	prog, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Body[0].(*source.DoLoop)
	est := New(tbl, machine.NewPOWER1(), DefaultOptions())
	res, err := est.Stmts(loop.Body, []LoopCtx{{
		Var: "i", Lb: symexpr.Const(1), Ub: symexpr.NewVar("n"), Step: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// A fragment estimate is per iteration: constant, positive, small.
	c, ok := res.Cost.IsConst()
	if !ok || c <= 0 || c > 30 {
		t.Errorf("fragment cost: %v", res.Cost)
	}
}

// Every relational operator of a loop-index condition maps to the
// right restricted sum (exercises restrictedSum / negateRel / swapRel).
func TestAllGuardRelations(t *testing.T) {
	mk := func(rel string) string {
		return `
subroutine p(n, k)
  integer i, n, k
  real t(4000), f(4000)
  do i = 1, n
    if (i ` + rel + ` k) then
      t(i) = t(i) + 1.0
    else
      f(i) = f(i) / 3.0
    end if
  end do
end
`
	}
	n, kv := 2000.0, 700.0
	for _, rel := range []string{".le.", ".lt.", ".ge.", ".gt.", ".eq.", ".ne."} {
		res, p, tbl := estimate(t, mk(rel), DefaultOptions())
		pv := res.Cost.MustEval(map[symexpr.Var]float64{"n": n, "k": kv})
		sim := float64(simulate(t, p, tbl, map[string]float64{"n": n, "k": kv}))
		ratio := pv / sim
		if ratio < 0.6 || ratio > 1.7 {
			t.Errorf("%s: pred %.0f vs sim %.0f (%.2f)", rel, pv, sim, ratio)
		}
	}
}

// Reversed operand order `k .ge. i` is recognized too (swapRel).
func TestGuardReversedOperands(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n, k)
  integer i, n, k
  real t(4000), f(4000)
  do i = 1, n
    if (k .ge. i) then
      t(i) = t(i) + 1.0
    else
      f(i) = f(i) / 3.0
    end if
  end do
end
`, DefaultOptions())
	if res.Cost.Degree("k") != 1 {
		t.Errorf("reversed guard not split: %v", res.Cost)
	}
	for _, u := range res.Unknowns {
		if u.Kind == "probability" {
			t.Errorf("probability var for reversed guard: %+v", u)
		}
	}
}

// exprPoly corner shapes in loop bounds: products, powers, division by
// constants and by symbolic variables (Laurent).
func TestBoundExpressionShapes(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n, m)
  integer i, n, m
  real a(100000)
  do i = 1, n * m
    a(1) = a(1) + 1.0
  end do
end
`, DefaultOptions())
	if res.Cost.Degree("n") != 1 || res.Cost.Degree("m") != 1 {
		t.Errorf("product bound: %v", res.Cost)
	}

	res2, _, _ := estimate(t, `
subroutine p(n)
  integer i, n
  real a(100000)
  do i = 1, n / 2
    a(1) = a(1) + 1.0
  end do
end
`, DefaultOptions())
	at10 := res2.Cost.MustEval(map[symexpr.Var]float64{"n": 10})
	at20 := res2.Cost.MustEval(map[symexpr.Var]float64{"n": 20})
	if at20 <= at10 {
		t.Errorf("halved bound: %v", res2.Cost)
	}

	res3, _, _ := estimate(t, `
subroutine p(n)
  integer i, n
  real a(100000)
  do i = 1, n**2
    a(1) = a(1) + 1.0
  end do
end
`, DefaultOptions())
	if res3.Cost.Degree("n") != 2 {
		t.Errorf("squared bound: %v", res3.Cost)
	}

	// Division by a symbolic variable: Laurent term.
	res4, _, _ := estimate(t, `
subroutine p(n, b)
  integer i, n, b
  real a(100000)
  do i = 1, n / b
    a(1) = a(1) + 1.0
  end do
end
`, DefaultOptions())
	v := res4.Cost.MustEval(map[symexpr.Var]float64{"n": 100, "b": 4})
	v2 := res4.Cost.MustEval(map[symexpr.Var]float64{"n": 100, "b": 2})
	if v2 <= v {
		t.Errorf("Laurent bound shape: %v", res4.Cost)
	}
}

// Opaque bounds (array element as loop limit) degrade to registered
// opaque unknowns rather than errors.
func TestOpaqueBound(t *testing.T) {
	res, _, _ := estimate(t, `
program p
  integer i
  integer lim(4)
  real a(100000)
  do i = 1, lim(1)
    a(1) = a(1) + 1.0
  end do
end
`, DefaultOptions())
	foundOpaque := false
	for _, u := range res.Unknowns {
		if u.Kind == "opaque" {
			foundOpaque = true
		}
	}
	if !foundOpaque {
		t.Errorf("opaque bound not registered: %+v", res.Unknowns)
	}
}

// Cache statistics are exposed and move.
func TestSegCacheStats(t *testing.T) {
	cache := NewSegCache()
	src := `
program p
  integer i, n
  parameter (n = 10)
  real a(10)
  do i = 1, n
    a(i) = 1.0
  end do
end
`
	prog, _ := source.Parse(src)
	tbl, _ := sem.Analyze(prog)
	for pass := 0; pass < 2; pass++ {
		est := NewWithCache(tbl, machine.NewPOWER1(), DefaultOptions(), cache)
		if _, err := est.Program(prog); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats: %d hits, %d misses", hits, misses)
	}
}
