package aggregate

import (
	"testing"

	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

const daxpyLib = `
subroutine daxpy(n, alpha)
  integer i, n
  real alpha, x(4000), y(4000)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
`

func TestBuildLibraryEntry(t *testing.T) {
	e, err := BuildLibraryEntry(daxpyLib, machine.NewPOWER1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Params) != 2 || e.Params[0] != "n" {
		t.Errorf("params: %v", e.Params)
	}
	if e.Cost.Degree("n") != 1 {
		t.Errorf("cost: %v", e.Cost)
	}
}

func TestCallSiteSubstitution(t *testing.T) {
	lib := LibraryTable{}
	entry, err := BuildLibraryEntry(daxpyLib, machine.NewPOWER1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib.AddLibraryEntry("daxpy", entry)

	// Caller invokes daxpy with actual n = 2*m (symbolic) and then with
	// a constant.
	src := `
subroutine caller(m)
  integer m, n2
  real a
  a = 1.5
  n2 = 2 * m
  call daxpy(n2, a)
  call daxpy(100, a)
end
`
	p, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Library = lib
	est := New(tbl, machine.NewPOWER1(), opt)
	res, err := est.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	// The cost must be linear in the caller's unknown(s): actual n2 is
	// an opaque/bound variable; at minimum the constant call's cost is
	// folded in and the whole thing evaluates.
	nominal := map[symexpr.Var]float64{}
	for _, v := range res.Cost.Vars() {
		nominal[v] = 50
	}
	total := res.Cost.MustEval(nominal)
	// Constant call alone: C_daxpy(100) ≈ 3.5*100+5 = 355 plus linkage.
	c100 := entry.Cost.MustSubstitute("n", symexpr.Const(100))
	base, _ := c100.IsConst()
	if total < base {
		t.Errorf("caller total %v below the constant call's %v", total, base)
	}
	// Substituted expression reacts to the symbolic actual.
	hi := map[symexpr.Var]float64{}
	for v := range nominal {
		hi[v] = 500
	}
	if res.Cost.MustEval(hi) <= total {
		t.Errorf("cost not increasing in the symbolic actual: %v", res.Cost)
	}
}

func TestCallInsideLoopMultiplies(t *testing.T) {
	lib := LibraryTable{}
	entry, err := BuildLibraryEntry(daxpyLib, machine.NewPOWER1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib.AddLibraryEntry("daxpy", entry)
	src := `
subroutine caller(m)
  integer i, m
  real a
  a = 2.0
  do i = 1, m
    call daxpy(64, a)
  end do
end
`
	p, _ := source.Parse(src)
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Library = lib
	est := New(tbl, machine.NewPOWER1(), opt)
	res, err := est.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Degree("m") != 1 {
		t.Fatalf("cost: %v", res.Cost)
	}
	// Per-iteration coefficient ≈ C_daxpy(64) + linkage.
	perIter := res.Cost.CoeffOf("m", 1)
	c, ok := perIter.IsConst()
	if !ok {
		t.Fatalf("per-iter not constant: %v", perIter)
	}
	inner := entry.Cost.MustSubstitute("n", symexpr.Const(64))
	want, _ := inner.IsConst()
	if c < want || c > want+20 {
		t.Errorf("per-iteration %v vs routine cost %v", c, want)
	}
}

func TestUnknownCalleeStillLinkageOnly(t *testing.T) {
	src := `
program p
  real a(10)
  integer n
  call mystery(a, n)
end
`
	p, _ := source.Parse(src)
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Library = LibraryTable{} // table present but empty
	est := New(tbl, machine.NewPOWER1(), opt)
	res, err := est.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := res.Cost.IsConst()
	if !ok || c <= 0 || c > 50 {
		t.Errorf("unknown call cost: %v", res.Cost)
	}
}

func TestCallCostMissingActual(t *testing.T) {
	lib := LibraryTable{"f": {Params: []string{"n"}, Cost: symexpr.NewVar("n")}}
	src := `
program p
  real x
  call f()
  x = 1.0
end
`
	p, _ := source.Parse(src)
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Library = lib
	est := New(tbl, machine.NewPOWER1(), opt)
	if _, err := est.Program(p); err == nil {
		t.Error("missing actual parameter accepted")
	}
}
