package aggregate

import (
	"math"
	"testing"

	"perfpredict/internal/interp"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

func estimate(t *testing.T, src string, opt Options) (Result, *source.Program, *sem.Table) {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	e := New(tbl, machine.NewPOWER1(), opt)
	res, err := e.Program(p)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	return res, p, tbl
}

// simulate runs the program with the interpreter-driven pipeline for a
// dynamic reference cycle count.
func simulate(t *testing.T, p *source.Program, tbl *sem.Table, args map[string]float64) int64 {
	t.Helper()
	r := interp.New(p, tbl, interp.Options{Machine: machine.NewPOWER1()})
	for k, v := range args {
		r.SetScalar(k, v)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return r.Cycles()
}

func TestStraightLineProgram(t *testing.T) {
	res, _, _ := estimate(t, `
program p
  real x, y
  x = 1.0
  y = x * 2.0 + 3.0
end
`, DefaultOptions())
	c, ok := res.Cost.IsConst()
	if !ok {
		t.Fatalf("cost not constant: %v", res.Cost)
	}
	if c <= 0 || c > 40 {
		t.Errorf("cost = %v out of sane range", c)
	}
	if len(res.Unknowns) != 0 {
		t.Errorf("unexpected unknowns: %v", res.Unknowns)
	}
}

func TestConstantLoopCost(t *testing.T) {
	res, _, _ := estimate(t, `
program p
  integer i, n
  parameter (n = 100)
  real a(100), b(100)
  do i = 1, n
    b(i) = a(i) * 2.0 + 1.0
  end do
end
`, DefaultOptions())
	c, ok := res.Cost.IsConst()
	if !ok {
		t.Fatalf("cost not constant: %v", res.Cost)
	}
	// ~100 iterations × small body.
	if c < 100 || c > 3000 {
		t.Errorf("cost = %v", c)
	}
}

func TestSymbolicLoopIsLinear(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n)
  integer i, n
  real a(1000), b(1000)
  do i = 1, n
    b(i) = a(i) * 2.0 + 1.0
  end do
end
`, DefaultOptions())
	if res.Cost.Degree("n") != 1 {
		t.Fatalf("cost degree in n = %d: %v", res.Cost.Degree("n"), res.Cost)
	}
	// Unknown registry mentions n.
	found := false
	for _, u := range res.Unknowns {
		if u.Var == "n" {
			found = true
		}
	}
	if !found {
		t.Errorf("unknowns: %+v", res.Unknowns)
	}
}

func TestNestedLoopQuadratic(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n)
  integer i, j, n
  real a(100,100)
  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0
    end do
  end do
end
`, DefaultOptions())
	if res.Cost.Degree("n") != 2 {
		t.Fatalf("degree = %d: %v", res.Cost.Degree("n"), res.Cost)
	}
}

func TestTriangularLoop(t *testing.T) {
	// do i=1,n { do j=1,i { ... } }: cost ~ n²/2.
	res, _, _ := estimate(t, `
subroutine p(n)
  integer i, j, n
  real a(500500)
  do i = 1, n
    do j = 1, i
      a(j) = 1.0
    end do
  end do
end
`, DefaultOptions())
	if res.Cost.Degree("n") != 2 {
		t.Fatalf("degree = %d: %v", res.Cost.Degree("n"), res.Cost)
	}
	// Ratio of n² coefficient to a square loop's should be ~1/2: check
	// by evaluating at two points and fitting.
	c100 := res.Cost.MustEval(map[symexpr.Var]float64{"n": 100})
	c200 := res.Cost.MustEval(map[symexpr.Var]float64{"n": 200})
	ratio := c200 / c100
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("quadratic scaling ratio = %v, want ≈ 4", ratio)
	}
}

// The paper's §3.3.2 worked example: do i=1,n { if (i.le.k) Bt else Bf }
// must aggregate to k·C(Bt) + (n−k)·C(Bf) + per-iteration overhead.
func TestLoopIndexConditionSplit(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n, k)
  integer i, n, k
  real t(1000), f(1000)
  do i = 1, n
    if (i .le. k) then
      t(i) = t(i) + 1.0
    else
      f(i) = f(i) / 3.0
    end if
  end do
end
`, DefaultOptions())
	// Cost must be linear in both n and k, with no probability vars.
	if res.Cost.Degree("n") != 1 || res.Cost.Degree("k") != 1 {
		t.Fatalf("degrees: n=%d k=%d (%v)", res.Cost.Degree("n"), res.Cost.Degree("k"), res.Cost)
	}
	for _, u := range res.Unknowns {
		if u.Kind == "probability" {
			t.Errorf("probability var introduced for a loop-index condition: %+v", u)
		}
	}
	// ∂C/∂k must be the branch-cost difference: positive or negative
	// but nonzero, since the branches differ.
	dk := res.Cost.Derivative("k")
	if v, _ := dk.IsConst(); v == 0 {
		t.Errorf("k coefficient is zero: %v", res.Cost)
	}
}

func TestModProbability(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n)
  integer i, n
  real a(1000), b(1000)
  do i = 1, n
    if (mod(i, 4) .eq. 0) then
      a(i) = a(i) + 1.0
    else
      b(i) = 1.0
    end if
  end do
end
`, DefaultOptions())
	for _, u := range res.Unknowns {
		if u.Kind == "probability" {
			t.Errorf("mod condition should use 1/4, not a variable: %+v", u)
		}
	}
	if res.Cost.Degree("n") != 1 {
		t.Errorf("cost: %v", res.Cost)
	}
}

func TestUnknownConditionSymbolicProbability(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n, x)
  integer i, n
  real x, a(1000), b(1000), c(1000)
  do i = 1, n
    if (a(i) .gt. x) then
      b(i) = b(i) + a(i) * 2.0 + 1.0
      c(i) = c(i) + b(i)
    else
      b(i) = 0.0
    end if
  end do
end
`, DefaultOptions())
	var probVars int
	for _, u := range res.Unknowns {
		if u.Kind == "probability" {
			probVars++
		}
	}
	if probVars != 1 {
		t.Errorf("want 1 probability unknown, got %d (%+v)", probVars, res.Unknowns)
	}
}

func TestAssumedProbability(t *testing.T) {
	opt := DefaultOptions()
	opt.AssumeBranchProb = 0.5
	res, _, _ := estimate(t, `
subroutine p(n, x)
  integer i, n
  real x, a(1000), b(1000), c(1000)
  do i = 1, n
    if (a(i) .gt. x) then
      b(i) = b(i) + a(i) * 5.0 + 3.0
      c(i) = c(i) + b(i) * b(i)
    else
      b(i) = 0.0
    end if
  end do
end
`, opt)
	for _, u := range res.Unknowns {
		if u.Kind == "probability" {
			t.Errorf("probability var with AssumeBranchProb: %+v", u)
		}
	}
	_ = res
}

func TestCloseBranchesSimplified(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n, x)
  integer i, n
  real x, a(1000), b(1000)
  do i = 1, n
    if (a(i) .gt. x) then
      b(i) = a(i) + 1.0
    else
      b(i) = a(i) + 2.0
    end if
  end do
end
`, DefaultOptions())
	// Identical-cost branches: no probability variable should appear.
	for _, u := range res.Unknowns {
		if u.Kind == "probability" {
			t.Errorf("close branches should be averaged: %+v", u)
		}
	}
	_ = res
}

func TestPredictionVsSimulationDaxpy(t *testing.T) {
	src := `
subroutine daxpy(n, alpha)
  integer i, n
  real alpha, x(4000), y(4000)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
`
	res, p, tbl := estimate(t, src, DefaultOptions())
	for _, n := range []float64{100, 1000, 4000} {
		pred := res.Cost.MustEval(map[symexpr.Var]float64{"n": n})
		sim := float64(simulate(t, p, tbl, map[string]float64{"n": n, "alpha": 2.0}))
		ratio := pred / sim
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("n=%v: pred %v vs sim %v (ratio %.2f)", n, pred, sim, ratio)
		}
	}
}

func TestPredictionVsSimulationMatmul(t *testing.T) {
	src := `
program matmul
  integer i, j, k, n
  parameter (n = 24)
  real a(24,24), b(24,24), c(24,24)
  do i = 1, n
    do j = 1, n
      c(i,j) = 0.0
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
`
	res, p, tbl := estimate(t, src, DefaultOptions())
	pred, ok := res.Cost.IsConst()
	if !ok {
		t.Fatalf("cost not constant: %v", res.Cost)
	}
	sim := float64(simulate(t, p, tbl, nil))
	ratio := pred / sim
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("pred %v vs sim %v (ratio %.2f)", pred, sim, ratio)
	}
}

func TestCondSplitVsSimulation(t *testing.T) {
	src := `
subroutine p(n, k)
  integer i, n, k
  real t(2000), f(2000)
  do i = 1, n
    if (i .le. k) then
      t(i) = t(i) + 1.0
    else
      f(i) = f(i) / 3.0
    end if
  end do
end
`
	res, p, tbl := estimate(t, src, DefaultOptions())
	for _, k := range []float64{100, 1000, 1900} {
		pred := res.Cost.MustEval(map[symexpr.Var]float64{"n": 2000, "k": k})
		sim := float64(simulate(t, p, tbl, map[string]float64{"n": 2000, "k": k}))
		ratio := pred / sim
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("k=%v: pred %v vs sim %v (ratio %.2f)", k, pred, sim, ratio)
		}
	}
	// The prediction must move in the right direction with k: branch
	// costs differ, so C(k=100) ≠ C(k=1900).
	lo := res.Cost.MustEval(map[symexpr.Var]float64{"n": 2000, "k": 100})
	hi := res.Cost.MustEval(map[symexpr.Var]float64{"n": 2000, "k": 1900})
	simLo := float64(simulate(t, p, tbl, map[string]float64{"n": 2000, "k": 100}))
	simHi := float64(simulate(t, p, tbl, map[string]float64{"n": 2000, "k": 1900}))
	if (hi-lo)*(simHi-simLo) < 0 {
		t.Errorf("prediction trend (%v→%v) contradicts simulation (%v→%v)", lo, hi, simLo, simHi)
	}
}

func TestOneTimeCostSeparated(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n, alpha)
  integer i, n
  real alpha, x(1000), y(1000)
  do i = 1, n
    y(i) = alpha * x(i)
  end do
end
`, DefaultOptions())
	ot, ok := res.OneTime.IsConst()
	if !ok || ot <= 0 {
		t.Errorf("one-time cost = %v (hoisted alpha load expected)", res.OneTime)
	}
}

func TestStepLoop(t *testing.T) {
	res, _, _ := estimate(t, `
program p
  integer i, n
  parameter (n = 99)
  real a(100)
  do i = 1, n, 2
    a(i) = 1.0
  end do
end
`, DefaultOptions())
	c, ok := res.Cost.IsConst()
	if !ok {
		t.Fatalf("cost: %v", res.Cost)
	}
	// 50 iterations.
	full, _, _ := estimate(t, `
program p
  integer i, n
  parameter (n = 99)
  real a(100)
  do i = 1, n
    a(i) = 1.0
  end do
end
`, DefaultOptions())
	fc, _ := full.Cost.IsConst()
	ratio := fc / c
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("step-2 halving: full %v vs stepped %v", fc, c)
	}
}

func TestDegreeGrowsWithNestDepth(t *testing.T) {
	res, _, _ := estimate(t, `
subroutine p(n)
  integer i, j, k, n
  real a(64,64)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        a(1,1) = a(1,1) + 1.0
      end do
    end do
  end do
end
`, DefaultOptions())
	if res.Cost.Degree("n") != 3 {
		t.Errorf("degree = %d: %v", res.Cost.Degree("n"), res.Cost)
	}
}

func TestCondSimplifyErrorBound(t *testing.T) {
	// §3.3.2: when C(Bt) ≈ C(Bf), ignoring the split loses little.
	full := DefaultOptions()
	full.SimplifyCloseBranches = false
	simp := DefaultOptions()
	simp.SimplifyCloseBranches = true
	src := `
subroutine p(n, k)
  integer i, n, k
  real t(2000), f(2000)
  do i = 1, n
    if (i .le. k) then
      t(i) = t(i) + 1.0
    else
      f(i) = f(i) + 2.0
    end if
  end do
end
`
	rFull, _, _ := estimate(t, src, full)
	rSimp, _, _ := estimate(t, src, simp)
	at := map[symexpr.Var]float64{"n": 2000, "k": 700}
	a := rFull.Cost.MustEval(at)
	// The simplified form may have dropped k entirely.
	bAssign := map[symexpr.Var]float64{"n": 2000, "k": 700}
	b := rSimp.Cost.MustEval(bAssign)
	if math.Abs(a-b) > 0.15*math.Max(a, b) {
		t.Errorf("simplification error too large: %v vs %v", a, b)
	}
}

func TestDownwardLoop(t *testing.T) {
	res, p, tbl := estimate(t, `
program p
  integer i, n
  parameter (n = 100)
  real a(100)
  do i = n, 1, -1
    a(i) = real(i)
  end do
end
`, DefaultOptions())
	c, ok := res.Cost.IsConst()
	if !ok {
		t.Fatalf("cost: %v", res.Cost)
	}
	sim := simulate(t, p, tbl, nil)
	ratio := c / float64(sim)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("downward loop: pred %v vs sim %d", c, sim)
	}
}

func TestEmptyBodyLoop(t *testing.T) {
	res, _, _ := estimate(t, `
program p
  integer i, n
  parameter (n = 100)
  real x
  do i = 1, n
    continue
  end do
  x = 1.0
end
`, DefaultOptions())
	c, ok := res.Cost.IsConst()
	if !ok || c <= 0 {
		t.Errorf("empty-body loop cost: %v", res.Cost)
	}
	// Loop control only: well under 5 cycles per iteration.
	if c > 500 {
		t.Errorf("empty loop overpriced: %v", c)
	}
}

func TestScalarMachineDegenerate(t *testing.T) {
	// On the no-overlap machine the framework must agree with the
	// simulator almost exactly (op-count degeneration, §1.2 inverse).
	src := `
program p
  integer i, n
  parameter (n = 200)
  real a(200), b(200)
  do i = 1, n
    b(i) = a(i) * 2.0 + 1.0
  end do
end
`
	p, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	est := New(tbl, machine.NewScalar1(), DefaultOptions())
	res, err := est.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := res.Cost.IsConst()
	r := interp.New(p, tbl, interp.Options{Machine: machine.NewScalar1()})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	sim := float64(r.Cycles())
	if diff := math.Abs(c-sim) / sim; diff > 0.05 {
		t.Errorf("scalar machine: pred %v vs sim %v (%.1f%%)", c, sim, 100*diff)
	}
}
