package aggregate

import (
	"fmt"

	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
)

// LibraryEntry is the external-library cost table entry of §3.5: a
// performance expression parameterized by the routine's formal
// parameters. At a call site the actual parameters are substituted to
// obtain a site-specific expression.
type LibraryEntry struct {
	// Params are the formal parameter names appearing in Cost.
	Params []string
	// Cost is the routine's performance expression over Params (plus
	// any free unknowns of the routine itself).
	Cost symexpr.Poly
}

// LibraryTable maps routine names to their cost entries.
type LibraryTable map[string]LibraryEntry

// BuildLibraryEntry computes a routine's performance expression from
// its source — "if source code is available, the performance
// expressions of the external library routines can be computed and
// stored in an external library cost table" (§3.5).
func BuildLibraryEntry(src string, m *machine.Machine, opt Options) (LibraryEntry, error) {
	prog, err := source.Parse(src)
	if err != nil {
		return LibraryEntry{}, err
	}
	tbl, err := sem.Analyze(prog)
	if err != nil {
		return LibraryEntry{}, err
	}
	est := New(tbl, m, opt)
	res, err := est.Program(prog)
	if err != nil {
		return LibraryEntry{}, err
	}
	return LibraryEntry{Params: prog.Params, Cost: res.Cost}, nil
}

// AddLibraryEntry registers a routine under its own name.
func (t LibraryTable) AddLibraryEntry(name string, e LibraryEntry) { t[name] = e }

// callCost resolves a CALL statement against the library table:
// actual-parameter expressions are substituted for the formals. Actual
// parameters that are themselves symbolic flow through; whole-array
// arguments and non-analyzable actuals leave the corresponding formal
// as a free unknown of the call site.
func (e *Estimator) callCost(c *source.CallStmt, loopVars []string) (symexpr.Poly, bool, error) {
	if e.opt.Library == nil {
		return symexpr.Poly{}, false, nil
	}
	entry, ok := e.opt.Library[c.Name]
	if !ok {
		return symexpr.Poly{}, false, nil
	}
	cost := entry.Cost
	for i, formal := range entry.Params {
		fv := symexpr.Var(formal)
		if cost.Degree(fv) == 0 && cost.MinDegree(fv) == 0 {
			continue // formal does not appear in the expression
		}
		if i >= len(c.Args) {
			return symexpr.Poly{}, false, fmt.Errorf("%s: call %s: missing actual for %q", c.Pos, c.Name, formal)
		}
		actual := e.exprPoly(c.Args[i], loopVars)
		sub, err := cost.Substitute(fv, actual)
		if err != nil {
			return symexpr.Poly{}, false, fmt.Errorf("%s: call %s: %w", c.Pos, c.Name, err)
		}
		cost = sub
	}
	// Note the remaining unknowns for the caller.
	for _, v := range cost.Vars() {
		e.noteVar(v, "bound", fmt.Sprintf("from call %s", c.Name))
	}
	return cost, true, nil
}
