// Package aggregate implements the cost aggregation of compound
// statements (Wang, PLDI 1994, §2.4): straight-line segments are priced
// by the Tetris cost model, loops sum their body cost symbolically over
// the iteration space (Faulhaber closed forms via package symexpr),
// and conditionals combine branch costs with branching probabilities —
// kept symbolic when unknown. The §3.3.2 special case (a condition on
// the enclosing loop index, `if (i .le. k)`) is recognized and turned
// into an exact iteration-set split: C(L) = k·C(Bt) + (n−k)·C(Bf).
package aggregate

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"perfpredict/internal/cachemodel"
	"perfpredict/internal/ir"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/tetris"
)

// Options tune aggregation.
type Options struct {
	Lower  lower.Options
	Tetris tetris.Options
	// SteadyStateIters controls how many times the innermost block is
	// dropped into the bins to estimate the per-iteration cost (the
	// paper's second unrolling estimator); 1 disables overlap between
	// iterations.
	SteadyStateIters int
	// SimplifyCloseBranches drops the probability variable when the two
	// branch costs are within CloseTol of each other (§3.3.2: "if the
	// two branches … have performance estimations that are very close,
	// the reaching probability … can be ignored").
	SimplifyCloseBranches bool
	CloseTol              float64
	// AssumeBranchProb, when in (0,1], substitutes this probability for
	// unrecognized conditions instead of introducing a symbolic
	// variable (the "guess" escape hatch).
	AssumeBranchProb float64
	// Library is the external-library cost table (§3.5): calls to
	// routines listed here are priced by substituting the actual
	// parameters into the routine's stored performance expression.
	Library LibraryTable
}

// DefaultOptions matches the paper's defaults: symbolic probabilities,
// 4-drop steady state, close-branch simplification at 10%.
func DefaultOptions() Options {
	return Options{
		Lower:                 lower.DefaultOptions(),
		SteadyStateIters:      4,
		SimplifyCloseBranches: true,
		CloseTol:              0.10,
	}
}

// Unknown describes one symbolic variable introduced during
// aggregation.
type Unknown struct {
	Var  symexpr.Var
	Kind string // "bound", "probability", "opaque"
	Desc string // source text it stands for
}

// Result is an aggregated performance expression.
type Result struct {
	// Cost is total cycles as a polynomial over program unknowns.
	Cost symexpr.Poly
	// OneTime is the hoisted (loop-invariant) cost, already included
	// in Cost.
	OneTime symexpr.Poly
	// Memory is the §2.3 cache/TLB miss cost, already included in
	// Cost. Zero unless the machine declares an active memory
	// hierarchy; Cost − Memory is the in-core (Tetris) term.
	Memory symexpr.Poly
	// Unknowns lists the variables appearing in Cost.
	Unknowns []Unknown
}

// SegCache memoizes straight-line segment costs across estimations —
// the mechanism behind the paper's incremental prediction update
// (§3.3.1): a transformation's *affected region* re-prices only the
// segments it changed; unchanged segments hit the cache. Share one
// SegCache across the program variants explored by a transformation
// search, or across the workers of a batch prediction.
//
// A SegCache is safe for concurrent use by multiple goroutines: the
// entry table is striped over segShards mutex-guarded shards (selected
// by an FNV-1a hash of the segment key), and the hit/miss counters are
// atomic. Two estimators missing on the same key concurrently may both
// price the segment, but the entries they store are identical, so
// results are deterministic regardless of interleaving.
type SegCache struct {
	shards [segShards]segCacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

// segShards is the stripe count: enough to keep contention negligible
// for worker pools up to a few dozen goroutines, small enough that an
// idle cache stays cheap.
const segShards = 32

type segCacheShard struct {
	mu      sync.RWMutex
	entries map[string]segEntry
}

type segEntry struct {
	iter  float64
	pre   float64
	entry float64
}

// NewSegCache creates an empty segment cache, ready for concurrent
// use. Shard tables are created lazily on first store, so a private
// per-estimator cache costs one allocation.
func NewSegCache() *SegCache { return &SegCache{} }

// shard selects the stripe for a key (inlined FNV-1a over the key
// bytes; no allocation).
func (c *SegCache) shard(key string) *segCacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h%segShards]
}

// lookup returns the cached entry for key, counting a hit or miss.
func (c *SegCache) lookup(key string) (segEntry, bool) {
	s := c.shard(key)
	s.mu.RLock()
	ent, ok := s.entries[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ent, ok
}

// store records an entry for key.
func (c *SegCache) store(key string, ent segEntry) {
	s := c.shard(key)
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[string]segEntry{}
	}
	s.entries[key] = ent
	s.mu.Unlock()
}

// Stats reports hits and misses so far. Safe to call concurrently with
// ongoing estimations.
func (c *SegCache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}

// Len reports the number of cached segment entries.
func (c *SegCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// Estimator aggregates costs for one program unit on one machine.
type Estimator struct {
	tbl *sem.Table
	m   *machine.Machine
	opt Options

	trans    *lower.Translator
	preVals  []float64
	unknowns []Unknown
	seen     map[symexpr.Var]bool
	fresh    int
	cache    *SegCache

	// Incremental re-pricing state (see incremental.go). nc is the
	// shared nest-level cost cache; prog the program being priced
	// (needed for per-nest environment fingerprints); changed the
	// advisory dirty-path hint; logging gates the unknown-registration
	// event log that makes cached nests relocatable.
	nc      *NestCache
	prog    *source.Program
	changed [][]int
	logging bool
	events  []regEvent
	machFP  source.Fingerprint // machine content (Machine.Fingerprint)
	machKey string             // machFP rendered for textual segment keys
	keyFP   source.Fingerprint // machine + options
	auxFP   source.Fingerprint // keyFP + whole-program environment
}

// New creates an estimator with a private segment cache.
//
// An Estimator itself is single-goroutine state; to predict
// concurrently, give each goroutine its own Estimator. They may share
// one SegCache (see NewWithCache).
func New(tbl *sem.Table, m *machine.Machine, opt Options) *Estimator {
	return NewWithCache(tbl, m, opt, nil)
}

// NewWithCache creates an estimator sharing a segment cache (pass nil
// for a private one).
//
// Concurrency contract: the SegCache is safe to share between
// estimators running on different goroutines — cached segment costs
// depend only on the segment key, so concurrent fills are idempotent
// and predictions are byte-identical to serial runs. The Estimator
// returned here, like the one from New, must not itself be used from
// more than one goroutine at a time.
func NewWithCache(tbl *sem.Table, m *machine.Machine, opt Options, cache *SegCache) *Estimator {
	if opt.SteadyStateIters <= 0 {
		opt.SteadyStateIters = 4
	}
	if cache == nil {
		cache = NewSegCache()
	}
	mfp := m.Fingerprint()
	return &Estimator{
		tbl:     tbl,
		m:       m,
		opt:     opt,
		trans:   lower.New(tbl, m, opt.Lower),
		seen:    map[symexpr.Var]bool{},
		cache:   cache,
		machFP:  mfp,
		machKey: mfp.String(),
	}
}

// Program aggregates the whole program body.
func (e *Estimator) Program(p *source.Program) (Result, error) {
	e.preVals = e.preVals[:0]
	e.unknowns = nil
	e.seen = map[symexpr.Var]bool{}
	e.events = e.events[:0]
	e.prog = p
	e.logging = e.nc != nil && !e.nc.disabled
	if e.logging {
		e.auxFP = e.keyFP.Mix(source.FingerprintEnv(p))
	}
	c, err := e.stmts(p.Body, nil, []int{})
	if err != nil {
		return Result{}, err
	}
	pre := e.prePoly()
	total := c.base.Add(c.entry).Add(pre)
	for _, g := range c.guarded {
		// Guards that survive to the top level (no enclosing loop over
		// their variable) degrade to probability-like unknowns: keep
		// the term weighted by nothing — the guard variable is a free
		// unknown, so conservatively include the term fully.
		total = total.Add(g.poly)
	}
	return Result{Cost: total, OneTime: pre, Memory: c.mem, Unknowns: e.unknowns}, nil
}

// Stmts aggregates a statement list under the given enclosing loops
// (outermost first). Exposed for per-fragment estimates. Fragments
// carry no program environment, so nest-level caching is suspended for
// the duration of the call.
func (e *Estimator) Stmts(stmts []source.Stmt, loops []LoopCtx) (Result, error) {
	savedProg, savedLogging, savedChanged := e.prog, e.logging, e.changed
	e.prog, e.logging, e.changed = nil, false, nil
	defer func() { e.prog, e.logging, e.changed = savedProg, savedLogging, savedChanged }()
	e.preVals = e.preVals[:0]
	e.unknowns = nil
	e.seen = map[symexpr.Var]bool{}
	c, err := e.stmts(stmts, loops, nil)
	if err != nil {
		return Result{}, err
	}
	pre := e.prePoly()
	total := c.base.Add(c.entry).Add(pre)
	for _, g := range c.guarded {
		total = total.Add(g.poly)
	}
	return Result{Cost: total, OneTime: pre, Memory: c.mem, Unknowns: e.unknowns}, nil
}

// LoopCtx describes one enclosing loop for fragment-level estimation.
type LoopCtx struct {
	Var  string
	Lb   symexpr.Poly
	Ub   symexpr.Poly
	Step int
}

// cost is the internal compositional form: a base polynomial (per
// iteration of the enclosing loop), an entry polynomial charged once
// per activation of the innermost enclosing loop (register-promotion
// loads/stores), plus guarded terms that an enclosing loop converts
// into restricted sums. mem shadows the memory-hierarchy share of
// base: it is *included* in base, so every existing combination rule
// stays valid, and is carried separately only so the final Result can
// report the in-core vs memory split.
type cost struct {
	base    symexpr.Poly
	entry   symexpr.Poly
	mem     symexpr.Poly
	guarded []guardedTerm
}

type guardedTerm struct {
	loopVar string         // the (outer) loop variable the guard tests
	rel     source.BinKind // LE, LT, GE, GT, EQ over the loop variable
	bound   symexpr.Poly   // loop-invariant bound
	poly    symexpr.Poly   // active cost when the guard holds
}

func (c cost) add(d cost) cost {
	return cost{
		base:    c.base.Add(d.base),
		entry:   c.entry.Add(d.entry),
		mem:     c.mem.Add(d.mem),
		guarded: append(append([]guardedTerm{}, c.guarded...), d.guarded...),
	}
}

// stmts aggregates a statement list. path is the xform.Path-style
// address of the list (nil inside regions paths cannot address, such
// as IF branches); it positions loop nests for the nest cache.
func (e *Estimator) stmts(list []source.Stmt, loops []LoopCtx, path []int) (cost, error) {
	total := cost{base: symexpr.Zero(), entry: symexpr.Zero()}
	i := 0
	loopVars := make([]string, len(loops))
	for k, l := range loops {
		loopVars[k] = l.Var
	}
	for i < len(list) {
		j := i
		for j < len(list) && isStraight(list[j]) && !e.isLibCall(list[j]) {
			j++
		}
		if j > i {
			c, err := e.straight(list[i:j], loopVars, len(loops) > 0)
			if err != nil {
				return cost{}, err
			}
			total = total.add(c)
			i = j
			continue
		}
		if call, ok := list[i].(*source.CallStmt); ok && e.isLibCall(call) {
			libCost, resolved, err := e.callCost(call, loopVars)
			if err != nil {
				return cost{}, err
			}
			if resolved {
				linkage := float64(e.m.Latency(ir.OpCall))
				total = total.add(cost{base: libCost.AddConst(linkage), entry: symexpr.Zero()})
				i++
				continue
			}
		}
		switch x := list[i].(type) {
		case *source.DoLoop:
			c, err := e.loopUnit(x, loops, childPath(path, i))
			if err != nil {
				return cost{}, err
			}
			total = total.add(c)
		case *source.IfStmt:
			c, err := e.ifStmt(x, loops)
			if err != nil {
				return cost{}, err
			}
			total = total.add(c)
		case *source.ReturnStmt:
			return total, nil
		default:
			return cost{}, fmt.Errorf("%s: cannot aggregate %T", list[i].StmtPos(), list[i])
		}
		i++
	}
	return total, nil
}

// isLibCall reports whether the statement is a CALL resolvable through
// the library cost table.
func (e *Estimator) isLibCall(s source.Stmt) bool {
	c, ok := s.(*source.CallStmt)
	if !ok || e.opt.Library == nil {
		return false
	}
	_, found := e.opt.Library[c.Name]
	return found
}

func isStraight(s source.Stmt) bool {
	switch s.(type) {
	case *source.Assign, *source.CallStmt, *source.ContinueStmt:
		return true
	default:
		return false
	}
}

// straight prices a straight-line segment. Inside loops the
// steady-state per-iteration cost is used (iterations overlap in the
// bins); the hoisted preheader cost accumulates into the one-time bin.
func (e *Estimator) straight(stmts []source.Stmt, loopVars []string, inLoop bool) (cost, error) {
	key := e.segKey(stmts, loopVars, inLoop)
	if ent, ok := e.cache.lookup(key); ok {
		e.addPre(ent.pre)
		return cost{base: symexpr.Const(ent.iter), entry: symexpr.Const(ent.entry)}, nil
	}
	lw, err := e.trans.Body(stmts, loopVars)
	if err != nil {
		return cost{}, err
	}
	ent := segEntry{}
	if len(lw.Pre.Instrs) > 0 {
		preRes, err := e.tetEstimate(lw.Pre)
		if err != nil {
			return cost{}, err
		}
		ent.pre = float64(preRes.Cost)
		e.addPre(ent.pre)
	}
	switch {
	case len(lw.Body.Instrs) == 0:
	case inLoop && e.opt.SteadyStateIters > 1:
		// Register-promoted accumulators chain across iterations: the
		// steady-state drop must see the serial dependence.
		chain := map[ir.Reg]ir.Reg{}
		for _, pv := range lw.Promoted {
			if pv.InReg != ir.NoReg && pv.OutReg != ir.NoReg {
				chain[pv.InReg] = pv.OutReg
			}
		}
		per, err := e.tetSteadyStateChained(lw.Body, e.opt.SteadyStateIters, chain)
		if err != nil {
			return cost{}, err
		}
		ent.iter = per
	default:
		res, err := e.tetEstimate(lw.Body)
		if err != nil {
			return cost{}, err
		}
		ent.iter = float64(res.Cost)
	}
	// Register-promotion loads and final stores execute once per
	// activation of the innermost enclosing loop.
	for _, blk := range []*ir.Block{lw.PerEntry, lw.Post} {
		if blk == nil || len(blk.Instrs) == 0 {
			continue
		}
		res, err := e.tetEstimate(blk)
		if err != nil {
			return cost{}, err
		}
		ent.entry += float64(res.Cost)
	}
	e.cache.store(key, ent)
	return cost{base: symexpr.Const(ent.iter), entry: symexpr.Const(ent.entry)}, nil
}

// segKey builds a segment-cache key. It is prefixed with the machine's
// content fingerprint: a SegCache shared across targets (successive
// batches, multi-target searches) can only hit entries priced for a
// machine with the identical cost table — name and pointer identity
// play no part.
func (e *Estimator) segKey(stmts []source.Stmt, loopVars []string, inLoop bool) string {
	k := e.machKey + "|" + source.StmtsString(stmts) + "|" + fmt.Sprint(loopVars)
	if inLoop {
		k += "|L"
	}
	return k
}

// loop aggregates C(do v = lb, ub, step {B}) = C(lb)+C(ub)+C(step) +
// Σ_v (C(B(v)) + loop overhead) per §2.4.1. path positions the loop
// for nested nest-cache lookups (see loopUnit, the caching wrapper
// every caller goes through).
func (e *Estimator) loop(l *source.DoLoop, loops []LoopCtx, path []int) (cost, error) {
	loopVars := make([]string, len(loops))
	for k, lc := range loops {
		loopVars[k] = lc.Var
	}
	boundsCost := symexpr.Zero()
	for _, b := range []source.Expr{l.Lb, l.Ub, l.Step} {
		if b == nil {
			continue
		}
		ent, err := e.boundExprCost(b, loopVars)
		if err != nil {
			return cost{}, err
		}
		if ent.hasIter {
			boundsCost = boundsCost.AddConst(ent.iter)
		}
		if ent.hasPre {
			e.addPre(ent.pre)
		}
	}

	lbP := e.exprPoly(l.Lb, loopVars)
	ubP := e.exprPoly(l.Ub, loopVars)
	step := 1
	if l.Step != nil {
		if c, ok := e.tbl.IntConst(l.Step); ok && c != 0 {
			step = int(c)
		} else {
			// Symbolic step: fall back to a trip-count unknown.
			step = 1
			v := e.freshVar("opaque", "step "+source.ExprString(l.Step))
			_ = v
		}
	}
	if step < 0 {
		// Downward loop: normalize by swapping bounds.
		lbP, ubP = ubP, lbP
		step = -step
	}

	inner := append(append([]LoopCtx{}, loops...), LoopCtx{Var: l.Var, Lb: lbP, Ub: ubP, Step: step})
	bodyCost, err := e.stmts(l.Body, inner, path)
	if err != nil {
		return cost{}, err
	}

	// Per-iteration loop control, partially hidden under the body
	// (branch shape test, §2.4.2).
	ctl, err := e.loopOverhead(l, loopVars)
	if err != nil {
		return cost{}, err
	}
	perIter := bodyCost.base.AddConst(ctl)

	out := cost{base: boundsCost, entry: symexpr.Zero()}
	lv := symexpr.Var(l.Var)
	sum, _, err := symexpr.SumOverStep(perIter, lv, lbP, ubP, step)
	if err != nil {
		return cost{}, fmt.Errorf("%s: summing loop %s: %w", l.Pos, l.Var, err)
	}
	out.base = out.base.Add(sum)
	// The body's per-entry cost (promotion loads/stores) runs once per
	// activation of this loop, i.e. once per iteration of the parent.
	out.base = out.base.Add(bodyCost.entry)
	// The memory shadow is part of bodyCost.base and so already summed
	// into out.base; sum it separately to keep the split consistent.
	// (Memory is only ever charged at nest roots, so this is zero for
	// every nested loop today.)
	if !bodyCost.mem.IsZero() {
		ms, _, err := symexpr.SumOverStep(bodyCost.mem, lv, lbP, ubP, step)
		if err != nil {
			return cost{}, err
		}
		out.mem = out.mem.Add(ms)
	}

	// Guarded terms: restrict the iteration range when the guard tests
	// this loop's variable; otherwise sum and propagate.
	for _, g := range bodyCost.guarded {
		if g.loopVar != l.Var {
			gs, _, err := symexpr.SumOverStep(g.poly, lv, lbP, ubP, step)
			if err != nil {
				return cost{}, err
			}
			out.guarded = append(out.guarded, guardedTerm{g.loopVar, g.rel, g.bound, gs})
			continue
		}
		restricted, err := e.restrictedSum(g, lv, lbP, ubP, step)
		if err != nil {
			return cost{}, err
		}
		out.base = out.base.Add(restricted)
	}

	// At a nest root (no enclosing loop) of a machine with an active
	// memory hierarchy, fold the symbolic §2.3 miss cost for the whole
	// nest — every cache level's distinct-line count times its miss
	// penalty, plus the TLB term — into the nest's price. Inactive
	// hierarchies skip the pass entirely so that their predictions
	// (including unknown-registration order) stay byte-identical to a
	// machine with no hierarchy.
	if len(loops) == 0 && e.m.Memory.Active() {
		memP, err := e.nestMemory(l)
		if err != nil {
			return cost{}, err
		}
		if !memP.IsZero() {
			out.base = out.base.Add(memP)
			out.mem = out.mem.Add(memP)
		}
	}
	return out, nil
}

// nestMemory prices the memory traffic of one top-level loop nest:
// the subtree's loops (including imperfectly nested and branch-local
// ones) are collected with their symbolic bounds and handed to the
// cachemodel's per-level line counter. Loop variables reused by
// sibling loops keep their first-seen bounds — an approximation the
// concrete estimator shares.
func (e *Estimator) nestMemory(l *source.DoLoop) (symexpr.Poly, error) {
	var nest []cachemodel.NestLoop
	e.collectMemLoops(l, &nest, map[string]bool{})
	memP, err := cachemodel.NestMemoryCycles(e.tbl, nest, l.Body, e.m.Memory)
	if err != nil {
		return symexpr.Poly{}, fmt.Errorf("%s: memory cost of nest %s: %w", l.Pos, l.Var, err)
	}
	return memP, nil
}

// collectMemLoops walks a loop subtree outermost-first, recording each
// loop's variable and normalized symbolic bounds for the memory model.
func (e *Estimator) collectMemLoops(l *source.DoLoop, out *[]cachemodel.NestLoop, seen map[string]bool) {
	lbP := e.exprPoly(l.Lb, nil)
	ubP := e.exprPoly(l.Ub, nil)
	step := 1
	if l.Step != nil {
		if c, ok := e.tbl.IntConst(l.Step); ok && c != 0 {
			step = int(c)
		}
	}
	if step < 0 {
		lbP, ubP = ubP, lbP
		step = -step
	}
	if !seen[l.Var] {
		seen[l.Var] = true
		*out = append(*out, cachemodel.NestLoop{Var: l.Var, Lb: lbP, Ub: ubP, Step: step})
	}
	var walk func(stmts []source.Stmt)
	walk = func(stmts []source.Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *source.DoLoop:
				e.collectMemLoops(x, out, seen)
			case *source.IfStmt:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(l.Body)
}

// restrictedSum computes Σ over the guard-limited range, assuming (as
// the paper's example does) that the bound lies within the iteration
// space.
func (e *Estimator) restrictedSum(g guardedTerm, v symexpr.Var, lb, ub symexpr.Poly, step int) (symexpr.Poly, error) {
	switch g.rel {
	case source.BinLE: // v ≤ bound: lb..bound
		s, _, err := symexpr.SumOverStep(g.poly, v, lb, g.bound, step)
		return s, err
	case source.BinLT: // lb..bound−1
		s, _, err := symexpr.SumOverStep(g.poly, v, lb, g.bound.AddConst(-1), step)
		return s, err
	case source.BinGE: // bound..ub
		s, _, err := symexpr.SumOverStep(g.poly, v, g.bound, ub, step)
		return s, err
	case source.BinGT: // bound+1..ub
		s, _, err := symexpr.SumOverStep(g.poly, v, g.bound.AddConst(1), ub, step)
		return s, err
	case source.BinEQ: // single iteration v = bound
		return g.poly.Substitute(v, g.bound)
	case source.BinNE: // all but one iteration
		all, _, err := symexpr.SumOverStep(g.poly, v, lb, ub, step)
		if err != nil {
			return symexpr.Zero(), err
		}
		one, err := g.poly.Substitute(v, g.bound)
		if err != nil {
			return symexpr.Zero(), err
		}
		return all.Sub(one), nil
	default:
		return symexpr.Zero(), fmt.Errorf("unsupported guard relation %v", g.rel)
	}
}

// loopOverhead prices the increment/compare/back-branch, hidden under
// the body's shape where possible.
func (e *Estimator) loopOverhead(l *source.DoLoop, loopVars []string) (float64, error) {
	base, err := e.ctlBase()
	if err != nil {
		return 0, err
	}
	// The back-branch is covered when the body keeps the non-FXU units
	// busy past the compare (shape test): approximate with the body's
	// first straight-line segment shape.
	if shape, ok := e.shapeFor(l.Body, append(loopVars, l.Var)); ok {
		uncovered := tetris.BranchCovered(shape, int(base))
		return float64(uncovered), nil
	}
	return base, nil
}

func (e *Estimator) bodyShape(body []source.Stmt, loopVars []string) (tetris.CostBlock, bool) {
	var run []source.Stmt
	for _, s := range body {
		if !isStraight(s) {
			break
		}
		run = append(run, s)
	}
	if len(run) == 0 {
		return tetris.CostBlock{}, false
	}
	lw, err := e.trans.Body(run, loopVars)
	if err != nil || len(lw.Body.Instrs) == 0 {
		return tetris.CostBlock{}, false
	}
	res, err := e.tetEstimate(lw.Body)
	if err != nil {
		return tetris.CostBlock{}, false
	}
	return res.Shape, true
}

// ifStmt aggregates C(if c then Bt else Bf) = C(c) + pt·C(Bt) +
// pf·C(Bf) + c_br (§2.4.1).
func (e *Estimator) ifStmt(s *source.IfStmt, loops []LoopCtx) (cost, error) {
	loopVars := make([]string, len(loops))
	for k, lc := range loops {
		loopVars[k] = lc.Var
	}
	condCost := symexpr.Zero()
	lw, err := e.trans.Condition(s.Cond, loopVars)
	if err != nil {
		return cost{}, err
	}
	if len(lw.Pre.Instrs) > 0 {
		preRes, err := e.tetEstimate(lw.Pre)
		if err != nil {
			return cost{}, err
		}
		e.addPre(float64(preRes.Cost))
	}
	condRes, err := e.tetEstimate(lw.Body)
	if err != nil {
		return cost{}, err
	}
	condVal := float64(condRes.Cost)
	if len(loops) > 0 && e.opt.SteadyStateIters > 1 {
		// Repeated evaluations of the condition overlap like any other
		// straight-line block.
		per, err := e.tetSteadyState(lw.Body, e.opt.SteadyStateIters)
		if err != nil {
			return cost{}, err
		}
		condVal = per
	}
	condCost = condCost.AddConst(condVal)

	thenCost, err := e.stmts(s.Then, loops, nil)
	if err != nil {
		return cost{}, err
	}
	elseCost, err := e.stmts(s.Else, loops, nil)
	if err != nil {
		return cost{}, err
	}

	cbr := float64(e.m.BranchCost)
	// Branch-optimization shape test: a branch whose taken block keeps
	// the FXU ahead of the FP pipes hides (part of) the penalty.
	thenShape, thenShapeOK := e.shapeFor(s.Then, loopVars)
	elseShape, elseShapeOK := e.shapeFor(s.Else, loopVars)
	if thenShapeOK {
		cbr = float64(tetris.BranchCovered(thenShape, e.m.BranchCost))
	}
	// Figure 9 overlap: the condition block and the selected branch
	// interlock; credit each constant-cost branch with the shape
	// overlap, bounded so the combination stays positive.
	overlapCredit := func(c cost, shape tetris.CostBlock, ok bool) cost {
		base, isConst := c.base.IsConst()
		if !ok || !isConst || base <= 0 {
			return c
		}
		_, saved := tetris.Concat(condRes.Shape, shape)
		credit := math.Min(float64(saved), 0.8*base)
		c.base = symexpr.Const(base - credit)
		return c
	}
	thenCost = overlapCredit(thenCost, thenShape, thenShapeOK)
	elseCost = overlapCredit(elseCost, elseShape, elseShapeOK)
	out := cost{base: condCost.AddConst(cbr)}
	// Per-entry promotion costs of either branch are charged at loop
	// entry regardless of the branch taken (speculative promotion).
	out.entry = thenCost.entry.Add(elseCost.entry)

	// §3.3.2 close-branch simplification: when both branch costs are
	// (nearly) equal, the reaching probability is irrelevant.
	tb, tOK := thenCost.base.IsConst()
	eb, eOK := elseCost.base.IsConst()
	branchesClose := tOK && eOK && len(thenCost.guarded)+len(elseCost.guarded) == 0 &&
		closeEnough(tb, eb, e.opt.CloseTol)
	if e.opt.SimplifyCloseBranches && branchesClose {
		out.base = out.base.AddConst((tb + eb) / 2)
		out.mem = thenCost.mem.Add(elseCost.mem).Scale(0.5)
		return out, nil
	}

	// Loop-index condition (§3.3.2): `v REL bound` with v an enclosing
	// loop variable and bound invariant → exact iteration split.
	if v, rel, bound, ok := e.loopIndexCond(s.Cond, loops); ok {
		out.guarded = append(out.guarded, guardsFor(v, rel, bound, thenCost)...)
		out.guarded = append(out.guarded, guardsFor(v, negateRel(rel), bound, elseCost)...)
		// Memory is charged only at nest roots, and this split requires
		// an enclosing loop, so the branch mem shadows are zero here.
		out.mem = thenCost.mem.Add(elseCost.mem)
		return out, nil
	}

	// Recognized probability: mod(v, c) .eq. k → 1/c (§3.3.2's "simple
	// conditional expressions whose reaching probabilities can be
	// guessed").
	if p, ok := e.modProb(s.Cond); ok {
		out.base = out.base.
			Add(thenCost.base.Scale(p)).
			Add(elseCost.base.Scale(1 - p))
		out.mem = thenCost.mem.Scale(p).Add(elseCost.mem.Scale(1 - p))
		out.guarded = append(out.guarded, scaleGuards(thenCost.guarded, p)...)
		out.guarded = append(out.guarded, scaleGuards(elseCost.guarded, 1-p)...)
		return out, nil
	}

	// General case: symbolic branching probability.
	if e.opt.AssumeBranchProb > 0 {
		p := e.opt.AssumeBranchProb
		out.base = out.base.Add(thenCost.base.Scale(p)).Add(elseCost.base.Scale(1 - p))
		out.mem = thenCost.mem.Scale(p).Add(elseCost.mem.Scale(1 - p))
		out.guarded = append(out.guarded, scaleGuards(thenCost.guarded, p)...)
		out.guarded = append(out.guarded, scaleGuards(elseCost.guarded, 1-p)...)
		return out, nil
	}
	pv := e.freshVar("probability", source.ExprString(s.Cond))
	p := symexpr.NewVar(pv)
	oneMinus := symexpr.Const(1).Sub(p)
	out.base = out.base.
		Add(thenCost.base.Mul(p)).
		Add(elseCost.base.Mul(oneMinus))
	out.mem = thenCost.mem.Mul(p).Add(elseCost.mem.Mul(oneMinus))
	for _, g := range thenCost.guarded {
		out.guarded = append(out.guarded, guardedTerm{g.loopVar, g.rel, g.bound, g.poly.Mul(p)})
	}
	for _, g := range elseCost.guarded {
		out.guarded = append(out.guarded, guardedTerm{g.loopVar, g.rel, g.bound, g.poly.Mul(oneMinus)})
	}
	return out, nil
}

func closeEnough(a, b, tol float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return true
	}
	return math.Abs(a-b) <= tol*m
}

func guardsFor(v string, rel source.BinKind, bound symexpr.Poly, c cost) []guardedTerm {
	out := []guardedTerm{{v, rel, bound, c.base}}
	for _, g := range c.guarded {
		// Nested guards on the same variable are rare; approximate by
		// keeping the inner guard (conservative for cost shape).
		out = append(out, g)
	}
	return out
}

func scaleGuards(gs []guardedTerm, p float64) []guardedTerm {
	out := make([]guardedTerm, 0, len(gs))
	for _, g := range gs {
		out = append(out, guardedTerm{g.loopVar, g.rel, g.bound, g.poly.Scale(p)})
	}
	return out
}

func negateRel(rel source.BinKind) source.BinKind {
	switch rel {
	case source.BinLE:
		return source.BinGT
	case source.BinLT:
		return source.BinGE
	case source.BinGE:
		return source.BinLT
	case source.BinGT:
		return source.BinLE
	case source.BinEQ:
		return source.BinNE
	default:
		return source.BinEQ
	}
}

// loopIndexCond matches `v REL e` (or `e REL v`) where v is an
// enclosing loop variable and e is invariant.
func (e *Estimator) loopIndexCond(cond source.Expr, loops []LoopCtx) (string, source.BinKind, symexpr.Poly, bool) {
	b, ok := cond.(*source.BinExpr)
	if !ok || !b.Kind.IsRelational() {
		return "", 0, symexpr.Poly{}, false
	}
	isLoopVar := func(x source.Expr) (string, bool) {
		v, ok := x.(*source.VarRef)
		if !ok {
			return "", false
		}
		for _, lc := range loops {
			if lc.Var == v.Name {
				return v.Name, true
			}
		}
		return "", false
	}
	loopVarNames := map[string]bool{}
	for _, lc := range loops {
		loopVarNames[lc.Var] = true
	}
	invariant := func(x source.Expr) bool {
		used := map[string]bool{}
		collectVarNames(x, used)
		for v := range used {
			if loopVarNames[v] {
				return false
			}
		}
		return true
	}
	if v, ok := isLoopVar(b.L); ok && invariant(b.R) {
		return v, b.Kind, e.exprPoly(b.R, nil), true
	}
	if v, ok := isLoopVar(b.R); ok && invariant(b.L) {
		return v, swapRel(b.Kind), e.exprPoly(b.L, nil), true
	}
	return "", 0, symexpr.Poly{}, false
}

func swapRel(rel source.BinKind) source.BinKind {
	switch rel {
	case source.BinLE:
		return source.BinGE
	case source.BinLT:
		return source.BinGT
	case source.BinGE:
		return source.BinLE
	case source.BinGT:
		return source.BinLT
	default:
		return rel
	}
}

func collectVarNames(e source.Expr, out map[string]bool) {
	switch x := e.(type) {
	case *source.VarRef:
		out[x.Name] = true
	case *source.ArrayRef:
		out[x.Name] = true
		for _, ix := range x.Idx {
			collectVarNames(ix, out)
		}
	case *source.BinExpr:
		collectVarNames(x.L, out)
		collectVarNames(x.R, out)
	case *source.UnExpr:
		collectVarNames(x.X, out)
	case *source.IntrinsicCall:
		for _, a := range x.Args {
			collectVarNames(a, out)
		}
	}
}

// modProb recognizes mod(expr, c) REL k conditions with constant c, k:
// probability 1/c for .eq., (c−1)/c for .ne.
func (e *Estimator) modProb(cond source.Expr) (float64, bool) {
	b, ok := cond.(*source.BinExpr)
	if !ok || (b.Kind != source.BinEQ && b.Kind != source.BinNE) {
		return 0, false
	}
	m, ok := b.L.(*source.IntrinsicCall)
	if !ok || m.Name != "mod" {
		return 0, false
	}
	c, ok := e.tbl.IntConst(m.Args[1])
	if !ok || c <= 0 {
		return 0, false
	}
	if _, ok := e.tbl.IntConst(b.R); !ok {
		return 0, false
	}
	p := 1 / float64(c)
	if b.Kind == source.BinNE {
		p = 1 - p
	}
	return p, true
}

// exprPoly converts an integer expression into a performance-expression
// polynomial: foldable parts become constants, unknown scalars become
// variables, everything else becomes a registered opaque unknown.
func (e *Estimator) exprPoly(x source.Expr, loopVars []string) symexpr.Poly {
	if x == nil {
		return symexpr.Zero()
	}
	if c, ok := e.tbl.FoldConst(x); ok {
		return symexpr.Const(c)
	}
	switch v := x.(type) {
	case *source.VarRef:
		e.noteVar(symexpr.Var(v.Name), "bound", v.Name)
		return symexpr.NewVar(symexpr.Var(v.Name))
	case *source.UnExpr:
		if v.Neg {
			return e.exprPoly(v.X, loopVars).Neg()
		}
	case *source.BinExpr:
		switch v.Kind {
		case source.BinAdd:
			return e.exprPoly(v.L, loopVars).Add(e.exprPoly(v.R, loopVars))
		case source.BinSub:
			return e.exprPoly(v.L, loopVars).Sub(e.exprPoly(v.R, loopVars))
		case source.BinMul:
			return e.exprPoly(v.L, loopVars).Mul(e.exprPoly(v.R, loopVars))
		case source.BinDiv:
			if c, ok := e.tbl.FoldConst(v.R); ok && c != 0 {
				return e.exprPoly(v.L, loopVars).Scale(1 / c)
			}
			if vr, ok := v.R.(*source.VarRef); ok {
				e.noteVar(symexpr.Var(vr.Name), "bound", vr.Name)
				return e.exprPoly(v.L, loopVars).MulVar(symexpr.Var(vr.Name), -1)
			}
		case source.BinPow:
			if k, ok := e.tbl.IntConst(v.R); ok && k >= 0 && k <= 8 {
				return e.exprPoly(v.L, loopVars).Pow(int(k))
			}
		}
	case *source.IntrinsicCall:
		// mod(x, c) with constant c in a bound (e.g. the red-black
		// `do i = 2+mod(j,2), …, 2`): over the iterations of the outer
		// loop its mean is (c−1)/2, the right value to aggregate with.
		if v.Name == "mod" && len(v.Args) == 2 {
			if c, ok := e.tbl.IntConst(v.Args[1]); ok && c > 0 {
				return symexpr.Const(float64(c-1) / 2)
			}
		}
	}
	u := e.freshVar("opaque", source.ExprString(x))
	return symexpr.NewVar(u)
}

func (e *Estimator) noteVar(v symexpr.Var, kind, desc string) {
	if e.logging {
		// Log the attempt before deduplication: a cached nest must
		// replay every registration it would perform live, because the
		// seen-set it replays against differs per traversal.
		e.events = append(e.events, regEvent{v: v, kind: kind, desc: desc})
	}
	if e.seen[v] {
		return
	}
	e.seen[v] = true
	e.unknowns = append(e.unknowns, Unknown{Var: v, Kind: kind, Desc: desc})
}

func (e *Estimator) freshVar(kind, desc string) symexpr.Var {
	e.fresh++
	v := symexpr.Var(fmt.Sprintf("$%s%d", kind[:1], e.fresh))
	if e.logging {
		e.events = append(e.events, regEvent{fresh: true, v: v, kind: kind, desc: desc})
	}
	e.unknowns = append(e.unknowns, Unknown{Var: v, Kind: kind, Desc: desc})
	e.seen[v] = true
	return v
}
