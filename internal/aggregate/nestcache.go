package aggregate

import (
	"sync"
	"sync/atomic"

	"perfpredict/internal/source"
	"perfpredict/internal/tetris"
)

// NestCache memoizes whole loop-nest costs across the program variants
// of a transformation search — the layer above SegCache that makes
// re-pricing incremental (§3.3.1: a transformation's affected region is
// one nest; everything else is looked up). Entries are keyed by a
// structural fingerprint of the nest combined with its pricing context:
// the machine, the aggregation options, the enclosing loop variables
// the nest references, and the declarations/constants visible to it
// (source.FingerprintEnvFor). A nest that a move did not touch —
// including nests of *other* statements shifted by an insertion, and
// inner nests below a transformed loop — therefore hits even though
// its printed position changed.
//
// Entries are relocatable: besides the nest's cost polynomials they
// record the one-time costs and unknown-variable registrations the
// pricing performed, so a hit replays them against the current
// estimator (renaming fresh unknowns to the current counter) and the
// spliced result is byte-identical to a full re-pricing.
//
// A NestCache is safe for concurrent use: the entry table is striped
// over mutex-guarded shards and all counters are atomic. Concurrent
// misses on one key may both price the nest; the entries they store
// splice to identical results, so predictions are deterministic
// regardless of interleaving. Keys are 128-bit structural hashes;
// collisions are treated as impossible (the same stance the sharded
// SegCache takes toward its textual keys being canonical).
type NestCache struct {
	// disabled makes every lookup a counted miss and every store a
	// no-op: the estimator then performs exactly the work it would
	// without a nest cache while still reporting re-pricing and tetris
	// counters — the baseline side of a before/after measurement.
	disabled bool

	shards [nestShards]nestShard
	hits   atomic.Int64
	misses atomic.Int64
	tetris atomic.Int64

	// aux memoizes the sub-nest pieces that dominate the cost of
	// re-pricing a nest that *did* change: the constant loop-control
	// overhead, leading-run cost-block shapes, and loop-bound
	// evaluation costs. These fire even when the enclosing nest misses.
	auxMu  sync.RWMutex
	ctl    map[source.Fingerprint]float64
	shapes map[source.Fingerprint]shapeEntry
	bounds map[source.Fingerprint]boundsEntry
}

const nestShards = 16

type nestShard struct {
	mu      sync.RWMutex
	entries map[source.Fingerprint]*nestEntry
}

// shapeEntry caches one bodyShape result (ok=false marks bodies with
// no usable leading straight-line run).
type shapeEntry struct {
	shape tetris.CostBlock
	ok    bool
}

// boundsEntry caches the evaluation cost of one loop-bound expression:
// the iterative part and the hoisted (preheader) part, with presence
// flags so the replay performs exactly the operations the original
// pricing did.
type boundsEntry struct {
	iter    float64
	pre     float64
	hasIter bool
	hasPre  bool
}

// NewNestCache creates an empty nest-level cost cache, ready for
// concurrent use.
func NewNestCache() *NestCache { return &NestCache{} }

// NewNestCacheCounting creates a cache in counting mode: it never hits
// and never stores, but still counts every nest re-pricing and tetris
// invocation. Estimators using it do exactly the work of cache-less
// aggregation — the baseline for measuring what an active cache saves.
func NewNestCacheCounting() *NestCache { return &NestCache{disabled: true} }

// Disabled reports whether the cache is in counting (never-hit) mode.
func (c *NestCache) Disabled() bool { return c.disabled }

func (c *NestCache) lookup(k source.Fingerprint) (*nestEntry, bool) {
	if c.disabled {
		c.misses.Add(1)
		return nil, false
	}
	s := &c.shards[k.Lo%nestShards]
	s.mu.RLock()
	ent, ok := s.entries[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ent, ok
}

// missDirect counts a re-pricing whose lookup was skipped (the caller
// knew the nest was dirty).
func (c *NestCache) missDirect() { c.misses.Add(1) }

func (c *NestCache) store(k source.Fingerprint, ent *nestEntry) {
	if c.disabled {
		return
	}
	s := &c.shards[k.Lo%nestShards]
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[source.Fingerprint]*nestEntry{}
	}
	s.entries[k] = ent
	s.mu.Unlock()
}

func (c *NestCache) ctlLookup(k source.Fingerprint) (float64, bool) {
	c.auxMu.RLock()
	v, ok := c.ctl[k]
	c.auxMu.RUnlock()
	return v, ok
}

func (c *NestCache) ctlStore(k source.Fingerprint, v float64) {
	c.auxMu.Lock()
	if c.ctl == nil {
		c.ctl = map[source.Fingerprint]float64{}
	}
	c.ctl[k] = v
	c.auxMu.Unlock()
}

func (c *NestCache) shapeLookup(k source.Fingerprint) (shapeEntry, bool) {
	c.auxMu.RLock()
	v, ok := c.shapes[k]
	c.auxMu.RUnlock()
	return v, ok
}

func (c *NestCache) shapeStore(k source.Fingerprint, v shapeEntry) {
	c.auxMu.Lock()
	if c.shapes == nil {
		c.shapes = map[source.Fingerprint]shapeEntry{}
	}
	c.shapes[k] = v
	c.auxMu.Unlock()
}

func (c *NestCache) boundsLookup(k source.Fingerprint) (boundsEntry, bool) {
	c.auxMu.RLock()
	v, ok := c.bounds[k]
	c.auxMu.RUnlock()
	return v, ok
}

func (c *NestCache) boundsStore(k source.Fingerprint, v boundsEntry) {
	c.auxMu.Lock()
	if c.bounds == nil {
		c.bounds = map[source.Fingerprint]boundsEntry{}
	}
	c.bounds[k] = v
	c.auxMu.Unlock()
}

// Stats reports nest-level hits and misses so far; misses count nests
// actually re-priced (including dirty nests whose lookup was skipped).
// Safe to call concurrently with ongoing estimations.
func (c *NestCache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}

// TetrisCalls reports how many tetris estimator invocations (Estimate,
// SteadyState, SteadyStateChained) estimators attached to this cache
// have performed — the work metric the nest cache exists to reduce.
func (c *NestCache) TetrisCalls() int { return int(c.tetris.Load()) }

// Len reports the number of cached nest entries.
func (c *NestCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.RUnlock()
	}
	return n
}
