package aggregate

import (
	"fmt"
	"sort"
	"strings"

	"perfpredict/internal/ir"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/sem"
	"perfpredict/internal/source"
	"perfpredict/internal/symexpr"
	"perfpredict/internal/tetris"
)

// Caches bundles the two memoization layers an estimator can share
// across program variants: the straight-line segment cache and the
// loop-nest cost cache. Either may be nil.
type Caches struct {
	Seg  *SegCache
	Nest *NestCache
}

// NewWithCaches creates an estimator sharing both cache layers. A nil
// Seg gets a private segment cache; a nil Nest disables nest-level
// caching (the estimator behaves exactly like NewWithCache).
//
// The concurrency contract of NewWithCache extends to the nest cache:
// both caches may be shared by estimators on different goroutines, and
// predictions remain byte-identical to serial, cache-less runs.
func NewWithCaches(tbl *sem.Table, m *machine.Machine, opt Options, caches Caches) *Estimator {
	e := NewWithCache(tbl, m, opt, caches.Seg)
	if caches.Nest != nil {
		e.nc = caches.Nest
		e.keyFP = optionsFingerprint(e.machFP, e.opt)
	}
	return e
}

// PriceIncremental prices a program against shared caches, treating
// changedPaths as a hint naming the statement paths (in the xform.Path
// convention: indices descending through DO-loop bodies) that differ
// from previously priced variants. Loop nests on or above a changed
// path skip their cache probe — they are known dirty — while every
// other nest is looked up and, on a hit, spliced from its cached
// polynomials without re-lowering or re-estimating.
//
// The hint is advisory only: correctness comes from the structural
// fingerprints in the cache keys, so stale, empty, or wrong paths can
// cost hit-rate but can never change a result. The returned Result is
// byte-identical to a full re-pricing by New(tbl, m, opt).Program.
func PriceIncremental(p *source.Program, changedPaths [][]int, caches Caches, tbl *sem.Table, m *machine.Machine, opt Options) (Result, error) {
	e := NewWithCaches(tbl, m, opt, caches)
	e.changed = changedPaths
	return e.Program(p)
}

// optionsFingerprint hashes everything besides the program that a
// cached cost depends on: the machine *content* fingerprint (unit
// inventory, dispatch width, flags, and the whole cost table — never
// just the name, so same-named targets with different tables cannot
// alias) and the full option set (lowering flags, tetris options,
// steady-state and branch handling, and the external-library table).
func optionsFingerprint(machFP source.Fingerprint, opt Options) source.Fingerprint {
	fp := machFP
	fp = fp.MixString(fmt.Sprintf("%+v|%+v|%d|%t|%g|%g",
		opt.Lower, opt.Tetris, opt.SteadyStateIters,
		opt.SimplifyCloseBranches, opt.CloseTol, opt.AssumeBranchProb))
	if len(opt.Library) > 0 {
		names := make([]string, 0, len(opt.Library))
		for n := range opt.Library {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ent := opt.Library[n]
			fp = fp.MixString(n).
				MixString(strings.Join(ent.Params, ",")).
				MixString(ent.Cost.String())
		}
	}
	return fp
}

// regEvent is one unknown-variable registration performed while
// pricing a nest. Replaying the log against another estimator
// reproduces its effect exactly: named events re-attempt noteVar (so
// deduplication happens against the *current* seen-set, as a live
// traversal would), and fresh events allocate a new fresh variable
// whose name replaces the recorded one in the cached polynomials.
type regEvent struct {
	fresh bool
	v     symexpr.Var
	kind  string
	desc  string
}

// nestEntry is one relocatable cached nest cost: the compositional
// cost polynomials plus everything the pricing did to estimator state
// (hoisted one-time costs in order, unknown registrations in order).
type nestEntry struct {
	base    symexpr.Poly
	entry   symexpr.Poly
	mem     symexpr.Poly
	guarded []guardedTerm
	pres    []float64
	events  []regEvent
}

// recMark delimits the estimator-state suffix produced while pricing
// one nest.
type recMark struct {
	pre int
	ev  int
}

func (e *Estimator) mark() recMark {
	return recMark{pre: len(e.preVals), ev: len(e.events)}
}

// captureNest packages the pricing of one nest (its cost plus the
// estimator-state suffix since mark) into a relocatable entry.
func (e *Estimator) captureNest(m recMark, c cost) *nestEntry {
	ent := &nestEntry{
		base:   c.base,
		entry:  c.entry,
		mem:    c.mem,
		pres:   append([]float64(nil), e.preVals[m.pre:]...),
		events: append([]regEvent(nil), e.events[m.ev:]...),
	}
	if len(c.guarded) > 0 {
		ent.guarded = append([]guardedTerm(nil), c.guarded...)
	}
	return ent
}

// splice replays a cached nest entry against the current estimator
// state: one-time costs are re-applied in order, unknown registrations
// are replayed (named ones dedup against the current seen-set; fresh
// ones draw new names from the current counter), and the cached
// polynomials are renamed to the freshly drawn names. The result is
// exactly what pricing the nest live would have produced.
func (e *Estimator) splice(ent *nestEntry) cost {
	for _, v := range ent.pres {
		e.addPre(v)
	}
	var ren map[symexpr.Var]symexpr.Var
	for _, ev := range ent.events {
		if !ev.fresh {
			e.noteVar(ev.v, ev.kind, ev.desc)
			continue
		}
		nv := e.freshVar(ev.kind, ev.desc)
		if nv != ev.v {
			if ren == nil {
				ren = map[symexpr.Var]symexpr.Var{}
			}
			ren[ev.v] = nv
		}
	}
	c := cost{base: ent.base, entry: ent.entry, mem: ent.mem}
	if len(ent.guarded) > 0 {
		c.guarded = append([]guardedTerm(nil), ent.guarded...)
	}
	if ren != nil {
		c.base = symexpr.RenameVars(c.base, ren)
		c.entry = symexpr.RenameVars(c.entry, ren)
		c.mem = symexpr.RenameVars(c.mem, ren)
		for i := range c.guarded {
			c.guarded[i].bound = symexpr.RenameVars(c.guarded[i].bound, ren)
			c.guarded[i].poly = symexpr.RenameVars(c.guarded[i].poly, ren)
		}
	}
	return c
}

// loopUnit prices one loop nest through the nest cache: a hit splices
// the cached cost, a miss prices the nest live and stores the capture.
// path is this loop's statement path (nil when the nest sits in a
// region paths cannot address, e.g. inside an IF branch).
func (e *Estimator) loopUnit(l *source.DoLoop, loops []LoopCtx, path []int) (cost, error) {
	if e.nc == nil || e.prog == nil {
		return e.loop(l, loops, path)
	}
	if e.nc.disabled {
		e.nc.missDirect()
		return e.loop(l, loops, path)
	}
	key := e.nestKey(l, loops)
	if e.pathDirty(path) {
		e.nc.missDirect()
	} else if ent, ok := e.nc.lookup(key); ok {
		return e.splice(ent), nil
	}
	m := e.mark()
	c, err := e.loop(l, loops, path)
	if err != nil {
		return cost{}, err
	}
	e.nc.store(key, e.captureNest(m, c))
	return c, nil
}

// nestKey builds the cache key of a nest: its structural fingerprint
// mixed with the pricing context it can observe — the machine/options
// fingerprint, the enclosing loop variables the nest references (in
// order; unreferenced enclosing variables are provably invisible to
// lowering and aggregation), and the declarations, constants, and
// distribution directives of referenced names.
func (e *Estimator) nestKey(l *source.DoLoop, loops []LoopCtx) source.Fingerprint {
	names := map[string]bool{}
	source.StmtNames(l, names)
	fp := e.keyFP.Mix(source.FingerprintStmt(l))
	for _, lc := range loops {
		if names[lc.Var] {
			fp = fp.MixString(lc.Var)
		}
	}
	// A nest priced at the top level of a memory-active machine carries
	// the hierarchy charge; the identical subtree nested inside another
	// loop does not. Mark root pricings so the two can never alias.
	if len(loops) == 0 && e.m.Memory.Active() {
		fp = fp.MixString("memroot")
	}
	return fp.Mix(source.FingerprintEnvFor(e.prog, names))
}

// pathDirty reports whether path is on or above one of the changed
// paths — i.e. the subtree at path contains a change, so its cache
// probe would be a guaranteed miss. Siblings and descendants of a
// change are not dirty: they are looked up normally, which is how
// shifted-but-unchanged nests and untouched inner nests hit.
func (e *Estimator) pathDirty(path []int) bool {
	if path == nil || len(e.changed) == 0 {
		return false
	}
	for _, c := range e.changed {
		if len(path) > len(c) {
			continue
		}
		dirty := true
		for i := range path {
			if c[i] != path[i] {
				dirty = false
				break
			}
		}
		if dirty {
			return true
		}
	}
	return false
}

// childPath extends a statement path by one index; nil (unaddressable
// region) stays nil.
func childPath(path []int, i int) []int {
	if path == nil {
		return nil
	}
	np := make([]int, len(path)+1)
	copy(np, path)
	np[len(path)] = i
	return np
}

// addPre records one hoisted (one-time) cost contribution. The values
// are folded into a polynomial by prePoly at the end, reproducing the
// exact AddConst chain a live traversal performs.
func (e *Estimator) addPre(v float64) { e.preVals = append(e.preVals, v) }

// prePoly folds the recorded one-time costs, in order, into the
// OneTime polynomial.
func (e *Estimator) prePoly() symexpr.Poly {
	p := symexpr.Zero()
	for _, v := range e.preVals {
		p = p.AddConst(v)
	}
	return p
}

// auxActive reports whether the sub-nest memo tables (loop control,
// shapes, bounds) may be used: they key on the whole-program
// environment fingerprint, so they require an active cache and a
// program-level pricing.
func (e *Estimator) auxActive() bool {
	return e.nc != nil && !e.nc.disabled && e.prog != nil
}

// Tetris invocation counters: every placement of a block into the
// functional bins goes through these wrappers so the nest cache can
// report how much estimation work a prediction actually performed.

func (e *Estimator) countTetris() {
	if e.nc != nil {
		e.nc.tetris.Add(1)
	}
}

func (e *Estimator) tetEstimate(b *ir.Block) (tetris.Result, error) {
	e.countTetris()
	return tetris.Estimate(e.m, b, e.opt.Tetris)
}

func (e *Estimator) tetSteadyState(b *ir.Block, iters int) (float64, error) {
	e.countTetris()
	per, _, err := tetris.SteadyState(e.m, b, e.opt.Tetris, iters)
	return per, err
}

func (e *Estimator) tetSteadyStateChained(b *ir.Block, iters int, chain map[ir.Reg]ir.Reg) (float64, error) {
	e.countTetris()
	per, _, err := tetris.SteadyStateChained(e.m, b, e.opt.Tetris, iters, chain)
	return per, err
}

// ctlBase prices the per-iteration loop-control block. The block is a
// fixed IR sequence, so its cost depends only on the machine and
// tetris options: with an active cache it is computed once per search.
func (e *Estimator) ctlBase() (float64, error) {
	if e.nc != nil && !e.nc.disabled {
		if v, ok := e.nc.ctlLookup(e.keyFP); ok {
			return v, nil
		}
	}
	res, err := e.tetEstimate(lower.LoopOverhead())
	if err != nil {
		return 0, err
	}
	base := float64(res.Cost)
	if e.nc != nil && !e.nc.disabled {
		e.nc.ctlStore(e.keyFP, base)
	}
	return base, nil
}

// shapeFor is bodyShape behind the shape memo table: the cost-block
// shape of a body's leading straight-line run, keyed by the run's
// structural fingerprint, the loop-variable context, and the program
// environment.
func (e *Estimator) shapeFor(body []source.Stmt, loopVars []string) (tetris.CostBlock, bool) {
	if !e.auxActive() {
		return e.bodyShape(body, loopVars)
	}
	var run []source.Stmt
	for _, s := range body {
		if !isStraight(s) {
			break
		}
		run = append(run, s)
	}
	if len(run) == 0 {
		return tetris.CostBlock{}, false
	}
	key := e.auxFP.Mix(source.FingerprintStmts(run)).MixString(fmt.Sprint(loopVars))
	if ent, ok := e.nc.shapeLookup(key); ok {
		return ent.shape, ent.ok
	}
	shape, ok := e.bodyShape(body, loopVars)
	e.nc.shapeStore(key, shapeEntry{shape: shape, ok: ok})
	return shape, ok
}

// boundExprCost prices one loop-bound expression (its iterative and
// hoisted parts) behind the bounds memo table.
func (e *Estimator) boundExprCost(b source.Expr, loopVars []string) (boundsEntry, error) {
	var key source.Fingerprint
	aux := e.auxActive()
	if aux {
		key = e.auxFP.MixString(source.ExprString(b)).MixString(fmt.Sprint(loopVars))
		if ent, ok := e.nc.boundsLookup(key); ok {
			return ent, nil
		}
	}
	lw, err := e.trans.ExprOnly(b, loopVars)
	if err != nil {
		return boundsEntry{}, err
	}
	var ent boundsEntry
	if len(lw.Body.Instrs) > 0 {
		res, err := e.tetEstimate(lw.Body)
		if err != nil {
			return boundsEntry{}, err
		}
		ent.iter = float64(res.Cost)
		ent.hasIter = true
	}
	if len(lw.Pre.Instrs) > 0 {
		res, err := e.tetEstimate(lw.Pre)
		if err != nil {
			return boundsEntry{}, err
		}
		ent.pre = float64(res.Cost)
		ent.hasPre = true
	}
	if aux {
		e.nc.boundsStore(key, ent)
	}
	return ent, nil
}
