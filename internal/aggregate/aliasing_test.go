package aggregate

import (
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/kernels"
	"perfpredict/internal/machine"
)

// power1Slowed returns a machine that still calls itself "POWER1" but
// prices loads three cycles slower — the adversarial
// same-name/different-table case that name-keyed caches alias.
func power1Slowed(t *testing.T) *machine.Machine {
	t.Helper()
	m := machine.ReferencePOWER1()
	m.Table[ir.OpFLoad][0].Segments[0].Noncov += 3
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCachesKeyOnMachineContent is the cache-aliasing regression test:
// two machines with the same Name but different cost tables must not
// share SegCache or NestCache entries. Before content fingerprinting,
// the second machine read the first machine's cached prices.
func TestCachesKeyOnMachineContent(t *testing.T) {
	fast := machine.ReferencePOWER1()
	slow := power1Slowed(t)

	for _, k := range kernels.All() {
		p, tbl, err := k.Parse()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		opt := DefaultOptions()

		// Oracle prices from cache-less estimators.
		wantFast, err := New(tbl, fast, opt).Program(p)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		wantSlow, err := New(tbl, slow, opt).Program(p)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if resultSignature(wantFast) == resultSignature(wantSlow) {
			// A kernel with no fadd can't distinguish the machines;
			// it proves nothing about aliasing either way.
			continue
		}

		// One shared cache pair, warmed by the fast machine, then
		// reused — same program, same machine *name* — by the slow one.
		caches := Caches{Seg: NewSegCache(), Nest: NewNestCache()}
		gotFast, err := PriceIncremental(p, nil, caches, tbl, fast, opt)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		gotSlow, err := PriceIncremental(p, nil, caches, tbl, slow, opt)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if resultSignature(gotFast) != resultSignature(wantFast) {
			t.Errorf("%s: fast machine with shared caches diverged from oracle:\n got %s\nwant %s",
				k.Name, resultSignature(gotFast), resultSignature(wantFast))
		}
		if resultSignature(gotSlow) != resultSignature(wantSlow) {
			t.Errorf("%s: slow machine read the fast machine's cache entries:\n got %s\nwant %s",
				k.Name, resultSignature(gotSlow), resultSignature(wantSlow))
		}
	}
}

// TestSegCacheKeysOnMachineContent isolates the SegCache layer: a
// single shared segment-cost cache serving two same-named machines
// must give each its own prices.
func TestSegCacheKeysOnMachineContent(t *testing.T) {
	fast := machine.ReferencePOWER1()
	slow := power1Slowed(t)

	k, err := kernels.Get("daxpy")
	if err != nil {
		t.Fatal(err)
	}
	p, tbl, err := k.Parse()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()

	wantFast, err := New(tbl, fast, opt).Program(p)
	if err != nil {
		t.Fatal(err)
	}
	wantSlow, err := New(tbl, slow, opt).Program(p)
	if err != nil {
		t.Fatal(err)
	}
	if resultSignature(wantFast) == resultSignature(wantSlow) {
		t.Fatal("daxpy no longer distinguishes the two machines; pick a kernel with loads in the hot path")
	}

	shared := NewSegCache()
	gotFast, err := NewWithCache(tbl, fast, opt, shared).Program(p)
	if err != nil {
		t.Fatal(err)
	}
	gotSlow, err := NewWithCache(tbl, slow, opt, shared).Program(p)
	if err != nil {
		t.Fatal(err)
	}
	if resultSignature(gotFast) != resultSignature(wantFast) {
		t.Errorf("fast machine via shared SegCache diverged:\n got %s\nwant %s",
			resultSignature(gotFast), resultSignature(wantFast))
	}
	if resultSignature(gotSlow) != resultSignature(wantSlow) {
		t.Errorf("slow machine aliased the fast machine's SegCache entries:\n got %s\nwant %s",
			resultSignature(gotSlow), resultSignature(wantSlow))
	}
}
