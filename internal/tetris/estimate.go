package tetris

import (
	"fmt"
	"sync"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
)

// Options tune the estimator; the zero value gives the paper's default
// behaviour (dependence-honoring placement, unlimited focus span).
type Options struct {
	// FocusSpan bounds how far below the highest occupied slot the
	// search may reach (§2.1: "only a certain number of slots … under
	// the highest occupied time slot need to be considered"); 0 means
	// unlimited.
	FocusSpan int
	// MayAlias makes memory dependence conservative across different
	// subscripts of the same array.
	MayAlias bool
	// IgnoreDeps drops the dependence filter (ablation: pure bin
	// packing, a lower bound).
	IgnoreDeps bool
	// DispatchWidth overrides the machine's dispatch width; 0 keeps it.
	DispatchWidth int
}

// Result is the cost estimate for one straight-line block.
type Result struct {
	// Cost is the makespan in cycles: highest − lowest occupied slot,
	// including the trailing coverable latency of the final operations
	// ("if no other executable operations can be found to fill the
	// coverable cycle, then the operation will cost two cycles").
	Cost int
	// Start and End bound the occupied region in absolute slots.
	Start, End int
	// PlaceTime holds the issue slot of each instruction.
	PlaceTime []int
	// Shape is the block's cost block (Figure 8).
	Shape CostBlock
}

// estScratch is the per-call working state of Estimate, recycled
// through a sync.Pool so the hot path allocates only what escapes into
// the Result. The machine-derived unit tables — including the SoA cost
// table — are cached by machine *content*: the pointer comparison is
// only the fast path, and when it misses the content fingerprint
// decides — so pooled scratch survives across distinct-but-identical
// Machine values (each registry Lookup builds a fresh one), while a
// same-pointer machine whose table was edited in place would still be
// caught had it a different address. All per-block slices grow to a
// high-water mark and are resliced, never remade, so pooled scratch
// stops reallocating across heterogeneous blocks.
type estScratch struct {
	mach   *machine.Machine
	machFP source.Fingerprint
	inst   []machine.UnitInstance
	ct     *costTable
	place  []int
	finish []int
	// isMem caches Instrs[i].Op.IsMem() so the dependence scan reads a
	// dense bool instead of chasing into the instruction array; slot i
	// is written before any later instruction reads it, so the slice is
	// sized but never cleared.
	isMem   []bool
	depsBuf ir.DepsBuf
	b       bins
}

var estPool = sync.Pool{New: func() any { return new(estScratch) }}

// Estimate prices a straight-line block on m: the paper's approximate
// solution to the scheduling problem, placing each operation's cost
// object into the lowest time slots where all of its per-unit segments
// fit simultaneously, no earlier than its operands allow.
//
// Estimate is safe to call concurrently (per-call scratch state comes
// from a pool; m is only read).
func Estimate(m *machine.Machine, b *ir.Block, opt Options) (Result, error) {
	return estimate(m, b, opt, nil)
}

// estimate is the shared placement core. A non-nil rec makes it
// record placement decisions for EstimateExplained; recording happens
// only at commit time (never inside the fit probes) and never alters a
// placement, so the rec == nil path is the plain Estimate byte for
// byte.
func estimate(m *machine.Machine, b *ir.Block, opt Options, rec *placeRecorder) (Result, error) {
	sc := estPool.Get().(*estScratch)
	defer estPool.Put(sc)
	bins := sc.prepare(m, opt)
	bins.rec = rec
	depsBuf := &sc.depsBuf
	if rec != nil {
		// The recorder's builders walk the dependence rows after this
		// scratch is back in the pool, so compute them into the
		// recorder's own buffer instead of copying at capture time.
		depsBuf = &rec.depsBuf
	}
	deps := b.DepsInto(opt.MayAlias, depsBuf)
	sc.place = resetInts(sc.place, len(b.Instrs))
	sc.finish = resetInts(sc.finish, len(b.Instrs))
	if cap(sc.isMem) < len(b.Instrs) {
		sc.isMem = make([]bool, len(b.Instrs))
	}
	place, finish, isMem := sc.place, sc.finish, sc.isMem[:len(b.Instrs)]
	maxFinish := 0
	for i := range b.Instrs {
		in := &b.Instrs[i]
		oc := sc.ct.lookup(in.Op)
		if oc == nil {
			_, err := m.Lookup(in.Op) // produce the canonical error
			return Result{}, err
		}
		isMem[i] = in.Op.IsMem()
		if rec != nil {
			rec.curInstr = i
		}
		ready, dataReady := 0, 0
		if !opt.IgnoreDeps {
			for _, j := range deps[i] {
				// Register (data) dependences are split from memory
				// ordering so stores can be modelled as buffered.
				if isMem[j] {
					if finish[j] > ready {
						ready = finish[j]
					}
				} else if finish[j] > dataReady {
					dataReady = finish[j]
				}
			}
		}
		if !in.Op.IsStore() && dataReady > ready {
			ready = dataReady
		}
		start, end, err := bins.place(oc, ready)
		if err != nil {
			return Result{}, fmt.Errorf("instr %d (%s): %w", i, in, err)
		}
		if in.Op.IsStore() && dataReady+1 > end {
			// Pending-store queue: the unit slots execute early; the
			// memory effect completes once the datum arrives.
			end = dataReady + 1
		}
		place[i] = start
		finish[i] = end
		if end > maxFinish {
			maxFinish = end
		}
	}
	res := Result{PlaceTime: append([]int(nil), place...)}
	res.Start, res.End = bins.extent()
	if maxFinish > res.End {
		res.End = maxFinish
	}
	if res.End > res.Start {
		res.Cost = res.End - res.Start
	}
	res.Shape = bins.costBlock(res.Start, res.End)
	if rec != nil {
		rec.capture(sc, bins, finish, res.End, deps)
	}
	return res, nil
}

// resetInts returns s resized to n with every element zeroed, reusing
// the backing array when it is large enough and growing it with
// headroom otherwise — the high-water mark keeps a pooled scratch from
// reallocating every time block sizes alternate.
func resetInts(s []int, n int) []int {
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n {
			c = n + n/4
		}
		return make([]int, n, c)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// prepare resets the scratch's bins for one estimation, rebuilding the
// machine-derived tables only when the target *content* changed (a new
// pointer to an identical description reuses them).
func (sc *estScratch) prepare(m *machine.Machine, opt Options) *bins {
	if sc.mach != m || len(sc.inst) == 0 {
		fp := m.Fingerprint()
		if len(sc.inst) == 0 || fp != sc.machFP {
			sc.inst = m.Units()
			sc.ct = buildCostTable(m, sc.inst)
			n := len(sc.inst)
			// Per-pipe state reslices from its high-water capacity so a
			// machine switch keeps the bitmaps' word storage.
			if cap(sc.b.slots) < n {
				slots := make([]slotBitmap, n)
				copy(slots, sc.b.slots[:cap(sc.b.slots)])
				sc.b.slots = slots
			} else {
				sc.b.slots = sc.b.slots[:n]
			}
			sc.b.latEnd = resetInts(sc.b.latEnd, n)
			if cap(sc.b.usedGen) < n {
				sc.b.usedGen = make([]uint32, n)
			} else {
				sc.b.usedGen = sc.b.usedGen[:n]
				for i := range sc.b.usedGen {
					sc.b.usedGen[i] = 0
				}
			}
			sc.b.fitGen = 0
			sc.b.chosen = sc.b.chosen[:0]
		}
		sc.mach, sc.machFP = m, fp
	}
	b := &sc.b
	b.opt = opt
	b.inst = sc.inst
	b.kindPipes = sc.ct.kindPipes
	b.kinds = sc.ct.kinds
	b.pipeKind = sc.ct.pipeKind
	for i := range b.slots {
		b.slots[i].reset(64)
		b.latEnd[i] = 0
	}
	b.dispatch = b.dispatch[:0]
	b.top = 0
	b.haveOcc = false
	b.width = m.DispatchWidth
	if opt.DispatchWidth > 0 {
		b.width = opt.DispatchWidth
	}
	return b
}

// bins is the two-dimensional virtual architecture bin of Figure 3,
// with per-pipe occupancy held as uint64 bitmaps.
type bins struct {
	opt       Options
	inst      []machine.UnitInstance
	kindPipes [][]int32 // kind index (from the cost table) → pipe indices
	kinds     []machine.UnitKind
	pipeKind  []int32 // pipe index → kind index
	slots     []slotBitmap
	// latEnd[i] tracks the furthest dependent-visible latency end per
	// pipe, so the cost block includes trailing coverable cycles.
	latEnd   []int
	dispatch []int // ops begun per cycle, indexed by cycle
	top      int   // highest noncov-occupied slot + 1
	haveOcc  bool
	width    int
	// chosen and usedGen are tryFit scratch: segment→pipe assignment and
	// per-pipe taken marks for the current candidate slot. A pipe is
	// taken iff usedGen[p] equals the current fit generation, so each
	// probe starts clean by bumping fitGen instead of clearing the
	// slice.
	chosen  []int32
	usedGen []uint32
	fitGen  uint32
	// kFirst/kLast/kBusy are costBlock scratch, indexed by kind; kFirst
	// is -1 for a kind with no occupied pipe.
	kFirst, kLast, kBusy []int
	// rec, when non-nil, receives every committed segment placement
	// (EstimateExplained); the plain Estimate path always leaves it
	// nil. Set per call in estimate, never by prepare, so pooled
	// scratch cannot leak a recorder across calls.
	rec *placeRecorder
}

// dispatchAt returns the number of ops begun in cycle t.
func (b *bins) dispatchAt(t int) int {
	if t < len(b.dispatch) {
		return b.dispatch[t]
	}
	return 0
}

// incDispatch counts one op begun in cycle t.
func (b *bins) incDispatch(t int) {
	for len(b.dispatch) <= t {
		b.dispatch = append(b.dispatch, 0)
	}
	b.dispatch[t]++
}

// floor returns the lowest slot the focus span permits.
func (b *bins) floor() int {
	if b.opt.FocusSpan <= 0 || !b.haveOcc {
		return 0
	}
	f := b.top - b.opt.FocusSpan
	if f < 0 {
		f = 0
	}
	return f
}

// place drops an atomic-op sequence (executed serially) starting no
// earlier than ready; returns the first op's start slot and the
// sequence's dependent-visible end.
func (b *bins) place(oc *opCosts, ready int) (start, end int, err error) {
	if len(oc.atomLat) == 1 { // dominant case: one atomic op
		t, err := b.placeOne(oc, 0, ready)
		if err != nil {
			return 0, 0, err
		}
		return t, t + int(oc.atomLat[0]), nil
	}
	cur := ready
	start = -1
	for a := 0; a < oc.atoms(); a++ {
		t, err := b.placeOne(oc, a, cur)
		if err != nil {
			return 0, 0, err
		}
		if start == -1 {
			start = t
		}
		cur = t + int(oc.atomLat[a])
	}
	if start == -1 { // empty sequence: treat as zero-latency at ready
		start = ready
		cur = ready
	}
	return start, cur, nil
}

// placeOne finds the lowest t ≥ ready where every segment of atomic op
// a fits simultaneously (on some pipe of its kind) and the dispatch
// width at t is not exhausted, then occupies the slots.
func (b *bins) placeOne(oc *opCosts, a int, ready int) (int, error) {
	t := ready
	if f := b.floor(); t < f {
		t = f
	}
	lo, hi := oc.atomOff[a], oc.atomOff[a+1]
	const maxIter = 1 << 20
	for iter := 0; iter < maxIter; iter++ {
		tNext, ok := b.tryFit(oc, lo, hi, t)
		if !ok {
			t = tNext
			continue
		}
		if b.width > 0 && b.dispatchAt(t) >= b.width {
			// Skip every width-exhausted cycle in one scan: they reject
			// any placement regardless of fit, so re-probing them one by
			// one is wasted work.
			t++
			for t < len(b.dispatch) && b.dispatch[t] >= b.width {
				t++
			}
			continue
		}
		// Commit.
		for s := lo; s < hi; s++ {
			pipe := b.chosen[s-lo]
			st, nc := int(oc.segStart[s]), int(oc.segNoncov[s])
			if nc > 0 {
				b.slots[pipe].occupyFit(t+st, nc)
			}
			if b.rec != nil {
				b.rec.segs = append(b.rec.segs, segPlace{
					instr:  int32(b.rec.curInstr),
					pipe:   pipe,
					kind:   b.pipeKind[pipe],
					start:  int32(t + st),
					noncov: int32(nc),
				})
			}
			if e := t + int(oc.segEnd[s]); e > b.latEnd[pipe] {
				b.latEnd[pipe] = e
			}
			if occTop := t + st + nc; nc > 0 && occTop > b.top {
				b.top = occTop
			}
		}
		if oc.atomLat[a] > 0 || hi > lo {
			b.haveOcc = true
		}
		b.incDispatch(t)
		return t, nil
	}
	return 0, fmt.Errorf("tetris: no placement found for %s", oc.names[a])
}

// tryFit checks whether every segment in [lo, hi) fits at base time t;
// on failure it returns the next candidate t to try. On success the
// segment→pipe assignment is left in b.chosen[:hi-lo].
func (b *bins) tryFit(oc *opCosts, lo, hi int32, t int) (tNext int, ok bool) {
	nseg := int(hi - lo)
	if cap(b.chosen) < nseg {
		b.chosen = make([]int32, nseg)
	}
	chosen := b.chosen[:nseg]
	b.chosen = chosen
	b.fitGen++
	if b.fitGen == 0 { // wrap: stale marks could alias the new generation
		for i := range b.usedGen {
			b.usedGen[i] = 0
		}
		b.fitGen = 1
	}
	g := b.fitGen
	slots, usedGen, kindPipes := b.slots, b.usedGen, b.kindPipes
	segKind, segStart, segNoncov := oc.segKind, oc.segStart, oc.segNoncov
	bump := t + 1
	for s := lo; s < hi; s++ {
		pipes := kindPipes[segKind[s]]
		st, nc := int(segStart[s]), int(segNoncov[s])
		found := int32(-1)
		bestNext := -1
		if nc == 1 { // dominant case: probe one bit, no call
			slot := t + st
			wi := slot >> 6
			mask := uint64(1) << (uint(slot) & 63)
			for _, p := range pipes {
				if usedGen[p] == g {
					continue
				}
				if sw := slots[p].words; wi >= len(sw) || sw[wi]&mask == 0 {
					found = p
					break
				}
				nf := slots[p].nextFitQuick(slot, 1) - st
				if bestNext == -1 || nf < bestNext {
					bestNext = nf
				}
			}
		} else {
			for _, p := range pipes {
				if usedGen[p] == g {
					continue
				}
				if nc == 0 || slots[p].freeQuick(t+st, nc) {
					found = p
					break
				}
				nf := slots[p].nextFitQuick(t+st, nc) - st
				if bestNext == -1 || nf < bestNext {
					bestNext = nf
				}
			}
		}
		if found == -1 {
			if bestNext > bump {
				bump = bestNext
			}
			return bump, false
		}
		usedGen[found] = g
		chosen[s-lo] = found
	}
	return 0, true
}

// extent returns the lowest occupied slot and the highest
// dependent-visible end over all pipes.
func (b *bins) extent() (lo, hi int) {
	lo, hi = -1, 0
	for i := range b.slots {
		f, _ := b.slots[i].extent()
		if f >= 0 && (lo == -1 || f < lo) {
			lo = f
		}
		if b.latEnd[i] > hi {
			hi = b.latEnd[i]
		}
	}
	if lo == -1 {
		lo = 0
	}
	return lo, hi
}

// costBlock summarizes the occupied region (Figure 8). Per-pipe extents
// are aggregated into per-kind rows through the dense kind indices, so
// the result maps are written exactly once per occupied kind instead of
// hashed on every pipe.
func (b *bins) costBlock(lo, hi int) CostBlock {
	nk := len(b.kinds)
	b.kFirst = resetInts(b.kFirst, nk)
	b.kLast = resetInts(b.kLast, nk)
	b.kBusy = resetInts(b.kBusy, nk)
	for k := 0; k < nk; k++ {
		b.kFirst[k] = -1
	}
	for i := range b.slots {
		f, l := b.slots[i].extent()
		if f < 0 {
			continue
		}
		k := b.pipeKind[i]
		rf, rl := f-lo, l-lo
		if b.kFirst[k] < 0 {
			b.kFirst[k] = rf
			b.kLast[k] = rl
		} else {
			if rf < b.kFirst[k] {
				b.kFirst[k] = rf
			}
			if rl > b.kLast[k] {
				b.kLast[k] = rl
			}
		}
		b.kBusy[k] += b.slots[i].filledCount(hi)
	}
	cb := CostBlock{
		Height: hi - lo,
		First:  make(map[machine.UnitKind]int, nk),
		Last:   make(map[machine.UnitKind]int, nk),
		Busy:   make(map[machine.UnitKind]int, nk),
	}
	for k := 0; k < nk; k++ {
		if b.kFirst[k] < 0 {
			continue
		}
		kind := b.kinds[k]
		cb.First[kind] = b.kFirst[k]
		cb.Last[kind] = b.kLast[k]
		cb.Busy[kind] = b.kBusy[k]
	}
	return cb
}
