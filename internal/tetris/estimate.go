package tetris

import (
	"fmt"
	"sync"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
)

// Options tune the estimator; the zero value gives the paper's default
// behaviour (dependence-honoring placement, unlimited focus span).
type Options struct {
	// FocusSpan bounds how far below the highest occupied slot the
	// search may reach (§2.1: "only a certain number of slots … under
	// the highest occupied time slot need to be considered"); 0 means
	// unlimited.
	FocusSpan int
	// MayAlias makes memory dependence conservative across different
	// subscripts of the same array.
	MayAlias bool
	// IgnoreDeps drops the dependence filter (ablation: pure bin
	// packing, a lower bound).
	IgnoreDeps bool
	// DispatchWidth overrides the machine's dispatch width; 0 keeps it.
	DispatchWidth int
}

// Result is the cost estimate for one straight-line block.
type Result struct {
	// Cost is the makespan in cycles: highest − lowest occupied slot,
	// including the trailing coverable latency of the final operations
	// ("if no other executable operations can be found to fill the
	// coverable cycle, then the operation will cost two cycles").
	Cost int
	// Start and End bound the occupied region in absolute slots.
	Start, End int
	// PlaceTime holds the issue slot of each instruction.
	PlaceTime []int
	// Shape is the block's cost block (Figure 8).
	Shape CostBlock
}

// estScratch is the per-call working state of Estimate, recycled
// through a sync.Pool so the hot path allocates only what escapes into
// the Result. The machine-derived unit tables are cached by machine
// *content*: the pointer comparison is only the fast path, and when it
// misses the content fingerprint decides — so pooled scratch survives
// across distinct-but-identical Machine values (each registry Lookup
// builds a fresh one), while a same-pointer machine whose table was
// edited in place would still be caught had it a different address.
type estScratch struct {
	mach   *machine.Machine
	machFP source.Fingerprint
	inst   []machine.UnitInstance
	byKind map[machine.UnitKind][]int
	place  []int
	finish []int
	b      bins
}

var estPool = sync.Pool{New: func() any { return new(estScratch) }}

// Estimate prices a straight-line block on m: the paper's approximate
// solution to the scheduling problem, placing each operation's cost
// object into the lowest time slots where all of its per-unit segments
// fit simultaneously, no earlier than its operands allow.
//
// Estimate is safe to call concurrently (per-call scratch state comes
// from a pool; m is only read).
func Estimate(m *machine.Machine, b *ir.Block, opt Options) (Result, error) {
	sc := estPool.Get().(*estScratch)
	defer estPool.Put(sc)
	bins := sc.prepare(m, opt)
	deps := b.Deps(opt.MayAlias)
	sc.place = resetInts(sc.place, len(b.Instrs))
	sc.finish = resetInts(sc.finish, len(b.Instrs))
	place, finish := sc.place, sc.finish
	maxFinish := 0
	for i, in := range b.Instrs {
		seq, err := m.Lookup(in.Op)
		if err != nil {
			return Result{}, err
		}
		ready, dataReady := 0, 0
		if !opt.IgnoreDeps {
			for _, j := range deps[i] {
				// Register (data) dependences are split from memory
				// ordering so stores can be modelled as buffered.
				if b.Instrs[j].Op.IsMem() {
					if finish[j] > ready {
						ready = finish[j]
					}
				} else if finish[j] > dataReady {
					dataReady = finish[j]
				}
			}
		}
		if !in.Op.IsStore() && dataReady > ready {
			ready = dataReady
		}
		start, end, err := bins.place(seq, ready)
		if err != nil {
			return Result{}, fmt.Errorf("instr %d (%s): %w", i, in, err)
		}
		if in.Op.IsStore() && dataReady+1 > end {
			// Pending-store queue: the unit slots execute early; the
			// memory effect completes once the datum arrives.
			end = dataReady + 1
		}
		place[i] = start
		finish[i] = end
		if end > maxFinish {
			maxFinish = end
		}
	}
	res := Result{PlaceTime: append([]int(nil), place...)}
	res.Start, res.End = bins.extent()
	if maxFinish > res.End {
		res.End = maxFinish
	}
	if res.End > res.Start {
		res.Cost = res.End - res.Start
	}
	res.Shape = bins.costBlock(res.Start, res.End)
	return res, nil
}

// resetInts returns s resized to n with every element zeroed, reusing
// the backing array when it is large enough.
func resetInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// prepare resets the scratch's bins for one estimation, rebuilding the
// machine-derived tables only when the target *content* changed (a new
// pointer to an identical description reuses them).
func (sc *estScratch) prepare(m *machine.Machine, opt Options) *bins {
	if sc.mach != m || len(sc.inst) == 0 {
		fp := m.Fingerprint()
		if len(sc.inst) == 0 || fp != sc.machFP {
			sc.inst = m.Units()
			sc.byKind = make(map[machine.UnitKind][]int, 4)
			for i, u := range sc.inst {
				sc.byKind[u.Kind] = append(sc.byKind[u.Kind], i)
			}
			sc.b.slots = make([]slotList, len(sc.inst))
			sc.b.latEnd = make([]int, len(sc.inst))
			sc.b.used = make([]bool, len(sc.inst))
			sc.b.chosen = sc.b.chosen[:0]
		}
		sc.mach, sc.machFP = m, fp
	}
	b := &sc.b
	b.m, b.opt = m, opt
	b.inst, b.byKind = sc.inst, sc.byKind
	for i := range b.slots {
		b.slots[i].reset(64)
		b.latEnd[i] = 0
		b.used[i] = false
	}
	b.dispatch = b.dispatch[:0]
	b.top = 0
	b.haveOcc = false
	b.width = m.DispatchWidth
	if opt.DispatchWidth > 0 {
		b.width = opt.DispatchWidth
	}
	return b
}

// bins is the two-dimensional virtual architecture bin of Figure 3.
type bins struct {
	m      *machine.Machine
	opt    Options
	inst   []machine.UnitInstance
	byKind map[machine.UnitKind][]int // indices into inst / slots
	slots  []slotList
	// latEnd[i] tracks the furthest dependent-visible latency end per
	// pipe, so the cost block includes trailing coverable cycles.
	latEnd   []int
	dispatch []int // ops begun per cycle, indexed by cycle
	top      int   // highest noncov-occupied slot + 1
	haveOcc  bool
	width    int
	// chosen and used are tryFit scratch: segment→pipe assignment and
	// the per-pipe taken marks of the current candidate slot.
	chosen []int
	used   []bool
}

// dispatchAt returns the number of ops begun in cycle t.
func (b *bins) dispatchAt(t int) int {
	if t < len(b.dispatch) {
		return b.dispatch[t]
	}
	return 0
}

// incDispatch counts one op begun in cycle t.
func (b *bins) incDispatch(t int) {
	for len(b.dispatch) <= t {
		b.dispatch = append(b.dispatch, 0)
	}
	b.dispatch[t]++
}

// floor returns the lowest slot the focus span permits.
func (b *bins) floor() int {
	if b.opt.FocusSpan <= 0 || !b.haveOcc {
		return 0
	}
	f := b.top - b.opt.FocusSpan
	if f < 0 {
		f = 0
	}
	return f
}

// place drops an atomic-op sequence (executed serially) starting no
// earlier than ready; returns the first op's start slot and the
// sequence's dependent-visible end.
func (b *bins) place(seq []machine.AtomicOp, ready int) (start, end int, err error) {
	cur := ready
	start = -1
	for _, a := range seq {
		t, err := b.placeOne(a, cur)
		if err != nil {
			return 0, 0, err
		}
		if start == -1 {
			start = t
		}
		cur = t + a.Latency()
	}
	if start == -1 { // empty sequence: treat as zero-latency at ready
		start = ready
		cur = ready
	}
	return start, cur, nil
}

// placeOne finds the lowest t ≥ ready where every segment of a fits
// simultaneously (on some pipe of its kind) and the dispatch width at t
// is not exhausted, then occupies the slots.
func (b *bins) placeOne(a machine.AtomicOp, ready int) (int, error) {
	t := ready
	if f := b.floor(); t < f {
		t = f
	}
	const maxIter = 1 << 20
	for iter := 0; iter < maxIter; iter++ {
		chosen, tNext, ok := b.tryFit(a, t)
		if !ok {
			t = tNext
			continue
		}
		if b.width > 0 && b.dispatchAt(t) >= b.width {
			t++
			continue
		}
		// Commit.
		for si, seg := range a.Segments {
			pipe := chosen[si]
			if seg.Noncov > 0 {
				b.slots[pipe].occupy(t+seg.Start, seg.Noncov)
			}
			if e := t + seg.End(); e > b.latEnd[pipe] {
				b.latEnd[pipe] = e
			}
			if occTop := t + seg.Start + seg.Noncov; seg.Noncov > 0 && occTop > b.top {
				b.top = occTop
			}
		}
		if a.Latency() > 0 || len(a.Segments) > 0 {
			b.haveOcc = true
		}
		b.incDispatch(t)
		return t, nil
	}
	return 0, fmt.Errorf("tetris: no placement found for %s", a.Name)
}

// tryFit checks whether every segment fits at base time t; on failure
// it returns the next candidate t to try. chosen maps segment index to
// pipe index; it aliases scratch storage valid until the next call.
func (b *bins) tryFit(a machine.AtomicOp, t int) (chosen []int, tNext int, ok bool) {
	if cap(b.chosen) < len(a.Segments) {
		b.chosen = make([]int, len(a.Segments))
	}
	chosen = b.chosen[:len(a.Segments)]
	for i := range b.used {
		b.used[i] = false
	}
	bump := t + 1
	for si, seg := range a.Segments {
		pipes := b.byKind[seg.Unit]
		found := -1
		bestNext := -1
		for _, p := range pipes {
			if b.used[p] {
				continue
			}
			if seg.Noncov == 0 || b.slots[p].free(t+seg.Start, seg.Noncov) {
				found = p
				break
			}
			nf := b.slots[p].nextFit(t+seg.Start, seg.Noncov) - seg.Start
			if bestNext == -1 || nf < bestNext {
				bestNext = nf
			}
		}
		if found == -1 {
			if bestNext > bump {
				bump = bestNext
			}
			return nil, bump, false
		}
		b.used[found] = true
		chosen[si] = found
	}
	return chosen, 0, true
}

// extent returns the lowest occupied slot and the highest
// dependent-visible end over all pipes.
func (b *bins) extent() (lo, hi int) {
	lo, hi = -1, 0
	for i := range b.slots {
		f, _ := b.slots[i].extent()
		if f >= 0 && (lo == -1 || f < lo) {
			lo = f
		}
		if b.latEnd[i] > hi {
			hi = b.latEnd[i]
		}
	}
	if lo == -1 {
		lo = 0
	}
	return lo, hi
}

// costBlock summarizes the occupied region (Figure 8).
func (b *bins) costBlock(lo, hi int) CostBlock {
	cb := CostBlock{
		Height: hi - lo,
		First:  map[machine.UnitKind]int{},
		Last:   map[machine.UnitKind]int{},
		Busy:   map[machine.UnitKind]int{},
	}
	for i, u := range b.inst {
		f, l := b.slots[i].extent()
		if f < 0 {
			continue
		}
		rf, rl := f-lo, l-lo
		if cur, ok := cb.First[u.Kind]; !ok || rf < cur {
			cb.First[u.Kind] = rf
		}
		if cur, ok := cb.Last[u.Kind]; !ok || rl > cur {
			cb.Last[u.Kind] = rl
		}
		cb.Busy[u.Kind] += b.slots[i].filledCount(hi)
	}
	return cb
}
