package tetris

// Estimator-level differential suite: the bitmap/SoA Estimate must be
// byte-identical — cost, absolute extent, per-instruction issue slots,
// and the full Figure 8 shape — to the retired run-length estimator
// preserved in runlength_est_test.go, across random blocks, random
// machine specs, and the whole Options matrix.

import (
	"math/rand"
	"reflect"
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/progen"
)

func diffOptions() []Options {
	return []Options{
		{},
		{MayAlias: true},
		{IgnoreDeps: true},
		{FocusSpan: 2},
		{FocusSpan: 7, MayAlias: true},
		{DispatchWidth: 1},
		{DispatchWidth: 2, FocusSpan: 3},
	}
}

func assertSameEstimate(t *testing.T, m *machine.Machine, b *ir.Block, opt Options, tag string) {
	t.Helper()
	got, errNew := Estimate(m, b, opt)
	want, errOld := rlEstimate(m, b, opt)
	if (errNew == nil) != (errOld == nil) {
		t.Fatalf("%s: error mismatch: bitmap=%v runlength=%v", tag, errNew, errOld)
	}
	if errNew != nil {
		if errNew.Error() != errOld.Error() {
			t.Fatalf("%s: error text mismatch:\nbitmap    = %v\nrunlength = %v", tag, errNew, errOld)
		}
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s (opt %+v):\nbitmap    = %+v\nrunlength = %+v\nblock:\n%s", tag, opt, got, want, b)
	}
}

func TestEstimateMatchesRunLengthBuiltins(t *testing.T) {
	machines := []*machine.Machine{
		machine.NewPOWER1(), machine.NewSuperScalar2(), machine.NewScalar1(),
	}
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		blk := progen.GenBlock(r, progen.BlockConfig{MinOps: 1, MaxOps: 40, AllowControl: true})
		m := machines[seed%int64(len(machines))]
		for _, opt := range diffOptions() {
			assertSameEstimate(t, m, blk, opt, m.Name)
		}
	}
}

func TestEstimateMatchesRunLengthRandomSpecs(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		m, err := progen.GenSpec(r, progen.SpecConfig{}).Machine()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		blk := progen.GenBlock(r, progen.BlockConfig{MinOps: 1, MaxOps: 30})
		for _, opt := range diffOptions() {
			assertSameEstimate(t, m, blk, opt, m.Name)
		}
	}
}

// Large blocks force repeated bitmap growth well past the initial
// 64-slot words and stress the focus-span and dispatch-width retry
// paths at scale.
func TestEstimateMatchesRunLengthLargeBlocks(t *testing.T) {
	m := machine.NewPOWER1()
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		blk := progen.GenBlock(r, progen.BlockConfig{MinOps: 300, MaxOps: 600})
		for _, opt := range []Options{{}, {FocusSpan: 16}, {DispatchWidth: 1}} {
			assertSameEstimate(t, m, blk, opt, "large")
		}
	}
	// A serial divide chain drives single-pipe occupancy thousands of
	// slots deep: the worst case for run walking, the common case for
	// word scans.
	blk := &ir.Block{}
	for i := 0; i < 200; i++ {
		src := ir.Reg(1000 + i)
		if i > 0 {
			src = ir.Reg(i - 1)
		}
		blk.Append(ir.Instr{Op: ir.OpFDiv, Dst: ir.Reg(i), Srcs: []ir.Reg{src, 999}})
	}
	assertSameEstimate(t, m, blk, Options{}, "div-chain")
}

// The error path must stay identical too: an op with no table mapping
// reports the same error from both estimators.
func TestEstimateMatchesRunLengthUnknownOp(t *testing.T) {
	m := machine.NewPOWER1()
	stripped := *m
	stripped.Table = map[ir.Op][]machine.AtomicOp{}
	for op, seq := range m.Table {
		if op != ir.OpFSqrt {
			stripped.Table[op] = seq
		}
	}
	blk := &ir.Block{}
	blk.Append(ir.Instr{Op: ir.OpFSqrt, Dst: 0, Srcs: []ir.Reg{100}})
	assertSameEstimate(t, &stripped, blk, Options{}, "unknown-op")
}
