package tetris

import (
	"fmt"
	"strings"
)

// slotList stores the occupancy of one functional-unit pipe as a list
// of alternating filled and empty runs — the structure of the paper's
// Figure 4, where the first and last slots of each run record the run
// length (negated for empty runs) so that adjacent runs are reachable
// in O(1) and corresponding slots in other bins can be found quickly.
// We keep the runs in a slice ordered by start time and locate the run
// containing a slot by binary search; Encode renders the literal
// ±size array of Figure 4.
//
// This implementation is retired from the hot path (slotBitmap replaced
// it) but is kept, behind the slotOccupancy interface, as the
// differential oracle: FuzzSlotOccupancy and the estimator differential
// suite pin the bitmap kernel byte-identical against it.
type slotList struct {
	runs []run // invariant: sorted, contiguous from 0, alternating merged
	size int   // total slots represented
}

type run struct {
	start  int
	length int
	filled bool
}

func newSlotList(capacity int) *slotList {
	s := &slotList{}
	s.reset(capacity)
	return s
}

// reset re-initializes the list to a single empty run, reusing the
// backing run storage (the free list behind the estimator's scratch
// pool: run blocks released by a previous estimation are recycled here
// instead of being reallocated).
func (s *slotList) reset(capacity int) {
	if capacity <= 0 {
		capacity = 64
	}
	if cap(s.runs) == 0 {
		s.runs = make([]run, 1, 8)
	}
	s.runs = s.runs[:1]
	s.runs[0] = run{0, capacity, false}
	s.size = capacity
}

// ensure grows the list so that slot i exists.
func (s *slotList) ensure(i int) {
	if i < s.size {
		return
	}
	grow := i + 1 - s.size
	if grow < s.size {
		grow = s.size // double
	}
	last := &s.runs[len(s.runs)-1]
	if !last.filled {
		last.length += grow
	} else {
		s.runs = append(s.runs, run{s.size, grow, false})
	}
	s.size += grow
}

// runIndexAt returns the index of the run containing slot i.
func (s *slotList) runIndexAt(i int) int {
	lo, hi := 0, len(s.runs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.runs[mid].start <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// free reports whether slots [from, from+n) are all empty.
func (s *slotList) free(from, n int) bool {
	if n <= 0 {
		return true
	}
	s.ensure(from + n - 1)
	idx := s.runIndexAt(from)
	end := from + n
	for pos := from; pos < end; {
		r := s.runs[idx]
		if r.filled {
			return false
		}
		pos = r.start + r.length
		idx++
	}
	return true
}

// nextFit returns the lowest t ≥ from such that slots [t, t+n) are all
// empty. It always succeeds because the list grows on demand.
func (s *slotList) nextFit(from, n int) int {
	if n <= 0 {
		return from
	}
	if from < 0 {
		from = 0
	}
	s.ensure(from + n)
	idx := s.runIndexAt(from)
	for {
		if idx >= len(s.runs) {
			// Growing may extend the trailing empty run rather than
			// append a new one; continue scanning from the last run.
			s.ensure(s.size + n)
			idx = len(s.runs) - 1
		}
		r := s.runs[idx]
		if r.filled {
			idx++
			continue
		}
		start := r.start
		if start < from {
			start = from
		}
		avail := r.start + r.length - start
		if avail >= n {
			return start
		}
		idx++
	}
}

// occupy marks slots [from, from+n) as filled. The slots must be empty.
func (s *slotList) occupy(from, n int) {
	if n <= 0 {
		return
	}
	s.ensure(from + n)
	if !s.free(from, n) {
		panic(fmt.Sprintf("tetris: occupy(%d, %d) over filled slots", from, n))
	}
	idx := s.runIndexAt(from)
	r := s.runs[idx]
	// r is empty and fully contains [from, from+n) because free()
	// succeeded and empty runs are maximal. Build the ≤3 replacement
	// runs on the stack and splice them in place — the run slice only
	// ever grows by the amortized append below, never via a temporary.
	var repl [3]run
	nr := 0
	if from > r.start {
		repl[nr] = run{r.start, from - r.start, false}
		nr++
	}
	repl[nr] = run{from, n, true}
	nr++
	if rest := r.start + r.length - (from + n); rest > 0 {
		repl[nr] = run{from + n, rest, false}
		nr++
	}
	switch nr - 1 {
	case 1:
		s.runs = append(s.runs, run{})
	case 2:
		s.runs = append(s.runs, run{}, run{})
	}
	if extra := nr - 1; extra > 0 {
		copy(s.runs[idx+nr:], s.runs[idx+1:len(s.runs)-extra])
	}
	copy(s.runs[idx:idx+nr], repl[:nr])
	s.mergeAround(idx)
}

// mergeAround coalesces equal-state neighbors near index i.
func (s *slotList) mergeAround(i int) {
	lo := i - 1
	if lo < 0 {
		lo = 0
	}
	hi := i + 3
	if hi > len(s.runs) {
		hi = len(s.runs)
	}
	for j := lo; j+1 < hi && j+1 < len(s.runs); {
		if s.runs[j].filled == s.runs[j+1].filled {
			s.runs[j].length += s.runs[j+1].length
			s.runs = append(s.runs[:j+1], s.runs[j+2:]...)
			hi--
			continue
		}
		j++
	}
}

// filledCount returns the number of filled slots in [0, upto).
func (s *slotList) filledCount(upto int) int {
	total := 0
	for _, r := range s.runs {
		if r.start >= upto {
			break
		}
		if !r.filled {
			continue
		}
		end := r.start + r.length
		if end > upto {
			end = upto
		}
		total += end - r.start
	}
	return total
}

// extent returns the first and last filled slots, or (-1, -1) if none.
func (s *slotList) extent() (first, last int) {
	first, last = -1, -1
	for _, r := range s.runs {
		if !r.filled {
			continue
		}
		if first == -1 {
			first = r.start
		}
		last = r.start + r.length - 1
	}
	return first, last
}

// Encode renders the first `upto` slots in the paper's Figure 4 array
// encoding: the first and last slot of each run hold the run length,
// negative for empty runs; interior slots hold 0.
func (s *slotList) Encode(upto int) []int {
	out := make([]int, upto)
	for _, r := range s.runs {
		if r.start >= upto {
			break
		}
		length := r.length
		if r.start+length > upto {
			length = upto - r.start
		}
		v := length
		if !r.filled {
			v = -length
		}
		out[r.start] = v
		out[r.start+length-1] = v
	}
	return out
}

// String renders occupancy as '#' (filled) and '.' (empty), for tests
// and debug dumps.
func (s *slotList) render(upto int) string {
	var b strings.Builder
	for _, r := range s.runs {
		if r.start >= upto {
			break
		}
		n := r.length
		if r.start+n > upto {
			n = upto - r.start
		}
		ch := "."
		if r.filled {
			ch = "#"
		}
		b.WriteString(strings.Repeat(ch, n))
	}
	return b.String()
}

// checkInvariants validates the run list structure (used by property
// tests): contiguous coverage from 0, positive lengths, alternating
// fill states.
func (s *slotList) checkInvariants() error {
	pos := 0
	for i, r := range s.runs {
		if r.start != pos {
			return fmt.Errorf("run %d starts at %d, want %d", i, r.start, pos)
		}
		if r.length <= 0 {
			return fmt.Errorf("run %d has length %d", i, r.length)
		}
		if i > 0 && s.runs[i-1].filled == r.filled {
			return fmt.Errorf("runs %d and %d not alternating", i-1, i)
		}
		pos += r.length
	}
	if pos != s.size {
		return fmt.Errorf("coverage %d != size %d", pos, s.size)
	}
	return nil
}
