package tetris

import (
	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

// opCosts is the struct-of-arrays rendering of one basic operation's
// atomic expansion. The machine table's []AtomicOp → []Segment layout
// makes tryFit pointer-hop across small heap objects and re-hash the
// unit-kind string for every probe; here the inner fit loop streams
// four parallel int32 slices instead, and unit kinds are pre-resolved
// to indices into the bins' per-kind pipe lists. Atomic op a's segments
// occupy indices [atomOff[a], atomOff[a+1]) of the segment arrays.
type opCosts struct {
	atomOff []int32  // len = atoms+1, prefix offsets into the seg arrays
	atomLat []int32  // dependent-visible latency of each atomic op
	names   []string // atomic op names, for error messages only

	segKind   []int32 // index into costTable.kindPipes
	segStart  []int32
	segNoncov []int32
	segEnd    []int32 // Start + Noncov + Cov
}

// atoms returns the number of atomic ops in the expansion.
func (oc *opCosts) atoms() int { return len(oc.atomOff) - 1 }

// costTable is the SoA form of one machine's atomic operation cost
// table plus the unit-kind → pipe-index mapping, built once per machine
// content and cached in the estimator scratch. ir.Op values are small
// dense integers, so the op → costs lookup is a slice index rather than
// a map access.
type costTable struct {
	opIdx     []int32 // op → index into costs; -1 (or out of range) if unmapped
	costs     []opCosts
	kinds     []machine.UnitKind
	kindPipes [][]int32 // kind index → pipe indices (into bins.slots), in machine.Units order
	pipeKind  []int32   // pipe index → kind index, for cost-block aggregation
}

// lookup returns the cost object of op, or nil if the machine's table
// has no mapping for it.
func (ct *costTable) lookup(op ir.Op) *opCosts {
	if int(op) < len(ct.opIdx) && op >= 0 {
		if ci := ct.opIdx[op]; ci >= 0 {
			return &ct.costs[ci]
		}
	}
	return nil
}

// buildCostTable flattens m's table. Unit kinds that appear in cost
// segments but have no pipes on the machine get an empty pipe list, so
// placement fails with the same "no placement found" error the
// map-based lookup produced.
func buildCostTable(m *machine.Machine, inst []machine.UnitInstance) *costTable {
	maxOp := ir.Op(-1)
	for op := range m.Table {
		if op > maxOp {
			maxOp = op
		}
	}
	ct := &costTable{opIdx: make([]int32, maxOp+1)}
	for i := range ct.opIdx {
		ct.opIdx[i] = -1
	}
	kindIdx := make(map[machine.UnitKind]int32, 4)
	kindOf := func(k machine.UnitKind) int32 {
		ki, ok := kindIdx[k]
		if !ok {
			ki = int32(len(ct.kinds))
			kindIdx[k] = ki
			ct.kinds = append(ct.kinds, k)
			ct.kindPipes = append(ct.kindPipes, nil)
		}
		return ki
	}
	ct.pipeKind = make([]int32, len(inst))
	for i, u := range inst {
		ki := kindOf(u.Kind)
		ct.kindPipes[ki] = append(ct.kindPipes[ki], int32(i))
		ct.pipeKind[i] = ki
	}
	for op, seq := range m.Table {
		oc := opCosts{atomOff: make([]int32, 1, len(seq)+1)}
		for _, a := range seq {
			for _, s := range a.Segments {
				oc.segKind = append(oc.segKind, kindOf(s.Unit))
				oc.segStart = append(oc.segStart, int32(s.Start))
				oc.segNoncov = append(oc.segNoncov, int32(s.Noncov))
				oc.segEnd = append(oc.segEnd, int32(s.End()))
			}
			oc.atomOff = append(oc.atomOff, int32(len(oc.segKind)))
			oc.atomLat = append(oc.atomLat, int32(a.Latency()))
			oc.names = append(oc.names, a.Name)
		}
		ct.opIdx[op] = int32(len(ct.costs))
		ct.costs = append(ct.costs, oc)
	}
	return ct
}
