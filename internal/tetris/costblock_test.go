package tetris

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

func TestSlotListBasics(t *testing.T) {
	s := newSlotList(16)
	if !s.free(0, 16) {
		t.Fatal("new list not free")
	}
	s.occupy(3, 4)
	if s.free(3, 1) || s.free(2, 2) || s.free(6, 2) {
		t.Error("occupied slots reported free")
	}
	if !s.free(0, 3) || !s.free(7, 9) {
		t.Error("free slots reported occupied")
	}
	if got := s.nextFit(0, 3); got != 0 {
		t.Errorf("nextFit(0,3) = %d", got)
	}
	if got := s.nextFit(0, 4); got != 7 {
		t.Errorf("nextFit(0,4) = %d, want 7", got)
	}
	if got := s.nextFit(4, 1); got != 7 {
		t.Errorf("nextFit(4,1) = %d, want 7", got)
	}
	f, l := s.extent()
	if f != 3 || l != 6 {
		t.Errorf("extent = (%d, %d)", f, l)
	}
	if c := s.filledCount(16); c != 4 {
		t.Errorf("filledCount = %d", c)
	}
	if err := s.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSlotListGrows(t *testing.T) {
	s := newSlotList(4)
	s.occupy(100, 10)
	if !s.free(0, 100) {
		t.Error("low slots should stay free after growth")
	}
	if s.free(100, 1) {
		t.Error("grown slot not occupied")
	}
	if err := s.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSlotListMerges(t *testing.T) {
	s := newSlotList(32)
	s.occupy(0, 4)
	s.occupy(4, 4)
	s.occupy(8, 4)
	if len(s.runs) != 2 { // one filled run [0,12) + trailing empty
		t.Errorf("runs = %+v", s.runs)
	}
	if err := s.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSlotListEncodeFigure4(t *testing.T) {
	// Reproduce the Figure 4 encoding: ±size at run boundaries.
	s := newSlotList(10)
	s.occupy(2, 3) // runs: empty[0,2), filled[2,5), empty[5,10)
	enc := s.Encode(10)
	want := []int{-2, -2, 3, 0, 3, -5, 0, 0, 0, -5}
	for i := range want {
		if enc[i] != want[i] {
			t.Fatalf("Encode = %v, want %v", enc, want)
		}
	}
}

func TestSlotListRender(t *testing.T) {
	s := newSlotList(8)
	s.occupy(1, 2)
	if got := s.render(5); got != ".##.." {
		t.Errorf("render = %q", got)
	}
}

func TestSlotListPanicsOnDoubleOccupy(t *testing.T) {
	s := newSlotList(8)
	s.occupy(0, 4)
	defer func() {
		if recover() == nil {
			t.Error("double occupy did not panic")
		}
	}()
	s.occupy(2, 2)
}

func TestQuickSlotListInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := newSlotList(32)
		occupied := map[int]bool{}
		for i := 0; i < 60; i++ {
			from := r.Intn(200)
			n := 1 + r.Intn(8)
			if s.free(from, n) {
				s.occupy(from, n)
				for j := from; j < from+n; j++ {
					occupied[j] = true
				}
			}
			if err := s.checkInvariants(); err != nil {
				return false
			}
		}
		// Cross-check against the reference set.
		for j := 0; j < 220; j++ {
			if s.free(j, 1) == occupied[j] {
				return false
			}
		}
		// nextFit results must actually be free and minimal.
		for i := 0; i < 10; i++ {
			from, n := r.Intn(200), 1+r.Intn(6)
			at := s.nextFit(from, n)
			if at < from || !s.free(at, n) {
				return false
			}
			for cand := from; cand < at; cand++ {
				if s.free(cand, n) {
					return false // not minimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func shapeOf(t *testing.T, instrs ...ir.Instr) CostBlock {
	t.Helper()
	m := machine.NewPOWER1()
	b := &ir.Block{}
	for _, in := range instrs {
		b.Append(in)
	}
	r, err := Estimate(m, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r.Shape
}

func TestConcatOverlapsAcrossUnits(t *testing.T) {
	// Block A: FXU-heavy (loads); block B: FPU-heavy (adds). Their
	// shapes interlock almost fully (Figure 9).
	var loads, adds []ir.Instr
	for i := 0; i < 6; i++ {
		loads = append(loads, ir.Instr{Op: ir.OpFLoad, Dst: ir.Reg(i), Addr: "a(i)#" + itoa(i), Base: "a"})
		adds = append(adds, ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(10 + i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i)}})
	}
	a := shapeOf(t, loads...)
	b := shapeOf(t, adds...)
	combined, saved := Concat(a, b)
	if saved <= 0 {
		t.Errorf("disjoint-unit blocks should overlap: saved = %d", saved)
	}
	if combined.Height >= a.Height+b.Height {
		t.Errorf("combined %d not smaller than %d + %d", combined.Height, a.Height, b.Height)
	}
	if combined.Busy[machine.FXU] != a.Busy[machine.FXU]+b.Busy[machine.FXU] {
		t.Errorf("busy counts not additive")
	}
}

func TestConcatSameUnitNoOverlap(t *testing.T) {
	// Two FPU-saturated blocks cannot overlap in the FPU.
	var adds []ir.Instr
	for i := 0; i < 4; i++ {
		adds = append(adds, ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i)}})
	}
	a := shapeOf(t, adds...)
	combined, saved := Concat(a, a)
	// FPU extents force nearly sequential placement; only the trailing
	// coverable cycle of A can hide B's first issue.
	if saved > 1 {
		t.Errorf("same-unit blocks overlapped too much: saved = %d", saved)
	}
	if combined.Height < 2*a.Height-1 {
		t.Errorf("combined height %d vs 2×%d", combined.Height, a.Height)
	}
}

func TestSelfConcatSteadyState(t *testing.T) {
	var adds []ir.Instr
	for i := 0; i < 4; i++ {
		adds = append(adds, ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i)}})
	}
	cb := shapeOf(t, adds...)
	total, per := SelfConcat(cb, 10)
	if total <= 0 || per <= 0 {
		t.Fatalf("SelfConcat: total=%d per=%v", total, per)
	}
	if per > float64(cb.Height) {
		t.Errorf("per-iteration %v exceeds single-block %d", per, cb.Height)
	}
	if _, p := SelfConcat(cb, 0); p != 0 {
		t.Error("zero iters should be free")
	}
}

func TestReplicateRenamesAndTags(t *testing.T) {
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a(i)", Base: "a"})
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 1, Addr: "s", Base: "s"})
	b.Append(ir.Instr{Op: ir.OpFAdd, Dst: 2, Srcs: []ir.Reg{0, 1}})
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{2}, Addr: "s", Base: "s"})
	rep := Replicate(b, 3)
	if len(rep.Instrs) != 12 {
		t.Fatalf("len = %d", len(rep.Instrs))
	}
	// Registers renamed per copy.
	if rep.Instrs[4].Dst == rep.Instrs[0].Dst {
		t.Error("registers not renamed")
	}
	// Indexed address tagged, scalar address untouched.
	if rep.Instrs[4].Addr != "a(i)#1" {
		t.Errorf("copy-1 indexed addr = %q", rep.Instrs[4].Addr)
	}
	if rep.Instrs[5].Addr != "s" {
		t.Errorf("scalar addr = %q", rep.Instrs[5].Addr)
	}
	// The scalar reduction chain serializes iterations: deps exist
	// between copies.
	deps := rep.Deps(false)
	if len(deps[5]) == 0 {
		t.Error("reduction load should depend on prior store")
	}
}

func TestSteadyStateAmortizes(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	// Independent body: load + add + store on distinct arrays.
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a(i)", Base: "a"})
	b.Append(ir.Instr{Op: ir.OpFAdd, Dst: 1, Srcs: []ir.Reg{0, 100}})
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{1}, Addr: "b(i)", Base: "b"})
	one, err := Estimate(m, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	per, _, err := SteadyState(m, b, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if per >= float64(one.Cost) {
		t.Errorf("steady state %v not better than single iteration %d", per, one.Cost)
	}
}

func TestBranchCovered(t *testing.T) {
	// FXU starts at 0, FPU at 3 → a 3-cycle branch cost is fully hidden.
	cb := CostBlock{
		Height: 10,
		First:  map[machine.UnitKind]int{machine.FXU: 0, machine.FPU: 3},
		Last:   map[machine.UnitKind]int{machine.FXU: 9, machine.FPU: 9},
		Busy:   map[machine.UnitKind]int{machine.FXU: 5, machine.FPU: 5},
	}
	if got := BranchCovered(cb, 3); got != 0 {
		t.Errorf("covered branch cost = %d, want 0", got)
	}
	// FPU starts at 1 → 2 cycles uncovered.
	cb.First[machine.FPU] = 1
	if got := BranchCovered(cb, 3); got != 2 {
		t.Errorf("partially covered = %d, want 2", got)
	}
	// No FXU activity → full cost.
	cb2 := CostBlock{Height: 5, First: map[machine.UnitKind]int{machine.FPU: 0}}
	if got := BranchCovered(cb2, 3); got != 3 {
		t.Errorf("no-FXU branch cost = %d", got)
	}
}

func TestQuickEstimateBounds(t *testing.T) {
	// Property: critical-path latency ≤ cost ≤ sum of latencies, for
	// random FP blocks.
	m := machine.NewPOWER1()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := &ir.Block{}
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			var srcs []ir.Reg
			for s := 0; s < 2; s++ {
				if i > 0 && r.Intn(2) == 0 {
					srcs = append(srcs, ir.Reg(r.Intn(i)))
				} else {
					srcs = append(srcs, ir.Reg(1000+r.Intn(50)))
				}
			}
			ops := []ir.Op{ir.OpFAdd, ir.OpFMul, ir.OpFSub, ir.OpIAdd}
			b.Append(ir.Instr{Op: ops[r.Intn(len(ops))], Dst: ir.Reg(i), Srcs: srcs})
		}
		res, err := Estimate(m, b, Options{})
		if err != nil {
			return false
		}
		sumLat := 0
		for _, in := range b.Instrs {
			sumLat += m.Latency(in.Op)
		}
		// Upper bound: fully serial.
		if res.Cost > sumLat {
			return false
		}
		// Lower bound: as many cycles as the busiest unit's occupancy.
		busiest := 0
		for _, v := range res.Shape.Busy {
			if v > busiest {
				busiest = v
			}
		}
		return res.Cost >= busiest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickFocusSpanNeverImproves(t *testing.T) {
	m := machine.NewPOWER1()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := &ir.Block{}
		n := 1 + r.Intn(15)
		for i := 0; i < n; i++ {
			ops := []ir.Op{ir.OpFAdd, ir.OpIAdd, ir.OpFMul, ir.OpFLoad}
			op := ops[r.Intn(len(ops))]
			in := ir.Instr{Op: op, Dst: ir.Reg(i)}
			if op == ir.OpFLoad {
				in.Addr, in.Base = "x("+itoa(i)+")", "x"
			} else {
				in.Srcs = []ir.Reg{ir.Reg(1000 + r.Intn(9)), ir.Reg(1000 + r.Intn(9))}
			}
			b.Append(in)
		}
		full, err1 := Estimate(m, b, Options{})
		tight, err2 := Estimate(m, b, Options{FocusSpan: 1 + r.Intn(4)})
		if err1 != nil || err2 != nil {
			return false
		}
		return tight.Cost >= full.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (deterministic sweep): the Figure 9 shape estimate stays
// within a bounded band of the true concatenated cost. It is not
// strictly one-sided — the greedy placer is order-sensitive, so
// re-placing the merged stream can land a dependent chain later than
// the rigid-shift bound assumes, and backfilling can land it earlier.
// We assert the error distribution: small on average, bounded in the
// worst case.
func TestConcatErrorDistribution(t *testing.T) {
	m := machine.NewPOWER1()
	mk := func(r *rand.Rand, tag string) *ir.Block {
		b := &ir.Block{}
		n := 2 + r.Intn(10)
		for i := 0; i < n; i++ {
			ops := []ir.Op{ir.OpFAdd, ir.OpFMul, ir.OpFLoad, ir.OpFStore, ir.OpIAdd}
			op := ops[r.Intn(len(ops))]
			in := ir.Instr{Op: op, Dst: ir.Reg(i)}
			switch {
			case op.IsLoad():
				in.Addr, in.Base = tag+"x("+itoa(i)+")", tag+"x"
			case op.IsStore():
				in.Dst = ir.NoReg
				in.Srcs = []ir.Reg{srcReg2(r, i)}
				in.Addr, in.Base = tag+"y("+itoa(i)+")", tag+"y"
			default:
				in.Srcs = []ir.Reg{srcReg2(r, i), srcReg2(r, i)}
			}
			b.Append(in)
		}
		return b
	}
	opt := Options{DispatchWidth: 64}
	var sumAbs, worst float64
	const trials = 400
	for seed := int64(0); seed < trials; seed++ {
		r := rand.New(rand.NewSource(seed))
		a, b := mk(r, "a"), mk(r, "b")
		ra, err1 := Estimate(m, a, opt)
		rb, err2 := Estimate(m, b, opt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		combined, _ := Concat(ra.Shape, rb.Shape)
		merged := a.Clone()
		off := merged.MaxReg() + 1
		for _, in := range b.Instrs {
			c := in
			c.Srcs = append([]ir.Reg(nil), in.Srcs...)
			for k, sr := range c.Srcs {
				if sr != ir.NoReg {
					c.Srcs[k] = sr + off
				}
			}
			if c.Dst != ir.NoReg {
				c.Dst += off
			}
			merged.Instrs = append(merged.Instrs, c)
		}
		exact, err := Estimate(m, merged, opt)
		if err != nil {
			t.Fatal(err)
		}
		e := (float64(combined.Height) - float64(exact.Cost)) / float64(exact.Cost)
		if e < 0 {
			e = -e
		}
		sumAbs += e
		if e > worst {
			worst = e
		}
	}
	mean := sumAbs / trials
	if mean > 0.15 {
		t.Errorf("mean |shape error| = %.1f%%, want ≤ 15%%", 100*mean)
	}
	if worst > 0.60 {
		t.Errorf("worst |shape error| = %.1f%%, want ≤ 60%%", 100*worst)
	}
	t.Logf("shape error over %d pairs: mean %.1f%%, worst %.1f%%", trials, 100*mean, 100*worst)
}

func srcReg2(r *rand.Rand, i int) ir.Reg {
	if i > 0 && r.Intn(2) == 0 {
		return ir.Reg(r.Intn(i))
	}
	return ir.Reg(5000 + r.Intn(30))
}
