package tetris

import (
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

func est(t *testing.T, m *machine.Machine, b *ir.Block, opt Options) Result {
	t.Helper()
	r, err := Estimate(m, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func fadd(dst ir.Reg, a, b ir.Reg) ir.Instr {
	return ir.Instr{Op: ir.OpFAdd, Dst: dst, Srcs: []ir.Reg{a, b}}
}

// The paper's motivating example: a lone FP add costs two cycles (one
// noncoverable + one coverable), but if another independent operation
// fills the coverable cycle the pair streams at one per cycle.
func TestSingleFAddCostsTwo(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(fadd(0, 100, 101))
	r := est(t, m, b, Options{})
	if r.Cost != 2 {
		t.Errorf("single fadd cost = %d, want 2", r.Cost)
	}
}

func TestIndependentFAddsPipeline(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	for i := 0; i < 8; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(100+i), ir.Reg(200+i)))
	}
	r := est(t, m, b, Options{})
	// 8 independent adds: one issues per cycle (noncov 1), last finishes
	// at 8+1 = 9 cycles.
	if r.Cost != 9 {
		t.Errorf("8 independent fadds cost = %d, want 9", r.Cost)
	}
}

func TestDependentFAddChainSerializes(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(fadd(0, 100, 101))
	for i := 1; i < 6; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(i-1), 101))
	}
	r := est(t, m, b, Options{})
	// Each add must wait the full 2-cycle latency of its predecessor.
	if r.Cost != 12 {
		t.Errorf("chain of 6 dependent fadds = %d, want 12", r.Cost)
	}
}

func TestDependenceFilterIgnoredAblation(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(fadd(0, 100, 101))
	for i := 1; i < 6; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(i-1), 101))
	}
	r := est(t, m, b, Options{IgnoreDeps: true})
	// Pure bin packing: 6 ops at 1/cycle + trailing coverable.
	if r.Cost != 7 {
		t.Errorf("no-deps cost = %d, want 7", r.Cost)
	}
}

func TestFStoreOccupiesBothUnits(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{100}, Addr: "s", Base: "s"})
	r := est(t, m, b, Options{})
	if r.Cost != 2 {
		t.Errorf("fstore cost = %d, want 2", r.Cost)
	}
	if r.Shape.Busy[machine.FPU] != 1 || r.Shape.Busy[machine.FXU] != 1 {
		t.Errorf("fstore busy = %+v", r.Shape.Busy)
	}
}

func TestLoadsAndAddsOverlapAcrossUnits(t *testing.T) {
	m := machine.NewPOWER1()
	// Independent: load into r0 and an add of unrelated regs overlap
	// fully (different units).
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a(i)", Base: "a"})
	b.Append(fadd(1, 100, 101))
	r := est(t, m, b, Options{})
	if r.Cost != 2 {
		t.Errorf("independent load+add = %d, want 2 (full overlap)", r.Cost)
	}
	// Dependent: add uses the loaded value → must wait 2-cycle load-use.
	b2 := &ir.Block{}
	b2.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a(i)", Base: "a"})
	b2.Append(fadd(1, 0, 101))
	r2 := est(t, m, b2, Options{})
	if r2.Cost != 4 {
		t.Errorf("dependent load+add = %d, want 4", r2.Cost)
	}
}

// Matmul-style stream: 16 independent FMAs issue one per cycle.
func TestSixteenFMAsStream(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	for i := 0; i < 16; i++ {
		b.Append(ir.Instr{Op: ir.OpFMA, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i), ir.Reg(300 + i)}})
	}
	r := est(t, m, b, Options{})
	if r.Cost != 17 {
		t.Errorf("16 FMAs = %d, want 17", r.Cost)
	}
	u, util := r.Shape.CriticalUnit()
	if u != machine.FPU {
		t.Errorf("critical unit = %s", u)
	}
	if util < 0.9 {
		t.Errorf("FPU utilization = %v", util)
	}
}

func TestNonPipelinedDivideBlocks(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFDiv, Dst: 0, Srcs: []ir.Reg{100, 101}})
	b.Append(ir.Instr{Op: ir.OpFDiv, Dst: 1, Srcs: []ir.Reg{102, 103}})
	r := est(t, m, b, Options{})
	// Two independent divides on one non-pipelined FPU: 19+19.
	if r.Cost != 38 {
		t.Errorf("two fdivs = %d, want 38", r.Cost)
	}
}

func TestSuperScalar2DoublesThroughput(t *testing.T) {
	m2 := machine.NewSuperScalar2()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFDiv, Dst: 0, Srcs: []ir.Reg{100, 101}})
	b.Append(ir.Instr{Op: ir.OpFDiv, Dst: 1, Srcs: []ir.Reg{102, 103}})
	r := est(t, m2, b, Options{})
	// Two FPU pipes: both divides run concurrently.
	if r.Cost != 19 {
		t.Errorf("two fdivs on 2 pipes = %d, want 19", r.Cost)
	}
}

func TestScalarMachineSumsLatencies(t *testing.T) {
	m := machine.NewScalar1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a", Base: "a"})
	b.Append(fadd(1, 0, 100))
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{1}, Addr: "b", Base: "b"})
	r := est(t, m, b, Options{})
	p := machine.NewPOWER1()
	want := p.Latency(ir.OpFLoad) + p.Latency(ir.OpFAdd) + p.Latency(ir.OpFStore)
	if r.Cost != want {
		t.Errorf("scalar cost = %d, want %d", r.Cost, want)
	}
}

func TestMultiAtomicExpansionSerial(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpIMod, Dst: 0, Srcs: []ir.Reg{100, 101}})
	r := est(t, m, b, Options{})
	// divs (19) then mfmq (1).
	if r.Cost != 20 {
		t.Errorf("imod = %d, want 20", r.Cost)
	}
}

func TestDispatchWidthLimits(t *testing.T) {
	m := machine.NewSuperScalar2()
	b := &ir.Block{}
	// 4 independent integer adds; with width 1 they serialize even
	// though two FXU pipes exist.
	for i := 0; i < 4; i++ {
		b.Append(ir.Instr{Op: ir.OpIAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i)}})
	}
	wide := est(t, m, b, Options{})
	narrow := est(t, m, b, Options{DispatchWidth: 1})
	if wide.Cost != 2 {
		t.Errorf("2-pipe cost = %d, want 2", wide.Cost)
	}
	if narrow.Cost != 4 {
		t.Errorf("width-1 cost = %d, want 4", narrow.Cost)
	}
}

func TestFocusSpanTradesAccuracy(t *testing.T) {
	m := machine.NewPOWER1()
	// A long FXU stream with one late independent FPU op: unlimited
	// focus span lets the FPU op drop to the very bottom.
	b := &ir.Block{}
	for i := 0; i < 20; i++ {
		b.Append(ir.Instr{Op: ir.OpIAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(100 + i), ir.Reg(200 + i)}})
	}
	b.Append(fadd(50, 300, 301))
	full := est(t, m, b, Options{})
	tight := est(t, m, b, Options{FocusSpan: 2})
	if full.Cost > tight.Cost {
		t.Errorf("focus span should never reduce cost: full=%d tight=%d", full.Cost, tight.Cost)
	}
	if full.Cost != 20 {
		t.Errorf("full cost = %d, want 20 (fadd hidden)", full.Cost)
	}
}

func TestMemoryDependenceHonored(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{100}, Addr: "s", Base: "s"})
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "s", Base: "s"})
	r := est(t, m, b, Options{})
	// Load must wait for the store's 2-cycle completion, then 2 more.
	if r.Cost != 4 {
		t.Errorf("store→load = %d, want 4", r.Cost)
	}
}

func TestEmptyBlock(t *testing.T) {
	m := machine.NewPOWER1()
	r := est(t, m, &ir.Block{}, Options{})
	if r.Cost != 0 {
		t.Errorf("empty block cost = %d", r.Cost)
	}
}

func TestPlaceTimesMonotoneWithDeps(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a(i)", Base: "a"})
	b.Append(fadd(1, 0, 100))
	b.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{1}, Addr: "b(i)", Base: "b"})
	r := est(t, m, b, Options{})
	// The add waits for the load's full latency.
	if !(r.PlaceTime[0] < r.PlaceTime[1]) {
		t.Errorf("add before its load: %v", r.PlaceTime)
	}
	// The store's unit slots are buffered (may execute early), but the
	// block's cost covers the datum arrival: add finish + 1.
	if r.Cost < r.PlaceTime[1]+m.Latency(ir.OpFAdd)+1 {
		t.Errorf("cost %d does not cover the store's datum (places %v)", r.Cost, r.PlaceTime)
	}
}
