package tetris

import (
	"sync"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
)

// This file is the diagnosis side of the estimator: EstimateExplained
// re-runs the exact placement of Estimate through a recorder and turns
// the committed schedule into an explanation — where every op landed,
// which unit saturates first, and which chain of dependence and
// resource edges binds the makespan. The recorder only observes
// commits, so the explained schedule is the plain schedule; the
// invariant suite (internal/invariants) proves the byte-identity.

// placeRecorder captures placement decisions as estimate commits them.
// Recorders are pooled: every slice below grows to a high-water mark
// and is resliced per call, and the explanation builders copy rather
// than alias, so a recorder never escapes into an Explanation.
type placeRecorder struct {
	curInstr  int        // instruction being placed (set by estimate)
	segs      []segPlace // every committed segment occupancy, in commit order
	finish    []int      // dependent-visible end per instruction
	pipes     []machine.UnitInstance
	pipeNames []string // pipes[i].String(), built once per capture
	pipeBusy  []int    // noncoverable slots filled per pipe below End
	kinds     []machine.UnitKind
	// kpOff/kpFlat are the kind → pipe-index lists in flattened form:
	// kind k's pipes are kpFlat[kpOff[k]:kpOff[k+1]].
	kpOff  []int
	kpFlat []int32
	// depsBuf backs the dependence rows when recording: estimate
	// computes deps straight into the recorder's buffer, so the rows in
	// deps stay valid for the builders with no copy.
	depsBuf ir.DepsBuf
	deps    [][]int
	// opLat[op] is the total dependent-visible latency of each mapped
	// basic op, folded out of the cost table (depHeight reads it
	// instead of re-walking the machine table).
	opLat []int32
	// needKinds is blocker scratch: the kind indices of the current
	// path step's segments.
	needKinds []int32
	// owner is blocker scratch: owner[k*span + (slot-start)] is the
	// latest instruction whose noncoverable occupancy of kind k covers
	// the slot, or -1.
	owner     []int32
	ownerLo   int
	ownerSpan int
	// buildPath scratch: per-instruction segment ranges and the raw
	// backward walk (instr, edge code, unit-kind index) recorded before
	// the exact-size []PathStep is allocated.
	segLo     []int32
	segHi     []int32
	pathInstr []int32
	pathEdge  []int8
	pathUnit  []int32
	// satCounts is saturationSlot's per-slot busy-pipe counter.
	satCounts []int32
	// dhFinish is depHeight's per-instruction finish scratch.
	dhFinish []int
	// machFP/haveMach gate the machine-derived tables above: a capture
	// of the same machine content reuses them untouched.
	machFP   source.Fingerprint
	haveMach bool
}

var recPool = sync.Pool{New: func() any { return new(placeRecorder) }}

// depRow returns instruction i's dependence predecessors.
func (rec *placeRecorder) depRow(i int) []int {
	return rec.deps[i]
}

// kindRow returns the pipe indices of kind k.
func (rec *placeRecorder) kindRow(k int) []int32 {
	return rec.kpFlat[rec.kpOff[k]:rec.kpOff[k+1]]
}

// segPlace is one committed segment: instruction, pipe, and the
// occupied noncoverable interval [start, start+noncov).
type segPlace struct {
	instr  int32
	pipe   int32
	kind   int32 // index into placeRecorder.kinds
	start  int32
	noncov int32
}

// capture copies everything the explanation builder needs out of the
// pooled scratch before estimate returns it to the pool.
func (rec *placeRecorder) capture(sc *estScratch, b *bins, finish []int, end int, deps [][]int) {
	rec.deps = deps // rows live in rec.depsBuf, not the pooled scratch
	rec.finish = append(rec.finish[:0], finish...)
	// Everything derived from the machine alone — pipe inventory and
	// names, per-op latencies, kind tables — survives across captures of
	// the same machine content (mirroring estScratch's own caching).
	if !rec.haveMach || rec.machFP != sc.machFP {
		rec.haveMach, rec.machFP = true, sc.machFP
		rec.pipes = append(rec.pipes[:0], sc.inst...)
		rec.pipeNames = rec.pipeNames[:0]
		for _, p := range sc.inst {
			rec.pipeNames = append(rec.pipeNames, p.String())
		}
		if cap(rec.opLat) < len(sc.ct.opIdx) {
			rec.opLat = make([]int32, len(sc.ct.opIdx))
		}
		rec.opLat = rec.opLat[:len(sc.ct.opIdx)]
		for op, ci := range sc.ct.opIdx {
			lat := int32(1) // unmapped ops never reach capture; keep Latency's fallback
			if ci >= 0 {
				lat = 0
				for _, l := range sc.ct.costs[ci].atomLat {
					lat += l
				}
			}
			rec.opLat[op] = lat
		}
		rec.kinds = append(rec.kinds[:0], sc.ct.kinds...)
		rec.kpOff = append(rec.kpOff[:0], 0)
		rec.kpFlat = rec.kpFlat[:0]
		for _, ps := range sc.ct.kindPipes {
			rec.kpFlat = append(rec.kpFlat, ps...)
			rec.kpOff = append(rec.kpOff, len(rec.kpFlat))
		}
	}
	rec.pipeBusy = resetInts(rec.pipeBusy, len(b.slots))
	for i := range b.slots {
		rec.pipeBusy[i] = b.slots[i].filledCount(end)
	}
}

// PipeUse is the occupancy of one physical pipe over the schedule.
type PipeUse struct {
	Pipe string // e.g. "FPU#0"
	Kind machine.UnitKind
	Busy int // noncoverable slots occupied within the makespan
	// Utilization is Busy / Cost, in [0, 1].
	Utilization float64
}

// KindUse aggregates a unit kind's pipes.
type KindUse struct {
	Kind  machine.UnitKind
	Pipes int
	Busy  int // summed over the kind's pipes
	// Utilization is Busy / (Pipes × Cost), in [0, 1].
	Utilization float64
}

// Edge kinds of a critical-path step: what bound the step to its
// predecessor on the path.
const (
	EdgeDep      = "dep"      // a data/memory dependence: the producer's finish set the ready time
	EdgeResource = "resource" // every pipe of the needed kind was occupied through the wait window
	EdgeDispatch = "dispatch" // the dispatch width (or focus span) delayed the issue
)

// PathStep is one instruction on the binding critical path. Edge names
// the constraint that chains it to the previous (earlier) step; the
// first step has Edge "" — nothing held it back.
type PathStep struct {
	Instr  int
	Start  int // issue slot
	Finish int // dependent-visible end
	Edge   string
	// Unit is the contended unit kind for EdgeResource steps.
	Unit machine.UnitKind
}

// WhatIf is the one-more-pipe experiment: the same block re-priced on
// a machine with one extra pipe of the bottleneck kind.
type WhatIf struct {
	Unit  machine.UnitKind
	Pipes int // pipe count after adding one
	Cost  int // re-estimated makespan
	// Speedup is baseline cost / Cost; > 1 means the extra pipe helps.
	Speedup float64
}

// Explanation is the full diagnosis of one block's schedule.
//
// Per-op placements are struct-of-arrays, like the estimator's own
// cost objects: instruction i issued at Result.PlaceTime[i], became
// visible to dependents at Finish[i], and its first segment ran on
// Pipes[OpPipe[i]].
type Explanation struct {
	// Result is exactly what Estimate returns for the same inputs.
	Result Result
	// Finish[i] is instruction i's dependent-visible end slot.
	Finish []int
	// OpPipe[i] indexes Pipes with the pipe of instruction i's first
	// committed segment; -1 for an instruction occupying no pipe.
	OpPipe []int
	Pipes  []PipeUse
	// Kinds is sorted by unit kind; only kinds with at least one pipe
	// appear.
	Kinds []KindUse
	// Bottleneck is the first-saturating resource: the unit kind with
	// the highest utilization (ties break to the lexicographically
	// smaller kind). Empty for an empty schedule.
	Bottleneck     machine.UnitKind
	BottleneckUtil float64
	// SaturatedAt is the earliest slot where every pipe of the
	// bottleneck kind is simultaneously busy; -1 if that never happens.
	SaturatedAt int
	// Path is the binding critical path, earliest step first. Its head
	// is the op whose finish closes the schedule; each step names the
	// edge whose relaxation would have let it start earlier.
	Path []PathStep
	// PathCycles is the span the path explains: the head's finish
	// minus the block's first occupied slot. Always ≤ Result.Cost.
	PathCycles int
	// DepHeight is the infinite-resource dependence height of the
	// block: the finish time with every resource and dispatch
	// constraint removed. It lower-bounds the end of any schedule that
	// honors the dependence rules — including the exact oracle's.
	DepHeight int
	// WhatIf is filled by ComputeWhatIf; nil otherwise.
	WhatIf *WhatIf
}

// EstimateExplained prices b exactly as Estimate does and returns the
// schedule diagnosis alongside the result. The placement is shared
// code with Estimate — the recorder only observes commits — so
// ex.Result always equals Estimate(m, b, opt).
func EstimateExplained(m *machine.Machine, b *ir.Block, opt Options) (*Explanation, error) {
	rec := recPool.Get().(*placeRecorder)
	defer recPool.Put(rec)
	rec.curInstr = 0
	rec.segs = rec.segs[:0]
	res, err := estimate(m, b, opt, rec)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Result: res, SaturatedAt: -1}
	ex.buildOps(b, rec)
	ex.buildUsage(rec)
	ex.buildPath(b, opt, rec)
	ex.DepHeight = depHeight(m, b, opt, rec)
	return ex, nil
}

// ComputeWhatIf re-prices the block on a copy of m with one extra
// pipe of the bottleneck kind and records the predicted speedup. It
// costs one extra Estimate, so it is split from EstimateExplained and
// invoked only where the caller wants the experiment.
func (ex *Explanation) ComputeWhatIf(m *machine.Machine, b *ir.Block, opt Options) error {
	if ex.Bottleneck == "" {
		return nil
	}
	m2, err := machine.WithExtraPipe(m, ex.Bottleneck)
	if err != nil {
		return err
	}
	res, err := Estimate(m2, b, opt)
	if err != nil {
		return err
	}
	w := &WhatIf{Unit: ex.Bottleneck, Pipes: m2.UnitCounts[ex.Bottleneck], Cost: res.Cost, Speedup: 1}
	if res.Cost > 0 {
		w.Speedup = float64(ex.Result.Cost) / float64(res.Cost)
	}
	ex.WhatIf = w
	return nil
}

// buildOps fills the per-op placement arrays and, in the same pass
// over the committed segments, the recorder's per-instruction segment
// ranges (segments land in program order, so each op's share is
// contiguous) that buildPath's resource queries reuse.
func (ex *Explanation) buildOps(b *ir.Block, rec *placeRecorder) {
	n := len(b.Instrs)
	ex.Finish = append(make([]int, 0, n), rec.finish...)
	ex.OpPipe = make([]int, n)
	for i := range ex.OpPipe {
		ex.OpPipe[i] = -1
	}
	segLo := resetInt32s(rec.segLo, n, -1)
	segHi := resetInt32s(rec.segHi, n, 0)
	for si, s := range rec.segs {
		if segLo[s.instr] < 0 {
			segLo[s.instr] = int32(si)
			ex.OpPipe[s.instr] = int(s.pipe)
		}
		segHi[s.instr] = int32(si + 1)
	}
	rec.segLo, rec.segHi = segLo, segHi
}

func (ex *Explanation) buildUsage(rec *placeRecorder) {
	cost := ex.Result.Cost
	ex.Pipes = make([]PipeUse, len(rec.pipes))
	for i, p := range rec.pipes {
		u := PipeUse{Pipe: rec.pipeNames[i], Kind: p.Kind, Busy: rec.pipeBusy[i]}
		if cost > 0 {
			u.Utilization = float64(u.Busy) / float64(cost)
		}
		ex.Pipes[i] = u
	}
	ex.Kinds = make([]KindUse, 0, len(rec.kinds))
	for ki, kind := range rec.kinds {
		pipes := rec.kindRow(ki)
		if len(pipes) == 0 {
			// A kind referenced by the cost table with no pipes on the
			// machine; placement would have failed had it been needed.
			continue
		}
		ku := KindUse{Kind: kind, Pipes: len(pipes)}
		for _, p := range pipes {
			ku.Busy += rec.pipeBusy[p]
		}
		if cost > 0 {
			ku.Utilization = float64(ku.Busy) / float64(len(pipes)*cost)
		}
		ex.Kinds = append(ex.Kinds, ku)
	}
	// Insertion sort: a machine has a handful of kinds, and sort.Slice
	// would allocate a reflect swapper per call on this hot path.
	for i := 1; i < len(ex.Kinds); i++ {
		for j := i; j > 0 && ex.Kinds[j].Kind < ex.Kinds[j-1].Kind; j-- {
			ex.Kinds[j], ex.Kinds[j-1] = ex.Kinds[j-1], ex.Kinds[j]
		}
	}
	for _, ku := range ex.Kinds {
		if ku.Busy == 0 {
			continue
		}
		if ku.Utilization > ex.BottleneckUtil {
			ex.Bottleneck, ex.BottleneckUtil = ku.Kind, ku.Utilization
		}
	}
	ex.SaturatedAt = ex.saturationSlot(rec)
}

// saturationSlot finds the earliest slot where every pipe of the
// bottleneck kind is busy at once.
func (ex *Explanation) saturationSlot(rec *placeRecorder) int {
	if ex.Bottleneck == "" || ex.Result.End <= ex.Result.Start {
		return -1
	}
	var want int
	ki := int32(-1)
	for i, k := range rec.kinds {
		if k == ex.Bottleneck {
			ki = int32(i)
			want = len(rec.kindRow(i))
			break
		}
	}
	if ki < 0 || want == 0 {
		return -1
	}
	counts := resetInt32s(rec.satCounts, ex.Result.End-ex.Result.Start, 0)
	rec.satCounts = counts
	for _, s := range rec.segs {
		if s.kind != ki {
			continue
		}
		for t := int(s.start); t < int(s.start+s.noncov); t++ {
			if r := t - ex.Result.Start; r >= 0 && r < len(counts) {
				counts[r]++
			}
		}
	}
	for r, c := range counts {
		if int(c) >= want {
			return ex.Result.Start + r
		}
	}
	return -1
}

// buildPath walks backward from the op that closes the schedule,
// following at each step the constraint that bound its issue slot: the
// dominating dependence (dep edge), the op whose occupancy kept every
// candidate pipe full (resource edge), or — when neither applies — the
// latest earlier issue (dispatch edge). Every predecessor has a
// strictly smaller instruction index, so the walk terminates.
func (ex *Explanation) buildPath(b *ir.Block, opt Options, rec *placeRecorder) {
	n := len(b.Instrs)
	if n == 0 {
		return
	}
	place, finish := ex.Result.PlaceTime, rec.finish
	head := 0
	for i := 1; i < n; i++ {
		if finish[i] > finish[head] {
			head = i
		}
	}
	rec.ownerSpan = -1 // owner index built lazily on the first resource query

	// Walk backward into pooled scratch first — every predecessor has a
	// strictly smaller instruction index (dependences point backward,
	// blocker and latestIssueBefore only return earlier ops), so the
	// walk terminates and the path length is known before the
	// exact-size []PathStep is allocated.
	const (
		edgeNone = int8(iota)
		edgeDep
		edgeResource
		edgeDispatch
	)
	pi, pe, pu := rec.pathInstr[:0], rec.pathEdge[:0], rec.pathUnit[:0]
	cur := head
	for cur >= 0 && len(pi) <= n {
		in := &b.Instrs[cur]
		edge, unit := edgeNone, int32(-1)

		ready, dataReady, depM, depD := 0, 0, -1, -1
		if !opt.IgnoreDeps {
			for _, j := range rec.depRow(cur) {
				if b.Instrs[j].Op.IsMem() {
					if finish[j] > ready {
						ready, depM = finish[j], j
					}
				} else if finish[j] > dataReady {
					dataReady, depD = finish[j], j
				}
			}
		}
		depj := depM
		if !in.Op.IsStore() && dataReady > ready {
			ready, depj = dataReady, depD
		}

		pred := -1
		switch {
		case in.Op.IsStore() && depD >= 0 && finish[cur] == dataReady+1 && finish[cur] > place[cur]:
			// The buffered store's completion is set by the datum's
			// arrival, not by its unit slots: the data producer binds.
			edge, pred = edgeDep, depD
		case place[cur] > ready:
			if j, ki := blocker(rec, cur, ready, place[cur], ex.Result.Start, ex.Result.End); j >= 0 {
				edge, unit, pred = edgeResource, ki, j
			} else if j := latestIssueBefore(place, cur); j >= 0 {
				edge, pred = edgeDispatch, j
			}
		case depj >= 0 && ready > 0:
			edge, pred = edgeDep, depj
		}
		pi, pe, pu = append(pi, int32(cur)), append(pe, edge), append(pu, unit)
		cur = pred
	}
	rec.pathInstr, rec.pathEdge, rec.pathUnit = pi, pe, pu

	// Materialize in chronological order; the earliest step's Edge (the
	// walk's last) is already none when the chain reached an op that
	// nothing held back.
	steps := make([]PathStep, len(pi))
	for i := range steps {
		k := len(pi) - 1 - i
		c := int(pi[k])
		st := PathStep{Instr: c, Start: place[c], Finish: finish[c]}
		switch pe[k] {
		case edgeDep:
			st.Edge = EdgeDep
		case edgeResource:
			st.Edge, st.Unit = EdgeResource, rec.kinds[pu[k]]
		case edgeDispatch:
			st.Edge = EdgeDispatch
		}
		steps[i] = st
	}
	ex.Path = steps
	if pc := finish[head] - ex.Result.Start; pc > 0 {
		ex.PathCycles = pc
	}
}

// buildOwnerIndex fills rec.owner: for every kind and every slot of
// the occupied region, the latest instruction whose noncoverable
// occupancy of that kind covers the slot. Built once per explanation,
// it makes every blocker query a few array reads.
func (rec *placeRecorder) buildOwnerIndex(lo, hi int) {
	span := hi - lo
	if span <= 0 {
		rec.ownerSpan = 0
		return
	}
	rec.ownerLo, rec.ownerSpan = lo, span
	n := len(rec.kinds) * span
	if cap(rec.owner) < n {
		rec.owner = make([]int32, n)
	}
	rec.owner = rec.owner[:n]
	for i := range rec.owner {
		rec.owner[i] = -1
	}
	for si := range rec.segs {
		s := &rec.segs[si]
		if s.noncov == 0 {
			continue
		}
		row := rec.owner[int(s.kind)*span : (int(s.kind)+1)*span]
		for t := int(s.start); t < int(s.start+s.noncov); t++ {
			if r := t - lo; r >= 0 && r < span && s.instr > row[r] {
				row[r] = s.instr
			}
		}
	}
}

// blocker finds the earlier instruction whose occupancy on a pipe
// kind cur needs overlaps cur's wait window [ready, start): scanning
// the owner index from the stall point downward, the first covered
// slot's latest owner wins (the op still holding the pipe when cur
// finally issued). Returns -1 when no earlier occupancy explains the
// delay (a dispatch stall).
func blocker(rec *placeRecorder, cur, ready, start, lo, hi int) (int, int32) {
	if rec.ownerSpan == -1 {
		rec.buildOwnerIndex(lo, hi)
	}
	if rec.ownerSpan == 0 {
		return -1, -1
	}
	needs := rec.needKinds[:0]
	if rec.segLo[cur] >= 0 {
	collect:
		for si := rec.segLo[cur]; si < rec.segHi[cur]; si++ {
			k := rec.segs[si].kind
			for _, have := range needs {
				if have == k {
					continue collect
				}
			}
			needs = append(needs, k)
		}
	}
	rec.needKinds = needs
	for t := start - 1; t >= ready; t-- {
		r := t - rec.ownerLo
		if r < 0 || r >= rec.ownerSpan {
			continue
		}
		best, bestKind := int32(-1), int32(-1)
		for _, k := range needs {
			if o := rec.owner[int(k)*rec.ownerSpan+r]; o > best && int(o) < cur {
				best, bestKind = o, k
			}
		}
		if best >= 0 {
			return int(best), bestKind
		}
	}
	return -1, -1
}

// resetInt32s reslices s to n elements, all set to fill, growing the
// backing array only past its high-water mark.
func resetInt32s(s []int32, n int, fill int32) []int32 {
	if cap(s) < n {
		s = make([]int32, n, n+n/4)
	}
	s = s[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}

// latestIssueBefore picks the latest-issued earlier instruction (the
// latest index among those with maximal issue slot ≤ cur's): the
// stand-in predecessor for a dispatch-width (or focus-span) stall.
// Scanning backward lets it stop at the first same-slot neighbor,
// which on dispatch-bound blocks is almost always adjacent.
func latestIssueBefore(place []int, cur int) int {
	best := -1
	for j := cur - 1; j >= 0; j-- {
		if place[j] > place[cur] {
			continue
		}
		if best < 0 || place[j] > place[best] {
			best = j
			if place[j] == place[cur] {
				break
			}
		}
	}
	return best
}

// depHeight computes the block's finish time with every resource and
// dispatch constraint removed: each op starts the moment its operands
// allow, under the same ready rules as placement (buffered stores
// included). The result lower-bounds the End of any schedule honoring
// those rules, whatever its order — the differential tests hold it
// against the exact oracle.
func depHeight(m *machine.Machine, b *ir.Block, opt Options, rec *placeRecorder) int {
	finish := resetInts(rec.dhFinish, len(b.Instrs))
	rec.dhFinish = finish
	h := 0
	for i := range b.Instrs {
		in := &b.Instrs[i]
		ready, dataReady := 0, 0
		if !opt.IgnoreDeps {
			for _, j := range rec.depRow(i) {
				if b.Instrs[j].Op.IsMem() {
					if finish[j] > ready {
						ready = finish[j]
					}
				} else if finish[j] > dataReady {
					dataReady = finish[j]
				}
			}
		}
		if !in.Op.IsStore() && dataReady > ready {
			ready = dataReady
		}
		lat := 0
		if int(in.Op) >= 0 && int(in.Op) < len(rec.opLat) {
			lat = int(rec.opLat[in.Op])
		} else {
			lat = m.Latency(in.Op)
		}
		end := ready + lat
		if in.Op.IsStore() && dataReady+1 > end {
			end = dataReady + 1
		}
		finish[i] = end
		if end > h {
			h = end
		}
	}
	return h
}
