// Package tetris implements the cost model for straight-line code on
// superscalar architectures from Wang (PLDI 1994, §2.1): operations are
// two-dimensional cost objects dropped into a (functional-unit ×
// time-slot) bin at the lowest position where every per-unit segment
// fits simultaneously, honoring the data-dependence "filter". The
// block's cost is the distance between the highest and lowest occupied
// time slots.
package tetris

import (
	"fmt"
	"math/bits"
	"strings"
)

// slotOccupancy is the contract of one functional-unit pipe's
// time-slot occupancy. Two implementations exist: slotBitmap (the
// production kernel, word-wide uint64 occupancy) and slotList (the
// paper's Figure 4 run-length encoding, retired from the hot path but
// kept as the differential oracle — FuzzSlotOccupancy and the seeded
// table tests pin the two byte-identical over random op sequences).
type slotOccupancy interface {
	reset(capacity int)
	free(from, n int) bool
	nextFit(from, n int) int
	occupy(from, n int)
	filledCount(upto int) int
	extent() (first, last int)
	Encode(upto int) []int
	render(upto int) string
	checkInvariants() error
}

var (
	_ slotOccupancy = (*slotBitmap)(nil)
	_ slotOccupancy = (*slotList)(nil)
)

// slotBitmap stores the occupancy of one functional-unit pipe as a
// dense bitmap: bit i of words[i/64] is set iff time slot i is filled.
// free is a mask-AND over at most a handful of words, occupy is an OR,
// and nextFit is a math/bits complement scan — no run walking, no
// binary search. size tracks the represented slot count with the same
// doubling policy as the run-length list so that Encode (which renders
// the literal Figure 4 ±size array, including the trailing empty run)
// stays byte-identical between the two implementations.
type slotBitmap struct {
	words []uint64 // invariant: every bit at index ≥ any occupied slot that was never set is 0
	size  int      // total slots represented (grows on demand)
}

func newSlotBitmap(capacity int) *slotBitmap {
	s := &slotBitmap{}
	s.reset(capacity)
	return s
}

// reset re-initializes the bitmap to all-empty, keeping the backing
// word storage at its high-water capacity so pooled scratch stops
// reallocating across heterogeneous blocks.
func (s *slotBitmap) reset(capacity int) {
	if capacity <= 0 {
		capacity = 64
	}
	nw := (capacity + 63) >> 6
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
	} else {
		// Clear the full high-water extent: occupy only ever sets bits
		// below len(s.words)*64, and grow reslices within this zeroed
		// region without touching memory.
		w := s.words[:cap(s.words)]
		for i := range w {
			w[i] = 0
		}
		s.words = w[:nw]
	}
	s.size = capacity
}

// grow extends the represented slot count so that slot i exists, with
// the exact doubling arithmetic of slotList.ensure (Encode parity
// depends on the two growing in lockstep). Storage is only extended
// when a word is actually needed.
func (s *slotBitmap) grow(i int) {
	if i < s.size {
		return
	}
	g := i + 1 - s.size
	if g < s.size {
		g = s.size // double
	}
	s.size += g
}

// ensureWords makes the word slice cover slot i (bits beyond the
// current length are zero by the reset invariant, so reslicing within
// capacity is free).
func (s *slotBitmap) ensureWords(i int) {
	nw := (i >> 6) + 1
	if nw <= len(s.words) {
		return
	}
	if nw <= cap(s.words) {
		s.words = s.words[:nw]
		return
	}
	grown := make([]uint64, nw, nw+nw/2)
	copy(grown, s.words)
	s.words = grown
}

// rangeMask returns the mask of bits [lo, hi) within one word, 0 ≤ lo <
// hi ≤ 64.
func rangeMask(lo, hi uint) uint64 {
	m := ^uint64(0) << lo
	if hi < 64 {
		m &^= ^uint64(0) << hi
	}
	return m
}

// free reports whether slots [from, from+n) are all empty: an AND of at
// most ⌈n/64⌉+1 words against range masks.
func (s *slotBitmap) free(from, n int) bool {
	if n <= 0 {
		return true
	}
	s.grow(from + n - 1)
	return s.freeQuick(from, n)
}

// freeQuick is free without the represented-size growth: the answer
// depends only on the stored words (slots past them are empty), and the
// size bookkeeping exists for Encode/render parity with the run-length
// form, which the placement query doesn't touch. tryFit probes with
// this; the interface method free keeps the growth so the differential
// suite can pin the two implementations size-identical.
func (s *slotBitmap) freeQuick(from, n int) bool {
	end := from + n // exclusive
	w := from >> 6
	if w >= len(s.words) {
		return true
	}
	lastW := (end - 1) >> 6
	if lastW >= len(s.words) {
		lastW = len(s.words) - 1
		end = (lastW + 1) << 6
	}
	if w == lastW {
		return s.words[w]&rangeMask(uint(from)&63, uint(end-1)&63+1) == 0
	}
	if s.words[w]&rangeMask(uint(from)&63, 64) != 0 {
		return false
	}
	for w++; w < lastW; w++ {
		if s.words[w] != 0 {
			return false
		}
	}
	return s.words[lastW]&rangeMask(0, uint(end-1)&63+1) == 0
}

// nextFit returns the lowest t ≥ from such that slots [t, t+n) are all
// empty: a TrailingZeros scan over the occupancy words that jumps whole
// filled stretches instead of probing slot by slot. It always succeeds
// because the bitmap grows on demand.
func (s *slotBitmap) nextFit(from, n int) int {
	if n <= 0 {
		return from
	}
	if from < 0 {
		from = 0
	}
	s.grow(from + n)
	run := 0       // consecutive free slots ending just before the scan point
	start := from  // where the current free run began
	w := from >> 6 // current word
	bit := uint(from) & 63
	for {
		if w >= len(s.words) {
			break // all free from here on: the run extends forever
		}
		word := s.words[w] >> bit // occupancy from slot w*64+bit upward
		avail := 64 - int(bit)
		if word == 0 {
			run += avail
			if run >= n {
				break
			}
			w++
			bit = 0
			continue
		}
		tz := bits.TrailingZeros64(word)
		if run += tz; run >= n {
			break
		}
		// Hit a filled stretch; skip it wholesale and restart the run.
		ones := bits.TrailingZeros64(^(word >> uint(tz)))
		pos := w<<6 + int(bit) + tz + ones
		run = 0
		start = pos
		w = pos >> 6
		bit = uint(pos) & 63
	}
	// Mirror slotList.nextFit's trailing growth: finding a fit that
	// extends past the represented size enlarges the list.
	for start+n > s.size {
		s.grow(s.size + n)
	}
	return start
}

// nextFitQuick is nextFit without the represented-size growth, for the
// same reason as freeQuick: the fit position depends only on the stored
// words, and the probe path doesn't need Figure 4 size bookkeeping.
func (s *slotBitmap) nextFitQuick(from, n int) int {
	if n <= 0 {
		return from
	}
	if from < 0 {
		from = 0
	}
	if n == 1 { // dominant case: first zero bit at or after from
		w := from >> 6
		if w >= len(s.words) {
			return from
		}
		if inv := ^s.words[w] &^ ((uint64(1) << (uint(from) & 63)) - 1); inv != 0 {
			return w<<6 + bits.TrailingZeros64(inv)
		}
		for w++; w < len(s.words); w++ {
			if inv := ^s.words[w]; inv != 0 {
				return w<<6 + bits.TrailingZeros64(inv)
			}
		}
		return len(s.words) << 6
	}
	run := 0
	start := from
	w := from >> 6
	bit := uint(from) & 63
	for w < len(s.words) {
		word := s.words[w] >> bit
		avail := 64 - int(bit)
		if word == 0 {
			run += avail
			if run >= n {
				return start
			}
			w++
			bit = 0
			continue
		}
		tz := bits.TrailingZeros64(word)
		if run += tz; run >= n {
			return start
		}
		ones := bits.TrailingZeros64(^(word >> uint(tz)))
		pos := w<<6 + int(bit) + tz + ones
		run = 0
		start = pos
		w = pos >> 6
		bit = uint(pos) & 63
	}
	return start
}

// occupy marks slots [from, from+n) as filled. The slots must be empty.
func (s *slotBitmap) occupy(from, n int) {
	if n <= 0 {
		return
	}
	s.grow(from + n)
	if !s.free(from, n) {
		panic(fmt.Sprintf("tetris: occupy(%d, %d) over filled slots", from, n))
	}
	s.setRange(from, n)
}

// occupyFit is occupy for a range the caller has already proven free
// (placeOne commits only slots tryFit just checked), skipping the
// guard's extra word scan.
func (s *slotBitmap) occupyFit(from, n int) {
	if n <= 0 {
		return
	}
	s.grow(from + n)
	s.setRange(from, n)
}

// setRange ORs bits [from, from+n) into the words.
func (s *slotBitmap) setRange(from, n int) {
	s.ensureWords(from + n - 1)
	end := from + n
	w := from >> 6
	lastW := (end - 1) >> 6
	if w == lastW {
		s.words[w] |= rangeMask(uint(from)&63, uint(end-1)&63+1)
		return
	}
	s.words[w] |= rangeMask(uint(from)&63, 64)
	for w++; w < lastW; w++ {
		s.words[w] = ^uint64(0)
	}
	s.words[lastW] |= rangeMask(0, uint(end-1)&63+1)
}

// filledCount returns the number of filled slots in [0, upto): an
// OnesCount per word plus one masked partial.
func (s *slotBitmap) filledCount(upto int) int {
	if upto <= 0 {
		return 0
	}
	total := 0
	full := upto >> 6
	if full > len(s.words) {
		full = len(s.words)
	}
	for _, word := range s.words[:full] {
		total += bits.OnesCount64(word)
	}
	if rem := uint(upto) & 63; rem != 0 && upto>>6 < len(s.words) {
		total += bits.OnesCount64(s.words[upto>>6] & rangeMask(0, rem))
	}
	return total
}

// extent returns the first and last filled slots, or (-1, -1) if none.
func (s *slotBitmap) extent() (first, last int) {
	first, last = -1, -1
	for w, word := range s.words {
		if word != 0 {
			first = w<<6 + bits.TrailingZeros64(word)
			break
		}
	}
	if first == -1 {
		return -1, -1
	}
	for w := len(s.words) - 1; w >= 0; w-- {
		if word := s.words[w]; word != 0 {
			last = w<<6 + 63 - bits.LeadingZeros64(word)
			break
		}
	}
	return first, last
}

// bitAt reports slot i's occupancy (slots beyond storage are empty).
func (s *slotBitmap) bitAt(i int) bool {
	w := i >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(i)&63)) != 0
}

// runEnd returns the end (exclusive, capped at size) of the maximal
// same-state run starting at slot i.
func (s *slotBitmap) runEnd(i int) int {
	filled := s.bitAt(i)
	w := i >> 6
	bit := uint(i) & 63
	for {
		if w >= len(s.words) {
			if filled {
				return w << 6 // filled bits never extend past storage
			}
			return s.size
		}
		word := s.words[w] >> bit
		if filled {
			// Scan for the first zero; mask off the zero-fill the shift
			// introduced above the word's real bits so it is not taken
			// for a free slot.
			word = ^word &^ (^uint64(0) << uint(64-int(bit)))
		}
		if word == 0 {
			w++
			bit = 0
			continue
		}
		end := w<<6 + int(bit) + bits.TrailingZeros64(word)
		if !filled && end > s.size {
			end = s.size
		}
		return end
	}
}

// Encode renders the first `upto` slots in the paper's Figure 4 array
// encoding — the first and last slot of each run hold the run length,
// negative for empty runs; interior slots hold 0 — reconstructed from
// the bitmap for debugging and for differential comparison against the
// retired run-length implementation.
func (s *slotBitmap) Encode(upto int) []int {
	out := make([]int, upto)
	for start := 0; start < upto && start < s.size; {
		end := s.runEnd(start)
		length := end - start
		v := length
		if !s.bitAt(start) {
			v = -length
		}
		if start+length > upto {
			length = upto - start
			v = length
			if !s.bitAt(start) {
				v = -length
			}
		}
		out[start] = v
		out[start+length-1] = v
		start = end
	}
	return out
}

// render draws occupancy as '#' (filled) and '.' (empty), for tests and
// debug dumps.
func (s *slotBitmap) render(upto int) string {
	var b strings.Builder
	n := upto
	if n > s.size {
		n = s.size
	}
	for i := 0; i < n; i++ {
		if s.bitAt(i) {
			b.WriteByte('#')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// checkInvariants validates the bitmap structure (used by property
// tests): no filled slot at or beyond the represented size, and no
// stray bits in the zeroed high-water region.
func (s *slotBitmap) checkInvariants() error {
	if s.size <= 0 {
		return fmt.Errorf("size %d", s.size)
	}
	for w := s.size >> 6; w < len(s.words); w++ {
		word := s.words[w]
		if w == s.size>>6 {
			word &^= rangeMask(0, uint(s.size)&63) // bits below size are fine
		}
		if word != 0 {
			return fmt.Errorf("filled slot at or beyond size %d (word %d = %#x)", s.size, w, s.words[w])
		}
	}
	for w := len(s.words); w < cap(s.words); w++ {
		if s.words[:cap(s.words)][w] != 0 {
			return fmt.Errorf("stray bits beyond words length (word %d)", w)
		}
	}
	return nil
}
