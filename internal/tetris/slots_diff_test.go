package tetris

// Differential suite for the slot-occupancy kernel: every operation of
// the bitmap implementation must be byte-identical to the retired
// run-length (Figure 4) implementation — return values, growth
// behaviour (which Encode's trailing empty run exposes), renders, and
// internal invariants — over both seeded sequences and fuzzed ones.

import (
	"math/rand"
	"testing"
)

// diffPair drives both implementations in lockstep and fails on any
// divergence.
type diffPair struct {
	t  *testing.T
	bm *slotBitmap
	rl *slotList
}

func newDiffPair(t *testing.T, capacity int) *diffPair {
	return &diffPair{t: t, bm: newSlotBitmap(capacity), rl: newSlotList(capacity)}
}

func (d *diffPair) free(from, n int) bool {
	gb, gr := d.bm.free(from, n), d.rl.free(from, n)
	if gb != gr {
		d.t.Fatalf("free(%d,%d): bitmap=%v runlength=%v\nbm: %s\nrl: %s",
			from, n, gb, gr, d.bm.render(from+n+8), d.rl.render(from+n+8))
	}
	d.check()
	return gb
}

func (d *diffPair) nextFit(from, n int) int {
	gb, gr := d.bm.nextFit(from, n), d.rl.nextFit(from, n)
	if gb != gr {
		d.t.Fatalf("nextFit(%d,%d): bitmap=%d runlength=%d\nbm: %s\nrl: %s",
			from, n, gb, gr, d.bm.render(gb+n+8), d.rl.render(gr+n+8))
	}
	d.check()
	return gb
}

func (d *diffPair) occupy(from, n int) {
	d.bm.occupy(from, n)
	d.rl.occupy(from, n)
	d.check()
}

func (d *diffPair) check() {
	d.t.Helper()
	if d.bm.size != d.rl.size {
		d.t.Fatalf("size: bitmap=%d runlength=%d", d.bm.size, d.rl.size)
	}
	fb, lb := d.bm.extent()
	fr, lr := d.rl.extent()
	if fb != fr || lb != lr {
		d.t.Fatalf("extent: bitmap=(%d,%d) runlength=(%d,%d)", fb, lb, fr, lr)
	}
	for _, upto := range []int{1, 7, 63, 64, 65, d.bm.size, d.bm.size + 9} {
		if cb, cr := d.bm.filledCount(upto), d.rl.filledCount(upto); cb != cr {
			d.t.Fatalf("filledCount(%d): bitmap=%d runlength=%d", upto, cb, cr)
		}
	}
	if eb, er := d.bm.Encode(d.bm.size), d.rl.Encode(d.rl.size); !intsEqual(eb, er) {
		d.t.Fatalf("Encode(size=%d):\nbitmap    = %v\nrunlength = %v", d.bm.size, eb, er)
	}
	if rb, rr := d.bm.render(d.bm.size), d.rl.render(d.rl.size); rb != rr {
		d.t.Fatalf("render:\nbitmap    = %s\nrunlength = %s", rb, rr)
	}
	if err := d.bm.checkInvariants(); err != nil {
		d.t.Fatalf("bitmap invariants: %v", err)
	}
	if err := d.rl.checkInvariants(); err != nil {
		d.t.Fatalf("runlength invariants: %v", err)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSlotBitmapMatchesRunLengthSeeded pins hand-picked word-boundary
// and growth cases: single-bit ops at 0/63/64, ranges crossing one and
// several word boundaries, exact 64-slot ranges, and occupies far past
// the initial 64-slot capacity.
func TestSlotBitmapMatchesRunLengthSeeded(t *testing.T) {
	type op struct {
		kind    string
		from, n int
	}
	cases := []struct {
		name string
		cap  int
		ops  []op
	}{
		{"single-bits", 64, []op{
			{"occupy", 0, 1}, {"occupy", 63, 1}, {"occupy", 64, 1},
			{"free", 0, 1}, {"free", 1, 62}, {"nextFit", 0, 1}, {"nextFit", 0, 70},
		}},
		{"word-straddle", 64, []op{
			{"occupy", 60, 8}, {"free", 59, 2}, {"free", 68, 4},
			{"nextFit", 0, 60}, {"nextFit", 0, 61}, {"nextFit", 61, 3},
		}},
		{"exact-word", 128, []op{
			{"occupy", 64, 64}, {"free", 0, 64}, {"free", 63, 2},
			{"nextFit", 0, 64}, {"nextFit", 1, 64}, {"nextFit", 70, 5},
		}},
		{"multi-word-span", 64, []op{
			{"occupy", 10, 200}, {"free", 0, 10}, {"free", 209, 1}, {"free", 210, 1},
			{"nextFit", 0, 11}, {"nextFit", 5, 6}, {"nextFit", 100, 1},
		}},
		{"growth-past-capacity", 16, []op{
			{"occupy", 100, 10}, {"occupy", 500, 64}, {"nextFit", 0, 400},
			{"free", 110, 390}, {"occupy", 110, 390}, {"nextFit", 0, 1},
		}},
		{"checkerboard", 64, []op{
			{"occupy", 0, 2}, {"occupy", 4, 2}, {"occupy", 8, 2}, {"occupy", 12, 2},
			{"nextFit", 0, 2}, {"nextFit", 0, 3}, {"nextFit", 1, 2}, {"free", 2, 2},
		}},
		{"fill-then-tail-growth", 8, []op{
			{"occupy", 0, 8}, {"nextFit", 0, 4}, {"occupy", 8, 8}, {"nextFit", 0, 64},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDiffPair(t, tc.cap)
			for _, o := range tc.ops {
				switch o.kind {
				case "occupy":
					d.occupy(o.from, o.n)
				case "free":
					d.free(o.from, o.n)
				case "nextFit":
					d.nextFit(o.from, o.n)
				}
			}
		})
	}
}

// TestSlotBitmapMatchesRunLengthRandom runs long random op sequences —
// the same shape the fuzz target uses, but with a fixed seed sweep so
// CI exercises it without the fuzz engine.
func TestSlotBitmapMatchesRunLengthRandom(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		capacity := 1 + r.Intn(130)
		d := newDiffPair(t, capacity)
		for i := 0; i < 120; i++ {
			from, n := r.Intn(700), 1+r.Intn(90)
			switch r.Intn(3) {
			case 0:
				if d.free(from, n) {
					d.occupy(from, n)
				}
			case 1:
				at := d.nextFit(from, n)
				if r.Intn(2) == 0 {
					d.occupy(at, n)
				}
			default:
				d.free(from, n)
			}
		}
	}
}

// FuzzSlotOccupancy interprets the fuzz input as an op sequence over
// both implementations: byte triples (opcode, from, n) where occupy is
// only applied when both report the range free. Any divergence in
// results, sizes, Figure 4 encodings, or structural invariants fails.
func FuzzSlotOccupancy(f *testing.F) {
	f.Add([]byte{0, 3, 4, 1, 0, 3, 2, 0, 4})
	f.Add([]byte{0, 60, 8, 1, 59, 2, 2, 61, 3})
	f.Add([]byte{0, 255, 64, 2, 0, 255, 1, 100, 10})
	f.Add([]byte{0, 0, 64, 0, 64, 64, 2, 0, 65})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		// The first byte seeds the initial capacity so growth past (and
		// below) the 64-slot default is explored.
		capacity := 1 + int(data[0])
		data = data[1:]
		bm := newSlotBitmap(capacity)
		rl := newSlotList(capacity)
		d := &diffPair{t: t, bm: bm, rl: rl}
		for len(data) >= 3 {
			op, from, n := data[0]%3, int(data[1])*3, 1+int(data[2])%96
			data = data[3:]
			switch op {
			case 0:
				if d.free(from, n) {
					d.occupy(from, n)
				}
			case 1:
				at := d.nextFit(from, n)
				d.occupy(at, n)
			default:
				d.free(from, n)
			}
		}
	})
}
