package tetris

// Microbenchmarks for the Tetris kernel, each run against both slot
// implementations: "bitmap" is the production uint64/SoA kernel,
// "runlength" is the retired Figure 4 implementation preserved in
// runlength_est_test.go. scripts/bench.sh records these in
// BENCH_tetris.json; scripts/ci.sh smokes them and compares fresh
// numbers against the committed floor (non-gating).

import (
	"fmt"
	"testing"

	"perfpredict/internal/ir"
	"perfpredict/internal/kernels"
	"perfpredict/internal/lower"
	"perfpredict/internal/machine"
	"perfpredict/internal/source"
)

// kernelSuiteBlocks lowers the innermost block of every Figure 7 kernel
// on POWER1 and adds the ×4/×8 unrolled form of each — the block set
// every predict call prices, weighted the way the optimizer's unroll
// search weights it (most estimator time in production goes to pricing
// the unrolled candidates, which dwarf the rolled bodies).
func kernelSuiteBlocks(tb testing.TB) []*ir.Block {
	m := machine.NewPOWER1()
	var blocks []*ir.Block
	for _, k := range kernels.Figure7Set() {
		p, tbl, err := k.Parse()
		if err != nil {
			tb.Fatal(err)
		}
		body, vars, ok := benchInnermost(p.Body, nil)
		if !ok {
			continue
		}
		tr := lower.New(tbl, m, lower.DefaultOptions())
		lw, err := tr.Body(body, vars)
		if err != nil {
			tb.Fatal(err)
		}
		blocks = append(blocks, lw.Body)
		for _, f := range []int{4, 8} {
			blocks = append(blocks, benchUnrollIR(lw.Body, f))
		}
	}
	if len(blocks) == 0 {
		tb.Fatal("no kernel blocks")
	}
	return blocks
}

// benchUnrollIR builds the IR an f-way unrolled, register-renamed copy
// of blk lowers to: each iteration copy gets fresh registers and
// shifted subscripts (distinct address strings over the same bases), so
// copies are independent up to memory ordering — the shape the unroll
// search hands the estimator.
func benchUnrollIR(blk *ir.Block, f int) *ir.Block {
	out := &ir.Block{}
	stride := ir.Reg(int(blk.MaxReg()) + 1)
	for u := 0; u < f; u++ {
		for _, in := range blk.Instrs {
			c := in
			c.Srcs = make([]ir.Reg, len(in.Srcs))
			for k, s := range in.Srcs {
				if s == ir.NoReg {
					c.Srcs[k] = s
					continue
				}
				c.Srcs[k] = s + ir.Reg(u)*stride
			}
			if c.Dst != ir.NoReg {
				c.Dst += ir.Reg(u) * stride
			}
			if u > 0 && c.Addr != "" {
				c.Addr = fmt.Sprintf("%s@+%d", in.Addr, u)
			}
			out.Append(c)
		}
	}
	return out
}

// benchInnermost mirrors the library's innermost-block extraction:
// deepest loop nest whose body is straight-line.
func benchInnermost(stmts []source.Stmt, vars []string) ([]source.Stmt, []string, bool) {
	var bestBody []source.Stmt
	var bestVars []string
	bestDepth := -1
	var walk func(list []source.Stmt, vs []string)
	walk = func(list []source.Stmt, vs []string) {
		for _, s := range list {
			switch x := s.(type) {
			case *source.DoLoop:
				inner := append(append([]string{}, vs...), x.Var)
				straight := len(x.Body) > 0
				for _, b := range x.Body {
					switch b.(type) {
					case *source.Assign, *source.CallStmt, *source.ContinueStmt:
					default:
						straight = false
					}
				}
				if straight {
					if len(inner) > bestDepth {
						bestDepth = len(inner)
						bestBody = x.Body
						bestVars = inner
					}
					continue
				}
				walk(x.Body, inner)
			case *source.IfStmt:
				walk(x.Then, vs)
				walk(x.Else, vs)
			}
		}
	}
	walk(stmts, vars)
	if bestDepth < 0 {
		return nil, nil, false
	}
	return bestBody, bestVars, true
}

func benchSyntheticBlock(n int) *ir.Block {
	blk := &ir.Block{}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			blk.Append(ir.Instr{Op: ir.OpFLoad, Dst: ir.Reg(i), Addr: fmt.Sprintf("x(%d)", i), Base: "x"})
		case 1:
			blk.Append(ir.Instr{Op: ir.OpFMul, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(i - 1), 100000}})
		case 2:
			blk.Append(ir.Instr{Op: ir.OpFAdd, Dst: ir.Reg(i), Srcs: []ir.Reg{ir.Reg(i - 1), 100001}})
		default:
			blk.Append(ir.Instr{Op: ir.OpFStore, Srcs: []ir.Reg{ir.Reg(i - 1)}, Addr: fmt.Sprintf("y(%d)", i), Base: "y"})
		}
	}
	return blk
}

func benchDivChain(n int) *ir.Block {
	blk := &ir.Block{}
	for i := 0; i < n; i++ {
		src := ir.Reg(1000 + i)
		if i > 0 {
			src = ir.Reg(i - 1)
		}
		blk.Append(ir.Instr{Op: ir.OpFDiv, Dst: ir.Reg(i), Srcs: []ir.Reg{src, 999}})
	}
	return blk
}

type estimatorFn func(*machine.Machine, *ir.Block, Options) (Result, error)

func benchEstimator(b *testing.B, name string, fn estimatorFn, m *machine.Machine, blocks []*ir.Block, opt Options) {
	b.Run(name, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, blk := range blocks {
				if _, err := fn(m, blk, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTetrisEstimate prices block sets with both kernels; the
// bitmap/runlength ns/op ratio is the headline speedup (the PR gate
// pins ≥2× on the kernel suite).
func BenchmarkTetrisEstimate(b *testing.B) {
	m := machine.NewPOWER1()
	suites := []struct {
		name   string
		blocks []*ir.Block
		opt    Options
	}{
		{"kernels", kernelSuiteBlocks(b), Options{}},
		{"ops256", []*ir.Block{benchSyntheticBlock(256)}, Options{FocusSpan: 64}},
		{"ops4096", []*ir.Block{benchSyntheticBlock(4096)}, Options{FocusSpan: 64}},
		{"divchain128", []*ir.Block{benchDivChain(128)}, Options{}},
	}
	for _, s := range suites {
		b.Run(s.name, func(b *testing.B) {
			benchEstimator(b, "bitmap", Estimate, m, s.blocks, s.opt)
			benchEstimator(b, "runlength", rlEstimate, m, s.blocks, s.opt)
		})
	}
}

// BenchmarkTetrisTryFit isolates the placement primitive: one atomic
// op dropped 512 times into the same bins, every drop re-scanning from
// slot 0 through increasingly dense occupancy — tryFit/nextFit with
// the surrounding estimator stripped away.
func BenchmarkTetrisTryFit(b *testing.B) {
	m := machine.NewPOWER1()
	const drops = 512
	b.Run("bitmap", func(b *testing.B) {
		b.ReportAllocs()
		sc := new(estScratch)
		opt := Options{DispatchWidth: 1 << 20}
		for i := 0; i < b.N; i++ {
			bins := sc.prepare(m, opt)
			oc := sc.ct.lookup(ir.OpFAdd)
			for j := 0; j < drops; j++ {
				if _, err := bins.placeOne(oc, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("runlength", func(b *testing.B) {
		b.ReportAllocs()
		sc := new(rlScratch)
		opt := Options{DispatchWidth: 1 << 20}
		seq, err := m.Lookup(ir.OpFAdd)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			bins := sc.prepare(m, opt)
			for j := 0; j < drops; j++ {
				if _, err := bins.placeOne(seq[0], 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
