package tetris

import (
	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

// CostBlock is the geometric summary of a priced basic block (Figure
// 8): the area between the first and last occupied time slots, with
// per-unit-kind extents. Shapes are cheap to combine, which is how the
// paper aggregates adjacent blocks without re-running placement
// (Figure 9).
type CostBlock struct {
	// Height is the block's total cost in cycles.
	Height int
	// First and Last give, per unit kind, the first and last occupied
	// slot relative to the block start (absent if the kind is unused).
	First, Last map[machine.UnitKind]int
	// Busy counts occupied (noncoverable) slots per unit kind.
	Busy map[machine.UnitKind]int
}

// Utilization returns Busy/Height for the given kind (0 when unused or
// the block is empty).
func (cb CostBlock) Utilization(k machine.UnitKind) float64 {
	if cb.Height == 0 {
		return 0
	}
	return float64(cb.Busy[k]) / float64(cb.Height)
}

// CriticalUnit returns the unit kind with the highest utilization —
// the bin whose occupied/empty ratio the compiler inspects to decide
// whether reordering or unrolling is beneficial (§2.4.2).
func (cb CostBlock) CriticalUnit() (machine.UnitKind, float64) {
	var best machine.UnitKind
	bestU := -1.0
	for k := range cb.Busy {
		if u := cb.Utilization(k); u > bestU || (u == bestU && k < best) {
			best, bestU = k, u
		}
	}
	if bestU < 0 {
		return "", 0
	}
	return best, bestU
}

// Concat estimates the cost of running block a followed by block b by
// matching the bottom shape of a against the top shape of b (Figure
// 9): b is shifted up as far as the per-unit extents allow without two
// noncoverable regions overlapping in any unit kind. It returns the
// combined shape and the cycles saved versus sequential execution.
func Concat(a, b CostBlock) (combined CostBlock, saved int) {
	// Minimal legal offset for b relative to a's start.
	offset := 0
	for k, bFirst := range b.First {
		aLast, ok := a.Last[k]
		if !ok {
			continue
		}
		if need := aLast + 1 - bFirst; need > offset {
			offset = need
		}
	}
	if offset < 0 {
		offset = 0
	}
	height := a.Height
	if h := offset + b.Height; h > height {
		height = h
	}
	combined = CostBlock{
		Height: height,
		First:  map[machine.UnitKind]int{},
		Last:   map[machine.UnitKind]int{},
		Busy:   map[machine.UnitKind]int{},
	}
	for k, v := range a.First {
		combined.First[k] = v
	}
	for k, v := range a.Last {
		combined.Last[k] = v
	}
	for k, v := range a.Busy {
		combined.Busy[k] += v
	}
	for k, v := range b.First {
		if cur, ok := combined.First[k]; !ok || offset+v < cur {
			combined.First[k] = offset + v
		}
	}
	for k, v := range b.Last {
		if cur, ok := combined.Last[k]; !ok || offset+v > cur {
			combined.Last[k] = offset + v
		}
	}
	for k, v := range b.Busy {
		combined.Busy[k] += v
	}
	saved = a.Height + b.Height - height
	if saved < 0 {
		saved = 0
	}
	return combined, saved
}

// SelfConcat estimates the steady-state per-iteration cost of a loop
// whose body has shape cb, by repeatedly matching the shape against
// itself — the cheap variant of the paper's two unrolling estimators.
func SelfConcat(cb CostBlock, iters int) (total int, perIter float64) {
	if iters <= 0 {
		return 0, 0
	}
	cur := cb
	for i := 1; i < iters; i++ {
		cur, _ = Concat(cur, cb)
	}
	return cur.Height, float64(cur.Height) / float64(iters)
}

// Replicate builds a block containing iters renamed copies of b, as if
// the loop body were unrolled with independent iterations: registers
// are renamed per copy and indexed memory addresses are tagged with the
// copy number (scalar addresses are left alone, preserving reduction
// chains). This is the paper's second unrolling estimator: "dropping
// the innermost basic block into the functional bins multiple times".
func Replicate(b *ir.Block, iters int) *ir.Block {
	out := &ir.Block{Label: b.Label}
	stride := int32(b.MaxReg()) + 1
	for it := 0; it < iters; it++ {
		off := ir.Reg(int32(it) * stride)
		for _, in := range b.Instrs {
			c := in
			c.Srcs = make([]ir.Reg, len(in.Srcs))
			for k, s := range in.Srcs {
				if s == ir.NoReg {
					c.Srcs[k] = ir.NoReg
				} else {
					c.Srcs[k] = s + off
				}
			}
			if in.Dst != ir.NoReg {
				c.Dst = in.Dst + off
			}
			if it > 0 && c.Addr != "" && c.Addr != c.Base {
				c.Addr = c.Addr + "#" + itoa(it)
			}
			out.Instrs = append(out.Instrs, c)
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// SteadyState prices iters independent copies of b and returns the
// amortized per-iteration cost.
func SteadyState(m *machine.Machine, b *ir.Block, opt Options, iters int) (perIter float64, total int, err error) {
	return SteadyStateChained(m, b, opt, iters, nil)
}

// SteadyStateChained prices iters copies of b with register-carried
// recurrences preserved: chain maps each copy's loop-entry register
// (e.g. a promoted accumulator) to the register holding its value at
// the copy's end, so copy k's read depends on copy k−1's result — the
// serial chain of a sum reduction kept in a register.
func SteadyStateChained(m *machine.Machine, b *ir.Block, opt Options, iters int, chain map[ir.Reg]ir.Reg) (perIter float64, total int, err error) {
	if iters <= 0 {
		iters = 1
	}
	rep := Replicate(b, iters)
	if len(chain) > 0 {
		stride := int32(b.MaxReg()) + 1
		n := len(b.Instrs)
		for it := 1; it < iters; it++ {
			off := ir.Reg(int32(it) * stride)
			prevOff := ir.Reg(int32(it-1) * stride)
			for i := it * n; i < (it+1)*n; i++ {
				srcs := rep.Instrs[i].Srcs
				for k, s := range srcs {
					if s == ir.NoReg {
						continue
					}
					static := s - off
					if out, ok := chain[static]; ok && out != ir.NoReg {
						srcs[k] = out + prevOff
					}
				}
			}
		}
	}
	res, err := Estimate(m, rep, opt)
	if err != nil {
		return 0, 0, err
	}
	return float64(res.Cost) / float64(iters), res.Cost, nil
}

// BranchCovered implements the paper's branch-cost shape test (§2.4.2):
// the branch cost is hidden when the fixed-point unit (which issues the
// loads and the compare feeding the branch) starts sufficiently earlier
// than the other units — approximated as the difference between the
// bottom of the FXU extent and the earliest other unit's extent. It
// returns the estimated uncovered branch cycles, at most full.
func BranchCovered(cb CostBlock, full int) int {
	fxuFirst, ok := cb.First[machine.FXU]
	if !ok {
		return full
	}
	otherFirst := -1
	for k, v := range cb.First {
		if k == machine.FXU || k == machine.BRU {
			continue
		}
		if otherFirst == -1 || v < otherFirst {
			otherFirst = v
		}
	}
	if otherFirst == -1 {
		return full
	}
	lead := otherFirst - fxuFirst
	if lead < 0 {
		lead = 0
	}
	uncovered := full - lead
	if uncovered < 0 {
		return 0
	}
	return uncovered
}
