package tetris

import (
	"reflect"
	"testing"
	"time"

	"perfpredict/internal/ir"
	"perfpredict/internal/machine"
)

func explained(t *testing.T, m *machine.Machine, b *ir.Block, opt Options) *Explanation {
	t.Helper()
	ex, err := EstimateExplained(m, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// The explained result must be the plain result, and running the
// explained variant must not perturb the pooled scratch a following
// plain Estimate reuses (the inertness guarantee at this layer).
func TestExplainAgreesAndStaysInert(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	for i := 0; i < 8; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(100+i), ir.Reg(200+i)))
	}
	before := est(t, m, b, Options{})
	ex := explained(t, m, b, Options{})
	after := est(t, m, b, Options{})
	if !reflect.DeepEqual(before, ex.Result) {
		t.Errorf("explained result differs from Estimate: %+v vs %+v", ex.Result, before)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("plain Estimate changed after EstimateExplained: %+v vs %+v", before, after)
	}
}

// A chain of dependent adds is bound purely by dependences: the path
// must walk the whole chain on dep edges and explain the entire
// makespan.
func TestExplainDependentChainPath(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(fadd(0, 100, 101))
	for i := 1; i < 6; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(i-1), 101))
	}
	ex := explained(t, m, b, Options{})
	if len(ex.Path) != 6 {
		t.Fatalf("path length = %d, want 6 (whole chain): %+v", len(ex.Path), ex.Path)
	}
	if ex.Path[0].Edge != "" {
		t.Errorf("chain origin has edge %q, want none", ex.Path[0].Edge)
	}
	for _, s := range ex.Path[1:] {
		if s.Edge != EdgeDep {
			t.Errorf("step %d edge = %q, want dep", s.Instr, s.Edge)
		}
	}
	if ex.PathCycles != ex.Result.Cost {
		t.Errorf("PathCycles = %d, want full cost %d", ex.PathCycles, ex.Result.Cost)
	}
	if ex.DepHeight != ex.Result.End {
		t.Errorf("DepHeight = %d, want %d (chain is resource-free)", ex.DepHeight, ex.Result.End)
	}
}

// Independent adds on the single FPU are resource-bound: the FPU must
// be the bottleneck at full utilization, saturating at the first slot,
// and the path must contain resource edges naming it.
func TestExplainResourceBound(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	for i := 0; i < 8; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(100+i), ir.Reg(200+i)))
	}
	ex := explained(t, m, b, Options{})
	if ex.Bottleneck != machine.FPU {
		t.Fatalf("bottleneck = %q, want FPU (kinds %+v)", ex.Bottleneck, ex.Kinds)
	}
	if ex.BottleneckUtil <= 0 || ex.BottleneckUtil > 1 {
		t.Errorf("bottleneck utilization %v outside (0, 1]", ex.BottleneckUtil)
	}
	if ex.SaturatedAt != 0 {
		t.Errorf("SaturatedAt = %d, want 0 (FPU busy from the first slot)", ex.SaturatedAt)
	}
	resource := 0
	for _, s := range ex.Path {
		if s.Edge == EdgeResource {
			resource++
			if s.Unit != machine.FPU {
				t.Errorf("resource step %d contends %q, want FPU", s.Instr, s.Unit)
			}
		}
	}
	if resource == 0 {
		t.Errorf("no resource edges on the path of a resource-bound block: %+v", ex.Path)
	}
}

// Per-op placements cover every instruction and agree with PlaceTime.
func TestExplainOpPlacements(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a(i)", Base: "a"})
	b.Append(fadd(1, 0, 0))
	b.Append(ir.Instr{Op: ir.OpFStore, Dst: ir.NoReg, Srcs: []ir.Reg{1}, Addr: "a(i)", Base: "a"})
	ex := explained(t, m, b, Options{})
	if len(ex.Finish) != 3 || len(ex.OpPipe) != 3 {
		t.Fatalf("got %d/%d op placements, want 3", len(ex.Finish), len(ex.OpPipe))
	}
	for i := range ex.Finish {
		if ex.Finish[i] < ex.Result.PlaceTime[i] {
			t.Errorf("op %d finish %d before its issue slot %d", i, ex.Finish[i], ex.Result.PlaceTime[i])
		}
		if ex.OpPipe[i] < 0 || ex.OpPipe[i] >= len(ex.Pipes) {
			t.Errorf("op %d (%s) has no recorded pipe", i, b.Instrs[i].Op)
		}
	}
}

// One more pipe of the bottleneck kind must not slow the block down,
// and for a resource-bound block it must strictly help.
func TestExplainWhatIf(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	for i := 0; i < 8; i++ {
		b.Append(fadd(ir.Reg(i), ir.Reg(100+i), ir.Reg(200+i)))
	}
	ex := explained(t, m, b, Options{})
	if err := ex.ComputeWhatIf(m, b, Options{}); err != nil {
		t.Fatal(err)
	}
	w := ex.WhatIf
	if w == nil {
		t.Fatal("no what-if on a nonempty block")
	}
	if w.Unit != machine.FPU || w.Pipes != m.UnitCounts[machine.FPU]+1 {
		t.Errorf("what-if = %+v, want one more FPU pipe", w)
	}
	if w.Cost > ex.Result.Cost {
		t.Errorf("one more pipe raised the cost: %d > %d", w.Cost, ex.Result.Cost)
	}
	if w.Speedup <= 1 {
		t.Errorf("speedup = %v, want > 1 for an FPU-bound block", w.Speedup)
	}
}

// Per-pipe and per-kind utilizations stay within [0, 1] and the
// bottleneck has the maximum per-kind utilization.
func TestExplainUtilizationBounds(t *testing.T) {
	m := machine.NewPOWER1()
	b := &ir.Block{}
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 0, Addr: "a(i)", Base: "a"})
	b.Append(ir.Instr{Op: ir.OpFLoad, Dst: 1, Addr: "b(i)", Base: "b"})
	b.Append(fadd(2, 0, 1))
	b.Append(ir.Instr{Op: ir.OpFStore, Dst: ir.NoReg, Srcs: []ir.Reg{2}, Addr: "c(i)", Base: "c"})
	ex := explained(t, m, b, Options{})
	for _, p := range ex.Pipes {
		if p.Utilization < 0 || p.Utilization > 1 {
			t.Errorf("pipe %s utilization %v outside [0,1]", p.Pipe, p.Utilization)
		}
	}
	for _, k := range ex.Kinds {
		if k.Utilization < 0 || k.Utilization > 1 {
			t.Errorf("kind %s utilization %v outside [0,1]", k.Kind, k.Utilization)
		}
		if k.Utilization > ex.BottleneckUtil {
			t.Errorf("kind %s utilization %v exceeds bottleneck %s at %v",
				k.Kind, k.Utilization, ex.Bottleneck, ex.BottleneckUtil)
		}
	}
}

// BenchmarkExplain prices the kernel suite through EstimateExplained —
// the -benchtime 1x CI smoke for the diagnosis path.
func BenchmarkExplain(b *testing.B) {
	blocks := kernelSuiteBlocks(b)
	m := machine.NewPOWER1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, blk := range blocks {
			if _, err := EstimateExplained(m, blk, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExplainGuard enforces the explain overhead budget: pricing
// the kernel suite with diagnosis must cost at most 2× the plain
// estimate. It measures a fixed internal workload (independent of
// b.N) and takes the best of several rounds to shed scheduler noise.
func BenchmarkExplainGuard(b *testing.B) {
	blocks := kernelSuiteBlocks(b)
	m := machine.NewPOWER1()
	const reps, rounds = 20, 5
	timeIt := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm the pooled scratch and caches before timing either side.
	for _, blk := range blocks {
		if _, err := EstimateExplained(m, blk, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	plain := timeIt(func() {
		for _, blk := range blocks {
			if _, err := Estimate(m, blk, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	expl := timeIt(func() {
		for _, blk := range blocks {
			if _, err := EstimateExplained(m, blk, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ratio := float64(expl) / float64(plain)
	b.ReportMetric(ratio, "explain/plain")
	if ratio > 2.0 {
		b.Fatalf("explain overhead %.2fx plain Estimate, budget is 2x (plain %v, explained %v)",
			ratio, plain, expl)
	}
}
